// CPU cost model and per-server CPU accounting.
//
// The paper measures real CPU time per real-time-loop phase on physical
// servers (Intel Core Duo, 2.66 GHz). We replace wall-clock with a
// *deterministic cost model*: every primitive operation of the game server
// charges a calibrated number of cost units, where 1 unit == 1 microsecond
// on a reference server (speed factor 1.0). A deterministic multiplicative
// noise term emulates the measurement variance the paper smooths away with
// Levenberg-Marquardt fitting; with noiseAmplitude = 0 the model is exact.
//
// This is the substitution documented in DESIGN.md section 2: it preserves
// the shape of every result (growth orders, crossover points) while making
// runs bit-reproducible on any hardware.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace roia::sim {

/// Converts abstract cost units into simulated CPU time for one server.
class CpuCostModel {
 public:
  struct Config {
    /// Relative speed of this server; 2.0 halves every cost. Models the
    /// heterogeneous "more powerful resource" used by resource substitution.
    double speedFactor{1.0};
    /// Relative amplitude of the deterministic noise (0 = exact). 0.08 means
    /// each charge is scaled by a factor drawn from ~N(1, 0.08), clamped.
    double noiseAmplitude{0.0};
    /// Seed for the noise stream (independent per server).
    std::uint64_t noiseSeed{0};
  };

  CpuCostModel() : CpuCostModel(Config{}) {}
  explicit CpuCostModel(Config config);

  /// Simulated time consumed by `units` cost units on this server.
  [[nodiscard]] SimDuration charge(double units);

  /// Exact (noise-free) conversion; used by analytical baselines.
  [[nodiscard]] SimDuration chargeExact(double units) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
  Rng noise_;
};

/// Tracks how busy one simulated server is. The real-time loop reports each
/// tick's busy time; the load over a reporting window is busy / elapsed,
/// exactly what a `top`-style CPU-load probe would show on a real server.
class CpuAccount {
 public:
  explicit CpuAccount(SimDuration window = SimDuration::seconds(2));

  /// Records that a loop iteration starting at `tickStart` kept the CPU busy
  /// for `busy` out of `interval` (the loop period).
  void recordTick(SimTime tickStart, SimDuration busy, SimDuration interval);

  /// Load in [0, ~1] averaged over the window (a tick longer than its
  /// interval clamps to 1: the server is saturated).
  [[nodiscard]] double load() const { return window_.average(); }

  [[nodiscard]] SimDuration totalBusy() const { return totalBusy_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  WindowedAverage window_;
  SimDuration totalBusy_{SimDuration::zero()};
  std::uint64_t ticks_{0};
};

}  // namespace roia::sim
