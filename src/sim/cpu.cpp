#include "sim/cpu.hpp"

#include <algorithm>
#include <cmath>

namespace roia::sim {

CpuCostModel::CpuCostModel(Config config)
    : config_(config), noise_(Rng(0xC0FFEEULL).split(config.noiseSeed)) {}

SimDuration CpuCostModel::charge(double units) {
  double scaled = units / config_.speedFactor;
  if (config_.noiseAmplitude > 0.0) {
    // Multiplicative ~N(1, amplitude), clamped so time never goes negative
    // and a single outlier cannot dominate a fit.
    const double factor =
        std::clamp(noise_.normal(1.0, config_.noiseAmplitude), 0.2, 3.0);
    scaled *= factor;
  }
  return SimDuration::microseconds(static_cast<std::int64_t>(std::llround(std::max(0.0, scaled))));
}

SimDuration CpuCostModel::chargeExact(double units) const {
  return SimDuration::microseconds(
      static_cast<std::int64_t>(std::llround(std::max(0.0, units / config_.speedFactor))));
}

CpuAccount::CpuAccount(SimDuration window) : window_(window) {}

void CpuAccount::recordTick(SimTime tickStart, SimDuration busy, SimDuration interval) {
  totalBusy_ += busy;
  ++ticks_;
  const double denom = std::max<double>(1.0, static_cast<double>(interval.micros));
  const double load = std::min(1.0, static_cast<double>(busy.micros) / denom);
  window_.add(tickStart, load);
}

}  // namespace roia::sim
