// The simulation kernel: a clock plus the event queue, with helpers for
// periodic processes. Every experiment run is a single-threaded, fully
// deterministic traversal of this queue.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/types.hpp"
#include "sim/event_queue.hpp"

namespace roia::sim {

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now for past times).
  EventHandle scheduleAt(SimTime at, EventFn fn);
  /// Schedules `fn` after `delay` from now.
  EventHandle scheduleAfter(SimDuration delay, EventFn fn);
  void cancel(EventHandle handle) { queue_.cancel(handle); }

  /// Repeats `fn(now)` every `period`, first firing at now + period, until
  /// `fn` returns false or the returned handle is cancelled via
  /// cancelPeriodic. Note: the handle changes internally each period, so
  /// periodic tasks are cancelled through the returned token.
  struct PeriodicToken {
    std::shared_ptr<bool> alive;
  };
  PeriodicToken schedulePeriodic(SimDuration period, std::function<bool(SimTime)> fn);
  static void cancelPeriodic(PeriodicToken& token);

  /// Executes a single event; returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains or the clock would pass `until`.
  /// Events scheduled exactly at `until` are executed.
  void runUntil(SimTime until);

  /// Runs until the queue drains.
  void runAll();

  [[nodiscard]] std::size_t pendingEvents() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executedEvents() const { return executed_; }

 private:
  EventQueue queue_;
  SimTime now_{SimTime::zero()};
  std::uint64_t executed_{0};
};

}  // namespace roia::sim
