#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace roia::sim {

EventHandle EventQueue::schedule(SimTime at, EventFn fn) {
  const std::uint64_t seq = nextSeq_++;
  heap_.push(Entry{at, seq});
  callbacks_.emplace(seq, std::move(fn));
  return EventHandle{seq};
}

void EventQueue::cancel(EventHandle handle) {
  if (!handle.valid()) return;
  callbacks_.erase(handle.seq);
  // The heap entry stays; skipDead() discards it lazily.
}

void EventQueue::skipDead() const {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

SimTime EventQueue::nextTime() const {
  skipDead();
  return heap_.empty() ? SimTime::max() : heap_.top().at;
}

EventFn EventQueue::pop(SimTime& at) {
  skipDead();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  const Entry entry = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(entry.seq);
  EventFn fn = std::move(it->second);
  callbacks_.erase(it);
  at = entry.at;
  return fn;
}

}  // namespace roia::sim
