#include "sim/simulation.hpp"

#include <memory>
#include <utility>

namespace roia::sim {

EventHandle Simulation::scheduleAt(SimTime at, EventFn fn) {
  if (at < now_) at = now_;
  return queue_.schedule(at, std::move(fn));
}

EventHandle Simulation::scheduleAfter(SimDuration delay, EventFn fn) {
  return scheduleAt(now_ + delay, std::move(fn));
}

Simulation::PeriodicToken Simulation::schedulePeriodic(SimDuration period,
                                                       std::function<bool(SimTime)> fn) {
  auto alive = std::make_shared<bool>(true);
  // Self-rescheduling closure; owns the user callback. The queued events
  // hold the owning reference while the closure reschedules through a weak
  // one — a strong self-capture would cycle and never free.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, period, fn = std::move(fn), alive,
           weak = std::weak_ptr<std::function<void()>>(tick)]() {
    if (!*alive) return;
    if (!fn(now_)) {
      *alive = false;
      return;
    }
    if (*alive) {
      if (auto self = weak.lock()) scheduleAfter(period, [self] { (*self)(); });
    }
  };
  scheduleAfter(period, [self = std::move(tick)] { (*self)(); });
  return PeriodicToken{std::move(alive)};
}

void Simulation::cancelPeriodic(PeriodicToken& token) {
  if (token.alive) *token.alive = false;
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  SimTime at;
  EventFn fn = queue_.pop(at);
  now_ = at;
  ++executed_;
  fn();
  return true;
}

void Simulation::runUntil(SimTime until) {
  while (!queue_.empty() && queue_.nextTime() <= until) {
    step();
  }
  if (now_ < until) now_ = until;
}

void Simulation::runAll() {
  while (step()) {
  }
}

}  // namespace roia::sim
