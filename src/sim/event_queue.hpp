// Deterministic discrete-event queue.
//
// Events at the same simulated time fire in insertion order (FIFO tie-break
// via a monotonically increasing sequence number), which is what makes whole
// experiment runs bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace roia::sim {

using EventFn = std::function<void()>;

/// Handle for cancelling a scheduled event.
struct EventHandle {
  std::uint64_t seq{0};
  [[nodiscard]] bool valid() const { return seq != 0; }
};

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at`. Returns a cancellation handle.
  EventHandle schedule(SimTime at, EventFn fn);

  /// Removes the event if it has not fired yet; safe on stale handles.
  void cancel(EventHandle handle);

  [[nodiscard]] bool empty() const { return callbacks_.empty(); }
  [[nodiscard]] std::size_t size() const { return callbacks_.size(); }

  /// Time of the earliest live event; SimTime::max() when empty.
  [[nodiscard]] SimTime nextTime() const;

  /// Pops the earliest live event; returns its callback and writes its
  /// scheduled time to `at`. Must not be called when empty().
  EventFn pop(SimTime& at);

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  /// Discards heap entries whose callback was cancelled.
  void skipDead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<std::uint64_t, EventFn> callbacks_;
  std::uint64_t nextSeq_{1};
};

}  // namespace roia::sim
