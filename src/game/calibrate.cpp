#include "game/calibrate.hpp"

namespace roia::game {

CalibrationResult calibrateModel(const CalibrationConfig& config, const model::FitPlan& plan) {
  CalibrationResult result;
  result.replicationSamples =
      measureReplicationParameters(config.measurement, config.replicationPopulations);
  result.migrationSamples = measureMigrationParameters(
      config.measurement, config.migrationPopulations, config.migrationsPerBurst);

  model::ParameterEstimator estimator;
  for (std::size_t k = 0; k < model::kParamCount; ++k) {
    const auto kind = static_cast<model::ParamKind>(k);
    const rtf::Phase phase = model::phaseForParamKind(kind);
    // Migration parameters come from the migration sweep; the rest from the
    // replication sweep.
    if (kind == model::ParamKind::kMigIni || kind == model::ParamKind::kMigRcv) {
      estimator.setSamples(kind, result.migrationSamples.series(phase));
    } else {
      estimator.setSamples(kind, result.replicationSamples.series(phase));
    }
  }
  result.parameters = estimator.fit(plan);
  return result;
}

model::TickModel calibrateTickModel(const CalibrationConfig& config, const model::FitPlan& plan) {
  return model::TickModel(calibrateModel(config, plan).parameters);
}

}  // namespace roia::game
