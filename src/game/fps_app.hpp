// The FPS demo application (our RTFDemo analogue), implementing
// rtf::Application. Its mechanics are chosen to reproduce the computational
// characteristics the paper reports for RTFDemo in section V-A:
//
//  * applying an attack iterates through ALL users to check who is hit, and
//    attack frequency grows with the user count -> t_ua grows faster than
//    linear (fitted quadratically in the paper),
//  * the area of interest uses the Euclidean Distance Algorithm: for user U
//    every other user is tested, and each subscription scans U's update list
//    to avoid duplicates -> t_aoi quadratic,
//  * state updates aggregate equivalent records per visible entity ->
//    t_su linear,
//  * inputs are deserialized once each; attack share grows with n ->
//    t_ua_dser linear,
//  * forwarded inputs are rare and cheap -> t_fa, t_fa_dser small.
//
// The quadratic shapes above describe the *default* Euclidean profile. With
// `FpsConfig::interestPolicy = kGrid` the application routes attack
// validation, NPC target scans and shadow re-indexing through the flat-grid
// index (InterestPolicy::scanCandidates), which localizes those costs to
// the interest circle and flips the fitted exponents to ~linear — the
// experiment ext_interest_management quantifies.
//
// All cost constants live in FpsConfig; units are simulated microseconds on
// a reference server (see sim::CpuCostModel).
#pragma once

#include <cstdint>
#include <memory>

#include "common/math.hpp"
#include "game/commands.hpp"
#include "game/interest.hpp"
#include "game/state_update.hpp"
#include "rtf/application.hpp"

namespace roia::game {

/// Which IM algorithm a scenario runs with (see game/interest.hpp).
enum class InterestPolicyKind : std::uint8_t {
  kEuclidean = 0,  ///< the paper's baseline: all-pairs distance tests
  kGrid = 1,       ///< persistent flat grid, costs localized to the AOI circle
};

struct FpsConfig {
  // --- gameplay ---
  Vec2 arenaOrigin{0, 0};
  Vec2 arenaExtent{1000, 1000};
  double aoiRadius{220.0};
  double attackRange{260.0};
  double moveSpeed{80.0};       // units per second
  double attackDamage{8.0};
  double respawnHealth{100.0};
  double tickSeconds{0.04};     // integration step of one loop iteration

  // --- interest management ---
  InterestPolicyKind interestPolicy{InterestPolicyKind::kEuclidean};
  /// Grid cell edge length; 0 picks aoiRadius / 2.
  double gridCellSize{0.0};

  // --- application-logic cost constants (reference microseconds) ---
  double moveApplyCost{1.2};
  double attackValidateBaseCost{1.2};
  /// Per candidate avatar scanned while resolving one attack (the quadratic
  /// driver under Euclidean; localized to the circle under the grid).
  double attackScanPerEntityCost{0.10};
  double applyHitCost{1.5};
  double fwdApplyCost{1.8};
  double npcBaseCost{2.0};
  double npcScanPerEntityCost{0.02};
  /// Per candidate entity tested by the Euclidean Distance Algorithm.
  double aoiPerEntityCost{0.45};
  /// Per update-list entry scanned during a duplicate check (quadratic driver).
  double aoiSubscribeScanCost{0.011};
  /// Grid: indexing one entity on a full rebuild / per relocated entity.
  double aoiRebuildPerEntityCost{0.08};
  /// Grid: cell-change detection per entity in the per-tick sweep.
  double aoiSweepPerEntityCost{0.004};
  /// Grid: visiting one cell during a query.
  double aoiCellVisitCost{0.05};
  /// Grid: distance test per candidate pulled from a visited cell. Far
  /// cheaper than aoiPerEntityCost: candidates sit contiguously in the CSR
  /// entry array and the test is a branch-free compare over the SoA
  /// position columns, where the Euclidean scan walks every record.
  double aoiCandidateTestCost{0.002};
  /// Per visible entity gathered into a state update.
  double suGatherPerEntityCost{1.0};
  /// Shadow maintenance: fixed part per snapshot...
  double shadowIndexBaseCost{0.3};
  /// ...plus interest-index upkeep that grows with the candidate count
  /// (drives the replication-overhead term of Eq. (1)).
  double shadowIndexPerEntityCost{0.0025};
  /// Decoding + updating + re-encoding the per-player stats blob.
  double statsUpdateCost{0.4};
  /// Points per kill on the scoreboard.
  std::uint64_t killScore{100};
};

/// Instantiates the IM algorithm selected by `config.interestPolicy`, with
/// the config's cost constants.
std::unique_ptr<InterestPolicy> makeInterestPolicy(const FpsConfig& config);

/// Switches `config` to the flat-grid policy together with the SoA cost
/// profile measured for it: slot-handle gathers over contiguous columns
/// replace the per-visible-id hash find + fat-record walk of the seed
/// encoder, so the per-entity gather constant drops with them (0.12 vs 1.0,
/// the ~8x ratio observed between the SoA and seed AOI+gather
/// micro-benchmarks). All other constants are unchanged — the grid's own
/// costs (rebuild/sweep/cell-visit/candidate-test) are separate knobs
/// already in the config.
void applyGridInterestProfile(FpsConfig& config);

class FpsApplication final : public rtf::Application {
 public:
  explicit FpsApplication(FpsConfig config = {});

  [[nodiscard]] const FpsConfig& config() const { return config_; }

  /// Swaps the interest-management algorithm (default: the policy selected
  /// by FpsConfig::interestPolicy). See game/interest.hpp.
  void setInterestPolicy(std::unique_ptr<InterestPolicy> policy);
  [[nodiscard]] InterestPolicy& interestPolicy() { return *interest_; }

  void onTickBegin(rtf::World& world, rtf::CostMeter& meter) override;

  void applyUserInput(rtf::World& world, rtf::EntityRef avatar,
                      std::span<const std::uint8_t> commands, rtf::CostMeter& meter,
                      rtf::ForwardSink& forward, Rng& rng) override;

  void applyForwardedInteraction(rtf::World& world, rtf::EntityRef target, EntityId source,
                                 std::span<const std::uint8_t> payload, rtf::CostMeter& meter,
                                 rtf::ForwardSink& forward) override;

  std::vector<std::uint8_t> exportUserState(rtf::ConstEntityRef avatar,
                                            rtf::CostMeter& meter) override;
  void importUserState(rtf::EntityRef avatar, std::span<const std::uint8_t> state,
                       rtf::CostMeter& meter) override;

  void onShadowUpdated(rtf::World& world, rtf::EntityRef shadow, rtf::CostMeter& meter) override;

  void updateNpc(rtf::World& world, rtf::EntityRef npc, rtf::CostMeter& meter, Rng& rng) override;

  void computeAreaOfInterest(const rtf::World& world, rtf::ConstEntityRef viewer,
                             rtf::CostMeter& meter, std::vector<std::uint32_t>& out) override;

  void buildStateUpdate(const rtf::World& world, rtf::ConstEntityRef viewer,
                        std::span<const std::uint32_t> visible, rtf::CostMeter& meter,
                        std::vector<std::uint8_t>& out) override;

 private:
  void applyMove(rtf::EntityRef avatar, const MoveCommand& move, rtf::CostMeter& meter);
  void applyAttack(rtf::World& world, rtf::EntityRef attacker, const AttackCommand& attack,
                   rtf::CostMeter& meter, rtf::ForwardSink& forward, Rng& rng);
  /// Applies damage; returns true when the hit was lethal (the target
  /// respawned). Increments the victim's death count on a kill.
  bool applyDamage(rtf::EntityRef target, double damage, Rng* rng, rtf::CostMeter& meter);
  void creditKill(rtf::EntityRef attacker, rtf::CostMeter& meter);
  void clampToArena(Vec2& position) const;

  FpsConfig config_;
  std::unique_ptr<InterestPolicy> interest_;
  /// Reused across buildStateUpdate calls: gathering runs once per client
  /// per tick, and the visible-set size is stable between ticks.
  StateUpdatePayload payloadScratch_;
};

}  // namespace roia::game
