#include "game/player_stats.hpp"

#include "serialize/byte_buffer.hpp"

namespace roia::game {

std::vector<std::uint8_t> encodeStats(const PlayerStats& stats) {
  ser::ByteWriter writer(12);
  writer.writeVarU64(stats.kills);
  writer.writeVarU64(stats.deaths);
  writer.writeVarU64(stats.score);
  return std::move(writer).take();
}

PlayerStats decodeStats(std::span<const std::uint8_t> bytes) {
  PlayerStats stats;
  if (bytes.empty()) return stats;
  ser::ByteReader reader(bytes);
  stats.kills = static_cast<std::uint32_t>(reader.readVarU64());
  stats.deaths = static_cast<std::uint32_t>(reader.readVarU64());
  stats.score = reader.readVarU64();
  return stats;
}

}  // namespace roia::game
