#include "game/measurement.hpp"

#include <memory>

#include "common/sweep.hpp"

namespace roia::game {
namespace {

/// Builds a cluster with one zone on `replicas` servers and `users` bots
/// spread equally (the paper distributes bots equally on both servers to
/// maximise inter-server communication).
struct SessionFixture {
  FpsApplication app;
  rtf::Cluster cluster;
  ZoneId zone;

  SessionFixture(const MeasurementConfig& config, std::size_t users, std::size_t replicas)
      : app(config.fps),
        cluster(app,
                rtf::ClusterConfig{config.server, rtf::ClientEndpoint::Config{}, config.seed}),
        zone(cluster.createZone("arena", config.fps.arenaOrigin, config.fps.arenaExtent)) {
    std::vector<ServerId> servers;
    servers.reserve(replicas);
    for (std::size_t i = 0; i < replicas; ++i) {
      servers.push_back(cluster.addServer(zone));
    }
    if (config.npcs > 0) cluster.spawnNpcs(zone, config.npcs);
    for (std::size_t i = 0; i < users; ++i) {
      cluster.connectClientTo(servers[i % servers.size()],
                              std::make_unique<BotProvider>(config.bots));
    }
  }
};

/// Attaches per-tick normalization to every server: converts phase totals
/// into per-item parameter samples at x = n (total zone users).
void collectProbeSamples(rtf::Cluster& cluster, ParameterSamples& samples) {
  for (const ServerId id : cluster.serverIds()) {
    cluster.server(id).setProbeListener(
        [&samples](const rtf::Server& server, const rtf::TickProbes& probes) {
          (void)server;
          const double n = static_cast<double>(probes.totalAvatars);
          if (probes.activeUsers > 0) {
            const double a = static_cast<double>(probes.activeUsers);
            samples.series(rtf::Phase::kUaDser).add(n, probes.phase(rtf::Phase::kUaDser) / a);
            samples.series(rtf::Phase::kUa).add(n, probes.phase(rtf::Phase::kUa) / a);
            samples.series(rtf::Phase::kAoi).add(n, probes.phase(rtf::Phase::kAoi) / a);
            samples.series(rtf::Phase::kSu).add(n, probes.phase(rtf::Phase::kSu) / a);
          }
          if (probes.shadowAvatars > 0) {
            const double s = static_cast<double>(probes.shadowAvatars);
            samples.series(rtf::Phase::kFaDser).add(n, probes.phase(rtf::Phase::kFaDser) / s);
            samples.series(rtf::Phase::kFa).add(n, probes.phase(rtf::Phase::kFa) / s);
          }
          if (probes.npcs > 0) {
            const double m = static_cast<double>(probes.npcs);
            samples.series(rtf::Phase::kNpc).add(n, probes.phase(rtf::Phase::kNpc) / m);
          }
          if (probes.migrationsInitiated > 0) {
            const double k = static_cast<double>(probes.migrationsInitiated);
            samples.series(rtf::Phase::kMigIni).add(n, probes.phase(rtf::Phase::kMigIni) / k);
          }
          if (probes.migrationsReceived > 0) {
            const double k = static_cast<double>(probes.migrationsReceived);
            samples.series(rtf::Phase::kMigRcv).add(n, probes.phase(rtf::Phase::kMigRcv) / k);
          }
        });
  }
}

void detachProbeListeners(rtf::Cluster& cluster) {
  for (const ServerId id : cluster.serverIds()) {
    cluster.server(id).setProbeListener(nullptr);
  }
}

}  // namespace

void ParameterSamples::merge(const ParameterSamples& other) {
  for (std::size_t p = 0; p < rtf::kPhaseCount; ++p) {
    perItem[p].x.insert(perItem[p].x.end(), other.perItem[p].x.begin(), other.perItem[p].x.end());
    perItem[p].y.insert(perItem[p].y.end(), other.perItem[p].y.begin(), other.perItem[p].y.end());
  }
}

ParameterSamples measureReplicationParameters(const MeasurementConfig& config,
                                              std::span<const std::size_t> populations) {
  ParameterSamples all;
  for (std::size_t p = 0; p < rtf::kPhaseCount; ++p) {
    all.perItem[p].label = rtf::phaseName(static_cast<rtf::Phase>(p));
  }
  // Each population runs a self-contained simulation with its own seed, so
  // the configs fan out across the sweep pool; merging in index order keeps
  // the aggregate bit-identical to the sequential loop.
  const std::vector<ParameterSamples> runs = par::runSweep<ParameterSamples>(
      populations.size(), [&](std::size_t i) {
        const std::size_t users = populations[i];
        MeasurementConfig runConfig = config;
        runConfig.seed = config.seed + users;  // decorrelate runs
        SessionFixture fixture(runConfig, users, config.replicas);
        fixture.cluster.run(config.warmup);

        ParameterSamples runSamples;
        collectProbeSamples(fixture.cluster, runSamples);
        fixture.cluster.run(config.measure);
        detachProbeListeners(fixture.cluster);
        return runSamples;
      });
  for (const ParameterSamples& runSamples : runs) all.merge(runSamples);
  return all;
}

ParameterSamples measureMigrationParameters(const MeasurementConfig& config,
                                            std::span<const std::size_t> populations,
                                            std::size_t migrationsPerBurst) {
  ParameterSamples all;
  for (std::size_t p = 0; p < rtf::kPhaseCount; ++p) {
    all.perItem[p].label = rtf::phaseName(static_cast<rtf::Phase>(p));
  }
  const std::vector<ParameterSamples> runs = par::runSweep<ParameterSamples>(
      populations.size(), [&](std::size_t i) {
        const std::size_t users = populations[i];
        MeasurementConfig runConfig = config;
        runConfig.seed = config.seed + 7919 * users;
        SessionFixture fixture(runConfig, users, 2);
        auto& cluster = fixture.cluster;
        cluster.run(config.warmup);

        ParameterSamples runSamples;
        collectProbeSamples(cluster, runSamples);

        // Ping-pong migration stream: alternate source/target every burst so
        // populations stay balanced while both sides exercise both roles.
        const std::vector<ServerId> servers = cluster.serverIds();
        bool forward = true;
        auto token = cluster.simulation().schedulePeriodic(
            SimDuration::milliseconds(250), [&](SimTime) {
              const ServerId from = forward ? servers[0] : servers[1];
              const ServerId to = forward ? servers[1] : servers[0];
              forward = !forward;
              const std::vector<ClientId> candidates = cluster.server(from).clientIds(true);
              const std::size_t count = std::min(migrationsPerBurst, candidates.size());
              for (std::size_t j = 0; j < count; ++j) {
                cluster.migrateClient(candidates[j], to);
              }
              return true;
            });
        cluster.run(config.measure);
        sim::Simulation::cancelPeriodic(token);
        detachProbeListeners(cluster);
        return runSamples;
      });
  for (const ParameterSamples& runSamples : runs) all.merge(runSamples);
  return all;
}

SteadyStateResult measureSteadyState(const MeasurementConfig& config, std::size_t users,
                                     std::size_t replicas) {
  SessionFixture fixture(config, users, replicas);
  fixture.cluster.run(config.warmup);

  StatAccumulator tickMs;
  StatAccumulator load;
  double maxTick = 0.0;
  for (const ServerId id : fixture.cluster.serverIds()) {
    fixture.cluster.server(id).setProbeListener(
        [&](const rtf::Server& server, const rtf::TickProbes& probes) {
          tickMs.add(probes.totalMicros() / 1000.0);
          maxTick = std::max(maxTick, probes.totalMicros() / 1000.0);
          load.add(server.cpuAccount().load());
        });
  }
  fixture.cluster.run(config.measure);
  detachProbeListeners(fixture.cluster);

  SteadyStateResult result;
  result.tickAvgMs = tickMs.mean();
  result.tickMaxMs = maxTick;
  result.cpuLoadAvg = load.mean();
  result.users = users;
  result.replicas = replicas;
  return result;
}

model::BandwidthSample measureBandwidth(const MeasurementConfig& config, std::size_t users,
                                        std::size_t replicas) {
  SessionFixture fixture(config, users, replicas);
  auto& cluster = fixture.cluster;
  cluster.run(config.warmup);

  // Snapshot cumulative per-node counters around the measurement window.
  struct Baseline {
    std::uint64_t in;
    std::uint64_t out;
  };
  std::vector<Baseline> baselines;
  const std::vector<ServerId> servers = cluster.serverIds();
  baselines.reserve(servers.size());
  for (const ServerId id : servers) {
    const NodeId node = cluster.server(id).node();
    baselines.push_back({cluster.network().nodeIngress(node).bytes,
                         cluster.network().nodeEgress(node).bytes});
  }
  cluster.run(config.measure);

  const double seconds = config.measure.asSeconds();
  double inRate = 0.0, outRate = 0.0;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const NodeId node = cluster.server(servers[i]).node();
    inRate += static_cast<double>(cluster.network().nodeIngress(node).bytes - baselines[i].in) /
              seconds;
    outRate += static_cast<double>(cluster.network().nodeEgress(node).bytes - baselines[i].out) /
               seconds;
  }
  model::BandwidthSample sample;
  sample.users = users;
  sample.replicas = replicas;
  sample.ingressBytesPerSec = inRate / static_cast<double>(servers.size());
  sample.egressBytesPerSec = outRate / static_cast<double>(servers.size());
  return sample;
}

std::vector<model::BandwidthSample> measureBandwidthSweep(
    const MeasurementConfig& config, std::span<const std::size_t> populations,
    std::size_t replicas) {
  return par::runSweep<model::BandwidthSample>(populations.size(), [&](std::size_t i) {
    const std::size_t users = populations[i];
    MeasurementConfig runConfig = config;
    runConfig.seed = config.seed + 31337 * users;
    return measureBandwidth(runConfig, users, replicas);
  });
}

}  // namespace roia::game
