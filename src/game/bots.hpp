// Randomly interacting computer-controlled bots, the workload generator of
// the paper's experiments ("in order to simulate an average workload, we use
// randomly interacting, computer-controlled bots").
//
// Each bot always moves (with occasional direction changes) and attacks a
// randomly chosen visible entity with a probability that grows with the
// number of visible targets — reproducing the paper's observation that the
// attack-command frequency increases almost linearly with the user number.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "game/commands.hpp"
#include "rtf/client.hpp"

namespace roia::game {

struct BotConfig {
  double turnProbability{0.12};
  double attackBaseProbability{0.08};
  /// Added attack probability per visible entity.
  double attackPerVisibleProbability{0.010};
  double attackProbabilityCap{0.85};
};

class BotProvider final : public rtf::InputProvider {
 public:
  explicit BotProvider(BotConfig config = {}) : config_(config) {}

  std::vector<std::uint8_t> nextCommands(SimTime now, Rng& rng) override;
  void onStateUpdate(std::span<const std::uint8_t> update) override;
  void onStateView(std::uint64_t serverTick, ClientId self,
                   const rtf::SnapshotView& view) override;

  [[nodiscard]] std::size_t lastVisibleCount() const { return seenEntities_.size(); }
  [[nodiscard]] std::uint64_t attacksIssued() const { return attacksIssued_; }
  [[nodiscard]] std::uint64_t commandsIssued() const { return commandsIssued_; }

 private:
  BotConfig config_;
  Vec2 heading_{1.0, 0.0};
  bool hasHeading_{false};
  std::vector<EntityId> seenEntities_;
  std::uint64_t attacksIssued_{0};
  std::uint64_t commandsIssued_{0};
};

}  // namespace roia::game
