#include "game/interest.hpp"

#include <algorithm>
#include <cmath>

namespace roia::game {

void EuclideanInterest::prepare(const rtf::World& world, rtf::CostMeter& meter) {
  // No index: the Euclidean Distance Algorithm scans the world per query.
  (void)world;
  (void)meter;
}

// roia-hot
void EuclideanInterest::query(const rtf::World& world, const rtf::EntityRecord& viewer,
                              double radius, rtf::CostMeter& meter,
                              std::vector<EntityId>& visible) {
  visible.clear();
  const double radiusSq = radius * radius;
  double cost = 0.0;
  world.forEach([&](const rtf::EntityRecord& e) {
    if (e.id == viewer.id) return;
    cost += costs_.pairTestCost;
    if (e.position.distanceSq(viewer.position) <= radiusSq) {
      // Duplicate check: linear scan of the update list so far (the
      // quadratic driver of the paper's t_aoi).
      cost += costs_.subscribeScanCost * static_cast<double>(visible.size());
      bool duplicate = false;
      for (const EntityId id : visible) {
        if (id == e.id) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) visible.push_back(e.id);
    }
  });
  meter.charge(cost);
  // World iteration is id-ordered already, so `visible` is too.
}

std::int64_t GridInterest::cellKey(double x, double y) const {
  const auto cx = static_cast<std::int64_t>(std::floor(x / cellSize_));
  const auto cy = static_cast<std::int64_t>(std::floor(y / cellSize_));
  return (cx << 32) ^ (cy & 0xFFFFFFFFLL);
}

void GridInterest::prepare(const rtf::World& world, rtf::CostMeter& meter) {
  cells_.clear();
  double cost = 0.0;
  world.forEach([&](const rtf::EntityRecord& e) {
    cells_[cellKey(e.position.x, e.position.y)].push_back(CellEntry{e.id, e.position});
    cost += costs_.rebuildPerEntityCost;
  });
  meter.charge(cost);
}

// roia-hot
void GridInterest::query(const rtf::World& world, const rtf::EntityRecord& viewer,
                         double radius, rtf::CostMeter& meter, std::vector<EntityId>& visible) {
  (void)world;
  visible.clear();
  const double radiusSq = radius * radius;
  const auto loX = static_cast<std::int64_t>(std::floor((viewer.position.x - radius) / cellSize_));
  const auto hiX = static_cast<std::int64_t>(std::floor((viewer.position.x + radius) / cellSize_));
  const auto loY = static_cast<std::int64_t>(std::floor((viewer.position.y - radius) / cellSize_));
  const auto hiY = static_cast<std::int64_t>(std::floor((viewer.position.y + radius) / cellSize_));

  double cost = 0.0;
  for (std::int64_t cx = loX; cx <= hiX; ++cx) {
    for (std::int64_t cy = loY; cy <= hiY; ++cy) {
      cost += costs_.cellVisitCost;
      const auto it = cells_.find((cx << 32) ^ (cy & 0xFFFFFFFFLL));
      if (it == cells_.end()) continue;
      for (const CellEntry& entry : it->second) {
        if (entry.id == viewer.id) continue;
        cost += costs_.candidateTestCost;
        if (entry.position.distanceSq(viewer.position) <= radiusSq) {
          cost += costs_.subscribeScanCost * static_cast<double>(visible.size());
          visible.push_back(entry.id);
        }
      }
    }
  }
  meter.charge(cost);
  // Cells are visited in spatial order; normalize to id order so the wire
  // format and downstream behaviour are identical across IM algorithms.
  std::sort(visible.begin(), visible.end());
  visible.erase(std::unique(visible.begin(), visible.end()), visible.end());
}

}  // namespace roia::game
