#include "game/interest.hpp"

#include <algorithm>
#include <cmath>
#include <span>

namespace roia::game {
namespace {

/// Axis-distance from x to the interval [lo, lo + len].
double axisDistance(double x, double lo, double len) {
  if (x < lo) return lo - x;
  if (x > lo + len) return x - lo - len;
  return 0.0;
}

std::size_t clampCell(double raw, std::size_t cells) {
  if (raw <= 0.0) return 0;
  const auto c = static_cast<std::size_t>(raw);
  return c >= cells ? cells - 1 : c;
}

}  // namespace

void EuclideanInterest::prepare(const rtf::World& world, rtf::CostMeter& meter) {
  // No index: the Euclidean Distance Algorithm scans the world per query.
  (void)world;
  (void)meter;
}

// roia-hot
void EuclideanInterest::query(const rtf::World& world, rtf::ConstEntityRef viewer, double radius,
                              rtf::CostMeter& meter, std::vector<std::uint32_t>& visible) {
  visible.clear();
  const double radiusSq = radius * radius;
  double cost = 0.0;
  const std::span<const std::uint64_t> ids = world.ids();
  const std::span<const Vec2> positions = world.positions();
  const std::uint64_t viewerId = viewer.id.value;
  const Vec2 viewerPos = viewer.position;
  const std::size_t n = ids.size();
  for (std::uint32_t s = 0; s < n; ++s) {
    if (ids[s] == viewerId) continue;
    cost += costs_.pairTestCost;
    if (positions[s].distanceSq(viewerPos) <= radiusSq) {
      // Duplicate check: linear scan of the update list so far (the
      // quadratic driver of the paper's t_aoi).
      cost += costs_.subscribeScanCost * static_cast<double>(visible.size());
      bool duplicate = false;
      for (const std::uint32_t seen : visible) {
        if (seen == s) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) visible.push_back(s);
    }
  }
  meter.charge(cost);
  // Slot iteration is id-ordered already, so `visible` is too.
}

std::size_t EuclideanInterest::scanCandidates(const rtf::World& world, Vec2 center,
                                              double radius) const {
  // No index: an application-level radius scan must distance-test every
  // avatar regardless of where the circle sits.
  (void)center;
  (void)radius;
  return world.avatarCount();
}

std::size_t GridInterest::axisCells(double extent) const {
  // Cover the extent plus a two-cell margin on the high side (the low-side
  // margin is folded into the origin).
  const auto cells = static_cast<std::size_t>(std::floor(extent / cellSize_)) + 3;
  return std::min(std::max<std::size_t>(cells, 1), kMaxAxisCells);
}

// roia-hot
std::uint32_t GridInterest::cellIndexOf(Vec2 p) const {
  const std::size_t cx = clampCell(std::floor((p.x - originX_) / cellSize_), cols_);
  const std::size_t cy = clampCell(std::floor((p.y - originY_) / cellSize_), rows_);
  return static_cast<std::uint32_t>(cy * cols_ + cx);
}

void GridInterest::rebuild(const rtf::World& world) {
  const std::span<const Vec2> positions = world.positions();
  const std::size_t n = positions.size();
  double minX = 0.0;
  double minY = 0.0;
  double maxX = 0.0;
  double maxY = 0.0;
  if (n > 0) {
    minX = maxX = positions[0].x;
    minY = maxY = positions[0].y;
    for (const Vec2& p : positions) {
      minX = std::min(minX, p.x);
      maxX = std::max(maxX, p.x);
      minY = std::min(minY, p.y);
      maxY = std::max(maxY, p.y);
    }
  }
  // Two spare cells of margin per side keep ordinary movement inside the
  // rect between rebuilds; anything escaping clamps into an edge cell
  // (queries stay exact — see the class comment).
  originX_ = minX - 2.0 * cellSize_;
  originY_ = minY - 2.0 * cellSize_;
  cols_ = axisCells(maxX - originX_);
  rows_ = axisCells(maxY - originY_);
  cellStart_.assign(cols_ * rows_ + 1, 0);
  cellOf_.resize(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint32_t c = cellIndexOf(positions[s]);
    cellOf_[s] = c;
    ++cellStart_[c + 1];
  }
  for (std::size_t c = 1; c < cellStart_.size(); ++c) cellStart_[c] += cellStart_[c - 1];
  // Counting sort: slots placed in ascending order within each cell.
  entries_.resize(n);
  cursor_.assign(cellStart_.begin(), cellStart_.end() - 1);
  for (std::uint32_t s = 0; s < n; ++s) entries_[cursor_[cellOf_[s]]++] = s;
  epoch_ = world.structuralEpoch();
  valid_ = true;
}

void GridInterest::relocate(std::uint32_t slot, std::uint32_t toCell) {
  const std::uint32_t fromCell = cellOf_[slot];
  const auto begin = entries_.begin();
  const auto pos = std::lower_bound(begin + cellStart_[fromCell], begin + cellStart_[fromCell + 1],
                                    slot);
  const auto target = std::lower_bound(begin + cellStart_[toCell], begin + cellStart_[toCell + 1],
                                       slot);
  if (fromCell < toCell) {
    std::rotate(pos, pos + 1, target);
    for (std::uint32_t c = fromCell + 1; c <= toCell; ++c) --cellStart_[c];
  } else {
    std::rotate(target, pos, pos + 1);
    for (std::uint32_t c = toCell + 1; c <= fromCell; ++c) ++cellStart_[c];
  }
  cellOf_[slot] = toCell;
}

void GridInterest::prepare(const rtf::World& world, rtf::CostMeter& meter) {
  const std::size_t n = world.size();
  if (!valid_ || epoch_ != world.structuralEpoch()) {
    rebuild(world);
    meter.charge(costs_.rebuildPerEntityCost * static_cast<double>(n));
    return;
  }
  // Incremental maintenance: one sweep of the position column finds the
  // slots whose cell changed; each is spliced to its new cell in place.
  moved_.clear();
  const std::span<const Vec2> positions = world.positions();
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint32_t c = cellIndexOf(positions[s]);
    if (c != cellOf_[s]) moved_.emplace_back(s, c);
  }
  if (moved_.size() * 4 > n) {
    // Mass movement (teleport storms, arena-wide churn): splicing is no
    // cheaper than a counting-sort rebuild, so rebuild.
    rebuild(world);
    meter.charge(costs_.rebuildPerEntityCost * static_cast<double>(n));
    return;
  }
  for (const auto& [slot, cell] : moved_) relocate(slot, cell);
  meter.charge(costs_.sweepPerEntityCost * static_cast<double>(n) +
               costs_.rebuildPerEntityCost * static_cast<double>(moved_.size()));
}

// roia-hot
void GridInterest::query(const rtf::World& world, rtf::ConstEntityRef viewer, double radius,
                         rtf::CostMeter& meter, std::vector<std::uint32_t>& visible) {
  visible.clear();
  double cost = 0.0;
  if (!valid_ || epoch_ != world.structuralEpoch()) {
    // Entities arrived or left after prepare (e.g. migration arrivals land
    // between tick begin and the AOI pass): rebuild lazily, charged here.
    rebuild(world);
    cost += costs_.rebuildPerEntityCost * static_cast<double>(world.size());
  }
  const std::span<const std::uint64_t> ids = world.ids();
  const std::span<const Vec2> positions = world.positions();
  const double radiusSq = radius * radius;
  // Cell range and circle/cell culling run against the viewer position
  // clamped into the grid rect (exactness argument in the class comment);
  // distance tests use live positions.
  const double cvx = std::clamp(viewer.position.x, originX_,
                                originX_ + cellSize_ * static_cast<double>(cols_));
  const double cvy = std::clamp(viewer.position.y, originY_,
                                originY_ + cellSize_ * static_cast<double>(rows_));
  const std::size_t loX = clampCell(std::floor((cvx - radius - originX_) / cellSize_), cols_);
  const std::size_t hiX = clampCell(std::floor((cvx + radius - originX_) / cellSize_), cols_);
  const std::size_t loY = clampCell(std::floor((cvy - radius - originY_) / cellSize_), rows_);
  const std::size_t hiY = clampCell(std::floor((cvy + radius - originY_) / cellSize_), rows_);
  const std::uint64_t viewerId = viewer.id.value;
  const Vec2 viewerPos = viewer.position;
  for (std::size_t cy = loY; cy <= hiY; ++cy) {
    const double dy = axisDistance(cvy, originY_ + cellSize_ * static_cast<double>(cy), cellSize_);
    for (std::size_t cx = loX; cx <= hiX; ++cx) {
      cost += costs_.cellVisitCost;
      const double dx =
          axisDistance(cvx, originX_ + cellSize_ * static_cast<double>(cx), cellSize_);
      if (dx * dx + dy * dy > radiusSq) continue;  // cell entirely out of range
      const std::uint32_t c = static_cast<std::uint32_t>(cy * cols_ + cx);
      for (std::uint32_t i = cellStart_[c]; i < cellStart_[c + 1]; ++i) {
        const std::uint32_t s = entries_[i];
        if (ids[s] == viewerId) continue;
        cost += costs_.candidateTestCost;
        if (positions[s].distanceSq(viewerPos) <= radiusSq) visible.push_back(s);
      }
    }
  }
  meter.charge(cost);
  // Cells are visited in spatial order; slot order == id order, so one sort
  // restores the id-ordered contract shared by all IM algorithms. Entities
  // live in exactly one cell, so no duplicate pass is needed.
  std::sort(visible.begin(), visible.end());
}

std::size_t GridInterest::scanCandidates(const rtf::World& world, Vec2 center,
                                         double radius) const {
  if (!valid_ || epoch_ != world.structuralEpoch()) return world.size();
  const double radiusSq = radius * radius;
  const double ccx =
      std::clamp(center.x, originX_, originX_ + cellSize_ * static_cast<double>(cols_));
  const double ccy =
      std::clamp(center.y, originY_, originY_ + cellSize_ * static_cast<double>(rows_));
  const std::size_t loX = clampCell(std::floor((ccx - radius - originX_) / cellSize_), cols_);
  const std::size_t hiX = clampCell(std::floor((ccx + radius - originX_) / cellSize_), cols_);
  const std::size_t loY = clampCell(std::floor((ccy - radius - originY_) / cellSize_), rows_);
  const std::size_t hiY = clampCell(std::floor((ccy + radius - originY_) / cellSize_), rows_);
  std::size_t candidates = 0;
  for (std::size_t cy = loY; cy <= hiY; ++cy) {
    const double dy = axisDistance(ccy, originY_ + cellSize_ * static_cast<double>(cy), cellSize_);
    for (std::size_t cx = loX; cx <= hiX; ++cx) {
      const double dx =
          axisDistance(ccx, originX_ + cellSize_ * static_cast<double>(cx), cellSize_);
      if (dx * dx + dy * dy > radiusSq) continue;
      const std::size_t c = cy * cols_ + cx;
      candidates += cellStart_[c + 1] - cellStart_[c];
    }
  }
  return candidates;
}

}  // namespace roia::game
