// One-call model calibration for the FPS demo: runs the measurement
// campaign (replication + migration parameter sweeps) and fits the
// scalability model — the full pipeline of the paper's section V-A.
#pragma once

#include <cstddef>
#include <vector>

#include "game/measurement.hpp"
#include "model/estimator.hpp"
#include "model/tick_model.hpp"

namespace roia::game {

struct CalibrationConfig {
  MeasurementConfig measurement{};
  /// Bot populations of the replication sweep (paper: up to 300 bots).
  std::vector<std::size_t> replicationPopulations{25, 50, 75, 100, 125, 150,
                                                  175, 200, 225, 250, 275, 300};
  /// Populations of the migration sweep.
  std::vector<std::size_t> migrationPopulations{40, 80, 120, 160, 200, 240, 280};
  std::size_t migrationsPerBurst{3};
};

struct CalibrationResult {
  model::ModelParameters parameters;
  /// Raw per-parameter samples (the scatter of paper Figs. 4 and 6).
  ParameterSamples replicationSamples;
  ParameterSamples migrationSamples;
};

/// Runs both measurement campaigns and fits the model. The default plan is
/// the paper's fixed forms; pass FitPlan::adaptive() to let corrected AIC
/// pick linear vs quadratic for the interest-dependent parameters (the
/// right choice when calibrating under the grid policy).
[[nodiscard]] CalibrationResult calibrateModel(
    const CalibrationConfig& config = {},
    const model::FitPlan& plan = model::FitPlan::paperDefault());

/// Convenience: calibrate and wrap in a TickModel.
[[nodiscard]] model::TickModel calibrateTickModel(
    const CalibrationConfig& config = {},
    const model::FitPlan& plan = model::FitPlan::paperDefault());

}  // namespace roia::game
