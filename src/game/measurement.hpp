// Instrumented measurement sessions for model-parameter determination
// (paper section V-A): connect a sweep of bot populations to a small replica
// group, let the session reach steady state, and record per-item CPU times
// for every model parameter from the servers' tick probes.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.hpp"
#include "game/bots.hpp"
#include "game/fps_app.hpp"
#include "model/bandwidth.hpp"
#include "rtf/cluster.hpp"
#include "rtf/probes.hpp"

namespace roia::game {

struct MeasurementConfig {
  /// Measured values have a high variation in real deployments (paper V-A);
  /// the default adds mild deterministic noise so the fits genuinely smooth
  /// scatter. Set server.cpu.noiseAmplitude = 0 for exact-cost runs.
  MeasurementConfig() { server.cpu.noiseAmplitude = 0.06; }

  FpsConfig fps{};
  rtf::ServerConfig server{};
  BotConfig bots{};
  /// Replicas processing the measured zone (the paper uses 2).
  std::size_t replicas{2};
  /// NPCs in the zone (the paper neglects t_npc; default 0).
  std::size_t npcs{0};
  SimDuration warmup{SimDuration::seconds(2)};
  SimDuration measure{SimDuration::seconds(4)};
  std::uint64_t seed{12345};
};

/// Per-parameter (x, y) samples: x = total user count n in the zone,
/// y = CPU microseconds per item (per user, per shadow, per NPC or per
/// migration depending on the phase).
struct ParameterSamples {
  std::array<SampleSeries, rtf::kPhaseCount> perItem;

  SampleSeries& series(rtf::Phase phase) { return perItem[static_cast<std::size_t>(phase)]; }
  [[nodiscard]] const SampleSeries& series(rtf::Phase phase) const {
    return perItem[static_cast<std::size_t>(phase)];
  }

  /// Merges samples of another run (e.g. a different population).
  void merge(const ParameterSamples& other);
};

/// Measures the replication parameters t_ua_dser, t_ua, t_fa_dser, t_fa,
/// t_npc, t_aoi, t_su over the given population sweep.
[[nodiscard]] ParameterSamples measureReplicationParameters(
    const MeasurementConfig& config, std::span<const std::size_t> populations);

/// Measures t_mig_ini / t_mig_rcv by issuing a steady stream of ping-pong
/// migrations between two replicas at each population.
[[nodiscard]] ParameterSamples measureMigrationParameters(
    const MeasurementConfig& config, std::span<const std::size_t> populations,
    std::size_t migrationsPerBurst = 3);

/// Average tick duration (ms) observed at steady state for a fixed
/// population on `replicas` servers — used for validating model predictions
/// against direct measurement.
struct SteadyStateResult {
  double tickAvgMs{0.0};
  double tickMaxMs{0.0};
  double cpuLoadAvg{0.0};
  std::size_t users{0};
  std::size_t replicas{0};
};

[[nodiscard]] SteadyStateResult measureSteadyState(const MeasurementConfig& config,
                                                   std::size_t users, std::size_t replicas);

/// Measures the average per-server network traffic (ingress/egress) at a
/// steady population — the input of the bandwidth extension of the model
/// (the analysis the paper lists as future work).
[[nodiscard]] model::BandwidthSample measureBandwidth(const MeasurementConfig& config,
                                                      std::size_t users, std::size_t replicas);

/// Convenience sweep: one BandwidthSample per population.
[[nodiscard]] std::vector<model::BandwidthSample> measureBandwidthSweep(
    const MeasurementConfig& config, std::span<const std::size_t> populations,
    std::size_t replicas);

}  // namespace roia::game
