// Pluggable interest management.
//
// The paper's RTFDemo uses the Euclidean Distance Algorithm (citing
// Boulanger et al., "Comparing Interest Management Algorithms for Massively
// Multiplayer Games"); that comparison motivates this module: the same game
// can run with different IM algorithms, and the scalability model simply
// recalibrates — the fitted t_aoi changes form and every threshold shifts.
//
// Two algorithms are provided:
//  * EuclideanInterest — the paper's baseline: for user U every entity is
//    distance-tested and every subscription scans the update list for
//    duplicates (the quadratic t_aoi of Fig. 4).
//  * GridInterest — a persistent flat uniform grid in CSR layout
//    (cell-start offsets + one slot array grouped by cell, built by
//    counting sort and incrementally patched as entities move between
//    cells); queries visit only the cells overlapping the interest circle,
//    making the per-user cost nearly independent of the arena population
//    outside the radius.
//
// Queries traffic in world *slots* (indices into the SoA columns, ascending
// slot order == ascending id order), so downstream consumers gather state
// straight from the columns without per-id hash lookups. Slot-keyed grid
// state is validated against World::structuralEpoch(): a query that runs
// after an unseen spawn/despawn lazily rebuilds (and charges for it).
//
// Thread-model note: one policy instance may serve several servers because
// the simulation executes each server tick as one atomic event; prepare()
// is called at the start of a tick and queries only happen within that same
// tick.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/math.hpp"
#include "common/types.hpp"
#include "rtf/entity.hpp"
#include "rtf/probes.hpp"
#include "rtf/world.hpp"

namespace roia::game {

/// Cost constants of the IM algorithms (reference microseconds).
struct InterestCosts {
  /// Euclidean: one distance test per candidate entity.
  double pairTestCost{0.45};
  /// Euclidean: duplicate check per update-list entry already subscribed.
  double subscribeScanCost{0.011};
  /// Grid: indexing one entity during a full (counting-sort) rebuild; also
  /// charged per *relocated* entity on the incremental path.
  double rebuildPerEntityCost{0.08};
  /// Grid: detecting whether one entity changed cells during the per-tick
  /// incremental position sweep.
  double sweepPerEntityCost{0.004};
  /// Grid: visiting one cell during a query.
  double cellVisitCost{0.15};
  /// Grid: distance test per candidate pulled from a visited cell.
  double candidateTestCost{0.05};
};

class InterestPolicy {
 public:
  virtual ~InterestPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once at the start of each server tick (phase kAoi); index
  /// structures are (re)built or incrementally maintained here.
  virtual void prepare(const rtf::World& world, rtf::CostMeter& meter) = 0;

  /// Slots of entities within `radius` of the viewer, excluding the viewer,
  /// in ascending slot (== id) order, written into `out` (cleared first) so
  /// per-tick callers can reuse one scratch allocation. Charges the query
  /// cost to the meter. Returned slots stay valid until the next structural
  /// world mutation.
  virtual void query(const rtf::World& world, rtf::ConstEntityRef viewer, double radius,
                     rtf::CostMeter& meter, std::vector<std::uint32_t>& out) = 0;

  /// Charged candidate count for an application-level radius scan around
  /// `center` (NPC target acquisition, shadow re-indexing): how many
  /// entities the algorithm would have to consider. Euclidean has no index,
  /// so every avatar is a candidate; the grid only counts occupancy of the
  /// cells overlapping the circle. Pure accounting — no allocation, no
  /// meter charge (callers fold the count into their own cost terms).
  [[nodiscard]] virtual std::size_t scanCandidates(const rtf::World& world, Vec2 center,
                                                   double radius) const = 0;
};

/// The paper's Euclidean Distance Algorithm (section V-A).
class EuclideanInterest final : public InterestPolicy {
 public:
  explicit EuclideanInterest(InterestCosts costs = {}) : costs_(costs) {}

  [[nodiscard]] std::string name() const override { return "euclidean"; }
  void prepare(const rtf::World& world, rtf::CostMeter& meter) override;
  void query(const rtf::World& world, rtf::ConstEntityRef viewer, double radius,
             rtf::CostMeter& meter, std::vector<std::uint32_t>& out) override;
  [[nodiscard]] std::size_t scanCandidates(const rtf::World& world, Vec2 center,
                                           double radius) const override;

 private:
  InterestCosts costs_;
};

/// Persistent flat uniform grid, CSR layout.
///
/// `cellStart_[c]..cellStart_[c+1]` indexes `entries_`, the slots whose
/// (clamped) position falls in cell c, ascending within each cell. The grid
/// rect is sized on rebuild to the entity bounding box plus a two-cell
/// margin (capped at kMaxAxisCells per axis); positions outside the rect
/// clamp into edge cells. Queries compute both the cell range and the
/// circle/cell culling against the *clamped* viewer position — clamping
/// both endpoints of a segment into the same interval never increases a
/// per-axis distance, so no cell holding an in-range entity is ever
/// skipped; the actual distance tests use live positions, keeping visible
/// sets exactly equal to the Euclidean algorithm's.
class GridInterest final : public InterestPolicy {
 public:
  /// `cellSize` should be on the order of half the interest radius.
  explicit GridInterest(double cellSize, InterestCosts costs = {})
      : cellSize_(cellSize), costs_(costs) {}

  [[nodiscard]] std::string name() const override { return "grid"; }
  void prepare(const rtf::World& world, rtf::CostMeter& meter) override;
  void query(const rtf::World& world, rtf::ConstEntityRef viewer, double radius,
             rtf::CostMeter& meter, std::vector<std::uint32_t>& out) override;
  [[nodiscard]] std::size_t scanCandidates(const rtf::World& world, Vec2 center,
                                           double radius) const override;

  /// Cells in the current grid rect (allocated, not merely occupied).
  [[nodiscard]] std::size_t cellCount() const { return cols_ * rows_; }

 private:
  static constexpr std::size_t kMaxAxisCells = 1024;

  void rebuild(const rtf::World& world);
  void relocate(std::uint32_t slot, std::uint32_t toCell);
  [[nodiscard]] std::uint32_t cellIndexOf(Vec2 p) const;
  [[nodiscard]] std::size_t axisCells(double extent) const;

  double cellSize_;
  InterestCosts costs_;
  bool valid_{false};
  std::uint64_t epoch_{0};  ///< World::structuralEpoch the layout reflects
  double originX_{0.0};
  double originY_{0.0};
  std::size_t cols_{1};
  std::size_t rows_{1};
  std::vector<std::uint32_t> cellStart_;  ///< cols_*rows_ + 1 prefix offsets
  std::vector<std::uint32_t> entries_;    ///< slots grouped by cell, ascending
  std::vector<std::uint32_t> cellOf_;     ///< slot -> current cell
  std::vector<std::uint32_t> cursor_;     ///< counting-sort scratch
  std::vector<std::pair<std::uint32_t, std::uint32_t>> moved_;  ///< sweep scratch
};

/// Fidelity-scaled wrapper: multiplies every query radius by the world's
/// current interest scale before delegating to the wrapped algorithm. The
/// scale lives in the World (1:1 with a server), set by that server's
/// overload degradation ladder, so one overloaded replica narrows only its
/// own users' AOI — peers sharing the same policy object are unaffected.
class FidelityScaledInterest final : public InterestPolicy {
 public:
  explicit FidelityScaledInterest(std::unique_ptr<InterestPolicy> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::string name() const override { return "fidelity(" + inner_->name() + ")"; }
  void prepare(const rtf::World& world, rtf::CostMeter& meter) override {
    inner_->prepare(world, meter);
  }
  void query(const rtf::World& world, rtf::ConstEntityRef viewer, double radius,
             rtf::CostMeter& meter, std::vector<std::uint32_t>& out) override {
    inner_->query(world, viewer, radius * world.interestScale(), meter, out);
  }
  [[nodiscard]] std::size_t scanCandidates(const rtf::World& world, Vec2 center,
                                           double radius) const override {
    return inner_->scanCandidates(world, center, radius * world.interestScale());
  }

  [[nodiscard]] InterestPolicy& inner() { return *inner_; }

 private:
  std::unique_ptr<InterestPolicy> inner_;
};

}  // namespace roia::game
