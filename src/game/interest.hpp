// Pluggable interest management.
//
// The paper's RTFDemo uses the Euclidean Distance Algorithm (citing
// Boulanger et al., "Comparing Interest Management Algorithms for Massively
// Multiplayer Games"); that comparison motivates this module: the same game
// can run with different IM algorithms, and the scalability model simply
// recalibrates — the fitted t_aoi changes form and every threshold shifts.
//
// Two algorithms are provided:
//  * EuclideanInterest — the paper's baseline: for user U every entity is
//    distance-tested and every subscription scans the update list for
//    duplicates (the quadratic t_aoi of Fig. 4).
//  * GridInterest — a uniform spatial hash rebuilt once per tick; queries
//    visit only nearby cells, making the per-user cost nearly independent
//    of the arena population outside the radius.
//
// Thread-model note: one policy instance may serve several servers because
// the simulation executes each server tick as one atomic event; prepare()
// is called at the start of a tick and queries only happen within that same
// tick.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/math.hpp"
#include "common/types.hpp"
#include "rtf/probes.hpp"
#include "rtf/world.hpp"

namespace roia::game {

/// Cost constants of the IM algorithms (reference microseconds).
struct InterestCosts {
  /// Euclidean: one distance test per candidate entity.
  double pairTestCost{0.45};
  /// Both: duplicate check per update-list entry already subscribed.
  double subscribeScanCost{0.011};
  /// Grid: indexing one entity during the per-tick rebuild.
  double rebuildPerEntityCost{0.08};
  /// Grid: visiting one cell during a query.
  double cellVisitCost{0.15};
  /// Grid: distance test per candidate pulled from a visited cell.
  double candidateTestCost{0.05};
};

class InterestPolicy {
 public:
  virtual ~InterestPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once at the start of each server tick (phase kAoi); index
  /// structures are rebuilt here.
  virtual void prepare(const rtf::World& world, rtf::CostMeter& meter) = 0;

  /// Entities within `radius` of the viewer, excluding the viewer, in
  /// ascending id order, written into `out` (cleared first) so per-tick
  /// callers can reuse one scratch allocation. Charges the query cost to
  /// the meter.
  virtual void query(const rtf::World& world, const rtf::EntityRecord& viewer, double radius,
                     rtf::CostMeter& meter, std::vector<EntityId>& out) = 0;
};

/// The paper's Euclidean Distance Algorithm (section V-A).
class EuclideanInterest final : public InterestPolicy {
 public:
  explicit EuclideanInterest(InterestCosts costs = {}) : costs_(costs) {}

  [[nodiscard]] std::string name() const override { return "euclidean"; }
  void prepare(const rtf::World& world, rtf::CostMeter& meter) override;
  void query(const rtf::World& world, const rtf::EntityRecord& viewer, double radius,
             rtf::CostMeter& meter, std::vector<EntityId>& out) override;

 private:
  InterestCosts costs_;
};

/// Uniform-grid spatial hash with per-tick rebuild.
class GridInterest final : public InterestPolicy {
 public:
  /// `cellSize` should be on the order of the interest radius.
  explicit GridInterest(double cellSize, InterestCosts costs = {})
      : cellSize_(cellSize), costs_(costs) {}

  [[nodiscard]] std::string name() const override { return "grid"; }
  void prepare(const rtf::World& world, rtf::CostMeter& meter) override;
  void query(const rtf::World& world, const rtf::EntityRecord& viewer, double radius,
             rtf::CostMeter& meter, std::vector<EntityId>& out) override;

  [[nodiscard]] std::size_t cellCount() const { return cells_.size(); }

 private:
  struct CellEntry {
    EntityId id;
    Vec2 position;
  };

  [[nodiscard]] std::int64_t cellKey(double x, double y) const;

  double cellSize_;
  InterestCosts costs_;
  std::unordered_map<std::int64_t, std::vector<CellEntry>> cells_;
};

/// Fidelity-scaled wrapper: multiplies every query radius by the world's
/// current interest scale before delegating to the wrapped algorithm. The
/// scale lives in the World (1:1 with a server), set by that server's
/// overload degradation ladder, so one overloaded replica narrows only its
/// own users' AOI — peers sharing the same policy object are unaffected.
class FidelityScaledInterest final : public InterestPolicy {
 public:
  explicit FidelityScaledInterest(std::unique_ptr<InterestPolicy> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::string name() const override { return "fidelity(" + inner_->name() + ")"; }
  void prepare(const rtf::World& world, rtf::CostMeter& meter) override {
    inner_->prepare(world, meter);
  }
  void query(const rtf::World& world, const rtf::EntityRecord& viewer, double radius,
             rtf::CostMeter& meter, std::vector<EntityId>& out) override {
    inner_->query(world, viewer, radius * world.interestScale(), meter, out);
  }

  [[nodiscard]] InterestPolicy& inner() { return *inner_; }

 private:
  std::unique_ptr<InterestPolicy> inner_;
};

}  // namespace roia::game
