#include "game/bots.hpp"

#include <algorithm>

#include "game/state_update.hpp"

namespace roia::game {

std::vector<std::uint8_t> BotProvider::nextCommands(SimTime now, Rng& rng) {
  (void)now;
  CommandBatch batch;

  // Move every tick; change heading occasionally.
  if (!hasHeading_ || rng.chance(config_.turnProbability)) {
    heading_ = Vec2{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)}.normalized();
    if (heading_.lengthSq() == 0.0) heading_ = {1.0, 0.0};
    hasHeading_ = true;
  }
  batch.move = MoveCommand{heading_};

  // Attack probability grows with the number of potential targets.
  const double p = std::min(config_.attackProbabilityCap,
                            config_.attackBaseProbability +
                                config_.attackPerVisibleProbability *
                                    static_cast<double>(seenEntities_.size()));
  if (!seenEntities_.empty() && rng.chance(p)) {
    const std::size_t pick =
        static_cast<std::size_t>(rng.uniformInt(0, seenEntities_.size() - 1));
    batch.attack = AttackCommand{seenEntities_[pick], heading_};
    ++attacksIssued_;
  }

  ++commandsIssued_;
  return encodeCommands(batch);
}

void BotProvider::onStateUpdate(std::span<const std::uint8_t> update) {
  const StateUpdatePayload payload = decodeStateUpdate(update);
  seenEntities_.clear();
  seenEntities_.reserve(payload.visible.size());
  for (const VisibleEntity& e : payload.visible) {
    seenEntities_.push_back(e.id);
  }
}

void BotProvider::onStateView(std::uint64_t serverTick, ClientId self,
                              const rtf::SnapshotView& view) {
  (void)serverTick;
  // Same seen-list as the full codec: the view carries the bot's own avatar
  // too (it is the baseline for the client's own state), which the full
  // update reports as `self`, not as a visible entity — filter it out. The
  // map iterates in ascending id order, matching the slot-ordered full list.
  seenEntities_.clear();
  for (const auto& [id, snapshot] : view) {
    if (snapshot.client == self) continue;
    seenEntities_.push_back(id);
  }
}

}  // namespace roia::game
