// User command encoding for the FPS demo game (RTFDemo analogue).
//
// Per tick each user can issue a move command, an attack command or both —
// exactly the input model the paper describes for RTFDemo in section V-A.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/math.hpp"
#include "common/types.hpp"

namespace roia::game {

struct MoveCommand {
  Vec2 direction;  // unit-ish direction; server normalizes
};

struct AttackCommand {
  EntityId target;
  Vec2 aim;  // aim direction, carried for realism of payload size
};

struct CommandBatch {
  std::optional<MoveCommand> move;
  std::optional<AttackCommand> attack;

  [[nodiscard]] bool empty() const { return !move && !attack; }
};

/// Encodes a batch into the opaque command bytes carried by ClientInputMsg.
[[nodiscard]] std::vector<std::uint8_t> encodeCommands(const CommandBatch& batch);

/// Decodes command bytes; throws ser::DecodeError on malformed input.
[[nodiscard]] CommandBatch decodeCommands(std::span<const std::uint8_t> bytes);

/// Interaction payload for events that cross replicas (forwarded inputs):
/// an attack hitting a shadow entity, or the kill credit flowing back to
/// the attacker's responsible server.
struct Interaction {
  enum class Kind : std::uint8_t { kAttack = 1, kKillCredit = 2 };
  Kind kind{Kind::kAttack};
  double damage{0.0};  // meaningful for kAttack
};

[[nodiscard]] std::vector<std::uint8_t> encodeInteraction(const Interaction& interaction);
[[nodiscard]] Interaction decodeInteraction(std::span<const std::uint8_t> bytes);

}  // namespace roia::game
