// Workload scenarios: piecewise-linear target user counts over time, plus a
// churn driver that connects/disconnects bot clients to track the target —
// the "continuously changing number of users" of the paper's Fig. 8.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "game/bots.hpp"
#include "rtf/cluster.hpp"
#include "sim/simulation.hpp"

namespace roia::game {

/// Piecewise-linear workload: each segment ramps linearly from the previous
/// segment's target to its own target over its duration.
class WorkloadScenario {
 public:
  struct Segment {
    SimDuration duration;
    std::size_t targetUsers;
  };

  WorkloadScenario() = default;
  explicit WorkloadScenario(std::vector<Segment> segments) : segments_(std::move(segments)) {}

  WorkloadScenario& then(SimDuration duration, std::size_t targetUsers) {
    segments_.push_back({duration, targetUsers});
    return *this;
  }

  /// Target user count at absolute time `t` (holds the last target after the
  /// final segment).
  [[nodiscard]] std::size_t targetAt(SimTime t) const;

  [[nodiscard]] SimDuration totalDuration() const;
  [[nodiscard]] const std::vector<Segment>& segments() const { return segments_; }

  /// The paper's Fig. 8 shape: ramp to 300 users, hold, and drain again.
  static WorkloadScenario paperSession(std::size_t peakUsers = 300,
                                       SimDuration rampUp = SimDuration::seconds(60),
                                       SimDuration hold = SimDuration::seconds(30),
                                       SimDuration rampDown = SimDuration::seconds(60));

  /// Constant population (for parameter-measurement runs).
  static WorkloadScenario constant(std::size_t users, SimDuration duration);

 private:
  std::vector<Segment> segments_;
};

/// Connects/disconnects bot clients on a fixed cadence so the live user
/// count tracks the scenario target.
class ChurnDriver {
 public:
  struct Config {
    SimDuration period{SimDuration::milliseconds(200)};
    /// Upper bound of joins/leaves per period (connection-rate limit).
    std::size_t maxChangePerPeriod{5};
    BotConfig bots{};
    std::uint64_t seed{7};
    /// Retry backoff after the cluster's admission gate vetoes a join:
    /// base * 2^k with k = consecutive vetoed waves (exponent capped), plus
    /// seeded jitter, bounded by backoffCap. Jitter draws RNG only on a
    /// veto, so runs without admission control are byte-identical.
    SimDuration backoffBase{SimDuration::milliseconds(400)};
    SimDuration backoffCap{SimDuration::seconds(5)};
    /// Multiplicative jitter in [0, backoffJitter] on each backoff delay.
    double backoffJitter{0.25};
  };

  /// Multi-zone form (sharded worlds): joins go to the zone with the fewest
  /// users (earliest zone wins ties), leaves pick uniformly over all
  /// clients. Deterministic for a given seed.
  ChurnDriver(rtf::Cluster& cluster, std::vector<ZoneId> zones, WorkloadScenario scenario,
              Config config);
  ChurnDriver(rtf::Cluster& cluster, ZoneId zone, WorkloadScenario scenario, Config config)
      : ChurnDriver(cluster, std::vector<ZoneId>{zone}, std::move(scenario), config) {}
  ChurnDriver(rtf::Cluster& cluster, ZoneId zone, WorkloadScenario scenario)
      : ChurnDriver(cluster, zone, std::move(scenario), Config{}) {}

  /// Starts driving; runs until stop() or forever (scenario holds last value).
  void start();
  void stop();

  [[nodiscard]] std::size_t currentUsers() const { return cluster_.clientCount(); }
  [[nodiscard]] std::uint64_t totalJoins() const { return joins_; }
  [[nodiscard]] std::uint64_t totalLeaves() const { return leaves_; }
  /// Joins refused by the cluster's admission gate.
  [[nodiscard]] std::uint64_t totalVetoedJoins() const { return joinsVetoed_; }
  /// Join waves re-attempted after a backoff window expired.
  [[nodiscard]] std::uint64_t totalJoinRetries() const { return joinRetries_; }
  /// End of the current backoff window; zero when not backing off.
  [[nodiscard]] SimTime backoffUntil() const { return backoffUntil_; }

 private:
  bool step(SimTime now);
  void enterBackoff(SimTime now);

  rtf::Cluster& cluster_;
  std::vector<ZoneId> zones_;
  WorkloadScenario scenario_;
  Config config_;
  Rng rng_;
  sim::Simulation::PeriodicToken token_;
  bool runningFlag_{false};
  std::uint64_t joins_{0};
  std::uint64_t leaves_{0};
  std::uint64_t joinsVetoed_{0};
  std::uint64_t joinRetries_{0};
  std::size_t vetoStreak_{0};
  SimTime backoffUntil_{SimTime::zero()};
  /// Trace id of the open admission refuse+backoff protocol instance
  /// (0 = none); spans first veto → first successful re-admission.
  std::uint64_t admissionTrace_{0};
};

}  // namespace roia::game
