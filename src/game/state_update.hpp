// State update payload of the FPS demo: the filtered set of visible
// entities, encoded compactly. Clients decode it to drive their bots.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace roia::game {

struct VisibleEntity {
  EntityId id;
  float x{0.0f};
  float y{0.0f};
  float health{0.0f};
};

struct StateUpdatePayload {
  /// The viewer's own state leads the update.
  VisibleEntity self;
  std::vector<VisibleEntity> visible;
};

/// Encodes into `out`, reusing its capacity (hot path: one update per client
/// per tick). The sole encode entry point: a value-returning overload would
/// allocate on the hot path, so callers that want a fresh buffer pass one in.
void encodeStateUpdate(const StateUpdatePayload& payload, std::vector<std::uint8_t>& out);
[[nodiscard]] StateUpdatePayload decodeStateUpdate(std::span<const std::uint8_t> bytes);

/// Encoded size of one visible-entity record, used by cost accounting tests.
[[nodiscard]] std::size_t approxVisibleEntityBytes();

}  // namespace roia::game
