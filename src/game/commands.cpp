#include "game/commands.hpp"

#include "serialize/byte_buffer.hpp"

namespace roia::game {
namespace {

constexpr std::uint8_t kHasMove = 0x01;
constexpr std::uint8_t kHasAttack = 0x02;

}  // namespace

std::vector<std::uint8_t> encodeCommands(const CommandBatch& batch) {
  ser::ByteWriter writer(32);
  std::uint8_t flags = 0;
  if (batch.move) flags |= kHasMove;
  if (batch.attack) flags |= kHasAttack;
  writer.writeU8(flags);
  if (batch.move) {
    writer.writeF32(static_cast<float>(batch.move->direction.x));
    writer.writeF32(static_cast<float>(batch.move->direction.y));
  }
  if (batch.attack) {
    writer.writeVarU64(batch.attack->target.value);
    writer.writeF32(static_cast<float>(batch.attack->aim.x));
    writer.writeF32(static_cast<float>(batch.attack->aim.y));
  }
  return std::move(writer).take();
}

CommandBatch decodeCommands(std::span<const std::uint8_t> bytes) {
  ser::ByteReader reader(bytes);
  CommandBatch batch;
  const std::uint8_t flags = reader.readU8();
  if (flags & kHasMove) {
    MoveCommand move;
    move.direction.x = reader.readF32();
    move.direction.y = reader.readF32();
    batch.move = move;
  }
  if (flags & kHasAttack) {
    AttackCommand attack;
    attack.target = EntityId{reader.readVarU64()};
    attack.aim.x = reader.readF32();
    attack.aim.y = reader.readF32();
    batch.attack = attack;
  }
  return batch;
}

std::vector<std::uint8_t> encodeInteraction(const Interaction& interaction) {
  ser::ByteWriter writer(12);
  writer.writeU8(static_cast<std::uint8_t>(interaction.kind));
  writer.writeF64(interaction.damage);
  return std::move(writer).take();
}

Interaction decodeInteraction(std::span<const std::uint8_t> bytes) {
  ser::ByteReader reader(bytes);
  Interaction interaction;
  interaction.kind = static_cast<Interaction::Kind>(reader.readU8());
  interaction.damage = reader.readF64();
  return interaction;
}

}  // namespace roia::game
