#include "game/state_update.hpp"

#include "serialize/byte_buffer.hpp"

namespace roia::game {
namespace {

void writeVisible(ser::ByteWriter& writer, const VisibleEntity& e) {
  writer.writeVarU64(e.id.value);
  writer.writeF32(e.x);
  writer.writeF32(e.y);
  writer.writeF32(e.health);
}

VisibleEntity readVisible(ser::ByteReader& reader) {
  VisibleEntity e;
  e.id = EntityId{reader.readVarU64()};
  e.x = reader.readF32();
  e.y = reader.readF32();
  e.health = reader.readF32();
  return e;
}

}  // namespace

void encodeStateUpdate(const StateUpdatePayload& payload, std::vector<std::uint8_t>& out) {
  ser::ByteWriter writer(std::move(out));
  writer.reserve(16 + payload.visible.size() * 16);
  writeVisible(writer, payload.self);
  writer.writeVarU64(payload.visible.size());
  for (const VisibleEntity& e : payload.visible) writeVisible(writer, e);
  out = std::move(writer).take();
}

StateUpdatePayload decodeStateUpdate(std::span<const std::uint8_t> bytes) {
  ser::ByteReader reader(bytes);
  StateUpdatePayload payload;
  payload.self = readVisible(reader);
  const std::uint64_t count = reader.readVarU64();
  // Each record occupies multiple bytes; a count beyond the remaining input
  // is malformed and must not drive a huge allocation.
  if (count > reader.remaining()) throw ser::DecodeError("implausible visible count");
  payload.visible.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) payload.visible.push_back(readVisible(reader));
  return payload;
}

std::size_t approxVisibleEntityBytes() {
  // varint id (~2-4 bytes) + three f32 fields.
  return 3 + 12;
}

}  // namespace roia::game
