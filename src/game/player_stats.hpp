// Per-player application state of the FPS demo — kills, deaths, score —
// stored in the entity's opaque appData blob. RTF marshals the blob
// generically: it replicates to shadow copies and travels with user
// migrations, so a player keeps their score across server hand-overs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace roia::game {

struct PlayerStats {
  std::uint32_t kills{0};
  std::uint32_t deaths{0};
  std::uint64_t score{0};

  bool operator==(const PlayerStats&) const = default;
};

[[nodiscard]] std::vector<std::uint8_t> encodeStats(const PlayerStats& stats);

/// Decodes stats; an empty blob decodes to all-zero stats (fresh player).
/// Throws ser::DecodeError on malformed non-empty input.
[[nodiscard]] PlayerStats decodeStats(std::span<const std::uint8_t> bytes);

}  // namespace roia::game
