#include "game/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

namespace roia::game {

std::size_t WorkloadScenario::targetAt(SimTime t) const {
  if (segments_.empty()) return 0;
  double previousTarget = 0.0;
  SimTime segmentStart = SimTime::zero();
  for (const Segment& segment : segments_) {
    const SimTime segmentEnd = segmentStart + segment.duration;
    if (t < segmentEnd) {
      const double progress =
          segment.duration.micros > 0
              ? static_cast<double>((t - segmentStart).micros) /
                    static_cast<double>(segment.duration.micros)
              : 1.0;
      const double value =
          previousTarget + (static_cast<double>(segment.targetUsers) - previousTarget) * progress;
      return static_cast<std::size_t>(std::llround(std::max(0.0, value)));
    }
    previousTarget = static_cast<double>(segment.targetUsers);
    segmentStart = segmentEnd;
  }
  return segments_.back().targetUsers;
}

SimDuration WorkloadScenario::totalDuration() const {
  SimDuration total = SimDuration::zero();
  for (const Segment& segment : segments_) total += segment.duration;
  return total;
}

WorkloadScenario WorkloadScenario::paperSession(std::size_t peakUsers, SimDuration rampUp,
                                                SimDuration hold, SimDuration rampDown) {
  WorkloadScenario scenario;
  scenario.then(rampUp, peakUsers).then(hold, peakUsers).then(rampDown, 0);
  return scenario;
}

WorkloadScenario WorkloadScenario::constant(std::size_t users, SimDuration duration) {
  WorkloadScenario scenario;
  scenario.then(SimDuration::zero(), users).then(duration, users);
  return scenario;
}

ChurnDriver::ChurnDriver(rtf::Cluster& cluster, std::vector<ZoneId> zones,
                         WorkloadScenario scenario, Config config)
    : cluster_(cluster),
      zones_(std::move(zones)),
      scenario_(std::move(scenario)),
      config_(config),
      rng_(config.seed) {
  if (zones_.empty()) throw std::invalid_argument("ChurnDriver: no zones");
}

void ChurnDriver::start() {
  if (runningFlag_) return;
  runningFlag_ = true;
  token_ = cluster_.simulation().schedulePeriodic(config_.period,
                                                  [this](SimTime now) { return step(now); });
}

void ChurnDriver::stop() {
  if (!runningFlag_) return;
  runningFlag_ = false;
  sim::Simulation::cancelPeriodic(token_);
}

bool ChurnDriver::step(SimTime now) {
  if (!runningFlag_) return false;
  const std::size_t target = scenario_.targetAt(now);
  const std::size_t current = cluster_.clientCount();
  if (target > current) {
    // Admission backoff: after a vetoed join wave, hold all joins until the
    // window expires (leaves below are unaffected).
    if (now < backoffUntil_) return true;
    if (vetoStreak_ > 0) ++joinRetries_;
    const std::size_t joins = std::min(config_.maxChangePerPeriod, target - current);
    for (std::size_t i = 0; i < joins; ++i) {
      // Least-populated zone first keeps a sharded world's load spread.
      ZoneId pick = zones_.front();
      std::size_t fewest = cluster_.zoneUserCount(pick);
      for (std::size_t z = 1; z < zones_.size(); ++z) {
        const std::size_t users = cluster_.zoneUserCount(zones_[z]);
        if (users < fewest) {
          fewest = users;
          pick = zones_[z];
        }
      }
      const ClientId admitted =
          cluster_.connectClient(pick, std::make_unique<BotProvider>(config_.bots));
      if (!admitted.valid()) {
        // Admission vetoed: queue behind an exponential backoff with seeded
        // jitter instead of hammering the gate every period.
        ++joinsVetoed_;
        ++vetoStreak_;
        if (obs::Telemetry* telemetry = cluster_.telemetry()) {
          if (vetoStreak_ == 1) {
            admissionTrace_ = obs::admissionTraceId(joinsVetoed_);
            telemetry->protocols.begin(obs::Protocol::kAdmissionRetry, admissionTrace_, now);
          } else if (admissionTrace_ != 0) {
            telemetry->protocols.phase(obs::Protocol::kAdmissionRetry, admissionTrace_, now,
                                       "retry_vetoed");
          }
        }
        enterBackoff(now);
        break;
      }
      if (vetoStreak_ > 0 && admissionTrace_ != 0) {
        if (obs::Telemetry* telemetry = cluster_.telemetry()) {
          telemetry->protocols.end(obs::Protocol::kAdmissionRetry, admissionTrace_, now,
                                   obs::ProtocolOutcome::kCompleted);
        }
        admissionTrace_ = 0;
      }
      vetoStreak_ = 0;
      ++joins_;
    }
  } else if (target < current) {
    const std::size_t leaves = std::min(config_.maxChangePerPeriod, current - target);
    for (std::size_t i = 0; i < leaves; ++i) {
      const std::vector<ClientId> ids = cluster_.clientIds();
      if (ids.empty()) break;
      const std::size_t pick = static_cast<std::size_t>(rng_.uniformInt(0, ids.size() - 1));
      cluster_.disconnectClient(ids[pick]);
      ++leaves_;
    }
  }
  return true;
}

void ChurnDriver::enterBackoff(SimTime now) {
  if (config_.backoffBase.micros <= 0) return;
  const std::size_t exponent = std::min<std::size_t>(vetoStreak_ > 0 ? vetoStreak_ - 1 : 0, 6);
  double delayMicros =
      static_cast<double>(config_.backoffBase.micros) * static_cast<double>(std::size_t{1} << exponent);
  delayMicros *= 1.0 + config_.backoffJitter * rng_.uniform(0.0, 1.0);
  delayMicros = std::min(delayMicros, static_cast<double>(config_.backoffCap.micros));
  backoffUntil_ = now + SimDuration::microseconds(static_cast<std::int64_t>(delayMicros));
}

}  // namespace roia::game
