#include "game/fps_app.hpp"

#include <algorithm>
#include <span>

#include "common/log.hpp"
#include "game/player_stats.hpp"
#include "game/state_update.hpp"
#include "serialize/byte_buffer.hpp"
#include "serialize/crc32.hpp"

namespace roia::game {
namespace {

InterestCosts interestCostsFrom(const FpsConfig& config) {
  InterestCosts costs;
  costs.pairTestCost = config.aoiPerEntityCost;
  costs.subscribeScanCost = config.aoiSubscribeScanCost;
  costs.rebuildPerEntityCost = config.aoiRebuildPerEntityCost;
  costs.sweepPerEntityCost = config.aoiSweepPerEntityCost;
  costs.cellVisitCost = config.aoiCellVisitCost;
  costs.candidateTestCost = config.aoiCandidateTestCost;
  return costs;
}

}  // namespace

std::unique_ptr<InterestPolicy> makeInterestPolicy(const FpsConfig& config) {
  const InterestCosts costs = interestCostsFrom(config);
  if (config.interestPolicy == InterestPolicyKind::kGrid) {
    const double cell = config.gridCellSize > 0.0 ? config.gridCellSize : config.aoiRadius * 0.5;
    return std::make_unique<GridInterest>(cell, costs);
  }
  return std::make_unique<EuclideanInterest>(costs);
}

void applyGridInterestProfile(FpsConfig& config) {
  config.interestPolicy = InterestPolicyKind::kGrid;
  // Slot-handle gather over contiguous SoA columns instead of hash find +
  // fat-record walk per visible id (see header).
  config.suGatherPerEntityCost = 0.12;
}

FpsApplication::FpsApplication(FpsConfig config)
    : config_(config), interest_(makeInterestPolicy(config)) {}

void FpsApplication::setInterestPolicy(std::unique_ptr<InterestPolicy> policy) {
  if (policy != nullptr) interest_ = std::move(policy);
}

void FpsApplication::onTickBegin(rtf::World& world, rtf::CostMeter& meter) {
  rtf::PhaseScope scope(meter, rtf::Phase::kAoi);
  interest_->prepare(world, meter);
}

void FpsApplication::applyUserInput(rtf::World& world, rtf::EntityRef avatar,
                                    std::span<const std::uint8_t> commands,
                                    rtf::CostMeter& meter, rtf::ForwardSink& forward, Rng& rng) {
  const CommandBatch batch = decodeCommands(commands);
  if (batch.move) {
    applyMove(avatar, *batch.move, meter);
  }
  if (batch.attack) {
    applyAttack(world, avatar, *batch.attack, meter, forward, rng);
  }
}

void FpsApplication::applyMove(rtf::EntityRef avatar, const MoveCommand& move,
                               rtf::CostMeter& meter) {
  meter.charge(config_.moveApplyCost);
  const Vec2 dir = move.direction.normalized();
  avatar.velocity = dir * config_.moveSpeed;
  avatar.position += avatar.velocity * config_.tickSeconds;
  clampToArena(avatar.position);
}

// roia-hot
void FpsApplication::applyAttack(rtf::World& world, rtf::EntityRef attacker,
                                 const AttackCommand& attack, rtf::CostMeter& meter,
                                 rtf::ForwardSink& forward, Rng& rng) {
  const double rangeSq = config_.attackRange * config_.attackRange;
  std::size_t hitSlot = rtf::World::npos;
  if (config_.interestPolicy == InterestPolicyKind::kGrid) {
    // Grid profile: the spatial index answers "who could this attack hit"
    // with the occupancy of the cells overlapping the attack circle, so
    // validation cost is local instead of O(avatars).
    const std::size_t candidates =
        interest_->scanCandidates(world, attacker.position, config_.attackRange);
    meter.charge(config_.attackValidateBaseCost +
                 config_.attackScanPerEntityCost * static_cast<double>(candidates));
    const std::size_t s = world.slotOf(attack.target);
    if (s != rtf::World::npos && world.kinds()[s] == rtf::EntityKind::kAvatar &&
        attack.target != attacker.id &&
        world.positions()[s].distanceSq(attacker.position) <= rangeSq) {
      hitSlot = s;
    }
  } else {
    // Euclidean baseline: hit resolution iterates through all users to
    // check who is hit by the attack (the paper's stated reason t_ua grows
    // super-linearly). The scan is genuinely performed, not just charged.
    const std::span<const std::uint64_t> ids = world.ids();
    const std::span<const rtf::EntityKind> kinds = world.kinds();
    const std::span<const Vec2> positions = world.positions();
    std::size_t scanned = 0;
    const std::size_t n = ids.size();
    for (std::size_t s = 0; s < n; ++s) {
      if (kinds[s] != rtf::EntityKind::kAvatar || ids[s] == attacker.id.value) continue;
      ++scanned;
      if (ids[s] == attack.target.value &&
          positions[s].distanceSq(attacker.position) <= rangeSq) {
        hitSlot = s;
      }
    }
    meter.charge(config_.attackValidateBaseCost +
                 config_.attackScanPerEntityCost * static_cast<double>(scanned));
  }
  if (hitSlot == rtf::World::npos) return;

  rtf::EntityRef hit = world.refAt(hitSlot);
  if (hit.owner == attacker.owner) {
    // Target is active on this server: apply the hit locally.
    meter.charge(config_.applyHitCost);
    if (applyDamage(hit, config_.attackDamage, &rng, meter)) {
      creditKill(attacker, meter);
    }
    hit.version += 1;
  } else {
    // Target is a shadow entity: forward the interaction to its server.
    forward.forwardInteraction(
        hit.id, attacker.id,
        encodeInteraction(Interaction{Interaction::Kind::kAttack, config_.attackDamage}));
  }
}

void FpsApplication::applyForwardedInteraction(rtf::World& world, rtf::EntityRef target,
                                               EntityId source,
                                               std::span<const std::uint8_t> payload,
                                               rtf::CostMeter& meter,
                                               rtf::ForwardSink& forward) {
  const Interaction interaction = decodeInteraction(payload);
  meter.charge(config_.fwdApplyCost);
  switch (interaction.kind) {
    case Interaction::Kind::kAttack: {
      const bool killed = applyDamage(target, interaction.damage, nullptr, meter);
      target.version += 1;
      if (killed) {
        // Credit the attacker on its own responsible server: if the
        // attacker is active here, book it directly; otherwise forward a
        // kill-credit interaction back.
        if (auto attacker = world.find(source)) {
          if (attacker->owner == target.owner) {
            creditKill(*attacker, meter);
          } else {
            forward.forwardInteraction(
                source, target.id,
                encodeInteraction(Interaction{Interaction::Kind::kKillCredit, 0.0}));
          }
        }
      }
      break;
    }
    case Interaction::Kind::kKillCredit:
      creditKill(target, meter);
      break;
  }
}

bool FpsApplication::applyDamage(rtf::EntityRef target, double damage, Rng* rng,
                                 rtf::CostMeter& meter) {
  target.health -= damage;
  if (target.health > 0.0) return false;
  target.health = config_.respawnHealth;
  if (rng != nullptr) {
    // Respawn at a random arena position to break up kill clusters.
    target.position = {rng->uniform(config_.arenaOrigin.x,
                                    config_.arenaOrigin.x + config_.arenaExtent.x),
                       rng->uniform(config_.arenaOrigin.y,
                                    config_.arenaOrigin.y + config_.arenaExtent.y)};
  }
  meter.charge(config_.statsUpdateCost);
  PlayerStats stats = decodeStats(target.appData);
  ++stats.deaths;
  target.appData = encodeStats(stats);
  return true;
}

void FpsApplication::creditKill(rtf::EntityRef attacker, rtf::CostMeter& meter) {
  meter.charge(config_.statsUpdateCost);
  PlayerStats stats = decodeStats(attacker.appData);
  ++stats.kills;
  stats.score += config_.killScore;
  attacker.appData = encodeStats(stats);
  attacker.version += 1;  // propagate the scoreboard change to shadows
}

std::vector<std::uint8_t> FpsApplication::exportUserState(rtf::ConstEntityRef avatar,
                                                          rtf::CostMeter& meter) {
  // The entity's appData already travels inside the migration snapshot; the
  // application attaches an integrity token so the target can verify the
  // blob survived the hand-over intact.
  meter.charge(config_.statsUpdateCost);
  ser::ByteWriter writer(4);
  writer.writeU32(ser::crc32(avatar.appData));
  return std::move(writer).take();
}

void FpsApplication::importUserState(rtf::EntityRef avatar, std::span<const std::uint8_t> state,
                                     rtf::CostMeter& meter) {
  meter.charge(config_.statsUpdateCost);
  if (state.size() != 4) return;  // older peer without the token
  ser::ByteReader reader(state);
  const std::uint32_t expected = reader.readU32();
  if (ser::crc32(avatar.appData) != expected) {
    ROIA_LOG(LogLevel::kWarn, "game.fps",
             "migration state checksum mismatch for entity " << avatar.id.value);
  }
}

void FpsApplication::onShadowUpdated(rtf::World& world, rtf::EntityRef shadow,
                                     rtf::CostMeter& meter) {
  // Interest-management upkeep: the spatial index bucket of the shadow moves
  // and density-proportional subscriber lists are touched. Under Euclidean
  // every avatar is a candidate (the knob behind the replication overhead);
  // under the grid only the occupancy around the shadow is.
  meter.charge(config_.shadowIndexBaseCost +
               config_.shadowIndexPerEntityCost *
                   static_cast<double>(
                       interest_->scanCandidates(world, shadow.position, config_.aoiRadius)));
}

void FpsApplication::updateNpc(rtf::World& world, rtf::EntityRef npc, rtf::CostMeter& meter,
                               Rng& rng) {
  // NPC AI scans users for a target, then wanders. The candidate count
  // comes from the IM algorithm: all avatars under Euclidean, the local
  // occupancy under the grid.
  meter.charge(config_.npcBaseCost +
               config_.npcScanPerEntityCost *
                   static_cast<double>(
                       interest_->scanCandidates(world, npc.position, config_.aoiRadius)));
  if (rng.chance(0.15)) {
    npc.velocity = Vec2{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)}.normalized() *
                   (config_.moveSpeed * 0.5);
  }
  npc.position += npc.velocity * config_.tickSeconds;
  clampToArena(npc.position);
}

void FpsApplication::computeAreaOfInterest(const rtf::World& world, rtf::ConstEntityRef viewer,
                                           rtf::CostMeter& meter,
                                           std::vector<std::uint32_t>& out) {
  // Delegated to the configured interest-management algorithm; the default
  // EuclideanInterest is the paper's Euclidean Distance Algorithm.
  interest_->query(world, viewer, config_.aoiRadius, meter, out);
}

// roia-hot
void FpsApplication::buildStateUpdate(const rtf::World& world, rtf::ConstEntityRef viewer,
                                      std::span<const std::uint32_t> visible,
                                      rtf::CostMeter& meter, std::vector<std::uint8_t>& out) {
  StateUpdatePayload& payload = payloadScratch_;
  payload.visible.clear();
  payload.self = VisibleEntity{viewer.id, static_cast<float>(viewer.position.x),
                               static_cast<float>(viewer.position.y),
                               static_cast<float>(viewer.health)};
  payload.visible.reserve(visible.size());
  // Slot handles gather straight from the SoA columns: no per-visible-id
  // hash lookup (slots were resolved by the AOI query this same tick).
  const std::span<const std::uint64_t> ids = world.ids();
  const std::span<const Vec2> positions = world.positions();
  const std::span<const double> healths = world.healths();
  double cost = 0.0;
  for (const std::uint32_t s : visible) {
    cost += config_.suGatherPerEntityCost;
    payload.visible.push_back(VisibleEntity{EntityId{ids[s]}, static_cast<float>(positions[s].x),
                                            static_cast<float>(positions[s].y),
                                            static_cast<float>(healths[s])});
  }
  meter.charge(cost);
  encodeStateUpdate(payload, out);
}

void FpsApplication::clampToArena(Vec2& position) const {
  position.x = std::clamp(position.x, config_.arenaOrigin.x,
                          config_.arenaOrigin.x + config_.arenaExtent.x);
  position.y = std::clamp(position.y, config_.arenaOrigin.y,
                          config_.arenaOrigin.y + config_.arenaExtent.y);
}

}  // namespace roia::game
