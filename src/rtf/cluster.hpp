// The multi-server session harness: owns the simulation, the network, all
// application servers and clients, and the zone directory. This is the
// management plane that RTF-RMS drives: adding/removing replicas, connecting
// and migrating users.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/fault.hpp"
#include "net/network.hpp"
#include "obs/telemetry.hpp"
#include "rtf/client.hpp"
#include "rtf/monitoring.hpp"
#include "rtf/server.hpp"
#include "rtf/zone.hpp"
#include "sim/simulation.hpp"

namespace roia::rtf {

struct ClusterConfig {
  ServerConfig serverTemplate{};
  ClientEndpoint::Config clientTemplate{};
  std::uint64_t seed{42};
  /// Telemetry context shared by all servers, the collector and the fault
  /// injector. nullptr falls back to the process-global context when that
  /// has been activated (obs::Telemetry::globalIfActive()), else telemetry
  /// stays off. Recording is a pure observer: simulated timelines are
  /// bit-identical with telemetry on or off.
  obs::Telemetry* telemetry{nullptr};
};

class Cluster {
 public:
  explicit Cluster(Application& app, ClusterConfig config = {});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] net::Network& network() { return net_; }
  [[nodiscard]] ZoneDirectory& zones() { return zones_; }
  [[nodiscard]] const ZoneDirectory& zones() const { return zones_; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  /// Creates a zone with the given geometry; returns its id.
  ZoneId createZone(std::string name, Vec2 origin = {0, 0}, Vec2 extent = {1000, 1000});

  /// Creates an instance (independent copy) of an existing zone.
  ZoneId createInstance(ZoneId original);

  /// Partitions the rectangle [origin, origin + extent) into a cols x rows
  /// grid of zones (row-major ids) and enables zone sharding: every server
  /// gets a position -> zone resolver (automatic handoff when an avatar
  /// crosses a zone border) and a neighbor table for cross-zone border
  /// shadows (serverTemplate.borderWidth controls the band; 0 disables).
  std::vector<ZoneId> createZoneGrid(Vec2 origin, Vec2 extent, std::size_t cols,
                                     std::size_t rows, const std::string& namePrefix = "zone");

  /// Whether createZoneGrid enabled sharded-world wiring.
  [[nodiscard]] bool sharded() const { return sharding_; }

  /// Starts a new application server replicating `zone`. `speedFactor` is
  /// relative to the template's baseline speed; > 1 models a more powerful
  /// resource (used by resource substitution).
  ServerId addServer(ZoneId zone, double speedFactor = 1.0);

  /// Removes a server. All its users must have been migrated or
  /// disconnected first; remaining NPCs are handed to another replica.
  /// Throws std::logic_error if users are still connected.
  void removeServer(ServerId id);

  [[nodiscard]] Server& server(ServerId id) { return *servers_.at(id); }
  [[nodiscard]] const Server& server(ServerId id) const { return *servers_.at(id); }
  [[nodiscard]] bool hasServer(ServerId id) const { return servers_.contains(id); }
  [[nodiscard]] std::vector<ServerId> serverIds() const;
  [[nodiscard]] std::size_t serverCount() const { return servers_.size(); }

  /// Connects a new user to the least-populated replica of `zone`. Returns
  /// an invalid ClientId when the admission gate vetoes the connect (the
  /// caller is expected to retry with backoff).
  ClientId connectClient(ZoneId zone, std::unique_ptr<InputProvider> provider);
  /// Connects a new user to a specific server; invalid ClientId on veto.
  ClientId connectClientTo(ServerId server, std::unique_ptr<InputProvider> provider);
  /// Disconnects a user wherever it currently lives.
  void disconnectClient(ClientId id);

  // --- admission control ---

  /// Vetoes new-client admission onto `target` (false = refuse). Typically
  /// an Eq.2 check: predicted tick at n+1 users must stay within budget.
  /// `reason` is surfaced in the audit log. Evaluated before any id or RNG
  /// draw, so a vetoed connect leaves the deterministic state untouched.
  using AdmissionGate = std::function<bool(const Server& target, std::string& reason)>;
  void setAdmissionGate(AdmissionGate gate) { admissionGate_ = std::move(gate); }
  [[nodiscard]] std::uint64_t admissionVetoes() const { return admissionVetoes_; }

  /// Installs an Eq.1/4 tick-cost predictor on all current and future
  /// servers (the overload ladder catches spikes one tick early with it).
  void setTickPredictor(Server::TickPredictor predictor);

  [[nodiscard]] ClientEndpoint& client(ClientId id) { return *clients_.at(id); }
  [[nodiscard]] bool hasClient(ClientId id) const { return clients_.contains(id); }
  [[nodiscard]] std::size_t clientCount() const { return clients_.size(); }
  [[nodiscard]] std::vector<ClientId> clientIds() const;

  /// Requests migration of `client` to `target` (same zone). Returns false
  /// when the client is unknown, already migrating, or target is invalid.
  bool migrateClient(ClientId client, ServerId target);

  /// Cross-zone travel (zoning): hands the user over to the least-populated
  /// live replica of `targetZone` via the deterministic zone-handoff
  /// protocol — the entity (identity, position, health, application state)
  /// is serialized over the reliable control plane and adopted by the
  /// target; the client endpoint re-homes when the adoption ack returns.
  /// Asynchronous: completes within a few ticks. Returns false when the
  /// client is unknown, already in hand-over, or the target zone has no
  /// live servers.
  bool travelClient(ClientId client, ZoneId targetZone);

  /// Spawns `count` NPCs in the zone, distributed equally over its replicas.
  void spawnNpcs(ZoneId zone, std::size_t count);

  /// Total connected users across all replicas of a zone.
  [[nodiscard]] std::size_t zoneUserCount(ZoneId zone) const;

  /// Monitoring snapshots of every replica of `zone` (direct, in-process).
  [[nodiscard]] std::vector<MonitoringSnapshot> zoneMonitoring(ZoneId zone) const;

  /// Attaches a management-plane monitoring collector: all current and
  /// future servers publish snapshots to it over the network. Idempotent.
  MonitoringCollector& attachMonitoringCollector();
  /// The collector, or nullptr when none is attached.
  [[nodiscard]] MonitoringCollector* monitoringCollector() { return collector_.get(); }

  /// Which server currently serves the client (tracks migrations).
  [[nodiscard]] ServerId clientServer(ClientId id) const { return clientServer_.at(id); }

  /// The telemetry context in effect (config override or active global);
  /// nullptr when telemetry is off.
  [[nodiscard]] obs::Telemetry* telemetry() const { return telemetry_; }

  // --- fault injection & crash-failure recovery ---

  /// Attaches a fault injector to the network (idempotent). Seed 0 derives
  /// the injector seed from the cluster seed, so a given cluster seed fully
  /// determines the fault schedule.
  net::FaultInjector& enableFaultInjection(std::uint64_t seed = 0);
  [[nodiscard]] net::FaultInjector* faultInjector() { return faults_.get(); }

  /// What recoverCrashedServer did; all counters refer to one dead replica.
  struct RecoveryReport {
    ZoneId zone{};
    std::size_t clientsRehomed{0};   // endpoints repointed at a survivor
    std::size_t shadowsPromoted{0};  // avatars resumed from replica-sync state
    std::size_t clientsLost{0};      // no surviving replica to adopt them
    std::size_t npcsAdopted{0};
  };

  /// Abrupt crash-failure of a replica: it stops mid-interval with no drain,
  /// no NPC hand-off and no notification — peers and the zone directory
  /// still list it, its clients keep sending into the void. Nothing reacts
  /// until a failure detector notices (or recoverCrashedServer is called).
  void crashServer(ServerId id);
  /// Servers that crashed and have not been recovered yet.
  [[nodiscard]] std::vector<ServerId> crashedServers() const;

  /// Management-plane recovery of a dead replica: removes it from the zone
  /// directory and peer sets, aborts hand-overs targeting it, re-homes each
  /// of its clients onto the surviving replica already holding their state
  /// (adopted mid-migration session or replica-sync shadow; fresh spawn as
  /// the last resort) and re-owns its NPC shadows. Works for crashed servers
  /// still in the cluster; throws std::invalid_argument otherwise.
  RecoveryReport recoverCrashedServer(ServerId id);

  /// Runs the simulation for `duration` of simulated time.
  void run(SimDuration duration) { sim_.runUntil(sim_.now() + duration); }

 private:
  void refreshPeers(ZoneId zone);
  /// Rebuilds handoff resolvers, zone bounds and neighbor tables on every
  /// server; no-op unless createZoneGrid enabled sharding.
  void refreshSharding();
  Vec2 randomSpawn(const ZoneDescriptor& zone);

  Application& app_;
  ClusterConfig config_;
  sim::Simulation sim_;
  net::Network net_;
  ZoneDirectory zones_;
  Rng rng_;
  obs::Telemetry* telemetry_{nullptr};

  std::map<ServerId, std::unique_ptr<Server>> servers_;
  std::map<ClientId, std::unique_ptr<ClientEndpoint>> clients_;
  std::map<ClientId, ServerId> clientServer_;
  std::unique_ptr<MonitoringCollector> collector_;
  std::unique_ptr<net::FaultInjector> faults_;

  AdmissionGate admissionGate_;
  Server::TickPredictor tickPredictor_;
  std::uint64_t admissionVetoes_{0};

  std::uint64_t nextServerId_{1};
  std::uint64_t nextClientId_{1};
  std::uint64_t nextEntityId_{1};
  std::uint64_t nextZoneId_{1};
  bool sharding_{false};
};

}  // namespace roia::rtf
