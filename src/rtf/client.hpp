// A simulated client (player machine): sends its user's command batches to
// the currently assigned application server at the client update rate and
// receives filtered state updates back. The actual decisions (where to move,
// whom to attack) come from an InputProvider — in the experiments, the
// random bots of section V-A.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "rtf/messages.hpp"
#include "sim/simulation.hpp"

namespace roia::rtf {

/// Supplies the user's behaviour to a ClientEndpoint.
class InputProvider {
 public:
  virtual ~InputProvider() = default;
  /// Encoded command batch for this client tick (empty = send nothing).
  virtual std::vector<std::uint8_t> nextCommands(SimTime now, Rng& rng) = 0;
  /// Called when a state update arrives from the server.
  virtual void onStateUpdate(std::span<const std::uint8_t> update) = 0;
  /// Called when a delta-codec view arrives (delta replication only).
  /// `view` is the full reconstructed visible set for `serverTick`.
  virtual void onStateView(std::uint64_t serverTick, ClientId self, const SnapshotView& view) {
    (void)serverTick;
    (void)self;
    (void)view;
  }
};

class ClientEndpoint {
 public:
  struct Config {
    SimDuration inputInterval{SimDuration::milliseconds(40)};  // 25 Hz
    /// Must match the serving cluster's profile (the cluster template
    /// mirrors ServerConfig::replication here).
    ReplicationProfile replication{};
  };

  ClientEndpoint(ClientId id, std::unique_ptr<InputProvider> provider,
                 sim::Simulation& simulation, net::Network& network, Config config, Rng rng);
  ~ClientEndpoint();

  ClientEndpoint(const ClientEndpoint&) = delete;
  ClientEndpoint& operator=(const ClientEndpoint&) = delete;

  [[nodiscard]] ClientId id() const { return id_; }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] EntityId avatar() const { return avatar_; }
  [[nodiscard]] ServerId server() const { return server_; }
  [[nodiscard]] std::uint64_t updatesReceived() const { return updatesReceived_; }
  [[nodiscard]] InputProvider& provider() { return *provider_; }

  // --- client-side quality of experience ---
  // The paper uses the tick duration as the QoE criterion because it bounds
  // the state-update rate users actually receive; these probes measure that
  // rate at the receiving end.
  /// Mean gap between consecutive state updates (ms); 0 before two updates.
  [[nodiscard]] double avgUpdateGapMs() const { return updateGapMs_.mean(); }
  /// Largest gap observed (ms) — a stall spike a player would feel.
  [[nodiscard]] double worstUpdateGapMs() const { return updateGapMs_.max(); }
  /// Updates per second implied by the mean gap (0 before two updates).
  [[nodiscard]] double updateRateHz() const {
    return updateGapMs_.mean() > 0.0 ? 1000.0 / updateGapMs_.mean() : 0.0;
  }

  /// Binds the avatar entity created for this user.
  void setAvatar(EntityId avatar) { avatar_ = avatar; }
  /// Points the client at (a possibly new) serving node; used on connect and
  /// after each completed migration.
  void setServer(ServerId server, NodeId serverNode);

  /// Starts the periodic input loop; idempotent.
  void start();
  /// Stops sending and detaches from the network.
  void stop();
  [[nodiscard]] bool active() const { return active_; }

 private:
  void sendInputs();
  void onFrame(NodeId from, const ser::Frame& frame);

  ClientId id_;
  std::unique_ptr<InputProvider> provider_;
  sim::Simulation& sim_;
  net::Network& net_;
  Config config_;
  /// Delta-codec receiver state (unused in full mode).
  SnapshotCodec codec_;
  BaselineReceiver receiver_;
  Rng rng_;
  NodeId node_;
  ServerId server_;
  NodeId serverNode_;
  EntityId avatar_;
  bool active_{false};
  std::uint64_t clientTick_{0};
  std::uint64_t updatesReceived_{0};
  SimTime lastUpdateAt_{SimTime::zero()};
  StatAccumulator updateGapMs_;
  sim::EventHandle nextSend_{};
};

}  // namespace roia::rtf
