#include "rtf/snapshot_codec.hpp"

#include <algorithm>
#include <cmath>

namespace roia::rtf {
namespace {

// One lattice step per world unit times scale; symmetric rounding so the
// quantization error bound |decoded - true| <= 0.5/scale holds everywhere.
std::int64_t quant(float v, double scale) {
  return std::llround(static_cast<double>(v) * scale);
}

float dequant(std::int64_t q, double scale) {
  return static_cast<float>(static_cast<double>(q) / scale);
}

/// Zigzag varint of the lattice delta when scaled, raw F32 otherwise.
void writeScaledDelta(ser::ByteWriter& writer, float base, float now, double scale) {
  if (scale > 0.0) {
    writer.writeVarI64(quant(now, scale) - quant(base, scale));
  } else {
    writer.writeF32(now);
  }
}

float readScaledDelta(ser::ByteReader& reader, float base, double scale) {
  if (scale > 0.0) {
    return dequant(quant(base, scale) + reader.readVarI64(), scale);
  }
  return reader.readF32();
}

bool scaledEqual(float a, float b, double scale) {
  if (scale > 0.0) return quant(a, scale) == quant(b, scale);
  return a == b;
}

// The schema table. Row order is the wire order of both the full snapshot
// layout and the masked fields inside a delta entry; it must stay the
// legacy order (id, kind, owner, client, x, y, vx, vy, health, version,
// appData) so full-mode bytes never move. roia-lint checks that every
// EntitySnapshot member appears here.
constexpr SnapshotSchemaRow kSnapshotSchema[] = {
    {SnapshotField::kId, "id"},
    {SnapshotField::kKind, "kind"},
    {SnapshotField::kOwner, "owner"},
    {SnapshotField::kClient, "client"},
    {SnapshotField::kX, "x"},
    {SnapshotField::kY, "y"},
    {SnapshotField::kVx, "vx"},
    {SnapshotField::kVy, "vy"},
    {SnapshotField::kHealth, "health"},
    {SnapshotField::kVersion, "version"},
    {SnapshotField::kAppData, "appData"},
};

}  // namespace

std::span<const SnapshotSchemaRow> snapshotSchema() { return kSnapshotSchema; }

// roia-hot
void SnapshotCodec::writeSnapshot(ser::ByteWriter& writer, const EntitySnapshot& snapshot) {
  for (const SnapshotSchemaRow& row : kSnapshotSchema) {
    switch (row.field) {
      case SnapshotField::kId:
        writer.writeVarU64(snapshot.id.value);
        break;
      case SnapshotField::kKind:
        writer.writeU8(static_cast<std::uint8_t>(snapshot.kind));
        break;
      case SnapshotField::kOwner:
        writer.writeVarU64(snapshot.owner.value);
        break;
      case SnapshotField::kClient:
        writer.writeVarU64(snapshot.client.value);
        break;
      case SnapshotField::kX:
        writer.writeF32(snapshot.x);
        break;
      case SnapshotField::kY:
        writer.writeF32(snapshot.y);
        break;
      case SnapshotField::kVx:
        writer.writeF32(snapshot.vx);
        break;
      case SnapshotField::kVy:
        writer.writeF32(snapshot.vy);
        break;
      case SnapshotField::kHealth:
        writer.writeF32(snapshot.health);
        break;
      case SnapshotField::kVersion:
        writer.writeVarU64(snapshot.version);
        break;
      case SnapshotField::kAppData:
        writer.writeBytes(snapshot.appData);
        break;
    }
  }
}

EntitySnapshot SnapshotCodec::readSnapshot(ser::ByteReader& reader) {
  EntitySnapshot s;
  for (const SnapshotSchemaRow& row : kSnapshotSchema) {
    switch (row.field) {
      case SnapshotField::kId:
        s.id = EntityId{reader.readVarU64()};
        break;
      case SnapshotField::kKind:
        s.kind = static_cast<EntityKind>(reader.readU8());
        break;
      case SnapshotField::kOwner:
        s.owner = ServerId{reader.readVarU64()};
        break;
      case SnapshotField::kClient:
        s.client = ClientId{reader.readVarU64()};
        break;
      case SnapshotField::kX:
        s.x = reader.readF32();
        break;
      case SnapshotField::kY:
        s.y = reader.readF32();
        break;
      case SnapshotField::kVx:
        s.vx = reader.readF32();
        break;
      case SnapshotField::kVy:
        s.vy = reader.readF32();
        break;
      case SnapshotField::kHealth:
        s.health = reader.readF32();
        break;
      case SnapshotField::kVersion:
        s.version = reader.readVarU64();
        break;
      case SnapshotField::kAppData:
        s.appData = reader.readBytes();
        break;
    }
  }
  return s;
}

ser::Frame SnapshotCodec::encodeStateUpdate(std::uint64_t serverTick,
                                            std::span<const std::uint8_t> update) {
  ser::ByteWriter writer(8 + update.size());
  writer.writeVarU64(serverTick);
  writer.writeBytes(update);
  ser::Frame frame;
  frame.type = ser::MessageType::kStateUpdate;
  frame.payload = std::move(writer).take();
  return frame;
}

StateUpdateMsg SnapshotCodec::decodeStateUpdate(const ser::Frame& frame) {
  if (frame.type != ser::MessageType::kStateUpdate) {
    throw ser::DecodeError("unexpected frame type");
  }
  ser::ByteReader reader(frame.payload);
  StateUpdateMsg msg;
  msg.serverTick = reader.readVarU64();
  msg.update = reader.readBytes();
  return msg;
}

EntitySnapshot SnapshotCodec::quantized(const EntitySnapshot& snapshot) const {
  EntitySnapshot out = snapshot;
  if (profile_.positionScale > 0.0) {
    out.x = dequant(quant(out.x, profile_.positionScale), profile_.positionScale);
    out.y = dequant(quant(out.y, profile_.positionScale), profile_.positionScale);
  }
  if (profile_.velocityScale > 0.0) {
    out.vx = dequant(quant(out.vx, profile_.velocityScale), profile_.velocityScale);
    out.vy = dequant(quant(out.vy, profile_.velocityScale), profile_.velocityScale);
  }
  return out;
}

FieldMask SnapshotCodec::changedFields(const EntitySnapshot& base, const EntitySnapshot& now,
                                       FieldMask allowed) const {
  FieldMask mask = 0;
  if (!scaledEqual(base.x, now.x, profile_.positionScale)) mask |= fieldBit(SnapshotField::kX);
  if (!scaledEqual(base.y, now.y, profile_.positionScale)) mask |= fieldBit(SnapshotField::kY);
  if (!scaledEqual(base.vx, now.vx, profile_.velocityScale)) mask |= fieldBit(SnapshotField::kVx);
  if (!scaledEqual(base.vy, now.vy, profile_.velocityScale)) mask |= fieldBit(SnapshotField::kVy);
  if (base.health != now.health) mask |= fieldBit(SnapshotField::kHealth);
  if (base.version != now.version) mask |= fieldBit(SnapshotField::kVersion);
  if (base.kind != now.kind) mask |= fieldBit(SnapshotField::kKind);
  if (base.owner != now.owner) mask |= fieldBit(SnapshotField::kOwner);
  if (base.client != now.client) mask |= fieldBit(SnapshotField::kClient);
  if (base.appData != now.appData) mask |= fieldBit(SnapshotField::kAppData);
  return static_cast<FieldMask>(mask & allowed);
}

// roia-hot
void SnapshotCodec::writeEntry(ser::ByteWriter& writer, const EntitySnapshot* base,
                               const EntitySnapshot& now, FieldMask mask) const {
  static const EntitySnapshot kDefault{};
  const EntitySnapshot& from = base != nullptr ? *base : kDefault;
  writer.writeVarU64(mask);
  for (const SnapshotSchemaRow& row : kSnapshotSchema) {
    if (row.field == SnapshotField::kId) continue;
    if ((mask & fieldBit(row.field)) == 0) continue;
    switch (row.field) {
      case SnapshotField::kId:
        break;
      case SnapshotField::kKind:
        writer.writeU8(static_cast<std::uint8_t>(now.kind));
        break;
      case SnapshotField::kOwner:
        writer.writeVarU64(now.owner.value);
        break;
      case SnapshotField::kClient:
        writer.writeVarU64(now.client.value);
        break;
      case SnapshotField::kX:
        writeScaledDelta(writer, from.x, now.x, profile_.positionScale);
        break;
      case SnapshotField::kY:
        writeScaledDelta(writer, from.y, now.y, profile_.positionScale);
        break;
      case SnapshotField::kVx:
        writeScaledDelta(writer, from.vx, now.vx, profile_.velocityScale);
        break;
      case SnapshotField::kVy:
        writeScaledDelta(writer, from.vy, now.vy, profile_.velocityScale);
        break;
      case SnapshotField::kHealth:
        writer.writeF32(now.health);
        break;
      case SnapshotField::kVersion:
        writer.writeVarI64(static_cast<std::int64_t>(now.version) -
                           static_cast<std::int64_t>(from.version));
        break;
      case SnapshotField::kAppData:
        writer.writeBytes(now.appData);
        break;
    }
  }
}

EntitySnapshot SnapshotCodec::readEntry(ser::ByteReader& reader, EntityId id,
                                        const SnapshotView* baseline) const {
  const auto mask = static_cast<FieldMask>(reader.readVarU64());
  EntitySnapshot s;
  if (baseline != nullptr) {
    auto it = baseline->find(id);
    if (it != baseline->end()) s = it->second;
  }
  s.id = id;
  for (const SnapshotSchemaRow& row : kSnapshotSchema) {
    if (row.field == SnapshotField::kId) continue;
    if ((mask & fieldBit(row.field)) == 0) continue;
    switch (row.field) {
      case SnapshotField::kId:
        break;
      case SnapshotField::kKind:
        s.kind = static_cast<EntityKind>(reader.readU8());
        break;
      case SnapshotField::kOwner:
        s.owner = ServerId{reader.readVarU64()};
        break;
      case SnapshotField::kClient:
        s.client = ClientId{reader.readVarU64()};
        break;
      case SnapshotField::kX:
        s.x = readScaledDelta(reader, s.x, profile_.positionScale);
        break;
      case SnapshotField::kY:
        s.y = readScaledDelta(reader, s.y, profile_.positionScale);
        break;
      case SnapshotField::kVx:
        s.vx = readScaledDelta(reader, s.vx, profile_.velocityScale);
        break;
      case SnapshotField::kVy:
        s.vy = readScaledDelta(reader, s.vy, profile_.velocityScale);
        break;
      case SnapshotField::kHealth:
        s.health = reader.readF32();
        break;
      case SnapshotField::kVersion:
        s.version = static_cast<std::uint64_t>(static_cast<std::int64_t>(s.version) +
                                               reader.readVarI64());
        break;
      case SnapshotField::kAppData:
        s.appData = reader.readBytes();
        break;
    }
  }
  return s;
}

BaselineSender::EncodeResult BaselineSender::encodeView(std::uint64_t tick, SnapshotView view,
                                                        std::span<const EntityId> removed,
                                                        ser::ByteWriter& out) {
  const ReplicationProfile& profile = codec_->profile();
  for (auto& [id, snap] : view) snap = codec_->quantized(snap);

  const bool baselineUsable = hasAcked_ && tick >= ackedTick_ &&
                              tick - ackedTick_ <= profile.baselineAckWindow &&
                              sent_.find(ackedTick_) != sent_.end();
  const bool periodicDue =
      !sentAny_ || profile.keyframeInterval == 0 || tick - lastKeyframeTick_ >= profile.keyframeInterval;
  const bool keyframe = !baselineUsable || periodicDue;

  out.writeU8(keyframe ? 1 : 0);
  out.writeVarU64(tick);
  const SnapshotView* baseline = nullptr;
  if (!keyframe) {
    out.writeVarU64(ackedTick_);
    baseline = &sent_.at(ackedTick_);
  }

  // Entries walk the view in ascending id order (std::map), so ids are
  // gap-encoded: the first absolute, the rest as the (positive) difference
  // from the previous entry — one byte for dense id ranges.
  out.writeVarU64(view.size());
  std::uint64_t prevId = 0;
  for (const auto& [id, snap] : view) {
    out.writeVarU64(id.value - prevId);
    prevId = id.value;
    const EntitySnapshot* base = nullptr;
    if (baseline != nullptr) {
      auto it = baseline->find(id);
      if (it != baseline->end()) base = &it->second;
    }
    static const EntitySnapshot kDefault{};
    const FieldMask mask = codec_->changedFields(base != nullptr ? *base : kDefault, snap, fields_);
    codec_->writeEntry(out, base, snap, mask);
  }
  std::vector<std::uint64_t> removedIds;
  removedIds.reserve(removed.size());
  for (const EntityId id : removed) removedIds.push_back(id.value);
  std::sort(removedIds.begin(), removedIds.end());
  out.writeVarU64(removedIds.size());
  prevId = 0;
  for (const std::uint64_t id : removedIds) {
    out.writeVarU64(id - prevId);
    prevId = id;
  }

  const EncodeResult result{keyframe, view.size()};
  if (keyframe) lastKeyframeTick_ = tick;
  sentAny_ = true;
  sent_.insert_or_assign(tick, std::move(view));

  // Retained views are bounded: keep enough history to cover acks that are
  // still in flight, never evicting the acked baseline itself.
  const std::size_t cap = static_cast<std::size_t>(2 * profile.baselineAckWindow + 2);
  while (sent_.size() > cap) {
    auto it = sent_.begin();
    if (hasAcked_ && it->first == ackedTick_) ++it;
    if (it == sent_.end()) break;
    sent_.erase(it);
  }
  return result;
}

void BaselineSender::onAck(std::uint64_t tick) {
  // Acks for ticks we never sent (stale acks from a previous incarnation of
  // this link after re-homing or crash recovery) must not poison the
  // baseline selection.
  if (sent_.find(tick) == sent_.end()) return;
  if (hasAcked_ && tick <= ackedTick_) return;
  ackedTick_ = tick;
  hasAcked_ = true;
  sent_.erase(sent_.begin(), sent_.lower_bound(tick));
}

std::optional<BaselineReceiver::DecodedView> BaselineReceiver::decodeView(
    std::span<const std::uint8_t> payload) {
  ser::ByteReader reader(payload);
  const std::uint8_t flags = reader.readU8();
  const bool keyframe = (flags & 1u) != 0;
  const std::uint64_t tick = reader.readVarU64();
  if (hasLatest_ && tick <= latest_) return std::nullopt;

  const SnapshotView* baseline = nullptr;
  if (!keyframe) {
    const std::uint64_t baselineTick = reader.readVarU64();
    auto it = views_.find(baselineTick);
    // Baseline lost (the ack for it raced a drop): skip the frame; the
    // sender keyframes once its ack window expires.
    if (it == views_.end()) return std::nullopt;
    baseline = &it->second;
  }

  const std::uint64_t count = reader.readVarU64();
  // Every entry occupies multiple bytes; a count beyond the remaining
  // payload is malformed (and must not drive a huge allocation).
  if (count > reader.remaining()) throw ser::DecodeError("implausible entry count");
  SnapshotView view;
  std::uint64_t prevId = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t gap = reader.readVarU64();
    if (i > 0 && gap == 0) throw ser::DecodeError("non-ascending entry id");
    const EntityId id{prevId + gap};
    prevId = id.value;
    view.insert_or_assign(id, codec_->readEntry(reader, id, baseline));
  }
  const std::uint64_t removedCount = reader.readVarU64();
  if (removedCount > reader.remaining()) throw ser::DecodeError("implausible removed count");
  std::vector<EntityId> removed;
  removed.reserve(removedCount);
  prevId = 0;
  for (std::uint64_t i = 0; i < removedCount; ++i) {
    prevId += reader.readVarU64();
    removed.push_back(EntityId{prevId});
  }

  latest_ = tick;
  hasLatest_ = true;
  auto [stored, inserted] = views_.insert_or_assign(tick, std::move(view));
  (void)inserted;
  const std::uint64_t keep = 2 * codec_->profile().baselineAckWindow + 2;
  while (!views_.empty() && views_.begin()->first + keep < latest_) {
    views_.erase(views_.begin());
  }
  return DecodedView{tick, keyframe, &stored->second, std::move(removed)};
}

void BaselineReceiver::reset() {
  views_.clear();
  latest_ = 0;
  hasLatest_ = false;
}

}  // namespace roia::rtf
