// Per-tick measurement probes.
//
// These are the measurement and logging mechanisms the paper describes in
// section III-C: RTF measures the generic phases ((de)serialization,
// migration) itself, while application-logic phases (t_ua, t_aoi, t_fa,
// t_npc) are charged by the application through the same meter. The
// parameter estimator consumes TickProbes streams to fit the model.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/types.hpp"
#include "sim/cpu.hpp"

namespace roia::rtf {

/// The computational phases of one real-time-loop iteration, matching the
/// model parameters of Eq. (1)/(4)/(5) one-to-one.
enum class Phase : std::size_t {
  kUaDser = 0,  // receive + deserialize user inputs        -> t_ua_dser
  kUa,          // validate + apply user inputs             -> t_ua
  kFaDser,      // deserialize forwarded/shadow inputs      -> t_fa_dser
  kFa,          // apply forwarded/shadow inputs            -> t_fa
  kNpc,         // update NPCs                              -> t_npc
  kAoi,         // compute areas of interest                -> t_aoi
  kSu,          // compute + serialize state updates        -> t_su
  kMigIni,      // initiate user migrations                 -> t_mig_ini
  kMigRcv,      // receive user migrations                  -> t_mig_rcv
  kOther,       // bookkeeping outside the model
  kCount
};

constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);

[[nodiscard]] constexpr const char* phaseName(Phase phase) {
  switch (phase) {
    case Phase::kUaDser: return "t_ua_dser";
    case Phase::kUa: return "t_ua";
    case Phase::kFaDser: return "t_fa_dser";
    case Phase::kFa: return "t_fa";
    case Phase::kNpc: return "t_npc";
    case Phase::kAoi: return "t_aoi";
    case Phase::kSu: return "t_su";
    case Phase::kMigIni: return "t_mig_ini";
    case Phase::kMigRcv: return "t_mig_rcv";
    case Phase::kOther: return "t_other";
    case Phase::kCount: break;
  }
  return "?";
}

/// Everything measured during one loop iteration on one server.
struct TickProbes {
  SimTime start{};
  std::uint64_t tickSeq{0};
  /// Simulated CPU microseconds spent in each phase this tick.
  std::array<double, kPhaseCount> phaseMicros{};

  // Workload facts for normalising phase times into per-item parameters.
  std::size_t activeUsers{0};     // a: avatars owned by this server
  std::size_t totalAvatars{0};    // n: avatars known in the zone
  std::size_t shadowAvatars{0};   // n - a
  std::size_t npcs{0};            // NPCs owned by this server
  std::size_t inputsApplied{0};
  std::size_t forwardedApplied{0};
  std::size_t migrationsInitiated{0};
  std::size_t migrationsReceived{0};

  [[nodiscard]] double phase(Phase p) const { return phaseMicros[static_cast<std::size_t>(p)]; }

  /// Total busy time of the tick in microseconds.
  [[nodiscard]] double totalMicros() const {
    double sum = 0.0;
    for (const double v : phaseMicros) sum += v;
    return sum;
  }
  [[nodiscard]] SimDuration totalDuration() const {
    return SimDuration::microseconds(static_cast<std::int64_t>(totalMicros()));
  }
};

/// Charges simulated CPU cost to the current phase. The server sets the
/// phase; RTF internals and application logic both charge through this.
class CostMeter {
 public:
  explicit CostMeter(sim::CpuCostModel& cpu) : cpu_(&cpu) {}

  void beginTick(TickProbes& probes) { probes_ = &probes; }
  void endTick() { probes_ = nullptr; }

  void setPhase(Phase phase) { phase_ = phase; }
  [[nodiscard]] Phase phase() const { return phase_; }

  /// Charges `units` cost units (1 unit ~= 1 us on a reference server) to
  /// the current phase. Returns the simulated duration actually consumed
  /// (after speed scaling and deterministic noise).
  SimDuration charge(double units);

  /// Charges to an explicit phase without changing the current one.
  SimDuration chargeTo(Phase phase, double units);

 private:
  sim::CpuCostModel* cpu_;
  TickProbes* probes_{nullptr};
  Phase phase_{Phase::kOther};
};

/// RAII phase scope: restores the previous phase on destruction.
class PhaseScope {
 public:
  PhaseScope(CostMeter& meter, Phase phase) : meter_(meter), previous_(meter.phase()) {
    meter_.setPhase(phase);
  }
  ~PhaseScope() { meter_.setPhase(previous_); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  CostMeter& meter_;
  Phase previous_;
};

}  // namespace roia::rtf
