// Zones: disjoint areas of the virtual environment. Zoning assigns zones to
// distinct servers; replication lets several servers process one zone
// cooperatively (the paper's focus); instancing creates independent copies.
#pragma once

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "common/math.hpp"
#include "common/types.hpp"

namespace roia::rtf {

/// Geometry and identity of one zone.
struct ZoneDescriptor {
  ZoneId id;
  std::string name;
  Vec2 origin;           // lower-left corner of the rectangular area
  Vec2 extent{1000, 1000};
  /// For instancing: the zone this one is an instance of (invalid if none).
  ZoneId instanceOf{};

  [[nodiscard]] bool contains(Vec2 p) const {
    return p.x >= origin.x && p.y >= origin.y && p.x < origin.x + extent.x &&
           p.y < origin.y + extent.y;
  }
};

/// Tracks which servers replicate which zone.
class ZoneDirectory {
 public:
  void addZone(const ZoneDescriptor& descriptor) { zones_[descriptor.id] = descriptor; }
  [[nodiscard]] bool hasZone(ZoneId zone) const { return zones_.contains(zone); }
  [[nodiscard]] const ZoneDescriptor& zone(ZoneId id) const { return zones_.at(id); }

  void addReplica(ZoneId zone, ServerId server) { replicas_[zone].push_back(server); }
  void removeReplica(ZoneId zone, ServerId server) {
    auto it = replicas_.find(zone);
    if (it == replicas_.end()) return;
    std::erase(it->second, server);
  }

  /// Servers replicating `zone`, in the order they were added.
  [[nodiscard]] std::vector<ServerId> replicas(ZoneId zone) const {
    auto it = replicas_.find(zone);
    return it == replicas_.end() ? std::vector<ServerId>{} : it->second;
  }
  [[nodiscard]] std::size_t replicaCount(ZoneId zone) const {
    auto it = replicas_.find(zone);
    return it == replicas_.end() ? 0 : it->second.size();
  }

  /// All zone ids, ascending.
  [[nodiscard]] std::vector<ZoneId> zoneIds() const {
    std::vector<ZoneId> ids;
    ids.reserve(zones_.size());
    for (const auto& [id, desc] : zones_) ids.push_back(id);
    return ids;
  }

  /// World zone (not an instance) whose rectangle contains `p`; invalid id
  /// when no zone covers the point. Ties are impossible: world zones are
  /// disjoint half-open rectangles.
  [[nodiscard]] ZoneId zoneAt(Vec2 p) const {
    for (const auto& [id, desc] : zones_) {
      if (desc.instanceOf.valid()) continue;
      if (desc.contains(p)) return id;
    }
    return ZoneId{};
  }

  /// Edge-adjacent world zones of `zone` (shared border segment of nonzero
  /// length; corner contact does not count), ascending id — deterministic
  /// regardless of map iteration order.
  [[nodiscard]] std::vector<ZoneId> neighbors(ZoneId zone) const {
    auto it = zones_.find(zone);
    if (it == zones_.end() || it->second.instanceOf.valid()) return {};
    const ZoneDescriptor& a = it->second;
    constexpr double kEps = 1e-9;
    std::vector<ZoneId> out;
    out.reserve(zones_.size());
    for (const auto& [id, b] : zones_) {
      if (id == zone || b.instanceOf.valid()) continue;
      const double overlapX = std::min(a.origin.x + a.extent.x, b.origin.x + b.extent.x) -
                              std::max(a.origin.x, b.origin.x);
      const double overlapY = std::min(a.origin.y + a.extent.y, b.origin.y + b.extent.y) -
                              std::max(a.origin.y, b.origin.y);
      const bool touchX = std::abs(overlapX) <= kEps && overlapY > kEps;
      const bool touchY = std::abs(overlapY) <= kEps && overlapX > kEps;
      if (touchX || touchY) out.push_back(id);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  // Ordered maps: zoneIds()/zoneAt()/neighbors() iterate these, and their
  // order feeds RMS balance passes and bench output. Zone counts are small
  // (a grid of dozens), so the O(log n) lookup is irrelevant.
  std::map<ZoneId, ZoneDescriptor> zones_;
  std::map<ZoneId, std::vector<ServerId>> replicas_;
};

}  // namespace roia::rtf
