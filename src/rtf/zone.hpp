// Zones: disjoint areas of the virtual environment. Zoning assigns zones to
// distinct servers; replication lets several servers process one zone
// cooperatively (the paper's focus); instancing creates independent copies.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/math.hpp"
#include "common/types.hpp"

namespace roia::rtf {

/// Geometry and identity of one zone.
struct ZoneDescriptor {
  ZoneId id;
  std::string name;
  Vec2 origin;           // lower-left corner of the rectangular area
  Vec2 extent{1000, 1000};
  /// For instancing: the zone this one is an instance of (invalid if none).
  ZoneId instanceOf{};

  [[nodiscard]] bool contains(Vec2 p) const {
    return p.x >= origin.x && p.y >= origin.y && p.x < origin.x + extent.x &&
           p.y < origin.y + extent.y;
  }
};

/// Tracks which servers replicate which zone.
class ZoneDirectory {
 public:
  void addZone(const ZoneDescriptor& descriptor) { zones_[descriptor.id] = descriptor; }
  [[nodiscard]] bool hasZone(ZoneId zone) const { return zones_.contains(zone); }
  [[nodiscard]] const ZoneDescriptor& zone(ZoneId id) const { return zones_.at(id); }

  void addReplica(ZoneId zone, ServerId server) { replicas_[zone].push_back(server); }
  void removeReplica(ZoneId zone, ServerId server) {
    auto it = replicas_.find(zone);
    if (it == replicas_.end()) return;
    std::erase(it->second, server);
  }

  /// Servers replicating `zone`, in the order they were added.
  [[nodiscard]] std::vector<ServerId> replicas(ZoneId zone) const {
    auto it = replicas_.find(zone);
    return it == replicas_.end() ? std::vector<ServerId>{} : it->second;
  }
  [[nodiscard]] std::size_t replicaCount(ZoneId zone) const {
    auto it = replicas_.find(zone);
    return it == replicas_.end() ? 0 : it->second.size();
  }

  [[nodiscard]] std::vector<ZoneId> zoneIds() const {
    std::vector<ZoneId> ids;
    ids.reserve(zones_.size());
    for (const auto& [id, desc] : zones_) ids.push_back(id);
    return ids;
  }

 private:
  std::unordered_map<ZoneId, ZoneDescriptor> zones_;
  std::unordered_map<ZoneId, std::vector<ServerId>> replicas_;
};

}  // namespace roia::rtf
