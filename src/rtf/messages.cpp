#include "rtf/messages.hpp"

namespace roia::rtf {
namespace {

ser::Frame makeFrame(ser::MessageType type, ser::ByteWriter&& writer) {
  ser::Frame frame;
  frame.type = type;
  frame.payload = std::move(writer).take();
  return frame;
}

void expectType(const ser::Frame& frame, ser::MessageType type) {
  if (frame.type != type) throw ser::DecodeError("unexpected frame type");
}

}  // namespace

ser::Frame encode(const ClientInputMsg& msg) {
  ser::ByteWriter writer(16 + msg.commands.size());
  writer.writeVarU64(msg.client.value);
  writer.writeVarU64(msg.clientTick);
  writer.writeBytes(msg.commands);
  // Optional trailing ack: absent when zero, so full-codec frames keep the
  // exact legacy byte image.
  if (msg.viewAck != 0) writer.writeVarU64(msg.viewAck);
  return makeFrame(ser::MessageType::kClientInput, std::move(writer));
}

ClientInputMsg decodeClientInput(const ser::Frame& frame) {
  expectType(frame, ser::MessageType::kClientInput);
  ser::ByteReader reader(frame.payload);
  ClientInputMsg msg;
  msg.client = ClientId{reader.readVarU64()};
  msg.clientTick = reader.readVarU64();
  msg.commands = reader.readBytes();
  if (!reader.atEnd()) msg.viewAck = reader.readVarU64();
  return msg;
}

ser::Frame encode(const ForwardedInputMsg& msg) {
  ser::ByteWriter writer(20 + msg.interaction.size());
  writer.writeVarU64(msg.target.value);
  writer.writeVarU64(msg.source.value);
  writer.writeBytes(msg.interaction);
  return makeFrame(ser::MessageType::kForwardedInput, std::move(writer));
}

ForwardedInputMsg decodeForwardedInput(const ser::Frame& frame) {
  expectType(frame, ser::MessageType::kForwardedInput);
  ser::ByteReader reader(frame.payload);
  ForwardedInputMsg msg;
  msg.target = EntityId{reader.readVarU64()};
  msg.source = EntityId{reader.readVarU64()};
  msg.interaction = reader.readBytes();
  return msg;
}

ser::Frame encode(const EntityReplicationMsg& msg) {
  ser::ByteWriter writer(8 + msg.entities.size() * 32);
  writer.writeVarU64(msg.serverTick);
  writer.writeVarU64(msg.entities.size());
  for (const auto& snapshot : msg.entities) SnapshotCodec::writeSnapshot(writer, snapshot);
  writer.writeVarU64(msg.removed.size());
  for (const EntityId id : msg.removed) writer.writeVarU64(id.value);
  return makeFrame(ser::MessageType::kEntityReplication, std::move(writer));
}

EntityReplicationMsg decodeEntityReplication(const ser::Frame& frame) {
  expectType(frame, ser::MessageType::kEntityReplication);
  ser::ByteReader reader(frame.payload);
  EntityReplicationMsg msg;
  msg.serverTick = reader.readVarU64();
  const std::uint64_t count = reader.readVarU64();
  // Every snapshot occupies multiple bytes; a count beyond the remaining
  // payload is malformed (and must not drive a huge allocation).
  if (count > reader.remaining()) throw ser::DecodeError("implausible entity count");
  msg.entities.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) msg.entities.push_back(SnapshotCodec::readSnapshot(reader));
  const std::uint64_t removedCount = reader.readVarU64();
  if (removedCount > reader.remaining()) throw ser::DecodeError("implausible removed count");
  msg.removed.reserve(removedCount);
  for (std::uint64_t i = 0; i < removedCount; ++i) msg.removed.push_back(EntityId{reader.readVarU64()});
  return msg;
}

ser::Frame encode(const MigrationDataMsg& msg) {
  ser::ByteWriter writer(48 + msg.appState.size());
  writer.writeVarU64(msg.client.value);
  writer.writeVarU64(msg.clientNode.value);
  SnapshotCodec::writeSnapshot(writer, msg.entity);
  writer.writeBytes(msg.appState);
  writer.writeVarU64(msg.source.value);
  writer.writeVarU64(msg.traceId);
  return makeFrame(ser::MessageType::kMigrationData, std::move(writer));
}

MigrationDataMsg decodeMigrationData(const ser::Frame& frame) {
  expectType(frame, ser::MessageType::kMigrationData);
  ser::ByteReader reader(frame.payload);
  MigrationDataMsg msg;
  msg.client = ClientId{reader.readVarU64()};
  msg.clientNode = NodeId{reader.readVarU64()};
  msg.entity = SnapshotCodec::readSnapshot(reader);
  msg.appState = reader.readBytes();
  msg.source = ServerId{reader.readVarU64()};
  msg.traceId = reader.readVarU64();
  return msg;
}

ser::Frame encode(const MigrationAckMsg& msg) {
  ser::ByteWriter writer(32);
  writer.writeVarU64(msg.client.value);
  writer.writeVarU64(msg.entity.value);
  writer.writeVarU64(msg.newOwner.value);
  writer.writeVarU64(msg.traceId);
  return makeFrame(ser::MessageType::kMigrationAck, std::move(writer));
}

MigrationAckMsg decodeMigrationAck(const ser::Frame& frame) {
  expectType(frame, ser::MessageType::kMigrationAck);
  ser::ByteReader reader(frame.payload);
  MigrationAckMsg msg;
  msg.client = ClientId{reader.readVarU64()};
  msg.entity = EntityId{reader.readVarU64()};
  msg.newOwner = ServerId{reader.readVarU64()};
  msg.traceId = reader.readVarU64();
  return msg;
}

ser::Frame encode(const ZoneHandoffMsg& msg) {
  ser::ByteWriter writer(64 + msg.appState.size());
  writer.writeVarU64(msg.client.value);
  writer.writeVarU64(msg.clientNode.value);
  writer.writeVarU64(msg.fromZone.value);
  writer.writeVarU64(msg.toZone.value);
  SnapshotCodec::writeSnapshot(writer, msg.entity);
  writer.writeBytes(msg.appState);
  writer.writeVarU64(msg.source.value);
  writer.writeVarU64(msg.sourceNode.value);
  writer.writeVarU64(msg.traceId);
  return makeFrame(ser::MessageType::kZoneHandoff, std::move(writer));
}

ZoneHandoffMsg decodeZoneHandoff(const ser::Frame& frame) {
  expectType(frame, ser::MessageType::kZoneHandoff);
  ser::ByteReader reader(frame.payload);
  ZoneHandoffMsg msg;
  msg.client = ClientId{reader.readVarU64()};
  msg.clientNode = NodeId{reader.readVarU64()};
  msg.fromZone = ZoneId{reader.readVarU64()};
  msg.toZone = ZoneId{reader.readVarU64()};
  msg.entity = SnapshotCodec::readSnapshot(reader);
  msg.appState = reader.readBytes();
  msg.source = ServerId{reader.readVarU64()};
  msg.sourceNode = NodeId{reader.readVarU64()};
  msg.traceId = reader.readVarU64();
  return msg;
}

ser::Frame encode(const ZoneHandoffAckMsg& msg) {
  ser::ByteWriter writer(40);
  writer.writeVarU64(msg.client.value);
  writer.writeVarU64(msg.entity.value);
  writer.writeVarU64(msg.newOwner.value);
  writer.writeVarU64(msg.newZone.value);
  writer.writeVarU64(msg.version);
  writer.writeVarU64(msg.traceId);
  return makeFrame(ser::MessageType::kZoneHandoffAck, std::move(writer));
}

ZoneHandoffAckMsg decodeZoneHandoffAck(const ser::Frame& frame) {
  expectType(frame, ser::MessageType::kZoneHandoffAck);
  ser::ByteReader reader(frame.payload);
  ZoneHandoffAckMsg msg;
  msg.client = ClientId{reader.readVarU64()};
  msg.entity = EntityId{reader.readVarU64()};
  msg.newOwner = ServerId{reader.readVarU64()};
  msg.newZone = ZoneId{reader.readVarU64()};
  msg.version = reader.readVarU64();
  msg.traceId = reader.readVarU64();
  return msg;
}

ser::Frame encode(const BorderSyncMsg& msg) {
  ser::ByteWriter writer(16 + msg.entities.size() * 32);
  writer.writeVarU64(msg.serverTick);
  writer.writeVarU64(msg.zone.value);
  writer.writeVarU64(msg.source.value);
  writer.writeVarU64(msg.entities.size());
  for (const auto& snapshot : msg.entities) SnapshotCodec::writeSnapshot(writer, snapshot);
  return makeFrame(ser::MessageType::kBorderSync, std::move(writer));
}

BorderSyncMsg decodeBorderSync(const ser::Frame& frame) {
  expectType(frame, ser::MessageType::kBorderSync);
  ser::ByteReader reader(frame.payload);
  BorderSyncMsg msg;
  msg.serverTick = reader.readVarU64();
  msg.zone = ZoneId{reader.readVarU64()};
  msg.source = ServerId{reader.readVarU64()};
  const std::uint64_t count = reader.readVarU64();
  if (count > reader.remaining()) throw ser::DecodeError("implausible entity count");
  msg.entities.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) msg.entities.push_back(SnapshotCodec::readSnapshot(reader));
  return msg;
}

ser::Frame encode(const HeartbeatMsg& msg) {
  ser::ByteWriter writer(24);
  writer.writeVarU64(msg.server.value);
  writer.writeVarU64(msg.seq);
  writer.writeVarI64(msg.sentAt.micros);
  return makeFrame(ser::MessageType::kHeartbeat, std::move(writer));
}

HeartbeatMsg decodeHeartbeat(const ser::Frame& frame) {
  expectType(frame, ser::MessageType::kHeartbeat);
  ser::ByteReader reader(frame.payload);
  HeartbeatMsg msg;
  msg.server = ServerId{reader.readVarU64()};
  msg.seq = reader.readVarU64();
  msg.sentAt = SimTime{reader.readVarI64()};
  return msg;
}

ser::Frame encode(const ViewReplicationMsg& msg) {
  ser::ByteWriter writer(16 + msg.view.size());
  writer.writeVarU64(msg.serverTick);
  writer.writeVarU64(msg.source.value);
  writer.writeBytes(msg.view);
  return makeFrame(ser::MessageType::kViewReplication, std::move(writer));
}

ViewReplicationMsg decodeViewReplication(const ser::Frame& frame) {
  expectType(frame, ser::MessageType::kViewReplication);
  ser::ByteReader reader(frame.payload);
  ViewReplicationMsg msg;
  msg.serverTick = reader.readVarU64();
  msg.source = ServerId{reader.readVarU64()};
  msg.view = reader.readBytes();
  return msg;
}

ser::Frame encode(const ReplicationAckMsg& msg) {
  ser::ByteWriter writer(16);
  writer.writeVarU64(msg.acker.value);
  writer.writeVarU64(msg.tick);
  return makeFrame(ser::MessageType::kReplicationAck, std::move(writer));
}

ReplicationAckMsg decodeReplicationAck(const ser::Frame& frame) {
  expectType(frame, ser::MessageType::kReplicationAck);
  ser::ByteReader reader(frame.payload);
  ReplicationAckMsg msg;
  msg.acker = ServerId{reader.readVarU64()};
  msg.tick = reader.readVarU64();
  return msg;
}

}  // namespace roia::rtf
