// An RTF application server: executes the real-time loop for one zone
// replica, maintains active/shadow entities, exchanges replication and
// forwarded-input traffic with peer replicas, serves connected clients and
// participates in the two-sided user-migration protocol.
//
// One loop iteration ("tick", section II of the paper):
//   1. receive inputs from connected users (+ forwarded inputs, shadow
//      snapshots and migration transfers from peers),
//   2. compute the new application state via the application logic,
//   3. send filtered state updates to users and active-entity snapshots to
//      peer replicas.
// Every phase charges simulated CPU cost through the CostMeter, producing
// the per-tick probes that the scalability model is fitted from.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "obs/telemetry.hpp"
#include "rtf/application.hpp"
#include "rtf/messages.hpp"
#include "rtf/monitoring.hpp"
#include "rtf/overload.hpp"
#include "rtf/probes.hpp"
#include "rtf/reliable.hpp"
#include "rtf/world.hpp"
#include "sim/cpu.hpp"
#include "sim/simulation.hpp"

namespace roia::rtf {

/// Cost constants of the RTF-generic phases. Units: cost units (~reference
/// microseconds); *PerByte values multiply encoded payload bytes, matching
/// the paper's observation that (de)serialization effort is proportional to
/// data size.
struct ServerConfig {
  SimDuration tickInterval{SimDuration::milliseconds(40)};  // 25 Hz

  // Fixed per-iteration bookkeeping outside the model (kept small).
  double tickBaseCost{12.0};

  // Deserialization of client input batches (t_ua_dser).
  double inputDserBaseCost{0.9};
  double inputDserPerByteCost{0.045};

  // Deserialization of inter-server traffic (t_fa_dser): forwarded inputs
  // and shadow snapshots.
  double peerDserBaseCost{0.35};
  double peerDserPerByteCost{0.02};

  // Applying a shadow snapshot to the local copy (t_fa, substrate part; the
  // application adds index maintenance via onShadowUpdated).
  double shadowApplyCost{0.4};

  // State update serialization (t_su, substrate part, per encoded byte).
  double updateSerBaseCost{1.0};
  double updateSerPerByteCost{0.04};

  // Replica-sync serialization, charged under t_su like all outbound state
  // (the loop's step 3 sends state to users AND other servers).
  double replSerBaseCost{0.8};
  double replSerPerByteCost{0.012};

  // Migration: initiating is costlier than receiving (paper Fig. 6) since
  // the source must unsubscribe the user from every interest structure.
  double migIniBaseCost{150.0};
  double migIniPerEntityCost{5.0};
  double migIniPerByteCost{0.04};
  double migRcvBaseCost{80.0};
  double migRcvPerEntityCost{2.2};
  double migRcvPerByteCost{0.02};

  // Cross-zone border synchronization (zone sharding). Entities of this
  // zone within `borderWidth` of a neighboring zone are mirrored to that
  // neighbor's servers as best-effort border shadows (raw frames; versions
  // plus TTL expiry make loss/duplication harmless). 0 disables.
  double borderWidth{0.0};
  /// A border shadow not refreshed for this long is dropped.
  SimDuration borderShadowTtl{SimDuration::milliseconds(250)};
  double borderSerBaseCost{0.8};
  double borderSerPerByteCost{0.012};

  /// State-replication codec selection and delta knobs. Clients and replica
  /// peers derive their codecs from the same profile (the cluster mirrors
  /// it into the client template), so both link ends agree on the wire.
  ReplicationProfile replication{};

  sim::CpuCostModel::Config cpu{};
  SimDuration monitoringWindow{SimDuration::seconds(1)};
  /// Cadence of monitoring publication when a collector is attached.
  SimDuration monitoringPublishPeriod{SimDuration::milliseconds(500)};
  /// Cost of serializing + sending one monitoring snapshot.
  double monitoringPublishCost{3.0};
  /// Cadence of liveness heartbeats to the collector (best-effort frames;
  /// the failure detector tolerates individual losses).
  SimDuration heartbeatPeriod{SimDuration::milliseconds(250)};
  /// Retransmission behaviour of the reliable control-plane channel.
  ReliableConfig reliable{};
  /// Tick-budget enforcement + degradation ladder (disabled by default).
  OverloadConfig overload{};
};

/// One neighboring zone as seen by a server: geometry (for the border band)
/// plus the servers currently replicating it (border-sync fan-out targets).
struct ZoneNeighbor {
  ZoneId zone;
  Vec2 origin;
  Vec2 extent;
  std::vector<std::pair<ServerId, NodeId>> servers;
};

/// Where a position outside this server's zone should be handed off to:
/// the owning zone plus one of its replicas, chosen by the cluster.
struct HandoffTarget {
  ZoneId zone;
  ServerId server;
  NodeId node;
};

class Server : public ForwardSink {
 public:
  /// Fired at the end of every tick with that tick's probes.
  using ProbeListener = std::function<void(const Server&, const TickProbes&)>;
  /// Fired on the *source* server when the target acknowledges adoption.
  using MigrationCompleteFn = std::function<void(ClientId client, ServerId from, ServerId to)>;
  /// Fired on the *source* server when a cross-zone handoff completes.
  using ZoneHandoffCompleteFn =
      std::function<void(ClientId client, ServerId from, ServerId to, ZoneId toZone)>;
  /// Maps a world position to the zone owning it (and a replica to adopt
  /// there); nullopt when no zone covers the position. Provided by the
  /// cluster; evaluated inside the tick, so it must be deterministic.
  using HandoffResolver = std::function<std::optional<HandoffTarget>(Vec2 position)>;
  /// Predicts the next tick's cost in milliseconds from the workload
  /// (activeUsers, totalAvatars, npcs). Injected by the harness — typically
  /// Eq.1/4 via model::TickModel, which rtf itself cannot link against. The
  /// ladder controller uses max(measured, predicted) so a spike is caught
  /// one tick early.
  using TickPredictor =
      std::function<double(std::size_t activeUsers, std::size_t totalAvatars, std::size_t npcs)>;

  Server(ServerId id, ZoneId zone, Application& app, sim::Simulation& simulation,
         net::Network& network, ServerConfig config, Rng rng);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] ServerId id() const { return id_; }
  [[nodiscard]] ZoneId zone() const { return world_.zone(); }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] World& world() { return world_; }
  [[nodiscard]] const World& world() const { return world_; }
  [[nodiscard]] const ServerConfig& config() const { return config_; }

  /// Begins ticking; idempotent.
  void start();
  /// Stops ticking and detaches from the network.
  void shutdown();
  /// Crash-failure: the process dies mid-tick-interval. Identical to
  /// shutdown at this level (no drain, no goodbye) but remembered, so the
  /// harness can distinguish decommissioned from crashed replicas.
  void crash();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] bool crashed() const { return crashed_; }

  /// Registers/updates a peer replica of the same zone.
  void setPeers(std::vector<std::pair<ServerId, NodeId>> peers);

  /// Spawns a brand-new user avatar owned by this server (client connect).
  /// Peers learn about it through the next replica sync.
  void spawnUser(ClientId client, EntityId entity, NodeId clientNode, Vec2 position);

  /// Spawns an NPC owned by this server (the paper distributes the zone's m
  /// NPCs equally over the l replicas).
  void spawnNpc(EntityId entity, Vec2 position);

  /// Disconnects a user: removes the avatar and tells peers to retire it.
  /// Returns false if the client is not active here.
  bool disconnectUser(ClientId client);

  /// Queues a migration of `client` to `target`, executed during the next
  /// tick's migration phase. Returns false if the client is not active here
  /// or already migrating.
  bool requestMigration(ClientId client, ServerId target, NodeId targetNode);

  /// Queues a cross-zone handoff of `client` to `target` in `targetZone`.
  /// Same two-sided protocol as requestMigration, but the entity leaves the
  /// source zone entirely once the target acknowledges adoption. Returns
  /// false if the client is not active here or already in hand-over.
  bool requestZoneHandoff(ClientId client, ServerId target, NodeId targetNode, ZoneId targetZone);

  // --- zone sharding wiring (provided by the cluster) ---

  /// Replaces the neighbor-zone table used for border sync.
  void setNeighborZones(std::vector<ZoneNeighbor> neighbors);
  /// Geometry of this server's own zone. Handoff arrivals whose entity
  /// position lies outside (RMS-driven load-balancing moves) are clamped
  /// into the rectangle so they are not immediately handed back.
  void setZoneBounds(Vec2 origin, Vec2 extent);
  /// Admission check for incoming handoffs: the cluster vetoes hand-overs
  /// whose source has crashed (adopting those would race with recovery
  /// re-homing the same user). Accept-all when unset.
  void setHandoffAdmission(std::function<bool(ServerId source)> admission) {
    handoffAdmission_ = std::move(admission);
  }
  /// Installs the position -> zone resolver; when set, avatars that move
  /// beyond the zone rectangle are handed off to the owning zone
  /// automatically at the next migration phase.
  void setHandoffResolver(HandoffResolver resolver) { handoffResolver_ = std::move(resolver); }
  void setZoneHandoffCompleteFn(ZoneHandoffCompleteFn fn) { onZoneHandoffComplete_ = std::move(fn); }

  [[nodiscard]] std::uint64_t handoffsInitiated() const { return handoffsInitiatedTotal_; }
  [[nodiscard]] std::uint64_t handoffsReceived() const { return handoffsReceivedTotal_; }

  // --- crash recovery (invoked by the cluster / management plane) ---

  /// Aborts hand-overs to a peer that died: queued migrations to it are
  /// dropped and users whose avatar was already signed over are re-owned
  /// locally, so no client wedges in the migrating state forever.
  void cancelMigrationsTo(ServerId deadTarget);

  /// Adopts an orphaned user of a crashed replica. If this server still
  /// holds a shadow of the avatar (from replica sync) it is promoted to an
  /// active entity — the user keeps position/health; otherwise a fresh
  /// avatar spawns at `fallbackSpawn`. Returns true when a shadow was
  /// promoted.
  bool adoptOrphan(ClientId client, EntityId entity, NodeId clientNode, Vec2 fallbackSpawn);

  /// Takes ownership of NPC shadows left behind by a crashed replica.
  /// Returns the number of NPCs adopted.
  std::size_t adoptNpcsFrom(ServerId deadOwner);

  [[nodiscard]] bool hasClient(ClientId client) const { return clients_.contains(client); }

  void setMigrationCompleteFn(MigrationCompleteFn fn) { onMigrationComplete_ = std::move(fn); }
  void setProbeListener(ProbeListener listener) { probeListener_ = std::move(listener); }

  /// Attaches telemetry (tick/phase histograms, tick spans, migration and
  /// replica-sync flow events, reliable-transport counters). Recording
  /// charges no simulated CPU cost, so tick results are identical with
  /// telemetry attached, detached, or disabled.
  void setTelemetry(obs::Telemetry* telemetry);

  /// Starts publishing monitoring snapshots to `collector` every
  /// monitoringPublishPeriod; an invalid id stops publication.
  void setMonitoringTarget(NodeId collector) { monitoringTarget_ = collector; }

  // --- overload survival (degradation ladder) ---

  /// Installs the Eq.2-style tick-cost predictor; unset, the ladder runs on
  /// measured cost alone.
  void setTickPredictor(TickPredictor predictor) { tickPredictor_ = std::move(predictor); }
  /// Current rung of the degradation ladder (0 = full fidelity).
  [[nodiscard]] std::size_t overloadLevel() const { return overloadLevel_; }
  /// Effective tick budget in milliseconds (config override or tick rate).
  [[nodiscard]] double tickBudgetMs() const {
    return config_.overload.budgetMs > 0.0 ? config_.overload.budgetMs
                                           : config_.tickInterval.asMillis();
  }
  /// Latest cost estimate fed to the ladder: max(measured, predicted), ms.
  [[nodiscard]] double lastTickCostMs() const { return lastTickCostMs_; }
  [[nodiscard]] std::uint64_t overloadStepDowns() const { return overloadStepDownsTotal_; }
  [[nodiscard]] std::uint64_t overloadStepUps() const { return overloadStepUpsTotal_; }
  /// Observers currently shed at the deepest ladder level.
  [[nodiscard]] std::size_t shedObservers() const { return shedObservers_; }
  [[nodiscard]] std::uint64_t shedEvents() const { return shedEventsTotal_; }
  [[nodiscard]] std::uint64_t readmitEvents() const { return readmitEventsTotal_; }

  [[nodiscard]] std::size_t connectedUsers() const { return clients_.size(); }
  /// Connected clients in ascending id order; `migratableOnly` filters out
  /// users already in hand-over.
  [[nodiscard]] std::vector<ClientId> clientIds(bool migratableOnly = false) const;
  [[nodiscard]] MonitoringSnapshot monitoring() const;
  [[nodiscard]] const sim::CpuAccount& cpuAccount() const { return cpuAccount_; }
  [[nodiscard]] std::uint64_t tickCount() const { return tickSeq_; }

  // ForwardSink: emit an interaction targeting an entity owned elsewhere.
  void forwardInteraction(EntityId target, EntityId source,
                          std::vector<std::uint8_t> payload) override;

 private:
  struct ClientSession {
    NodeId clientNode;
    EntityId entity;
    bool migrating{false};
    /// Trace id of the outstanding migration/handoff protocol instance
    /// (0 = none). Maintained unconditionally — it mirrors what went on the
    /// wire, so state never depends on whether telemetry is attached.
    std::uint64_t traceId{0};
    /// Delta-codec baseline tracker for this client link; created lazily on
    /// the first delta state update (null in full mode).
    std::unique_ptr<BaselineSender> sender;
  };

  struct PendingMigration {
    ClientId client;
    ServerId target;
    NodeId targetNode;
    /// Invalid for same-zone migrations; the destination zone of a handoff.
    ZoneId targetZone{};
  };

  void onFrame(NodeId from, const ser::Frame& frame);
  void dispatchFrame(NodeId from, const ser::Frame& frame);
  void tick();
  void recordTickTelemetry(const TickProbes& probes);
  /// SLO samples, Eq.2 drift residual and the flight-recorder frame for
  /// this tick; called only with telemetry attached.
  void recordHealthTelemetry(const TickProbes& probes);
  void onSloBreach(const obs::SloBreach& breach, double predictedMs);

  void processMigrationArrivals();
  void processZoneHandoffArrivals();
  void processReplication();
  /// Applies one replica snapshot to the local shadow copy (shared by the
  /// full and delta replication paths).
  void applyShadowSnapshot(const EntitySnapshot& snapshot);
  /// Retires one shadow announced as removed by its owner.
  void retireShadow(EntityId id);
  void processBorderSync();
  void expireBorderShadows();
  void processForwardedInputs();
  void processClientInputs();
  void flushForwarded();
  void updateNpcs();
  void sendStateUpdates();
  void sendReplicaSync();
  void sendReplicaSyncDelta();
  void sendBorderSync();
  void detectZoneExits();
  void initiateMigrations();
  void processMigrationAcks();
  void updateOverloadLadder(const TickProbes& probes, SimDuration busy);
  void applyOverloadLevel(std::size_t newLevel, double costMs, double predictedMs);
  void updateShedCount();
  void auditOverload(const char* action, const char* threshold, double costMs, double predictedMs,
                     std::string rationale) const;
  /// Generic audit emission (action names come from obs/events.hpp).
  void auditEvent(const char* action, const char* strategy, std::string threshold, double costMs,
                  double predictedMs, std::string rationale) const;

  ServerId id_;
  Application& app_;
  sim::Simulation& sim_;
  net::Network& net_;
  ServerConfig config_;
  World world_;
  Rng rng_;
  sim::CpuCostModel cpu_;
  CostMeter meter_;
  sim::CpuAccount cpuAccount_;
  MonitoringWindow monitoringWindow_;
  NodeId node_;
  std::unique_ptr<ReliableTransport> reliable_;

  std::map<ClientId, ClientSession> clients_;      // deterministic order
  std::vector<std::pair<ServerId, NodeId>> peers_;  // same-zone replicas

  // --- delta replication state (unused in full mode) ---
  /// Client-link codec: quantized per the profile.
  SnapshotCodec codec_;
  /// Replica-link codec: exact (scales forced off) — promoted shadows must
  /// equal owner state bit-for-bit for crash recovery.
  SnapshotCodec replicaCodec_;
  std::map<ServerId, BaselineSender> replicaSenders_;
  std::map<ServerId, BaselineReceiver> replicaReceivers_;

  // Inboxes drained at the next tick. Each entry carries the payload byte
  // count so deserialization cost can be charged inside the tick, plus the
  // sending node (used only by telemetry flow events).
  template <class T>
  struct Inbound {
    T msg;
    std::size_t bytes;
    NodeId from{};
  };
  std::deque<Inbound<ClientInputMsg>> inClientInputs_;
  std::deque<Inbound<ForwardedInputMsg>> inForwarded_;
  std::deque<Inbound<EntityReplicationMsg>> inReplication_;
  std::deque<Inbound<MigrationDataMsg>> inMigrationData_;
  std::deque<MigrationAckMsg> inMigrationAcks_;
  std::deque<Inbound<ZoneHandoffMsg>> inZoneHandoffs_;
  std::deque<ZoneHandoffAckMsg> inZoneHandoffAcks_;
  std::deque<Inbound<BorderSyncMsg>> inBorderSync_;
  std::deque<Inbound<ViewReplicationMsg>> inViewReplication_;
  std::deque<ReplicationAckMsg> inReplicationAcks_;

  std::deque<PendingMigration> migrationQueue_;
  std::vector<ForwardedInputMsg> outForwarded_;
  std::vector<EntityId> departedEntities_;  // to announce in next sync

  // --- zone sharding state ---
  std::vector<ZoneNeighbor> neighbors_;
  HandoffResolver handoffResolver_;
  ZoneHandoffCompleteFn onZoneHandoffComplete_;
  std::function<bool(ServerId)> handoffAdmission_;
  bool hasZoneBounds_{false};
  Vec2 zoneOrigin_;
  Vec2 zoneExtent_;
  /// Last refresh time per border shadow (std::map: deterministic expiry
  /// order).
  std::map<EntityId, SimTime> borderSeen_;
  std::vector<EntitySnapshot> borderScratch_;

  // Per-tick scratch buffers for sendStateUpdates: the AOI result (world
  // slot indices) and the encoded update are rebuilt per client, so their
  // allocations are reused across clients and ticks. Simulated costs are
  // unaffected.
  std::vector<std::uint32_t> aoiScratch_;
  std::vector<std::uint8_t> updateScratch_;

  bool running_{false};
  bool crashed_{false};
  bool inTick_{false};
  std::uint64_t tickSeq_{0};
  std::uint64_t migrationsInitiatedTotal_{0};
  std::uint64_t migrationsReceivedTotal_{0};
  std::uint64_t handoffsInitiatedTotal_{0};
  std::uint64_t handoffsReceivedTotal_{0};
  /// Monotone allocator for protocol trace ids (always advances, telemetry
  /// or not — the id goes into message bytes).
  std::uint64_t protocolSeq_{0};
  // Per-tick counters, folded into TickProbes at the end of each tick.
  std::size_t tickMigrationsInitiated_{0};
  std::size_t tickMigrationsReceived_{0};
  std::size_t tickInputsApplied_{0};
  std::size_t tickForwardedApplied_{0};
  sim::EventHandle nextTick_{};
  std::size_t lastTickActiveUsers_{0};

  // --- overload ladder state ---
  TickPredictor tickPredictor_;
  std::size_t overloadLevel_{0};
  std::size_t overBudgetStreak_{0};
  std::size_t underBudgetStreak_{0};
  double lastTickCostMs_{0.0};
  /// Clients excluded from AOI/state updates this tick (deepest rung only);
  /// highest client ids first, never owners of anything but their avatar.
  std::size_t shedObservers_{0};
  std::uint64_t overloadStepDownsTotal_{0};
  std::uint64_t overloadStepUpsTotal_{0};
  std::uint64_t shedEventsTotal_{0};
  std::uint64_t readmitEventsTotal_{0};

  NodeId monitoringTarget_{};
  SimTime lastMonitoringPublish_{SimTime::zero()};
  SimTime lastHeartbeat_{SimTime::zero()};
  std::uint64_t heartbeatSeq_{0};

  ProbeListener probeListener_;
  MigrationCompleteFn onMigrationComplete_;

  // --- telemetry (pure observer; never charges CPU cost) ---
  obs::Telemetry* telemetry_{nullptr};
  std::uint32_t traceTrack_{0};
  /// Metric/SLO/flight key of this server ("server-<id>"), cached at attach.
  std::string obsKey_;
  /// SLO objective handles resolved at attach time; nullopt when the engine
  /// has no such objective (recording is skipped entirely).
  struct SloHandles {
    std::optional<std::size_t> tick;
    std::optional<std::size_t> rate;
    std::optional<std::size_t> handoff;
  };
  SloHandles obsSlo_{};
  /// Cached instrument pointers, resolved once per attach.
  struct TickMetrics {
    obs::LogHistogram* tickDurationMs;
    std::array<obs::LogHistogram*, kPhaseCount> phaseMicros;
    obs::Counter* migrationsInitiated;
    obs::Counter* migrationsReceived;
    obs::Counter* inputsApplied;
    obs::Counter* forwardedApplied;
    obs::Counter* reliableRetransmissions;
    obs::Counter* reliableDuplicatesDropped;
    obs::Counter* reliableAbandoned;
  };
  std::optional<TickMetrics> tickMetrics_;
};

}  // namespace roia::rtf
