// Reliable at-least-once delivery for control-plane messages.
//
// The simulated network is best-effort once a FaultInjector is attached:
// frames can vanish, duplicate or arrive out of order. Data-plane traffic
// (user inputs, state updates) tolerates that — the next tick supersedes a
// lost one — but control-plane messages do not: a lost MigrationData wedges
// the hand-over forever, a lost replica sync leaves shadows stale, a lost
// monitoring snapshot starves RTF-RMS. ReliableTransport wraps such frames
// in a sequence-numbered envelope, acknowledges on receive, retransmits
// with exponential backoff until acked or abandoned, and deduplicates on
// the receive side. Delivery is at-least-once and unordered; receivers are
// order-tolerant (entity versions, snapshot timestamps), so no head-of-line
// blocking is needed. All timers run in the simulation, so retransmission
// behaviour is as deterministic as everything else.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "serialize/message.hpp"
#include "sim/simulation.hpp"

namespace roia::rtf {

struct ReliableConfig {
  /// First retransmission fires this long after the original send.
  SimDuration retransmitTimeout{SimDuration::milliseconds(100)};
  /// Timeout multiplier per retransmission (exponential backoff).
  double backoffFactor{2.0};
  SimDuration maxRetransmitTimeout{SimDuration::seconds(2)};
  /// Total transmissions (initial + retransmits) before giving up. A crashed
  /// peer never acks, so unbounded retries would leak timers forever.
  std::size_t maxAttempts{8};
  /// Seeded jitter on each retransmit delay: the armed timeout is scaled by
  /// a factor drawn uniformly from [1, 1 + jitterFraction], decorrelating
  /// endpoints that lost frames in the same burst (thundering-herd
  /// retransmits). The backoff progression itself stays deterministic —
  /// jitter only perturbs when a timer fires, not the next timeout. 0
  /// disables jitter and draws no randomness, so default-config byte
  /// streams are unchanged.
  double jitterFraction{0.0};
  /// Base seed of the per-endpoint jitter stream (mixed with the node id).
  std::uint64_t jitterSeed{0x0ddb1a5ed5eedULL};
};

struct ReliableStats {
  std::uint64_t messagesSent{0};
  std::uint64_t retransmissions{0};
  std::uint64_t messagesDelivered{0};
  std::uint64_t duplicatesDropped{0};
  std::uint64_t acksSent{0};
  std::uint64_t acksReceived{0};
  /// Messages dropped after maxAttempts (peer presumed dead).
  std::uint64_t abandoned{0};
};

/// One reliable endpoint. The owner keeps the network node and routes
/// kReliableData / kReliableAck frames into onFrame; decoded inner frames
/// come back through the deliver callback.
class ReliableTransport {
 public:
  using DeliverFn = std::function<void(NodeId from, const ser::Frame& inner)>;

  ReliableTransport(sim::Simulation& simulation, net::Network& network, NodeId self,
                    ReliableConfig config = {});
  ~ReliableTransport();
  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  void setDeliver(DeliverFn deliver) { deliver_ = std::move(deliver); }

  /// Sends `inner` reliably to `to` (wrapped in a kReliableData envelope).
  void send(NodeId to, const ser::Frame& inner);

  /// Feeds an incoming frame. Returns true when the frame belonged to the
  /// reliable layer (envelope or ack) and was consumed.
  bool onFrame(NodeId from, const ser::Frame& frame);

  /// Drops all send/receive state for `peer` (it crashed or was replaced);
  /// outstanding retransmissions to it stop.
  void resetPeer(NodeId peer);

  [[nodiscard]] std::size_t unackedCount() const;
  [[nodiscard]] const ReliableStats& stats() const { return stats_; }

 private:
  struct Pending {
    ser::Frame envelope;  // ready to retransmit verbatim
    std::size_t attempts{1};
    SimDuration timeout;
  };
  struct PeerState {
    std::uint64_t nextSeq{1};
    std::map<std::uint64_t, Pending> pending;  // unacked sends, by seq
    // Receive-side dedup: every seq <= contiguous was seen, plus the sparse
    // set of out-of-order seqs above it.
    std::uint64_t contiguousSeen{0};
    std::set<std::uint64_t> seenAbove;
  };

  void scheduleRetransmit(NodeId to, std::uint64_t seq, SimDuration after);
  /// Applies the configured retransmit jitter; identity (no RNG draw) when
  /// jitterFraction is 0.
  [[nodiscard]] SimDuration jittered(SimDuration base);
  [[nodiscard]] static bool alreadySeen(const PeerState& peer, std::uint64_t seq);
  static void markSeen(PeerState& peer, std::uint64_t seq);

  sim::Simulation& sim_;
  net::Network& net_;
  NodeId self_;
  ReliableConfig config_;
  Rng jitterRng_;
  DeliverFn deliver_;
  std::map<std::uint64_t, PeerState> peers_;  // by NodeId value
  ReliableStats stats_;
  /// Outstanding sim timers check this before touching the transport, so
  /// destruction does not have to hunt down every scheduled event.
  std::shared_ptr<bool> alive_;
};

/// Envelope codec (exposed for tests).
[[nodiscard]] ser::Frame encodeReliableEnvelope(std::uint64_t seq, const ser::Frame& inner);
/// Decodes an envelope; returns {seq, inner frame}.
[[nodiscard]] std::pair<std::uint64_t, ser::Frame> decodeReliableEnvelope(const ser::Frame& frame);
[[nodiscard]] ser::Frame encodeReliableAck(std::uint64_t seq);
[[nodiscard]] std::uint64_t decodeReliableAck(const ser::Frame& frame);

}  // namespace roia::rtf
