#include "rtf/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>

#include "common/log.hpp"
#include "obs/events.hpp"

namespace roia::rtf {

Server::Server(ServerId id, ZoneId zone, Application& app, sim::Simulation& simulation,
               net::Network& network, ServerConfig config, Rng rng)
    : id_(id),
      app_(app),
      sim_(simulation),
      net_(network),
      config_(config),
      world_(zone),
      rng_(rng),
      cpu_([&] {
        auto cpuConfig = config.cpu;
        // Distinct noise stream per server even when the caller forgets to
        // set one: derive it from the server id.
        if (cpuConfig.noiseSeed == 0) cpuConfig.noiseSeed = 0x5eed0000ULL + id.value;
        return cpuConfig;
      }()),
      meter_(cpu_),
      cpuAccount_(SimDuration::seconds(2)),
      monitoringWindow_(config.monitoringWindow) {
  codec_ = SnapshotCodec(config_.replication);
  // Replica links replicate exactly: a promoted shadow must equal the dead
  // owner's state, so the lattice scales are forced off for peers.
  ReplicationProfile exact = config_.replication;
  exact.positionScale = 0.0;
  exact.velocityScale = 0.0;
  replicaCodec_ = SnapshotCodec(exact);
  node_ = net_.addNode([this](NodeId from, const ser::Frame& frame) { onFrame(from, frame); });
  reliable_ = std::make_unique<ReliableTransport>(sim_, net_, node_, config_.reliable);
  reliable_->setDeliver(
      [this](NodeId from, const ser::Frame& inner) { dispatchFrame(from, inner); });
}

Server::~Server() { shutdown(); }

void Server::start() {
  if (running_) return;
  running_ = true;
  // Stagger the first tick so replicas do not fire at identical instants.
  const auto offset =
      SimDuration::microseconds(static_cast<std::int64_t>(rng_.uniformInt(
          0, static_cast<std::uint64_t>(std::max<std::int64_t>(1, config_.tickInterval.micros)) - 1)));
  nextTick_ = sim_.scheduleAfter(offset, [this] { tick(); });
}

void Server::shutdown() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(nextTick_);
  net_.removeNode(node_);
}

void Server::crash() {
  crashed_ = true;
  if (telemetry_ != nullptr && !obsKey_.empty()) {
    telemetry_->flight.note(obsKey_, sim_.now(), "crash");
    telemetry_->flight.dump("crash:" + obsKey_, sim_.now());
  }
  shutdown();
}

void Server::setPeers(std::vector<std::pair<ServerId, NodeId>> peers) {
  peers_ = std::move(peers);
  // Never keep ourselves in the peer list.
  std::erase_if(peers_, [this](const auto& p) { return p.first == id_; });
}

void Server::spawnUser(ClientId client, EntityId entity, NodeId clientNode, Vec2 position) {
  EntityRecord record;
  record.id = entity;
  record.kind = EntityKind::kAvatar;
  record.zone = world_.zone();
  record.owner = id_;
  record.client = client;
  record.position = position;
  record.version = 1;
  world_.upsert(record);
  clients_[client] = ClientSession{clientNode, entity, false};
}

void Server::spawnNpc(EntityId entity, Vec2 position) {
  EntityRecord record;
  record.id = entity;
  record.kind = EntityKind::kNpc;
  record.zone = world_.zone();
  record.owner = id_;
  record.position = position;
  record.version = 1;
  world_.upsert(record);
}

bool Server::disconnectUser(ClientId client) {
  auto it = clients_.find(client);
  if (it == clients_.end()) return false;
  const EntityId entity = it->second.entity;
  world_.remove(entity);
  departedEntities_.push_back(entity);
  clients_.erase(it);
  return true;
}

bool Server::requestMigration(ClientId client, ServerId target, NodeId targetNode) {
  auto it = clients_.find(client);
  if (it == clients_.end() || it->second.migrating) return false;
  it->second.migrating = true;
  migrationQueue_.push_back(PendingMigration{client, target, targetNode, ZoneId{}});
  return true;
}

bool Server::requestZoneHandoff(ClientId client, ServerId target, NodeId targetNode,
                                ZoneId targetZone) {
  auto it = clients_.find(client);
  if (it == clients_.end() || it->second.migrating) return false;
  it->second.migrating = true;
  migrationQueue_.push_back(PendingMigration{client, target, targetNode, targetZone});
  return true;
}

void Server::setNeighborZones(std::vector<ZoneNeighbor> neighbors) {
  neighbors_ = std::move(neighbors);
}

void Server::setZoneBounds(Vec2 origin, Vec2 extent) {
  hasZoneBounds_ = true;
  zoneOrigin_ = origin;
  zoneExtent_ = extent;
}

void Server::cancelMigrationsTo(ServerId deadTarget) {
  // Queued hand-overs that never left: just un-flag the session.
  std::erase_if(migrationQueue_, [&](const PendingMigration& p) {
    if (p.target != deadTarget) return false;
    auto it = clients_.find(p.client);
    if (it != clients_.end()) it->second.migrating = false;
    return true;
  });
  // Hand-overs already signed over (avatar owner flipped, MigrationData
  // possibly in flight or lost with the crash): re-own the avatar. The dead
  // target can never ack, so without this the client wedges forever.
  for (auto& [client, session] : clients_) {
    if (!session.migrating) continue;
    auto avatar = world_.find(session.entity);
    if (!avatar || avatar->owner != deadTarget) continue;
    avatar->owner = id_;
    avatar->version += 1;  // outranks the stale signed-over snapshot
    session.migrating = false;
    if (telemetry_ != nullptr && session.traceId != 0) {
      // The session does not record which protocol kind went out; the
      // tracker matches trace id + protocol, so offer both — exactly one
      // (the one actually begun) closes.
      telemetry_->protocols.end(obs::Protocol::kMigration, session.traceId, sim_.now(),
                                obs::ProtocolOutcome::kCrashed);
      telemetry_->protocols.end(obs::Protocol::kZoneHandoff, session.traceId, sim_.now(),
                                obs::ProtocolOutcome::kCrashed);
    }
    session.traceId = 0;
  }
}

bool Server::adoptOrphan(ClientId client, EntityId entity, NodeId clientNode, Vec2 fallbackSpawn) {
  auto shadow = world_.find(entity);
  if (shadow) {
    // Promote the replica-sync shadow: the user resumes with the state the
    // crashed owner last published.
    shadow->owner = id_;
    shadow->version += 1;
    clients_[client] = ClientSession{clientNode, entity, false};
    return true;
  }
  spawnUser(client, entity, clientNode, fallbackSpawn);
  return false;
}

std::size_t Server::adoptNpcsFrom(ServerId deadOwner) {
  std::size_t adopted = 0;
  world_.forEach([&](EntityRef e) {
    if (e.isNpc() && e.owner == deadOwner) {
      e.owner = id_;
      e.version += 1;
      ++adopted;
    }
  });
  return adopted;
}

void Server::setTelemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  tickMetrics_.reset();
  if (telemetry_ == nullptr) return;
  traceTrack_ = telemetry_->tracer.track("server-" + std::to_string(id_.value));

  obs::MetricsRegistry& metrics = telemetry_->metrics;
  const obs::Labels labels{{"server", std::to_string(id_.value)}};
  TickMetrics cached{};
  cached.tickDurationMs = &metrics.histogram("roia_tick_duration_ms", labels);
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    obs::Labels phaseLabels = labels;
    phaseLabels.emplace_back("phase", phaseName(static_cast<Phase>(p)));
    cached.phaseMicros[p] = &metrics.histogram("roia_tick_phase_us", phaseLabels);
  }
  cached.migrationsInitiated = &metrics.counter("roia_server_migrations_initiated_total", labels);
  cached.migrationsReceived = &metrics.counter("roia_server_migrations_received_total", labels);
  cached.inputsApplied = &metrics.counter("roia_server_inputs_applied_total", labels);
  cached.forwardedApplied = &metrics.counter("roia_server_forwarded_applied_total", labels);
  const obs::Labels endpoint{{"endpoint", "server-" + std::to_string(id_.value)}};
  cached.reliableRetransmissions =
      &metrics.counter("roia_reliable_retransmissions_total", endpoint);
  cached.reliableDuplicatesDropped =
      &metrics.counter("roia_reliable_duplicates_dropped_total", endpoint);
  cached.reliableAbandoned = &metrics.counter("roia_reliable_abandoned_total", endpoint);
  tickMetrics_ = cached;

  obsKey_ = "server-" + std::to_string(id_.value);
  // Objectives must be installed before servers attach; a later
  // addObjective with the same name keeps its handle valid.
  obsSlo_ = SloHandles{};
  obsSlo_.tick = telemetry_->slo.findHandle(obs::kSloTickTime);
  obsSlo_.rate = telemetry_->slo.findHandle(obs::kSloUpdateRate);
  obsSlo_.handoff = telemetry_->slo.findHandle(obs::kSloHandoffLatency);
}

void Server::recordTickTelemetry(const TickProbes& probes) {
  TickMetrics& m = *tickMetrics_;
  m.tickDurationMs->add(probes.totalMicros() / 1000.0);
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    if (probes.phaseMicros[p] > 0.0) m.phaseMicros[p]->add(probes.phaseMicros[p]);
  }
  m.migrationsInitiated->increment(probes.migrationsInitiated);
  m.migrationsReceived->increment(probes.migrationsReceived);
  m.inputsApplied->increment(probes.inputsApplied);
  m.forwardedApplied->increment(probes.forwardedApplied);
  const ReliableStats& rs = reliable_->stats();
  m.reliableRetransmissions->setTotal(rs.retransmissions);
  m.reliableDuplicatesDropped->setTotal(rs.duplicatesDropped);
  m.reliableAbandoned->setTotal(rs.abandoned);

  recordHealthTelemetry(probes);

  obs::Tracer& tracer = telemetry_->tracer;
  if (!tracer.enabled()) return;
  const std::size_t sample = std::max<std::size_t>(1, telemetry_->traceTickSampleEvery);
  if (probes.tickSeq % sample != 0) return;
  // The tick occupies [start, start + busy] in simulated time. The phases
  // did not run contiguously (PhaseScope interleaves them), but their
  // per-tick totals laid out back to back inside the tick span show the
  // same cost breakdown Perfetto-style: one child span per phase.
  tracer.beginSpan(traceTrack_, probes.start, "tick", "tick",
                   {{"seq", std::to_string(probes.tickSeq)},
                    {"users", std::to_string(probes.activeUsers)},
                    {"avatars", std::to_string(probes.totalAvatars)},
                    {"npcs", std::to_string(probes.npcs)}});
  SimTime cursor = probes.start;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const double micros = probes.phaseMicros[p];
    if (micros <= 0.0) continue;
    const auto duration = SimDuration::microseconds(static_cast<std::int64_t>(micros));
    tracer.completeSpan(traceTrack_, cursor, duration, phaseName(static_cast<Phase>(p)), "phase");
    cursor = cursor + duration;
  }
  tracer.endSpan(traceTrack_, probes.start + probes.totalDuration());
}

void Server::recordHealthTelemetry(const TickProbes& probes) {
  const SimTime now = sim_.now();
  const double measuredMs = probes.totalMicros() / 1000.0;
  const double predictedMs =
      tickPredictor_ ? tickPredictor_(probes.activeUsers, probes.totalAvatars, probes.npcs) : -1.0;

  obs::FlightFrame frame;
  frame.tick = probes.tickSeq;
  frame.atMicros = probes.start.micros;
  frame.durationMs = measuredMs;
  frame.predictedMs = predictedMs;
  frame.users = probes.activeUsers;
  frame.avatars = probes.totalAvatars;
  frame.npcs = probes.npcs;
  frame.level = overloadLevel_;
  telemetry_->flight.recordTick(obsKey_, frame);

  // Eq.2/Eq.4 model drift: predicted vs. measured tick time residual. The
  // predictor is a pure function, so the extra evaluation here never
  // perturbs the simulated timeline.
  if (tickPredictor_) {
    if (const auto drift = telemetry_->drift.record(obsKey_, predictedMs, measuredMs, now)) {
      char rationale[160];
      std::snprintf(rationale, sizeof(rationale),
                    "window mean |rel err| %.3f left band %.3f after %llu samples",
                    drift->windowMeanAbsRelError, drift->band,
                    static_cast<unsigned long long>(drift->samples));
      auditEvent(obs::events::kModelDrift, "drift-monitor", "drift:rel_error_band", measuredMs,
                 predictedMs, rationale);
      telemetry_->flight.note(obsKey_, now, "model_drift");
    }
  }

  if (obsSlo_.tick) {
    if (const auto breach = telemetry_->slo.record(*obsSlo_.tick, obsKey_, measuredMs, now)) {
      onSloBreach(*breach, predictedMs);
    }
  }
  if (obsSlo_.rate) {
    // Effective update rate: the loop stretches when busy exceeds the tick
    // interval, so the achieved rate is 1000 / max(interval, busy) Hz.
    const double intervalMs = std::max(config_.tickInterval.asMillis(), measuredMs);
    const double rateHz = intervalMs > 0.0 ? 1000.0 / intervalMs : 0.0;
    if (const auto breach = telemetry_->slo.record(*obsSlo_.rate, obsKey_, rateHz, now)) {
      onSloBreach(*breach, predictedMs);
    }
  }
}

void Server::onSloBreach(const obs::SloBreach& breach, double predictedMs) {
  char rationale[200];
  std::snprintf(rationale, sizeof(rationale),
                "objective '%s': value=%.3f short_burn=%.2f long_burn=%.2f compliance=%.4f/%.4f",
                breach.objective.c_str(), breach.value, breach.shortBurn, breach.longBurn,
                breach.shortCompliance, breach.longCompliance);
  auditEvent(obs::events::kSloBreach, "slo-engine", "slo:" + breach.objective, breach.value,
             predictedMs, rationale);
  telemetry_->flight.note(obsKey_, sim_.now(), "slo_breach:" + breach.objective);
  telemetry_->flight.dump("slo_breach:" + breach.objective + ":" + obsKey_, sim_.now());
}

void Server::forwardInteraction(EntityId target, EntityId source,
                                std::vector<std::uint8_t> payload) {
  outForwarded_.push_back(ForwardedInputMsg{target, source, std::move(payload)});
}

void Server::onFrame(NodeId from, const ser::Frame& frame) {
  if (!running_) return;
  // Control-plane traffic arrives in reliable envelopes; the transport acks,
  // deduplicates and hands the inner frame back to dispatchFrame.
  if (reliable_->onFrame(from, frame)) return;
  dispatchFrame(from, frame);
}

void Server::dispatchFrame(NodeId from, const ser::Frame& frame) {
  if (!running_) return;
  const std::size_t bytes = frame.payload.size();
  switch (frame.type) {
    case ser::MessageType::kClientInput:
      inClientInputs_.push_back({decodeClientInput(frame), bytes, from});
      break;
    case ser::MessageType::kForwardedInput:
      inForwarded_.push_back({decodeForwardedInput(frame), bytes, from});
      break;
    case ser::MessageType::kEntityReplication:
      inReplication_.push_back({decodeEntityReplication(frame), bytes, from});
      break;
    case ser::MessageType::kMigrationData:
      inMigrationData_.push_back({decodeMigrationData(frame), bytes, from});
      break;
    case ser::MessageType::kMigrationAck:
      inMigrationAcks_.push_back(decodeMigrationAck(frame));
      break;
    case ser::MessageType::kZoneHandoff:
      inZoneHandoffs_.push_back({decodeZoneHandoff(frame), bytes, from});
      break;
    case ser::MessageType::kZoneHandoffAck:
      inZoneHandoffAcks_.push_back(decodeZoneHandoffAck(frame));
      break;
    case ser::MessageType::kBorderSync:
      inBorderSync_.push_back({decodeBorderSync(frame), bytes, from});
      break;
    case ser::MessageType::kViewReplication:
      inViewReplication_.push_back({decodeViewReplication(frame), bytes, from});
      break;
    case ser::MessageType::kReplicationAck:
      inReplicationAcks_.push_back(decodeReplicationAck(frame));
      break;
    default:
      ROIA_LOG(LogLevel::kWarn, "rtf.server", "unhandled frame type "
                                                   << static_cast<int>(frame.type));
      break;
  }
}

void Server::tick() {
  if (!running_) return;
  inTick_ = true;
  TickProbes probes;
  probes.start = sim_.now();
  probes.tickSeq = tickSeq_;
  meter_.beginTick(probes);
  meter_.chargeTo(Phase::kOther, config_.tickBaseCost);
  app_.onTickBegin(world_, meter_);

  processMigrationArrivals();
  processZoneHandoffArrivals();
  processReplication();
  processBorderSync();
  expireBorderShadows();
  processForwardedInputs();
  processClientInputs();
  updateNpcs();
  flushForwarded();  // interactions emitted by any phase above
  sendStateUpdates();
  sendReplicaSync();
  sendBorderSync();
  detectZoneExits();
  initiateMigrations();
  processMigrationAcks();

  // Workload facts for the estimator: a (active users), n (total avatars).
  // One pass over the world replaces three predicate scans.
  const World::Census census = world_.census(id_);
  probes.activeUsers = census.activeAvatars;
  probes.totalAvatars = census.totalAvatars;
  probes.shadowAvatars = census.shadowAvatars();
  probes.npcs = census.activeNpcs;
  lastTickActiveUsers_ = probes.activeUsers;

  // Fold per-tick counters captured during the phases above.
  probes.migrationsInitiated = tickMigrationsInitiated_;
  probes.migrationsReceived = tickMigrationsReceived_;
  probes.inputsApplied = tickInputsApplied_;
  probes.forwardedApplied = tickForwardedApplied_;
  tickMigrationsInitiated_ = tickMigrationsReceived_ = 0;
  tickInputsApplied_ = tickForwardedApplied_ = 0;

  // Publish monitoring to the management plane on its own cadence. The
  // snapshot rides the reliable channel: RTF-RMS must not starve under
  // loss. Heartbeats go raw — a retransmitted beat proves nothing.
  if (monitoringTarget_.valid() &&
      (tickSeq_ == 0 ||
       sim_.now() - lastMonitoringPublish_ >= config_.monitoringPublishPeriod)) {
    meter_.chargeTo(Phase::kOther, config_.monitoringPublishCost);
    reliable_->send(monitoringTarget_, encodeMonitoring(monitoring()));
    lastMonitoringPublish_ = sim_.now();
  }
  if (monitoringTarget_.valid() &&
      (heartbeatSeq_ == 0 || sim_.now() - lastHeartbeat_ >= config_.heartbeatPeriod)) {
    net_.send(node_, monitoringTarget_, encode(HeartbeatMsg{id_, heartbeatSeq_, sim_.now()}));
    ++heartbeatSeq_;
    lastHeartbeat_ = sim_.now();
  }

  meter_.endTick();
  const SimDuration busy = probes.totalDuration();
  cpuAccount_.recordTick(probes.start, busy, config_.tickInterval);
  monitoringWindow_.record(probes);
  if (config_.overload.enabled) updateOverloadLadder(probes, busy);
  if (tickMetrics_) recordTickTelemetry(probes);
  if (probeListener_) probeListener_(*this, probes);
  ++tickSeq_;
  inTick_ = false;

  // An overloaded server cannot hold its tick rate: the next iteration
  // starts when this one finishes, i.e. the loop stretches.
  const SimDuration delay = std::max(config_.tickInterval, busy);
  nextTick_ = sim_.scheduleAfter(delay, [this] { tick(); });
}

void Server::processMigrationArrivals() {
  PhaseScope scope(meter_, Phase::kMigRcv);
  while (!inMigrationData_.empty()) {
    auto [msg, bytes, from] = std::move(inMigrationData_.front());
    (void)from;  // migration flows are matched by ClientId, not sender
    inMigrationData_.pop_front();
    // Refuse hand-overs from servers that are no longer peers: the source
    // crashed (or was decommissioned) after sending, and adopting now would
    // race with the management plane re-homing the same user elsewhere.
    const bool sourceIsPeer =
        std::any_of(peers_.begin(), peers_.end(),
                    [&](const auto& p) { return p.first == msg.source; });
    if (!sourceIsPeer) continue;
    meter_.charge(config_.migRcvBaseCost +
                  config_.migRcvPerEntityCost * static_cast<double>(world_.size()) +
                  config_.migRcvPerByteCost * static_cast<double>(bytes));
    EntityRecord record;
    record.id = msg.entity.id;
    record.zone = world_.zone();
    msg.entity.applyTo(record);
    record.owner = id_;  // we adopt responsibility
    record.version += 1;
    EntityRef stored = world_.upsert(record);
    app_.importUserState(stored, msg.appState, meter_);
    clients_[msg.client] = ClientSession{msg.clientNode, msg.entity.id, false};
    ++tickMigrationsReceived_;
    ++migrationsReceivedTotal_;
    if (telemetry_ != nullptr) {
      telemetry_->protocols.phase(obs::Protocol::kMigration, msg.traceId, sim_.now(), "transfer");
      telemetry_->tracer.flowFinish(traceTrack_, sim_.now(), obs::migrationFlowId(msg.client),
                                    "migration", "migration");
    }

    // Acknowledge to the source so it can release the user.
    MigrationAckMsg ack{msg.client, msg.entity.id, id_, msg.traceId};
    // The source's node: find it among peers; sources are always peers.
    for (const auto& [serverId, nodeId] : peers_) {
      if (serverId == msg.source) {
        reliable_->send(nodeId, encode(ack));
        break;
      }
    }
  }
}

void Server::processZoneHandoffArrivals() {
  PhaseScope scope(meter_, Phase::kMigRcv);
  while (!inZoneHandoffs_.empty()) {
    auto [msg, bytes, from] = std::move(inZoneHandoffs_.front());
    (void)from;
    inZoneHandoffs_.pop_front();
    // Only the destination zone may adopt; anything else is a routing bug
    // or a frame that outlived a topology change.
    if (msg.toZone != world_.zone()) continue;
    // Refuse hand-overs whose source has crashed: recovery will re-home the
    // user in its original zone, and adopting here too would duplicate it.
    if (handoffAdmission_ && !handoffAdmission_(msg.source)) continue;
    meter_.charge(config_.migRcvBaseCost +
                  config_.migRcvPerEntityCost * static_cast<double>(world_.size()) +
                  config_.migRcvPerByteCost * static_cast<double>(bytes));
    const auto ackTo = [&](const ZoneHandoffAckMsg& ack) {
      if (msg.sourceNode.valid()) reliable_->send(msg.sourceNode, encode(ack));
    };
    auto existing = clients_.find(msg.client);
    if (existing != clients_.end()) {
      const auto current = world_.find(existing->second.entity);
      if (current && msg.entity.version <= current->version) {
        // Stale or duplicate delivery (redelivery after a lost ack): we
        // already hold a newer incarnation; re-acknowledge so the sender
        // retires its copy, but adopt nothing. Echoing the message's own
        // version keeps the re-ack inert at any sender that moved on.
        ackTo(ZoneHandoffAckMsg{msg.client, existing->second.entity, id_, world_.zone(),
                                msg.entity.version, msg.traceId});
        continue;
      }
      // Otherwise this hand-over supersedes ours: the peer adopted the
      // entity we signed over and is already handing it back (fast
      // ping-pong across the border). Adopt it below — the overwrite
      // refreshes record and session, and the stale ack of our own
      // outbound sign-over is ignored by the version guard in
      // processMigrationAcks.
      if (telemetry_ != nullptr && existing->second.migrating &&
          existing->second.traceId != 0) {
        telemetry_->protocols.end(obs::Protocol::kZoneHandoff, existing->second.traceId,
                                  sim_.now(), obs::ProtocolOutcome::kSuperseded);
      }
    }
    EntityRecord record;
    record.id = msg.entity.id;
    msg.entity.applyTo(record);
    record.zone = world_.zone();
    record.owner = id_;
    record.version += 1;
    if (hasZoneBounds_) {
      // RMS-driven rebalancing hands off users whose position is still in
      // the old zone; pull them inside so they are not bounced back.
      const double insetX = zoneExtent_.x * 1e-6;
      const double insetY = zoneExtent_.y * 1e-6;
      record.position.x =
          std::clamp(record.position.x, zoneOrigin_.x, zoneOrigin_.x + zoneExtent_.x - insetX);
      record.position.y =
          std::clamp(record.position.y, zoneOrigin_.y, zoneOrigin_.y + zoneExtent_.y - insetY);
    }
    // Replaces any border shadow of the same entity.
    borderSeen_.erase(record.id);
    EntityRef stored = world_.upsert(record);
    app_.importUserState(stored, msg.appState, meter_);
    clients_[msg.client] = ClientSession{msg.clientNode, msg.entity.id, false};
    ++tickMigrationsReceived_;
    ++handoffsReceivedTotal_;
    if (telemetry_ != nullptr) {
      telemetry_->protocols.phase(obs::Protocol::kZoneHandoff, msg.traceId, sim_.now(),
                                  "transfer");
      telemetry_->tracer.flowFinish(traceTrack_, sim_.now(), obs::migrationFlowId(msg.client),
                                    "zone-handoff", "migration");
    }
    ackTo(ZoneHandoffAckMsg{msg.client, msg.entity.id, id_, world_.zone(), msg.entity.version,
                            msg.traceId});
  }
}

void Server::processReplication() {
  while (!inReplication_.empty()) {
    auto [msg, bytes, from] = std::move(inReplication_.front());
    inReplication_.pop_front();
    meter_.chargeTo(Phase::kFaDser, config_.peerDserBaseCost +
                                        config_.peerDserPerByteCost * static_cast<double>(bytes));
    if (telemetry_ != nullptr) {
      telemetry_->tracer.flowFinish(traceTrack_, sim_.now(),
                                    obs::replicaSyncFlowId(from, msg.serverTick), "replica-sync",
                                    "replication");
    }
    PhaseScope scope(meter_, Phase::kFa);
    for (const EntitySnapshot& snapshot : msg.entities) applyShadowSnapshot(snapshot);
    for (const EntityId removed : msg.removed) retireShadow(removed);
  }

  // Delta-codec replica traffic. Acks first, so a baseline acked earlier in
  // the same tick-interval is usable for the views drained below.
  while (!inReplicationAcks_.empty()) {
    const ReplicationAckMsg ack = inReplicationAcks_.front();
    inReplicationAcks_.pop_front();
    auto it = replicaSenders_.find(ack.acker);
    if (it != replicaSenders_.end()) it->second.onAck(ack.tick);
  }
  while (!inViewReplication_.empty()) {
    auto [msg, bytes, from] = std::move(inViewReplication_.front());
    inViewReplication_.pop_front();
    meter_.chargeTo(Phase::kFaDser, config_.peerDserBaseCost +
                                        config_.peerDserPerByteCost * static_cast<double>(bytes));
    if (telemetry_ != nullptr) {
      telemetry_->tracer.flowFinish(traceTrack_, sim_.now(),
                                    obs::replicaSyncFlowId(from, msg.serverTick), "replica-sync",
                                    "replication");
    }
    auto [receiver, inserted] =
        replicaReceivers_.try_emplace(msg.source, replicaCodec_);
    (void)inserted;
    const auto decoded = receiver->second.decodeView(msg.view);
    if (!decoded) continue;  // stale tick or lost baseline; sender keyframes
    PhaseScope scope(meter_, Phase::kFa);
    for (const auto& [entityId, snapshot] : *decoded->view) applyShadowSnapshot(snapshot);
    for (const EntityId removed : decoded->removed) retireShadow(removed);
    // Best-effort baseline ack: a lost ack only delays delta compression
    // (the sender keyframes once its window expires).
    net_.send(node_, from, encode(ReplicationAckMsg{id_, decoded->serverTick}));
  }
}

void Server::applyShadowSnapshot(const EntitySnapshot& snapshot) {
  if (snapshot.owner == id_) return;  // stale echo of a migrated entity
  auto existing = world_.find(snapshot.id);
  if (existing) {
    if (snapshot.version <= existing->version) return;  // out of date
    snapshot.applyTo(*existing);
    if (existing->zone != world_.zone()) {
      // A border shadow just handed off into this zone: a replica peer
      // owns it now, so it becomes a regular same-zone shadow.
      existing->zone = world_.zone();
      borderSeen_.erase(existing->id);
    }
    meter_.charge(config_.shadowApplyCost);
    app_.onShadowUpdated(world_, *existing, meter_);
  } else {
    EntityRecord record;
    record.id = snapshot.id;
    record.zone = world_.zone();
    snapshot.applyTo(record);
    EntityRef stored = world_.upsert(record);
    meter_.charge(config_.shadowApplyCost);
    app_.onShadowUpdated(world_, stored, meter_);
  }
}

void Server::retireShadow(EntityId id) {
  const auto record = world_.find(id);
  if (record && record->owner != id_) world_.remove(id);
}

void Server::processBorderSync() {
  while (!inBorderSync_.empty()) {
    auto [msg, bytes, from] = std::move(inBorderSync_.front());
    (void)from;
    inBorderSync_.pop_front();
    if (msg.zone == world_.zone()) continue;  // misrouted: our own zone
    meter_.chargeTo(Phase::kFaDser, config_.peerDserBaseCost +
                                        config_.peerDserPerByteCost * static_cast<double>(bytes));
    PhaseScope scope(meter_, Phase::kFa);
    for (const EntitySnapshot& snapshot : msg.entities) {
      if (snapshot.owner == id_) continue;
      auto existing = world_.find(snapshot.id);
      if (existing) {
        if (existing->zone == world_.zone()) continue;  // ours or same-zone shadow
        if (snapshot.version > existing->version) {
          snapshot.applyTo(*existing);
          existing->zone = msg.zone;
          meter_.charge(config_.shadowApplyCost);
          app_.onShadowUpdated(world_, *existing, meter_);
        }
        // Any fresh word from the home zone refreshes the TTL, even a
        // duplicate or reordered frame carrying an older version.
        borderSeen_[snapshot.id] = sim_.now();
      } else {
        EntityRecord record;
        record.id = snapshot.id;
        snapshot.applyTo(record);
        record.zone = msg.zone;  // homed in the neighbor zone
        EntityRef stored = world_.upsert(record);
        meter_.charge(config_.shadowApplyCost);
        app_.onShadowUpdated(world_, stored, meter_);
        borderSeen_[snapshot.id] = sim_.now();
      }
    }
  }
}

void Server::expireBorderShadows() {
  if (borderSeen_.empty()) return;
  for (auto it = borderSeen_.begin(); it != borderSeen_.end();) {
    const auto record = world_.find(it->first);
    if (!record || record->zone == world_.zone() || record->owner == id_) {
      it = borderSeen_.erase(it);  // adopted, handed off here, or gone
      continue;
    }
    if (sim_.now() - it->second > config_.borderShadowTtl) {
      world_.remove(it->first);
      it = borderSeen_.erase(it);
      continue;
    }
    ++it;
  }
}

void Server::processForwardedInputs() {
  while (!inForwarded_.empty()) {
    auto [msg, bytes, from] = std::move(inForwarded_.front());
    (void)from;
    inForwarded_.pop_front();
    meter_.chargeTo(Phase::kFaDser, config_.peerDserBaseCost +
                                        config_.peerDserPerByteCost * static_cast<double>(bytes));
    auto target = world_.find(msg.target);
    if (!target || target->owner != id_) continue;  // moved on
    PhaseScope scope(meter_, Phase::kFa);
    app_.applyForwardedInteraction(world_, *target, msg.source, msg.interaction, meter_, *this);
    ++tickForwardedApplied_;
  }
}

void Server::flushForwarded() {
  for (ForwardedInputMsg& fwd : outForwarded_) {
    const auto target = world_.find(fwd.target);
    if (!target) continue;
    for (const auto& [serverId, nodeId] : peers_) {
      if (serverId == target->owner) {
        net_.send(node_, nodeId, encode(fwd));
        break;
      }
    }
  }
  outForwarded_.clear();
}

void Server::processClientInputs() {
  while (!inClientInputs_.empty()) {
    auto [msg, bytes, from] = std::move(inClientInputs_.front());
    (void)from;
    inClientInputs_.pop_front();
    meter_.chargeTo(Phase::kUaDser, config_.inputDserBaseCost +
                                        config_.inputDserPerByteCost * static_cast<double>(bytes));
    auto it = clients_.find(msg.client);
    if (it == clients_.end() || it->second.migrating) continue;  // handover
    // Piggybacked delta-codec ack: viewAck is the acked view tick + 1.
    if (msg.viewAck != 0 && it->second.sender != nullptr) {
      it->second.sender->onAck(msg.viewAck - 1);
    }
    auto avatar = world_.find(it->second.entity);
    if (!avatar || avatar->owner != id_) continue;
    PhaseScope scope(meter_, Phase::kUa);
    app_.applyUserInput(world_, *avatar, msg.commands, meter_, *this, rng_);
    avatar->version += 1;
    ++tickInputsApplied_;
  }
}

void Server::updateNpcs() {
  PhaseScope scope(meter_, Phase::kNpc);
  // Deep ladder rungs run NPC decisions at half frequency; the id offset
  // staggers which half thinks each tick so no NPC freezes entirely.
  const bool throttle = config_.overload.enabled && overloadLevel_ >= kNpcThrottleLevel;
  world_.forEach([this, throttle](EntityRef e) {
    if (!e.isNpc() || e.owner != id_) return;
    if (throttle && (tickSeq_ + e.id.value) % 2 != 0) return;
    app_.updateNpc(world_, e, meter_, rng_);
    e.version += 1;
  });
}

void Server::sendStateUpdates() {
  // Deepest ladder rung: the shedObservers_ highest client ids get no AOI
  // scan or state update this tick (their inputs still apply and their
  // avatars stay owned here — only observation is shed).
  const std::size_t serveLimit =
      shedObservers_ < clients_.size() ? clients_.size() - shedObservers_ : 0;
  // Level >= kSuHalvingLevel halves the update rate of non-critical
  // entities: on odd ticks the update keeps only avatars this server
  // simulates, dropping NPCs and shadows.
  const bool halveNonCritical =
      config_.overload.enabled && overloadLevel_ >= kSuHalvingLevel && tickSeq_ % 2 == 1;
  std::size_t served = 0;
  for (auto& [clientId, session] : clients_) {
    if (session.migrating) continue;
    if (served >= serveLimit) continue;  // shed observer (highest ids)
    const auto viewer = std::as_const(world_).find(session.entity);
    if (!viewer || viewer->owner != id_) continue;
    ++served;

    {
      PhaseScope scope(meter_, Phase::kAoi);
      app_.computeAreaOfInterest(world_, *viewer, meter_, aoiScratch_);
    }
    PhaseScope scope(meter_, Phase::kSu);
    if (halveNonCritical) {
      // Slots from the AOI query stay valid here: no structural world
      // mutation happens between the query and the update encoding.
      std::erase_if(aoiScratch_, [&](std::uint32_t s) {
        return world_.kinds()[s] == EntityKind::kNpc || world_.owners()[s] != id_;
      });
    }
    if (config_.replication.codec == ReplicationCodec::kDelta) {
      // Delta codec: gather the visible set (plus the viewer itself) into a
      // view and diff it against this link's acked baseline.
      SnapshotView view;
      view.emplace(viewer->id, EntitySnapshot::of(*viewer));
      for (const std::uint32_t slot : aoiScratch_) {
        const ConstEntityRef e = std::as_const(world_).refAt(slot);
        view.emplace(e.id, EntitySnapshot::of(e));
      }
      meter_.charge(config_.replication.deltaGatherPerEntityCost *
                    static_cast<double>(view.size()));
      if (session.sender == nullptr) {
        session.sender = std::make_unique<BaselineSender>(codec_, kClientViewFields);
      }
      ser::ByteWriter writer(32 + view.size() * 8);
      session.sender->encodeView(tickSeq_, std::move(view), {}, writer);
      meter_.charge(config_.updateSerBaseCost +
                    config_.updateSerPerByteCost * static_cast<double>(writer.size()));
      ser::Frame frame;
      frame.type = ser::MessageType::kViewUpdate;
      frame.payload = std::move(writer).take();
      net_.send(node_, session.clientNode, frame);
      continue;
    }
    app_.buildStateUpdate(world_, *viewer, aoiScratch_, meter_, updateScratch_);
    meter_.charge(config_.updateSerBaseCost +
                  config_.updateSerPerByteCost * static_cast<double>(updateScratch_.size()));
    net_.send(node_, session.clientNode, SnapshotCodec::encodeStateUpdate(tickSeq_, updateScratch_));
  }
}

void Server::sendReplicaSync() {
  if (config_.replication.codec == ReplicationCodec::kDelta) {
    sendReplicaSyncDelta();
    return;
  }
  if (peers_.empty()) {
    departedEntities_.clear();
    return;
  }
  EntityReplicationMsg msg;
  msg.serverTick = tickSeq_;
  world_.forEach([this, &msg](ConstEntityRef e) {
    if (e.owner == id_) msg.entities.push_back(EntitySnapshot::of(e));
  });
  msg.removed = std::move(departedEntities_);
  departedEntities_.clear();
  if (msg.entities.empty() && msg.removed.empty()) return;

  const ser::Frame frame = encode(msg);
  meter_.chargeTo(Phase::kSu,
                  config_.replSerBaseCost +
                      config_.replSerPerByteCost * static_cast<double>(frame.payload.size()));
  if (telemetry_ != nullptr) {
    // One fan-out flow per sync round; each peer's receive ends it.
    telemetry_->tracer.flowStart(traceTrack_, sim_.now(),
                                 obs::replicaSyncFlowId(node_, tickSeq_), "replica-sync",
                                 "replication");
  }
  for (const auto& [serverId, nodeId] : peers_) {
    (void)serverId;
    reliable_->send(nodeId, frame);
  }
}

void Server::sendReplicaSyncDelta() {
  if (peers_.empty()) {
    departedEntities_.clear();
    replicaSenders_.clear();
    return;
  }
  // Owned entities, gathered once; every peer link diffs the same view
  // against its own acked baseline.
  SnapshotView view;
  world_.forEach([this, &view](ConstEntityRef e) {
    if (e.owner == id_) view.emplace(e.id, EntitySnapshot::of(e));
  });
  std::vector<EntityId> removed = std::move(departedEntities_);
  departedEntities_.clear();
  if (view.empty() && removed.empty()) return;

  if (telemetry_ != nullptr) {
    // One fan-out flow per sync round; each peer's receive ends it.
    telemetry_->tracer.flowStart(traceTrack_, sim_.now(),
                                 obs::replicaSyncFlowId(node_, tickSeq_), "replica-sync",
                                 "replication");
  }
  for (const auto& [serverId, nodeId] : peers_) {
    auto [sender, inserted] = replicaSenders_.try_emplace(serverId, replicaCodec_, kAllFields);
    (void)inserted;
    ser::ByteWriter writer(32 + view.size() * 16);
    sender->second.encodeView(tickSeq_, view, removed, writer);
    ViewReplicationMsg msg{tickSeq_, id_, std::move(writer).take()};
    const ser::Frame frame = encode(msg);
    // Encoded per peer (each link has its own baseline), so serialization
    // cost is charged per frame, unlike the shared full-mode encode.
    meter_.chargeTo(Phase::kSu,
                    config_.replSerBaseCost +
                        config_.replSerPerByteCost * static_cast<double>(frame.payload.size()));
    reliable_->send(nodeId, frame);
  }
}

void Server::sendBorderSync() {
  if (neighbors_.empty() || config_.borderWidth <= 0.0) return;
  for (const ZoneNeighbor& neighbor : neighbors_) {
    if (neighbor.servers.empty()) continue;
    // Own-zone active entities inside the neighbor's rectangle inflated by
    // the border width: what avatars just across the border could see.
    const double loX = neighbor.origin.x - config_.borderWidth;
    const double hiX = neighbor.origin.x + neighbor.extent.x + config_.borderWidth;
    const double loY = neighbor.origin.y - config_.borderWidth;
    const double hiY = neighbor.origin.y + neighbor.extent.y + config_.borderWidth;
    borderScratch_.clear();
    world_.forEach([&](ConstEntityRef e) {
      if (e.owner != id_ || e.zone != world_.zone()) return;
      if (e.position.x < loX || e.position.x >= hiX || e.position.y < loY ||
          e.position.y >= hiY) {
        return;
      }
      borderScratch_.push_back(EntitySnapshot::of(e));
    });
    if (borderScratch_.empty()) continue;
    BorderSyncMsg msg;
    msg.serverTick = tickSeq_;
    msg.zone = world_.zone();
    msg.source = id_;
    msg.entities = borderScratch_;
    const ser::Frame frame = encode(msg);
    meter_.chargeTo(Phase::kSu,
                    config_.borderSerBaseCost +
                        config_.borderSerPerByteCost * static_cast<double>(frame.payload.size()));
    // Best-effort raw frames: versions + TTL absorb loss and duplication,
    // and reliable state per (server, neighbor-server) pair would dwarf the
    // payload at scale.
    for (const auto& [serverId, nodeId] : neighbor.servers) {
      (void)serverId;
      net_.send(node_, nodeId, frame);
    }
  }
}

void Server::detectZoneExits() {
  if (!handoffResolver_) return;
  for (auto& [clientId, session] : clients_) {
    if (session.migrating) continue;
    const auto avatar = world_.find(session.entity);
    if (!avatar || avatar->owner != id_ || avatar->zone != world_.zone()) continue;
    const auto target = handoffResolver_(avatar->position);
    if (!target.has_value() || target->zone == world_.zone()) continue;
    session.migrating = true;
    migrationQueue_.push_back(
        PendingMigration{clientId, target->server, target->node, target->zone});
  }
}

void Server::initiateMigrations() {
  PhaseScope scope(meter_, Phase::kMigIni);
  while (!migrationQueue_.empty()) {
    const PendingMigration pending = migrationQueue_.front();
    migrationQueue_.pop_front();
    auto it = clients_.find(pending.client);
    if (it == clients_.end()) continue;  // user left meanwhile
    auto avatar = world_.find(it->second.entity);
    if (!avatar || avatar->owner != id_) {
      it->second.migrating = false;
      continue;
    }

    avatar->version += 1;
    avatar->owner = pending.target;  // hand over responsibility

    // The trace id goes into the message bytes, so it is allocated
    // unconditionally — the wire image must not depend on telemetry.
    const std::uint64_t traceId = obs::protocolTraceId(id_.value, ++protocolSeq_);
    it->second.traceId = traceId;

    ser::Frame frame;
    if (pending.targetZone.valid()) {
      ZoneHandoffMsg msg;
      msg.client = pending.client;
      msg.clientNode = it->second.clientNode;
      msg.fromZone = world_.zone();
      msg.toZone = pending.targetZone;
      msg.entity = EntitySnapshot::of(*avatar);
      msg.appState = app_.exportUserState(*avatar, meter_);
      msg.source = id_;
      msg.sourceNode = node_;
      msg.traceId = traceId;
      frame = encode(msg);
      ++handoffsInitiatedTotal_;
    } else {
      MigrationDataMsg msg;
      msg.client = pending.client;
      msg.clientNode = it->second.clientNode;
      msg.entity = EntitySnapshot::of(*avatar);
      msg.appState = app_.exportUserState(*avatar, meter_);
      msg.source = id_;
      msg.traceId = traceId;
      frame = encode(msg);
      ++migrationsInitiatedTotal_;
    }
    meter_.charge(config_.migIniBaseCost +
                  config_.migIniPerEntityCost * static_cast<double>(world_.size()) +
                  config_.migIniPerByteCost * static_cast<double>(frame.payload.size()));
    reliable_->send(pending.targetNode, frame);
    ++tickMigrationsInitiated_;
    if (telemetry_ != nullptr) {
      telemetry_->protocols.begin(
          pending.targetZone.valid() ? obs::Protocol::kZoneHandoff : obs::Protocol::kMigration,
          traceId, sim_.now());
      telemetry_->tracer.flowStart(traceTrack_, sim_.now(), obs::migrationFlowId(pending.client),
                                   pending.targetZone.valid() ? "zone-handoff" : "migration",
                                   "migration");
    }
  }
}

void Server::processMigrationAcks() {
  PhaseScope scope(meter_, Phase::kOther);
  while (!inMigrationAcks_.empty()) {
    const MigrationAckMsg ack = inMigrationAcks_.front();
    inMigrationAcks_.pop_front();
    auto it = clients_.find(ack.client);
    if (it == clients_.end()) continue;
    // Only the ack matching the outstanding sign-over may release the
    // session: it must be mid-migration with the avatar signed over to the
    // acking server. Anything else is a stale ack — e.g. the target adopted
    // and acked, then crashed before delivery, and cancelMigrationsTo()
    // already re-owned the avatar here; erasing the live session on that
    // late ack would wedge the client (owned avatar, no session, inputs
    // dropped forever).
    const auto signedOver = world_.find(it->second.entity);
    if (!it->second.migrating || !signedOver || signedOver->owner != ack.newOwner) {
      continue;
    }
    if (telemetry_ != nullptr) {
      telemetry_->protocols.phase(obs::Protocol::kMigration, ack.traceId, sim_.now(), "ack");
      telemetry_->protocols.end(obs::Protocol::kMigration, ack.traceId, sim_.now(),
                                obs::ProtocolOutcome::kCompleted);
    }
    clients_.erase(it);
    if (onMigrationComplete_) onMigrationComplete_(ack.client, id_, ack.newOwner);
  }
  while (!inZoneHandoffAcks_.empty()) {
    const ZoneHandoffAckMsg ack = inZoneHandoffAcks_.front();
    inZoneHandoffAcks_.pop_front();
    auto it = clients_.find(ack.client);
    if (it == clients_.end()) continue;
    // Only the ack matching the outstanding sign-over may release the
    // entity: the session must be mid-handoff, signed over to the acking
    // server, at the acked version. Anything else is the stale ack of a
    // superseded hand-over (the entity ping-ponged back and we adopted a
    // newer incarnation meanwhile) and must not retire it.
    const auto signedOver = world_.find(it->second.entity);
    if (!it->second.migrating || !signedOver || signedOver->owner != ack.newOwner ||
        signedOver->version != ack.version) {
      continue;
    }
    if (telemetry_ != nullptr) {
      telemetry_->protocols.phase(obs::Protocol::kZoneHandoff, ack.traceId, sim_.now(), "ack");
      const auto e2eMs = telemetry_->protocols.end(obs::Protocol::kZoneHandoff, ack.traceId,
                                                   sim_.now(), obs::ProtocolOutcome::kCompleted);
      if (e2eMs && obsSlo_.handoff) {
        if (const auto breach =
                telemetry_->slo.record(*obsSlo_.handoff, obsKey_, *e2eMs, sim_.now())) {
          onSloBreach(*breach, -1.0);
        }
      }
    }
    // The entity left this zone for good: retire it locally and tell the
    // same-zone peers to drop their shadows (the target's replica sync
    // repopulates it in the destination zone).
    world_.remove(it->second.entity);
    departedEntities_.push_back(it->second.entity);
    clients_.erase(it);
    if (onZoneHandoffComplete_) onZoneHandoffComplete_(ack.client, id_, ack.newOwner, ack.newZone);
  }
}

std::vector<ClientId> Server::clientIds(bool migratableOnly) const {
  std::vector<ClientId> ids;
  ids.reserve(clients_.size());
  for (const auto& [id, session] : clients_) {
    if (migratableOnly && session.migrating) continue;
    ids.push_back(id);
  }
  return ids;
}

MonitoringSnapshot Server::monitoring() const {
  MonitoringSnapshot snapshot;
  snapshot.server = id_;
  snapshot.zone = world_.zone();
  snapshot.takenAt = sim_.now();
  const World::Census census = world_.census(id_);
  snapshot.activeUsers = census.activeAvatars;
  snapshot.totalAvatars = census.totalAvatars;
  snapshot.npcs = census.activeNpcs;
  snapshot.cpuLoad = cpuAccount_.load();
  snapshot.ticksObserved = tickSeq_;
  snapshot.migrationsInitiated = migrationsInitiatedTotal_;
  snapshot.migrationsReceived = migrationsReceivedTotal_;
  snapshot.borderShadows = census.borderShadows;
  snapshot.handoffsInitiated = handoffsInitiatedTotal_;
  snapshot.handoffsReceived = handoffsReceivedTotal_;
  snapshot.degradationLevel = overloadLevel_;
  snapshot.shedObservers = shedObservers_;
  monitoringWindow_.fill(snapshot);
  return snapshot;
}

void Server::updateOverloadLadder(const TickProbes& probes, SimDuration busy) {
  const OverloadConfig& cfg = config_.overload;
  const double predictedMs =
      tickPredictor_ ? tickPredictor_(probes.activeUsers, probes.totalAvatars, probes.npcs) : 0.0;
  const double costMs = std::max(busy.asMillis(), predictedMs);
  lastTickCostMs_ = costMs;
  const double budget = tickBudgetMs();
  if (costMs > budget) {
    ++overBudgetStreak_;
    underBudgetStreak_ = 0;
    if (overBudgetStreak_ >= cfg.stepDownAfterTicks && overloadLevel_ + 1 < kOverloadLevels) {
      applyOverloadLevel(overloadLevel_ + 1, costMs, predictedMs);
    }
  } else if (costMs < cfg.headroomFraction * budget) {
    ++underBudgetStreak_;
    overBudgetStreak_ = 0;
    if (underBudgetStreak_ >= cfg.stepUpAfterTicks && overloadLevel_ > 0) {
      applyOverloadLevel(overloadLevel_ - 1, costMs, predictedMs);
    }
  } else {
    // Hysteresis band between headroomFraction*budget and budget: hold the
    // current rung, reset both streaks so the next move needs fresh
    // evidence.
    overBudgetStreak_ = 0;
    underBudgetStreak_ = 0;
  }
  updateShedCount();
}

void Server::applyOverloadLevel(std::size_t newLevel, double costMs, double predictedMs) {
  const bool down = newLevel > overloadLevel_;
  overloadLevel_ = newLevel;
  overBudgetStreak_ = 0;
  underBudgetStreak_ = 0;
  if (down) {
    ++overloadStepDownsTotal_;
  } else {
    ++overloadStepUpsTotal_;
  }
  world_.setInterestScale(kOverloadAoiScale[overloadLevel_]);
  char rationale[160];
  std::snprintf(rationale, sizeof(rationale),
                "%s to level %zu: cost=%.3fms predicted=%.3fms budget=%.3fms aoi_scale=%.2f",
                down ? "step down" : "step up", newLevel, costMs, predictedMs, tickBudgetMs(),
                kOverloadAoiScale[overloadLevel_]);
  auditOverload(obs::events::kDegradeFidelity, down ? "eq2:tick_budget" : "eq2:tick_headroom",
                costMs, predictedMs, rationale);
}

void Server::updateShedCount() {
  std::size_t target = 0;
  if (config_.overload.enabled && overloadLevel_ >= kShedLevel && !clients_.empty()) {
    target = static_cast<std::size_t>(
        std::ceil(static_cast<double>(clients_.size()) * config_.overload.shedFraction));
    target = std::min(target, clients_.size() - 1);  // keep at least one served
  }
  if (target == shedObservers_) return;
  const bool shedding = target > shedObservers_;
  if (shedding) {
    ++shedEventsTotal_;
  } else {
    ++readmitEventsTotal_;
  }
  char rationale[128];
  std::snprintf(rationale, sizeof(rationale),
                "%s: shed observers %zu -> %zu of %zu clients (level %zu)",
                shedding ? "shed" : "readmit", shedObservers_, target, clients_.size(),
                overloadLevel_);
  shedObservers_ = target;
  auditOverload(shedding ? obs::events::kShedObservers : obs::events::kReadmitObservers,
                "ladder:shed_level", lastTickCostMs_, -1.0, rationale);
}

void Server::auditOverload(const char* action, const char* threshold, double costMs,
                           double predictedMs, std::string rationale) const {
  auditEvent(action, "overload-ladder", threshold, costMs, predictedMs, std::move(rationale));
}

void Server::auditEvent(const char* action, const char* strategy, std::string threshold,
                        double costMs, double predictedMs, std::string rationale) const {
  if (telemetry_ == nullptr || !telemetry_->audit.enabled()) return;
  obs::AuditRecord record;
  record.at = sim_.now();
  record.zone = world_.zone();
  record.strategy = strategy;
  const World::Census census = world_.census(id_);
  record.users = census.activeAvatars;
  record.npcs = census.activeNpcs;
  record.replicas = peers_.size() + 1;
  record.measuredMaxTickMs = costMs;
  record.predictedTickMs = predictedMs;
  record.threshold = std::move(threshold);
  record.action = action;
  record.rationale = std::move(rationale);
  MonitoringSnapshot window;
  monitoringWindow_.fill(window);
  record.measuredAvgTickMs = window.tickAvgMs;
  record.measuredP95TickMs = window.tickP95Ms;
  telemetry_->audit.record(std::move(record));
}

}  // namespace roia::rtf
