#include "rtf/reliable.hpp"

#include <algorithm>
#include <utility>

#include "serialize/byte_buffer.hpp"

namespace roia::rtf {

ser::Frame encodeReliableEnvelope(std::uint64_t seq, const ser::Frame& inner) {
  ser::ByteWriter writer(inner.payload.size() + 12);
  writer.writeVarU64(seq);
  writer.writeU16(static_cast<std::uint16_t>(inner.type));
  for (const std::uint8_t b : inner.payload) writer.writeU8(b);
  ser::Frame frame;
  frame.type = ser::MessageType::kReliableData;
  frame.payload = std::move(writer).take();
  return frame;
}

std::pair<std::uint64_t, ser::Frame> decodeReliableEnvelope(const ser::Frame& frame) {
  if (frame.type != ser::MessageType::kReliableData) {
    throw ser::DecodeError("unexpected frame type");
  }
  ser::ByteReader reader(frame.payload);
  const std::uint64_t seq = reader.readVarU64();
  ser::Frame inner;
  inner.type = static_cast<ser::MessageType>(reader.readU16());
  inner.payload.assign(frame.payload.begin() + static_cast<std::ptrdiff_t>(reader.offset()),
                       frame.payload.end());
  return {seq, std::move(inner)};
}

ser::Frame encodeReliableAck(std::uint64_t seq) {
  ser::ByteWriter writer(10);
  writer.writeVarU64(seq);
  ser::Frame frame;
  frame.type = ser::MessageType::kReliableAck;
  frame.payload = std::move(writer).take();
  return frame;
}

std::uint64_t decodeReliableAck(const ser::Frame& frame) {
  if (frame.type != ser::MessageType::kReliableAck) {
    throw ser::DecodeError("unexpected frame type");
  }
  ser::ByteReader reader(frame.payload);
  return reader.readVarU64();
}

ReliableTransport::ReliableTransport(sim::Simulation& simulation, net::Network& network,
                                     NodeId self, ReliableConfig config)
    : sim_(simulation),
      net_(network),
      self_(self),
      config_(config),
      jitterRng_(config.jitterSeed ^ (self.value * 0x9e3779b97f4a7c15ULL)),
      alive_(std::make_shared<bool>(true)) {}

ReliableTransport::~ReliableTransport() { *alive_ = false; }

void ReliableTransport::send(NodeId to, const ser::Frame& inner) {
  PeerState& peer = peers_[to.value];
  const std::uint64_t seq = peer.nextSeq++;
  Pending pending;
  pending.envelope = encodeReliableEnvelope(seq, inner);
  pending.timeout = config_.retransmitTimeout;
  net_.send(self_, to, pending.envelope);
  ++stats_.messagesSent;
  const SimDuration after = jittered(pending.timeout);
  peer.pending.emplace(seq, std::move(pending));
  scheduleRetransmit(to, seq, after);
}

SimDuration ReliableTransport::jittered(SimDuration base) {
  if (config_.jitterFraction <= 0.0) return base;  // zero RNG draws when off
  const double factor = 1.0 + jitterRng_.uniform(0.0, config_.jitterFraction);
  return SimDuration::microseconds(
      static_cast<std::int64_t>(static_cast<double>(base.micros) * factor));
}

void ReliableTransport::scheduleRetransmit(NodeId to, std::uint64_t seq, SimDuration after) {
  sim_.scheduleAfter(after, [this, to, seq, alive = alive_] {
    if (!*alive) return;
    auto peerIt = peers_.find(to.value);
    if (peerIt == peers_.end()) return;
    auto pendingIt = peerIt->second.pending.find(seq);
    if (pendingIt == peerIt->second.pending.end()) return;  // acked meanwhile
    Pending& pending = pendingIt->second;
    if (pending.attempts >= config_.maxAttempts) {
      peerIt->second.pending.erase(pendingIt);
      ++stats_.abandoned;
      return;
    }
    ++pending.attempts;
    ++stats_.retransmissions;
    net_.send(self_, to, pending.envelope);
    pending.timeout = std::min(
        SimDuration::microseconds(static_cast<std::int64_t>(
            static_cast<double>(pending.timeout.micros) * config_.backoffFactor)),
        config_.maxRetransmitTimeout);
    scheduleRetransmit(to, seq, jittered(pending.timeout));
  });
}

bool ReliableTransport::onFrame(NodeId from, const ser::Frame& frame) {
  if (frame.type == ser::MessageType::kReliableAck) {
    const std::uint64_t seq = decodeReliableAck(frame);
    ++stats_.acksReceived;
    auto peerIt = peers_.find(from.value);
    if (peerIt != peers_.end()) peerIt->second.pending.erase(seq);
    return true;
  }
  if (frame.type != ser::MessageType::kReliableData) return false;

  auto [seq, inner] = decodeReliableEnvelope(frame);
  // Always ack, even duplicates: the previous ack may have been lost and
  // the sender keeps retransmitting until one gets through.
  net_.send(self_, from, encodeReliableAck(seq));
  ++stats_.acksSent;

  PeerState& peer = peers_[from.value];
  if (alreadySeen(peer, seq)) {
    ++stats_.duplicatesDropped;
    return true;
  }
  markSeen(peer, seq);
  ++stats_.messagesDelivered;
  if (deliver_) deliver_(from, inner);
  return true;
}

void ReliableTransport::resetPeer(NodeId peer) { peers_.erase(peer.value); }

std::size_t ReliableTransport::unackedCount() const {
  std::size_t count = 0;
  for (const auto& [node, peer] : peers_) count += peer.pending.size();
  return count;
}

bool ReliableTransport::alreadySeen(const PeerState& peer, std::uint64_t seq) {
  return seq <= peer.contiguousSeen || peer.seenAbove.contains(seq);
}

void ReliableTransport::markSeen(PeerState& peer, std::uint64_t seq) {
  if (seq == peer.contiguousSeen + 1) {
    ++peer.contiguousSeen;
    auto it = peer.seenAbove.begin();
    while (it != peer.seenAbove.end() && *it == peer.contiguousSeen + 1) {
      ++peer.contiguousSeen;
      it = peer.seenAbove.erase(it);
    }
  } else {
    peer.seenAbove.insert(seq);
  }
}

}  // namespace roia::rtf
