// Wire payload codecs for the RTF protocol.
//
// Application-level content (game commands, per-entity deltas) is carried as
// opaque byte blobs inside these envelopes, mirroring how RTF performs
// generic (de)serialization around application-defined data types.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "rtf/entity.hpp"
#include "rtf/snapshot_codec.hpp"
#include "serialize/message.hpp"

namespace roia::rtf {

/// Client -> server: one batch of user commands for a tick.
struct ClientInputMsg {
  ClientId client;
  std::uint64_t clientTick{0};
  std::vector<std::uint8_t> commands;  // application-defined encoding
  /// Delta-codec baseline ack: latest applied view tick + 1 (0 = none yet).
  /// Written only when non-zero, so full-codec input frames are unchanged.
  std::uint64_t viewAck{0};
};

/// Server -> server: an interaction of a local user with a shadow entity,
/// forwarded to the entity's responsible server ("forwarded input").
struct ForwardedInputMsg {
  EntityId target;
  EntityId source;
  std::vector<std::uint8_t> interaction;  // application-defined encoding
};

/// Server -> server: state of active entities for shadow maintenance, plus
/// ids that left this server's responsibility entirely (disconnects/deaths)
/// so peers can retire the shadows.
struct EntityReplicationMsg {
  std::uint64_t serverTick{0};
  std::vector<EntitySnapshot> entities;
  std::vector<EntityId> removed;
};

/// Server -> server: begin migrating one user; carries the full entity and
/// application state so the target can adopt the user in one step.
struct MigrationDataMsg {
  ClientId client;
  /// Network node of the client, so the target can serve it immediately.
  NodeId clientNode;
  EntitySnapshot entity;
  std::vector<std::uint8_t> appState;  // application-defined encoding
  ServerId source;
  /// Causal protocol trace id, allocated by the source and echoed in the
  /// ack. Always carried (the wire image never depends on telemetry).
  std::uint64_t traceId{0};
};

/// Server -> server: user adopted; source may drop responsibility.
struct MigrationAckMsg {
  ClientId client;
  EntityId entity;
  ServerId newOwner;
  /// Echo of MigrationDataMsg::traceId.
  std::uint64_t traceId{0};
};

/// Server -> server: cross-zone user hand-over. Unlike MigrationDataMsg the
/// target is in a *different* zone (so source and target are not replica
/// peers); the entity leaves the source zone entirely and the ack travels
/// back to `sourceNode` directly.
struct ZoneHandoffMsg {
  ClientId client;
  NodeId clientNode;
  ZoneId fromZone;
  ZoneId toZone;
  EntitySnapshot entity;
  std::vector<std::uint8_t> appState;  // application-defined encoding
  ServerId source;
  NodeId sourceNode;
  /// Causal protocol trace id, allocated by the source and echoed in the
  /// ack. Always carried (the wire image never depends on telemetry).
  std::uint64_t traceId{0};
};

/// Server -> server: cross-zone adoption confirmed; the source retires the
/// entity from its zone (and tells its replica peers to drop their shadows).
struct ZoneHandoffAckMsg {
  ClientId client;
  EntityId entity;
  ServerId newOwner;
  ZoneId newZone;
  /// Echo of the signed-over entity version. The source retires its copy
  /// only when this matches its record, so an ack of a superseded
  /// hand-over (fast ping-pong between two zones) can never release an
  /// entity nobody adopted.
  std::uint64_t version{0};
  /// Echo of ZoneHandoffMsg::traceId.
  std::uint64_t traceId{0};
};

/// Server -> server: state of own-zone entities inside a neighboring zone's
/// border band, so servers of the neighbor can maintain cross-zone AOI
/// shadows. Best-effort (raw frames): versions + TTL expiry make loss,
/// duplication and reordering harmless.
struct BorderSyncMsg {
  std::uint64_t serverTick{0};
  /// Home zone of the carried entities (the sender's zone).
  ZoneId zone;
  ServerId source;
  std::vector<EntitySnapshot> entities;
};

/// Server -> manager: lightweight liveness beacon, sent best-effort (no
/// reliable wrapping — a retransmitted heartbeat would defeat its purpose).
/// The failure detector declares a server dead after enough missed beats.
struct HeartbeatMsg {
  ServerId server;
  std::uint64_t seq{0};
  SimTime sentAt{};
};

/// Server -> server: one delta-codec view payload for replica shadow
/// maintenance (reliable transport). `serverTick` duplicates the tick
/// inside the view payload so telemetry can account the frame without
/// decoding it.
struct ViewReplicationMsg {
  std::uint64_t serverTick{0};
  ServerId source;
  std::vector<std::uint8_t> view;  // BaselineSender::encodeView payload
};

/// Receiver -> sender: acknowledges the latest applied replica view tick
/// (best-effort raw frames; a lost ack only delays baseline advancement).
struct ReplicationAckMsg {
  ServerId acker;
  std::uint64_t tick{0};
};

// Encoders produce ready-to-send frames; decoders throw ser::DecodeError on
// malformed payloads. The snapshot/state-update codec lives in
// rtf/snapshot_codec.hpp (SnapshotCodec).
[[nodiscard]] ser::Frame encode(const ClientInputMsg& msg);
[[nodiscard]] ser::Frame encode(const ForwardedInputMsg& msg);
[[nodiscard]] ser::Frame encode(const EntityReplicationMsg& msg);
[[nodiscard]] ser::Frame encode(const MigrationDataMsg& msg);
[[nodiscard]] ser::Frame encode(const MigrationAckMsg& msg);
[[nodiscard]] ser::Frame encode(const ZoneHandoffMsg& msg);
[[nodiscard]] ser::Frame encode(const ZoneHandoffAckMsg& msg);
[[nodiscard]] ser::Frame encode(const BorderSyncMsg& msg);
[[nodiscard]] ser::Frame encode(const HeartbeatMsg& msg);
[[nodiscard]] ser::Frame encode(const ViewReplicationMsg& msg);
[[nodiscard]] ser::Frame encode(const ReplicationAckMsg& msg);

[[nodiscard]] ClientInputMsg decodeClientInput(const ser::Frame& frame);
[[nodiscard]] ForwardedInputMsg decodeForwardedInput(const ser::Frame& frame);
[[nodiscard]] EntityReplicationMsg decodeEntityReplication(const ser::Frame& frame);
[[nodiscard]] MigrationDataMsg decodeMigrationData(const ser::Frame& frame);
[[nodiscard]] MigrationAckMsg decodeMigrationAck(const ser::Frame& frame);
[[nodiscard]] ZoneHandoffMsg decodeZoneHandoff(const ser::Frame& frame);
[[nodiscard]] ZoneHandoffAckMsg decodeZoneHandoffAck(const ser::Frame& frame);
[[nodiscard]] BorderSyncMsg decodeBorderSync(const ser::Frame& frame);
[[nodiscard]] HeartbeatMsg decodeHeartbeat(const ser::Frame& frame);
[[nodiscard]] ViewReplicationMsg decodeViewReplication(const ser::Frame& frame);
[[nodiscard]] ReplicationAckMsg decodeReplicationAck(const ser::Frame& frame);

}  // namespace roia::rtf
