// Schema-driven snapshot codec: one per-field schema table drives the full
// (legacy wire-compatible) encoding, the delta encoding, and the lint-level
// coverage check, so a field added to EntitySnapshot cannot silently skip
// the wire.
//
// Full mode writes every field of every entity each tick — byte-identical
// to the original free-function codec. Delta mode encodes a *view* (the
// entity set one link is interested in) against an acked baseline view
// retained per link: each entry carries a bit-packed field-presence mask
// and only the fields that changed since the baseline, with positions and
// velocities quantized to fixed-point lattices and transmitted as zigzag
// varint deltas. When no ack lands inside the baseline window the sender
// falls back to a keyframe (a delta against the implicit default view), so
// drops, migration, zone handoff and crash recovery all resync through the
// existing transport without a side channel.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "rtf/entity.hpp"
#include "serialize/message.hpp"

namespace roia::rtf {

/// Which snapshot codec a server (and its clients/replica peers) runs.
enum class ReplicationCodec : std::uint8_t {
  kFull = 0,   ///< full entity state every tick (the paper's baseline)
  kDelta = 1,  ///< baseline-tracked masked deltas with quantization
};

/// Replication knobs carried by ServerConfig and mirrored to clients by the
/// cluster, so both ends of every link agree on the wire format.
struct ReplicationProfile {
  ReplicationCodec codec{ReplicationCodec::kFull};
  /// Fixed-point lattice units per world unit for x/y; <= 0 keeps exact
  /// F32 (replica links always use the exact variant, see Server).
  double positionScale{16.0};
  /// Lattice units per world-unit-per-second for vx/vy; <= 0 exact.
  double velocityScale{8.0};
  /// A keyframe is forced every this many ticks even with a live baseline,
  /// bounding the damage of an undetected sender/receiver divergence.
  std::uint64_t keyframeInterval{64};
  /// Without an ack newer than tick - window the sender stops trusting its
  /// baseline and keyframes until acks resume.
  std::uint64_t baselineAckWindow{16};
  /// CPU cost (reference microseconds) per entity gathered into a delta
  /// view — the delta analogue of suGatherPerEntityCost.
  double deltaGatherPerEntityCost{0.25};
};

/// Field identities of EntitySnapshot. Mask bit = 1 << value; bits are
/// ordered by change frequency (movement first) so the common masks fit a
/// one-byte varint, independent of the wire order fixed by kSnapshotSchema.
enum class SnapshotField : std::uint8_t {
  kX = 0,
  kY = 1,
  kVx = 2,
  kVy = 3,
  kHealth = 4,
  kVersion = 5,
  kKind = 6,
  kOwner = 7,
  kClient = 8,
  kAppData = 9,
  kId,  ///< the entry key: always written, never masked
};

using FieldMask = std::uint16_t;

[[nodiscard]] constexpr FieldMask fieldBit(SnapshotField field) {
  return static_cast<FieldMask>(1u << static_cast<unsigned>(field));
}

/// Every maskable field (replica links: shadows mirror owner state exactly).
inline constexpr FieldMask kAllFields = 0x3FF;
/// What a game client needs: pose, health, and the owning client id (how a
/// client recognises its own avatar in the view). Velocity is excluded to
/// match the information content of the full-codec client update, which
/// carries {id, x, y, health} only; `version` is excluded deliberately — it
/// bumps every tick and would cost a mask bit per entry.
inline constexpr FieldMask kClientViewFields =
    fieldBit(SnapshotField::kX) | fieldBit(SnapshotField::kY) |
    fieldBit(SnapshotField::kHealth) | fieldBit(SnapshotField::kClient);

/// The entity set one link sees, keyed by id (ordered: encode order and
/// equality checks are deterministic).
using SnapshotView = std::map<EntityId, EntitySnapshot>;

/// Server -> client: filtered world delta produced by the application.
struct StateUpdateMsg {
  std::uint64_t serverTick{0};
  std::vector<std::uint8_t> update;  // application-defined encoding
};

/// One row of the snapshot schema: a field identity plus the EntitySnapshot
/// member name it serializes (the name is what roia-lint checks coverage
/// against). Row order in kSnapshotSchema *is* the wire order.
struct SnapshotSchemaRow {
  SnapshotField field;
  const char* name;
};

/// The schema table, in wire order (see snapshot_codec.cpp).
[[nodiscard]] std::span<const SnapshotSchemaRow> snapshotSchema();

class SnapshotCodec {
 public:
  SnapshotCodec() = default;
  explicit SnapshotCodec(const ReplicationProfile& profile) : profile_(profile) {}

  [[nodiscard]] const ReplicationProfile& profile() const { return profile_; }

  // --- full codec (profile-independent; byte-identical to the legacy
  // free functions, so default-mode harness output never moves) ---

  /// Writes every field of `snapshot` in schema order.
  static void writeSnapshot(ser::ByteWriter& writer, const EntitySnapshot& snapshot);
  [[nodiscard]] static EntitySnapshot readSnapshot(ser::ByteReader& reader);

  /// Frames an application-encoded state update (hot path: encodes straight
  /// from the server's reused scratch buffer).
  [[nodiscard]] static ser::Frame encodeStateUpdate(std::uint64_t serverTick,
                                                    std::span<const std::uint8_t> update);
  [[nodiscard]] static StateUpdateMsg decodeStateUpdate(const ser::Frame& frame);

  // --- delta building blocks (profile-dependent) ---

  /// Snaps x/y (positionScale) and vx/vy (velocityScale) onto their
  /// fixed-point lattices; scales <= 0 leave the field exact. Senders
  /// quantize views before diffing so baselines match what receivers hold.
  [[nodiscard]] EntitySnapshot quantized(const EntitySnapshot& snapshot) const;

  /// Mask of fields (within `allowed`) whose encoded value differs between
  /// `base` and `now`. Scaled fields compare on the lattice.
  [[nodiscard]] FieldMask changedFields(const EntitySnapshot& base, const EntitySnapshot& now,
                                        FieldMask allowed) const;

  /// Writes one delta entry: mask, then the masked fields in schema order.
  /// The entry's id is written by the caller (BaselineSender gap-encodes
  /// ascending ids). `base` is the baseline entry (nullptr = implicit
  /// default, used by keyframes and spawns).
  void writeEntry(ser::ByteWriter& writer, const EntitySnapshot* base, const EntitySnapshot& now,
                  FieldMask mask) const;

  /// Reads one delta entry for `id` (already decoded by the caller). The
  /// base is looked up by id in `baseline` (nullptr or missing id =
  /// implicit default).
  [[nodiscard]] EntitySnapshot readEntry(ser::ByteReader& reader, EntityId id,
                                         const SnapshotView* baseline) const;

 private:
  ReplicationProfile profile_{};
};

/// Per-link delta sender: retains the quantized views it has sent, keyed by
/// tick, and diffs each new view against the newest acked one. Falls back
/// to keyframes when the ack stream stalls (baselineAckWindow) or on the
/// periodic schedule (keyframeInterval).
class BaselineSender {
 public:
  BaselineSender(const SnapshotCodec& codec, FieldMask fields)
      : codec_(&codec), fields_(fields) {}

  struct EncodeResult {
    bool keyframe{false};
    std::size_t entities{0};
  };

  /// Encodes `view` for `tick` into `out` and retains it as a future
  /// baseline. `removed` lists ids that left the sender's responsibility
  /// entirely (world removals, not view exits — receivers treat absence
  /// from the view as "out of interest", not "gone").
  EncodeResult encodeView(std::uint64_t tick, SnapshotView view, std::span<const EntityId> removed,
                          ser::ByteWriter& out);

  /// Acknowledges that the receiver holds the view of `tick`. Acks for
  /// ticks this sender never sent (stale acks after re-homing or crash
  /// recovery) are ignored.
  void onAck(std::uint64_t tick);

  [[nodiscard]] bool hasAcked() const { return hasAcked_; }
  [[nodiscard]] std::uint64_t ackedTick() const { return ackedTick_; }
  [[nodiscard]] const SnapshotView* sentView(std::uint64_t tick) const {
    auto it = sent_.find(tick);
    return it != sent_.end() ? &it->second : nullptr;
  }

 private:
  const SnapshotCodec* codec_;
  FieldMask fields_;
  std::map<std::uint64_t, SnapshotView> sent_;
  std::uint64_t ackedTick_{0};
  bool hasAcked_{false};
  std::uint64_t lastKeyframeTick_{0};
  bool sentAny_{false};
};

/// Per-link delta receiver: reconstructs views from keyframes/deltas,
/// retains them as baselines, and rejects frames it cannot apply (stale
/// tick, missing baseline after a drop) — the sender heals via keyframe
/// once the ack window expires.
class BaselineReceiver {
 public:
  BaselineReceiver() = default;
  explicit BaselineReceiver(const SnapshotCodec& codec) : codec_(&codec) {}

  struct DecodedView {
    std::uint64_t serverTick{0};
    bool keyframe{false};
    /// Owned by the receiver; valid until the next decodeView/reset.
    const SnapshotView* view{nullptr};
    std::vector<EntityId> removed;
  };

  /// Applies one view payload. Returns nullopt when the frame is not
  /// applicable (stale tick or unknown baseline); throws ser::DecodeError
  /// on malformed bytes.
  std::optional<DecodedView> decodeView(std::span<const std::uint8_t> payload);

  /// Drops all baselines and the tick watermark (client re-homing, replica
  /// link reset after crash recovery).
  void reset();

  [[nodiscard]] bool hasView() const { return hasLatest_; }
  [[nodiscard]] std::uint64_t latestTick() const { return latest_; }
  [[nodiscard]] const SnapshotView* latestView() const {
    auto it = views_.find(latest_);
    return hasLatest_ && it != views_.end() ? &it->second : nullptr;
  }

 private:
  const SnapshotCodec* codec_{nullptr};
  std::map<std::uint64_t, SnapshotView> views_;
  std::uint64_t latest_{0};
  bool hasLatest_{false};
};

}  // namespace roia::rtf
