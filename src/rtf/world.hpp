// Per-server view of one zone's application state: every entity of the zone
// (actives + shadows) indexed for deterministic iteration.
//
// Storage is a contiguous vector sorted by ascending entity id plus an
// id -> slot hash index: forEach — the hottest loop in the codebase (AOI
// scans, attack resolution, NPC updates, replica sync all iterate it every
// tick) — walks cache-friendly contiguous records, while find stays O(1).
// Spawns/despawns/migrations are orders of magnitude rarer than per-tick
// scans, so the O(n) slot shift on insert/erase is a good trade.
//
// Invalidation contract: references/pointers returned by find()/upsert()
// and the records visited by forEach are invalidated by any subsequent
// upsert() or remove(). Callers must not mutate the entity set while
// iterating or while holding a record pointer (the tick phases respect
// this: structural changes and scans never interleave).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "rtf/entity.hpp"

namespace roia::rtf {

class World {
 public:
  explicit World(ZoneId zone) : zone_(zone) {}

  [[nodiscard]] ZoneId zone() const { return zone_; }

  /// Inserts or replaces an entity. Returns the stored record (valid until
  /// the next upsert/remove).
  EntityRecord& upsert(const EntityRecord& entity);

  /// Removes the entity if present; returns true when something was removed.
  bool remove(EntityId id);

  [[nodiscard]] EntityRecord* find(EntityId id);
  [[nodiscard]] const EntityRecord* find(EntityId id) const;
  [[nodiscard]] bool contains(EntityId id) const { return slotOf_.contains(id.value); }

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

  /// Deterministic iteration in ascending id order over contiguous storage.
  // roia-hot
  template <class Fn>
  void forEach(Fn&& fn) {
    for (EntityRecord& e : slots_) fn(e);
  }
  // roia-hot
  template <class Fn>
  void forEach(Fn&& fn) const {
    for (const EntityRecord& e : slots_) fn(e);
  }

  /// Counts with a predicate (template: no std::function indirection).
  // roia-hot
  template <class Pred>
  [[nodiscard]] std::size_t countIf(Pred&& pred) const {
    std::size_t n = 0;
    for (const EntityRecord& e : slots_) {
      if (pred(e)) ++n;
    }
    return n;
  }

  /// One-pass population counts, replacing repeated countIf scans in the
  /// tick epilogue and monitoring-snapshot build.
  struct Census {
    std::size_t activeAvatars{0};  ///< avatars owned by the queried server
    std::size_t totalAvatars{0};
    std::size_t activeNpcs{0};  ///< NPCs owned by the queried server
    std::size_t totalNpcs{0};
    /// Mirrored entities homed in a *different* zone (cross-zone AOI at the
    /// border); excluded from the avatar/NPC population counts above.
    std::size_t borderShadows{0};

    [[nodiscard]] std::size_t shadowAvatars() const { return totalAvatars - activeAvatars; }
  };
  [[nodiscard]] Census census(ServerId server) const;

  [[nodiscard]] std::size_t activeCount(ServerId server) const;
  [[nodiscard]] std::size_t avatarCount() const;
  [[nodiscard]] std::size_t npcCount() const;

  /// Fidelity multiplier applied to interest radii by fidelity-aware
  /// InterestPolicy wrappers. Owned by the world (1:1 with a server) so the
  /// degradation ladder of one overloaded replica cannot leak into peers
  /// that share the same policy object.
  [[nodiscard]] double interestScale() const { return interestScale_; }
  void setInterestScale(double scale) { interestScale_ = scale; }

  /// Ids of all entities active on `server`, ascending.
  [[nodiscard]] std::vector<EntityId> activeIds(ServerId server) const;

 private:
  ZoneId zone_;
  double interestScale_{1.0};
  std::vector<EntityRecord> slots_;  // ascending id => deterministic iteration
  std::unordered_map<std::uint64_t, std::size_t> slotOf_;  // id -> index into slots_
};

}  // namespace roia::rtf
