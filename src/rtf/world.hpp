// Per-server view of one zone's application state: every entity of the zone
// (actives + shadows) indexed for deterministic iteration.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "common/types.hpp"
#include "rtf/entity.hpp"

namespace roia::rtf {

class World {
 public:
  explicit World(ZoneId zone) : zone_(zone) {}

  [[nodiscard]] ZoneId zone() const { return zone_; }

  /// Inserts or replaces an entity. Returns the stored record.
  EntityRecord& upsert(const EntityRecord& entity);

  /// Removes the entity if present; returns true when something was removed.
  bool remove(EntityId id);

  [[nodiscard]] EntityRecord* find(EntityId id);
  [[nodiscard]] const EntityRecord* find(EntityId id) const;
  [[nodiscard]] bool contains(EntityId id) const { return entities_.contains(id); }

  [[nodiscard]] std::size_t size() const { return entities_.size(); }

  /// Deterministic iteration in ascending id order.
  template <class Fn>
  void forEach(Fn&& fn) {
    for (auto& [id, e] : entities_) fn(e);
  }
  template <class Fn>
  void forEach(Fn&& fn) const {
    for (const auto& [id, e] : entities_) fn(e);
  }

  /// Counts with a predicate (used by monitoring).
  [[nodiscard]] std::size_t countIf(const std::function<bool(const EntityRecord&)>& pred) const;

  [[nodiscard]] std::size_t activeCount(ServerId server) const;
  [[nodiscard]] std::size_t avatarCount() const;
  [[nodiscard]] std::size_t npcCount() const;

  /// Ids of all entities active on `server`, ascending.
  [[nodiscard]] std::vector<EntityId> activeIds(ServerId server) const;

 private:
  ZoneId zone_;
  std::map<EntityId, EntityRecord> entities_;  // ordered => deterministic
};

}  // namespace roia::rtf
