// Per-server view of one zone's application state: every entity of the zone
// (actives + shadows) indexed for deterministic iteration.
//
// Storage is structure-of-arrays: parallel contiguous columns (id, kind,
// zone, owner, position, velocity, health) sorted by ascending entity id,
// plus a cold column for the rarely-touched fields (client, version,
// appData) and an id -> slot hash index. The hottest loops in the codebase
// — census, AOI queries, NPC decisions, snapshot/state-update encoding —
// batch over exactly one or two of these columns every tick, so SoA keeps
// them dense in cache instead of striding through fat records; find stays
// O(1). Spawns/despawns/migrations are orders of magnitude rarer than
// per-tick scans, so the O(n) column shift on insert/erase is a good trade.
//
// Slot order == id order: slot i holds the i-th smallest id, so iterating
// slots ascending visits ids ascending, and sorting a set of slots sorts
// the corresponding ids. Slot-keyed side structures (the flat interest
// grid) key off structuralEpoch(): it bumps on every insert-of-a-new-id or
// remove, never on value-only upserts.
//
// Invalidation contract: EntityRef/ConstEntityRef proxies returned by
// find()/upsert()/refAt() and the refs visited by forEach, the spans
// returned by the column accessors, and slot indices are all invalidated
// by any subsequent upsert() of a new id or remove(). Callers must not
// mutate the entity set while iterating or while holding a ref (the tick
// phases respect this: structural changes and scans never interleave).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/math.hpp"
#include "common/types.hpp"
#include "rtf/entity.hpp"

namespace roia::rtf {

class World {
 public:
  explicit World(ZoneId zone) : zone_(zone) {}

  [[nodiscard]] ZoneId zone() const { return zone_; }

  /// Inserts or replaces an entity. Returns a ref over the stored columns
  /// (valid until the next structural upsert/remove).
  EntityRef upsert(const EntityRecord& entity);

  /// Removes the entity if present; returns true when something was removed.
  bool remove(EntityId id);

  [[nodiscard]] std::optional<EntityRef> find(EntityId id);
  [[nodiscard]] std::optional<ConstEntityRef> find(EntityId id) const;
  [[nodiscard]] bool contains(EntityId id) const { return slotOf_.contains(id.value); }

  [[nodiscard]] std::size_t size() const { return ids_.size(); }

  /// Slot of `id`, or npos when absent. Slots index the column spans below.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t slotOf(EntityId id) const {
    const auto it = slotOf_.find(id.value);
    return it == slotOf_.end() ? npos : it->second;
  }

  /// Proxy over the entity stored at `slot` (must be < size()).
  // roia-hot
  [[nodiscard]] EntityRef refAt(std::size_t slot) {
    return EntityRef(EntityId{ids_[slot]}, kinds_[slot], zones_[slot], owners_[slot],
                     cold_[slot].client, positions_[slot], velocities_[slot], healths_[slot],
                     cold_[slot].version, cold_[slot].appData);
  }
  // roia-hot
  [[nodiscard]] ConstEntityRef refAt(std::size_t slot) const {
    return ConstEntityRef(EntityId{ids_[slot]}, kinds_[slot], zones_[slot], owners_[slot],
                          cold_[slot].client, positions_[slot], velocities_[slot], healths_[slot],
                          cold_[slot].version, cold_[slot].appData);
  }

  /// Contiguous column views, slot-indexed, ascending id order. Hot loops
  /// (AOI culling, census, NPC scans, state-update gather) batch over these
  /// directly instead of materialising per-entity refs.
  [[nodiscard]] std::span<const std::uint64_t> ids() const { return ids_; }
  [[nodiscard]] std::span<const EntityKind> kinds() const { return kinds_; }
  [[nodiscard]] std::span<const ZoneId> zones() const { return zones_; }
  [[nodiscard]] std::span<const ServerId> owners() const { return owners_; }
  [[nodiscard]] std::span<const Vec2> positions() const { return positions_; }
  [[nodiscard]] std::span<const Vec2> velocities() const { return velocities_; }
  [[nodiscard]] std::span<const double> healths() const { return healths_; }

  /// Bumped on every structural mutation (insert of a new id, remove);
  /// value-only upserts of an existing id leave it unchanged. Slot-keyed
  /// caches (e.g. the flat interest grid) compare against it to detect
  /// that their slot mapping went stale.
  [[nodiscard]] std::uint64_t structuralEpoch() const { return structuralEpoch_; }

  /// Deterministic iteration in ascending id order over contiguous storage.
  /// Compatibility shim over refAt: new hot paths should batch over the
  /// column spans instead.
  // roia-hot
  template <class Fn>
  void forEach(Fn&& fn) {
    const std::size_t n = ids_.size();
    for (std::size_t s = 0; s < n; ++s) fn(refAt(s));
  }
  // roia-hot
  template <class Fn>
  void forEach(Fn&& fn) const {
    const std::size_t n = ids_.size();
    for (std::size_t s = 0; s < n; ++s) fn(refAt(s));
  }

  /// Counts with a predicate (template: no std::function indirection).
  // roia-hot
  template <class Pred>
  [[nodiscard]] std::size_t countIf(Pred&& pred) const {
    std::size_t n = 0;
    const std::size_t size = ids_.size();
    for (std::size_t s = 0; s < size; ++s) {
      if (pred(refAt(s))) ++n;
    }
    return n;
  }

  /// One-pass population counts, replacing repeated countIf scans in the
  /// tick epilogue and monitoring-snapshot build.
  struct Census {
    std::size_t activeAvatars{0};  ///< avatars owned by the queried server
    std::size_t totalAvatars{0};
    std::size_t activeNpcs{0};  ///< NPCs owned by the queried server
    std::size_t totalNpcs{0};
    /// Mirrored entities homed in a *different* zone (cross-zone AOI at the
    /// border); excluded from the avatar/NPC population counts above.
    std::size_t borderShadows{0};

    [[nodiscard]] std::size_t shadowAvatars() const { return totalAvatars - activeAvatars; }
  };
  [[nodiscard]] Census census(ServerId server) const;

  [[nodiscard]] std::size_t activeCount(ServerId server) const;
  [[nodiscard]] std::size_t avatarCount() const;
  [[nodiscard]] std::size_t npcCount() const;

  /// Fidelity multiplier applied to interest radii by fidelity-aware
  /// InterestPolicy wrappers. Owned by the world (1:1 with a server) so the
  /// degradation ladder of one overloaded replica cannot leak into peers
  /// that share the same policy object.
  [[nodiscard]] double interestScale() const { return interestScale_; }
  void setInterestScale(double scale) { interestScale_ = scale; }

  /// Ids of all entities active on `server`, ascending.
  [[nodiscard]] std::vector<EntityId> activeIds(ServerId server) const;

 private:
  /// Rarely-touched per-entity state kept out of the hot columns.
  struct ColdState {
    ClientId client;
    std::uint64_t version{0};
    std::vector<std::uint8_t> appData;
  };

  ZoneId zone_;
  double interestScale_{1.0};
  std::uint64_t structuralEpoch_{0};
  // Parallel columns, ascending id => deterministic iteration.
  std::vector<std::uint64_t> ids_;
  std::vector<EntityKind> kinds_;
  std::vector<ZoneId> zones_;
  std::vector<ServerId> owners_;
  std::vector<Vec2> positions_;
  std::vector<Vec2> velocities_;
  std::vector<double> healths_;
  std::vector<ColdState> cold_;
  std::unordered_map<std::uint64_t, std::size_t> slotOf_;  // id -> slot
};

}  // namespace roia::rtf
