#include "rtf/client.hpp"

#include <algorithm>

namespace roia::rtf {

ClientEndpoint::ClientEndpoint(ClientId id, std::unique_ptr<InputProvider> provider,
                               sim::Simulation& simulation, net::Network& network, Config config,
                               Rng rng)
    : id_(id),
      provider_(std::move(provider)),
      sim_(simulation),
      net_(network),
      config_(config),
      codec_(config.replication),
      receiver_(codec_),
      rng_(rng) {
  node_ = net_.addNode([this](NodeId from, const ser::Frame& frame) { onFrame(from, frame); });
}

ClientEndpoint::~ClientEndpoint() { stop(); }

void ClientEndpoint::setServer(ServerId server, NodeId serverNode) {
  server_ = server;
  serverNode_ = serverNode;
  // A new server has no baseline history for this link: drop ours too, so
  // a late frame from the old server cannot masquerade as a baseline.
  receiver_.reset();
}

void ClientEndpoint::start() {
  if (active_) return;
  active_ = true;
  // Random phase offset so thousands of clients do not fire simultaneously.
  const auto offset = SimDuration::microseconds(static_cast<std::int64_t>(
      rng_.uniformInt(0, static_cast<std::uint64_t>(
                             std::max<std::int64_t>(1, config_.inputInterval.micros)) -
                             1)));
  nextSend_ = sim_.scheduleAfter(offset, [this] { sendInputs(); });
}

void ClientEndpoint::stop() {
  if (!active_) return;
  active_ = false;
  sim_.cancel(nextSend_);
  net_.removeNode(node_);
}

void ClientEndpoint::sendInputs() {
  if (!active_) return;
  std::vector<std::uint8_t> commands = provider_->nextCommands(sim_.now(), rng_);
  if (!commands.empty() && serverNode_.valid()) {
    ClientInputMsg msg{id_, clientTick_, std::move(commands)};
    if (config_.replication.codec == ReplicationCodec::kDelta && receiver_.hasView()) {
      msg.viewAck = receiver_.latestTick() + 1;
    }
    net_.send(node_, serverNode_, encode(msg));
  }
  ++clientTick_;
  nextSend_ = sim_.scheduleAfter(config_.inputInterval, [this] { sendInputs(); });
}

void ClientEndpoint::onFrame(NodeId from, const ser::Frame& frame) {
  if (!active_) return;
  if (frame.type == ser::MessageType::kViewUpdate) {
    if (config_.replication.codec != ReplicationCodec::kDelta) return;
    // After a re-home the receiver was reset; a late high-tick frame from
    // the previous server must not advance the watermark and starve the
    // new link.
    if (from != serverNode_) return;
    const auto decoded = receiver_.decodeView(frame.payload);
    if (!decoded) return;  // stale or baseline lost; server will keyframe
    if (updatesReceived_ > 0) {
      updateGapMs_.add((sim_.now() - lastUpdateAt_).asMillis());
    }
    lastUpdateAt_ = sim_.now();
    ++updatesReceived_;
    provider_->onStateView(decoded->serverTick, id_, *decoded->view);
    return;
  }
  if (frame.type != ser::MessageType::kStateUpdate) return;
  const StateUpdateMsg msg = SnapshotCodec::decodeStateUpdate(frame);
  if (updatesReceived_ > 0) {
    updateGapMs_.add((sim_.now() - lastUpdateAt_).asMillis());
  }
  lastUpdateAt_ = sim_.now();
  ++updatesReceived_;
  provider_->onStateUpdate(msg.update);
}

}  // namespace roia::rtf
