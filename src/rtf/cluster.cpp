#include "rtf/cluster.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

#include "common/log.hpp"
#include "obs/events.hpp"

namespace roia::rtf {

Cluster::Cluster(Application& app, ClusterConfig config)
    : app_(app),
      config_(std::move(config)),
      net_(sim_),
      rng_(config_.seed),
      telemetry_(config_.telemetry != nullptr ? config_.telemetry
                                              : obs::Telemetry::globalIfActive()) {
  // Both ends of every client link must agree on the replication codec and
  // its quantization scales: the server profile is authoritative.
  config_.clientTemplate.replication = config_.serverTemplate.replication;
}

ZoneId Cluster::createZone(std::string name, Vec2 origin, Vec2 extent) {
  ZoneDescriptor descriptor;
  descriptor.id = ZoneId{nextZoneId_++};
  descriptor.name = std::move(name);
  descriptor.origin = origin;
  descriptor.extent = extent;
  zones_.addZone(descriptor);
  return descriptor.id;
}

ZoneId Cluster::createInstance(ZoneId original) {
  const ZoneDescriptor& base = zones_.zone(original);
  ZoneDescriptor instance = base;
  instance.id = ZoneId{nextZoneId_++};
  instance.name = base.name + "#inst" + std::to_string(instance.id.value);
  instance.instanceOf = original;
  zones_.addZone(instance);
  return instance.id;
}

std::vector<ZoneId> Cluster::createZoneGrid(Vec2 origin, Vec2 extent, std::size_t cols,
                                            std::size_t rows, const std::string& namePrefix) {
  if (cols == 0 || rows == 0) throw std::invalid_argument("createZoneGrid: empty grid");
  const Vec2 cell{extent.x / static_cast<double>(cols), extent.y / static_cast<double>(rows)};
  std::vector<ZoneId> ids;
  ids.reserve(cols * rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const Vec2 zoneOrigin{origin.x + static_cast<double>(c) * cell.x,
                            origin.y + static_cast<double>(r) * cell.y};
      ids.push_back(createZone(
          namePrefix + "-" + std::to_string(c) + "x" + std::to_string(r), zoneOrigin, cell));
    }
  }
  sharding_ = true;
  refreshSharding();
  return ids;
}

ServerId Cluster::addServer(ZoneId zone, double speedFactor) {
  if (!zones_.hasZone(zone)) throw std::invalid_argument("addServer: unknown zone");
  const ServerId id{nextServerId_++};
  ServerConfig serverConfig = config_.serverTemplate;
  // `speedFactor` is relative to the deployment baseline: a 2.0 "large"
  // flavor is twice the template's speed, whatever hardware generation the
  // template models.
  serverConfig.cpu.speedFactor = config_.serverTemplate.cpu.speedFactor * speedFactor;
  serverConfig.cpu.noiseSeed = 0x5eed0000ULL + id.value;
  auto server = std::make_unique<Server>(id, zone, app_, sim_, net_, serverConfig,
                                         rng_.split(0xA000 + id.value));
  server->setMigrationCompleteFn([this](ClientId client, ServerId from, ServerId to) {
    (void)from;
    auto it = clients_.find(client);
    if (it == clients_.end()) return;
    auto serverIt = servers_.find(to);
    if (serverIt == servers_.end()) return;
    it->second->setServer(to, serverIt->second->node());
    clientServer_[client] = to;
  });
  server->setZoneHandoffCompleteFn(
      [this](ClientId client, ServerId from, ServerId to, ZoneId toZone) {
        (void)from;
        (void)toZone;
        auto it = clients_.find(client);
        if (it == clients_.end()) return;
        auto serverIt = servers_.find(to);
        if (serverIt == servers_.end()) return;
        it->second->setServer(to, serverIt->second->node());
        clientServer_[client] = to;
      });
  server->setHandoffAdmission([this](ServerId source) {
    auto it = servers_.find(source);
    return it != servers_.end() && !it->second->crashed();
  });
  if (collector_ != nullptr) {
    server->setMonitoringTarget(collector_->node());
  }
  if (telemetry_ != nullptr) server->setTelemetry(telemetry_);
  if (tickPredictor_) server->setTickPredictor(tickPredictor_);
  server->start();
  servers_.emplace(id, std::move(server));
  zones_.addReplica(zone, id);
  refreshPeers(zone);
  refreshSharding();
  return id;
}

MonitoringCollector& Cluster::attachMonitoringCollector() {
  if (collector_ == nullptr) {
    collector_ = std::make_unique<MonitoringCollector>(sim_, net_);
    if (telemetry_ != nullptr) collector_->setTelemetry(telemetry_);
    for (auto& [id, server] : servers_) {
      server->setMonitoringTarget(collector_->node());
    }
  }
  return *collector_;
}

void Cluster::removeServer(ServerId id) {
  auto it = servers_.find(id);
  if (it == servers_.end()) throw std::invalid_argument("removeServer: unknown server");
  Server& victim = *it->second;
  if (victim.connectedUsers() > 0) {
    throw std::logic_error("removeServer: server still has connected users");
  }
  const ZoneId zone = victim.zone();
  zones_.removeReplica(zone, id);

  // Hand surviving NPCs to the first remaining replica (management-plane
  // transfer; a production system would migrate them like users).
  const std::vector<ServerId> remaining = zones_.replicas(zone);
  if (!remaining.empty()) {
    Server& heir = *servers_.at(remaining.front());
    victim.world().forEach([&](ConstEntityRef e) {
      if (e.isNpc() && e.owner == id) {
        EntityRecord copy{e.id,      e.kind,   e.zone,   heir.id(),     e.client,
                          e.position, e.velocity, e.health, e.version + 1, e.appData};
        heir.world().upsert(copy);
      }
    });
  }

  victim.shutdown();
  servers_.erase(it);
  refreshPeers(zone);
  refreshSharding();
  if (collector_ != nullptr) collector_->forget(id);
}

std::vector<ServerId> Cluster::serverIds() const {
  std::vector<ServerId> ids;
  ids.reserve(servers_.size());
  for (const auto& [id, server] : servers_) ids.push_back(id);
  return ids;
}

ClientId Cluster::connectClient(ZoneId zone, std::unique_ptr<InputProvider> provider) {
  const std::vector<ServerId> replicas = zones_.replicas(zone);
  if (replicas.empty()) throw std::logic_error("connectClient: zone has no servers");
  ServerId best = replicas.front();
  std::size_t bestUsers = std::numeric_limits<std::size_t>::max();
  for (const ServerId id : replicas) {
    const std::size_t users = servers_.at(id)->connectedUsers();
    if (users < bestUsers) {
      bestUsers = users;
      best = id;
    }
  }
  return connectClientTo(best, std::move(provider));
}

ClientId Cluster::connectClientTo(ServerId serverId, std::unique_ptr<InputProvider> provider) {
  auto serverIt = servers_.find(serverId);
  if (serverIt == servers_.end()) throw std::invalid_argument("connectClientTo: unknown server");
  Server& server = *serverIt->second;

  // Admission control runs before any id allocation or RNG draw: a vetoed
  // connect must leave the cluster's deterministic state byte-identical to
  // never having tried.
  if (admissionGate_) {
    std::string reason;
    if (!admissionGate_(server, reason)) {
      ++admissionVetoes_;
      if (telemetry_ != nullptr && telemetry_->audit.enabled()) {
        obs::AuditRecord record;
        record.at = sim_.now();
        record.zone = server.zone();
        record.strategy = "admission-control";
        record.users = server.connectedUsers();
        record.replicas = zones_.replicas(server.zone()).size();
        record.threshold = "eq2:n_max";
        record.action = obs::events::kAdmissionThrottle;
        record.rejected.push_back("admit:" + reason);
        record.rationale = std::move(reason);
        telemetry_->audit.record(std::move(record));
      }
      return ClientId{};
    }
  }

  const ClientId clientId{nextClientId_++};
  const EntityId entityId{nextEntityId_++};
  auto endpoint = std::make_unique<ClientEndpoint>(clientId, std::move(provider), sim_, net_,
                                                   config_.clientTemplate,
                                                   rng_.split(0xB000 + clientId.value));
  endpoint->setAvatar(entityId);
  endpoint->setServer(serverId, server.node());

  const Vec2 spawn = randomSpawn(zones_.zone(server.zone()));
  server.spawnUser(clientId, entityId, endpoint->node(), spawn);
  endpoint->start();

  clients_.emplace(clientId, std::move(endpoint));
  clientServer_[clientId] = serverId;
  return clientId;
}

void Cluster::setTickPredictor(Server::TickPredictor predictor) {
  tickPredictor_ = std::move(predictor);
  for (auto& [id, server] : servers_) {
    server->setTickPredictor(tickPredictor_);
  }
}

void Cluster::disconnectClient(ClientId id) {
  auto it = clients_.find(id);
  if (it == clients_.end()) return;
  const ServerId serverId = clientServer_.at(id);
  auto serverIt = servers_.find(serverId);
  if (serverIt != servers_.end()) {
    serverIt->second->disconnectUser(id);
  }
  it->second->stop();
  clients_.erase(it);
  clientServer_.erase(id);
}

std::vector<ClientId> Cluster::clientIds() const {
  std::vector<ClientId> ids;
  ids.reserve(clients_.size());
  for (const auto& [id, endpoint] : clients_) ids.push_back(id);
  return ids;
}

bool Cluster::migrateClient(ClientId client, ServerId target) {
  auto clientIt = clients_.find(client);
  auto targetIt = servers_.find(target);
  if (clientIt == clients_.end() || targetIt == servers_.end()) return false;
  const ServerId sourceId = clientServer_.at(client);
  if (sourceId == target) return false;
  auto sourceIt = servers_.find(sourceId);
  if (sourceIt == servers_.end()) return false;
  if (sourceIt->second->zone() != targetIt->second->zone()) return false;
  return sourceIt->second->requestMigration(client, target, targetIt->second->node());
}

bool Cluster::travelClient(ClientId client, ZoneId targetZone) {
  auto clientIt = clients_.find(client);
  if (clientIt == clients_.end() || !zones_.hasZone(targetZone)) return false;

  // Least-populated live replica of the target zone adopts the user.
  ServerId best{};
  std::size_t bestUsers = std::numeric_limits<std::size_t>::max();
  for (const ServerId id : zones_.replicas(targetZone)) {
    const Server& candidate = *servers_.at(id);
    if (candidate.crashed()) continue;
    const std::size_t users = candidate.connectedUsers();
    if (users < bestUsers) {
      bestUsers = users;
      best = id;
    }
  }
  if (!best.valid()) return false;

  const ServerId sourceId = clientServer_.at(client);
  auto sourceIt = servers_.find(sourceId);
  if (sourceIt == servers_.end()) return false;
  if (sourceIt->second->zone() == targetZone) return false;  // already there
  return sourceIt->second->requestZoneHandoff(client, best, servers_.at(best)->node(),
                                              targetZone);
}

void Cluster::spawnNpcs(ZoneId zone, std::size_t count) {
  const std::vector<ServerId> replicas = zones_.replicas(zone);
  if (replicas.empty()) throw std::logic_error("spawnNpcs: zone has no servers");
  const ZoneDescriptor& descriptor = zones_.zone(zone);
  for (std::size_t i = 0; i < count; ++i) {
    const ServerId owner = replicas[i % replicas.size()];
    servers_.at(owner)->spawnNpc(EntityId{nextEntityId_++}, randomSpawn(descriptor));
  }
}

std::size_t Cluster::zoneUserCount(ZoneId zone) const {
  std::size_t total = 0;
  for (const ServerId id : zones_.replicas(zone)) {
    total += servers_.at(id)->connectedUsers();
  }
  return total;
}

std::vector<MonitoringSnapshot> Cluster::zoneMonitoring(ZoneId zone) const {
  const std::vector<ServerId> replicaIds = zones_.replicas(zone);
  std::vector<MonitoringSnapshot> snapshots;
  snapshots.reserve(replicaIds.size());
  for (const ServerId id : replicaIds) {
    snapshots.push_back(servers_.at(id)->monitoring());
  }
  return snapshots;
}

net::FaultInjector& Cluster::enableFaultInjection(std::uint64_t seed) {
  if (faults_ == nullptr) {
    faults_ = std::make_unique<net::FaultInjector>(
        seed != 0 ? seed : config_.seed ^ 0xFA0171A6B5ULL);
    if (telemetry_ != nullptr) faults_->setMetrics(&telemetry_->metrics);
    net_.setFaultInjector(faults_.get());
  }
  return *faults_;
}

void Cluster::crashServer(ServerId id) {
  auto it = servers_.find(id);
  if (it == servers_.end()) throw std::invalid_argument("crashServer: unknown server");
  // The server object stays registered: the zone directory, peer sets and
  // client endpoints all still reference the dead replica, exactly as a real
  // deployment would until a failure detector fires.
  it->second->crash();
}

std::vector<ServerId> Cluster::crashedServers() const {
  std::vector<ServerId> ids;
  ids.reserve(servers_.size());
  for (const auto& [id, server] : servers_) {
    if (server->crashed()) ids.push_back(id);
  }
  return ids;
}

Cluster::RecoveryReport Cluster::recoverCrashedServer(ServerId id) {
  auto it = servers_.find(id);
  if (it == servers_.end()) throw std::invalid_argument("recoverCrashedServer: unknown server");
  Server& dead = *it->second;
  if (!dead.crashed()) dead.crash();  // direct recovery implies the kill
  const ZoneId zone = dead.zone();

  RecoveryReport report;
  report.zone = zone;

  // The cluster's routing table is the authoritative list of orphans: the
  // dead server's own session map may disagree mid-migration.
  std::vector<ClientId> orphans;
  orphans.reserve(clientServer_.size());
  for (const auto& [client, serverId] : clientServer_) {
    if (serverId == id) orphans.push_back(client);
  }

  // Excise the dead replica before re-homing so survivors neither pick it as
  // a peer nor keep hand-overs to it pending. Cross-zone handoffs may target
  // any zone, so every remaining server aborts hand-overs to the dead one.
  zones_.removeReplica(zone, id);
  servers_.erase(it);
  refreshPeers(zone);
  refreshSharding();
  const std::vector<ServerId> survivors = zones_.replicas(zone);
  for (auto& [sid, remaining] : servers_) {
    remaining->cancelMigrationsTo(id);
  }

  for (const ClientId client : orphans) {
    ClientEndpoint& endpoint = *clients_.at(client);
    // A migration or handoff target may have adopted the session right
    // around the crash; then the ack just never made it back. Prefer that
    // server — in any zone — it already runs the avatar.
    ServerId home{};
    for (const auto& [sid, candidate] : servers_) {
      if (!candidate->crashed() && candidate->hasClient(client)) {
        home = sid;
        break;
      }
    }
    if (home.valid() && servers_.at(home)->zone() != zone) {
      // Adopted across a zone border: the old zone's replicas still hold
      // stale shadows of the departed avatar (the dead source never lived
      // to announce the departure). Retire them.
      for (const ServerId sid : survivors) {
        servers_.at(sid)->world().remove(endpoint.avatar());
      }
    }
    if (!home.valid()) {
      // Adopt on the least-loaded survivor; a replica-sync shadow keeps the
      // avatar's state, otherwise the user respawns.
      ServerId best{};
      std::size_t bestUsers = std::numeric_limits<std::size_t>::max();
      for (const ServerId sid : survivors) {
        const std::size_t users = servers_.at(sid)->connectedUsers();
        if (users < bestUsers) {
          bestUsers = users;
          best = sid;
        }
      }
      if (!best.valid()) {
        // Zone wiped out: nobody can serve this user any more.
        endpoint.stop();
        clients_.erase(client);
        clientServer_.erase(client);
        ++report.clientsLost;
        continue;
      }
      if (servers_.at(best)->adoptOrphan(client, endpoint.avatar(), endpoint.node(),
                                         randomSpawn(zones_.zone(zone)))) {
        ++report.shadowsPromoted;
      }
      home = best;
    }
    endpoint.setServer(home, servers_.at(home)->node());
    clientServer_[client] = home;
    ++report.clientsRehomed;
  }

  if (!survivors.empty()) {
    report.npcsAdopted = servers_.at(survivors.front())->adoptNpcsFrom(id);
  }
  if (collector_ != nullptr) collector_->forget(id);
  return report;
}

void Cluster::refreshPeers(ZoneId zone) {
  const std::vector<ServerId> replicas = zones_.replicas(zone);
  std::vector<std::pair<ServerId, NodeId>> peers;
  peers.reserve(replicas.size());
  for (const ServerId id : replicas) {
    peers.emplace_back(id, servers_.at(id)->node());
  }
  for (const ServerId id : replicas) {
    servers_.at(id)->setPeers(peers);
  }
}

void Cluster::refreshSharding() {
  if (!sharding_) return;
  for (auto& [sid, server] : servers_) {
    const ZoneDescriptor& desc = zones_.zone(server->zone());
    if (desc.instanceOf.valid()) continue;  // instances live outside the grid
    server->setZoneBounds(desc.origin, desc.extent);
    // The resolver plays the role of RTF's zone directory service: given a
    // position, name the owning zone and a live replica there to adopt the
    // user. Evaluated inside ticks — everything it reads is simulated state.
    server->setHandoffResolver([this](Vec2 position) -> std::optional<HandoffTarget> {
      const ZoneId zone = zones_.zoneAt(position);
      if (!zone.valid()) return std::nullopt;
      ServerId best{};
      std::size_t bestUsers = std::numeric_limits<std::size_t>::max();
      for (const ServerId rid : zones_.replicas(zone)) {
        auto rit = servers_.find(rid);
        if (rit == servers_.end() || rit->second->crashed()) continue;
        const std::size_t users = rit->second->connectedUsers();
        if (users < bestUsers) {
          bestUsers = users;
          best = rid;
        }
      }
      if (!best.valid()) return std::nullopt;
      return HandoffTarget{zone, best, servers_.at(best)->node()};
    });
    const std::vector<ZoneId> neighborIds = zones_.neighbors(server->zone());
    std::vector<ZoneNeighbor> neighbors;
    neighbors.reserve(neighborIds.size());
    for (const ZoneId nz : neighborIds) {
      const ZoneDescriptor& nd = zones_.zone(nz);
      ZoneNeighbor neighbor{nz, nd.origin, nd.extent, {}};
      for (const ServerId rid : zones_.replicas(nz)) {
        auto rit = servers_.find(rid);
        if (rit == servers_.end() || rit->second->crashed()) continue;
        neighbor.servers.emplace_back(rid, rit->second->node());
      }
      neighbors.push_back(std::move(neighbor));
    }
    server->setNeighborZones(std::move(neighbors));
  }
}

Vec2 Cluster::randomSpawn(const ZoneDescriptor& zone) {
  return Vec2{rng_.uniform(zone.origin.x, zone.origin.x + zone.extent.x),
              rng_.uniform(zone.origin.y, zone.origin.y + zone.extent.y)};
}

}  // namespace roia::rtf
