#include "rtf/monitoring.hpp"

#include <algorithm>
#include <cmath>

#include "rtf/messages.hpp"
#include "serialize/byte_buffer.hpp"

namespace roia::rtf {

ser::Frame encodeMonitoring(const MonitoringSnapshot& snapshot) {
  ser::ByteWriter writer(96);
  writer.writeVarU64(snapshot.server.value);
  writer.writeVarU64(snapshot.zone.value);
  writer.writeVarI64(snapshot.takenAt.micros);
  writer.writeVarU64(snapshot.activeUsers);
  writer.writeVarU64(snapshot.totalAvatars);
  writer.writeVarU64(snapshot.npcs);
  writer.writeF64(snapshot.tickAvgMs);
  writer.writeF64(snapshot.tickP95Ms);
  writer.writeF64(snapshot.tickMaxMs);
  writer.writeF64(snapshot.cpuLoad);
  for (const double v : snapshot.phaseAvgMicros) writer.writeF32(static_cast<float>(v));
  writer.writeVarU64(snapshot.ticksObserved);
  writer.writeVarU64(snapshot.migrationsInitiated);
  writer.writeVarU64(snapshot.migrationsReceived);
  writer.writeVarU64(snapshot.borderShadows);
  writer.writeVarU64(snapshot.handoffsInitiated);
  writer.writeVarU64(snapshot.handoffsReceived);
  writer.writeVarU64(snapshot.degradationLevel);
  writer.writeVarU64(snapshot.shedObservers);
  ser::Frame frame;
  frame.type = ser::MessageType::kMonitoring;
  frame.payload = std::move(writer).take();
  return frame;
}

MonitoringSnapshot decodeMonitoring(const ser::Frame& frame) {
  if (frame.type != ser::MessageType::kMonitoring) {
    throw ser::DecodeError("unexpected frame type");
  }
  ser::ByteReader reader(frame.payload);
  MonitoringSnapshot snapshot;
  snapshot.server = ServerId{reader.readVarU64()};
  snapshot.zone = ZoneId{reader.readVarU64()};
  snapshot.takenAt = SimTime{reader.readVarI64()};
  snapshot.activeUsers = reader.readVarU64();
  snapshot.totalAvatars = reader.readVarU64();
  snapshot.npcs = reader.readVarU64();
  snapshot.tickAvgMs = reader.readF64();
  snapshot.tickP95Ms = reader.readF64();
  snapshot.tickMaxMs = reader.readF64();
  snapshot.cpuLoad = reader.readF64();
  for (double& v : snapshot.phaseAvgMicros) v = reader.readF32();
  snapshot.ticksObserved = reader.readVarU64();
  snapshot.migrationsInitiated = reader.readVarU64();
  snapshot.migrationsReceived = reader.readVarU64();
  snapshot.borderShadows = reader.readVarU64();
  snapshot.handoffsInitiated = reader.readVarU64();
  snapshot.handoffsReceived = reader.readVarU64();
  snapshot.degradationLevel = reader.readVarU64();
  snapshot.shedObservers = reader.readVarU64();
  return snapshot;
}

MonitoringCollector::MonitoringCollector(sim::Simulation& simulation, net::Network& network)
    : sim_(simulation),
      net_(network),
      node_(net_.addNode([this](NodeId from, const ser::Frame& frame) { onFrame(from, frame); })),
      reliable_(simulation, network, node_) {
  reliable_.setDeliver([this](NodeId from, const ser::Frame& inner) { handleFrame(from, inner); });
}

MonitoringCollector::~MonitoringCollector() { net_.removeNode(node_); }

void MonitoringCollector::onFrame(NodeId from, const ser::Frame& frame) {
  if (reliable_.onFrame(from, frame)) return;  // envelope/ack; inner follows
  handleFrame(from, frame);
}

void MonitoringCollector::handleFrame(NodeId from, const ser::Frame& frame) {
  (void)from;
  if (frame.type == ser::MessageType::kHeartbeat) {
    const HeartbeatMsg beat = decodeHeartbeat(frame);
    lastAliveAt_[beat.server] = sim_.now();
    ++heartbeats_;
    if (telemetry_ != nullptr) {
      telemetry_->metrics.counter("roia_collector_heartbeats_received_total").increment();
    }
    return;
  }
  if (frame.type != ser::MessageType::kMonitoring) return;
  if (telemetry_ != nullptr) {
    telemetry_->metrics.counter("roia_collector_snapshots_received_total").increment();
  }
  MonitoringSnapshot snapshot = decodeMonitoring(frame);
  const ServerId id = snapshot.server;
  // Reliable delivery is unordered: a retransmitted old snapshot may trail
  // a newer one. Keep only the freshest by capture time.
  auto it = latest_.find(id);
  if (it != latest_.end() && snapshot.takenAt < it->second.takenAt) return;
  receivedAt_[id] = sim_.now();
  lastAliveAt_[id] = sim_.now();
  latest_[id] = std::move(snapshot);
  ++received_;
}

std::optional<MonitoringSnapshot> MonitoringCollector::latest(ServerId server) const {
  auto it = latest_.find(server);
  if (it == latest_.end()) return std::nullopt;
  return it->second;
}

std::vector<MonitoringSnapshot> MonitoringCollector::zoneSnapshots(ZoneId zone) const {
  std::vector<MonitoringSnapshot> snapshots;
  snapshots.reserve(latest_.size());
  for (const auto& [id, snapshot] : latest_) {
    if (snapshot.zone == zone) snapshots.push_back(snapshot);
  }
  return snapshots;
}

std::optional<SimDuration> MonitoringCollector::staleness(ServerId server) const {
  auto it = receivedAt_.find(server);
  if (it == receivedAt_.end()) return std::nullopt;
  return sim_.now() - it->second;
}

void MonitoringCollector::forget(ServerId server) {
  latest_.erase(server);
  receivedAt_.erase(server);
  lastAliveAt_.erase(server);
}

std::optional<SimDuration> MonitoringCollector::heartbeatAge(ServerId server) const {
  auto it = lastAliveAt_.find(server);
  if (it == lastAliveAt_.end()) return std::nullopt;
  return sim_.now() - it->second;
}

std::vector<ServerId> MonitoringCollector::suspectDead(SimDuration period,
                                                       std::size_t missedBeats) const {
  const SimDuration limit = period * static_cast<std::int64_t>(missedBeats);
  std::vector<ServerId> dead;
  dead.reserve(lastAliveAt_.size());
  for (const auto& [server, lastAlive] : lastAliveAt_) {
    if (sim_.now() - lastAlive > limit) dead.push_back(server);
  }
  return dead;
}

void MonitoringCollector::setTelemetry(obs::Telemetry* telemetry) { telemetry_ = telemetry; }

void MonitoringCollector::publishMetrics() {
  if (telemetry_ == nullptr) return;
  obs::MetricsRegistry& metrics = telemetry_->metrics;
  for (const auto& [server, snapshot] : latest_) {
    (void)snapshot;
    const obs::Labels labels{{"server", std::to_string(server.value)}};
    if (const auto age = staleness(server)) {
      metrics.gauge("roia_collector_staleness_ms", labels).set(age->asMillis());
    }
    if (const auto beat = heartbeatAge(server)) {
      metrics.gauge("roia_collector_heartbeat_age_ms", labels).set(beat->asMillis());
    }
  }
  // Fault-injection pressure on the control plane, visible directly in the
  // metrics sidecar of chaos runs.
  const ReliableStats& rs = reliable_.stats();
  const obs::Labels self{{"endpoint", "collector"}};
  metrics.counter("roia_reliable_retransmissions_total", self).setTotal(rs.retransmissions);
  metrics.counter("roia_reliable_duplicates_dropped_total", self).setTotal(rs.duplicatesDropped);
  metrics.counter("roia_reliable_messages_delivered_total", self).setTotal(rs.messagesDelivered);
  metrics.counter("roia_reliable_abandoned_total", self).setTotal(rs.abandoned);
}

void MonitoringWindow::record(const TickProbes& probes) {
  samples_.push_back(Sample{probes.start, probes.totalMicros(), probes.phaseMicros});
  const SimTime cutoff = probes.start - window_;
  while (!samples_.empty() && samples_.front().start < cutoff) {
    samples_.pop_front();
  }
}

void MonitoringWindow::fill(MonitoringSnapshot& snapshot) const {
  snapshot.phaseAvgMicros.fill(0.0);
  if (samples_.empty()) {
    snapshot.tickAvgMs = 0.0;
    snapshot.tickP95Ms = 0.0;
    snapshot.tickMaxMs = 0.0;
    return;
  }
  double sum = 0.0;
  double maxTick = 0.0;
  std::vector<double> totals;
  totals.reserve(samples_.size());
  for (const Sample& s : samples_) {
    sum += s.totalMicros;
    maxTick = std::max(maxTick, s.totalMicros);
    totals.push_back(s.totalMicros);
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      snapshot.phaseAvgMicros[p] += s.phaseMicros[p];
    }
  }
  const double count = static_cast<double>(samples_.size());
  // Nearest-rank p95 over the window's tick totals.
  const std::size_t rank =
      std::min(samples_.size() - 1,
               static_cast<std::size_t>(std::ceil(0.95 * count)) - (totals.empty() ? 0 : 1));
  std::nth_element(totals.begin(), totals.begin() + static_cast<std::ptrdiff_t>(rank),
                   totals.end());
  snapshot.tickAvgMs = sum / count / 1000.0;
  snapshot.tickP95Ms = totals[rank] / 1000.0;
  snapshot.tickMaxMs = maxTick / 1000.0;
  for (double& v : snapshot.phaseAvgMicros) v /= count;
}

}  // namespace roia::rtf
