// The application-logic interface between the RTF substrate and a concrete
// ROIA (our RTFDemo-style shooter lives in src/game).
//
// The split follows the paper's section III-C: RTF measures the generic
// phases itself — (de)serialization of inputs/updates and migration handling
// — while application-dependent costs (t_ua, t_fa, t_npc, t_aoi and the
// gathering part of t_su) are charged by the application through the shared
// CostMeter.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "rtf/entity.hpp"
#include "rtf/probes.hpp"
#include "rtf/world.hpp"

namespace roia::rtf {

/// Lets application logic emit interactions whose target is a shadow entity;
/// the server forwards them to the responsible replica ("forwarded input").
class ForwardSink {
 public:
  virtual ~ForwardSink() = default;
  virtual void forwardInteraction(EntityId target, EntityId source,
                                  std::vector<std::uint8_t> payload) = 0;
};

class Application {
 public:
  virtual ~Application() = default;

  /// Called once at the start of every server tick, before any processing;
  /// applications rebuild per-tick structures (e.g. spatial indices) here.
  /// Default: nothing.
  virtual void onTickBegin(World& world, CostMeter& meter) {
    (void)world;
    (void)meter;
  }

  /// Applies one client's command batch to its avatar. Called with the meter
  /// phase set to kUa. Interactions with shadow entities go through
  /// `forward`; interactions with local actives are applied directly.
  virtual void applyUserInput(World& world, EntityRef avatar, std::span<const std::uint8_t> commands,
                              CostMeter& meter, ForwardSink& forward, Rng& rng) = 0;

  /// Applies a forwarded interaction to a locally active entity (phase
  /// kFa). May itself emit follow-up interactions through `forward` (e.g. a
  /// kill credit back to the attacker's responsible server).
  virtual void applyForwardedInteraction(World& world, EntityRef target, EntityId source,
                                         std::span<const std::uint8_t> payload, CostMeter& meter,
                                         ForwardSink& forward) = 0;

  /// Maintenance after a shadow snapshot was applied (phase kFa), e.g.
  /// interest-management index updates. Default: no extra cost.
  virtual void onShadowUpdated(World& world, EntityRef shadow, CostMeter& meter) {
    (void)world;
    (void)shadow;
    (void)meter;
  }

  /// Advances one NPC (phase kNpc).
  virtual void updateNpc(World& world, EntityRef npc, CostMeter& meter, Rng& rng) = 0;

  /// Computes the set of entities visible to `viewer` (phase kAoi), written
  /// into `out` (cleared first) as world slot indices in ascending order
  /// (slot order == id order). Slots stay valid until the next structural
  /// world mutation, letting buildStateUpdate gather over columns without
  /// per-id hash lookups. The server calls this with a per-tick scratch
  /// vector, so implementations are allocation-free on the steady path.
  virtual void computeAreaOfInterest(const World& world, ConstEntityRef viewer, CostMeter& meter,
                                     std::vector<std::uint32_t>& out) = 0;

  /// Encodes the filtered state update for `viewer` (phase kSu) into `out`
  /// (cleared first), reusing its capacity. `visible` holds world slot
  /// indices produced by computeAreaOfInterest this same tick. The substrate
  /// additionally charges generic serialization cost per byte of the payload.
  virtual void buildStateUpdate(const World& world, ConstEntityRef viewer,
                                std::span<const std::uint32_t> visible, CostMeter& meter,
                                std::vector<std::uint8_t>& out) = 0;

  /// Application state attached to a migrating user (phase kMigIni).
  virtual std::vector<std::uint8_t> exportUserState(ConstEntityRef avatar, CostMeter& meter) {
    (void)avatar;
    (void)meter;
    return {};
  }

  /// Restores application state for an adopted user (phase kMigRcv).
  virtual void importUserState(EntityRef avatar, std::span<const std::uint8_t> state,
                               CostMeter& meter) {
    (void)avatar;
    (void)state;
    (void)meter;
  }
};

}  // namespace roia::rtf
