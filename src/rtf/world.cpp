#include "rtf/world.hpp"

#include <algorithm>

namespace roia::rtf {

EntityRecord& World::upsert(const EntityRecord& entity) {
  const auto it = slotOf_.find(entity.id.value);
  if (it != slotOf_.end()) {
    EntityRecord& stored = slots_[it->second];
    stored = entity;
    return stored;
  }
  // New entity: insert keeping ascending id order. Ids are usually spawned
  // in increasing order, so the common case is a cheap append.
  std::size_t pos = slots_.size();
  if (!slots_.empty() && slots_.back().id.value > entity.id.value) {
    pos = static_cast<std::size_t>(
        std::lower_bound(slots_.begin(), slots_.end(), entity.id.value,
                         [](const EntityRecord& e, std::uint64_t v) { return e.id.value < v; }) -
        slots_.begin());
  }
  slots_.insert(slots_.begin() + static_cast<std::ptrdiff_t>(pos), entity);
  for (std::size_t i = pos + 1; i < slots_.size(); ++i) slotOf_[slots_[i].id.value] = i;
  slotOf_.emplace(entity.id.value, pos);
  return slots_[pos];
}

bool World::remove(EntityId id) {
  const auto it = slotOf_.find(id.value);
  if (it == slotOf_.end()) return false;
  const std::size_t pos = it->second;
  slotOf_.erase(it);
  slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(pos));
  for (std::size_t i = pos; i < slots_.size(); ++i) slotOf_[slots_[i].id.value] = i;
  return true;
}

// roia-hot
EntityRecord* World::find(EntityId id) {
  const auto it = slotOf_.find(id.value);
  return it == slotOf_.end() ? nullptr : &slots_[it->second];
}

// roia-hot
const EntityRecord* World::find(EntityId id) const {
  const auto it = slotOf_.find(id.value);
  return it == slotOf_.end() ? nullptr : &slots_[it->second];
}

// roia-hot
World::Census World::census(ServerId server) const {
  Census census;
  for (const EntityRecord& e : slots_) {
    if (e.zone != zone_) {
      // Border shadow from a neighboring zone (cross-zone AOI): mirrored
      // state only, never active here and never a local population count.
      ++census.borderShadows;
      continue;
    }
    if (e.isAvatar()) {
      ++census.totalAvatars;
      if (e.owner == server) ++census.activeAvatars;
    } else {
      ++census.totalNpcs;
      if (e.owner == server) ++census.activeNpcs;
    }
  }
  return census;
}

std::size_t World::activeCount(ServerId server) const {
  return countIf([server](const EntityRecord& e) { return e.owner == server; });
}

std::size_t World::avatarCount() const {
  return countIf([](const EntityRecord& e) { return e.isAvatar(); });
}

std::size_t World::npcCount() const {
  return countIf([](const EntityRecord& e) { return e.isNpc(); });
}

std::vector<EntityId> World::activeIds(ServerId server) const {
  std::vector<EntityId> ids;
  ids.reserve(slots_.size());
  for (const EntityRecord& e : slots_) {
    if (e.owner == server) ids.push_back(e.id);
  }
  return ids;
}

}  // namespace roia::rtf
