#include "rtf/world.hpp"

namespace roia::rtf {

EntityRecord& World::upsert(const EntityRecord& entity) {
  auto [it, inserted] = entities_.insert_or_assign(entity.id, entity);
  return it->second;
}

bool World::remove(EntityId id) { return entities_.erase(id) > 0; }

EntityRecord* World::find(EntityId id) {
  auto it = entities_.find(id);
  return it == entities_.end() ? nullptr : &it->second;
}

const EntityRecord* World::find(EntityId id) const {
  auto it = entities_.find(id);
  return it == entities_.end() ? nullptr : &it->second;
}

std::size_t World::countIf(const std::function<bool(const EntityRecord&)>& pred) const {
  std::size_t n = 0;
  for (const auto& [id, e] : entities_) {
    if (pred(e)) ++n;
  }
  return n;
}

std::size_t World::activeCount(ServerId server) const {
  return countIf([server](const EntityRecord& e) { return e.owner == server; });
}

std::size_t World::avatarCount() const {
  return countIf([](const EntityRecord& e) { return e.isAvatar(); });
}

std::size_t World::npcCount() const {
  return countIf([](const EntityRecord& e) { return e.isNpc(); });
}

std::vector<EntityId> World::activeIds(ServerId server) const {
  std::vector<EntityId> ids;
  for (const auto& [id, e] : entities_) {
    if (e.owner == server) ids.push_back(id);
  }
  return ids;
}

}  // namespace roia::rtf
