#include "rtf/world.hpp"

#include <algorithm>

namespace roia::rtf {

EntityRef World::upsert(const EntityRecord& entity) {
  const auto it = slotOf_.find(entity.id.value);
  if (it != slotOf_.end()) {
    // Value-only update: columns rewritten in place, no structural change.
    const std::size_t s = it->second;
    kinds_[s] = entity.kind;
    zones_[s] = entity.zone;
    owners_[s] = entity.owner;
    positions_[s] = entity.position;
    velocities_[s] = entity.velocity;
    healths_[s] = entity.health;
    cold_[s].client = entity.client;
    cold_[s].version = entity.version;
    cold_[s].appData = entity.appData;
    return refAt(s);
  }
  // New entity: insert keeping ascending id order. Ids are usually spawned
  // in increasing order, so the common case is a cheap append.
  std::size_t pos = ids_.size();
  if (!ids_.empty() && ids_.back() > entity.id.value) {
    pos = static_cast<std::size_t>(std::lower_bound(ids_.begin(), ids_.end(), entity.id.value) -
                                   ids_.begin());
  }
  const auto p = static_cast<std::ptrdiff_t>(pos);
  ids_.insert(ids_.begin() + p, entity.id.value);
  kinds_.insert(kinds_.begin() + p, entity.kind);
  zones_.insert(zones_.begin() + p, entity.zone);
  owners_.insert(owners_.begin() + p, entity.owner);
  positions_.insert(positions_.begin() + p, entity.position);
  velocities_.insert(velocities_.begin() + p, entity.velocity);
  healths_.insert(healths_.begin() + p, entity.health);
  cold_.insert(cold_.begin() + p, ColdState{entity.client, entity.version, entity.appData});
  for (std::size_t i = pos + 1; i < ids_.size(); ++i) slotOf_[ids_[i]] = i;
  slotOf_.emplace(entity.id.value, pos);
  ++structuralEpoch_;
  return refAt(pos);
}

bool World::remove(EntityId id) {
  const auto it = slotOf_.find(id.value);
  if (it == slotOf_.end()) return false;
  const std::size_t pos = it->second;
  slotOf_.erase(it);
  const auto p = static_cast<std::ptrdiff_t>(pos);
  ids_.erase(ids_.begin() + p);
  kinds_.erase(kinds_.begin() + p);
  zones_.erase(zones_.begin() + p);
  owners_.erase(owners_.begin() + p);
  positions_.erase(positions_.begin() + p);
  velocities_.erase(velocities_.begin() + p);
  healths_.erase(healths_.begin() + p);
  cold_.erase(cold_.begin() + p);
  for (std::size_t i = pos; i < ids_.size(); ++i) slotOf_[ids_[i]] = i;
  ++structuralEpoch_;
  return true;
}

// roia-hot
std::optional<EntityRef> World::find(EntityId id) {
  const auto it = slotOf_.find(id.value);
  if (it == slotOf_.end()) return std::nullopt;
  return refAt(it->second);
}

// roia-hot
std::optional<ConstEntityRef> World::find(EntityId id) const {
  const auto it = slotOf_.find(id.value);
  if (it == slotOf_.end()) return std::nullopt;
  return refAt(it->second);
}

// roia-hot
World::Census World::census(ServerId server) const {
  Census census;
  const std::size_t n = ids_.size();
  for (std::size_t s = 0; s < n; ++s) {
    if (zones_[s] != zone_) {
      // Border shadow from a neighboring zone (cross-zone AOI): mirrored
      // state only, never active here and never a local population count.
      ++census.borderShadows;
      continue;
    }
    if (kinds_[s] == EntityKind::kAvatar) {
      ++census.totalAvatars;
      if (owners_[s] == server) ++census.activeAvatars;
    } else {
      ++census.totalNpcs;
      if (owners_[s] == server) ++census.activeNpcs;
    }
  }
  return census;
}

// roia-hot
std::size_t World::activeCount(ServerId server) const {
  std::size_t n = 0;
  for (const ServerId owner : owners_) {
    if (owner == server) ++n;
  }
  return n;
}

// roia-hot
std::size_t World::avatarCount() const {
  std::size_t n = 0;
  for (const EntityKind kind : kinds_) {
    if (kind == EntityKind::kAvatar) ++n;
  }
  return n;
}

// roia-hot
std::size_t World::npcCount() const {
  std::size_t n = 0;
  for (const EntityKind kind : kinds_) {
    if (kind == EntityKind::kNpc) ++n;
  }
  return n;
}

std::vector<EntityId> World::activeIds(ServerId server) const {
  std::vector<EntityId> ids;
  ids.reserve(ids_.size());
  for (std::size_t s = 0; s < ids_.size(); ++s) {
    if (owners_[s] == server) ids.push_back(EntityId{ids_[s]});
  }
  return ids;
}

}  // namespace roia::rtf
