// Entity model of the RTF substrate.
//
// Replication (Fig. 1 of the paper) keeps a complete copy of the zone state
// on every replica: each server is *responsible* for a disjoint subset of
// entities (its "active entities") and mirrors the rest as "shadow
// entities" whose state arrives from the owning servers each tick.
//
// Storage note: the World stores entities column-wise (SoA, see
// rtf/world.hpp). EntityRecord remains the transfer/value type used to
// spawn and snapshot entities; EntityRef/ConstEntityRef are lightweight
// proxies over one stored entity whose members alias the world's columns,
// so call sites keep the familiar `e.position`, `e.owner = x` syntax.
#pragma once

#include <cstdint>
#include <vector>

#include "common/math.hpp"
#include "common/types.hpp"

namespace roia::rtf {

enum class EntityKind : std::uint8_t {
  kAvatar = 0,  // user-controlled
  kNpc = 1,     // computer-controlled non-player character
};

/// One entity as a standalone value (spawn parameters, migration payloads,
/// test fixtures). Whether it is active or shadow on a given server is
/// derived from `owner` vs. that server's id.
struct EntityRecord {
  EntityId id;
  EntityKind kind{EntityKind::kAvatar};
  ZoneId zone;
  /// Server currently responsible for input processing and state updates.
  ServerId owner;
  /// Connected client for avatars; invalid for NPCs.
  ClientId client;
  Vec2 position;
  Vec2 velocity;
  double health{100.0};
  /// Monotonic per-entity state version; shadows only apply newer snapshots.
  std::uint64_t version{0};
  /// Opaque application-defined state (scores, inventory, ...) marshalled
  /// generically by RTF: replicated to shadows and carried by migrations.
  std::vector<std::uint8_t> appData;

  [[nodiscard]] bool isAvatar() const { return kind == EntityKind::kAvatar; }
  [[nodiscard]] bool isNpc() const { return kind == EntityKind::kNpc; }
  [[nodiscard]] bool activeOn(ServerId server) const { return owner == server; }
};

/// Mutable proxy over one stored entity: every member aliases the owning
/// World's columns (or a standalone EntityRecord via the implicit
/// conversion). Copyable, never assignable; valid until the next structural
/// world mutation — the same invalidation contract as the old record
/// pointers.
struct EntityRef {
  EntityId id;  // ids are immutable once stored: by value
  EntityKind& kind;
  ZoneId& zone;
  ServerId& owner;
  ClientId& client;
  Vec2& position;
  Vec2& velocity;
  double& health;
  std::uint64_t& version;
  std::vector<std::uint8_t>& appData;

  EntityRef(EntityId id_, EntityKind& kind_, ZoneId& zone_, ServerId& owner_, ClientId& client_,
            Vec2& position_, Vec2& velocity_, double& health_, std::uint64_t& version_,
            std::vector<std::uint8_t>& appData_)
      : id(id_),
        kind(kind_),
        zone(zone_),
        owner(owner_),
        client(client_),
        position(position_),
        velocity(velocity_),
        health(health_),
        version(version_),
        appData(appData_) {}

  /// Standalone records bind directly, so application/test code written
  /// against records keeps working unchanged.
  // NOLINTNEXTLINE(google-explicit-constructor)
  EntityRef(EntityRecord& r)
      : EntityRef(r.id, r.kind, r.zone, r.owner, r.client, r.position, r.velocity, r.health,
                  r.version, r.appData) {}

  [[nodiscard]] bool isAvatar() const { return kind == EntityKind::kAvatar; }
  [[nodiscard]] bool isNpc() const { return kind == EntityKind::kNpc; }
  [[nodiscard]] bool activeOn(ServerId server) const { return owner == server; }
};

/// Read-only counterpart of EntityRef.
struct ConstEntityRef {
  EntityId id;
  const EntityKind& kind;
  const ZoneId& zone;
  const ServerId& owner;
  const ClientId& client;
  const Vec2& position;
  const Vec2& velocity;
  const double& health;
  const std::uint64_t& version;
  const std::vector<std::uint8_t>& appData;

  ConstEntityRef(EntityId id_, const EntityKind& kind_, const ZoneId& zone_,
                 const ServerId& owner_, const ClientId& client_, const Vec2& position_,
                 const Vec2& velocity_, const double& health_, const std::uint64_t& version_,
                 const std::vector<std::uint8_t>& appData_)
      : id(id_),
        kind(kind_),
        zone(zone_),
        owner(owner_),
        client(client_),
        position(position_),
        velocity(velocity_),
        health(health_),
        version(version_),
        appData(appData_) {}

  // NOLINTNEXTLINE(google-explicit-constructor)
  ConstEntityRef(const EntityRecord& r)
      : ConstEntityRef(r.id, r.kind, r.zone, r.owner, r.client, r.position, r.velocity, r.health,
                       r.version, r.appData) {}

  // NOLINTNEXTLINE(google-explicit-constructor)
  ConstEntityRef(const EntityRef& r)
      : ConstEntityRef(r.id, r.kind, r.zone, r.owner, r.client, r.position, r.velocity, r.health,
                       r.version, r.appData) {}

  [[nodiscard]] bool isAvatar() const { return kind == EntityKind::kAvatar; }
  [[nodiscard]] bool isNpc() const { return kind == EntityKind::kNpc; }
  [[nodiscard]] bool activeOn(ServerId server) const { return owner == server; }
};

/// Compact wire representation of an entity used for replica sync and
/// migration transfers.
struct EntitySnapshot {
  EntityId id;
  EntityKind kind{EntityKind::kAvatar};
  ServerId owner;
  ClientId client;
  float x{0.0f};
  float y{0.0f};
  float vx{0.0f};
  float vy{0.0f};
  float health{100.0f};
  std::uint64_t version{0};
  std::vector<std::uint8_t> appData;

  /// E: EntityRecord, EntityRef or ConstEntityRef — anything exposing the
  /// entity field names.
  template <class E>
  static EntitySnapshot of(const E& e) {
    return EntitySnapshot{e.id,
                          e.kind,
                          e.owner,
                          e.client,
                          static_cast<float>(e.position.x),
                          static_cast<float>(e.position.y),
                          static_cast<float>(e.velocity.x),
                          static_cast<float>(e.velocity.y),
                          static_cast<float>(e.health),
                          e.version,
                          e.appData};
  }

  template <class E>
  void applyTo(E&& e) const {
    e.kind = kind;
    e.owner = owner;
    e.client = client;
    e.position = {x, y};
    e.velocity = {vx, vy};
    e.health = health;
    e.version = version;
    e.appData = appData;
  }
};

}  // namespace roia::rtf
