// Entity model of the RTF substrate.
//
// Replication (Fig. 1 of the paper) keeps a complete copy of the zone state
// on every replica: each server is *responsible* for a disjoint subset of
// entities (its "active entities") and mirrors the rest as "shadow
// entities" whose state arrives from the owning servers each tick.
#pragma once

#include <cstdint>
#include <vector>

#include "common/math.hpp"
#include "common/types.hpp"

namespace roia::rtf {

enum class EntityKind : std::uint8_t {
  kAvatar = 0,  // user-controlled
  kNpc = 1,     // computer-controlled non-player character
};

/// One entity as stored on a server. Whether it is active or shadow on a
/// given server is derived from `owner` vs. that server's id.
struct EntityRecord {
  EntityId id;
  EntityKind kind{EntityKind::kAvatar};
  ZoneId zone;
  /// Server currently responsible for input processing and state updates.
  ServerId owner;
  /// Connected client for avatars; invalid for NPCs.
  ClientId client;
  Vec2 position;
  Vec2 velocity;
  double health{100.0};
  /// Monotonic per-entity state version; shadows only apply newer snapshots.
  std::uint64_t version{0};
  /// Opaque application-defined state (scores, inventory, ...) marshalled
  /// generically by RTF: replicated to shadows and carried by migrations.
  std::vector<std::uint8_t> appData;

  [[nodiscard]] bool isAvatar() const { return kind == EntityKind::kAvatar; }
  [[nodiscard]] bool isNpc() const { return kind == EntityKind::kNpc; }
  [[nodiscard]] bool activeOn(ServerId server) const { return owner == server; }
};

/// Compact wire representation of an entity used for replica sync and
/// migration transfers.
struct EntitySnapshot {
  EntityId id;
  EntityKind kind{EntityKind::kAvatar};
  ServerId owner;
  ClientId client;
  float x{0.0f};
  float y{0.0f};
  float vx{0.0f};
  float vy{0.0f};
  float health{100.0f};
  std::uint64_t version{0};
  std::vector<std::uint8_t> appData;

  static EntitySnapshot of(const EntityRecord& e) {
    return EntitySnapshot{e.id,
                          e.kind,
                          e.owner,
                          e.client,
                          static_cast<float>(e.position.x),
                          static_cast<float>(e.position.y),
                          static_cast<float>(e.velocity.x),
                          static_cast<float>(e.velocity.y),
                          static_cast<float>(e.health),
                          e.version,
                          e.appData};
  }

  void applyTo(EntityRecord& e) const {
    e.kind = kind;
    e.owner = owner;
    e.client = client;
    e.position = {x, y};
    e.velocity = {vx, vy};
    e.health = health;
    e.version = version;
    e.appData = appData;
  }
};

}  // namespace roia::rtf
