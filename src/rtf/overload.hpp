// Overload-survival policy for an RTF server: a deterministic degradation
// ladder stepped by the tick-budget controller in Server::tick().
//
// The paper's Eq.2 bounds how many users a replica can serve within the
// tick deadline; the ladder is what the server does in the instant the
// bound is exceeded anyway (flash crowd, lost replica) and the management
// plane has not yet rebalanced. Each rung trades fidelity for headroom:
//   level 0  full fidelity
//   level 1+ AOI radius scaled down (fidelity-scaled interest policy)
//   level 2+ non-critical entities (NPCs, shadows) update at half rate
//   level 3+ NPC decisions run at half frequency
//   level 4  lowest-priority observers shed (never ownership)
// Transitions are hysteretic: stepping down needs a sustained over-budget
// streak, stepping up a longer streak with real headroom, so the ladder
// cannot flap on a single noisy tick.
#pragma once

#include <array>
#include <cstddef>

namespace roia::rtf {

/// Number of ladder rungs (level 0 = full fidelity).
inline constexpr std::size_t kOverloadLevels = 5;

/// AOI radius multiplier applied at each ladder level via
/// World::interestScale (consumed by game::FidelityScaledInterest).
inline constexpr std::array<double, kOverloadLevels> kOverloadAoiScale{1.0, 0.75, 0.55, 0.45,
                                                                      0.40};

/// Level at/above which non-critical entities (NPCs and shadow avatars)
/// are dropped from state updates on every other tick.
inline constexpr std::size_t kSuHalvingLevel = 2;

/// Level at/above which NPC decisions run at half frequency.
inline constexpr std::size_t kNpcThrottleLevel = 3;

/// Deepest rung: shed the newest observers (highest client ids) first.
inline constexpr std::size_t kShedLevel = kOverloadLevels - 1;

/// Tick-budget enforcement knobs. Disabled by default so existing
/// experiments replay byte-identically; the overload harness switches it on.
struct OverloadConfig {
  bool enabled{false};

  /// Tick budget in milliseconds; 0 derives the budget from tickInterval.
  double budgetMs{0.0};

  /// Consecutive ticks over budget before stepping one rung down.
  std::size_t stepDownAfterTicks{5};

  /// Consecutive ticks under headroomFraction * budget before stepping one
  /// rung back up. Deliberately slower than stepping down.
  std::size_t stepUpAfterTicks{50};

  /// A tick only counts toward stepping up when its cost is below this
  /// fraction of the budget (the hysteresis band between headroomFraction
  /// and 1.0 holds the current level).
  double headroomFraction{0.7};

  /// Fraction of connected clients shed at the deepest level (rounded up,
  /// at least one observer is kept). Shedding skips AOI + state updates for
  /// the victims; inputs still apply and ownership is never dropped.
  double shedFraction{0.25};
};

}  // namespace roia::rtf
