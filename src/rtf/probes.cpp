#include "rtf/probes.hpp"

namespace roia::rtf {

SimDuration CostMeter::charge(double units) { return chargeTo(phase_, units); }

SimDuration CostMeter::chargeTo(Phase phase, double units) {
  const SimDuration d = cpu_->charge(units);
  if (probes_ != nullptr) {
    probes_->phaseMicros[static_cast<std::size_t>(phase)] += static_cast<double>(d.micros);
  }
  return d;
}

}  // namespace roia::rtf
