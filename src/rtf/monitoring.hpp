// Monitoring snapshots exported by application servers, the data feed of
// RTF-RMS. A snapshot summarizes the recent window (tick durations, CPU
// load, population) plus cumulative counters.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include <memory>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "obs/telemetry.hpp"
#include "rtf/probes.hpp"
#include "rtf/reliable.hpp"
#include "serialize/message.hpp"
#include "sim/simulation.hpp"

namespace roia::rtf {

struct MonitoringSnapshot {
  ServerId server;
  ZoneId zone;
  SimTime takenAt{};

  std::size_t activeUsers{0};
  std::size_t totalAvatars{0};
  std::size_t npcs{0};

  /// Average / p95 / max tick duration over the monitoring window, in ms.
  double tickAvgMs{0.0};
  double tickP95Ms{0.0};
  double tickMaxMs{0.0};
  /// CPU load in [0, 1] over the window.
  double cpuLoad{0.0};
  /// Per-phase average microseconds per tick over the window.
  std::array<double, kPhaseCount> phaseAvgMicros{};

  std::uint64_t ticksObserved{0};
  std::uint64_t migrationsInitiated{0};
  std::uint64_t migrationsReceived{0};

  /// Cross-zone AOI shadows currently mirrored at the zone border.
  std::size_t borderShadows{0};
  std::uint64_t handoffsInitiated{0};
  std::uint64_t handoffsReceived{0};

  /// Current rung of the overload degradation ladder (0 = full fidelity).
  std::size_t degradationLevel{0};
  /// Observers currently shed at the deepest ladder level.
  std::size_t shedObservers{0};
};

/// Wire codec for monitoring snapshots (ser::MessageType::kMonitoring).
[[nodiscard]] ser::Frame encodeMonitoring(const MonitoringSnapshot& snapshot);
[[nodiscard]] MonitoringSnapshot decodeMonitoring(const ser::Frame& frame);

/// Management-plane endpoint collecting the monitoring snapshots that
/// application servers publish over the (simulated) network — the transport
/// RTF provides for "receiving monitoring data from RTF inside an
/// application server". A resource manager reading from the collector works
/// on slightly stale data, exactly like a real deployment.
class MonitoringCollector {
 public:
  MonitoringCollector(sim::Simulation& simulation, net::Network& network);
  ~MonitoringCollector();
  MonitoringCollector(const MonitoringCollector&) = delete;
  MonitoringCollector& operator=(const MonitoringCollector&) = delete;

  [[nodiscard]] NodeId node() const { return node_; }

  /// Most recent snapshot from `server`, if any arrived yet.
  [[nodiscard]] std::optional<MonitoringSnapshot> latest(ServerId server) const;
  /// Latest snapshots of every server reporting for `zone`.
  [[nodiscard]] std::vector<MonitoringSnapshot> zoneSnapshots(ZoneId zone) const;
  /// Age of the latest snapshot of `server`; nullopt if none.
  [[nodiscard]] std::optional<SimDuration> staleness(ServerId server) const;

  /// Discards state for a decommissioned server.
  void forget(ServerId server);

  [[nodiscard]] std::uint64_t snapshotsReceived() const { return received_; }

  // --- crash-failure detection ---
  // Servers publish best-effort heartbeats alongside their monitoring
  // snapshots; the collector timestamps each one. A server whose heartbeat
  // has been silent for `missedBeats` periods is suspected dead. Both beats
  // and monitoring refresh liveness, so an isolated lost heartbeat does not
  // trip the detector.
  [[nodiscard]] std::uint64_t heartbeatsReceived() const { return heartbeats_; }
  /// Time since the last sign of life from `server`; nullopt if never seen.
  [[nodiscard]] std::optional<SimDuration> heartbeatAge(ServerId server) const;
  /// Servers silent for longer than `period * missedBeats`.
  [[nodiscard]] std::vector<ServerId> suspectDead(SimDuration period,
                                                  std::size_t missedBeats = 3) const;

  [[nodiscard]] const ReliableStats& reliableStats() const { return reliable_.stats(); }

  /// Attaches telemetry: receive counters update live; staleness(),
  /// heartbeatAge() and the reliable-transport counters are exported by
  /// publishMetrics() (the manager calls it each control period, so the
  /// gauges age exactly like the data the RMS acts on).
  void setTelemetry(obs::Telemetry* telemetry);
  void publishMetrics();

 private:
  void onFrame(NodeId from, const ser::Frame& frame);
  void handleFrame(NodeId from, const ser::Frame& frame);

  sim::Simulation& sim_;
  net::Network& net_;
  NodeId node_;
  ReliableTransport reliable_;
  std::map<ServerId, MonitoringSnapshot> latest_;
  std::map<ServerId, SimTime> receivedAt_;
  std::map<ServerId, SimTime> lastAliveAt_;
  std::uint64_t received_{0};
  std::uint64_t heartbeats_{0};
  obs::Telemetry* telemetry_{nullptr};
};

/// Rolling window over recent TickProbes; maintained by the server.
class MonitoringWindow {
 public:
  explicit MonitoringWindow(SimDuration window = SimDuration::seconds(1)) : window_(window) {}

  void record(const TickProbes& probes);

  /// Fills windowed fields of a snapshot (caller sets identity fields).
  void fill(MonitoringSnapshot& snapshot) const;

  [[nodiscard]] std::size_t sampleCount() const { return samples_.size(); }

 private:
  struct Sample {
    SimTime start;
    double totalMicros;
    std::array<double, kPhaseCount> phaseMicros;
  };

  SimDuration window_;
  std::deque<Sample> samples_;
};

}  // namespace roia::rtf
