#include "fit/levmar.hpp"

#include <cmath>
#include <stdexcept>

#include "fit/matrix.hpp"

namespace roia::fit {
namespace {

double sumSquaredError(const ModelFn& model, std::span<const double> x, std::span<const double> y,
                       std::span<const double> coeffs) {
  double sse = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = model(x[i], coeffs) - y[i];
    sse += r * r;
  }
  return sse;
}

}  // namespace

LevMarResult levenbergMarquardt(const ModelFn& model, std::span<const double> x,
                                std::span<const double> y, std::vector<double> initialCoeffs,
                                const LevMarOptions& options) {
  if (x.size() != y.size()) throw std::invalid_argument("levmar: size mismatch");
  const std::size_t n = x.size();
  const std::size_t p = initialCoeffs.size();
  if (n < p) throw std::invalid_argument("levmar: fewer samples than coefficients");

  std::vector<double> coeffs = std::move(initialCoeffs);
  double lambda = options.initialLambda;
  double sse = sumSquaredError(model, x, y, coeffs);

  LevMarResult result;
  std::vector<double> jacobianRow(p);
  Matrix jtj(p, p);
  std::vector<double> jtr(p);
  std::vector<double> probe = coeffs;

  std::size_t iter = 0;
  for (; iter < options.maxIterations; ++iter) {
    // Build JᵀJ and Jᵀr with a central-difference Jacobian.
    jtj = Matrix(p, p);
    std::fill(jtr.begin(), jtr.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < p; ++j) {
        const double base = coeffs[j];
        const double h = options.jacobianStep * std::max(1.0, std::fabs(base));
        probe = coeffs;
        probe[j] = base + h;
        const double fPlus = model(x[i], probe);
        probe[j] = base - h;
        const double fMinus = model(x[i], probe);
        jacobianRow[j] = (fPlus - fMinus) / (2.0 * h);
      }
      const double residual = model(x[i], coeffs) - y[i];
      for (std::size_t a = 0; a < p; ++a) {
        for (std::size_t b = 0; b <= a; ++b) {
          jtj(a, b) += jacobianRow[a] * jacobianRow[b];
        }
        jtr[a] += jacobianRow[a] * residual;
      }
    }
    for (std::size_t a = 0; a < p; ++a) {
      for (std::size_t b = a + 1; b < p; ++b) jtj(a, b) = jtj(b, a);
    }

    // Try damped steps, inflating lambda until one reduces the SSE.
    bool stepped = false;
    for (int attempt = 0; attempt < 32; ++attempt) {
      Matrix damped = jtj;
      for (std::size_t d = 0; d < p; ++d) {
        // Marquardt scaling: damp relative to the curvature diagonal.
        damped(d, d) += lambda * std::max(jtj(d, d), 1e-12);
      }
      std::vector<double> step;
      try {
        step = choleskySolve(damped, jtr);
      } catch (const SingularMatrixError&) {
        lambda *= options.lambdaUp;
        continue;
      }
      std::vector<double> candidate(p);
      for (std::size_t j = 0; j < p; ++j) candidate[j] = coeffs[j] - step[j];
      const double candidateSse = sumSquaredError(model, x, y, candidate);
      if (std::isfinite(candidateSse) && candidateSse <= sse) {
        const double improvement = sse - candidateSse;
        coeffs = std::move(candidate);
        const double previous = sse;
        sse = candidateSse;
        lambda = std::max(lambda * options.lambdaDown, 1e-14);
        stepped = true;
        if (improvement <= options.tolerance * std::max(previous, 1e-300)) {
          result.converged = true;
        }
        break;
      }
      lambda *= options.lambdaUp;
    }
    if (!stepped) {
      // No damping level produced progress: accept current optimum.
      result.converged = true;
    }
    if (result.converged) {
      ++iter;
      break;
    }
  }

  result.coeffs = std::move(coeffs);
  result.sse = sse;
  result.iterations = iter;
  return result;
}

namespace models {

ModelFn linear() {
  return [](double x, std::span<const double> c) { return c[0] + c[1] * x; };
}

ModelFn quadratic() {
  return [](double x, std::span<const double> c) { return c[0] + x * (c[1] + x * c[2]); };
}

ModelFn polynomial(std::size_t degree) {
  return [degree](double x, std::span<const double> c) {
    double acc = 0.0;
    for (std::size_t i = degree + 1; i-- > 0;) acc = acc * x + c[i];
    return acc;
  };
}

ModelFn powerLaw() {
  return [](double x, std::span<const double> c) { return c[0] * std::pow(std::max(x, 1e-12), c[1]); };
}

}  // namespace models
}  // namespace roia::fit
