// Small dense linear algebra for the fitting pipeline: column-major matrix,
// Cholesky factorization and triangular solves. Sized for normal equations
// of low-degree polynomial and Levenberg-Marquardt fits (a handful of
// parameters), so simplicity and numerical care beat blocking tricks.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <vector>

namespace roia::fit {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Row-major brace construction for tests: Matrix({{1,2},{3,4}}).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;
  Matrix& operator*=(double k);

  [[nodiscard]] std::vector<double> multiply(const std::vector<double>& v) const;

  bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<double> data_;
};

/// Thrown when a factorization encounters a non-SPD or singular matrix.
class SingularMatrixError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Cholesky factor L (lower triangular, A = L Lᵀ) of a symmetric positive
/// definite matrix. Throws SingularMatrixError when a pivot collapses.
[[nodiscard]] Matrix cholesky(const Matrix& a);

/// Solves A x = b for SPD A via Cholesky.
[[nodiscard]] std::vector<double> choleskySolve(const Matrix& a, const std::vector<double>& b);

/// Solves L y = b (forward) for lower-triangular L.
[[nodiscard]] std::vector<double> forwardSubstitute(const Matrix& l, const std::vector<double>& b);

/// Solves Lᵀ x = y (backward) given lower-triangular L.
[[nodiscard]] std::vector<double> backwardSubstituteT(const Matrix& l, const std::vector<double>& y);

}  // namespace roia::fit
