// Levenberg-Marquardt nonlinear least squares (Marquardt 1963), the same
// algorithm the paper runs through gnuplot to smooth measured per-parameter
// CPU times into approximation functions.
//
// Minimizes sum_i (f(x_i; c) - y_i)^2 over the coefficient vector c. The
// Jacobian is evaluated by central finite differences, so any smooth model
// function works; damping follows the classic multiplicative schedule.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace roia::fit {

/// Model function: value of f at x for coefficients c.
using ModelFn = std::function<double(double x, std::span<const double> coeffs)>;

struct LevMarOptions {
  std::size_t maxIterations{200};
  double initialLambda{1e-3};
  double lambdaUp{10.0};
  double lambdaDown{0.1};
  /// Converged when the relative SSE improvement drops below this.
  double tolerance{1e-12};
  /// Relative step for the finite-difference Jacobian.
  double jacobianStep{1e-6};
};

struct LevMarResult {
  std::vector<double> coeffs;
  double sse{0.0};
  std::size_t iterations{0};
  bool converged{false};
};

/// Runs LM from the given initial coefficients. x and y must be equal-sized
/// and have at least coeffs.size() samples.
[[nodiscard]] LevMarResult levenbergMarquardt(const ModelFn& model, std::span<const double> x,
                                              std::span<const double> y,
                                              std::vector<double> initialCoeffs,
                                              const LevMarOptions& options = {});

/// Ready-made model functions matching the paper's choices.
namespace models {
/// f(x) = c0 + c1 x
[[nodiscard]] ModelFn linear();
/// f(x) = c0 + c1 x + c2 x^2  (the paper's choice for t_ua and t_aoi)
[[nodiscard]] ModelFn quadratic();
/// f(x) = c0 + c1 x + ... + c_d x^d
[[nodiscard]] ModelFn polynomial(std::size_t degree);
/// f(x) = c0 * x^c1 (power law; used in robustness tests)
[[nodiscard]] ModelFn powerLaw();
}  // namespace models

}  // namespace roia::fit
