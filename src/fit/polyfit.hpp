// Closed-form (weighted) polynomial least squares via normal equations.
// This is the fast path used for the linear fits in the paper (t_ua_dser,
// t_su, t_fa, t_fa_dser, t_mig_ini, t_mig_rcv); quadratic parameters go
// through Levenberg-Marquardt exactly as the paper does with gnuplot, and
// both paths agree for polynomial model functions (tested).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace roia::fit {

/// Fits y ~ sum_i coeff[i] * x^i of the given degree. Returns coefficients
/// in ascending order of power (size degree + 1). Requires at least
/// degree + 1 samples; throws std::invalid_argument otherwise.
[[nodiscard]] std::vector<double> polyFit(std::span<const double> x, std::span<const double> y,
                                          std::size_t degree);

/// Weighted variant; weights act as inverse variances.
[[nodiscard]] std::vector<double> polyFitWeighted(std::span<const double> x,
                                                  std::span<const double> y,
                                                  std::span<const double> w, std::size_t degree);

}  // namespace roia::fit
