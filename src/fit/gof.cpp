#include "fit/gof.hpp"

#include <cmath>
#include <stdexcept>

namespace roia::fit {

GoodnessOfFit evaluateFit(const ModelFn& model, std::span<const double> x,
                          std::span<const double> y, std::span<const double> coeffs) {
  if (x.size() != y.size()) throw std::invalid_argument("evaluateFit: size mismatch");
  GoodnessOfFit gof;
  if (x.empty()) return gof;

  double meanY = 0.0;
  for (const double yi : y) meanY += yi;
  meanY /= static_cast<double>(y.size());

  double sst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = model(x[i], coeffs) - y[i];
    gof.sse += r * r;
    const double d = y[i] - meanY;
    sst += d * d;
  }
  gof.rmse = std::sqrt(gof.sse / static_cast<double>(x.size()));
  gof.r2 = sst > 0.0 ? 1.0 - gof.sse / sst : (gof.sse == 0.0 ? 1.0 : 0.0);
  return gof;
}

}  // namespace roia::fit
