// Goodness-of-fit statistics for fitted approximation functions.
#pragma once

#include <span>

#include "fit/levmar.hpp"

namespace roia::fit {

struct GoodnessOfFit {
  double sse{0.0};
  double rmse{0.0};
  /// Coefficient of determination; 1 is a perfect fit. Can be negative for
  /// fits worse than the mean predictor.
  double r2{0.0};
};

[[nodiscard]] GoodnessOfFit evaluateFit(const ModelFn& model, std::span<const double> x,
                                        std::span<const double> y, std::span<const double> coeffs);

}  // namespace roia::fit
