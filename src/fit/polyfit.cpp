#include "fit/polyfit.hpp"

#include <cmath>
#include <stdexcept>

#include "fit/matrix.hpp"

namespace roia::fit {

std::vector<double> polyFitWeighted(std::span<const double> x, std::span<const double> y,
                                    std::span<const double> w, std::size_t degree) {
  if (x.size() != y.size() || x.size() != w.size()) {
    throw std::invalid_argument("polyFit: size mismatch");
  }
  const std::size_t p = degree + 1;
  if (x.size() < p) throw std::invalid_argument("polyFit: not enough samples");

  // Accumulate the normal equations (XᵀWX) c = XᵀWy directly; powers up to
  // 2*degree are needed. Center/scale is unnecessary at the degrees (<= 3)
  // and magnitudes (user counts <= a few thousand) used here, but we scale x
  // by its max to keep the Gram matrix well conditioned anyway.
  double xScale = 0.0;
  for (const double xi : x) xScale = std::max(xScale, std::fabs(xi));
  if (xScale == 0.0) xScale = 1.0;

  Matrix gram(p, p);
  std::vector<double> rhs(p, 0.0);
  std::vector<double> powers(2 * degree + 1, 0.0);
  for (std::size_t s = 0; s < x.size(); ++s) {
    const double xs = x[s] / xScale;
    double acc = 1.0;
    for (std::size_t k = 0; k <= 2 * degree; ++k) {
      powers[k] = acc;
      acc *= xs;
    }
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < p; ++j) {
        gram(i, j) += w[s] * powers[i + j];
      }
      rhs[i] += w[s] * powers[i] * y[s];
    }
  }

  std::vector<double> scaled = choleskySolve(gram, rhs);
  // Undo the x scaling: coefficient of x^i was fitted against (x/S)^i.
  double divisor = 1.0;
  for (std::size_t i = 0; i < p; ++i) {
    scaled[i] /= divisor;
    divisor *= xScale;
  }
  return scaled;
}

std::vector<double> polyFit(std::span<const double> x, std::span<const double> y,
                            std::size_t degree) {
  const std::vector<double> w(x.size(), 1.0);
  return polyFitWeighted(x, y, w, degree);
}

}  // namespace roia::fit
