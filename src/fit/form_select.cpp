#include "fit/form_select.hpp"

#include <cmath>
#include <limits>

namespace roia::fit {

PowerLawFit fitPowerLaw(std::span<const double> x, std::span<const double> y) {
  PowerLawFit fit;
  // Ordinary least squares on (ln x, ln y): exponent is the slope, the
  // amplitude the exponentiated intercept.
  double sumX = 0.0, sumY = 0.0, sumXX = 0.0, sumXY = 0.0;
  const std::size_t count = x.size() < y.size() ? x.size() : y.size();
  for (std::size_t i = 0; i < count; ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0) continue;
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sumX += lx;
    sumY += ly;
    sumXX += lx * lx;
    sumXY += lx * ly;
    ++fit.samples;
  }
  if (fit.samples < 2) return fit;
  const double n = static_cast<double>(fit.samples);
  const double denom = n * sumXX - sumX * sumX;
  if (denom == 0.0) return PowerLawFit{};  // all x equal: slope undefined
  fit.exponent = (n * sumXY - sumX * sumY) / denom;
  const double intercept = (sumY - fit.exponent * sumX) / n;
  fit.amplitude = std::exp(intercept);

  const double meanY = sumY / n;
  double ssRes = 0.0, ssTot = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0) continue;
    const double ly = std::log(y[i]);
    const double predicted = intercept + fit.exponent * std::log(x[i]);
    ssRes += (ly - predicted) * (ly - predicted);
    ssTot += (ly - meanY) * (ly - meanY);
  }
  fit.r2 = ssTot > 0.0 ? 1.0 - ssRes / ssTot : 1.0;
  return fit;
}

double aicc(double sse, std::size_t n, std::size_t k) {
  if (n <= k + 1) return std::numeric_limits<double>::infinity();
  if (sse <= 0.0) return -std::numeric_limits<double>::infinity();
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  return nd * std::log(sse / nd) + 2.0 * kd + 2.0 * kd * (kd + 1.0) / (nd - kd - 1.0);
}

}  // namespace roia::fit
