#include "fit/matrix.hpp"

#include <cmath>

namespace roia::fit {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) throw std::invalid_argument("ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("matmul shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out(r, c) += a * rhs(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) throw std::invalid_argument("shape mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) throw std::invalid_argument("shape mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] - rhs.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double k) {
  for (double& v : data_) v *= k;
  return *this;
}

std::vector<double> Matrix::multiply(const std::vector<double>& v) const {
  if (v.size() != cols_) throw std::invalid_argument("matvec shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("cholesky: non-square");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      throw SingularMatrixError("cholesky: matrix not positive definite");
    }
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / l(j, j);
    }
  }
  return l;
}

std::vector<double> forwardSubstitute(const Matrix& l, const std::vector<double>& b) {
  const std::size_t n = l.rows();
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  return y;
}

std::vector<double> backwardSubstituteT(const Matrix& l, const std::vector<double>& y) {
  const std::size_t n = l.rows();
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

std::vector<double> choleskySolve(const Matrix& a, const std::vector<double>& b) {
  const Matrix l = cholesky(a);
  return backwardSubstituteT(l, forwardSubstitute(l, b));
}

}  // namespace roia::fit
