// Model-form selection utilities: a log-log power-law fit for reporting
// scaling exponents (is t_aoi growing like n^2 or n^1?) and the corrected
// Akaike information criterion for choosing between nested polynomial
// forms without overfitting the extra coefficient.
#pragma once

#include <cstddef>
#include <span>

namespace roia::fit {

/// y ~ amplitude * x^exponent, fitted by least squares on (ln x, ln y).
/// Pairs with non-positive x or y carry no information in log space and are
/// skipped; `samples` counts the pairs actually used.
struct PowerLawFit {
  double amplitude{0.0};
  double exponent{0.0};
  /// R^2 of the fit in log-log space.
  double r2{0.0};
  std::size_t samples{0};
  [[nodiscard]] bool valid() const { return samples >= 2; }
};

[[nodiscard]] PowerLawFit fitPowerLaw(std::span<const double> x, std::span<const double> y);

/// Corrected Akaike information criterion for a least-squares fit with `k`
/// estimated coefficients over `n` samples:
///   AICc = n ln(sse/n) + 2k + 2k(k+1)/(n-k-1).
/// Lower is better. Returns -infinity for an exact fit (sse == 0) and
/// +infinity when n <= k + 1 (the correction term blows up: too few samples
/// to justify the form at all).
[[nodiscard]] double aicc(double sse, std::size_t n, std::size_t k);

}  // namespace roia::fit
