// Metrics registry: the process-wide (or per-experiment) catalogue of
// counters, gauges and log-bucketed histograms, registered by name + labels.
// Servers, the reliable transport, the fault injector and the monitoring
// collector all publish into one registry, and the exporters (Prometheus
// text, JSONL, CSV) turn it into the machine-readable sidecar every bench
// emits. Instruments have stable addresses once registered, so hot paths
// can cache pointers and skip the name lookup.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace roia::obs {

/// Label set of one instrument, canonicalized (sorted by key) on
/// registration so {a=1,b=2} and {b=2,a=1} name the same instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void increment(std::uint64_t delta = 1) { value_ += delta; }
  /// Mirrors an externally maintained monotone total (e.g. ReliableStats);
  /// never moves backwards.
  void setTotal(std::uint64_t total) {
    if (total > value_) value_ = total;
  }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_{0.0};
};

/// Log-bucketed histogram: bucket i covers [min * growth^i, min * growth^(i+1)).
/// Geometric buckets bound the *relative* quantile error by the growth
/// factor, which is what tick-duration distributions need — 0.1 ms and
/// 100 ms resolve equally well. Two histograms with the same config merge
/// bucket-wise (for aggregating per-server into per-zone distributions).
class LogHistogram {
 public:
  struct Config {
    /// Lower edge of the first bucket; samples below land in underflow.
    double minValue{1e-3};
    /// Upper edge of the last bucket; samples at or above land in overflow.
    double maxValue{1e7};
    /// Bucket width ratio. 2^(1/8) keeps quantile estimates within ~4.5%.
    double growth{1.0905077326652577};

    [[nodiscard]] bool operator==(const Config&) const = default;
  };

  LogHistogram() : LogHistogram(Config{}) {}
  explicit LogHistogram(Config config);

  void add(double x);
  /// Adds the other histogram's samples; configs must match exactly.
  void merge(const LogHistogram& other);
  void reset();

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

  /// Quantile estimate (q in [0, 1]) by nearest rank over the buckets; the
  /// in-bucket position is the geometric midpoint, clamped to the observed
  /// min/max so the estimate never leaves the sampled range.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t bucketCount() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucketHits(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bucketLow(std::size_t i) const;
  [[nodiscard]] double bucketHigh(std::size_t i) const;
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }

 private:
  [[nodiscard]] std::size_t bucketIndex(double x) const;

  Config config_;
  double logMin_;
  double logGrowth_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_{0};
  std::uint64_t overflow_{0};
  std::uint64_t count_{0};
  double sum_{0.0};
  double min_{0.0};
  double max_{0.0};
  /// Whether min_/max_ hold a real sample: non-finite samples are counted
  /// (in count_ and under/overflow) but excluded from the moments.
  bool haveFinite_{false};
};

/// Name + labels → instrument. Reference-stable: registered instruments
/// never move, so callers may cache the returned references across the
/// lifetime of the registry.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  LogHistogram& histogram(std::string_view name, Labels labels = {},
                          LogHistogram::Config config = {});

  /// Lookup without creating; nullptr when the instrument does not exist.
  [[nodiscard]] const Counter* findCounter(std::string_view name, const Labels& labels = {}) const;
  [[nodiscard]] const Gauge* findGauge(std::string_view name, const Labels& labels = {}) const;
  [[nodiscard]] const LogHistogram* findHistogram(std::string_view name,
                                                  const Labels& labels = {}) const;

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // --- exporters ---
  /// Prometheus text exposition (histograms as summaries with p50/p95/p99).
  void writePrometheus(std::ostream& out) const;
  /// One JSON object per instrument per line.
  void writeJsonl(std::ostream& out) const;
  /// kind,name,labels,field,value rows.
  void writeCsv(std::ostream& out) const;

 private:
  struct Key {
    std::string name;
    Labels labels;
    auto operator<=>(const Key&) const = default;
  };

  static Key makeKey(std::string_view name, Labels labels);

  // unique_ptr values keep instrument addresses stable across rehash/insert.
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<LogHistogram>> histograms_;
};

/// Renders labels as {k="v",k2="v2"}; empty labels render as "".
[[nodiscard]] std::string formatLabels(const Labels& labels);

}  // namespace roia::obs
