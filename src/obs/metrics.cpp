#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "obs/json.hpp"

namespace roia::obs {

LogHistogram::LogHistogram(Config config) : config_(config) {
  if (!(config_.minValue > 0.0) || !(config_.maxValue > config_.minValue) ||
      !(config_.growth > 1.0)) {
    throw std::invalid_argument("LogHistogram: need 0 < minValue < maxValue and growth > 1");
  }
  logMin_ = std::log(config_.minValue);
  logGrowth_ = std::log(config_.growth);
  const auto buckets = static_cast<std::size_t>(
      std::ceil((std::log(config_.maxValue) - logMin_) / logGrowth_));
  counts_.assign(std::max<std::size_t>(1, buckets), 0);
}

std::size_t LogHistogram::bucketIndex(double x) const {
  auto i = static_cast<std::size_t>(
      std::max(0.0, (std::log(x) - logMin_) / logGrowth_));
  // The log-ratio of an exact bucket boundary can land an ulp on either
  // side of the integer; nudge against the true (pow-computed) edges so a
  // boundary value always lands in the bucket whose low edge it is.
  if (i + 1 < counts_.size() && x >= bucketLow(i + 1)) {
    ++i;
  } else if (i > 0 && x < bucketLow(i)) {
    --i;
  }
  return i;
}

void LogHistogram::add(double x) {
  // Non-finite samples are tallied (count + under/overflow) but excluded
  // from the moments: a single NaN must not poison min/max/sum and turn
  // every later quantile() into NaN.
  if (!std::isfinite(x)) {
    ++count_;
    if (x > 0.0) {
      ++overflow_;  // +inf
    } else {
      ++underflow_;  // NaN, -inf
    }
    return;
  }
  if (!haveFinite_) {
    min_ = max_ = x;
    haveFinite_ = true;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  if (!(x >= config_.minValue)) {  // also catches non-positives
    ++underflow_;
  } else if (x >= config_.maxValue) {
    ++overflow_;
  } else {
    const std::size_t i = std::min(bucketIndex(x), counts_.size() - 1);
    ++counts_[i];
  }
}

void LogHistogram::merge(const LogHistogram& other) {
  if (!(config_ == other.config_)) {
    throw std::invalid_argument("LogHistogram::merge: mismatched configs");
  }
  if (other.count_ == 0) return;
  if (other.haveFinite_) {
    if (!haveFinite_) {
      min_ = other.min_;
      max_ = other.max_;
      haveFinite_ = true;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

void LogHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = overflow_ = count_ = 0;
  sum_ = min_ = max_ = 0.0;
  haveFinite_ = false;
}

double LogHistogram::bucketLow(std::size_t i) const {
  return config_.minValue * std::pow(config_.growth, static_cast<double>(i));
}

double LogHistogram::bucketHigh(std::size_t i) const { return bucketLow(i + 1); }

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the (rank+1)-th smallest sample, rank in [0, count).
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t seen = underflow_;
  if (rank < seen) return min_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (rank < seen) {
      const double mid = std::sqrt(bucketLow(i) * bucketHigh(i));
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;  // overflow bucket
}

MetricsRegistry::Key MetricsRegistry::makeKey(std::string_view name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  return Key{std::string(name), std::move(labels)};
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  auto& slot = counters_[makeKey(name, std::move(labels))];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  auto& slot = gauges_[makeKey(name, std::move(labels))];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LogHistogram& MetricsRegistry::histogram(std::string_view name, Labels labels,
                                         LogHistogram::Config config) {
  auto& slot = histograms_[makeKey(name, std::move(labels))];
  if (!slot) slot = std::make_unique<LogHistogram>(config);
  return *slot;
}

const Counter* MetricsRegistry::findCounter(std::string_view name, const Labels& labels) const {
  const auto it = counters_.find(makeKey(name, labels));
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::findGauge(std::string_view name, const Labels& labels) const {
  const auto it = gauges_.find(makeKey(name, labels));
  return it == gauges_.end() ? nullptr : it->second.get();
}

const LogHistogram* MetricsRegistry::findHistogram(std::string_view name,
                                                   const Labels& labels) const {
  const auto it = histograms_.find(makeKey(name, labels));
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string formatLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += "\"";
  }
  out.push_back('}');
  return out;
}

namespace {

constexpr double kSummaryQuantiles[] = {0.5, 0.95, 0.99};

std::string withQuantileLabel(const Labels& labels, double q) {
  Labels extended = labels;
  char buf[16];
  std::snprintf(buf, sizeof buf, "%g", q);
  extended.emplace_back("quantile", buf);
  std::sort(extended.begin(), extended.end());
  return formatLabels(extended);
}

std::string labelsAsJson(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    appendJsonString(out, k);
    out.push_back(':');
    appendJsonString(out, v);
  }
  out.push_back('}');
  return out;
}

// CSV label cell: k=v pairs joined by ';' (never contains commas).
std::string labelsAsCsv(const Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out.push_back(';');
    out += k;
    out.push_back('=');
    out += v;
  }
  return out;
}

}  // namespace

void MetricsRegistry::writePrometheus(std::ostream& out) const {
  std::string_view lastName;
  for (const auto& [key, c] : counters_) {
    if (key.name != lastName) {
      out << "# TYPE " << key.name << " counter\n";
      lastName = key.name;
    }
    out << key.name << formatLabels(key.labels) << ' ' << c->value() << '\n';
  }
  lastName = {};
  for (const auto& [key, g] : gauges_) {
    if (key.name != lastName) {
      out << "# TYPE " << key.name << " gauge\n";
      lastName = key.name;
    }
    out << key.name << formatLabels(key.labels) << ' ' << g->value() << '\n';
  }
  lastName = {};
  for (const auto& [key, h] : histograms_) {
    if (key.name != lastName) {
      out << "# TYPE " << key.name << " summary\n";
      lastName = key.name;
    }
    for (const double q : kSummaryQuantiles) {
      out << key.name << withQuantileLabel(key.labels, q) << ' ' << h->quantile(q) << '\n';
    }
    out << key.name << "_count" << formatLabels(key.labels) << ' ' << h->count() << '\n';
    out << key.name << "_sum" << formatLabels(key.labels) << ' ' << h->sum() << '\n';
    out << key.name << "_min" << formatLabels(key.labels) << ' ' << h->min() << '\n';
    out << key.name << "_max" << formatLabels(key.labels) << ' ' << h->max() << '\n';
  }
}

void MetricsRegistry::writeJsonl(std::ostream& out) const {
  std::string line;
  const auto emit = [&](std::string_view kind, const Key& key, auto&& body) {
    line.clear();
    line += "{\"kind\":";
    appendJsonString(line, kind);
    line += ",\"name\":";
    appendJsonString(line, key.name);
    line += ",\"labels\":";
    line += labelsAsJson(key.labels);
    body(line);
    line += "}";
    out << line << '\n';
  };
  for (const auto& [key, c] : counters_) {
    emit("counter", key, [&](std::string& l) {
      l += ",\"value\":" + std::to_string(c->value());
    });
  }
  for (const auto& [key, g] : gauges_) {
    emit("gauge", key, [&](std::string& l) {
      l += ",\"value\":";
      appendJsonNumber(l, g->value());
    });
  }
  for (const auto& [key, h] : histograms_) {
    emit("histogram", key, [&](std::string& l) {
      l += ",\"count\":" + std::to_string(h->count());
      l += ",\"sum\":";
      appendJsonNumber(l, h->sum());
      l += ",\"min\":";
      appendJsonNumber(l, h->min());
      l += ",\"max\":";
      appendJsonNumber(l, h->max());
      l += ",\"p50\":";
      appendJsonNumber(l, h->quantile(0.5));
      l += ",\"p95\":";
      appendJsonNumber(l, h->quantile(0.95));
      l += ",\"p99\":";
      appendJsonNumber(l, h->quantile(0.99));
    });
  }
}

void MetricsRegistry::writeCsv(std::ostream& out) const {
  out << "kind,name,labels,field,value\n";
  for (const auto& [key, c] : counters_) {
    out << "counter," << key.name << ',' << labelsAsCsv(key.labels) << ",value," << c->value()
        << '\n';
  }
  for (const auto& [key, g] : gauges_) {
    out << "gauge," << key.name << ',' << labelsAsCsv(key.labels) << ",value," << g->value()
        << '\n';
  }
  for (const auto& [key, h] : histograms_) {
    const std::string prefix =
        "histogram," + key.name + ',' + labelsAsCsv(key.labels) + ',';
    out << prefix << "count," << h->count() << '\n';
    out << prefix << "sum," << h->sum() << '\n';
    out << prefix << "min," << h->min() << '\n';
    out << prefix << "max," << h->max() << '\n';
    out << prefix << "p50," << h->quantile(0.5) << '\n';
    out << prefix << "p95," << h->quantile(0.95) << '\n';
    out << prefix << "p99," << h->quantile(0.99) << '\n';
  }
}

}  // namespace roia::obs
