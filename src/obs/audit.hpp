// RMS decision audit log: one record per Strategy::decide() (plus one per
// crash recovery), capturing the ZoneView inputs the strategy saw (n, m, l),
// the model-predicted vs. measured tick duration, which Eq. (2)/(3)/(5)
// threshold fired, the chosen action and the alternatives it rejected.
// Exported as JSONL, one self-contained object per line, so a chaos or
// Fig. 8 run can be replayed decision by decision.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace roia::obs {

struct AuditRecord {
  SimTime at{};
  ZoneId zone{};
  std::string strategy;

  // ZoneView inputs (paper notation: n users, m NPCs, l replicas).
  std::size_t users{0};
  std::size_t npcs{0};
  std::size_t replicas{0};
  std::size_t pendingStarts{0};
  double measuredAvgTickMs{0.0};
  double measuredP95TickMs{0.0};
  double measuredMaxTickMs{0.0};
  /// T(l, n, m) from the fitted model; negative when the strategy has none.
  double predictedTickMs{-1.0};

  /// Which threshold justified the action: "eq2:..." (n_max), "eq3:..."
  /// (l_max), "eq5:..." (migration budgets), "detector:..." (crash
  /// recovery), or "none".
  std::string threshold{"none"};
  /// "add_replica", "substitute_server", "remove_server", "migrate_only",
  /// "recover_crash" or "none".
  std::string action{"none"};
  std::size_t migrationsOrdered{0};
  /// Actions considered and not taken, each with its reason.
  std::vector<std::string> rejected;
  std::string rationale;
};

class AuditLog {
 public:
  void setEnabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(AuditRecord record);

  [[nodiscard]] const std::vector<AuditRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  void writeJsonl(std::ostream& out) const;
  [[nodiscard]] static std::string toJson(const AuditRecord& record);

 private:
  bool enabled_{false};
  std::vector<AuditRecord> records_;
};

}  // namespace roia::obs
