// Causal protocol tracing: every multi-step control protocol (zone handoff,
// migration, graceful drain, crash recovery, admission refuse+backoff)
// carries a propagated trace id — allocated at the initiator, shipped in
// the existing reliable messages, echoed in the acks — so the shared
// telemetry context can stitch the begin / per-phase / end marks back into
// one causal record even when they happen on different servers.
//
// The tracker publishes into the MetricsRegistry it is bound to, so the
// existing exporters cover protocols for free:
//   roia_protocol_e2e_ms{protocol=}            end-to-end latency histogram
//   roia_protocol_phase_ms{protocol=,phase=}   per-phase breakdown
//   roia_protocol_outcomes_total{protocol=,outcome=}
//
// Zero-cost-observer contract: trace ids are *always* allocated and carried
// in message bytes (so the wire image never depends on whether telemetry is
// attached); only the begin/phase/end recording calls are telemetry-gated.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string_view>

#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace roia::obs {

enum class Protocol : std::uint8_t {
  kMigration = 0,
  kZoneHandoff,
  kGracefulDrain,
  kCrashRecovery,
  kAdmissionRetry,
};
inline constexpr std::size_t kProtocolCount = 5;

enum class ProtocolOutcome : std::uint8_t {
  kCompleted = 0,
  kSuperseded,
  kCrashed,
  kDeadlineExpired,
};
inline constexpr std::size_t kProtocolOutcomeCount = 4;

[[nodiscard]] const char* protocolName(Protocol p);
[[nodiscard]] const char* protocolOutcomeName(ProtocolOutcome o);

// --- trace-id derivation helpers -----------------------------------------
// Ids are pure functions of deterministic simulation state (initiator id +
// a monotone per-initiator sequence, or the simulated time of the
// triggering event), so a run allocates the same ids with telemetry on or
// off. The top byte tags the allocator family to keep the spaces disjoint.

/// Server-initiated protocols (migration / zone handoff): initiator server
/// id + its monotone protocol sequence number.
[[nodiscard]] constexpr std::uint64_t protocolTraceId(std::uint64_t server, std::uint64_t seq) {
  return (0x50ULL << 56) | ((server & 0xFFFFFULL) << 36) | (seq & 0xFFFFFFFFFULL);
}
/// Graceful drain of `server`, identified by the preemption-notice time.
[[nodiscard]] constexpr std::uint64_t drainTraceId(std::uint64_t server, std::int64_t atMicros) {
  return (0x44ULL << 56) | ((server & 0xFFFFFULL) << 36) |
         (static_cast<std::uint64_t>(atMicros) & 0xFFFFFFFFFULL);
}
/// Crash recovery of `server`, identified by the detection time.
[[nodiscard]] constexpr std::uint64_t recoveryTraceId(std::uint64_t server, std::int64_t atMicros) {
  return (0x52ULL << 56) | ((server & 0xFFFFFULL) << 36) |
         (static_cast<std::uint64_t>(atMicros) & 0xFFFFFFFFFULL);
}
/// Admission refuse+backoff wave, identified by the cumulative veto count
/// at the wave's first refusal.
[[nodiscard]] constexpr std::uint64_t admissionTraceId(std::uint64_t vetoSeq) {
  return (0x41ULL << 56) | (vetoSeq & 0xFFFFFFFFFFFFFFULL);
}

/// Stitches distributed begin / phase / end marks into per-protocol
/// latency histograms and outcome counters. Not thread-safe by itself —
/// like the rest of the telemetry context it relies on the global
/// serial-override when shared across sweep configs.
class ProtocolTracker {
 public:
  /// Binds the output instruments. Must be called before any recording;
  /// the owning Telemetry does this in its constructor.
  void bindMetrics(MetricsRegistry* metrics);

  /// Opens a protocol instance. A duplicate begin for a live id closes the
  /// old instance as superseded first.
  void begin(Protocol p, std::uint64_t traceId, SimTime at);

  /// Marks a named phase boundary: records the time since the previous
  /// mark (begin or phase) under roia_protocol_phase_ms{phase=name}.
  /// Unknown ids are ignored (the begin happened outside this context).
  void phase(Protocol p, std::uint64_t traceId, SimTime at, std::string_view name);

  /// Closes a protocol instance; returns the end-to-end latency in
  /// simulated milliseconds, or nullopt for an unknown id.
  std::optional<double> end(Protocol p, std::uint64_t traceId, SimTime at,
                            ProtocolOutcome outcome);

  /// Instances begun and not yet ended (e.g. initiator crashed mid-flight).
  [[nodiscard]] std::size_t openCount() const { return open_.size(); }
  [[nodiscard]] std::uint64_t outcomeCount(Protocol p, ProtocolOutcome o) const;
  /// The end-to-end histogram, or nullptr before the first end() for `p`.
  [[nodiscard]] const LogHistogram* latencyHistogram(Protocol p) const;

  /// One summary JSON object per protocol per line (count, p50/p95/p99,
  /// outcome counts, open instances).
  void writeJsonl(std::ostream& out) const;

 private:
  struct Open {
    Protocol protocol{};
    SimTime startedAt{};
    SimTime lastMark{};
  };

  [[nodiscard]] LogHistogram& e2eHistogram(Protocol p);

  MetricsRegistry* metrics_{nullptr};
  std::map<std::uint64_t, Open> open_;
  std::array<LogHistogram*, kProtocolCount> e2e_{};
  std::array<std::array<std::uint64_t, kProtocolOutcomeCount>, kProtocolCount> outcomes_{};
};

}  // namespace roia::obs
