#include "obs/audit.hpp"

#include <ostream>

#include "obs/json.hpp"

namespace roia::obs {

void AuditLog::record(AuditRecord record) {
  if (!enabled_) return;
  records_.push_back(std::move(record));
}

std::string AuditLog::toJson(const AuditRecord& r) {
  std::string out = "{\"t_s\":";
  appendJsonNumber(out, r.at.asSeconds());
  out += ",\"zone\":" + std::to_string(r.zone.value);
  out += ",\"strategy\":";
  appendJsonString(out, r.strategy);
  out += ",\"inputs\":{\"n\":" + std::to_string(r.users);
  out += ",\"m\":" + std::to_string(r.npcs);
  out += ",\"l\":" + std::to_string(r.replicas);
  out += ",\"pending_starts\":" + std::to_string(r.pendingStarts);
  out += ",\"tick_avg_ms\":";
  appendJsonNumber(out, r.measuredAvgTickMs);
  out += ",\"tick_p95_ms\":";
  appendJsonNumber(out, r.measuredP95TickMs);
  out += ",\"tick_max_ms\":";
  appendJsonNumber(out, r.measuredMaxTickMs);
  out += ",\"tick_predicted_ms\":";
  appendJsonNumber(out, r.predictedTickMs);
  out += "},\"threshold\":";
  appendJsonString(out, r.threshold);
  out += ",\"action\":";
  appendJsonString(out, r.action);
  out += ",\"migrations_ordered\":" + std::to_string(r.migrationsOrdered);
  out += ",\"rejected\":[";
  for (std::size_t i = 0; i < r.rejected.size(); ++i) {
    if (i > 0) out.push_back(',');
    appendJsonString(out, r.rejected[i]);
  }
  out += "],\"rationale\":";
  appendJsonString(out, r.rationale);
  out += "}";
  return out;
}

void AuditLog::writeJsonl(std::ostream& out) const {
  for (const AuditRecord& r : records_) out << toJson(r) << '\n';
}

}  // namespace roia::obs
