#include "obs/protocol.hpp"

#include <ostream>
#include <string>

#include "obs/json.hpp"

namespace roia::obs {

namespace {

// Protocol latencies span sub-millisecond acks to multi-second recovery
// windows; the wide geometric range keeps both ends resolvable.
constexpr LogHistogram::Config kLatencyConfig{1e-2, 1e6, 1.0905077326652577};

constexpr std::array<const char*, kProtocolCount> kProtocolNames = {
    "migration", "zone_handoff", "graceful_drain", "crash_recovery", "admission_retry"};
constexpr std::array<const char*, kProtocolOutcomeCount> kOutcomeNames = {
    "completed", "superseded", "crashed", "deadline_expired"};

}  // namespace

const char* protocolName(Protocol p) { return kProtocolNames.at(static_cast<std::size_t>(p)); }

const char* protocolOutcomeName(ProtocolOutcome o) {
  return kOutcomeNames.at(static_cast<std::size_t>(o));
}

void ProtocolTracker::bindMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }

LogHistogram& ProtocolTracker::e2eHistogram(Protocol p) {
  const auto index = static_cast<std::size_t>(p);
  if (e2e_.at(index) == nullptr) {
    e2e_.at(index) = &metrics_->histogram("roia_protocol_e2e_ms",
                                          {{"protocol", protocolName(p)}}, kLatencyConfig);
  }
  return *e2e_.at(index);
}

void ProtocolTracker::begin(Protocol p, std::uint64_t traceId, SimTime at) {
  if (metrics_ == nullptr) return;
  const auto it = open_.find(traceId);
  if (it != open_.end()) end(it->second.protocol, traceId, at, ProtocolOutcome::kSuperseded);
  open_[traceId] = Open{p, at, at};
}

void ProtocolTracker::phase(Protocol p, std::uint64_t traceId, SimTime at,
                            std::string_view name) {
  if (metrics_ == nullptr) return;
  const auto it = open_.find(traceId);
  if (it == open_.end() || it->second.protocol != p) return;
  metrics_
      ->histogram("roia_protocol_phase_ms",
                  {{"protocol", protocolName(p)}, {"phase", std::string(name)}}, kLatencyConfig)
      .add((at - it->second.lastMark).asMillis());
  it->second.lastMark = at;
}

std::optional<double> ProtocolTracker::end(Protocol p, std::uint64_t traceId, SimTime at,
                                           ProtocolOutcome outcome) {
  if (metrics_ == nullptr) return std::nullopt;
  const auto it = open_.find(traceId);
  if (it == open_.end() || it->second.protocol != p) return std::nullopt;
  const double e2eMs = (at - it->second.startedAt).asMillis();
  open_.erase(it);
  e2eHistogram(p).add(e2eMs);
  ++outcomes_.at(static_cast<std::size_t>(p)).at(static_cast<std::size_t>(outcome));
  metrics_
      ->counter("roia_protocol_outcomes_total",
                {{"protocol", protocolName(p)}, {"outcome", protocolOutcomeName(outcome)}})
      .increment();
  return e2eMs;
}

std::uint64_t ProtocolTracker::outcomeCount(Protocol p, ProtocolOutcome o) const {
  return outcomes_.at(static_cast<std::size_t>(p)).at(static_cast<std::size_t>(o));
}

const LogHistogram* ProtocolTracker::latencyHistogram(Protocol p) const {
  return e2e_.at(static_cast<std::size_t>(p));
}

void ProtocolTracker::writeJsonl(std::ostream& out) const {
  std::array<std::size_t, kProtocolCount> openByProtocol{};
  for (const auto& [id, open] : open_) {
    ++openByProtocol.at(static_cast<std::size_t>(open.protocol));
  }
  std::string line;
  for (std::size_t i = 0; i < kProtocolCount; ++i) {
    const LogHistogram* h = e2e_.at(i);
    line.clear();
    line += "{\"protocol\":";
    appendJsonString(line, kProtocolNames.at(i));
    line += ",\"count\":" + std::to_string(h != nullptr ? h->count() : 0);
    line += ",\"p50_ms\":";
    appendJsonNumber(line, h != nullptr ? h->quantile(0.5) : 0.0);
    line += ",\"p95_ms\":";
    appendJsonNumber(line, h != nullptr ? h->quantile(0.95) : 0.0);
    line += ",\"p99_ms\":";
    appendJsonNumber(line, h != nullptr ? h->quantile(0.99) : 0.0);
    line += ",\"outcomes\":{";
    for (std::size_t o = 0; o < kProtocolOutcomeCount; ++o) {
      if (o != 0) line.push_back(',');
      appendJsonString(line, kOutcomeNames.at(o));
      line += ":" + std::to_string(outcomes_.at(i).at(o));
    }
    line += "},\"open\":" + std::to_string(openByProtocol.at(i));
    line += "}";
    out << line << '\n';
  }
}

}  // namespace roia::obs
