#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>

#include "obs/json.hpp"

namespace roia::obs {

std::uint32_t Tracer::track(std::string_view name) {
  for (std::uint32_t i = 0; i < trackNames_.size(); ++i) {
    if (trackNames_[i] == name) return i;
  }
  trackNames_.emplace_back(name);
  return static_cast<std::uint32_t>(trackNames_.size() - 1);
}

void Tracer::push(TraceEvent event) {
  if (events_.size() >= maxEvents_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void Tracer::beginSpan(std::uint32_t tid, SimTime ts, std::string_view name,
                       std::string_view category,
                       std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled_) return;
  push(TraceEvent{'B', tid, ts.micros, 0, std::string(name), std::string(category),
                  std::move(args)});
}

void Tracer::endSpan(std::uint32_t tid, SimTime ts) {
  if (!enabled_) return;
  push(TraceEvent{'E', tid, ts.micros, 0, {}, {}, {}});
}

void Tracer::completeSpan(std::uint32_t tid, SimTime begin, SimDuration duration,
                          std::string_view name, std::string_view category,
                          std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled_) return;
  beginSpan(tid, begin, name, category, std::move(args));
  endSpan(tid, begin + duration);
}

void Tracer::instant(std::uint32_t tid, SimTime ts, std::string_view name,
                     std::string_view category) {
  if (!enabled_) return;
  push(TraceEvent{'i', tid, ts.micros, 0, std::string(name), std::string(category), {}});
}

void Tracer::flowStart(std::uint32_t tid, SimTime ts, std::uint64_t flowId, std::string_view name,
                       std::string_view category) {
  if (!enabled_) return;
  push(TraceEvent{'s', tid, ts.micros, flowId, std::string(name), std::string(category), {}});
}

void Tracer::flowFinish(std::uint32_t tid, SimTime ts, std::uint64_t flowId, std::string_view name,
                        std::string_view category) {
  if (!enabled_) return;
  push(TraceEvent{'f', tid, ts.micros, flowId, std::string(name), std::string(category), {}});
}

void Tracer::clear() {
  events_.clear();
  dropped_ = 0;
}

void Tracer::writeJson(std::ostream& out) const {
  // Stable sort: per-track append order (already time-ordered) survives, so
  // a B never trails its E and the whole file is non-decreasing in ts —
  // cross-track interleavings (an overrunning tick spanning past a peer's
  // next event) would otherwise break that.
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(events_.size());
  for (const TraceEvent& e : events_) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) { return a->tsMicros < b->tsMicros; });

  out << "{\"traceEvents\":[";
  std::string line;
  bool first = true;
  // Track-name metadata events first (ts-less, allowed anywhere).
  for (std::uint32_t tid = 0; tid < trackNames_.size(); ++tid) {
    line.clear();
    line += first ? "" : ",";
    first = false;
    line += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    line += std::to_string(tid);
    line += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    appendJsonString(line, trackNames_[tid]);
    line += "}}";
    out << '\n' << line;
  }
  for (const TraceEvent* e : ordered) {
    line.clear();
    line += first ? "" : ",";
    first = false;
    line += "{\"ph\":\"";
    line.push_back(e->phase);
    line += "\",\"pid\":1,\"tid\":";
    line += std::to_string(e->tid);
    line += ",\"ts\":";
    line += std::to_string(e->tsMicros);
    if (e->phase != 'E') {
      line += ",\"name\":";
      appendJsonString(line, e->name);
      if (!e->category.empty()) {
        line += ",\"cat\":";
        appendJsonString(line, e->category);
      }
    }
    if (e->phase == 's' || e->phase == 'f') {
      line += ",\"id\":";
      line += std::to_string(e->flowId);
      if (e->phase == 'f') line += ",\"bp\":\"e\"";
    }
    if (e->phase == 'i') line += ",\"s\":\"t\"";
    if (!e->args.empty()) {
      line += ",\"args\":{";
      bool firstArg = true;
      for (const auto& [k, v] : e->args) {
        if (!firstArg) line.push_back(',');
        firstArg = false;
        appendJsonString(line, k);
        line.push_back(':');
        appendJsonString(line, v);
      }
      line.push_back('}');
    }
    line += "}";
    out << '\n' << line;
  }
  if (dropped_ > 0) {
    line.clear();
    line += first ? "" : ",";
    line += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"trace_truncated\",\"args\":{\"dropped_events\":\"";
    line += std::to_string(dropped_);
    line += "\"}}";
    out << '\n' << line;
  }
  out << "\n]}\n";
}

}  // namespace roia::obs
