// The telemetry context: one metrics registry + event tracer + RMS audit
// log shared by a cluster, its servers, the monitoring collector, the
// reliable transports, the fault injector and the RMS manager. Components
// hold a `Telemetry*` that is nullptr when observability is off, so the
// disabled path is a single pointer check and recording never charges
// simulated CPU cost — telemetry observes the experiment, it is not part
// of it.
//
// Benches use the process-global instance (activated from the ROIA_*_OUT
// environment knobs); tests construct their own to stay isolated.
#pragma once

#include <cstddef>

#include "obs/audit.hpp"
#include "obs/drift.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/protocol.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"

namespace roia::obs {

class Telemetry {
 public:
  Telemetry();

  MetricsRegistry metrics;
  Tracer tracer;
  AuditLog audit;
  /// Causal tracing of multi-step control protocols; publishes into
  /// `metrics` (bound by the constructor).
  ProtocolTracker protocols;
  /// Declarative objectives + burn-rate alerting. Empty (no objectives) by
  /// default; instrumented components no-op until objectives are installed.
  SloEngine slo;
  /// Eq.2/Eq.4 predicted-vs-measured tick-time residuals.
  DriftMonitor drift;
  /// Per-server ring of recent ticks, dumped on SLO breach or crash.
  FlightRecorder flight;

  /// Synthesize tick/phase spans only every Nth tick per server (1 = every
  /// tick). Flow and RMS events are never sampled out.
  std::size_t traceTickSampleEvery{1};

  /// The process-global instance used by benches. Inactive until
  /// setActive(true); components fall back to it only when active.
  static Telemetry& global();
  /// &global() when activated, nullptr otherwise — the default telemetry
  /// hook of a Cluster constructed without an explicit context.
  static Telemetry* globalIfActive();

  /// Activating the *global* instance also forces sweep fan-out serial
  /// (par::setSerialOverride): the global sidecars aggregate across sweep
  /// configs and only the legacy serial order reproduces them exactly.
  void setActive(bool active);
  [[nodiscard]] bool active() const { return active_; }

 private:
  bool active_{false};
};

}  // namespace roia::obs
