// Model-drift monitor: per-server (or per-zone) residuals of the Eq.2/Eq.4
// predicted tick time against the measured tick time. The paper's control
// loop is only as good as its predictor, so this is the empirical hook the
// USL-fit roadmap item needs: residual histograms, coefficient of
// variation, and a drift event when the windowed mean |relative error|
// leaves the configured band — the signal to re-fit the model.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace roia::obs {

struct DriftConfig {
  /// Windowed mean |relative error| beyond this fires a drift event.
  double relErrorBand{0.5};
  /// Sliding window length (samples) for the drift test.
  std::size_t windowSamples{64};
  /// Lifetime samples required before drift can fire for a key.
  std::uint64_t minSamples{64};
  /// Re-arm delay per key after a drift event.
  SimDuration cooldown{SimDuration::seconds(10)};
};

struct DriftEvent {
  std::string key;
  /// Mean |measured - predicted| / measured over the window at fire time.
  double windowMeanAbsRelError{0.0};
  double band{0.0};
  std::uint64_t samples{0};
  SimTime at{};
};

class DriftMonitor {
 public:
  void setConfig(DriftConfig config) { config_ = config; }
  [[nodiscard]] const DriftConfig& config() const { return config_; }

  /// Feeds one predicted-vs-measured pair (milliseconds); returns a drift
  /// event when the windowed error leaves the band (outside the cooldown).
  std::optional<DriftEvent> record(std::string_view key, double predictedMs, double measuredMs,
                                   SimTime at);

  [[nodiscard]] std::uint64_t sampleCount(std::string_view key) const;
  /// |residual| histogram for a key; nullptr before its first sample.
  [[nodiscard]] const LogHistogram* residualHistogram(std::string_view key) const;
  /// Coefficient of variation of the residual: stddev(residual) over mean
  /// measured tick time. 0 before two samples.
  [[nodiscard]] double residualCov(std::string_view key) const;
  [[nodiscard]] std::uint64_t driftEventCount() const { return driftEvents_; }

  /// One JSON object per key per line: residual moments, CoV, |residual|
  /// percentiles, windowed relative error, drift event count.
  void writeJsonl(std::ostream& out) const;

 private:
  struct State {
    std::uint64_t count{0};
    double sumResidual{0.0};
    double sumResidualSq{0.0};
    double sumMeasured{0.0};
    LogHistogram absResidualMs;
    std::deque<double> window;  // recent |relative error|
    double windowSum{0.0};
    std::uint64_t drifts{0};
    /// Only meaningful when drifts > 0.
    SimTime lastDrift{};

    State();
  };

  DriftConfig config_;
  std::map<std::string, State, std::less<>> states_;
  std::uint64_t driftEvents_{0};
};

}  // namespace roia::obs
