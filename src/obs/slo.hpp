// Declarative service-level objectives with windowed compliance and
// multi-window burn-rate alerting. Each objective promises that a target
// fraction of samples stays on the good side of a threshold (tick ≤ 40 ms,
// update rate ≥ 25 Hz, handoff/recovery latency bounds); the engine keeps a
// short and a long sliding window per (objective, key) and fires a breach
// only when *both* windows burn error budget faster than their thresholds —
// the classic multi-window rule that makes alerts both fast on cliffs and
// immune to single-sample blips. The caller (server / RMS manager) turns
// the returned breach into an `slo_breach` audit record carrying the Eq.2
// state at breach time, because only the caller has that state.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace roia::obs {

struct SloObjective {
  std::string name;
  std::string description;
  /// Good-sample predicate: value <= threshold when upperBound, else >=.
  double threshold{0.0};
  bool upperBound{true};
  /// Promised fraction of good samples (the SLO target, e.g. 0.99).
  double target{0.99};
  SimDuration shortWindow{SimDuration::seconds(5)};
  SimDuration longWindow{SimDuration::seconds(60)};
  /// Burn-rate = badFraction / errorBudget; breach needs both windows hot.
  double fastBurn{14.4};
  double slowBurn{3.0};
  /// Minimum samples in the short window before a breach can fire.
  std::uint64_t minSamples{8};
  /// Re-arm delay per (objective, key) after a breach fires.
  SimDuration cooldown{SimDuration::seconds(10)};
};

/// Returned by record() on the transition into breach.
struct SloBreach {
  std::string objective;
  std::string key;
  double value{0.0};
  double shortBurn{0.0};
  double longBurn{0.0};
  double shortCompliance{1.0};
  double longCompliance{1.0};
  SimTime at{};
};

// Canonical objective names installed by installDefaultObjectives();
// instrumented components look their handles up by these names.
inline constexpr const char* kSloTickTime = "tick_time";
inline constexpr const char* kSloUpdateRate = "update_rate";
inline constexpr const char* kSloHandoffLatency = "handoff_latency";
inline constexpr const char* kSloRecoveryLatency = "recovery_latency";

class SloEngine {
 public:
  /// Registers an objective; the returned handle is stable for the engine's
  /// lifetime. Duplicate names replace the definition (same handle).
  std::size_t addObjective(SloObjective objective);
  [[nodiscard]] std::optional<std::size_t> findHandle(std::string_view name) const;
  [[nodiscard]] std::size_t objectiveCount() const { return objectives_.size(); }
  [[nodiscard]] const SloObjective& objective(std::size_t handle) const {
    return objectives_.at(handle);
  }

  /// Feeds one sample for (objective, key); returns a breach when the
  /// multi-window burn rule fires (outside the cooldown).
  std::optional<SloBreach> record(std::size_t handle, std::string_view key, double value,
                                  SimTime at);

  [[nodiscard]] std::uint64_t breachCount() const { return breaches_; }

  /// One JSON object per (objective, key) per line: cumulative compliance,
  /// current window burn rates, breach count.
  void writeJsonl(std::ostream& out) const;

 private:
  struct Window {
    std::deque<std::pair<SimTime, bool>> samples;  // (at, bad)
    std::uint64_t bad{0};

    void push(SimTime at, bool isBad);
    void trim(SimTime now, SimDuration span);
  };

  struct State {
    Window shortWin;
    Window longWin;
    std::uint64_t total{0};
    std::uint64_t good{0};
    std::uint64_t breaches{0};
    /// Only meaningful when breaches > 0.
    SimTime lastBreach{};
  };

  std::vector<SloObjective> objectives_;
  std::map<std::pair<std::size_t, std::string>, State> states_;
  std::uint64_t breaches_{0};
};

/// The paper-derived default objective set: tick within the 40 ms QoS
/// budget, client update rate at the 25 Hz floor, handoff within ~10 ticks
/// and crash recovery within the detector + replica-spin-up envelope.
void installDefaultObjectives(SloEngine& engine, double tickBudgetMs = 40.0);

}  // namespace roia::obs
