// roia-audit-event-registry — the single registry of audit event (action)
// names. Every audit record emitted anywhere in the tree must take its
// `action` from this vocabulary; the roia-lint `audit-vocabulary` rule
// flags any emitted literal that is not registered here. Keeping the
// vocabulary closed makes the audit log greppable and lets downstream
// tooling (health_report.py, dashboards) switch on event names without
// chasing free-form strings.
#pragma once

namespace roia::obs::events {

// RMS strategy actions (Eq.2/3/5 driven decisions).
inline constexpr const char* kNone = "none";
inline constexpr const char* kAddReplica = "add_replica";
inline constexpr const char* kSubstituteServer = "substitute_server";
inline constexpr const char* kRemoveServer = "remove_server";
inline constexpr const char* kMigrateOnly = "migrate_only";
inline constexpr const char* kZoneHandoff = "zone_handoff";

// Crash detection / preemption lifecycle.
inline constexpr const char* kRecoverCrash = "recover_crash";
inline constexpr const char* kGracefulDrain = "graceful_drain";
inline constexpr const char* kDrainComplete = "drain_complete";

// Cluster-edge admission control.
inline constexpr const char* kAdmissionThrottle = "admission_throttle";

// Per-server overload (degradation ladder).
inline constexpr const char* kDegradeFidelity = "degrade_fidelity";
inline constexpr const char* kShedObservers = "shed_observers";
inline constexpr const char* kReadmitObservers = "readmit_observers";

// Observability v2: SLO engine, model-drift monitor, flight recorder.
inline constexpr const char* kSloBreach = "slo_breach";
inline constexpr const char* kModelDrift = "model_drift";
inline constexpr const char* kFlightDump = "flight_dump";

}  // namespace roia::obs::events
