// Event tracer producing Chrome/Perfetto trace-event JSON keyed by
// *simulated* time: tick spans with one child span per phase, cross-server
// migration / replica-sync flow events, and RMS control-period spans.
// Open the exported file at https://ui.perfetto.dev (or chrome://tracing);
// each server and the RMS appear as their own named track.
//
// All record calls no-op when the tracer is disabled, so an attached but
// disabled tracer costs one branch per call site. Timestamps are simulated
// microseconds, which is exactly the unit the trace-event format expects.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace roia::obs {

/// One trace event (duration begin/end, instant, or flow start/finish).
struct TraceEvent {
  char phase{'i'};  // 'B','E','i','s','f'
  std::uint32_t tid{0};
  std::int64_t tsMicros{0};
  std::uint64_t flowId{0};  // for 's'/'f' events
  std::string name;
  std::string category;
  /// Rendered into the "args" object; values emitted as JSON strings.
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  void setEnabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Caps stored events; once reached, further events are counted as
  /// dropped instead of recorded (exporters report the drop count).
  void setMaxEvents(std::size_t maxEvents) { maxEvents_ = maxEvents; }
  [[nodiscard]] std::uint64_t droppedEvents() const { return dropped_; }

  /// Returns a stable tid for `name`, registering the track (and its
  /// thread_name metadata) on first use.
  std::uint32_t track(std::string_view name);

  void beginSpan(std::uint32_t tid, SimTime ts, std::string_view name, std::string_view category,
                 std::vector<std::pair<std::string, std::string>> args = {});
  void endSpan(std::uint32_t tid, SimTime ts);
  /// Convenience: a [begin, begin+duration] span as a matched B/E pair.
  void completeSpan(std::uint32_t tid, SimTime begin, SimDuration duration, std::string_view name,
                    std::string_view category,
                    std::vector<std::pair<std::string, std::string>> args = {});
  void instant(std::uint32_t tid, SimTime ts, std::string_view name, std::string_view category);
  /// Flow events bind cross-track arrows to the enclosing spans; start and
  /// finish must share `flowId`.
  void flowStart(std::uint32_t tid, SimTime ts, std::uint64_t flowId, std::string_view name,
                 std::string_view category);
  void flowFinish(std::uint32_t tid, SimTime ts, std::uint64_t flowId, std::string_view name,
                  std::string_view category);

  [[nodiscard]] std::size_t eventCount() const { return events_.size(); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  void clear();

  /// Chrome trace-event JSON: {"traceEvents":[...]}. Events are emitted in
  /// non-decreasing timestamp order (stable-sorted, so per-track B/E
  /// nesting is preserved).
  void writeJson(std::ostream& out) const;

 private:
  void push(TraceEvent event);

  bool enabled_{false};
  std::size_t maxEvents_{1500000};
  std::uint64_t dropped_{0};
  std::vector<TraceEvent> events_;
  std::vector<std::string> trackNames_;  // index == tid
};

/// Flow-id schemes shared by the two ends of a cross-server event. Both
/// sides must derive the same id from information they both hold.
[[nodiscard]] constexpr std::uint64_t migrationFlowId(ClientId client) {
  return 0x4D49470000000000ULL ^ client.value;  // "MIG"
}
[[nodiscard]] constexpr std::uint64_t replicaSyncFlowId(NodeId fromNode, std::uint64_t serverTick) {
  return 0x5253000000000000ULL ^ (fromNode.value << 32) ^ serverTick;  // "RS"
}

}  // namespace roia::obs
