#include "obs/slo.hpp"

#include <algorithm>
#include <ostream>

#include "obs/json.hpp"

namespace roia::obs {

namespace {

// With target = 1.0 the error budget is zero and any bad sample would burn
// infinitely fast; the floor keeps burn rates finite and the breach rule
// meaningful ("essentially every sample must be good").
constexpr double kMinErrorBudget = 1e-9;

double burnRate(const std::uint64_t bad, const std::uint64_t total, const double target) {
  if (total == 0) return 0.0;
  const double badFraction = static_cast<double>(bad) / static_cast<double>(total);
  return badFraction / std::max(kMinErrorBudget, 1.0 - target);
}

double compliance(const std::uint64_t bad, const std::uint64_t total) {
  if (total == 0) return 1.0;
  return static_cast<double>(total - bad) / static_cast<double>(total);
}

}  // namespace

void SloEngine::Window::push(SimTime at, bool isBad) {
  samples.emplace_back(at, isBad);
  if (isBad) ++bad;
}

void SloEngine::Window::trim(SimTime now, SimDuration span) {
  const SimTime cutoff = now - span;
  while (!samples.empty() && samples.front().first < cutoff) {
    if (samples.front().second) --bad;
    samples.pop_front();
  }
}

std::size_t SloEngine::addObjective(SloObjective objective) {
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    if (objectives_[i].name == objective.name) {
      objectives_[i] = std::move(objective);
      return i;
    }
  }
  objectives_.push_back(std::move(objective));
  return objectives_.size() - 1;
}

std::optional<std::size_t> SloEngine::findHandle(std::string_view name) const {
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    if (objectives_[i].name == name) return i;
  }
  return std::nullopt;
}

std::optional<SloBreach> SloEngine::record(std::size_t handle, std::string_view key,
                                           double value, SimTime at) {
  const SloObjective& obj = objectives_.at(handle);
  State& state = states_[{handle, std::string(key)}];

  const bool good = obj.upperBound ? value <= obj.threshold : value >= obj.threshold;
  ++state.total;
  if (good) ++state.good;
  state.shortWin.push(at, !good);
  state.longWin.push(at, !good);
  state.shortWin.trim(at, obj.shortWindow);
  state.longWin.trim(at, obj.longWindow);

  if (good) return std::nullopt;
  if (state.shortWin.samples.size() < obj.minSamples) return std::nullopt;
  const double shortBurn =
      burnRate(state.shortWin.bad, state.shortWin.samples.size(), obj.target);
  const double longBurn = burnRate(state.longWin.bad, state.longWin.samples.size(), obj.target);
  if (shortBurn < obj.fastBurn || longBurn < obj.slowBurn) return std::nullopt;
  // Cooldown only applies after a first breach; subtracting from a sentinel
  // "never" time would overflow.
  if (state.breaches > 0 && at - state.lastBreach < obj.cooldown) return std::nullopt;

  state.lastBreach = at;
  ++state.breaches;
  ++breaches_;
  SloBreach breach;
  breach.objective = obj.name;
  breach.key = key;
  breach.value = value;
  breach.shortBurn = shortBurn;
  breach.longBurn = longBurn;
  breach.shortCompliance = compliance(state.shortWin.bad, state.shortWin.samples.size());
  breach.longCompliance = compliance(state.longWin.bad, state.longWin.samples.size());
  breach.at = at;
  return breach;
}

void SloEngine::writeJsonl(std::ostream& out) const {
  std::string line;
  for (const auto& [key, state] : states_) {
    const SloObjective& obj = objectives_.at(key.first);
    line.clear();
    line += "{\"objective\":";
    appendJsonString(line, obj.name);
    line += ",\"key\":";
    appendJsonString(line, key.second);
    line += ",\"description\":";
    appendJsonString(line, obj.description);
    line += ",\"threshold\":";
    appendJsonNumber(line, obj.threshold);
    line += ",\"bound\":";
    appendJsonString(line, obj.upperBound ? "upper" : "lower");
    line += ",\"target\":";
    appendJsonNumber(line, obj.target);
    line += ",\"samples\":" + std::to_string(state.total);
    line += ",\"good\":" + std::to_string(state.good);
    line += ",\"compliance\":";
    appendJsonNumber(line, compliance(state.total - state.good, state.total));
    line += ",\"short_burn\":";
    appendJsonNumber(line, burnRate(state.shortWin.bad, state.shortWin.samples.size(), obj.target));
    line += ",\"long_burn\":";
    appendJsonNumber(line, burnRate(state.longWin.bad, state.longWin.samples.size(), obj.target));
    line += ",\"breaches\":" + std::to_string(state.breaches);
    line += "}";
    out << line << '\n';
  }
}

void installDefaultObjectives(SloEngine& engine, double tickBudgetMs) {
  SloObjective tick;
  tick.name = kSloTickTime;
  tick.description = "server tick duration within the QoS budget";
  tick.threshold = tickBudgetMs;
  tick.upperBound = true;
  tick.target = 0.99;
  engine.addObjective(tick);

  SloObjective rate;
  rate.name = kSloUpdateRate;
  rate.description = "client update rate at or above 25 Hz";
  rate.threshold = 25.0;
  rate.upperBound = false;
  rate.target = 0.99;
  engine.addObjective(rate);

  SloObjective handoff;
  handoff.name = kSloHandoffLatency;
  handoff.description = "zone handoff end-to-end within 10 ticks (400 ms)";
  handoff.threshold = 400.0;
  handoff.upperBound = true;
  handoff.target = 0.95;
  handoff.minSamples = 4;
  handoff.fastBurn = 4.0;
  handoff.slowBurn = 2.0;
  engine.addObjective(handoff);

  SloObjective recovery;
  recovery.name = kSloRecoveryLatency;
  recovery.description = "crash recovery (detection to serving replacement) within 5 s";
  recovery.threshold = 5000.0;
  recovery.upperBound = true;
  recovery.target = 0.9;
  recovery.minSamples = 1;
  recovery.fastBurn = 1.0;
  recovery.slowBurn = 1.0;
  engine.addObjective(recovery);
}

}  // namespace roia::obs
