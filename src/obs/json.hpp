// Tiny JSON emission helpers shared by the telemetry exporters. Emission
// only — the repo deliberately has no JSON parser; validation of emitted
// documents lives in the tests and the CI python check.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace roia::obs {

/// Appends `s` as a quoted, escaped JSON string.
inline void appendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Appends a double as a JSON number (finite values only; NaN/inf become 0,
/// which JSON cannot represent).
inline void appendJsonNumber(std::string& out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

}  // namespace roia::obs
