#include "obs/flight.hpp"

#include <algorithm>
#include <ostream>

#include "obs/json.hpp"

namespace roia::obs {

void FlightRecorder::setCapacity(std::size_t framesPerKey) {
  capacity_ = std::max<std::size_t>(1, framesPerKey);
}

FlightRecorder::Ring& FlightRecorder::ring(std::string_view key) {
  auto it = rings_.find(key);
  if (it == rings_.end()) {
    it = rings_.emplace(std::string(key), Ring{}).first;
    it->second.capacity = capacity_;
    it->second.frames.reserve(capacity_);
  }
  return it->second;
}

void FlightRecorder::recordTick(std::string_view key, const FlightFrame& frame) {
  Ring& r = ring(key);
  if (r.frames.size() < r.capacity) {
    r.frames.push_back(frame);
    return;
  }
  r.frames[r.next] = frame;
  r.next = (r.next + 1) % r.capacity;
  r.wrapped = true;
}

void FlightRecorder::note(std::string_view key, SimTime at, std::string_view event) {
  Ring& r = ring(key);
  FlightFrame frame;
  if (!r.frames.empty()) {
    const std::size_t last = r.wrapped || r.next > 0
                                 ? (r.next + r.capacity - 1) % r.capacity
                                 : r.frames.size() - 1;
    frame.tick = r.frames[last].tick;
  }
  frame.atMicros = at.micros;
  frame.event = event;
  recordTick(key, frame);
}

std::vector<FlightFrame> FlightRecorder::Ring::snapshot() const {
  std::vector<FlightFrame> out;
  out.reserve(frames.size());
  if (!wrapped) {
    out.assign(frames.begin(), frames.end());
    return out;
  }
  for (std::size_t i = 0; i < frames.size(); ++i) {
    out.push_back(frames[(next + i) % frames.size()]);
  }
  return out;
}

void FlightRecorder::dump(std::string_view reason, SimTime at) {
  if (dumps_.size() >= maxDumps_) {
    ++droppedDumps_;
    return;
  }
  Dump d;
  d.reason = reason;
  d.atMicros = at.micros;
  d.rings.reserve(rings_.size());
  for (const auto& [key, r] : rings_) {
    d.rings.emplace_back(key, r.snapshot());
  }
  dumps_.push_back(std::move(d));
}

std::size_t FlightRecorder::frameCount(std::string_view key) const {
  const auto it = rings_.find(key);
  return it == rings_.end() ? 0 : it->second.frames.size();
}

void FlightRecorder::writeJsonl(std::ostream& out) const {
  std::string line;
  for (std::size_t dumpIndex = 0; dumpIndex < dumps_.size(); ++dumpIndex) {
    const Dump& d = dumps_[dumpIndex];
    for (const auto& [key, frames] : d.rings) {
      for (const FlightFrame& f : frames) {
        line.clear();
        line += "{\"dump\":" + std::to_string(dumpIndex);
        line += ",\"reason\":";
        appendJsonString(line, d.reason);
        line += ",\"dump_t_s\":";
        appendJsonNumber(line, static_cast<double>(d.atMicros) / 1e6);
        line += ",\"key\":";
        appendJsonString(line, key);
        line += ",\"tick\":" + std::to_string(f.tick);
        line += ",\"t_s\":";
        appendJsonNumber(line, static_cast<double>(f.atMicros) / 1e6);
        line += ",\"dur_ms\":";
        appendJsonNumber(line, f.durationMs);
        line += ",\"predicted_ms\":";
        appendJsonNumber(line, f.predictedMs);
        line += ",\"users\":" + std::to_string(f.users);
        line += ",\"avatars\":" + std::to_string(f.avatars);
        line += ",\"npcs\":" + std::to_string(f.npcs);
        line += ",\"level\":" + std::to_string(f.level);
        line += ",\"event\":";
        appendJsonString(line, f.event);
        line += "}";
        out << line << '\n';
      }
    }
  }
}

}  // namespace roia::obs
