// Flight recorder: a fixed-size per-key (per-server) ring of recent tick
// frames and notable events, snapshotted into an in-memory dump when
// something goes wrong — an SLO breach, a crash — and exported as JSONL for
// post-mortem. The ring records continuously and cheaply (fixed capacity,
// no allocation after warm-up beyond event strings); a dump freezes the
// last N ticks of *every* key so cross-server causality around the trigger
// stays reconstructable. Dumps are capped; further triggers are counted,
// not stored.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace roia::obs {

/// One recorded tick (or event marker) of one key.
struct FlightFrame {
  std::uint64_t tick{0};
  std::int64_t atMicros{0};
  double durationMs{0.0};
  /// Eq.2/4 predicted tick time; negative when no predictor is installed.
  double predictedMs{-1.0};
  std::uint64_t users{0};
  std::uint64_t avatars{0};
  std::uint64_t npcs{0};
  /// Degradation-ladder rung at frame time.
  std::uint64_t level{0};
  /// Empty for plain tick frames; event name for markers.
  std::string event;
};

class FlightRecorder {
 public:
  /// Frames retained per key (default 256) — applies to rings created after
  /// the call.
  void setCapacity(std::size_t framesPerKey);
  /// Dumps retained (default 16); further triggers only count.
  void setMaxDumps(std::size_t maxDumps) { maxDumps_ = maxDumps; }

  void recordTick(std::string_view key, const FlightFrame& frame);
  /// Appends an event marker frame stamped with the ring's last tick.
  void note(std::string_view key, SimTime at, std::string_view event);

  /// Freezes every ring (oldest -> newest) into one dump tagged with the
  /// trigger reason.
  void dump(std::string_view reason, SimTime at);

  [[nodiscard]] std::size_t dumpCount() const { return dumps_.size(); }
  [[nodiscard]] std::uint64_t droppedDumps() const { return droppedDumps_; }
  [[nodiscard]] std::size_t frameCount(std::string_view key) const;

  /// One JSON object per frame per line, tagged with dump index + reason;
  /// deterministic order (dumps in trigger order, keys sorted, frames
  /// oldest first).
  void writeJsonl(std::ostream& out) const;

 private:
  struct Ring {
    std::vector<FlightFrame> frames;
    std::size_t capacity{0};
    std::size_t next{0};
    bool wrapped{false};

    [[nodiscard]] std::vector<FlightFrame> snapshot() const;
  };

  struct Dump {
    std::string reason;
    std::int64_t atMicros{0};
    std::vector<std::pair<std::string, std::vector<FlightFrame>>> rings;
  };

  Ring& ring(std::string_view key);

  std::size_t capacity_{256};
  std::size_t maxDumps_{16};
  std::uint64_t droppedDumps_{0};
  std::map<std::string, Ring, std::less<>> rings_;
  std::vector<Dump> dumps_;
};

}  // namespace roia::obs
