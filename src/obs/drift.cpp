#include "obs/drift.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "obs/json.hpp"

namespace roia::obs {

namespace {

// Residuals live in the same range as tick durations (sub-microsecond to
// seconds, in ms).
constexpr LogHistogram::Config kResidualConfig{1e-6, 1e4, 1.0905077326652577};

// Guards the relative-error division against idle ticks that measure ~0 ms.
constexpr double kMinMeasuredMs = 1e-6;

}  // namespace

DriftMonitor::State::State() : absResidualMs(kResidualConfig) {}

std::optional<DriftEvent> DriftMonitor::record(std::string_view key, double predictedMs,
                                               double measuredMs, SimTime at) {
  if (!std::isfinite(predictedMs) || !std::isfinite(measuredMs)) return std::nullopt;
  auto it = states_.find(key);
  if (it == states_.end()) it = states_.emplace(std::string(key), State{}).first;
  State& state = it->second;

  const double residual = measuredMs - predictedMs;
  const double relError = std::abs(residual) / std::max(kMinMeasuredMs, measuredMs);
  ++state.count;
  state.sumResidual += residual;
  state.sumResidualSq += residual * residual;
  state.sumMeasured += measuredMs;
  state.absResidualMs.add(std::abs(residual));
  state.window.push_back(relError);
  state.windowSum += relError;
  if (state.window.size() > config_.windowSamples) {
    state.windowSum -= state.window.front();
    state.window.pop_front();
  }

  if (state.count < config_.minSamples || state.window.size() < config_.windowSamples) {
    return std::nullopt;
  }
  const double windowMean = state.windowSum / static_cast<double>(state.window.size());
  if (windowMean <= config_.relErrorBand) return std::nullopt;
  // Cooldown only applies after a first event (see SloEngine::record).
  if (state.drifts > 0 && at - state.lastDrift < config_.cooldown) return std::nullopt;

  state.lastDrift = at;
  ++state.drifts;
  ++driftEvents_;
  DriftEvent event;
  event.key = key;
  event.windowMeanAbsRelError = windowMean;
  event.band = config_.relErrorBand;
  event.samples = state.count;
  event.at = at;
  return event;
}

std::uint64_t DriftMonitor::sampleCount(std::string_view key) const {
  const auto it = states_.find(key);
  return it == states_.end() ? 0 : it->second.count;
}

const LogHistogram* DriftMonitor::residualHistogram(std::string_view key) const {
  const auto it = states_.find(key);
  return it == states_.end() ? nullptr : &it->second.absResidualMs;
}

double DriftMonitor::residualCov(std::string_view key) const {
  const auto it = states_.find(key);
  if (it == states_.end() || it->second.count < 2) return 0.0;
  const State& state = it->second;
  const auto n = static_cast<double>(state.count);
  const double mean = state.sumResidual / n;
  const double variance = std::max(0.0, state.sumResidualSq / n - mean * mean);
  const double meanMeasured = state.sumMeasured / n;
  if (meanMeasured <= kMinMeasuredMs) return 0.0;
  return std::sqrt(variance) / meanMeasured;
}

void DriftMonitor::writeJsonl(std::ostream& out) const {
  std::string line;
  for (const auto& [key, state] : states_) {
    const auto n = static_cast<double>(std::max<std::uint64_t>(1, state.count));
    line.clear();
    line += "{\"key\":";
    appendJsonString(line, key);
    line += ",\"count\":" + std::to_string(state.count);
    line += ",\"mean_residual_ms\":";
    appendJsonNumber(line, state.sumResidual / n);
    line += ",\"mean_measured_ms\":";
    appendJsonNumber(line, state.sumMeasured / n);
    line += ",\"cov\":";
    appendJsonNumber(line, residualCov(key));
    line += ",\"abs_residual_p50_ms\":";
    appendJsonNumber(line, state.absResidualMs.quantile(0.5));
    line += ",\"abs_residual_p95_ms\":";
    appendJsonNumber(line, state.absResidualMs.quantile(0.95));
    line += ",\"abs_residual_p99_ms\":";
    appendJsonNumber(line, state.absResidualMs.quantile(0.99));
    line += ",\"window_mean_abs_rel_error\":";
    appendJsonNumber(line, state.window.empty()
                               ? 0.0
                               : state.windowSum / static_cast<double>(state.window.size()));
    line += ",\"drift_events\":" + std::to_string(state.drifts);
    line += "}";
    out << line << '\n';
  }
}

}  // namespace roia::obs
