#include "obs/telemetry.hpp"

namespace roia::obs {

Telemetry& Telemetry::global() {
  static Telemetry instance;
  return instance;
}

Telemetry* Telemetry::globalIfActive() {
  Telemetry& g = global();
  return g.active() ? &g : nullptr;
}

}  // namespace roia::obs
