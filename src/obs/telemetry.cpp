#include "obs/telemetry.hpp"

#include "common/sweep.hpp"

namespace roia::obs {

Telemetry::Telemetry() { protocols.bindMetrics(&metrics); }

Telemetry& Telemetry::global() {
  static Telemetry instance;
  return instance;
}

void Telemetry::setActive(bool active) {
  active_ = active;
  if (this == &global()) par::setSerialOverride(active);
}

Telemetry* Telemetry::globalIfActive() {
  Telemetry& g = global();
  return g.active() ? &g : nullptr;
}

}  // namespace roia::obs
