// Simulated network substrate.
//
// Models the cluster interconnect and client links as point-to-point
// channels with configurable propagation latency and bandwidth. Without a
// FaultInjector attached the channels are reliable and in-order; with one,
// frames can be dropped, duplicated, jittered, reordered or partitioned
// away (see net/fault.hpp). Delivery is driven by the discrete-event
// simulation, so message interleavings are deterministic either way.
// Per-link and per-node traffic statistics feed the bandwidth analysis
// mentioned in the paper's related-work discussion (Kim et al.: asymmetry
// of in/out server traffic).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "serialize/message.hpp"
#include "sim/simulation.hpp"

namespace roia::net {

class FaultInjector;

/// Properties of a directed link. Defaults model a LAN.
struct LinkParams {
  SimDuration latency{SimDuration::microseconds(200)};
  /// Bytes per second; serialization delay = size / bandwidth.
  double bandwidthBytesPerSec{125e6};  // 1 Gbit/s
};

/// Cumulative traffic counters.
struct TrafficStats {
  std::uint64_t messages{0};
  std::uint64_t bytes{0};

  void add(std::size_t messageBytes) {
    ++messages;
    bytes += messageBytes;
  }
};

/// Handler invoked on the destination node when a frame arrives.
using FrameHandler = std::function<void(NodeId from, const ser::Frame& frame)>;

class Network {
 public:
  explicit Network(sim::Simulation& simulation) : sim_(simulation) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Creates a node and binds its receive handler. Ids are dense and stable.
  NodeId addNode(FrameHandler handler);

  /// Replaces the receive handler (used when a server restarts or a client
  /// reconnects elsewhere).
  void setHandler(NodeId node, FrameHandler handler);

  /// Detaches a node: in-flight frames to it are dropped on arrival.
  void removeNode(NodeId node);

  /// Attaches (or detaches, with nullptr) a fault injector consulted on
  /// every send. The injector must outlive the network while attached.
  void setFaultInjector(FaultInjector* injector) { faults_ = injector; }
  [[nodiscard]] FaultInjector* faultInjector() { return faults_; }

  /// Default parameters for links with no explicit override.
  void setDefaultLinkParams(LinkParams params) { defaultParams_ = params; }
  /// Overrides parameters for the directed link from -> to.
  void setLinkParams(NodeId from, NodeId to, LinkParams params);

  /// Sends a frame; delivery preserves per-link FIFO order. Returns the
  /// number of bytes put on the wire.
  std::size_t send(NodeId from, NodeId to, ser::Frame frame);

  /// Sends the same frame to several destinations (used for replica groups).
  void multicast(NodeId from, const std::vector<NodeId>& to, const ser::Frame& frame);

  [[nodiscard]] const TrafficStats& nodeEgress(NodeId node) const;
  [[nodiscard]] const TrafficStats& nodeIngress(NodeId node) const;
  [[nodiscard]] TrafficStats totals() const { return totals_; }
  [[nodiscard]] std::size_t nodeCount() const { return nodes_.size(); }
  [[nodiscard]] bool nodeAttached(NodeId node) const;

 private:
  struct NodeState {
    FrameHandler handler;
    bool attached{false};
    TrafficStats egress;
    TrafficStats ingress;
  };

  struct LinkState {
    LinkParams params;
    bool hasParams{false};
    SimTime lastArrival{SimTime::zero()};
  };

  void scheduleDelivery(NodeId from, NodeId to, SimTime arrival, std::size_t wireBytes,
                        ser::Frame frame);
  LinkState& link(NodeId from, NodeId to);
  static std::uint64_t linkKey(NodeId from, NodeId to) {
    return (from.value << 32) | (to.value & 0xFFFFFFFFULL);
  }

  sim::Simulation& sim_;
  std::vector<NodeState> nodes_;
  std::unordered_map<std::uint64_t, LinkState> links_;
  LinkParams defaultParams_{};
  TrafficStats totals_;
  FaultInjector* faults_{nullptr};
};

}  // namespace roia::net
