#include "net/network.hpp"

#include <algorithm>

#include "net/fault.hpp"
#include <cmath>
#include <stdexcept>
#include <utility>

namespace roia::net {

NodeId Network::addNode(FrameHandler handler) {
  const NodeId id{nodes_.size()};
  nodes_.push_back(NodeState{std::move(handler), true, {}, {}});
  return id;
}

void Network::setHandler(NodeId node, FrameHandler handler) {
  nodes_.at(node.value).handler = std::move(handler);
  nodes_.at(node.value).attached = true;
}

void Network::removeNode(NodeId node) {
  auto& state = nodes_.at(node.value);
  state.attached = false;
  state.handler = nullptr;
}

void Network::setLinkParams(NodeId from, NodeId to, LinkParams params) {
  auto& l = link(from, to);
  l.params = params;
  l.hasParams = true;
}

Network::LinkState& Network::link(NodeId from, NodeId to) {
  auto [it, inserted] = links_.try_emplace(linkKey(from, to));
  if (inserted) {
    it->second.params = defaultParams_;
  }
  return it->second;
}

std::size_t Network::send(NodeId from, NodeId to, ser::Frame frame) {
  if (from.value >= nodes_.size() || to.value >= nodes_.size()) {
    throw std::out_of_range("Network::send: unknown node");
  }
  auto& l = link(from, to);
  const LinkParams& params = l.hasParams ? l.params : defaultParams_;

  const std::size_t wireBytes = ser::encodedFrameSize(frame.payload.size());
  // Truncate sub-microsecond transmit times; per-link FIFO ordering is
  // enforced by the lastArrival clamp below regardless.
  const auto transmit = SimDuration::microseconds(static_cast<std::int64_t>(
      static_cast<double>(wireBytes) / params.bandwidthBytesPerSec * 1e6));
  SimTime arrival = sim_.now() + params.latency + transmit;

  // The frame goes on the wire even when the injector then loses it, so
  // egress is charged unconditionally; ingress only on actual delivery.
  nodes_[from.value].egress.add(wireBytes);
  totals_.add(wireBytes);

  FaultInjector::Verdict verdict;
  if (faults_ != nullptr) verdict = faults_->judge(from, to, sim_.now());
  if (verdict.drop) {
    // Keep FIFO bookkeeping consistent: a lost frame still occupied the
    // link, so later sends cannot arrive before its would-be arrival.
    l.lastArrival = std::max(l.lastArrival, arrival);
    return wireBytes;
  }

  arrival = arrival + verdict.extraDelay;
  if (!verdict.reorder) {
    // Reliable in-order channel: never deliver before an earlier send.
    arrival = std::max(arrival, l.lastArrival);
    l.lastArrival = arrival;
  }

  if (verdict.duplicate) {
    // The copy is extra wire traffic and takes its own jitter; it never
    // participates in FIFO ordering (duplicates arrive "whenever").
    nodes_[from.value].egress.add(wireBytes);
    totals_.add(wireBytes);
    scheduleDelivery(from, to, arrival + verdict.duplicateExtraDelay, wireBytes, frame);
  }
  scheduleDelivery(from, to, arrival, wireBytes, std::move(frame));
  return wireBytes;
}

void Network::scheduleDelivery(NodeId from, NodeId to, SimTime arrival, std::size_t wireBytes,
                               ser::Frame frame) {
  sim_.scheduleAt(arrival, [this, from, to, wireBytes, frame = std::move(frame)]() {
    auto& dst = nodes_[to.value];
    if (!dst.attached || !dst.handler) return;  // node left; frame dropped
    dst.ingress.add(wireBytes);
    dst.handler(from, frame);
  });
}

void Network::multicast(NodeId from, const std::vector<NodeId>& to, const ser::Frame& frame) {
  for (const NodeId dest : to) {
    send(from, dest, frame);
  }
}

const TrafficStats& Network::nodeEgress(NodeId node) const { return nodes_.at(node.value).egress; }

const TrafficStats& Network::nodeIngress(NodeId node) const { return nodes_.at(node.value).ingress; }

bool Network::nodeAttached(NodeId node) const {
  return node.value < nodes_.size() && nodes_[node.value].attached;
}

}  // namespace roia::net
