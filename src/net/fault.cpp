#include "net/fault.hpp"

#include <algorithm>
#include <utility>

namespace roia::net {

void FaultInjector::setLinkFaults(NodeId from, NodeId to, FaultParams params) {
  linkFaults_[linkKey(from, to)] = params;
}

void FaultInjector::clearLinkFaults(NodeId from, NodeId to) {
  linkFaults_.erase(linkKey(from, to));
}

void FaultInjector::partition(std::string name, const std::vector<NodeId>& nodes, SimTime start,
                              SimTime end) {
  Partition p;
  for (const NodeId node : nodes) p.group.insert(node.value);
  p.start = start;
  p.end = end;
  partitions_[std::move(name)] = std::move(p);
}

void FaultInjector::heal(const std::string& name, SimTime at) {
  auto it = partitions_.find(name);
  if (it != partitions_.end()) it->second.end = at;
}

bool FaultInjector::isPartitioned(NodeId from, NodeId to, SimTime now) const {
  for (const auto& [name, p] : partitions_) {
    if (now < p.start || now >= p.end) continue;
    const bool fromInside = p.group.contains(from.value);
    const bool toInside = p.group.contains(to.value);
    if (fromInside != toInside) return true;
  }
  return false;
}

void FaultInjector::schedulePreemption(ServerId server, SimTime notice, SimDuration window) {
  preemptions_.push_back(Preemption{server, notice, window});
  // Keep (notice, server) order so claims come out deterministically no
  // matter the scheduling order.
  std::sort(preemptions_.begin(), preemptions_.end(), [](const Preemption& a, const Preemption& b) {
    return a.notice != b.notice ? a.notice < b.notice : a.server < b.server;
  });
}

std::vector<FaultInjector::Preemption> FaultInjector::claimDuePreemptions(SimTime now) {
  std::vector<Preemption> due;
  auto it = preemptions_.begin();
  while (it != preemptions_.end() && it->notice <= now) {
    due.push_back(*it);
    ++it;
  }
  preemptions_.erase(preemptions_.begin(), it);
  preemptionsClaimed_ += due.size();
  return due;
}

const FaultParams& FaultInjector::paramsFor(NodeId from, NodeId to) const {
  auto it = linkFaults_.find(linkKey(from, to));
  return it == linkFaults_.end() ? defaultFaults_ : it->second;
}

void FaultInjector::setMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_.reset();
    return;
  }
  metrics_ = MetricSet{
      &registry->counter("roia_fault_frames_judged_total"),
      &registry->counter("roia_fault_frames_dropped_total"),
      &registry->counter("roia_fault_frames_duplicated_total"),
      &registry->counter("roia_fault_frames_delayed_total"),
      &registry->counter("roia_fault_frames_reordered_total"),
      &registry->counter("roia_fault_frames_partitioned_total"),
  };
}

FaultInjector::Verdict FaultInjector::judge(NodeId from, NodeId to, SimTime now) {
  ++stats_.framesJudged;
  if (metrics_) metrics_->judged->increment();
  Verdict verdict;

  if (isPartitioned(from, to, now)) {
    ++stats_.framesPartitioned;
    ++stats_.framesDropped;
    if (metrics_) {
      metrics_->partitioned->increment();
      metrics_->dropped->increment();
    }
    verdict.drop = true;
    return verdict;  // consumes no randomness: partitions are time-driven
  }

  const FaultParams& params = paramsFor(from, to);
  if (params.inert()) return verdict;  // fault-free links perturb nothing

  if (params.dropProbability > 0.0 && rng_.chance(params.dropProbability)) {
    ++stats_.framesDropped;
    if (metrics_) metrics_->dropped->increment();
    verdict.drop = true;
    return verdict;
  }
  if (params.jitterMax > SimDuration::zero()) {
    verdict.extraDelay = SimDuration::microseconds(static_cast<std::int64_t>(
        rng_.uniformInt(0, static_cast<std::uint64_t>(params.jitterMax.micros))));
    if (verdict.extraDelay > SimDuration::zero()) {
      ++stats_.framesDelayed;
      if (metrics_) metrics_->delayed->increment();
    }
  }
  if (params.reorderProbability > 0.0 && rng_.chance(params.reorderProbability)) {
    ++stats_.framesReordered;
    if (metrics_) metrics_->reordered->increment();
    verdict.reorder = true;
  }
  if (params.duplicateProbability > 0.0 && rng_.chance(params.duplicateProbability)) {
    ++stats_.framesDuplicated;
    if (metrics_) metrics_->duplicated->increment();
    verdict.duplicate = true;
    if (params.jitterMax > SimDuration::zero()) {
      verdict.duplicateExtraDelay = SimDuration::microseconds(static_cast<std::int64_t>(
          rng_.uniformInt(0, static_cast<std::uint64_t>(params.jitterMax.micros))));
    }
  }
  return verdict;
}

}  // namespace roia::net
