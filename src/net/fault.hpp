// Deterministic network fault injection.
//
// A FaultInjector attached to the Network perturbs every send according to a
// seeded random stream: frames can be dropped, duplicated, delayed by jitter
// and (when jittered) reordered past earlier traffic on the same link.
// Named partitions cut groups of nodes off from the rest of the cluster
// between a start and a heal time. All randomness comes from one xoshiro
// stream seeded at construction, so a fixed seed plus a fixed fault plan
// yields bit-identical simulations — fault experiments stay reproducible.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace roia::net {

/// Fault characteristics of a directed link (or the whole network).
struct FaultParams {
  /// Probability that a frame is silently lost.
  double dropProbability{0.0};
  /// Probability that a frame is delivered twice (the copy takes an
  /// independent jitter draw, so it may trail the original arbitrarily).
  double duplicateProbability{0.0};
  /// Extra latency drawn uniformly from [0, jitterMax] per frame.
  SimDuration jitterMax{SimDuration::zero()};
  /// Probability that a jittered frame may overtake earlier frames on the
  /// same link (i.e. the per-link FIFO clamp is skipped for it).
  double reorderProbability{0.0};

  [[nodiscard]] bool inert() const {
    return dropProbability <= 0.0 && duplicateProbability <= 0.0 &&
           jitterMax <= SimDuration::zero() && reorderProbability <= 0.0;
  }
};

/// Cumulative injector activity, for reporting and assertions.
struct FaultStats {
  std::uint64_t framesJudged{0};
  std::uint64_t framesDropped{0};
  std::uint64_t framesDuplicated{0};
  std::uint64_t framesDelayed{0};
  std::uint64_t framesReordered{0};
  std::uint64_t framesPartitioned{0};
};

class FaultInjector {
 public:
  /// Verdict for one frame about to be put on the wire.
  struct Verdict {
    bool drop{false};
    bool duplicate{false};
    /// Whether the frame (or its duplicate) may skip the FIFO clamp.
    bool reorder{false};
    SimDuration extraDelay{SimDuration::zero()};
    SimDuration duplicateExtraDelay{SimDuration::zero()};
  };

  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  /// Faults applied to links without an explicit override.
  void setDefaultFaults(FaultParams params) { defaultFaults_ = params; }
  /// Overrides faults for the directed link from -> to.
  void setLinkFaults(NodeId from, NodeId to, FaultParams params);
  void clearLinkFaults(NodeId from, NodeId to);

  /// Declares a named partition: between `start` (inclusive) and `end`
  /// (exclusive) every frame crossing between `group` and the rest of the
  /// network is dropped. Re-declaring a name replaces the partition.
  void partition(std::string name, const std::vector<NodeId>& nodes, SimTime start,
                 SimTime end = SimTime::max());
  /// Moves the heal time of partition `name` to `at` (no-op if unknown).
  void heal(const std::string& name, SimTime at);
  /// True when `from` -> `to` traffic is currently cut by any partition.
  [[nodiscard]] bool isPartitioned(NodeId from, NodeId to, SimTime now) const;

  /// Judges one frame; consumes randomness deterministically per call.
  Verdict judge(NodeId from, NodeId to, SimTime now);

  [[nodiscard]] const FaultStats& stats() const { return stats_; }

  // --- scheduled preemptions (cloud-style preemptible nodes) ---
  // A preemption is a data-only fault: at `notice` the provider announces
  // that `server` will be reclaimed `window` later. The management plane
  // polls claimDuePreemptions() and must drain the server before the window
  // expires (whatever remains is handled as a crash). The facility consumes
  // no randomness, so scheduling preemptions never perturbs the drop/
  // jitter/reorder stream.

  struct Preemption {
    ServerId server;
    /// When the preemption notice is delivered to the management plane.
    SimTime notice{};
    /// Grace window between notice and forced termination.
    SimDuration window{SimDuration::zero()};
  };

  /// Schedules a preemption notice; multiple servers may be pending at once.
  void schedulePreemption(ServerId server, SimTime notice, SimDuration window);
  /// Removes and returns every preemption whose notice time has arrived,
  /// ordered by (notice, server) so consumers act deterministically.
  [[nodiscard]] std::vector<Preemption> claimDuePreemptions(SimTime now);
  [[nodiscard]] std::size_t pendingPreemptions() const { return preemptions_.size(); }
  [[nodiscard]] std::uint64_t preemptionsClaimed() const { return preemptionsClaimed_; }

  /// Mirrors injector activity into counters (roia_fault_*_total); nullptr
  /// detaches. Consumes no randomness, so attaching telemetry never
  /// changes the fault schedule.
  void setMetrics(obs::MetricsRegistry* registry);

 private:
  struct Partition {
    std::unordered_set<std::uint64_t> group;  // NodeId values
    SimTime start;
    SimTime end;
  };

  static std::uint64_t linkKey(NodeId from, NodeId to) {
    return (from.value << 32) | (to.value & 0xFFFFFFFFULL);
  }
  [[nodiscard]] const FaultParams& paramsFor(NodeId from, NodeId to) const;

  Rng rng_;
  FaultParams defaultFaults_{};
  std::unordered_map<std::uint64_t, FaultParams> linkFaults_;  // lookup only, never iterated
  // Ordered by name: isPartitioned() walks this on the frame-judging path
  // that also drives the seeded RNG, so iteration order must be stable.
  std::map<std::string, Partition> partitions_;
  /// Pending preemption notices, kept sorted by (notice, server).
  std::vector<Preemption> preemptions_;
  std::uint64_t preemptionsClaimed_{0};
  FaultStats stats_;

  /// Cached instrument pointers (registry references are stable).
  struct MetricSet {
    obs::Counter* judged;
    obs::Counter* dropped;
    obs::Counter* duplicated;
    obs::Counter* delayed;
    obs::Counter* reordered;
    obs::Counter* partitioned;
  };
  std::optional<MetricSet> metrics_;
};

}  // namespace roia::net
