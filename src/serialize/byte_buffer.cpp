#include "serialize/byte_buffer.hpp"

#include <bit>

namespace roia::ser {

// Fixed-width integers are materialized as little-endian byte arrays and
// bulk-inserted: one capacity check instead of one per byte.
// roia-hot
void ByteWriter::writeU16(std::uint16_t v) {
  const std::uint8_t raw[2] = {static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8)};
  appendRaw(raw, sizeof raw);
}

// roia-hot
void ByteWriter::writeU32(std::uint32_t v) {
  std::uint8_t raw[4];
  for (int i = 0; i < 4; ++i) raw[i] = static_cast<std::uint8_t>(v >> (8 * i));
  appendRaw(raw, sizeof raw);
}

// roia-hot
void ByteWriter::writeU64(std::uint64_t v) {
  std::uint8_t raw[8];
  for (int i = 0; i < 8; ++i) raw[i] = static_cast<std::uint8_t>(v >> (8 * i));
  appendRaw(raw, sizeof raw);
}

void ByteWriter::writeF32(float v) { writeU32(std::bit_cast<std::uint32_t>(v)); }

void ByteWriter::writeF64(double v) { writeU64(std::bit_cast<std::uint64_t>(v)); }

// roia-hot
void ByteWriter::writeVarU64(std::uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

// roia-hot
void ByteWriter::writeVarI64(std::int64_t v) { writeVarU64(zigzagEncode(v)); }

// roia-hot
void ByteWriter::writeBytes(std::span<const std::uint8_t> bytes) {
  writeVarU64(bytes.size());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::writeString(std::string_view s) {
  writeVarU64(s.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  buffer_.insert(buffer_.end(), p, p + s.size());
}

// roia-hot
std::uint8_t ByteReader::readU8() {
  require(1);
  return data_[offset_++];
}

std::uint16_t ByteReader::readU16() {
  require(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[offset_]) |
                    static_cast<std::uint16_t>(data_[offset_ + 1]) << 8;
  offset_ += 2;
  return v;
}

// roia-hot
std::uint32_t ByteReader::readU32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[offset_ + static_cast<std::size_t>(i)]) << (8 * i);
  }
  offset_ += 4;
  return v;
}

// roia-hot
std::uint64_t ByteReader::readU64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[offset_ + static_cast<std::size_t>(i)]) << (8 * i);
  }
  offset_ += 8;
  return v;
}

float ByteReader::readF32() { return std::bit_cast<float>(readU32()); }

double ByteReader::readF64() { return std::bit_cast<double>(readU64()); }

// roia-hot
std::uint64_t ByteReader::readVarU64() {
  std::uint64_t result = 0;
  int shift = 0;
  while (true) {
    require(1);
    const std::uint8_t byte = data_[offset_++];
    if (shift == 63 && (byte & 0xFE) != 0) throw DecodeError("varint overflow");
    result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) throw DecodeError("varint too long");
  }
  return result;
}

std::int64_t ByteReader::readVarI64() { return zigzagDecode(readVarU64()); }

std::vector<std::uint8_t> ByteReader::readBytes() {
  const std::uint64_t len = readVarU64();
  require(len);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
                                data_.begin() + static_cast<std::ptrdiff_t>(offset_ + len));
  offset_ += len;
  return out;
}

std::string ByteReader::readString() {
  const std::uint64_t len = readVarU64();
  require(len);
  std::string out(reinterpret_cast<const char*>(data_.data() + offset_), len);
  offset_ += len;
  return out;
}

}  // namespace roia::ser
