// CRC-32 (IEEE 802.3 polynomial, reflected) for message-frame integrity.
#pragma once

#include <cstdint>
#include <span>

namespace roia::ser {

/// CRC-32 of the byte span (init 0xFFFFFFFF, final xor 0xFFFFFFFF).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental form: feed `state = crc32Update(state, chunk)` starting from
/// crc32Init() and finish with crc32Final(state).
[[nodiscard]] constexpr std::uint32_t crc32Init() { return 0xFFFFFFFFu; }
[[nodiscard]] std::uint32_t crc32Update(std::uint32_t state, std::span<const std::uint8_t> data);
[[nodiscard]] constexpr std::uint32_t crc32Final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

}  // namespace roia::ser
