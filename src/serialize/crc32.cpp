#include "serialize/crc32.hpp"

#include <array>

namespace roia::ser {
namespace {

constexpr std::array<std::uint32_t, 256> buildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = buildTable();

}  // namespace

std::uint32_t crc32Update(std::uint32_t state, std::span<const std::uint8_t> data) {
  for (const std::uint8_t byte : data) {
    state = kTable[(state ^ byte) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32Final(crc32Update(crc32Init(), data));
}

}  // namespace roia::ser
