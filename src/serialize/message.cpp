#include "serialize/message.hpp"

#include "serialize/crc32.hpp"

namespace roia::ser {
namespace {

std::size_t varintSize(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

std::vector<std::uint8_t> encodeFrame(const Frame& frame) {
  ByteWriter writer(encodedFrameSize(frame.payload.size()));
  writer.writeU16(kFrameMagic);
  writer.writeU16(static_cast<std::uint16_t>(frame.type));
  writer.writeVarU64(frame.payload.size());
  writer.appendRaw(frame.payload.data(), frame.payload.size());
  const std::uint32_t crc = crc32(writer.bytes());
  writer.writeU32(crc);
  return std::move(writer).take();
}

Frame decodeFrame(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 4 + 1 + 4) throw DecodeError("frame too short");
  // CRC covers everything except the trailing 4 CRC bytes.
  const auto body = bytes.subspan(0, bytes.size() - 4);
  ByteReader crcReader(bytes.subspan(bytes.size() - 4));
  const std::uint32_t expected = crcReader.readU32();
  if (crc32(body) != expected) throw DecodeError("frame CRC mismatch");

  ByteReader reader(body);
  if (reader.readU16() != kFrameMagic) throw DecodeError("bad frame magic");
  Frame frame;
  frame.type = static_cast<MessageType>(reader.readU16());
  const std::uint64_t length = reader.readVarU64();
  if (length != reader.remaining()) throw DecodeError("frame length mismatch");
  frame.payload.assign(body.begin() + static_cast<std::ptrdiff_t>(reader.offset()), body.end());
  return frame;
}

std::size_t encodedFrameSize(std::size_t payloadSize) {
  return 2 + 2 + varintSize(payloadSize) + payloadSize + 4;
}

}  // namespace roia::ser
