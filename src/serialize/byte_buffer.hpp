// Binary (de)serialization primitives used by the simulated network stack.
//
// RTF performs implicit (de)serialization of user inputs and state updates;
// this module is our equivalent. Encoded sizes feed both the bandwidth model
// and the CPU cost model (serialization cost is proportional to bytes, which
// is exactly the assumption the paper makes for t_su / t_*_dser).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace roia::ser {

/// Thrown by ByteReader on malformed or truncated input.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only encoder. Integers use little-endian fixed width or LEB128
/// varints; floats are bit-cast to their IEEE-754 representation.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserveBytes) { buffer_.reserve(reserveBytes); }
  /// Adopts an existing buffer to reuse its capacity across encodes: the
  /// contents are cleared, the allocation is kept. Pair with take().
  explicit ByteWriter(std::vector<std::uint8_t>&& reuse) : buffer_(std::move(reuse)) {
    buffer_.clear();
  }

  void writeU8(std::uint8_t v) { buffer_.push_back(v); }
  void writeU16(std::uint16_t v);
  void writeU32(std::uint32_t v);
  void writeU64(std::uint64_t v);
  void writeI32(std::int32_t v) { writeU32(static_cast<std::uint32_t>(v)); }
  void writeI64(std::int64_t v) { writeU64(static_cast<std::uint64_t>(v)); }
  void writeF32(float v);
  void writeF64(double v);
  void writeBool(bool v) { writeU8(v ? 1 : 0); }

  /// Unsigned LEB128 varint (1-10 bytes).
  void writeVarU64(std::uint64_t v);
  /// Signed varint via zigzag encoding.
  void writeVarI64(std::int64_t v);

  /// Length-prefixed (varint) byte string.
  void writeBytes(std::span<const std::uint8_t> bytes);
  void writeString(std::string_view s);

  /// Raw bulk append, no length prefix.
  void appendRaw(const std::uint8_t* data, std::size_t size) {
    buffer_.insert(buffer_.end(), data, data + size);
  }
  void appendRaw(std::span<const std::uint8_t> bytes) { appendRaw(bytes.data(), bytes.size()); }

  /// Pre-size the underlying buffer for a known-ahead encode size.
  void reserve(std::size_t bytes) { buffer_.reserve(bytes); }

  [[nodiscard]] std::size_t size() const { return buffer_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return buffer_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buffer_); }
  void clear() { buffer_.clear(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Consuming decoder over a borrowed byte span. Every read validates bounds
/// and throws DecodeError on truncation, so corrupted frames cannot smear
/// into undefined behaviour.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t readU8();
  std::uint16_t readU16();
  std::uint32_t readU32();
  std::uint64_t readU64();
  std::int32_t readI32() { return static_cast<std::int32_t>(readU32()); }
  std::int64_t readI64() { return static_cast<std::int64_t>(readU64()); }
  float readF32();
  double readF64();
  bool readBool() { return readU8() != 0; }

  std::uint64_t readVarU64();
  std::int64_t readVarI64();

  std::vector<std::uint8_t> readBytes();
  std::string readString();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - offset_; }
  [[nodiscard]] bool atEnd() const { return remaining() == 0; }
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) throw DecodeError("truncated buffer");
  }

  std::span<const std::uint8_t> data_;
  std::size_t offset_{0};
};

/// Zigzag transforms for signed varints.
constexpr std::uint64_t zigzagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t zigzagDecode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace roia::ser
