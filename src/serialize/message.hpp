// Message framing for the simulated wire protocol.
//
// A frame is: magic (u16) | type (u16) | payload length (varint) | payload |
// crc32 of everything before the crc. The frame layer is shared by user
// inputs, forwarded inputs, state updates and migration transfers, so the
// byte counts it produces drive both bandwidth accounting and serialization
// cost in the CPU model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "serialize/byte_buffer.hpp"

namespace roia::ser {

/// Wire-level message kinds understood by the RTF substrate. Application
/// payloads (move/attack commands, entity updates) are nested inside.
enum class MessageType : std::uint16_t {
  kClientInput = 1,        // client -> server: one user command batch
  kStateUpdate = 2,        // server -> client: filtered world delta
  kForwardedInput = 3,     // server -> server: interaction crossing replicas
  kEntityReplication = 4,  // server -> server: active-entity state for shadows
  kMigrationInitiate = 5,  // server -> server: begin user hand-over
  kMigrationData = 6,      // server -> server: serialized user + entity state
  kMigrationAck = 7,       // server -> server: adoption confirmed
  kControl = 8,            // manager -> server: RMS commands
  kMonitoring = 9,         // server -> manager: monitoring snapshot
  kReliableData = 10,      // reliable-delivery envelope around another frame
  kReliableAck = 11,       // ack for one reliable sequence number
  kHeartbeat = 12,         // server -> manager: liveness beacon
  kZoneHandoff = 13,       // server -> server: cross-zone user hand-over
  kZoneHandoffAck = 14,    // server -> server: cross-zone adoption confirmed
  kBorderSync = 15,        // server -> server: border-entity state for
                           // cross-zone AOI shadows (best-effort)
  kViewUpdate = 16,        // server -> client: delta-codec view payload
  kViewReplication = 17,   // server -> server: delta-codec replica view
  kReplicationAck = 18,    // receiver -> sender: delta baseline ack
};

/// An encoded frame plus its decoded header, as seen by the network layer.
struct Frame {
  MessageType type{MessageType::kControl};
  std::vector<std::uint8_t> payload;

  [[nodiscard]] std::size_t payloadSize() const { return payload.size(); }
};

constexpr std::uint16_t kFrameMagic = 0x52F1;  // "RTF-1"

/// Encodes a frame; the returned bytes are what travels on the (simulated)
/// wire, so their size is the unit of bandwidth accounting.
[[nodiscard]] std::vector<std::uint8_t> encodeFrame(const Frame& frame);

/// Decodes and validates one frame (magic + CRC). Throws DecodeError on any
/// malformation.
[[nodiscard]] Frame decodeFrame(std::span<const std::uint8_t> bytes);

/// Size in bytes that encodeFrame would produce, without encoding.
[[nodiscard]] std::size_t encodedFrameSize(std::size_t payloadSize);

}  // namespace roia::ser
