// Parallel sweep execution for the figure/extension harnesses.
//
// Every bench re-runs full multi-server sessions across grids of user count
// n, NPC count m and replica count l. The configurations are independent by
// construction — each one owns its Simulation, Network, RNG streams and
// probe sinks — so they can fan out over a thread pool. The contract:
//
//  * Results are collected and emitted in deterministic config order
//    (index order), regardless of which thread finished first.
//  * Each job must be self-contained: no shared mutable state beyond the
//    thread-safe Logger. Jobs therefore produce bit-identical results at
//    any thread count.
//  * ROIA_BENCH_THREADS selects the worker count (default: hardware
//    concurrency). 1 is exact legacy behaviour: jobs run inline on the
//    calling thread, in ascending index order, with no threads spawned.
//  * While the process-global telemetry context is active the runner forces
//    serial execution: the global sidecar files (trace/metrics/audit) are
//    not per-config and must observe events in the legacy order.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace roia::par {

/// Worker count for sweep fan-out: ROIA_BENCH_THREADS when set (clamped to
/// >= 1), otherwise std::thread::hardware_concurrency(). Returns 1 while
/// the serial override is set (see header comment).
[[nodiscard]] std::size_t sweepThreads();

/// Raw knob value without the serial override; used by tests.
[[nodiscard]] std::size_t configuredSweepThreads();

/// Forces sweepThreads() to 1 while set. The obs layer raises it whenever
/// the process-global telemetry context is activated, because the global
/// sidecar files aggregate across configs in legacy serial order.
void setSerialOverride(bool force);
[[nodiscard]] bool serialOverride();

/// Runs fn(0) .. fn(count-1), each call independent, on up to `threads`
/// workers (0 = sweepThreads()). With one thread the calls happen inline in
/// ascending index order — exact legacy behaviour. With more, indices are
/// handed out in descending order: population sweeps are typically sorted
/// ascending and per-config cost grows super-linearly with n, so starting
/// the heaviest configs first shortens the makespan. Execution order never
/// affects results — jobs are independent. The first exception thrown by
/// any job is rethrown on the calling thread after all workers finish.
template <class Fn>
void forEachIndex(std::size_t count, Fn&& fn, std::size_t threads = 0) {
  if (threads == 0) threads = sweepThreads();
  if (count == 0) return;
  if (threads <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  const std::size_t workers = threads < count ? threads : count;
  std::atomic<std::size_t> remaining{count};
  std::atomic<bool> failed{false};
  std::exception_ptr firstError;
  std::mutex errorMutex;

  auto work = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t ticket = remaining.fetch_sub(1, std::memory_order_relaxed);
      if (ticket == 0 || ticket > count) break;  // exhausted (guards wrap-around)
      try {
        fn(ticket - 1);
      } catch (...) {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(work);
  work();
  for (std::thread& t : pool) t.join();
  if (firstError) std::rethrow_exception(firstError);
}

/// Maps fn over 0..count-1 and returns the results in index order. Result
/// must be default-constructible and movable.
template <class Result, class Fn>
std::vector<Result> runSweep(std::size_t count, Fn&& fn, std::size_t threads = 0) {
  std::vector<Result> results(count);
  forEachIndex(
      count, [&](std::size_t i) { results[i] = fn(i); }, threads);
  return results;
}

/// Convenience: one job per element of `configs`, fn(config) -> Result.
template <class Result, class Config, class Fn>
std::vector<Result> runSweep(const std::vector<Config>& configs, Fn&& fn,
                             std::size_t threads = 0) {
  return runSweep<Result>(
      configs.size(), [&](std::size_t i) { return fn(configs[i]); }, threads);
}

}  // namespace roia::par
