// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (bot decisions, measurement
// noise, churn) flows through these generators so that every experiment is
// reproducible from a single seed. xoshiro256** is used for its quality and
// speed; SplitMix64 expands a single seed into a full generator state and
// derives independent child streams.
#pragma once

#include <array>
#include <cstdint>

namespace roia {

/// SplitMix64: seeds expansion and cheap stateless hashing of seed material.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** generator (Blackman & Vigna). Satisfies the needs of the
/// simulation: fast, high quality, tiny state, trivially copyable.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform in [0, 1).
  double nextDouble();
  /// Uniform in [lo, hi) for doubles; [lo, hi] never returned for hi.
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive (unbiased via rejection).
  std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);
  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);
  /// Standard normal via Box–Muller (deterministic; caches the spare value).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean);

  /// Derives an independent child stream; children with distinct salts are
  /// statistically independent of the parent and of each other.
  [[nodiscard]] Rng split(std::uint64_t salt) const;

 private:
  std::array<std::uint64_t, 4> s_{};
  double spareNormal_{0.0};
  bool hasSpare_{false};
};

}  // namespace roia
