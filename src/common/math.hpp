// Small math helpers: 2-D vectors for the virtual environment and
// polynomial evaluation shared by the fitting and model layers.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>

namespace roia {

/// 2-D position/direction in the virtual environment.
struct Vec2 {
  double x{0.0};
  double y{0.0};

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double k) const { return {x * k, y * k}; }
  constexpr Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }

  [[nodiscard]] constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  [[nodiscard]] constexpr double lengthSq() const { return x * x + y * y; }
  [[nodiscard]] double length() const { return std::sqrt(lengthSq()); }
  [[nodiscard]] constexpr double distanceSq(Vec2 o) const { return (*this - o).lengthSq(); }
  [[nodiscard]] double distance(Vec2 o) const { return (*this - o).length(); }
  [[nodiscard]] Vec2 normalized() const {
    const double len = length();
    return len > 0.0 ? Vec2{x / len, y / len} : Vec2{};
  }

  constexpr bool operator==(const Vec2&) const = default;
};

/// Horner evaluation of a polynomial with coefficients in ascending order:
/// coeffs[0] + coeffs[1]*x + coeffs[2]*x^2 + ...
inline double evalPolynomial(std::span<const double> coeffs, double x) {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = acc * x + coeffs[i];
  }
  return acc;
}

/// Linear interpolation.
constexpr double lerp(double a, double b, double t) { return a + (b - a) * t; }

/// True if |a - b| <= atol + rtol * max(|a|, |b|).
inline bool approxEqual(double a, double b, double rtol = 1e-9, double atol = 1e-12) {
  return std::fabs(a - b) <= atol + rtol * std::fmax(std::fabs(a), std::fabs(b));
}

}  // namespace roia
