// Streaming statistics used by monitoring probes, the parameter estimator
// and the benchmark harnesses: Welford accumulators, EWMA smoothing,
// fixed-bucket histograms and time-windowed averages.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace roia {

/// Single-pass mean / variance / min / max accumulator (Welford).
class StatAccumulator {
 public:
  void add(double x);
  void merge(const StatAccumulator& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_{0};
  double mean_{0.0};
  double m2_{0.0};
  double sum_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// Exponentially weighted moving average with configurable smoothing factor.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.2) : alpha_(alpha) {}

  void add(double x);
  void reset();

  [[nodiscard]] bool initialized() const { return initialized_; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double alpha_;
  double value_{0.0};
  bool initialized_{false};
};

/// Fixed-width bucket histogram over [lo, hi); out-of-range samples land in
/// saturating under/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  void reset();

  [[nodiscard]] std::size_t bucketCount() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Approximate quantile (q in [0,1]) by linear interpolation in buckets.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double bucketLow(std::size_t i) const;
  [[nodiscard]] double bucketHigh(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_{0};
  std::uint64_t overflow_{0};
  std::uint64_t total_{0};
};

/// Sliding-window average over simulated time: samples older than the window
/// are evicted as new ones arrive. Used for CPU-load reporting.
class WindowedAverage {
 public:
  explicit WindowedAverage(SimDuration window) : window_(window) {}

  void add(SimTime t, double value);
  [[nodiscard]] double average() const;
  [[nodiscard]] std::size_t size() const { return samples_.size(); }

 private:
  struct Sample {
    SimTime time;
    double value;
  };
  SimDuration window_;
  std::vector<Sample> samples_;  // kept in time order
  double sum_{0.0};
};

/// A labelled (x, y) sample set, the exchange format between measurement
/// probes and the fitting pipeline.
struct SampleSeries {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;

  void add(double xi, double yi) {
    x.push_back(xi);
    y.push_back(yi);
  }
  [[nodiscard]] std::size_t size() const { return x.size(); }
  [[nodiscard]] bool empty() const { return x.empty(); }
};

}  // namespace roia
