#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace roia {

void StatAccumulator::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StatAccumulator::merge(const StatAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StatAccumulator::reset() { *this = StatAccumulator{}; }

double StatAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

void Ewma::reset() {
  value_ = 0.0;
  initialized_ = false;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  if (buckets == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram requires hi > lo and buckets > 0");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  ++counts_[std::min(idx, counts_.size() - 1)];
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0ULL);
  underflow_ = overflow_ = total_ = 0;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cumulative) / static_cast<double>(counts_[i]);
      return bucketLow(i) + frac * width_;
    }
    cumulative = next;
  }
  return hi_;
}

double Histogram::bucketLow(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bucketHigh(std::size_t i) const { return bucketLow(i) + width_; }

void WindowedAverage::add(SimTime t, double value) {
  samples_.push_back({t, value});
  sum_ += value;
  const SimTime cutoff = t - window_;
  std::size_t evict = 0;
  while (evict < samples_.size() && samples_[evict].time < cutoff) {
    sum_ -= samples_[evict].value;
    ++evict;
  }
  if (evict > 0) {
    samples_.erase(samples_.begin(), samples_.begin() + static_cast<std::ptrdiff_t>(evict));
  }
}

double WindowedAverage::average() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

}  // namespace roia
