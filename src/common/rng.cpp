#include "common/rng.hpp"

#include <cmath>

namespace roia {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::nextDouble() {
  // 53 top bits -> uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * nextDouble();
}

std::uint64_t Rng::uniformInt(std::uint64_t lo, std::uint64_t hi) {
  if (lo >= hi) return lo;
  const std::uint64_t range = hi - lo + 1;
  if (range == 0) return next();  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = (~0ULL) - ((~0ULL) % range);
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit && limit != 0);
  return lo + (v % range);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return nextDouble() < p;
}

double Rng::normal() {
  if (hasSpare_) {
    hasSpare_ = false;
    return spareNormal_;
  }
  // Box–Muller; u must be > 0 so log() is finite.
  double u;
  do {
    u = nextDouble();
  } while (u <= 0.0);
  const double v = nextDouble();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * M_PI * v;
  spareNormal_ = r * std::sin(theta);
  hasSpare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = nextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Rng Rng::split(std::uint64_t salt) const {
  SplitMix64 sm(s_[0] ^ rotl(s_[3], 13) ^ (salt * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
  return Rng(sm.next());
}

}  // namespace roia
