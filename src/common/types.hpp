// Strongly typed identifiers and simulated-time types shared by every
// subsystem. All quantities of simulated time are integral microseconds so
// that event ordering is exact and runs are bit-reproducible.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace roia {

/// Tag-dispatched integral id. Distinct Tag types make ServerId, ClientId,
/// etc. mutually unassignable while keeping them trivially copyable.
template <class Tag>
struct Id {
  std::uint64_t value{kInvalid};

  static constexpr std::uint64_t kInvalid = std::numeric_limits<std::uint64_t>::max();

  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }
  auto operator<=>(const Id&) const = default;
};

struct ServerTag {};
struct ClientTag {};
struct EntityTag {};
struct ZoneTag {};
struct NodeTag {};

using ServerId = Id<ServerTag>;
using ClientId = Id<ClientTag>;
using EntityId = Id<EntityTag>;
using ZoneId = Id<ZoneTag>;
using NodeId = Id<NodeTag>;

/// Simulated duration in integral microseconds.
struct SimDuration {
  std::int64_t micros{0};

  constexpr SimDuration() = default;
  constexpr explicit SimDuration(std::int64_t us) : micros(us) {}

  static constexpr SimDuration zero() { return SimDuration{0}; }
  static constexpr SimDuration microseconds(std::int64_t us) { return SimDuration{us}; }
  static constexpr SimDuration milliseconds(std::int64_t ms) { return SimDuration{ms * 1000}; }
  static constexpr SimDuration seconds(std::int64_t s) { return SimDuration{s * 1000000}; }

  [[nodiscard]] constexpr double asMillis() const { return static_cast<double>(micros) / 1000.0; }
  [[nodiscard]] constexpr double asSeconds() const { return static_cast<double>(micros) / 1e6; }

  constexpr SimDuration& operator+=(SimDuration o) { micros += o.micros; return *this; }
  constexpr SimDuration& operator-=(SimDuration o) { micros -= o.micros; return *this; }
  auto operator<=>(const SimDuration&) const = default;
};

constexpr SimDuration operator+(SimDuration a, SimDuration b) { return SimDuration{a.micros + b.micros}; }
constexpr SimDuration operator-(SimDuration a, SimDuration b) { return SimDuration{a.micros - b.micros}; }
constexpr SimDuration operator*(SimDuration a, std::int64_t k) { return SimDuration{a.micros * k}; }
constexpr SimDuration operator*(std::int64_t k, SimDuration a) { return a * k; }

/// Absolute simulated time (microseconds since simulation start).
struct SimTime {
  std::int64_t micros{0};

  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t us) : micros(us) {}

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() { return SimTime{std::numeric_limits<std::int64_t>::max()}; }

  [[nodiscard]] constexpr double asMillis() const { return static_cast<double>(micros) / 1000.0; }
  [[nodiscard]] constexpr double asSeconds() const { return static_cast<double>(micros) / 1e6; }

  auto operator<=>(const SimTime&) const = default;
};

constexpr SimTime operator+(SimTime t, SimDuration d) { return SimTime{t.micros + d.micros}; }
constexpr SimTime operator-(SimTime t, SimDuration d) { return SimTime{t.micros - d.micros}; }
constexpr SimDuration operator-(SimTime a, SimTime b) { return SimDuration{a.micros - b.micros}; }

}  // namespace roia

namespace std {
template <class Tag>
struct hash<roia::Id<Tag>> {
  size_t operator()(const roia::Id<Tag>& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
}  // namespace std
