#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace roia {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_writeMutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void Logger::setLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel Logger::level() { return static_cast<LogLevel>(g_level.load()); }

bool Logger::enabled(LogLevel level) { return static_cast<int>(level) >= g_level.load(); }

void Logger::write(LogLevel level, std::string_view component, std::string_view message) {
  std::lock_guard<std::mutex> lock(g_writeMutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", levelName(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace roia
