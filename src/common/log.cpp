#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>

namespace roia {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
/// Fast-path flag: component lookup only happens while overrides exist.
std::atomic<bool> g_hasOverrides{false};
std::mutex g_mutex;  // guards overrides and sink pointer swaps

std::map<std::string, int, std::less<>>& overrides() {
  static std::map<std::string, int, std::less<>> map;
  return map;
}

std::shared_ptr<LogSink>& sinkSlot() {
  static std::shared_ptr<LogSink> sink = std::make_shared<StderrSink>();
  return sink;
}

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void StderrSink::write(const LogEntry& entry) {
  std::string line = entry.message;
  for (const auto& [key, value] : entry.fields) {
    line += ' ';
    line += key;
    line += '=';
    line += value;
  }
  std::fprintf(stderr, "[%s] %s: %s\n", levelName(entry.level), entry.component.c_str(),
               line.c_str());
}

std::vector<LogEntry> MemorySink::entriesFor(std::string_view component) const {
  std::vector<LogEntry> out;
  out.reserve(entries_.size());
  for (const LogEntry& e : entries_) {
    if (e.component == component) out.push_back(e);
  }
  return out;
}

void Logger::setLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel Logger::level() { return static_cast<LogLevel>(g_level.load()); }

void Logger::setComponentLevel(std::string_view component, LogLevel level) {
  std::lock_guard<std::mutex> lock(g_mutex);
  overrides()[std::string(component)] = static_cast<int>(level);
  g_hasOverrides.store(true);
}

void Logger::clearComponentLevel(std::string_view component) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = overrides().find(component);
  if (it != overrides().end()) overrides().erase(it);
  g_hasOverrides.store(!overrides().empty());
}

void Logger::clearComponentLevels() {
  std::lock_guard<std::mutex> lock(g_mutex);
  overrides().clear();
  g_hasOverrides.store(false);
}

bool Logger::enabled(LogLevel level) { return static_cast<int>(level) >= g_level.load(); }

bool Logger::enabled(LogLevel level, std::string_view component) {
  if (g_hasOverrides.load()) {
    std::lock_guard<std::mutex> lock(g_mutex);
    auto it = overrides().find(component);
    if (it != overrides().end()) return static_cast<int>(level) >= it->second;
  }
  return enabled(level);
}

std::shared_ptr<LogSink> Logger::setSink(std::shared_ptr<LogSink> sink) {
  if (sink == nullptr) sink = std::make_shared<StderrSink>();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::shared_ptr<LogSink> previous = sinkSlot();
  sinkSlot() = std::move(sink);
  return previous;
}

void Logger::write(LogLevel level, std::string_view component, std::string_view message) {
  write(level, component, message, {});
}

void Logger::write(LogLevel level, std::string_view component, std::string_view message,
                   std::vector<std::pair<std::string, std::string>> fields) {
  LogEntry entry{level, std::string(component), std::string(message), std::move(fields)};
  std::shared_ptr<LogSink> sink;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    sink = sinkSlot();
  }
  sink->write(entry);
}

}  // namespace roia
