#include "common/sweep.hpp"

#include <cstdlib>

namespace roia::par {
namespace {

// Set while the process-global telemetry context is active (the obs layer
// toggles it): the global sidecars aggregate across configs and only the
// serial legacy order reproduces them bit for bit.
std::atomic<bool> g_serialOverride{false};

}  // namespace

void setSerialOverride(bool force) { g_serialOverride.store(force); }

bool serialOverride() { return g_serialOverride.load(); }

std::size_t configuredSweepThreads() {
  // Read once on the calling thread before any fan-out; no concurrent
  // setenv exists in this process.
  if (const char* env = std::getenv("ROIA_BENCH_THREADS")) {  // NOLINT(concurrency-mt-unsafe)
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
    return 1;  // malformed or <= 0: safest is the legacy serial path
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t sweepThreads() {
  if (serialOverride()) return 1;
  return configuredSweepThreads();
}

}  // namespace roia::par
