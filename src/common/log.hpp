// Minimal leveled logger with pluggable sinks, per-component level
// overrides and optional structured key=value fields. Experiments run
// millions of simulated events, so the logger is designed to be cheap when
// disabled: callers check Logger::enabled(level, component) before
// formatting, and the component-override lookup is skipped entirely while
// no overrides exist.
#pragma once

#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace roia {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// One emitted log line as sinks receive it.
struct LogEntry {
  LogLevel level{LogLevel::kInfo};
  std::string component;
  std::string message;
  /// Structured key=value fields (may be empty for plain messages).
  std::vector<std::pair<std::string, std::string>> fields;
};

/// Where log entries go. The default sink writes
/// `[LEVEL] component: message k=v ...` to stderr; tests install a
/// MemorySink and assert on entries instead of scraping stderr.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(const LogEntry& entry) = 0;
};

/// The default sink: one formatted line per entry on stderr.
class StderrSink final : public LogSink {
 public:
  void write(const LogEntry& entry) override;
};

/// Captures entries in memory for test assertions.
class MemorySink final : public LogSink {
 public:
  void write(const LogEntry& entry) override { entries_.push_back(entry); }

  [[nodiscard]] const std::vector<LogEntry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t count() const { return entries_.size(); }
  /// Entries from `component` only.
  [[nodiscard]] std::vector<LogEntry> entriesFor(std::string_view component) const;
  void clear() { entries_.clear(); }

 private:
  std::vector<LogEntry> entries_;
};

class Logger {
 public:
  /// Process-wide minimum level; defaults to kWarn so simulations stay quiet.
  static void setLevel(LogLevel level);
  static LogLevel level();

  /// Per-component minimum level, overriding the global one (e.g. turn
  /// "rms" up to kDebug while everything else stays at kWarn).
  static void setComponentLevel(std::string_view component, LogLevel level);
  static void clearComponentLevel(std::string_view component);
  static void clearComponentLevels();

  static bool enabled(LogLevel level);
  static bool enabled(LogLevel level, std::string_view component);

  /// Replaces the sink (nullptr restores the stderr default). Returns the
  /// previously installed sink so tests can restore it.
  static std::shared_ptr<LogSink> setSink(std::shared_ptr<LogSink> sink);

  static void write(LogLevel level, std::string_view component, std::string_view message);
  /// Structured variant: `fields` travel to the sink unformatted.
  static void write(LogLevel level, std::string_view component, std::string_view message,
                    std::vector<std::pair<std::string, std::string>> fields);
};

/// Convenience macro: evaluates the stream expression only when enabled.
#define ROIA_LOG(level_, component_, expr_)                                \
  do {                                                                     \
    if (::roia::Logger::enabled(level_, component_)) {                     \
      std::ostringstream roia_log_oss_;                                    \
      roia_log_oss_ << expr_;                                              \
      ::roia::Logger::write(level_, component_, roia_log_oss_.str());      \
    }                                                                      \
  } while (0)

/// Structured variant: ROIA_LOG_KV(kInfo, "rms", "decision",
///                                 {{"action", "add"}, {"n", "120"}}).
#define ROIA_LOG_KV(level_, component_, message_, ...)                     \
  do {                                                                     \
    if (::roia::Logger::enabled(level_, component_)) {                     \
      ::roia::Logger::write(level_, component_, message_, __VA_ARGS__);    \
    }                                                                      \
  } while (0)

}  // namespace roia
