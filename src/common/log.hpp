// Minimal leveled logger. Experiments run millions of simulated events, so
// the logger is designed to be cheap when disabled: callers check
// Logger::enabled(level) before formatting.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace roia {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class Logger {
 public:
  /// Process-wide minimum level; defaults to kWarn so simulations stay quiet.
  static void setLevel(LogLevel level);
  static LogLevel level();
  static bool enabled(LogLevel level);

  /// Writes one line `[LEVEL] component: message` to stderr.
  static void write(LogLevel level, std::string_view component, std::string_view message);
};

/// Convenience macro: evaluates the stream expression only when enabled.
#define ROIA_LOG(level_, component_, expr_)                                \
  do {                                                                     \
    if (::roia::Logger::enabled(level_)) {                                 \
      std::ostringstream roia_log_oss_;                                    \
      roia_log_oss_ << expr_;                                              \
      ::roia::Logger::write(level_, component_, roia_log_oss_.str());      \
    }                                                                      \
  } while (0)

}  // namespace roia
