#include "model/estimator.hpp"

#include <map>
#include <utility>

#include "fit/form_select.hpp"
#include "fit/levmar.hpp"
#include "fit/polyfit.hpp"

namespace roia::model {

FitPlan FitPlan::paperDefault() {
  FitPlan plan;
  auto set = [&plan](ParamKind kind, FunctionForm form) {
    plan.forms[static_cast<std::size_t>(kind)] = form;
  };
  // Paper V-A: t_ua and t_aoi quadratic; the (de)serialization, forwarded
  // and migration parameters linear; NPC updates linear in n.
  set(ParamKind::kUaDser, FunctionForm::kLinear);
  set(ParamKind::kUa, FunctionForm::kQuadratic);
  set(ParamKind::kFaDser, FunctionForm::kLinear);
  set(ParamKind::kFa, FunctionForm::kLinear);
  set(ParamKind::kNpc, FunctionForm::kLinear);
  set(ParamKind::kAoi, FunctionForm::kQuadratic);
  set(ParamKind::kSu, FunctionForm::kLinear);
  set(ParamKind::kMigIni, FunctionForm::kLinear);
  set(ParamKind::kMigRcv, FunctionForm::kLinear);
  return plan;
}

FitPlan FitPlan::adaptive() {
  FitPlan plan = paperDefault();
  plan.autoSelect[static_cast<std::size_t>(ParamKind::kUa)] = true;
  plan.autoSelect[static_cast<std::size_t>(ParamKind::kAoi)] = true;
  return plan;
}

std::optional<ParamKind> paramKindForPhase(rtf::Phase phase) {
  switch (phase) {
    case rtf::Phase::kUaDser: return ParamKind::kUaDser;
    case rtf::Phase::kUa: return ParamKind::kUa;
    case rtf::Phase::kFaDser: return ParamKind::kFaDser;
    case rtf::Phase::kFa: return ParamKind::kFa;
    case rtf::Phase::kNpc: return ParamKind::kNpc;
    case rtf::Phase::kAoi: return ParamKind::kAoi;
    case rtf::Phase::kSu: return ParamKind::kSu;
    case rtf::Phase::kMigIni: return ParamKind::kMigIni;
    case rtf::Phase::kMigRcv: return ParamKind::kMigRcv;
    default: return std::nullopt;
  }
}

rtf::Phase phaseForParamKind(ParamKind kind) {
  switch (kind) {
    case ParamKind::kUaDser: return rtf::Phase::kUaDser;
    case ParamKind::kUa: return rtf::Phase::kUa;
    case ParamKind::kFaDser: return rtf::Phase::kFaDser;
    case ParamKind::kFa: return rtf::Phase::kFa;
    case ParamKind::kNpc: return rtf::Phase::kNpc;
    case ParamKind::kAoi: return rtf::Phase::kAoi;
    case ParamKind::kSu: return rtf::Phase::kSu;
    case ParamKind::kMigIni: return rtf::Phase::kMigIni;
    case ParamKind::kMigRcv: return rtf::Phase::kMigRcv;
    case ParamKind::kCount: break;
  }
  return rtf::Phase::kOther;
}

void ParameterEstimator::setSamples(ParamKind kind, SampleSeries samples) {
  samples_[static_cast<std::size_t>(kind)] = std::move(samples);
}

namespace {

/// Mean y per distinct x, in ascending x order.
SampleSeries collapseToMeans(const SampleSeries& series) {
  std::map<double, std::pair<double, std::size_t>> acc;
  for (std::size_t i = 0; i < series.size(); ++i) {
    auto& [sum, count] = acc[series.x[i]];
    sum += series.y[i];
    ++count;
  }
  SampleSeries out;
  for (const auto& [x, entry] : acc) {
    out.add(x, entry.first / static_cast<double>(entry.second));
  }
  return out;
}

/// Fits one polynomial form: closed-form least squares seed, then the
/// paper's Levenberg-Marquardt refinement.
ParamFunction fitOneForm(const SampleSeries& series, FunctionForm form, bool refineWithLevMar) {
  const std::size_t degree = formDegree(form);
  std::vector<double> coeffs = fit::polyFit(series.x, series.y, degree);
  if (refineWithLevMar) {
    const fit::ModelFn fn = fit::models::polynomial(degree);
    const fit::LevMarResult lm = fit::levenbergMarquardt(fn, series.x, series.y, coeffs);
    coeffs = lm.coeffs;
  }
  ParamFunction fitted;
  fitted.form = form;
  fitted.coeffs = coeffs;
  fitted.sampleCount = series.size();
  fitted.gof = fit::evaluateFit(fit::models::polynomial(degree), series.x, series.y, coeffs);
  return fitted;
}

}  // namespace

ModelParameters ParameterEstimator::fit(const FitPlan& plan, bool refineWithLevMar) const {
  ModelParameters params;
  for (std::size_t k = 0; k < kParamCount; ++k) {
    const auto kind = static_cast<ParamKind>(k);
    const SampleSeries& series = samples_[k];
    const FunctionForm form = plan.forms[k];
    if (series.size() < formDegree(form) + 1) continue;  // not enough data: stay zero

    if (plan.autoSelect[k]) {
      // Collapse replicated measurements to per-population means before the
      // information-criterion comparison: the raw per-tick samples are
      // replicates of the same design points, and counting each as an
      // independent observation would let the extra coefficient always win.
      const SampleSeries collapsed = collapseToMeans(series);
      if (collapsed.size() >= formDegree(FunctionForm::kQuadratic) + 3) {
        // Fit both candidate forms on the full sample cloud, score them on
        // the collapsed series, and let corrected AIC arbitrate; the
        // quadratic must beat the linear by more than 2 AICc units to
        // justify its extra coefficient.
        ParamFunction linear = fitOneForm(series, FunctionForm::kLinear, refineWithLevMar);
        ParamFunction quadratic = fitOneForm(series, FunctionForm::kQuadratic, refineWithLevMar);
        const double aiccLinear =
            fit::aicc(fit::evaluateFit(fit::models::polynomial(1), collapsed.x, collapsed.y,
                                       linear.coeffs)
                          .sse,
                      collapsed.size(), 2);
        const double aiccQuadratic =
            fit::aicc(fit::evaluateFit(fit::models::polynomial(2), collapsed.x, collapsed.y,
                                       quadratic.coeffs)
                          .sse,
                      collapsed.size(), 3);
        params.set(kind, aiccQuadratic < aiccLinear - 2.0 ? std::move(quadratic)
                                                          : std::move(linear));
        continue;
      }
    }

    params.set(kind, fitOneForm(series, form, refineWithLevMar));
  }
  return params;
}

}  // namespace roia::model
