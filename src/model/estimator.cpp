#include "model/estimator.hpp"

#include <utility>

#include "fit/levmar.hpp"
#include "fit/polyfit.hpp"

namespace roia::model {

FitPlan FitPlan::paperDefault() {
  FitPlan plan;
  auto set = [&plan](ParamKind kind, FunctionForm form) {
    plan.forms[static_cast<std::size_t>(kind)] = form;
  };
  // Paper V-A: t_ua and t_aoi quadratic; the (de)serialization, forwarded
  // and migration parameters linear; NPC updates linear in n.
  set(ParamKind::kUaDser, FunctionForm::kLinear);
  set(ParamKind::kUa, FunctionForm::kQuadratic);
  set(ParamKind::kFaDser, FunctionForm::kLinear);
  set(ParamKind::kFa, FunctionForm::kLinear);
  set(ParamKind::kNpc, FunctionForm::kLinear);
  set(ParamKind::kAoi, FunctionForm::kQuadratic);
  set(ParamKind::kSu, FunctionForm::kLinear);
  set(ParamKind::kMigIni, FunctionForm::kLinear);
  set(ParamKind::kMigRcv, FunctionForm::kLinear);
  return plan;
}

std::optional<ParamKind> paramKindForPhase(rtf::Phase phase) {
  switch (phase) {
    case rtf::Phase::kUaDser: return ParamKind::kUaDser;
    case rtf::Phase::kUa: return ParamKind::kUa;
    case rtf::Phase::kFaDser: return ParamKind::kFaDser;
    case rtf::Phase::kFa: return ParamKind::kFa;
    case rtf::Phase::kNpc: return ParamKind::kNpc;
    case rtf::Phase::kAoi: return ParamKind::kAoi;
    case rtf::Phase::kSu: return ParamKind::kSu;
    case rtf::Phase::kMigIni: return ParamKind::kMigIni;
    case rtf::Phase::kMigRcv: return ParamKind::kMigRcv;
    default: return std::nullopt;
  }
}

rtf::Phase phaseForParamKind(ParamKind kind) {
  switch (kind) {
    case ParamKind::kUaDser: return rtf::Phase::kUaDser;
    case ParamKind::kUa: return rtf::Phase::kUa;
    case ParamKind::kFaDser: return rtf::Phase::kFaDser;
    case ParamKind::kFa: return rtf::Phase::kFa;
    case ParamKind::kNpc: return rtf::Phase::kNpc;
    case ParamKind::kAoi: return rtf::Phase::kAoi;
    case ParamKind::kSu: return rtf::Phase::kSu;
    case ParamKind::kMigIni: return rtf::Phase::kMigIni;
    case ParamKind::kMigRcv: return rtf::Phase::kMigRcv;
    case ParamKind::kCount: break;
  }
  return rtf::Phase::kOther;
}

void ParameterEstimator::setSamples(ParamKind kind, SampleSeries samples) {
  samples_[static_cast<std::size_t>(kind)] = std::move(samples);
}

ModelParameters ParameterEstimator::fit(const FitPlan& plan, bool refineWithLevMar) const {
  ModelParameters params;
  for (std::size_t k = 0; k < kParamCount; ++k) {
    const auto kind = static_cast<ParamKind>(k);
    const SampleSeries& series = samples_[k];
    const FunctionForm form = plan.forms[k];
    const std::size_t degree = formDegree(form);
    if (series.size() < degree + 1) continue;  // not enough data: stay zero

    // Closed-form polynomial least squares as the seed...
    std::vector<double> coeffs = fit::polyFit(series.x, series.y, degree);
    // ...then the paper's Levenberg-Marquardt refinement.
    if (refineWithLevMar) {
      const fit::ModelFn fn = fit::models::polynomial(degree);
      const fit::LevMarResult lm = fit::levenbergMarquardt(fn, series.x, series.y, coeffs);
      coeffs = lm.coeffs;
    }

    ParamFunction fitted;
    fitted.form = form;
    fitted.coeffs = coeffs;
    fitted.sampleCount = series.size();
    fitted.gof = fit::evaluateFit(fit::models::polynomial(degree), series.x, series.y, coeffs);
    params.set(kind, std::move(fitted));
  }
  return params;
}

}  // namespace roia::model
