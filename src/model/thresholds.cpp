#include "model/thresholds.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace roia::model {

std::size_t nMax(const TickModel& model, std::size_t l, std::size_t m, double thresholdMicros,
                 std::size_t cap) {
  if (l < 1) throw std::invalid_argument("nMax: l must be >= 1");
  const auto violates = [&](std::size_t n) {
    return model.tickMicros(static_cast<double>(l), static_cast<double>(n),
                            static_cast<double>(m)) >= thresholdMicros;
  };
  if (violates(1)) return 0;
  if (!violates(cap)) return cap;
  // Binary search the largest n with T(n) < U. Assumes monotonicity of T in
  // n, which holds for non-negative parameter functions (property-tested).
  std::size_t lo = 1;        // known good
  std::size_t hi = cap;      // known violating
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (violates(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return lo;
}

std::size_t nMaxZoned(const TickModel& model, std::size_t l, std::size_t m,
                      double thresholdMicros, std::size_t neighbors, double borderShare,
                      std::size_t cap) {
  if (l < 1) throw std::invalid_argument("nMaxZoned: l must be >= 1");
  borderShare = std::clamp(borderShare, 0.0, 1.0);
  const auto violates = [&](std::size_t n) {
    const double nd = static_cast<double>(n);
    return model.zoneTickMicros(static_cast<double>(l), nd, static_cast<double>(m),
                                static_cast<double>(neighbors), borderShare * nd) >=
           thresholdMicros;
  };
  if (violates(1)) return 0;
  if (!violates(cap)) return cap;
  std::size_t lo = 1;
  std::size_t hi = cap;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (violates(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return lo;
}

LMaxResult lMax(const TickModel& model, std::size_t m, double thresholdMicros, double c,
                std::size_t lCap) {
  if (c <= 0.0 || c > 1.0) throw std::invalid_argument("lMax: c must be in (0, 1]");
  LMaxResult result;
  const std::size_t base = nMax(model, 1, m, thresholdMicros);
  result.nMaxPerReplica.push_back(base);
  result.requiredImprovement = c * static_cast<double>(base);
  if (base == 0) {
    result.lMax = 1;
    return result;
  }

  std::size_t l = 1;
  while (l + 1 <= lCap) {
    const std::size_t candidate = l + 1;
    // Eq. (3): replica `candidate` is worthwhile iff it sustains
    // n'_max = n_max(l) + c * n_max(1) users below the threshold.
    const double nPrime = static_cast<double>(result.nMaxPerReplica.back()) +
                          result.requiredImprovement;
    const double t = model.tickMicros(static_cast<double>(candidate), nPrime,
                                      static_cast<double>(m));
    if (t >= thresholdMicros) break;
    result.nMaxPerReplica.push_back(nMax(model, candidate, m, thresholdMicros));
    l = candidate;
  }
  result.lMax = l;
  return result;
}

namespace {

std::size_t budget(double tickMicros, double migCostMicros, double thresholdMicros) {
  if (tickMicros >= thresholdMicros) return 0;
  if (migCostMicros <= 0.0) return 0;  // unmeasured cost -> no budget claim
  const double headroom = thresholdMicros - tickMicros;
  // max{x | T + x*t < U} == ceil(headroom / t) - 1 for exact multiples.
  const double x = std::floor(headroom / migCostMicros);
  const double exact = x * migCostMicros;
  return static_cast<std::size_t>(exact < headroom ? x : std::max(0.0, x - 1));
}

}  // namespace

std::size_t xMaxInitiate(const TickModel& model, std::size_t l, std::size_t n, std::size_t m,
                         std::size_t a, double thresholdMicros) {
  const double t = model.tickMicros(static_cast<double>(l), static_cast<double>(n),
                                    static_cast<double>(m), static_cast<double>(a));
  return budget(t, model.migInitiateMicros(static_cast<double>(n)), thresholdMicros);
}

std::size_t xMaxReceive(const TickModel& model, std::size_t l, std::size_t n, std::size_t m,
                        std::size_t a, double thresholdMicros) {
  const double t = model.tickMicros(static_cast<double>(l), static_cast<double>(n),
                                    static_cast<double>(m), static_cast<double>(a));
  return budget(t, model.migReceiveMicros(static_cast<double>(n)), thresholdMicros);
}

std::size_t xMaxFromObservedTick(double tickMicros, double migCostMicros,
                                 double thresholdMicros) {
  return budget(tickMicros, migCostMicros, thresholdMicros);
}

}  // namespace roia::model
