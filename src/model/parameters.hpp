// Fitted model parameters: one approximation function per computational
// task of the real-time loop (paper section III-A / V-A).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "fit/gof.hpp"

namespace roia::model {

/// The nine application-specific parameters of the scalability model.
enum class ParamKind : std::size_t {
  kUaDser = 0,  // deserialize user inputs (per user)
  kUa,          // validate + apply user inputs (per user)
  kFaDser,      // deserialize forwarded inputs (per shadow entity)
  kFa,          // apply forwarded inputs (per shadow entity)
  kNpc,         // update one NPC
  kAoi,         // compute one user's area of interest
  kSu,          // compute + serialize one user's state update
  kMigIni,      // initiate one user migration
  kMigRcv,      // receive one user migration
  kCount
};

constexpr std::size_t kParamCount = static_cast<std::size_t>(ParamKind::kCount);

[[nodiscard]] constexpr const char* paramName(ParamKind kind) {
  switch (kind) {
    case ParamKind::kUaDser: return "t_ua_dser";
    case ParamKind::kUa: return "t_ua";
    case ParamKind::kFaDser: return "t_fa_dser";
    case ParamKind::kFa: return "t_fa";
    case ParamKind::kNpc: return "t_npc";
    case ParamKind::kAoi: return "t_aoi";
    case ParamKind::kSu: return "t_su";
    case ParamKind::kMigIni: return "t_mig_ini";
    case ParamKind::kMigRcv: return "t_mig_rcv";
    case ParamKind::kCount: break;
  }
  return "?";
}

/// Functional form of an approximation function, chosen per parameter as the
/// paper does (linear for (de)serialization/updates/migration, quadratic for
/// input application and interest management).
enum class FunctionForm { kConstant, kLinear, kQuadratic };

[[nodiscard]] constexpr std::size_t formDegree(FunctionForm form) {
  switch (form) {
    case FunctionForm::kConstant: return 0;
    case FunctionForm::kLinear: return 1;
    case FunctionForm::kQuadratic: return 2;
  }
  return 0;
}

[[nodiscard]] constexpr const char* formName(FunctionForm form) {
  switch (form) {
    case FunctionForm::kConstant: return "constant";
    case FunctionForm::kLinear: return "linear";
    case FunctionForm::kQuadratic: return "quadratic";
  }
  return "?";
}

/// One fitted approximation function t(n): polynomial coefficients in
/// ascending powers, with goodness-of-fit stats from the fitting run.
struct ParamFunction {
  FunctionForm form{FunctionForm::kConstant};
  std::vector<double> coeffs{0.0};
  fit::GoodnessOfFit gof{};
  std::size_t sampleCount{0};

  /// Value at user count n, clamped at zero (a cost can never be negative;
  /// extrapolating a fitted parabola slightly below zero near n=0 is
  /// harmless but must not corrupt the tick model).
  [[nodiscard]] double eval(double n) const;

  static ParamFunction constant(double value);
  static ParamFunction linear(double c0, double c1);
  static ParamFunction quadratic(double c0, double c1, double c2);
};

/// The full parameter set of one application.
class ModelParameters {
 public:
  ModelParameters();

  [[nodiscard]] const ParamFunction& at(ParamKind kind) const {
    return params_[static_cast<std::size_t>(kind)];
  }
  void set(ParamKind kind, ParamFunction fn) {
    params_[static_cast<std::size_t>(kind)] = std::move(fn);
  }

  /// t_kind(n) in reference microseconds.
  [[nodiscard]] double eval(ParamKind kind, double n) const { return at(kind).eval(n); }

  /// Human-readable multi-line description of every fitted function.
  [[nodiscard]] std::string describe() const;

 private:
  std::array<ParamFunction, kParamCount> params_;
};

}  // namespace roia::model
