// Sensitivity analysis of the scalability model.
//
// The thresholds the paper derives (n_max, l_max) come from fitted
// coefficients that carry measurement uncertainty. This tool perturbs each
// coefficient by a relative amount and recomputes the thresholds, telling a
// provider which parameters must be measured carefully and which barely
// matter — e.g. the t_aoi linear term dominates RTFDemo's capacity while
// the forwarded-input terms only move l_max.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/thresholds.hpp"

namespace roia::model {

struct SensitivityEntry {
  ParamKind kind{ParamKind::kUaDser};
  std::size_t coeffIndex{0};
  /// Relative perturbation applied (e.g. +0.1 = +10 %).
  double perturbation{0.0};
  std::size_t nMax1{0};
  std::size_t lMax{1};
  /// Relative change of n_max(1) vs. the baseline, in percent.
  double nMaxDeltaPct{0.0};
  /// Absolute change of l_max vs. the baseline.
  int lMaxDelta{0};
};

struct SensitivityReport {
  double thresholdMicros{0.0};
  double improvementFactorC{0.0};
  double perturbation{0.0};
  std::size_t baselineNMax1{0};
  std::size_t baselineLMax{1};
  std::vector<SensitivityEntry> entries;

  /// Entries sorted by |n_max impact|, strongest first.
  [[nodiscard]] std::vector<SensitivityEntry> rankedByImpact() const;
  [[nodiscard]] std::string toString() const;
};

/// Perturbs every non-zero coefficient of every parameter by +/-`relative`
/// and recomputes n_max(1) and l_max for each single-coefficient change.
[[nodiscard]] SensitivityReport analyzeSensitivity(const ModelParameters& params,
                                                   double thresholdMicros,
                                                   double improvementFactorC,
                                                   double relative = 0.10, std::size_t npcs = 0);

}  // namespace roia::model
