#include "model/tick_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace roia::model {

double TickModel::activeUserCost(double n) const {
  return params_.eval(ParamKind::kUaDser, n) + params_.eval(ParamKind::kUa, n) +
         params_.eval(ParamKind::kAoi, n) + params_.eval(ParamKind::kSu, n);
}

double TickModel::shadowCost(double n) const {
  return params_.eval(ParamKind::kFaDser, n) + params_.eval(ParamKind::kFa, n);
}

double TickModel::tickMicros(double l, double n, double m) const {
  if (l < 1.0) throw std::invalid_argument("TickModel: l must be >= 1");
  return tickMicros(l, n, m, n / l);
}

double TickModel::tickMicros(double l, double n, double m, double a) const {
  if (l < 1.0) throw std::invalid_argument("TickModel: l must be >= 1");
  a = std::clamp(a, 0.0, n);
  return a * activeUserCost(n) + (n - a) * shadowCost(n) +
         (m / l) * params_.eval(ParamKind::kNpc, n);
}

}  // namespace roia::model
