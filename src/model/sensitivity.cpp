#include "model/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace roia::model {

SensitivityReport analyzeSensitivity(const ModelParameters& params, double thresholdMicros,
                                     double improvementFactorC, double relative,
                                     std::size_t npcs) {
  SensitivityReport report;
  report.thresholdMicros = thresholdMicros;
  report.improvementFactorC = improvementFactorC;
  report.perturbation = relative;

  const TickModel baseline(params);
  report.baselineNMax1 = nMax(baseline, 1, npcs, thresholdMicros);
  report.baselineLMax = lMax(baseline, npcs, thresholdMicros, improvementFactorC).lMax;

  for (std::size_t k = 0; k < kParamCount; ++k) {
    const auto kind = static_cast<ParamKind>(k);
    const ParamFunction& fn = params.at(kind);
    for (std::size_t c = 0; c < fn.coeffs.size(); ++c) {
      if (fn.coeffs[c] == 0.0) continue;  // nothing to perturb
      for (const double sign : {+1.0, -1.0}) {
        ModelParameters perturbed = params;
        ParamFunction changed = fn;
        changed.coeffs[c] *= 1.0 + sign * relative;
        perturbed.set(kind, changed);
        const TickModel model(std::move(perturbed));

        SensitivityEntry entry;
        entry.kind = kind;
        entry.coeffIndex = c;
        entry.perturbation = sign * relative;
        entry.nMax1 = nMax(model, 1, npcs, thresholdMicros);
        entry.lMax = lMax(model, npcs, thresholdMicros, improvementFactorC).lMax;
        entry.nMaxDeltaPct =
            report.baselineNMax1 > 0
                ? 100.0 *
                      (static_cast<double>(entry.nMax1) -
                       static_cast<double>(report.baselineNMax1)) /
                      static_cast<double>(report.baselineNMax1)
                : 0.0;
        entry.lMaxDelta = static_cast<int>(entry.lMax) - static_cast<int>(report.baselineLMax);
        report.entries.push_back(entry);
      }
    }
  }
  return report;
}

std::vector<SensitivityEntry> SensitivityReport::rankedByImpact() const {
  std::vector<SensitivityEntry> ranked = entries;
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const SensitivityEntry& a, const SensitivityEntry& b) {
                     return std::fabs(a.nMaxDeltaPct) > std::fabs(b.nMaxDeltaPct);
                   });
  return ranked;
}

std::string SensitivityReport::toString() const {
  std::ostringstream oss;
  oss << "Sensitivity at U = " << thresholdMicros / 1000.0 << " ms, c = " << improvementFactorC
      << ", perturbation = " << perturbation * 100 << "%\n";
  oss << "baseline: n_max(1) = " << baselineNMax1 << ", l_max = " << baselineLMax << "\n";
  for (const SensitivityEntry& e : rankedByImpact()) {
    oss << "  " << paramName(e.kind) << "[c" << e.coeffIndex << "] "
        << (e.perturbation > 0 ? "+" : "") << e.perturbation * 100 << "% -> n_max(1) "
        << e.nMax1 << " (" << (e.nMaxDeltaPct >= 0 ? "+" : "") << e.nMaxDeltaPct
        << "%), l_max " << e.lMax << "\n";
  }
  return oss.str();
}

}  // namespace roia::model
