#include "model/bandwidth.hpp"

#include <sstream>
#include <stdexcept>

#include "fit/levmar.hpp"
#include "fit/polyfit.hpp"

namespace roia::model {
namespace {

ParamFunction fitRate(std::span<const BandwidthSample> samples, bool egress) {
  std::vector<double> x, y;
  x.reserve(samples.size());
  y.reserve(samples.size());
  for (const BandwidthSample& s : samples) {
    x.push_back(static_cast<double>(s.users));
    y.push_back(egress ? s.egressBytesPerSec : s.ingressBytesPerSec);
  }
  // Quadratic: update sizes grow with the visible population, which itself
  // grows with n, so egress is superlinear in n.
  std::vector<double> coeffs = fit::polyFit(x, y, 2);
  const fit::LevMarResult lm =
      fit::levenbergMarquardt(fit::models::quadratic(), x, y, coeffs);
  ParamFunction fn;
  fn.form = FunctionForm::kQuadratic;
  fn.coeffs = lm.coeffs;
  fn.sampleCount = samples.size();
  fn.gof = fit::evaluateFit(fit::models::quadratic(), x, y, lm.coeffs);
  return fn;
}

}  // namespace

BandwidthModel BandwidthModel::fit(std::span<const BandwidthSample> samples, std::string codec) {
  if (samples.size() < 3) {
    throw std::invalid_argument("BandwidthModel::fit: need at least 3 samples");
  }
  BandwidthModel model;
  model.codec_ = std::move(codec);
  model.replicas_ = samples.front().replicas;
  for (const BandwidthSample& s : samples) {
    if (s.replicas != model.replicas_) {
      throw std::invalid_argument("BandwidthModel::fit: mixed replica counts");
    }
  }
  model.ingress_ = fitRate(samples, false);
  model.egress_ = fitRate(samples, true);
  return model;
}

double BandwidthModel::asymmetry(double n) const {
  const double in = predictIngressBytesPerSec(n);
  return in > 0.0 ? predictEgressBytesPerSec(n) / in : 0.0;
}

double BandwidthModel::egressBytesPerUser(double n) const {
  return n > 0.0 ? predictEgressBytesPerSec(n) / n : 0.0;
}

std::size_t BandwidthModel::nMaxForLink(double linkBytesPerSec, std::size_t cap) const {
  const auto violates = [&](std::size_t n) {
    return predictEgressBytesPerSec(static_cast<double>(n)) >= linkBytesPerSec;
  };
  if (violates(1)) return 0;
  if (!violates(cap)) return cap;
  std::size_t lo = 1, hi = cap;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    (violates(mid) ? hi : lo) = mid;
  }
  return lo;
}

std::string BandwidthModel::describe() const {
  std::ostringstream oss;
  oss << "per-server traffic model at l = " << replicas_ << " replicas\n";
  oss << "  ingress(n) B/s = " << ingress_.coeffs[0] << " + " << ingress_.coeffs[1] << "*n + "
      << ingress_.coeffs[2] << "*n^2  (R^2=" << ingress_.gof.r2 << ")\n";
  oss << "  egress(n)  B/s = " << egress_.coeffs[0] << " + " << egress_.coeffs[1] << "*n + "
      << egress_.coeffs[2] << "*n^2  (R^2=" << egress_.gof.r2 << ")\n";
  return oss.str();
}

}  // namespace roia::model
