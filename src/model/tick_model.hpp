// The scalability model's tick-duration equations (paper section III).
//
// Eq. (1): equal user distribution over l replicas
//   T(l,n,m) = n/l * (t_ua_dser + t_ua + t_aoi + t_su)(n)
//            + (n - n/l) * (t_fa_dser + t_fa)(n)
//            + m/l * t_npc(n)
//
// Eq. (4): explicit active-entity count a (non-equal distributions)
//   T(l,n,m,a) = a * (t_ua_dser + t_ua + t_aoi + t_su)(n)
//              + (n - a) * (t_fa_dser + t_fa)(n)
//              + m/l * t_npc(n)
//
// All times are reference microseconds.
#pragma once

#include "model/parameters.hpp"

namespace roia::model {

/// Inter-zone coordination costs of a sharded world (extension beyond the
/// paper, in the spirit of Gunther's USL coherence term): per neighboring
/// zone a fixed border-sync overhead, plus a per-border-shadow cost for
/// deserializing and applying cross-zone AOI mirrors. Defaults are zero, so
/// single-zone predictions are untouched.
struct CoordinationParams {
  double perNeighborMicros{0.0};
  double perBorderEntityMicros{0.0};
};

class TickModel {
 public:
  explicit TickModel(ModelParameters params) : params_(std::move(params)) {}

  [[nodiscard]] const ModelParameters& parameters() const { return params_; }

  void setCoordination(CoordinationParams coordination) { coordination_ = coordination; }
  [[nodiscard]] const CoordinationParams& coordination() const { return coordination_; }

  /// Inter-zone coordination term: cost added to every tick of a zone with
  /// `neighbors` adjacent zones mirroring `borderEntities` border shadows.
  [[nodiscard]] double coordinationMicros(double neighbors, double borderEntities) const {
    return neighbors * coordination_.perNeighborMicros +
           borderEntities * coordination_.perBorderEntityMicros;
  }

  /// Per-zone tick prediction for a sharded world: Eq. (1) for the zone's
  /// own population plus the coordination term.
  [[nodiscard]] double zoneTickMicros(double l, double n, double m, double neighbors,
                                      double borderEntities) const {
    return tickMicros(l, n, m) + coordinationMicros(neighbors, borderEntities);
  }
  [[nodiscard]] double zoneTickMillis(double l, double n, double m, double neighbors,
                                      double borderEntities) const {
    return zoneTickMicros(l, n, m, neighbors, borderEntities) / 1000.0;
  }

  /// Per-user cost of the "active" tasks at population n:
  /// (t_ua_dser + t_ua + t_aoi + t_su)(n).
  [[nodiscard]] double activeUserCost(double n) const;

  /// Per-shadow cost of the forwarded tasks: (t_fa_dser + t_fa)(n).
  [[nodiscard]] double shadowCost(double n) const;

  /// Eq. (1): tick duration in microseconds for n users and m NPCs spread
  /// equally over l replicas (l >= 1).
  [[nodiscard]] double tickMicros(double l, double n, double m) const;

  /// Eq. (4): tick duration for a server holding `a` active entities out of
  /// n total users, with m NPCs spread over l replicas.
  [[nodiscard]] double tickMicros(double l, double n, double m, double a) const;

  [[nodiscard]] double tickMillis(double l, double n, double m) const {
    return tickMicros(l, n, m) / 1000.0;
  }
  [[nodiscard]] double tickMillis(double l, double n, double m, double a) const {
    return tickMicros(l, n, m, a) / 1000.0;
  }

  /// Migration-cost parameters of Eq. (5), microseconds at population n.
  [[nodiscard]] double migInitiateMicros(double n) const {
    return params_.eval(ParamKind::kMigIni, n);
  }
  [[nodiscard]] double migReceiveMicros(double n) const {
    return params_.eval(ParamKind::kMigRcv, n);
  }

 private:
  ModelParameters params_;
  CoordinationParams coordination_{};
};

}  // namespace roia::model
