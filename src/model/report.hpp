// Threshold report: everything the scalability model tells an application
// provider about one application, in one structure — used by the examples
// and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/thresholds.hpp"
#include "model/tick_model.hpp"

namespace roia::model {

struct ThresholdReport {
  double thresholdMs{40.0};
  double improvementFactorC{0.15};
  std::size_t npcs{0};

  std::size_t lMax{1};
  /// n_max(l) for l = 1..lMax.
  std::vector<std::size_t> nMaxPerReplica;
  /// Replication-trigger user counts (the 80 % rule of Fig. 5's dashed
  /// line), per replica count.
  std::vector<std::size_t> replicationTriggers;
  double triggerFraction{0.8};

  [[nodiscard]] std::string toString() const;
};

/// Computes the full report for an application's fitted model.
[[nodiscard]] ThresholdReport buildReport(const TickModel& model, double thresholdMs,
                                          double improvementFactorC, std::size_t npcs = 0,
                                          double triggerFraction = 0.8);

}  // namespace roia::model
