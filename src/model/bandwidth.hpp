// Bandwidth extension of the scalability model.
//
// The paper's related-work section notes (citing Kim et al.) an asymmetry
// between incoming and outgoing server traffic and states: "we still need
// to implement bandwidth analysis for our scalability model". This module
// implements that extension: per-server ingress/egress rates are measured
// at a sweep of populations, fitted with the same Levenberg-Marquardt
// pipeline, and inverted into a bandwidth-limited maximum user count
// analogous to Eq. (2).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "fit/gof.hpp"
#include "model/parameters.hpp"

namespace roia::model {

/// One measured operating point: average per-server traffic at a steady
/// population.
struct BandwidthSample {
  std::size_t users{0};
  std::size_t replicas{1};
  double ingressBytesPerSec{0.0};
  double egressBytesPerSec{0.0};
};

/// Fitted per-server traffic model for a fixed replica count: ingress and
/// egress bytes/s as polynomials in the zone population n. A model is tied
/// to one replication codec ("full" whole-snapshot updates, "delta"
/// baseline-aware updates), so egress curves of different codecs can be
/// compared and each inverted into its own bandwidth-limited n_max.
class BandwidthModel {
 public:
  /// Fits quadratic ingress/egress rate functions over samples that must
  /// all share one replica count and were measured under `codec`. Throws
  /// std::invalid_argument on mixed replica counts or fewer than 3 samples.
  static BandwidthModel fit(std::span<const BandwidthSample> samples,
                            std::string codec = "full");

  [[nodiscard]] std::size_t replicas() const { return replicas_; }
  /// Replication codec label the samples were measured under.
  [[nodiscard]] const std::string& codec() const { return codec_; }
  [[nodiscard]] double predictIngressBytesPerSec(double n) const { return ingress_.eval(n); }
  [[nodiscard]] double predictEgressBytesPerSec(double n) const { return egress_.eval(n); }

  /// Egress / ingress ratio at population n (the Kim et al. asymmetry;
  /// game servers send far more than they receive).
  [[nodiscard]] double asymmetry(double n) const;

  /// Bandwidth analogue of Eq. (2): the largest population whose per-server
  /// egress (the binding direction) stays below the link capacity. For a
  /// delta-codec model the egress curve is flatter, so the same link admits
  /// a larger population than under the full codec.
  [[nodiscard]] std::size_t nMaxForLink(double linkBytesPerSec, std::size_t cap = 1000000) const;

  /// Per-user share of the server's egress at population n — the headline
  /// codec-efficiency figure (bytes/s each connected user costs the uplink).
  [[nodiscard]] double egressBytesPerUser(double n) const;

  [[nodiscard]] const ParamFunction& ingressFunction() const { return ingress_; }
  [[nodiscard]] const ParamFunction& egressFunction() const { return egress_; }

  [[nodiscard]] std::string describe() const;

 private:
  std::size_t replicas_{1};
  std::string codec_{"full"};
  ParamFunction ingress_;
  ParamFunction egress_;
};

}  // namespace roia::model
