// Fits measured per-item CPU-time samples into the model's approximation
// functions, mirroring the paper's methodology: choose a functional form per
// parameter (linear or quadratic), then run Levenberg-Marquardt (the paper
// uses gnuplot's implementation) seeded by a closed-form polynomial fit.
#pragma once

#include <array>
#include <optional>

#include "common/stats.hpp"
#include "model/parameters.hpp"
#include "rtf/probes.hpp"

namespace roia::model {

/// Which functional form to fit for each parameter. The default is the
/// paper's choice for RTFDemo (section V-A).
struct FitPlan {
  std::array<FunctionForm, kParamCount> forms{};
  /// Parameters marked here are fitted with BOTH linear and quadratic forms
  /// and the winner is chosen by corrected AIC evaluated on per-population
  /// mean residuals — per-tick samples are replicates, not independent
  /// observations (the simpler form wins ties within 2 AICc units).
  /// `forms` is the fallback when the sweep has too few populations to
  /// discriminate.
  std::array<bool, kParamCount> autoSelect{};

  [[nodiscard]] static FitPlan paperDefault();
  /// paperDefault with automatic form selection for the parameters whose
  /// shape depends on the interest-management algorithm (t_ua, t_aoi): under
  /// the flat grid they flatten to ~linear, under Euclidean they stay
  /// quadratic, and the fitter should discover that instead of assuming it.
  [[nodiscard]] static FitPlan adaptive();
};

/// Maps a real-time-loop phase probe to its model parameter (1:1 for the
/// nine modeled phases; kOther has no parameter).
[[nodiscard]] std::optional<ParamKind> paramKindForPhase(rtf::Phase phase);
[[nodiscard]] rtf::Phase phaseForParamKind(ParamKind kind);

class ParameterEstimator {
 public:
  /// Installs the (x = n, y = per-item microseconds) samples for a
  /// parameter. Replaces previous samples for that kind.
  void setSamples(ParamKind kind, SampleSeries samples);

  [[nodiscard]] const SampleSeries& samples(ParamKind kind) const {
    return samples_[static_cast<std::size_t>(kind)];
  }

  /// Fits every parameter with samples. Parameters without samples stay at
  /// the zero constant (e.g. t_npc when the sweep ran without NPCs).
  /// When `refineWithLevMar` is set (default, the paper's method), the
  /// closed-form polynomial fit is refined by Levenberg-Marquardt.
  [[nodiscard]] ModelParameters fit(const FitPlan& plan = FitPlan::paperDefault(),
                                    bool refineWithLevMar = true) const;

 private:
  std::array<SampleSeries, kParamCount> samples_;
};

}  // namespace roia::model
