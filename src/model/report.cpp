#include "model/report.hpp"

#include <cmath>
#include <sstream>

namespace roia::model {

ThresholdReport buildReport(const TickModel& model, double thresholdMs, double improvementFactorC,
                            std::size_t npcs, double triggerFraction) {
  ThresholdReport report;
  report.thresholdMs = thresholdMs;
  report.improvementFactorC = improvementFactorC;
  report.npcs = npcs;
  report.triggerFraction = triggerFraction;

  const double thresholdMicros = thresholdMs * 1000.0;
  const LMaxResult result = lMax(model, npcs, thresholdMicros, improvementFactorC);
  report.lMax = result.lMax;
  report.nMaxPerReplica = result.nMaxPerReplica;
  report.replicationTriggers.reserve(result.nMaxPerReplica.size());
  for (const std::size_t n : result.nMaxPerReplica) {
    report.replicationTriggers.push_back(
        static_cast<std::size_t>(std::floor(triggerFraction * static_cast<double>(n))));
  }
  return report;
}

std::string ThresholdReport::toString() const {
  std::ostringstream oss;
  oss << "Scalability thresholds (U = " << thresholdMs << " ms, c = " << improvementFactorC
      << ", m = " << npcs << " NPCs)\n";
  oss << "  l_max = " << lMax << " replicas\n";
  for (std::size_t i = 0; i < nMaxPerReplica.size(); ++i) {
    oss << "  l = " << (i + 1) << ": n_max = " << nMaxPerReplica[i]
        << "  (replication trigger at " << replicationTriggers[i] << " users)\n";
  }
  return oss.str();
}

}  // namespace roia::model
