// Threshold derivations of the scalability model (paper Eqs. (2), (3), (5)):
// maximum users per replica count, maximum useful replica count, and
// per-second migration budgets.
#pragma once

#include <cstddef>
#include <vector>

#include "model/tick_model.hpp"

namespace roia::model {

/// Eq. (2): n_max(l, m, U) = max{ n | T(l, n, m) < U }.
/// U is in microseconds. Returns 0 when even a single user violates U.
/// `cap` bounds the search (tick duration is monotone in n for sane
/// parameter sets; verified by the property tests).
[[nodiscard]] std::size_t nMax(const TickModel& model, std::size_t l, std::size_t m,
                               double thresholdMicros, std::size_t cap = 1000000);

/// Eq. (2) extended for a sharded world: largest per-zone population whose
/// zone tick — Eq. (1) plus the inter-zone coordination term — stays below
/// U, with `borderShare` of the zone's users assumed to sit inside the
/// border band (so borderEntities = borderShare * n of each neighbor is
/// mirrored here; we charge it symmetrically as borderShare * n).
[[nodiscard]] std::size_t nMaxZoned(const TickModel& model, std::size_t l, std::size_t m,
                                    double thresholdMicros, std::size_t neighbors,
                                    double borderShare, std::size_t cap = 1000000);

struct LMaxResult {
  std::size_t lMax{1};
  /// n_max(l) for l = 1..lMax (index 0 -> l=1).
  std::vector<std::size_t> nMaxPerReplica;
  /// Minimum per-replica improvement demanded: c * n_max(1).
  double requiredImprovement{0.0};
};

/// Eq. (3): the maximum number of replicas such that adding replica l still
/// supports n_max(l-1) + c*n_max(1) users under threshold U. c in (0, 1].
[[nodiscard]] LMaxResult lMax(const TickModel& model, std::size_t m, double thresholdMicros,
                              double c, std::size_t lCap = 512);

/// Eq. (5): migration budgets. Given the modeled tick duration
/// T(l, n, m, a), the number of migrations that fit in the remaining
/// headroom before the threshold U:
///   x_max = max{ x | T + x * t_mig < U }.
[[nodiscard]] std::size_t xMaxInitiate(const TickModel& model, std::size_t l, std::size_t n,
                                       std::size_t m, std::size_t a, double thresholdMicros);
[[nodiscard]] std::size_t xMaxReceive(const TickModel& model, std::size_t l, std::size_t n,
                                      std::size_t m, std::size_t a, double thresholdMicros);

/// Same budgets from an *observed* tick duration instead of the modeled one
/// (how RTF-RMS applies the model at runtime; x-axis of paper Fig. 7).
[[nodiscard]] std::size_t xMaxFromObservedTick(double tickMicros, double migCostMicros,
                                               double thresholdMicros);

}  // namespace roia::model
