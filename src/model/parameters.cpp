#include "model/parameters.hpp"

#include <algorithm>
#include <sstream>

#include "common/math.hpp"

namespace roia::model {

double ParamFunction::eval(double n) const {
  return std::max(0.0, evalPolynomial(coeffs, n));
}

ParamFunction ParamFunction::constant(double value) {
  return ParamFunction{FunctionForm::kConstant, {value}, {}, 0};
}

ParamFunction ParamFunction::linear(double c0, double c1) {
  return ParamFunction{FunctionForm::kLinear, {c0, c1}, {}, 0};
}

ParamFunction ParamFunction::quadratic(double c0, double c1, double c2) {
  return ParamFunction{FunctionForm::kQuadratic, {c0, c1, c2}, {}, 0};
}

ModelParameters::ModelParameters() {
  for (auto& p : params_) p = ParamFunction::constant(0.0);
}

std::string ModelParameters::describe() const {
  std::ostringstream oss;
  for (std::size_t k = 0; k < kParamCount; ++k) {
    const auto kind = static_cast<ParamKind>(k);
    const ParamFunction& fn = at(kind);
    oss << paramName(kind) << "(n) = ";
    for (std::size_t i = 0; i < fn.coeffs.size(); ++i) {
      if (i > 0) oss << (fn.coeffs[i] >= 0 ? " + " : " - ");
      const double c = i > 0 ? std::abs(fn.coeffs[i]) : fn.coeffs[i];
      oss << c;
      if (i == 1) oss << "*n";
      if (i >= 2) oss << "*n^" << i;
    }
    oss << "  [" << formName(fn.form) << ", R^2=" << fn.gof.r2
        << ", samples=" << fn.sampleCount << "]\n";
  }
  return oss.str();
}

}  // namespace roia::model
