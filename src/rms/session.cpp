#include "rms/session.hpp"

#include <algorithm>
#include <limits>

#include "common/log.hpp"
#include "rms/baseline_strategies.hpp"
#include "rms/model_strategy.hpp"

namespace roia::rms {

StrategyFactory makeModelDrivenFactory() {
  return [](const ManagedSessionConfig& config, const model::TickModel& tickModel) {
    return std::make_unique<ModelDrivenStrategy>(tickModel, config.modelStrategy);
  };
}

StrategyFactory makeStaticIntervalFactory() {
  return [](const ManagedSessionConfig& config, const model::TickModel&) {
    StaticStrategyConfig staticConfig;
    staticConfig.upperTickMs = config.modelStrategy.upperTickMs;
    return std::make_unique<StaticIntervalStrategy>(staticConfig);
  };
}

StrategyFactory makeUnthrottledFactory() {
  return [](const ManagedSessionConfig& config, const model::TickModel& tickModel) {
    return std::make_unique<UnthrottledMigrationStrategy>(
        tickModel, config.modelStrategy.upperTickMs, config.modelStrategy.improvementFactorC,
        config.modelStrategy.triggerFraction, config.modelStrategy.npcs);
  };
}

SessionSummary runManagedSession(const ManagedSessionConfig& config,
                                 const model::TickModel& tickModel) {
  game::FpsApplication app(config.fps);
  rtf::Cluster cluster(app, rtf::ClusterConfig{config.server, rtf::ClientEndpoint::Config{},
                                               config.seed, config.telemetry});
  const ZoneId zone =
      cluster.createZone("arena", config.fps.arenaOrigin, config.fps.arenaExtent);
  for (std::size_t i = 0; i < std::max<std::size_t>(1, config.initialReplicas); ++i) {
    cluster.addServer(zone);
  }

  RmsConfig rmsConfig = config.rms;
  rmsConfig.upperTickMs = config.modelStrategy.upperTickMs;
  rmsConfig.npcs = config.modelStrategy.npcs;
  // The detector's notion of "missed a beat" must match what servers send.
  rmsConfig.heartbeatPeriod = config.server.heartbeatPeriod;
  if (rmsConfig.useNetworkMonitoring || rmsConfig.detectFailures) {
    cluster.attachMonitoringCollector();
  }

  std::uint64_t crashesInjected = 0;
  if (config.faults) {
    const SessionFaultPlan& plan = *config.faults;
    net::FaultInjector& injector = cluster.enableFaultInjection(
        plan.faultSeed != 0 ? plan.faultSeed : config.seed ^ 0xC4A05ULL);
    injector.setDefaultFaults(plan.link);
    if (plan.crashAt) {
      cluster.simulation().scheduleAfter(*plan.crashAt, [&cluster, &crashesInjected, zone] {
        // Kill the most-loaded replica — the worst case for recovery. With a
        // single replica the whole zone would vanish; skip then.
        const std::vector<ServerId> replicas = cluster.zones().replicas(zone);
        if (replicas.size() < 2) {
          ROIA_LOG(LogLevel::kWarn, "rms.session", "crash skipped: zone has a lone replica");
          return;
        }
        ServerId victim = replicas.front();
        std::size_t most = 0;
        for (const ServerId id : replicas) {
          const std::size_t users = cluster.server(id).connectedUsers();
          if (users > most) {
            most = users;
            victim = id;
          }
        }
        cluster.crashServer(victim);
        ++crashesInjected;
      });
    }
  }

  std::unique_ptr<Strategy> strategy = config.strategyFactory(config, tickModel);
  const std::string policy = strategy->name();
  RmsManager manager(cluster, zone, std::move(strategy), ResourcePool{}, rmsConfig);

  game::ChurnDriver::Config churnConfig;
  churnConfig.bots = config.bots;
  churnConfig.seed = config.seed ^ 0xC0DE;
  game::ChurnDriver churn(cluster, zone, config.scenario, churnConfig);

  // Client-side QoE sampler: periodically read the update rates players
  // actually observe.
  StatAccumulator qoeRates;
  double qoeMinRate = std::numeric_limits<double>::infinity();
  double qoeWorstGap = 0.0;
  auto qoeToken = cluster.simulation().schedulePeriodic(
      config.rms.controlPeriod, [&](SimTime) {
        for (const ClientId id : cluster.clientIds()) {
          const rtf::ClientEndpoint& endpoint = cluster.client(id);
          // Skip freshly joined clients without a meaningful rate yet.
          if (endpoint.updatesReceived() < 25) continue;
          const double rate = endpoint.updateRateHz();
          if (rate <= 0.0) continue;
          qoeRates.add(rate);
          qoeMinRate = std::min(qoeMinRate, rate);
          qoeWorstGap = std::max(qoeWorstGap, endpoint.worstUpdateGapMs());
        }
        return true;
      });

  manager.start();
  churn.start();
  cluster.run(config.scenario.totalDuration() + config.tail);
  churn.stop();
  manager.stop();
  sim::Simulation::cancelPeriodic(qoeToken);

  SessionSummary summary;
  summary.policy = policy;
  summary.timeline = manager.timeline();
  for (const TimelinePoint& p : summary.timeline) {
    summary.peakUsers = std::max(summary.peakUsers, p.users);
    summary.peakServers = std::max(summary.peakServers, p.servers);
    summary.maxTickMs = std::max(summary.maxTickMs, p.maxTickMs);
  }
  summary.violationPeriods = manager.violationPeriods();
  summary.violationFraction =
      summary.timeline.empty()
          ? 0.0
          : static_cast<double>(summary.violationPeriods) /
                static_cast<double>(summary.timeline.size());
  summary.migrations = manager.migrationsOrderedTotal();
  summary.replicasAdded = manager.replicasAdded();
  summary.replicasRemoved = manager.replicasRemoved();
  summary.substitutions = manager.substitutions();
  summary.serverSeconds = manager.pool().serverSeconds(cluster.simulation().now());
  summary.resourceCost = manager.pool().totalCost(cluster.simulation().now());
  summary.clientUpdateRateAvgHz = qoeRates.mean();
  summary.clientUpdateRateMinHz = qoeRates.empty() ? 0.0 : qoeMinRate;
  summary.clientWorstGapMs = qoeWorstGap;
  summary.crashesInjected = crashesInjected;
  summary.crashesDetected = manager.crashesDetected();
  summary.recoveries = manager.recoveries();
  for (const RecoveryRecord& r : summary.recoveries) {
    summary.clientsRehomed += r.clientsRehomed;
    summary.clientsLost += r.clientsLost;
  }
  return summary;
}

}  // namespace roia::rms
