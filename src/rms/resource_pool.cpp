#include "rms/resource_pool.hpp"

#include <algorithm>

namespace roia::rms {

ResourcePool::ResourcePool()
    : ResourcePool(std::vector<ResourceFlavor>{
          ResourceFlavor{"standard", 1.0, 1.0, std::numeric_limits<std::size_t>::max()},
          ResourceFlavor{"large", 2.0, 2.5, 8},
      }) {}

ResourcePool::ResourcePool(std::vector<ResourceFlavor> flavors)
    : flavors_(std::move(flavors)), inUse_(flavors_.size(), 0) {}

std::optional<std::size_t> ResourcePool::strongerFlavor(double speedFactor) const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < flavors_.size(); ++i) {
    if (flavors_[i].speedFactor <= speedFactor) continue;
    if (availableOf(i) == 0) continue;
    if (!best || flavors_[i].costPerHour < flavors_[*best].costPerHour) best = i;
  }
  return best;
}

std::size_t ResourcePool::availableOf(std::size_t flavorIdx) const {
  const ResourceFlavor& f = flavors_.at(flavorIdx);
  return f.capacity == std::numeric_limits<std::size_t>::max()
             ? f.capacity
             : f.capacity - std::min(f.capacity, inUse_[flavorIdx]);
}

std::optional<LeaseId> ResourcePool::lease(std::size_t flavorIdx, SimTime now) {
  if (flavorIdx >= flavors_.size() || availableOf(flavorIdx) == 0) return std::nullopt;
  ++inUse_[flavorIdx];
  const LeaseId id = nextLease_++;
  active_.emplace(id, Lease{flavorIdx, now});
  return id;
}

void ResourcePool::release(LeaseId id, SimTime now) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  const Lease& lease = it->second;
  const double seconds = std::max(0.0, (now - lease.start).asSeconds());
  completedServerSeconds_ += seconds;
  completedCost_ += seconds / 3600.0 * flavors_[lease.flavorIdx].costPerHour;
  --inUse_[lease.flavorIdx];
  active_.erase(it);
}

std::optional<std::size_t> ResourcePool::leaseFlavor(LeaseId id) const {
  auto it = active_.find(id);
  if (it == active_.end()) return std::nullopt;
  return it->second.flavorIdx;
}

double ResourcePool::serverSeconds(SimTime now) const {
  double total = completedServerSeconds_;
  for (const auto& [id, lease] : active_) {
    total += std::max(0.0, (now - lease.start).asSeconds());
  }
  return total;
}

double ResourcePool::totalCost(SimTime now) const {
  double total = completedCost_;
  for (const auto& [id, lease] : active_) {
    total += std::max(0.0, (now - lease.start).asSeconds()) / 3600.0 *
             flavors_[lease.flavorIdx].costPerHour;
  }
  return total;
}

}  // namespace roia::rms
