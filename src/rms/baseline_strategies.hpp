// Baseline load-balancing strategies for the ablation experiment:
//
//  * StaticIntervalStrategy — the paper's "initial implementation of
//    RTF-RMS": migrations equalize users completely each interval with no
//    budget, replication is reactive (only after the tick threshold is
//    already violated), and there is no l_max cap.
//  * UnthrottledMigrationStrategy — model-driven replication thresholds but
//    unbounded migrations; isolates the contribution of the Eq. (5) budgets.
#pragma once

#include "model/report.hpp"
#include "rms/strategy.hpp"

namespace roia::rms {

struct StaticStrategyConfig {
  double upperTickMs{40.0};
  /// Remove a replica when the zone-average tick is below this.
  double lowerTickMs{12.0};
  std::size_t imbalanceTolerance{0};  // equalize fully, like the initial RTF-RMS
};

class StaticIntervalStrategy final : public Strategy {
 public:
  explicit StaticIntervalStrategy(StaticStrategyConfig config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "static-interval"; }
  Decision decide(const ZoneView& view) override;

 private:
  StaticStrategyConfig config_;
};

/// Model-driven structural decisions + unlimited migrations.
class UnthrottledMigrationStrategy final : public Strategy {
 public:
  UnthrottledMigrationStrategy(model::TickModel tickModel, double upperTickMs,
                               double improvementFactorC, double triggerFraction = 0.8,
                               std::size_t npcs = 0);

  [[nodiscard]] std::string name() const override { return "unthrottled-migration"; }
  Decision decide(const ZoneView& view) override;

 private:
  model::TickModel model_;
  double upperTickMs_;
  double triggerFraction_;
  std::size_t npcs_;
  model::ThresholdReport report_;
};

/// Shared helper: equalizing migration orders with no budget limits.
void planUnthrottledMigrations(const ZoneView& view, std::size_t imbalanceTolerance,
                               Decision& decision);

}  // namespace roia::rms
