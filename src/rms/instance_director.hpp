// Instancing-based load distribution.
//
// RTF's third distribution method (Fig. 1) creates independent copies of a
// zone. Where replication runs out — the zone is at l_max and no stronger
// flavor exists, the paper's "critical user density" — an MMO-style
// provider opens another *instance* and routes new joins there. The
// director implements that routing policy on top of the cluster's
// instancing support, with the per-instance capacity taken from the
// scalability model (e.g. the 80 % trigger of the instance's replica
// count).
#pragma once

#include <cstddef>
#include <vector>

#include "model/report.hpp"
#include "rtf/cluster.hpp"

namespace roia::rms {

class InstanceDirector {
 public:
  struct Config {
    /// Maximum users routed into one instance (take it from the model,
    /// e.g. triggerFraction * n_max(replicasPerInstance)).
    std::size_t usersPerInstanceCap{190};
    /// Servers provisioned for each fresh instance.
    std::size_t replicasPerInstance{1};

    /// Model-derived capacity: the replication trigger of the report at
    /// `replicasPerInstance` replicas, i.e. triggerFraction * n_max(l).
    /// An instance then opens exactly when in-place replication would.
    [[nodiscard]] static Config fromReport(const model::ThresholdReport& report,
                                           std::size_t replicasPerInstance = 1);
  };

  /// `templateZone` must already have at least one server; it doubles as
  /// the first instance.
  InstanceDirector(rtf::Cluster& cluster, ZoneId templateZone, Config config);

  /// Zone a new user should join: the fullest instance still below the
  /// cap (fill instances before opening new ones), or a fresh instance.
  ZoneId routeJoin();

  /// All instances, template first.
  [[nodiscard]] const std::vector<ZoneId>& instances() const { return instances_; }
  [[nodiscard]] std::size_t instanceCount() const { return instances_.size(); }

  /// Total users over all instances.
  [[nodiscard]] std::size_t totalUsers() const;

  /// Shuts down instances that have no users left (template excluded).
  /// Returns how many were retired. Server teardown goes through the
  /// cluster; their zones remain registered but unused.
  std::size_t retireEmptyInstances();

 private:
  ZoneId openInstance();

  rtf::Cluster& cluster_;
  ZoneId templateZone_;
  Config config_;
  std::vector<ZoneId> instances_;
};

}  // namespace roia::rms
