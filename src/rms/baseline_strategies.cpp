#include "rms/baseline_strategies.hpp"

#include <algorithm>
#include <cmath>

namespace roia::rms {

void planUnthrottledMigrations(const ZoneView& view, std::size_t imbalanceTolerance,
                               Decision& decision) {
  const auto& servers = view.servers;
  if (servers.size() < 2) return;

  std::size_t liveServers = 0;
  std::size_t n = 0;
  for (const auto& s : servers) {
    n += s.activeUsers;
    if (!view.isDraining(s.server)) ++liveServers;
  }
  if (liveServers == 0 || n == 0) return;
  const double avg = static_cast<double>(n) / static_cast<double>(liveServers);

  // Everything above average flows out; everything below average flows in.
  // Deterministic greedy matching in snapshot order.
  struct Flow {
    ServerId server;
    std::size_t amount;
  };
  std::vector<Flow> sources;
  std::vector<Flow> sinks;
  sources.reserve(servers.size());
  sinks.reserve(servers.size());
  for (const auto& s : servers) {
    const bool draining = view.isDraining(s.server);
    const double deviation = static_cast<double>(s.activeUsers) - avg;
    if (draining) {
      if (s.activeUsers > 0) sources.push_back({s.server, s.activeUsers});
    } else if (deviation > static_cast<double>(imbalanceTolerance)) {
      sources.push_back({s.server, static_cast<std::size_t>(std::floor(deviation))});
    } else if (-deviation > static_cast<double>(imbalanceTolerance)) {
      sinks.push_back({s.server, static_cast<std::size_t>(std::floor(-deviation))});
    }
  }
  std::size_t si = 0;
  for (Flow& source : sources) {
    while (source.amount > 0 && si < sinks.size()) {
      const std::size_t moved = std::min(source.amount, sinks[si].amount);
      if (moved > 0) {
        decision.add(UserMigration{source.server, sinks[si].server, moved});
        source.amount -= moved;
        sinks[si].amount -= moved;
      }
      if (sinks[si].amount == 0) ++si;
    }
  }
}

Decision StaticIntervalStrategy::decide(const ZoneView& view) {
  Decision decision;
  if (view.servers.empty()) return decision;

  planUnthrottledMigrations(view, config_.imbalanceTolerance, decision);

  // Reactive replication: only after the threshold is already violated.
  if (view.maxTickMs() > config_.upperTickMs && view.pendingStarts == 0) {
    decision.add(ReplicationEnactment{});
    decision.threshold = "reactive:tick_upper";
    decision.rationale = "static: tick above threshold";
    return decision;
  }
  if (view.replicaCount() > 1 && view.pendingStarts == 0 && view.draining.empty() &&
      view.avgTickMs() < config_.lowerTickMs) {
    const rtf::MonitoringSnapshot* least = nullptr;
    for (const auto& s : view.servers) {
      if (least == nullptr || s.activeUsers < least->activeUsers) least = &s;
    }
    if (least != nullptr) {
      decision.add(ResourceRemoval{least->server});
      decision.threshold = "reactive:tick_lower";
      decision.rationale = "static: tick below lower threshold";
    }
  }
  return decision;
}

UnthrottledMigrationStrategy::UnthrottledMigrationStrategy(model::TickModel tickModel,
                                                           double upperTickMs,
                                                           double improvementFactorC,
                                                           double triggerFraction,
                                                           std::size_t npcs)
    : model_(std::move(tickModel)),
      upperTickMs_(upperTickMs),
      triggerFraction_(triggerFraction),
      npcs_(npcs),
      report_(model::buildReport(model_, upperTickMs, improvementFactorC, npcs,
                                 triggerFraction)) {}

Decision UnthrottledMigrationStrategy::decide(const ZoneView& view) {
  Decision decision;
  if (view.servers.empty()) return decision;

  planUnthrottledMigrations(view, 0, decision);

  const std::size_t effectiveReplicas = view.replicaCount() + view.pendingStarts;
  const std::size_t n = view.totalUsers();
  const std::size_t nMaxHere =
      effectiveReplicas <= report_.nMaxPerReplica.size()
          ? report_.nMaxPerReplica[effectiveReplicas - 1]
          : model::nMax(model_, effectiveReplicas, npcs_, upperTickMs_ * 1000.0);
  const std::size_t trigger = static_cast<std::size_t>(
      std::floor(triggerFraction_ * static_cast<double>(nMaxHere)));
  decision.predictedTickMs =
      model_.tickMillis(static_cast<double>(std::max<std::size_t>(1, view.replicaCount())),
                        static_cast<double>(n), static_cast<double>(npcs_));
  if (n > trigger && effectiveReplicas < report_.lMax) {
    decision.add(ReplicationEnactment{});
    decision.threshold = "eq2:n_trigger";
    decision.rationale = "unthrottled: predictive replication";
  }
  return decision;
}

}  // namespace roia::rms
