// RTF-RMS: the dynamic resource management system (paper section IV).
//
// Each control period the manager takes monitoring snapshots of every
// replica of the managed zone, asks its strategy for a decision, and
// executes it against the cluster: migration orders become migrateClient
// calls, replication enactment leases a resource and (after its startup
// delay) adds a replica, substitution and removal drain a server before
// shutting it down and releasing its lease.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "obs/telemetry.hpp"
#include "rms/resource_pool.hpp"
#include "rms/strategy.hpp"
#include "rtf/cluster.hpp"

namespace roia::rms {

struct RmsConfig {
  SimDuration controlPeriod{SimDuration::seconds(1)};
  /// Time from lease to the replica serving (boot + application start).
  SimDuration serverStartupDelay{SimDuration::seconds(2)};
  /// Flavor index used for ordinary replication enactment.
  std::size_t standardFlavor{0};
  /// QoS bound used for violation accounting in the timeline.
  double upperTickMs{40.0};
  std::size_t npcs{0};
  /// Read monitoring from the cluster's network-attached collector instead
  /// of in-process snapshots; decisions then act on slightly stale data,
  /// like a real management plane. Requires attachMonitoringCollector().
  bool useNetworkMonitoring{false};

  /// Crash-failure detection and recovery. Each control period the manager
  /// asks the collector which managed servers have been heartbeat-silent for
  /// missedHeartbeats periods; those are declared dead, their clients are
  /// re-homed onto surviving replicas, their lease is reclaimed and a
  /// replacement replica is enacted. Requires useNetworkMonitoring (the
  /// detector reads the network-attached collector).
  bool detectFailures{false};
  /// Must match the servers' ServerConfig::heartbeatPeriod.
  SimDuration heartbeatPeriod{SimDuration::milliseconds(250)};
  std::size_t missedHeartbeats{2};
};

/// One timeline sample per control period (the data behind paper Fig. 8).
struct TimelinePoint {
  double timeSec{0.0};
  std::size_t users{0};
  std::size_t servers{0};
  std::size_t pendingServers{0};
  double avgCpuLoad{0.0};
  double avgTickMs{0.0};
  double maxTickMs{0.0};
  std::size_t migrationsOrdered{0};
  /// Cross-zone handoffs ordered by the balance pass this period.
  std::size_t handoffsOrdered{0};
  bool violation{false};
  /// Crash-failures detected (and recovered from) this period.
  std::size_t crashesDetected{0};
  /// Clients of dead replicas re-homed onto survivors this period.
  std::size_t clientsRehomed{0};
};

/// One detected crash and what recovery did about it.
struct RecoveryRecord {
  SimTime detectedAt{};
  ServerId server{};
  ZoneId zone{};
  std::size_t clientsRehomed{0};
  std::size_t shadowsPromoted{0};
  std::size_t clientsLost{0};
  std::size_t npcsAdopted{0};
  bool replacementOrdered{false};
};

class RmsManager {
 public:
  /// Manages every zone in `zones` with one strategy and one shared
  /// resource pool (zoning: each zone scales independently, but they
  /// compete for the same leased resources).
  RmsManager(rtf::Cluster& cluster, std::vector<ZoneId> zones,
             std::unique_ptr<Strategy> strategy, ResourcePool pool, RmsConfig config);
  /// Single-zone convenience (the paper's experiments use one zone).
  RmsManager(rtf::Cluster& cluster, ZoneId zone, std::unique_ptr<Strategy> strategy,
             ResourcePool pool, RmsConfig config)
      : RmsManager(cluster, std::vector<ZoneId>{zone}, std::move(strategy), std::move(pool),
                   config) {}
  ~RmsManager();

  RmsManager(const RmsManager&) = delete;
  RmsManager& operator=(const RmsManager&) = delete;

  void start();
  void stop();

  [[nodiscard]] const std::vector<TimelinePoint>& timeline() const { return timeline_; }
  [[nodiscard]] const ResourcePool& pool() const { return pool_; }
  [[nodiscard]] Strategy& strategy() { return *strategy_; }
  [[nodiscard]] std::uint64_t migrationsOrderedTotal() const { return migrationsOrdered_; }
  [[nodiscard]] std::uint64_t zoneHandoffsOrdered() const { return zoneHandoffsOrdered_; }
  [[nodiscard]] std::uint64_t replicasAdded() const { return replicasAdded_; }
  [[nodiscard]] std::uint64_t replicasRemoved() const { return replicasRemoved_; }
  [[nodiscard]] std::uint64_t substitutions() const { return substitutions_; }
  [[nodiscard]] std::size_t violationPeriods() const { return violationPeriods_; }
  [[nodiscard]] std::uint64_t crashesDetected() const { return recoveries_.size(); }
  [[nodiscard]] const std::vector<RecoveryRecord>& recoveries() const { return recoveries_; }
  /// Preemption notices answered with an ordered drain (clients migrated off
  /// before the provider reclaims the machine).
  [[nodiscard]] std::uint64_t gracefulDrains() const { return gracefulDrains_; }
  /// Preemption windows that expired with users still on the victim; the
  /// remainder was handled as a crash (re-homed, not lost silently).
  [[nodiscard]] std::uint64_t drainFallbacks() const { return drainFallbacks_; }

 private:
  bool controlStep(SimTime now);
  void auditZoneDecision(SimTime now, const ZoneView& view, const Decision& decision);
  /// Claims due preemption notices from the cluster's fault injector, drains
  /// the victims within their grace windows and enforces expired deadlines.
  void processPreemptions(SimTime now, TimelinePoint& point);
  void detectAndRecover(SimTime now, TimelinePoint& point);
  void executeZone(ZoneId zone, const Decision& decision);
  /// Executes the cross-zone balance() decision (ZoneHandoff actions).
  void executeBalance(SimTime now, const Decision& decision);
  bool beginReplicaStart(ZoneId zone, std::size_t flavorIdx,
                         std::optional<ServerId> drainAfterStart,
                         std::uint64_t recoveryTraceId = 0);
  void finishDrains();
  /// Feeds the recovery-latency SLO and audits a breach (detection →
  /// replacement serving, per crash-recovery protocol instance).
  void recordRecoveryLatency(ZoneId zone, ServerId dead, double e2eMs, SimTime now);

  rtf::Cluster& cluster_;
  std::vector<ZoneId> zones_;
  std::unique_ptr<Strategy> strategy_;
  ResourcePool pool_;
  RmsConfig config_;

  std::map<ServerId, LeaseId> serverLease_;
  std::set<ServerId> draining_;
  std::map<ZoneId, std::size_t> pendingStarts_;
  /// Servers under a preemption notice, mapped to the forced-termination
  /// deadline (notice time + grace window).
  std::map<ServerId, SimTime> preemptionDeadline_;
  /// Open graceful-drain protocol instances (victim → trace id). Maintained
  /// unconditionally (pure bookkeeping, no simulated cost); only the
  /// tracker calls are telemetry-gated.
  std::map<ServerId, std::uint64_t> drainTrace_;

  sim::Simulation::PeriodicToken token_;
  bool runningFlag_{false};

  // Telemetry (pure observer; inherited from the cluster, may be null).
  obs::Telemetry* telemetry_{nullptr};
  std::uint32_t traceTrack_{0};

  std::vector<TimelinePoint> timeline_;
  std::uint64_t migrationsOrdered_{0};
  std::uint64_t zoneHandoffsOrdered_{0};
  std::uint64_t replicasAdded_{0};
  std::uint64_t replicasRemoved_{0};
  std::uint64_t substitutions_{0};
  std::size_t violationPeriods_{0};
  std::uint64_t gracefulDrains_{0};
  std::uint64_t drainFallbacks_{0};
  std::vector<RecoveryRecord> recoveries_;
};

}  // namespace roia::rms
