// RTF-RMS: the dynamic resource management system (paper section IV).
//
// Each control period the manager takes monitoring snapshots of every
// replica of the managed zone, asks its strategy for a decision, and
// executes it against the cluster: migration orders become migrateClient
// calls, replication enactment leases a resource and (after its startup
// delay) adds a replica, substitution and removal drain a server before
// shutting it down and releasing its lease.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "rms/resource_pool.hpp"
#include "rms/strategy.hpp"
#include "rtf/cluster.hpp"

namespace roia::rms {

struct RmsConfig {
  SimDuration controlPeriod{SimDuration::seconds(1)};
  /// Time from lease to the replica serving (boot + application start).
  SimDuration serverStartupDelay{SimDuration::seconds(2)};
  /// Flavor index used for ordinary replication enactment.
  std::size_t standardFlavor{0};
  /// QoS bound used for violation accounting in the timeline.
  double upperTickMs{40.0};
  std::size_t npcs{0};
  /// Read monitoring from the cluster's network-attached collector instead
  /// of in-process snapshots; decisions then act on slightly stale data,
  /// like a real management plane. Requires attachMonitoringCollector().
  bool useNetworkMonitoring{false};
};

/// One timeline sample per control period (the data behind paper Fig. 8).
struct TimelinePoint {
  double timeSec{0.0};
  std::size_t users{0};
  std::size_t servers{0};
  std::size_t pendingServers{0};
  double avgCpuLoad{0.0};
  double avgTickMs{0.0};
  double maxTickMs{0.0};
  std::size_t migrationsOrdered{0};
  bool violation{false};
};

class RmsManager {
 public:
  /// Manages every zone in `zones` with one strategy and one shared
  /// resource pool (zoning: each zone scales independently, but they
  /// compete for the same leased resources).
  RmsManager(rtf::Cluster& cluster, std::vector<ZoneId> zones,
             std::unique_ptr<Strategy> strategy, ResourcePool pool, RmsConfig config);
  /// Single-zone convenience (the paper's experiments use one zone).
  RmsManager(rtf::Cluster& cluster, ZoneId zone, std::unique_ptr<Strategy> strategy,
             ResourcePool pool, RmsConfig config)
      : RmsManager(cluster, std::vector<ZoneId>{zone}, std::move(strategy), std::move(pool),
                   config) {}
  ~RmsManager();

  RmsManager(const RmsManager&) = delete;
  RmsManager& operator=(const RmsManager&) = delete;

  void start();
  void stop();

  [[nodiscard]] const std::vector<TimelinePoint>& timeline() const { return timeline_; }
  [[nodiscard]] const ResourcePool& pool() const { return pool_; }
  [[nodiscard]] Strategy& strategy() { return *strategy_; }
  [[nodiscard]] std::uint64_t migrationsOrderedTotal() const { return migrationsOrdered_; }
  [[nodiscard]] std::uint64_t replicasAdded() const { return replicasAdded_; }
  [[nodiscard]] std::uint64_t replicasRemoved() const { return replicasRemoved_; }
  [[nodiscard]] std::uint64_t substitutions() const { return substitutions_; }
  [[nodiscard]] std::size_t violationPeriods() const { return violationPeriods_; }

 private:
  bool controlStep(SimTime now);
  void executeZone(ZoneId zone, const Decision& decision);
  void beginReplicaStart(ZoneId zone, std::size_t flavorIdx,
                         std::optional<ServerId> drainAfterStart);
  void finishDrains();

  rtf::Cluster& cluster_;
  std::vector<ZoneId> zones_;
  std::unique_ptr<Strategy> strategy_;
  ResourcePool pool_;
  RmsConfig config_;

  std::map<ServerId, LeaseId> serverLease_;
  std::set<ServerId> draining_;
  std::map<ZoneId, std::size_t> pendingStarts_;

  sim::Simulation::PeriodicToken token_;
  bool runningFlag_{false};

  std::vector<TimelinePoint> timeline_;
  std::uint64_t migrationsOrdered_{0};
  std::uint64_t replicasAdded_{0};
  std::uint64_t replicasRemoved_{0};
  std::uint64_t substitutions_{0};
  std::size_t violationPeriods_{0};
};

}  // namespace roia::rms
