// Load-balancing strategies: what RTF-RMS decides each control period for
// one zone. The model-driven strategy (paper section IV) and the baselines
// used in the ablation experiment all implement this interface.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "rtf/monitoring.hpp"

namespace roia::rms {

/// One migration order: move `count` users from one replica to another.
struct MigrationOrder {
  ServerId from;
  ServerId to;
  std::size_t count{0};
};

/// An action the strategy considered but did not take, and why — recorded so
/// the audit log explains decisions, not just states them.
struct RejectedAction {
  std::string action;
  std::string reason;
};

/// The decision for one zone in one control period. At most one structural
/// action (add/substitute/remove) is taken per period, plus any number of
/// migration orders.
struct Decision {
  std::vector<MigrationOrder> migrations;
  bool addReplica{false};
  /// Replace this server by a more powerful flavor.
  std::optional<ServerId> substituteServer;
  /// Drain and shut down this server.
  std::optional<ServerId> removeServer;
  std::string rationale;

  // --- audit annotations (observability only; never drive execution) ---
  /// Model-predicted tick duration for the zone's current workload, ms;
  /// negative when the strategy has no model.
  double predictedTickMs{-1.0};
  /// Which threshold fired, e.g. "eq2:n_trigger", "eq3:l_max",
  /// "eq5:x_max"; "none" when no threshold was crossed.
  std::string threshold{"none"};
  /// Alternatives considered and discarded this period.
  std::vector<RejectedAction> rejected;

  [[nodiscard]] bool structural() const {
    return addReplica || substituteServer.has_value() || removeServer.has_value();
  }
};

/// What a strategy sees each control period.
struct ZoneView {
  ZoneId zone;
  SimTime now{};
  std::vector<rtf::MonitoringSnapshot> servers;
  /// Servers currently being drained (migration targets to avoid).
  std::vector<ServerId> draining;
  /// Replicas already leased but still starting up.
  std::size_t pendingStarts{0};
  std::size_t npcs{0};

  [[nodiscard]] std::size_t totalUsers() const {
    std::size_t total = 0;
    for (const auto& s : servers) total += s.activeUsers;
    return total;
  }
  [[nodiscard]] std::size_t replicaCount() const { return servers.size(); }
  [[nodiscard]] double maxTickMs() const {
    double v = 0.0;
    for (const auto& s : servers) v = std::max(v, s.tickMaxMs);
    return v;
  }
  [[nodiscard]] double avgTickMs() const {
    if (servers.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& s : servers) sum += s.tickAvgMs;
    return sum / static_cast<double>(servers.size());
  }
  /// Worst per-replica p95 tick duration across the zone.
  [[nodiscard]] double p95TickMs() const {
    double v = 0.0;
    for (const auto& s : servers) v = std::max(v, s.tickP95Ms);
    return v;
  }
  [[nodiscard]] bool isDraining(ServerId id) const {
    for (const ServerId d : draining) {
      if (d == id) return true;
    }
    return false;
  }
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual Decision decide(const ZoneView& view) = 0;
};

}  // namespace roia::rms
