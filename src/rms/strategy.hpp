// Load-balancing strategies: what RTF-RMS decides each control period for
// one zone. The model-driven strategy (paper section IV) and the baselines
// used in the ablation experiment all implement this interface. Decisions
// are lists of typed Actions (rms/action.hpp); the audit annotations ride
// along for observability only.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "rms/action.hpp"
#include "rtf/monitoring.hpp"

namespace roia::rms {

/// An action the strategy considered but did not take, and why — recorded so
/// the audit log explains decisions, not just states them.
struct RejectedAction {
  std::string action;
  std::string reason;
};

/// The decision for one zone in one control period: a list of typed actions.
/// Convention (enforced by the strategies, relied on by the audit log): at
/// most one structural action (add/substitute/remove) per period, plus any
/// number of migration orders.
struct Decision {
  std::vector<Action> actions;
  std::string rationale;

  // --- audit annotations (observability only; never drive execution) ---
  /// Model-predicted tick duration for the zone's current workload, ms;
  /// negative when the strategy has no model.
  double predictedTickMs{-1.0};
  /// Which threshold fired, e.g. "eq2:n_trigger", "eq3:l_max",
  /// "eq5:x_max"; "none" when no threshold was crossed.
  std::string threshold{"none"};
  /// Alternatives considered and discarded this period.
  std::vector<RejectedAction> rejected;

  void add(Action action) { actions.push_back(std::move(action)); }

  template <typename T>
  [[nodiscard]] const T* first() const {
    for (const Action& action : actions) {
      if (const T* a = std::get_if<T>(&action)) return a;
    }
    return nullptr;
  }
  template <typename T>
  [[nodiscard]] bool has() const {
    return first<T>() != nullptr;
  }

  /// All migration orders, in decision order.
  [[nodiscard]] std::vector<UserMigration> migrations() const {
    std::vector<UserMigration> orders;
    orders.reserve(actions.size());
    for (const Action& action : actions) {
      if (const auto* m = std::get_if<UserMigration>(&action)) orders.push_back(*m);
    }
    return orders;
  }

  [[nodiscard]] bool structural() const {
    return has<ReplicationEnactment>() || has<ResourceSubstitution>() || has<ResourceRemoval>();
  }

  /// The audit-log action label: the first structural action's name, else
  /// "zone_handoff" / "migrate_only" when only balancing actions were taken,
  /// else "none". Matches the pre-Action audit vocabulary exactly.
  [[nodiscard]] const char* primaryActionName() const {
    for (const Action& action : actions) {
      if (!std::holds_alternative<UserMigration>(action) &&
          !std::holds_alternative<ZoneHandoff>(action)) {
        return actionName(action);
      }
    }
    if (has<ZoneHandoff>()) return obs::events::kZoneHandoff;
    if (has<UserMigration>()) return obs::events::kMigrateOnly;
    return obs::events::kNone;
  }
};

/// What a strategy sees each control period.
struct ZoneView {
  ZoneId zone;
  SimTime now{};
  std::vector<rtf::MonitoringSnapshot> servers;
  /// Servers currently being drained (migration targets to avoid).
  std::vector<ServerId> draining;
  /// Replicas already leased but still starting up.
  std::size_t pendingStarts{0};
  std::size_t npcs{0};
  /// Edge-adjacent zones in a sharded world (empty for single-zone worlds).
  std::vector<ZoneId> neighbors;
  /// Cross-zone border shadows mirrored on this zone's replicas, summed over
  /// the replicas (each replica holds its own copy of the border band).
  std::size_t borderShadows{0};

  [[nodiscard]] std::size_t totalUsers() const {
    std::size_t total = 0;
    for (const auto& s : servers) total += s.activeUsers;
    return total;
  }
  [[nodiscard]] std::size_t replicaCount() const { return servers.size(); }
  [[nodiscard]] double maxTickMs() const {
    double v = 0.0;
    for (const auto& s : servers) v = std::max(v, s.tickMaxMs);
    return v;
  }
  [[nodiscard]] double avgTickMs() const {
    if (servers.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& s : servers) sum += s.tickAvgMs;
    return sum / static_cast<double>(servers.size());
  }
  /// Worst per-replica p95 tick duration across the zone.
  [[nodiscard]] double p95TickMs() const {
    double v = 0.0;
    for (const auto& s : servers) v = std::max(v, s.tickP95Ms);
    return v;
  }
  [[nodiscard]] bool isDraining(ServerId id) const {
    for (const ServerId d : draining) {
      if (d == id) return true;
    }
    return false;
  }
};

/// Cross-zone view for the balance() pass of a sharded world: the per-zone
/// views of one control period, in managed-zone order.
struct WorldView {
  SimTime now{};
  std::vector<ZoneView> zones;
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Per-zone decision (replication, substitution, removal, migrations).
  virtual Decision decide(const ZoneView& view) = 0;
  /// Cross-zone decision of a sharded world, taken once per control period
  /// after the per-zone pass; ZoneHandoff is the expected action kind.
  /// Default: no cross-zone balancing.
  virtual Decision balance(const WorldView& world) {
    (void)world;
    return {};
  }
};

}  // namespace roia::rms
