// Cloud-style resource pool: heterogeneous server flavors that RTF-RMS
// leases and releases on demand, with server-seconds cost accounting — the
// economics side of the paper's motivation (leasing Cloud resources instead
// of overprovisioning).
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace roia::rms {

struct ResourceFlavor {
  std::string name{"standard"};
  /// CPU speed relative to the reference server (2.0 = twice as fast).
  double speedFactor{1.0};
  /// Cost per leased hour (arbitrary currency), for accounting/reports.
  double costPerHour{1.0};
  /// How many instances exist; default effectively unlimited.
  std::size_t capacity{std::numeric_limits<std::size_t>::max()};
};

using LeaseId = std::uint64_t;

class ResourcePool {
 public:
  /// Default pool: unlimited standard servers plus a limited set of
  /// double-speed "large" servers for resource substitution.
  ResourcePool();
  explicit ResourcePool(std::vector<ResourceFlavor> flavors);

  [[nodiscard]] std::size_t flavorCount() const { return flavors_.size(); }
  [[nodiscard]] const ResourceFlavor& flavor(std::size_t idx) const { return flavors_.at(idx); }

  /// Index of the cheapest flavor strictly faster than `speedFactor`, if any
  /// instance is available (used by resource substitution).
  [[nodiscard]] std::optional<std::size_t> strongerFlavor(double speedFactor) const;

  [[nodiscard]] std::size_t availableOf(std::size_t flavorIdx) const;

  /// Leases one instance; nullopt when the flavor is exhausted.
  std::optional<LeaseId> lease(std::size_t flavorIdx, SimTime now);
  /// Returns an instance to the pool. Unknown/duplicate ids are ignored.
  void release(LeaseId id, SimTime now);

  [[nodiscard]] std::size_t activeLeases() const { return active_.size(); }
  [[nodiscard]] std::optional<std::size_t> leaseFlavor(LeaseId id) const;

  /// Cumulative leased server-seconds (completed + in-progress up to `now`).
  [[nodiscard]] double serverSeconds(SimTime now) const;
  /// Cumulative cost in flavor cost units.
  [[nodiscard]] double totalCost(SimTime now) const;

 private:
  struct Lease {
    std::size_t flavorIdx;
    SimTime start;
  };

  std::vector<ResourceFlavor> flavors_;
  std::vector<std::size_t> inUse_;
  // Ordered by lease id: serverSeconds()/totalCost() sum float durations
  // over this map, and float addition is order-sensitive — an unordered
  // walk would make the reported cost depend on hash-table layout.
  std::map<LeaseId, Lease> active_;
  double completedServerSeconds_{0.0};
  double completedCost_{0.0};
  LeaseId nextLease_{1};
};

}  // namespace roia::rms
