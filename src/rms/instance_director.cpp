#include "rms/instance_director.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace roia::rms {

InstanceDirector::Config InstanceDirector::Config::fromReport(
    const model::ThresholdReport& report, std::size_t replicasPerInstance) {
  Config config;
  config.replicasPerInstance = std::max<std::size_t>(1, replicasPerInstance);
  const std::size_t l = std::min(config.replicasPerInstance, report.nMaxPerReplica.size());
  const std::size_t nMaxAtL = l > 0 ? report.nMaxPerReplica[l - 1] : 0;
  config.usersPerInstanceCap = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::floor(report.triggerFraction * static_cast<double>(nMaxAtL))));
  return config;
}

InstanceDirector::InstanceDirector(rtf::Cluster& cluster, ZoneId templateZone, Config config)
    : cluster_(cluster), templateZone_(templateZone), config_(config) {
  if (cluster_.zones().replicaCount(templateZone) == 0) {
    throw std::invalid_argument("InstanceDirector: template zone has no servers");
  }
  if (config_.usersPerInstanceCap == 0) {
    throw std::invalid_argument("InstanceDirector: zero per-instance capacity");
  }
  instances_.push_back(templateZone);
}

ZoneId InstanceDirector::openInstance() {
  const ZoneId instance = cluster_.createInstance(templateZone_);
  for (std::size_t i = 0; i < std::max<std::size_t>(1, config_.replicasPerInstance); ++i) {
    cluster_.addServer(instance);
  }
  instances_.push_back(instance);
  return instance;
}

ZoneId InstanceDirector::routeJoin() {
  // Fill the fullest instance that still has headroom: keeps sessions
  // socially dense and lets emptying instances drain for retirement.
  ZoneId best{};
  std::size_t bestUsers = 0;
  bool found = false;
  for (const ZoneId instance : instances_) {
    const std::size_t users = cluster_.zoneUserCount(instance);
    if (users >= config_.usersPerInstanceCap) continue;
    if (!found || users > bestUsers) {
      best = instance;
      bestUsers = users;
      found = true;
    }
  }
  return found ? best : openInstance();
}

std::size_t InstanceDirector::totalUsers() const {
  std::size_t total = 0;
  for (const ZoneId instance : instances_) {
    total += cluster_.zoneUserCount(instance);
  }
  return total;
}

std::size_t InstanceDirector::retireEmptyInstances() {
  std::size_t retired = 0;
  for (auto it = instances_.begin(); it != instances_.end();) {
    const ZoneId instance = *it;
    if (instance == templateZone_ || cluster_.zoneUserCount(instance) > 0) {
      ++it;
      continue;
    }
    for (const ServerId server : cluster_.zones().replicas(instance)) {
      cluster_.removeServer(server);
    }
    it = instances_.erase(it);
    ++retired;
  }
  return retired;
}

}  // namespace roia::rms
