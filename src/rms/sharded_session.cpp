#include "rms/sharded_session.hpp"

#include <algorithm>
#include <memory>

#include "game/bots.hpp"
#include "rtf/cluster.hpp"

namespace roia::rms {

ShardedSessionSummary runShardedSession(const ShardedSessionConfig& config) {
  // The application's arena is the whole multi-zone world: bots roam across
  // zone borders, which is what exercises the handoff protocol.
  game::FpsConfig fps = config.fps;
  fps.arenaOrigin = config.worldOrigin;
  fps.arenaExtent = Vec2{config.zoneExtent.x * static_cast<double>(config.gridCols),
                         config.zoneExtent.y * static_cast<double>(config.gridRows)};
  game::FpsApplication app(fps);

  rtf::ServerConfig serverConfig = config.server;
  serverConfig.borderWidth = config.borderWidth;
  rtf::Cluster cluster(app, rtf::ClusterConfig{serverConfig, rtf::ClientEndpoint::Config{},
                                               config.seed, config.telemetry});

  const std::vector<ZoneId> zones = cluster.createZoneGrid(
      config.worldOrigin, fps.arenaExtent, config.gridCols, config.gridRows);
  for (const ZoneId zone : zones) {
    for (std::size_t i = 0; i < std::max<std::size_t>(1, config.replicasPerZone); ++i) {
      cluster.addServer(zone);
    }
    if (config.npcsPerZone > 0) cluster.spawnNpcs(zone, config.npcsPerZone);
  }

  net::FaultInjector* injector = nullptr;
  if (config.linkFaults) {
    injector = &cluster.enableFaultInjection(config.seed ^ 0x5A4DULL);
    injector->setDefaultFaults(*config.linkFaults);
  }

  // Population: spread joins round-robin over the zones (each join lands on
  // the zone's least-populated replica).
  for (std::size_t i = 0; i < config.users; ++i) {
    cluster.connectClient(zones[i % zones.size()],
                          std::make_unique<game::BotProvider>(config.bots));
  }

  cluster.run(config.warmup);

  // Steady-state measurement: sample every zone's monitoring window on a
  // fixed cadence and keep the worst-replica stats.
  ShardedSessionSummary summary;
  auto sampleToken = cluster.simulation().schedulePeriodic(
      SimDuration::milliseconds(500), [&](SimTime) {
        for (const ZoneId zone : zones) {
          for (const rtf::MonitoringSnapshot& s : cluster.zoneMonitoring(zone)) {
            summary.steadyAvgTickMs = std::max(summary.steadyAvgTickMs, s.tickAvgMs);
            summary.steadyP95TickMs = std::max(summary.steadyP95TickMs, s.tickP95Ms);
            summary.steadyMaxTickMs = std::max(summary.steadyMaxTickMs, s.tickMaxMs);
          }
        }
        return true;
      });
  cluster.run(config.duration);
  sim::Simulation::cancelPeriodic(sampleToken);

  // Settle: lift link faults and let in-flight handoffs complete, so the
  // conservation audit below sees a quiescent control plane.
  if (injector != nullptr) injector->setDefaultFaults(net::FaultParams{});
  cluster.run(SimDuration::seconds(2));

  summary.zones = zones.size();
  summary.servers = cluster.serverCount();
  summary.users = cluster.clientCount();
  for (const ServerId id : cluster.serverIds()) {
    const rtf::Server& server = cluster.server(id);
    summary.handoffsInitiated += server.handoffsInitiated();
    summary.handoffsReceived += server.handoffsReceived();
    summary.borderShadows += server.monitoring().borderShadows;
  }

  // Conservation: each connected client owns exactly one active avatar
  // across the whole cluster (owner == hosting server). Bots keep roaming
  // during the settle window, so a handoff can be freshly in flight at the
  // audit instant; the in-transit state — the source still holds the client
  // session plus the signed-over record awaiting the target's ack — is that
  // client's one logical copy, not a loss.
  for (const ClientId client : cluster.clientIds()) {
    std::size_t active = 0;
    bool inTransit = false;
    for (const ServerId id : cluster.serverIds()) {
      const rtf::Server& server = cluster.server(id);
      if (server.crashed()) continue;
      server.world().forEach([&](rtf::ConstEntityRef e) {
        if (e.client != client) return;
        if (e.owner == id) ++active;
        else if (server.hasClient(client)) inTransit = true;
      });
    }
    if (active == 0 && !inTransit) ++summary.missingAvatars;
    if (active > 1) summary.duplicateAvatars += active - 1;
  }
  return summary;
}

}  // namespace roia::rms
