// Overload-survival session runner: a single zone with a fixed replica
// group, a flash-crowd workload driven far past the Eq. 2 capacity, and the
// three survival mechanisms under test — the per-server degradation ladder,
// Eq. 2 admission control at the cluster edge, and preemption notices
// answered by the RMS graceful drain. This is the harness behind the
// ext_overload_degradation bench and the `overload` test label; like the
// sharded harness it audits entity conservation at session end.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "game/bots.hpp"
#include "game/fps_app.hpp"
#include "game/scenario.hpp"
#include "model/tick_model.hpp"
#include "net/fault.hpp"
#include "obs/telemetry.hpp"
#include "rtf/server.hpp"

namespace roia::rms {

struct OverloadSessionConfig {
  game::FpsConfig fps{};
  rtf::ServerConfig server{};
  game::ChurnDriver::Config churn{};

  /// Fixed replica group of the single zone (the RMS runs a hold strategy:
  /// overload survival is the servers' job here, not elastic scaling).
  std::size_t replicas{2};
  std::size_t npcs{0};
  Vec2 zoneExtent{1000.0, 1000.0};

  /// Tick-deadline budget, ms. Feeds the degradation ladder
  /// (server.overload.budgetMs), the Eq. 2 admission check and the
  /// deadline-miss accounting of the timeline.
  double budgetMs{40.0};
  /// Enables the per-server degradation ladder (rtf/overload.hpp).
  bool ladder{true};
  /// Enables admission control at the cluster edge.
  bool admission{true};
  /// Plain per-server admission cap for model-free runs (0 = none). With a
  /// model, the Eq. 2 check applies as well; both veto independently.
  std::size_t maxUsersPerServer{0};

  /// Calibrated scalability model. When set, servers get an Eq. 4 tick
  /// predictor (the ladder reacts one tick early) and the admission gate
  /// vetoes joins whose predicted zone tick at n+1 exceeds the budget.
  /// When empty, the ladder falls back to measured tick cost only.
  std::optional<model::TickModel> model{};

  /// Flash-crowd workload (piecewise-linear user target over time).
  game::WorkloadScenario scenario{};

  /// Preemption notices to inject: at `notice` (absolute sim time) the
  /// busiest live replica not already under notice is preempted with the
  /// given grace window. The RMS answers with a graceful drain.
  struct PreemptionPlan {
    SimDuration notice{SimDuration::zero()};
    SimDuration window{SimDuration::seconds(4)};
  };
  std::vector<PreemptionPlan> preemptions{};

  /// Optional link faults (loss/dup/jitter on every link) for chaos runs.
  std::optional<net::FaultParams> linkFaults{};

  /// Quiescence window after the scenario ends, before the audit.
  SimDuration settle{SimDuration::seconds(3)};
  /// Timeline sample cadence.
  SimDuration samplePeriod{SimDuration::milliseconds(500)};

  std::uint64_t seed{42};
  obs::Telemetry* telemetry{nullptr};
};

/// One timeline sample (the data behind the bench's degradation plot).
struct OverloadSample {
  double timeSec{0.0};
  std::size_t users{0};
  std::size_t servers{0};
  double worstP95TickMs{0.0};
  double worstMaxTickMs{0.0};
  /// Deepest degradation-ladder level across live replicas.
  std::size_t maxLevel{0};
  std::size_t shedObservers{0};
  bool deadlineMiss{false};
};

struct OverloadSessionSummary {
  std::size_t users{0};
  std::size_t peakUsers{0};
  std::size_t servers{0};

  std::vector<OverloadSample> timeline;
  /// Samples whose worst-replica p95 tick exceeded the budget.
  std::size_t deadlineMissPeriods{0};
  std::size_t samples{0};

  // Degradation-ladder activity, summed over all replicas.
  std::size_t maxDegradationLevel{0};
  std::uint64_t stepDowns{0};
  std::uint64_t stepUps{0};
  std::uint64_t shedEvents{0};
  std::uint64_t readmitEvents{0};

  // Admission control / scenario-layer retry.
  std::uint64_t admissionVetoes{0};
  std::uint64_t joinsVetoed{0};
  std::uint64_t joinRetries{0};
  std::uint64_t totalJoins{0};

  // Preemption handling.
  std::uint64_t preemptionsInjected{0};
  std::uint64_t gracefulDrains{0};
  std::uint64_t drainFallbacks{0};
  std::uint64_t migrationsOrdered{0};

  // Entity conservation at session end (in-transit-aware; see the sharded
  // harness for the audit semantics).
  std::size_t duplicateAvatars{0};
  std::size_t missingAvatars{0};

  [[nodiscard]] bool conserved() const {
    return duplicateAvatars == 0 && missingAvatars == 0;
  }
};

/// Runs an overload session: replica group, flash-crowd churn, preemption
/// storm, timeline sampling and the conservation audit.
[[nodiscard]] OverloadSessionSummary runOverloadSession(const OverloadSessionConfig& config);

}  // namespace roia::rms
