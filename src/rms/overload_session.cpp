#include "rms/overload_session.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <string>

#include "game/interest.hpp"
#include "rms/manager.hpp"
#include "rtf/cluster.hpp"
#include "rtf/overload.hpp"

namespace roia::rms {

namespace {

/// The overload harness pins the replica count: survival is the servers'
/// (ladder) and the cluster edge's (admission) job, not elastic scaling.
/// The RMS still runs for its preemption graceful-drain duty.
class HoldStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string name() const override { return "hold"; }
  Decision decide(const ZoneView&) override { return {}; }
};

}  // namespace

OverloadSessionSummary runOverloadSession(const OverloadSessionConfig& config) {
  game::FpsConfig fps = config.fps;
  fps.arenaOrigin = Vec2{0.0, 0.0};
  fps.arenaExtent = config.zoneExtent;
  game::FpsApplication app(fps);
  // Grid interest under the fidelity wrapper: narrowing the AOI radius then
  // actually visits fewer cells, so stepping down the ladder cuts real AOI
  // cost (the Euclidean scan tests every entity regardless of radius). The
  // scale sits at 1.0 until a server's ladder moves, so ladder-off runs pay
  // nothing for the wrapper.
  app.setInterestPolicy(std::make_unique<game::FidelityScaledInterest>(
      std::make_unique<game::GridInterest>(fps.aoiRadius)));

  rtf::ServerConfig serverConfig = config.server;
  serverConfig.overload.enabled = config.ladder;
  serverConfig.overload.budgetMs = config.budgetMs;
  rtf::Cluster cluster(app, rtf::ClusterConfig{serverConfig, rtf::ClientEndpoint::Config{},
                                               config.seed, config.telemetry});

  const ZoneId zone = cluster.createZone("overload", Vec2{0.0, 0.0}, config.zoneExtent);
  for (std::size_t i = 0; i < std::max<std::size_t>(1, config.replicas); ++i) {
    cluster.addServer(zone);
  }
  if (config.npcs > 0) cluster.spawnNpcs(zone, config.npcs);

  net::FaultInjector* injector = nullptr;
  if (config.linkFaults || !config.preemptions.empty()) {
    injector = &cluster.enableFaultInjection(config.seed ^ 0x0ddfa17ULL);
    if (config.linkFaults) injector->setDefaultFaults(*config.linkFaults);
  }

  if (config.model) {
    // Eq. 4 per-server predictor: this replica's active entities against the
    // whole population it mirrors, plus its own NPC share (l = 1 because m
    // is already the per-server count).
    cluster.setTickPredictor(
        [model = *config.model](std::size_t activeUsers, std::size_t totalAvatars,
                                std::size_t npcs) {
          return model.tickMillis(1.0, static_cast<double>(totalAvatars),
                                  static_cast<double>(npcs), static_cast<double>(activeUsers));
        });
  }

  if (config.admission) {
    cluster.setAdmissionGate([&cluster, zone, model = config.model, budget = config.budgetMs,
                              cap = config.maxUsersPerServer](const rtf::Server& target,
                                                              std::string& reason) {
      if (target.overloadLevel() >= rtf::kShedLevel) {
        reason = "ladder at shed level " + std::to_string(target.overloadLevel());
        return false;
      }
      if (cap > 0 && target.connectedUsers() >= cap) {
        reason = "server at cap " + std::to_string(cap);
        return false;
      }
      if (model) {
        const std::size_t replicas = cluster.zones().replicas(zone).size();
        const std::size_t n = cluster.zoneUserCount(zone);
        const double predicted = model->tickMillis(static_cast<double>(replicas),
                                                   static_cast<double>(n + 1), 0.0);
        if (predicted > budget) {
          char buffer[96];
          std::snprintf(buffer, sizeof(buffer), "eq2: T(%zu,%zu,0)=%.2fms > U=%.2fms", replicas,
                        n + 1, predicted, budget);
          reason = buffer;
          return false;
        }
      }
      return true;
    });
  }

  // The RMS holds the replica count but owns preemption drains.
  RmsConfig rmsConfig;
  rmsConfig.controlPeriod = SimDuration::milliseconds(500);
  rmsConfig.upperTickMs = config.budgetMs;
  RmsManager manager(cluster, zone, std::make_unique<HoldStrategy>(), ResourcePool{}, rmsConfig);
  manager.start();

  OverloadSessionSummary summary;

  // Preemption storm: each plan fires at its notice time and picks the
  // busiest live replica not already under notice — the worst possible
  // victim, decided against the actual population at that moment.
  std::set<ServerId> preempted;
  for (const OverloadSessionConfig::PreemptionPlan& plan : config.preemptions) {
    cluster.simulation().scheduleAfter(plan.notice, [&cluster, &preempted, &summary, injector,
                                                     window = plan.window] {
      ServerId victim{};
      std::size_t most = 0;
      for (const ServerId id : cluster.serverIds()) {
        if (preempted.contains(id) || cluster.server(id).crashed()) continue;
        const std::size_t users = cluster.server(id).connectedUsers();
        if (!victim.valid() || users > most) {
          victim = id;
          most = users;
        }
      }
      if (!victim.valid() || injector == nullptr) return;
      preempted.insert(victim);
      injector->schedulePreemption(victim, cluster.simulation().now(), window);
      ++summary.preemptionsInjected;
    });
  }

  game::ChurnDriver churn(cluster, zone, config.scenario, config.churn);
  churn.start();

  const double budget = config.budgetMs;
  auto sampleToken = cluster.simulation().schedulePeriodic(
      config.samplePeriod, [&](SimTime now) {
        OverloadSample sample;
        sample.timeSec = now.asSeconds();
        sample.users = cluster.clientCount();
        summary.peakUsers = std::max(summary.peakUsers, sample.users);
        for (const ServerId id : cluster.serverIds()) {
          const rtf::Server& server = cluster.server(id);
          if (server.crashed()) continue;
          ++sample.servers;
          sample.maxLevel = std::max(sample.maxLevel, server.overloadLevel());
          sample.shedObservers += server.shedObservers();
        }
        for (const rtf::MonitoringSnapshot& s : cluster.zoneMonitoring(zone)) {
          sample.worstP95TickMs = std::max(sample.worstP95TickMs, s.tickP95Ms);
          sample.worstMaxTickMs = std::max(sample.worstMaxTickMs, s.tickMaxMs);
        }
        sample.deadlineMiss = sample.worstP95TickMs > budget;
        if (sample.deadlineMiss) ++summary.deadlineMissPeriods;
        summary.maxDegradationLevel = std::max(summary.maxDegradationLevel, sample.maxLevel);
        summary.timeline.push_back(sample);
        return true;
      });

  cluster.run(config.scenario.totalDuration());
  churn.stop();

  // Settle: lift link faults and let drains/migrations finish before the
  // audit (the RMS keeps running so in-flight preemption windows resolve).
  if (injector != nullptr) injector->setDefaultFaults(net::FaultParams{});
  cluster.run(config.settle);
  sim::Simulation::cancelPeriodic(sampleToken);
  manager.stop();

  summary.samples = summary.timeline.size();
  summary.users = cluster.clientCount();
  summary.servers = cluster.serverCount();
  for (const ServerId id : cluster.serverIds()) {
    const rtf::Server& server = cluster.server(id);
    summary.stepDowns += server.overloadStepDowns();
    summary.stepUps += server.overloadStepUps();
    summary.shedEvents += server.shedEvents();
    summary.readmitEvents += server.readmitEvents();
  }
  summary.admissionVetoes = cluster.admissionVetoes();
  summary.joinsVetoed = churn.totalVetoedJoins();
  summary.joinRetries = churn.totalJoinRetries();
  summary.totalJoins = churn.totalJoins();
  summary.gracefulDrains = manager.gracefulDrains();
  summary.drainFallbacks = manager.drainFallbacks();
  summary.migrationsOrdered = manager.migrationsOrderedTotal();

  // Conservation audit (same semantics as the sharded harness): every
  // connected client owns exactly one active avatar; a freshly in-flight
  // migration — source still holds the session plus the signed-over record —
  // is that client's one logical copy, not a loss.
  for (const ClientId client : cluster.clientIds()) {
    std::size_t active = 0;
    bool inTransit = false;
    for (const ServerId id : cluster.serverIds()) {
      const rtf::Server& server = cluster.server(id);
      if (server.crashed()) continue;
      server.world().forEach([&](rtf::ConstEntityRef e) {
        if (e.client != client) return;
        if (e.owner == id) ++active;
        else if (server.hasClient(client)) inTransit = true;
      });
    }
    if (active == 0 && !inTransit) ++summary.missingAvatars;
    if (active > 1) summary.duplicateAvatars += active - 1;
  }
  return summary;
}

}  // namespace roia::rms
