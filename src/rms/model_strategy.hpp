// The model-driven load-balancing strategy of RTF-RMS (paper section IV):
//
//  * user migration throttled by the model's x_max^ini / x_max^rcv budgets,
//    implemented exactly as the paper's Listing 1,
//  * replication enactment triggered at 80 % of the model's n_max(l) and
//    capped at l_max (Eq. 3),
//  * resource substitution when replication is exhausted,
//  * resource removal when the population fits comfortably on fewer
//    replicas,
//  * cross-zone user handoff (sharded worlds) when a zone's replication is
//    exhausted and a neighbor zone has headroom.
#pragma once

#include <memory>

#include "model/report.hpp"
#include "model/thresholds.hpp"
#include "rms/strategy.hpp"

namespace roia::rms {

struct ModelStrategyConfig {
  /// Upper tick-duration threshold U in milliseconds (QoE bound).
  double upperTickMs{40.0};
  /// Minimum-improvement factor c of Eq. (3).
  double improvementFactorC{0.15};
  /// Replication triggers at this fraction of n_max(l) (paper: 80 %).
  double triggerFraction{0.8};
  /// Remove a replica when the population would fit below this fraction of
  /// the (l-1)-replica trigger (hysteresis against flapping).
  double removalFraction{0.7};
  /// Ignore imbalances smaller than this many users.
  std::size_t imbalanceTolerance{4};
  /// NPC count m of the managed zone.
  std::size_t npcs{0};
};

class ModelDrivenStrategy final : public Strategy {
 public:
  ModelDrivenStrategy(model::TickModel tickModel, ModelStrategyConfig config);

  [[nodiscard]] std::string name() const override { return "model-driven"; }
  Decision decide(const ZoneView& view) override;
  /// Cross-zone balancing of a sharded world: when a zone is over its
  /// trigger with replication exhausted (Eq. 3) and a neighbor zone has
  /// headroom, hand users across the border (Eq. 5 budget on the source).
  Decision balance(const WorldView& world) override;

  [[nodiscard]] const model::ThresholdReport& report() const { return report_; }
  [[nodiscard]] const ModelStrategyConfig& config() const { return config_; }

  /// n_max for a replica count (from the precomputed report; extends past
  /// l_max with a live Eq. (2) query for robustness).
  [[nodiscard]] std::size_t nMaxFor(std::size_t replicas) const;

 private:
  void planMigrations(const ZoneView& view, Decision& decision) const;

  model::TickModel model_;
  ModelStrategyConfig config_;
  model::ThresholdReport report_;
};

}  // namespace roia::rms
