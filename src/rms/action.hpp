// Typed RMS actions: everything a load-balancing strategy can order the
// management plane to do, as one closed variant. The names returned by
// actionName() are the audit-log vocabulary (stable JSONL contract):
// "migrate_only", "add_replica", "substitute_server", "remove_server",
// "zone_handoff".
#pragma once

#include <cstddef>
#include <variant>

#include "common/types.hpp"
#include "obs/events.hpp"

namespace roia::rms {

/// Move `count` users from one replica to another (same zone).
struct UserMigration {
  ServerId from;
  ServerId to;
  std::size_t count{0};
};

/// Lease a standard resource and add a replica to the zone under decision.
struct ReplicationEnactment {};

/// Replace `victim` by a more powerful flavor (drain after the stand-in
/// serves).
struct ResourceSubstitution {
  ServerId victim;
};

/// Drain and shut down `victim`.
struct ResourceRemoval {
  ServerId victim;
};

/// Cross-zone load balancing: hand `count` users over from the fullest
/// replica of `fromZone` to `toZone` via the zone-handoff protocol.
struct ZoneHandoff {
  ZoneId fromZone;
  ZoneId toZone;
  std::size_t count{0};
};

using Action = std::variant<UserMigration, ReplicationEnactment, ResourceSubstitution,
                            ResourceRemoval, ZoneHandoff>;

[[nodiscard]] inline const char* actionName(const Action& action) {
  struct Namer {
    const char* operator()(const UserMigration&) const { return obs::events::kMigrateOnly; }
    const char* operator()(const ReplicationEnactment&) const { return obs::events::kAddReplica; }
    const char* operator()(const ResourceSubstitution&) const {
      return obs::events::kSubstituteServer;
    }
    const char* operator()(const ResourceRemoval&) const { return obs::events::kRemoveServer; }
    const char* operator()(const ZoneHandoff&) const { return obs::events::kZoneHandoff; }
  };
  return std::visit(Namer{}, action);
}

}  // namespace roia::rms
