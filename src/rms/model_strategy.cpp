#include "rms/model_strategy.hpp"

#include <algorithm>
#include <cmath>

namespace roia::rms {

ModelDrivenStrategy::ModelDrivenStrategy(model::TickModel tickModel, ModelStrategyConfig config)
    : model_(std::move(tickModel)),
      config_(config),
      report_(model::buildReport(model_, config.upperTickMs, config.improvementFactorC,
                                 config.npcs, config.triggerFraction)) {}

std::size_t ModelDrivenStrategy::nMaxFor(std::size_t replicas) const {
  if (replicas == 0) return 0;
  if (replicas <= report_.nMaxPerReplica.size()) return report_.nMaxPerReplica[replicas - 1];
  return model::nMax(model_, replicas, config_.npcs, config_.upperTickMs * 1000.0);
}

Decision ModelDrivenStrategy::decide(const ZoneView& view) {
  Decision decision;
  if (view.servers.empty()) return decision;

  const std::size_t l = view.replicaCount();
  const std::size_t effectiveReplicas = l + view.pendingStarts;
  const std::size_t n = view.totalUsers();

  // Audit: what the fitted model expects the current workload to cost. In a
  // sharded world the per-zone prediction includes the coordination term
  // (border sync to each neighbor plus the zone's border shadows, which are
  // mirrored per replica).
  const double lEff = static_cast<double>(std::max<std::size_t>(1, l));
  if (view.neighbors.empty()) {
    decision.predictedTickMs =
        model_.tickMillis(lEff, static_cast<double>(n), static_cast<double>(config_.npcs));
  } else {
    const double borderPerReplica =
        static_cast<double>(view.borderShadows) / static_cast<double>(std::max<std::size_t>(1, l));
    decision.predictedTickMs = model_.zoneTickMillis(
        lEff, static_cast<double>(n), static_cast<double>(config_.npcs),
        static_cast<double>(view.neighbors.size()), borderPerReplica);
  }

  // --- user migration (always considered; Listing 1) ---
  planMigrations(view, decision);

  // --- structural actions: one per period ---
  const std::size_t trigger = static_cast<std::size_t>(
      std::floor(config_.triggerFraction * static_cast<double>(nMaxFor(effectiveReplicas))));

  if (n > trigger) {
    if (effectiveReplicas < report_.lMax) {
      // Replication enactment: add a server before the threshold is hit so
      // migration overhead and late joiners cannot push ticks past U.
      decision.add(ReplicationEnactment{});
      decision.threshold = "eq2:n_trigger";
      decision.rationale = "replication enactment: " + std::to_string(n) + " users > 80% of n_max(" +
                           std::to_string(effectiveReplicas) + ")";
    } else if (view.pendingStarts == 0) {
      // Replication exhausted: substitute the slowest/most loaded standard
      // replica with a more powerful resource.
      decision.rejected.push_back(
          {"add_replica", "l_max=" + std::to_string(report_.lMax) + " reached (Eq. 3)"});
      const rtf::MonitoringSnapshot* worst = nullptr;
      for (const auto& s : view.servers) {
        if (view.isDraining(s.server)) continue;
        if (worst == nullptr || s.activeUsers > worst->activeUsers) worst = &s;
      }
      if (worst != nullptr) {
        decision.add(ResourceSubstitution{worst->server});
        decision.threshold = "eq3:l_max";
        decision.rationale = "resource substitution: l_max reached";
      }
    } else {
      decision.rejected.push_back(
          {"add_replica", "l_max reached and a replica start is already pending"});
    }
    return decision;
  }

  // --- resource removal (hysteresis below the (l-1)-replica trigger) ---
  if (l > 1 && view.pendingStarts == 0 && view.draining.empty()) {
    const std::size_t lowerTrigger = static_cast<std::size_t>(
        std::floor(config_.removalFraction * config_.triggerFraction *
                   static_cast<double>(nMaxFor(l - 1))));
    if (n < lowerTrigger) {
      // Remove the replica with the fewest users (cheapest drain).
      const rtf::MonitoringSnapshot* least = nullptr;
      for (const auto& s : view.servers) {
        if (least == nullptr || s.activeUsers < least->activeUsers) least = &s;
      }
      if (least != nullptr) {
        decision.add(ResourceRemoval{least->server});
        decision.threshold = "eq2:n_lower";
        decision.rationale = "resource removal: " + std::to_string(n) + " users < " +
                             std::to_string(lowerTrigger);
      }
    } else {
      decision.rejected.push_back(
          {"remove_replica", std::to_string(n) + " users >= hysteresis floor " +
                                 std::to_string(lowerTrigger)});
    }
  }
  return decision;
}

Decision ModelDrivenStrategy::balance(const WorldView& world) {
  Decision decision;
  if (world.zones.size() < 2) return decision;
  const double thresholdMicros = config_.upperTickMs * 1000.0;

  // The most overloaded zone whose replication is already exhausted: only
  // then is crossing a border cheaper than another replica (Eq. 3). Earlier
  // zone wins ties, so the pass is deterministic.
  const ZoneView* source = nullptr;
  std::size_t worstExcess = 0;
  for (const ZoneView& z : world.zones) {
    if (z.servers.empty()) continue;
    const std::size_t effectiveReplicas = z.replicaCount() + z.pendingStarts;
    if (effectiveReplicas < report_.lMax) continue;  // in-zone replication first
    const std::size_t trigger = static_cast<std::size_t>(
        std::floor(config_.triggerFraction * static_cast<double>(nMaxFor(effectiveReplicas))));
    const std::size_t n = z.totalUsers();
    if (n <= trigger) continue;
    const std::size_t excess = n - trigger;
    if (excess > worstExcess) {
      worstExcess = excess;
      source = &z;
    }
  }
  if (source == nullptr) return decision;

  // Best neighbor: the adjacent zone with the most headroom below its own
  // trigger (neighbors are sorted by id, so ties resolve deterministically).
  const ZoneView* target = nullptr;
  std::size_t bestHeadroom = 0;
  for (const ZoneId neighborId : source->neighbors) {
    for (const ZoneView& z : world.zones) {
      if (z.zone != neighborId || z.servers.empty()) continue;
      const std::size_t effectiveReplicas = z.replicaCount() + z.pendingStarts;
      const std::size_t trigger = static_cast<std::size_t>(
          std::floor(config_.triggerFraction * static_cast<double>(nMaxFor(effectiveReplicas))));
      const std::size_t n = z.totalUsers();
      if (n >= trigger) continue;
      const std::size_t headroom = trigger - n;
      if (headroom > bestHeadroom) {
        bestHeadroom = headroom;
        target = &z;
      }
    }
  }
  if (target == nullptr) {
    decision.rejected.push_back({"zone_handoff", "no neighbor zone with headroom"});
    return decision;
  }

  // Eq. (5): the handoff count is throttled like any migration burst, by
  // the initiate budget of the source zone's fullest replica.
  std::size_t aMax = 0;
  for (const auto& s : source->servers) aMax = std::max(aMax, s.activeUsers);
  const std::size_t budget =
      model::xMaxInitiate(model_, std::max<std::size_t>(1, source->replicaCount()),
                          source->totalUsers(), config_.npcs, aMax, thresholdMicros);
  const std::size_t count = std::min({worstExcess, bestHeadroom, budget});
  if (count == 0) {
    decision.rejected.push_back({"zone_handoff", "eq5 initiate budget x_max=0 on source zone"});
    return decision;
  }
  decision.add(ZoneHandoff{source->zone, target->zone, count});
  decision.threshold = "eq2:zone_n_trigger";
  decision.rationale = "zone handoff: zone " + std::to_string(source->zone.value) + " over trigger by " +
                       std::to_string(worstExcess) + ", neighbor " +
                       std::to_string(target->zone.value) + " has headroom " +
                       std::to_string(bestHeadroom);
  return decision;
}

void ModelDrivenStrategy::planMigrations(const ZoneView& view, Decision& decision) const {
  // Listing 1 of the paper, generalized with draining targets excluded.
  const auto& servers = view.servers;
  if (servers.size() < 2) return;
  const std::size_t n = view.totalUsers();
  const double thresholdMicros = config_.upperTickMs * 1000.0;
  const std::size_t l = servers.size();

  // Draining servers must empty regardless of the average; treat the
  // fullest draining server as s_max if any, otherwise the fullest server.
  const rtf::MonitoringSnapshot* sMax = nullptr;
  for (const auto& s : servers) {
    const bool draining = view.isDraining(s.server);
    const bool currentDraining = sMax != nullptr && view.isDraining(sMax->server);
    if (sMax == nullptr || (draining && !currentDraining) ||
        (draining == currentDraining && s.activeUsers > sMax->activeUsers)) {
      sMax = &s;
    }
  }
  if (sMax == nullptr || sMax->activeUsers == 0) return;
  const bool drainMode = view.isDraining(sMax->server);

  // Average over non-draining servers (a draining server should reach 0).
  std::size_t liveServers = 0;
  for (const auto& s : servers) {
    if (!view.isDraining(s.server)) ++liveServers;
  }
  if (liveServers == 0) return;
  const double avg = static_cast<double>(n) / static_cast<double>(liveServers);

  // (ii) migration budget of the source, from Eq. (5).
  std::size_t iniBudget = model::xMaxInitiate(model_, l, n, config_.npcs, sMax->activeUsers,
                                              thresholdMicros);
  if (iniBudget == 0) {
    decision.rejected.push_back(
        {"migrate", "eq5 initiate budget x_max=0 on fullest replica"});
    return;
  }

  // (i) + (iii): deviation and receive budget per remaining server.
  bool ordered = false;
  for (const auto& s : servers) {
    if (iniBudget == 0) break;
    if (s.server == sMax->server || view.isDraining(s.server)) continue;
    const double deviation = avg - static_cast<double>(s.activeUsers);
    std::size_t want = 0;
    if (drainMode) {
      // Empty the draining server: spread everything over live servers.
      want = std::max<std::size_t>(
          1, sMax->activeUsers / std::max<std::size_t>(1, liveServers));
    } else {
      if (deviation <= static_cast<double>(config_.imbalanceTolerance)) continue;
      want = static_cast<std::size_t>(std::floor(deviation));
    }
    const std::size_t rcvBudget = model::xMaxReceive(model_, l, n, config_.npcs, s.activeUsers,
                                                     thresholdMicros);
    const std::size_t count = std::min({want, rcvBudget, iniBudget,
                                        static_cast<std::size_t>(sMax->activeUsers)});
    if (count == 0) continue;
    decision.add(UserMigration{sMax->server, s.server, count});
    ordered = true;
    iniBudget -= count;
  }
  // Audit: migrations are gated by Eq. 5 budgets; structural paths may
  // overwrite this with the (primary) eq2/eq3 threshold afterwards.
  if (ordered) decision.threshold = "eq5:x_max";
}

}  // namespace roia::rms
