#include "rms/model_strategy.hpp"

#include <algorithm>
#include <cmath>

namespace roia::rms {

ModelDrivenStrategy::ModelDrivenStrategy(model::TickModel tickModel, ModelStrategyConfig config)
    : model_(std::move(tickModel)),
      config_(config),
      report_(model::buildReport(model_, config.upperTickMs, config.improvementFactorC,
                                 config.npcs, config.triggerFraction)) {}

std::size_t ModelDrivenStrategy::nMaxFor(std::size_t replicas) const {
  if (replicas == 0) return 0;
  if (replicas <= report_.nMaxPerReplica.size()) return report_.nMaxPerReplica[replicas - 1];
  return model::nMax(model_, replicas, config_.npcs, config_.upperTickMs * 1000.0);
}

Decision ModelDrivenStrategy::decide(const ZoneView& view) {
  Decision decision;
  if (view.servers.empty()) return decision;

  const std::size_t l = view.replicaCount();
  const std::size_t effectiveReplicas = l + view.pendingStarts;
  const std::size_t n = view.totalUsers();

  // Audit: what the fitted model expects the current workload to cost.
  decision.predictedTickMs = model_.tickMillis(static_cast<double>(std::max<std::size_t>(1, l)),
                                               static_cast<double>(n),
                                               static_cast<double>(config_.npcs));

  // --- user migration (always considered; Listing 1) ---
  planMigrations(view, decision);

  // --- structural actions: one per period ---
  const std::size_t trigger = static_cast<std::size_t>(
      std::floor(config_.triggerFraction * static_cast<double>(nMaxFor(effectiveReplicas))));

  if (n > trigger) {
    if (effectiveReplicas < report_.lMax) {
      // Replication enactment: add a server before the threshold is hit so
      // migration overhead and late joiners cannot push ticks past U.
      decision.addReplica = true;
      decision.threshold = "eq2:n_trigger";
      decision.rationale = "replication enactment: " + std::to_string(n) + " users > 80% of n_max(" +
                           std::to_string(effectiveReplicas) + ")";
    } else if (view.pendingStarts == 0) {
      // Replication exhausted: substitute the slowest/most loaded standard
      // replica with a more powerful resource.
      decision.rejected.push_back(
          {"add_replica", "l_max=" + std::to_string(report_.lMax) + " reached (Eq. 3)"});
      const rtf::MonitoringSnapshot* worst = nullptr;
      for (const auto& s : view.servers) {
        if (view.isDraining(s.server)) continue;
        if (worst == nullptr || s.activeUsers > worst->activeUsers) worst = &s;
      }
      if (worst != nullptr) {
        decision.substituteServer = worst->server;
        decision.threshold = "eq3:l_max";
        decision.rationale = "resource substitution: l_max reached";
      }
    } else {
      decision.rejected.push_back(
          {"add_replica", "l_max reached and a replica start is already pending"});
    }
    return decision;
  }

  // --- resource removal (hysteresis below the (l-1)-replica trigger) ---
  if (l > 1 && view.pendingStarts == 0 && view.draining.empty()) {
    const std::size_t lowerTrigger = static_cast<std::size_t>(
        std::floor(config_.removalFraction * config_.triggerFraction *
                   static_cast<double>(nMaxFor(l - 1))));
    if (n < lowerTrigger) {
      // Remove the replica with the fewest users (cheapest drain).
      const rtf::MonitoringSnapshot* least = nullptr;
      for (const auto& s : view.servers) {
        if (least == nullptr || s.activeUsers < least->activeUsers) least = &s;
      }
      if (least != nullptr) {
        decision.removeServer = least->server;
        decision.threshold = "eq2:n_lower";
        decision.rationale = "resource removal: " + std::to_string(n) + " users < " +
                             std::to_string(lowerTrigger);
      }
    } else {
      decision.rejected.push_back(
          {"remove_replica", std::to_string(n) + " users >= hysteresis floor " +
                                 std::to_string(lowerTrigger)});
    }
  }
  return decision;
}

void ModelDrivenStrategy::planMigrations(const ZoneView& view, Decision& decision) const {
  // Listing 1 of the paper, generalized with draining targets excluded.
  const auto& servers = view.servers;
  if (servers.size() < 2) return;
  const std::size_t n = view.totalUsers();
  const double thresholdMicros = config_.upperTickMs * 1000.0;
  const std::size_t l = servers.size();

  // Draining servers must empty regardless of the average; treat the
  // fullest draining server as s_max if any, otherwise the fullest server.
  const rtf::MonitoringSnapshot* sMax = nullptr;
  for (const auto& s : servers) {
    const bool draining = view.isDraining(s.server);
    const bool currentDraining = sMax != nullptr && view.isDraining(sMax->server);
    if (sMax == nullptr || (draining && !currentDraining) ||
        (draining == currentDraining && s.activeUsers > sMax->activeUsers)) {
      sMax = &s;
    }
  }
  if (sMax == nullptr || sMax->activeUsers == 0) return;
  const bool drainMode = view.isDraining(sMax->server);

  // Average over non-draining servers (a draining server should reach 0).
  std::size_t liveServers = 0;
  for (const auto& s : servers) {
    if (!view.isDraining(s.server)) ++liveServers;
  }
  if (liveServers == 0) return;
  const double avg = static_cast<double>(n) / static_cast<double>(liveServers);

  // (ii) migration budget of the source, from Eq. (5).
  std::size_t iniBudget = model::xMaxInitiate(model_, l, n, config_.npcs, sMax->activeUsers,
                                              thresholdMicros);
  if (iniBudget == 0) {
    decision.rejected.push_back(
        {"migrate", "eq5 initiate budget x_max=0 on fullest replica"});
    return;
  }

  // (i) + (iii): deviation and receive budget per remaining server.
  for (const auto& s : servers) {
    if (iniBudget == 0) break;
    if (s.server == sMax->server || view.isDraining(s.server)) continue;
    const double deviation = avg - static_cast<double>(s.activeUsers);
    std::size_t want = 0;
    if (drainMode) {
      // Empty the draining server: spread everything over live servers.
      want = std::max<std::size_t>(
          1, sMax->activeUsers / std::max<std::size_t>(1, liveServers));
    } else {
      if (deviation <= static_cast<double>(config_.imbalanceTolerance)) continue;
      want = static_cast<std::size_t>(std::floor(deviation));
    }
    const std::size_t rcvBudget = model::xMaxReceive(model_, l, n, config_.npcs, s.activeUsers,
                                                     thresholdMicros);
    const std::size_t count = std::min({want, rcvBudget, iniBudget,
                                        static_cast<std::size_t>(sMax->activeUsers)});
    if (count == 0) continue;
    decision.migrations.push_back(MigrationOrder{sMax->server, s.server, count});
    iniBudget -= count;
  }
  // Audit: migrations are gated by Eq. 5 budgets; structural paths may
  // overwrite this with the (primary) eq2/eq3 threshold afterwards.
  if (!decision.migrations.empty()) decision.threshold = "eq5:x_max";
}

}  // namespace roia::rms
