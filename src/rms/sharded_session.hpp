// Sharded-world session runner: a zone grid hosted by per-zone server
// groups, bots roaming the whole world (crossing borders triggers the
// deterministic zone-handoff protocol), and steady-state tick measurement
// per zone. This is the harness behind the ext_zone_sharding sweep and the
// chaos handoff tests: it also audits entity conservation — every client
// owned by exactly one live avatar, no duplicates, no losses.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "game/bots.hpp"
#include "game/fps_app.hpp"
#include "net/fault.hpp"
#include "obs/telemetry.hpp"
#include "rtf/server.hpp"

namespace roia::rms {

struct ShardedSessionConfig {
  /// Application template. arenaOrigin/arenaExtent are overwritten with the
  /// full multi-zone world rectangle so bots roam across zone borders.
  game::FpsConfig fps{};
  rtf::ServerConfig server{};
  game::BotConfig bots{};

  std::size_t gridCols{2};
  std::size_t gridRows{1};
  Vec2 worldOrigin{0.0, 0.0};
  Vec2 zoneExtent{1000.0, 1000.0};
  std::size_t replicasPerZone{2};
  /// Cross-zone AOI band; 0 disables border shadows.
  double borderWidth{60.0};

  std::size_t users{100};
  std::size_t npcsPerZone{0};
  SimDuration warmup{SimDuration::seconds(5)};
  /// Measured steady-state phase, after warmup.
  SimDuration duration{SimDuration::seconds(20)};
  std::uint64_t seed{42};

  /// Optional link faults for chaos runs (loss/dup/jitter on every link).
  std::optional<net::FaultParams> linkFaults{};
  obs::Telemetry* telemetry{nullptr};
};

struct ShardedSessionSummary {
  std::size_t zones{0};
  std::size_t servers{0};
  std::size_t users{0};

  // Steady-state tick stats (sampled per monitoring window after warmup),
  // worst zone / worst replica.
  double steadyAvgTickMs{0.0};
  double steadyP95TickMs{0.0};
  double steadyMaxTickMs{0.0};

  std::uint64_t handoffsInitiated{0};
  std::uint64_t handoffsReceived{0};
  std::uint64_t borderShadows{0};

  // Entity conservation at session end: every connected client must own
  // exactly one active avatar across all servers.
  std::size_t duplicateAvatars{0};
  std::size_t missingAvatars{0};

  [[nodiscard]] bool conserved() const {
    return duplicateAvatars == 0 && missingAvatars == 0;
  }
};

/// Runs a sharded session: grid creation, per-zone replication, bot churnless
/// population, warmup, measured steady phase, and the conservation audit.
[[nodiscard]] ShardedSessionSummary runShardedSession(const ShardedSessionConfig& config);

}  // namespace roia::rms
