#include "rms/manager.hpp"

#include <algorithm>
#include <cstdio>
#include <type_traits>
#include <variant>

#include "common/log.hpp"
#include "obs/events.hpp"

namespace roia::rms {

RmsManager::RmsManager(rtf::Cluster& cluster, std::vector<ZoneId> zones,
                       std::unique_ptr<Strategy> strategy, ResourcePool pool, RmsConfig config)
    : cluster_(cluster),
      zones_(std::move(zones)),
      strategy_(std::move(strategy)),
      pool_(std::move(pool)),
      config_(config),
      telemetry_(cluster.telemetry()) {
  if (telemetry_ != nullptr) traceTrack_ = telemetry_->tracer.track("rms");
  // The initial replicas of the managed zones were provisioned before the
  // manager exists; lease-account them so server-seconds cover the whole
  // session.
  for (const ZoneId zone : zones_) {
    for (const ServerId id : cluster_.zones().replicas(zone)) {
      if (auto lease = pool_.lease(config_.standardFlavor, cluster_.simulation().now())) {
        serverLease_[id] = *lease;
      }
    }
  }
}

RmsManager::~RmsManager() { stop(); }

void RmsManager::start() {
  if (runningFlag_) return;
  runningFlag_ = true;
  token_ = cluster_.simulation().schedulePeriodic(config_.controlPeriod,
                                                  [this](SimTime now) { return controlStep(now); });
}

void RmsManager::stop() {
  if (!runningFlag_) return;
  runningFlag_ = false;
  sim::Simulation::cancelPeriodic(token_);
}

bool RmsManager::controlStep(SimTime now) {
  if (!runningFlag_) return false;

  if (telemetry_ != nullptr) {
    telemetry_->tracer.beginSpan(traceTrack_, now, "control-period", "rms");
    // Refresh collector-health gauges on the management-plane cadence.
    if (auto* collector = cluster_.monitoringCollector()) {
      collector->publishMetrics();
    }
  }

  // Complete drains first so the views only contain live servers.
  finishDrains();

  // Aggregate timeline point across all managed zones (per-zone details are
  // always available via the cluster's monitoring).
  TimelinePoint point;
  point.timeSec = now.asSeconds();

  processPreemptions(now, point);
  detectAndRecover(now, point);

  WorldView world;
  world.now = now;

  for (const ZoneId zone : zones_) {
    ZoneView view;
    view.zone = zone;
    view.now = now;
    if (config_.useNetworkMonitoring && cluster_.monitoringCollector() != nullptr) {
      // Published snapshots; drop ghosts of servers that left meanwhile.
      view.servers = cluster_.monitoringCollector()->zoneSnapshots(zone);
      std::erase_if(view.servers, [this](const rtf::MonitoringSnapshot& s) {
        return !cluster_.hasServer(s.server);
      });
    } else {
      view.servers = cluster_.zoneMonitoring(zone);
    }
    for (const ServerId drainingServer : draining_) {
      if (cluster_.hasServer(drainingServer) &&
          cluster_.server(drainingServer).zone() == zone) {
        view.draining.push_back(drainingServer);
      }
    }
    view.pendingStarts = pendingStarts_[zone];
    view.npcs = config_.npcs;
    view.neighbors = cluster_.zones().neighbors(zone);
    for (const auto& s : view.servers) view.borderShadows += s.borderShadows;

    const Decision decision = strategy_->decide(view);
    if (telemetry_ != nullptr) auditZoneDecision(now, view, decision);
    executeZone(zone, decision);

    point.users += view.totalUsers();
    point.servers += view.replicaCount();
    point.pendingServers += pendingStarts_[zone];
    double cpuSum = 0.0;
    for (const auto& s : view.servers) {
      if (cluster_.hasServer(s.server)) {
        cpuSum += cluster_.server(s.server).cpuAccount().load();
      }
    }
    if (!view.servers.empty()) {
      // Weighted mean over all servers of all zones, folded incrementally.
      point.avgCpuLoad += cpuSum;
    }
    point.avgTickMs = std::max(point.avgTickMs, view.avgTickMs());
    point.maxTickMs = std::max(point.maxTickMs, view.maxTickMs());
    for (const UserMigration& order : decision.migrations()) {
      point.migrationsOrdered += order.count;
    }
    world.zones.push_back(std::move(view));
  }

  // Cross-zone balance pass of a sharded world: one decision over all
  // managed zones, after every zone had its per-zone turn.
  if (zones_.size() > 1) {
    const Decision decision = strategy_->balance(world);
    executeBalance(now, decision);
    for (const Action& action : decision.actions) {
      if (const auto* handoff = std::get_if<ZoneHandoff>(&action)) {
        point.handoffsOrdered += handoff->count;
      }
    }
  }

  if (point.servers > 0) {
    point.avgCpuLoad /= static_cast<double>(point.servers);
  }
  point.violation = point.maxTickMs > config_.upperTickMs;
  if (point.violation) ++violationPeriods_;
  timeline_.push_back(point);
  if (telemetry_ != nullptr) telemetry_->tracer.endSpan(traceTrack_, now);
  return true;
}

void RmsManager::auditZoneDecision(SimTime now, const ZoneView& view, const Decision& decision) {
  obs::AuditRecord record;
  record.at = now;
  record.zone = view.zone;
  record.strategy = strategy_->name();
  record.users = view.totalUsers();
  record.npcs = view.npcs;
  record.replicas = view.replicaCount();
  record.pendingStarts = view.pendingStarts;
  record.measuredAvgTickMs = view.avgTickMs();
  record.measuredP95TickMs = view.p95TickMs();
  record.measuredMaxTickMs = view.maxTickMs();
  record.predictedTickMs = decision.predictedTickMs;
  record.threshold = decision.threshold;
  record.action = decision.primaryActionName();
  for (const UserMigration& order : decision.migrations()) {
    record.migrationsOrdered += order.count;
  }
  for (const RejectedAction& rejected : decision.rejected) {
    record.rejected.push_back(rejected.action + ": " + rejected.reason);
  }
  record.rationale = decision.rationale;
  telemetry_->audit.record(std::move(record));
}

void RmsManager::processPreemptions(SimTime now, TimelinePoint& point) {
  auto* faults = cluster_.faultInjector();
  if (faults == nullptr && preemptionDeadline_.empty()) return;

  // Claim freshly due notices. For each victim: start draining immediately
  // and order a like-for-like replacement now, so the new capacity (after
  // its startup delay) is serving before the grace window closes.
  if (faults != nullptr) {
    for (const auto& preemption : faults->claimDuePreemptions(now)) {
      if (!cluster_.hasServer(preemption.server)) continue;
      const ZoneId zone = cluster_.server(preemption.server).zone();
      if (std::find(zones_.begin(), zones_.end(), zone) == zones_.end()) continue;
      if (preemptionDeadline_.contains(preemption.server)) continue;

      // The provider reclaims at notice + window, not at poll + window — a
      // slow control loop eats into the grace period, like real life.
      preemptionDeadline_[preemption.server] = preemption.notice + preemption.window;
      draining_.insert(preemption.server);
      ++gracefulDrains_;
      const std::uint64_t drainTrace = obs::drainTraceId(preemption.server.value, now.micros);
      drainTrace_[preemption.server] = drainTrace;
      if (telemetry_ != nullptr) {
        telemetry_->protocols.begin(obs::Protocol::kGracefulDrain, drainTrace, now);
      }

      std::size_t flavorIdx = config_.standardFlavor;
      if (auto leaseIt = serverLease_.find(preemption.server); leaseIt != serverLease_.end()) {
        if (const auto idx = pool_.leaseFlavor(leaseIt->second)) flavorIdx = *idx;
      }
      const bool replacement = beginReplicaStart(zone, flavorIdx, std::nullopt);

      ROIA_LOG(LogLevel::kWarn, "rms",
               "server " << preemption.server.value << " preempted, draining within "
                         << preemption.window.asMillis() << "ms");
      if (telemetry_ != nullptr) {
        obs::AuditRecord audit;
        audit.at = now;
        audit.zone = zone;
        audit.strategy = strategy_->name();
        audit.users = cluster_.server(preemption.server).connectedUsers();
        audit.replicas = cluster_.zones().replicaCount(zone);
        audit.pendingStarts = pendingStarts_[zone];
        audit.threshold = "preemption:notice";
        audit.action = obs::events::kGracefulDrain;
        audit.rationale = "server " + std::to_string(preemption.server.value) +
                          " preempted; window=" + std::to_string(preemption.window.asMillis()) +
                          "ms replacement=" + (replacement ? "ordered" : "pool-exhausted");
        telemetry_->audit.record(std::move(audit));
        telemetry_->tracer.instant(traceTrack_, now, "preemption-notice", "rms");
      }
    }
  }

  // Advance every in-flight drain: push users off the victim each period,
  // and enforce the deadline once it passes.
  for (auto it = preemptionDeadline_.begin(); it != preemptionDeadline_.end();) {
    const ServerId victim = it->first;
    if (!cluster_.hasServer(victim)) {
      // Already gone: drained clean via finishDrains, or crashed and was
      // recovered by the failure detector. Both paths end the drain
      // protocol themselves; just drop any leftover bookkeeping.
      drainTrace_.erase(victim);
      draining_.erase(victim);
      it = preemptionDeadline_.erase(it);
      continue;
    }
    const ZoneId zone = cluster_.server(victim).zone();

    if (now >= it->second) {
      // Deadline. A clean victim is removed like any finished drain; one
      // with users left is reclaimed under us — treat it as a crash so the
      // remaining clients are re-homed instead of lost.
      const std::size_t usersLeft = cluster_.server(victim).connectedUsers();
      if (auto leaseIt = serverLease_.find(victim); leaseIt != serverLease_.end()) {
        pool_.release(leaseIt->second, now);
        serverLease_.erase(leaseIt);
      }
      if (usersLeft == 0 && cluster_.zones().replicaCount(zone) > 1) {
        cluster_.removeServer(victim);
        ++replicasRemoved_;
        if (telemetry_ != nullptr) {
          if (const auto trace = drainTrace_.find(victim); trace != drainTrace_.end()) {
            telemetry_->protocols.end(obs::Protocol::kGracefulDrain, trace->second, now,
                                      obs::ProtocolOutcome::kCompleted);
          }
          obs::AuditRecord audit;
          audit.at = now;
          audit.zone = zone;
          audit.strategy = strategy_->name();
          audit.replicas = cluster_.zones().replicaCount(zone);
          audit.pendingStarts = pendingStarts_[zone];
          audit.threshold = "preemption:deadline";
          audit.action = obs::events::kDrainComplete;
          audit.rationale =
              "server " + std::to_string(victim.value) + " drained clean before reclaim";
          telemetry_->audit.record(std::move(audit));
        }
      } else {
        ++drainFallbacks_;
        if (telemetry_ != nullptr) {
          if (const auto trace = drainTrace_.find(victim); trace != drainTrace_.end()) {
            telemetry_->protocols.end(obs::Protocol::kGracefulDrain, trace->second, now,
                                      obs::ProtocolOutcome::kDeadlineExpired);
          }
        }
        if (!cluster_.server(victim).crashed()) cluster_.crashServer(victim);
        const rtf::Cluster::RecoveryReport report = cluster_.recoverCrashedServer(victim);
        point.clientsRehomed += report.clientsRehomed;
        ROIA_LOG(LogLevel::kWarn, "rms",
                 "preemption window expired on server " << victim.value << " with " << usersLeft
                                                        << " users; crash-recovering");
        if (telemetry_ != nullptr) {
          obs::AuditRecord audit;
          audit.at = now;
          audit.zone = zone;
          audit.strategy = strategy_->name();
          audit.users = usersLeft;
          audit.replicas = cluster_.zones().replicaCount(zone);
          audit.pendingStarts = pendingStarts_[zone];
          audit.threshold = "preemption:deadline";
          audit.action = obs::events::kRecoverCrash;
          audit.rationale = "preemption window expired; rehomed=" +
                            std::to_string(report.clientsRehomed) +
                            " promoted=" + std::to_string(report.shadowsPromoted) +
                            " lost=" + std::to_string(report.clientsLost);
          telemetry_->audit.record(std::move(audit));
          telemetry_->tracer.instant(traceTrack_, now, "preemption-fallback", "rms");
        }
      }
      drainTrace_.erase(victim);
      draining_.erase(victim);
      it = preemptionDeadline_.erase(it);
      continue;
    }

    // Within the window: order everyone off, spread over the live
    // non-draining replicas of the zone (lowest client ids first, like all
    // other migration orders; a null strategy would never move them).
    const std::vector<ClientId> candidates = cluster_.server(victim).clientIds(true);
    if (!candidates.empty()) {
      std::vector<ServerId> targets;
      for (const ServerId id : cluster_.zones().replicas(zone)) {
        if (id == victim || !cluster_.hasServer(id) || draining_.contains(id)) continue;
        targets.push_back(id);
      }
      std::sort(targets.begin(), targets.end(), [this](ServerId a, ServerId b) {
        const std::size_t ua = cluster_.server(a).connectedUsers();
        const std::size_t ub = cluster_.server(b).connectedUsers();
        return ua != ub ? ua < ub : a < b;
      });
      for (std::size_t i = 0; i < candidates.size() && !targets.empty(); ++i) {
        if (cluster_.migrateClient(candidates[i], targets[i % targets.size()])) {
          ++migrationsOrdered_;
          ++point.migrationsOrdered;
        }
      }
    }
    ++it;
  }
}

void RmsManager::detectAndRecover(SimTime now, TimelinePoint& point) {
  if (!config_.detectFailures) return;
  auto* collector = cluster_.monitoringCollector();
  if (collector == nullptr) return;

  for (const ServerId dead :
       collector->suspectDead(config_.heartbeatPeriod, config_.missedHeartbeats)) {
    if (!cluster_.hasServer(dead)) continue;  // ghost of an earlier recovery
    const ZoneId zone = cluster_.server(dead).zone();
    if (std::find(zones_.begin(), zones_.end(), zone) == zones_.end()) continue;

    ROIA_LOG(LogLevel::kWarn, "rms",
             "server " << dead.value << " declared dead (heartbeat silent), recovering");
    const std::uint64_t recoveryTrace = obs::recoveryTraceId(dead.value, now.micros);
    if (telemetry_ != nullptr) {
      // A drain interrupted by the crash ends here; recovery takes over.
      if (const auto trace = drainTrace_.find(dead); trace != drainTrace_.end()) {
        telemetry_->protocols.end(obs::Protocol::kGracefulDrain, trace->second, now,
                                  obs::ProtocolOutcome::kCrashed);
      }
      telemetry_->protocols.begin(obs::Protocol::kCrashRecovery, recoveryTrace, now);
    }
    drainTrace_.erase(dead);
    // The dead replica's flavor, for a like-for-like replacement.
    std::size_t flavorIdx = config_.standardFlavor;
    if (auto leaseIt = serverLease_.find(dead); leaseIt != serverLease_.end()) {
      if (const auto idx = pool_.leaseFlavor(leaseIt->second)) flavorIdx = *idx;
      // The machine died with the server on it: reclaim its lease.
      pool_.release(leaseIt->second, now);
      serverLease_.erase(leaseIt);
    }
    draining_.erase(dead);

    const rtf::Cluster::RecoveryReport report = cluster_.recoverCrashedServer(dead);
    if (telemetry_ != nullptr) {
      telemetry_->protocols.phase(obs::Protocol::kCrashRecovery, recoveryTrace, now, "rehome");
    }

    RecoveryRecord record;
    record.detectedAt = now;
    record.server = dead;
    record.zone = zone;
    record.clientsRehomed = report.clientsRehomed;
    record.shadowsPromoted = report.shadowsPromoted;
    record.clientsLost = report.clientsLost;
    record.npcsAdopted = report.npcsAdopted;
    // Restore the replica count the strategy last decided on. The recovery
    // protocol instance ends when the replacement starts serving (the trace
    // id rides into the startup callback); with no replacement it ends now.
    record.replacementOrdered = beginReplicaStart(zone, flavorIdx, std::nullopt, recoveryTrace);
    if (!record.replacementOrdered && telemetry_ != nullptr) {
      const auto e2eMs = telemetry_->protocols.end(obs::Protocol::kCrashRecovery, recoveryTrace,
                                                   now, obs::ProtocolOutcome::kCompleted);
      if (e2eMs) recordRecoveryLatency(zone, dead, *e2eMs, now);
    }
    recoveries_.push_back(record);

    if (telemetry_ != nullptr) {
      obs::AuditRecord audit;
      audit.at = now;
      audit.zone = zone;
      audit.strategy = strategy_->name();
      audit.replicas = cluster_.zones().replicaCount(zone);
      audit.pendingStarts = pendingStarts_[zone];
      audit.threshold = "detector:missed_heartbeats";
      audit.action = obs::events::kRecoverCrash;
      audit.rationale = "server " + std::to_string(dead.value) +
                        " heartbeat-silent; rehomed=" + std::to_string(report.clientsRehomed) +
                        " promoted=" + std::to_string(report.shadowsPromoted) +
                        " lost=" + std::to_string(report.clientsLost);
      telemetry_->audit.record(std::move(audit));
      telemetry_->tracer.instant(traceTrack_, now, "crash-recovery", "rms");
    }

    ++point.crashesDetected;
    point.clientsRehomed += report.clientsRehomed;
  }
}

void RmsManager::executeZone(ZoneId zone, const Decision& decision) {
  for (const Action& action : decision.actions) {
    std::visit(
        [&](const auto& a) {
          using T = std::decay_t<decltype(a)>;
          if constexpr (std::is_same_v<T, UserMigration>) {
            // Pick concrete users deterministically (lowest ids first) from
            // the source server.
            if (!cluster_.hasServer(a.from) || !cluster_.hasServer(a.to)) return;
            const std::vector<ClientId> candidates = cluster_.server(a.from).clientIds(true);
            const std::size_t count = std::min(a.count, candidates.size());
            for (std::size_t i = 0; i < count; ++i) {
              if (cluster_.migrateClient(candidates[i], a.to)) {
                ++migrationsOrdered_;
              }
            }
          } else if constexpr (std::is_same_v<T, ReplicationEnactment>) {
            beginReplicaStart(zone, config_.standardFlavor, std::nullopt);
          } else if constexpr (std::is_same_v<T, ResourceSubstitution>) {
            const ServerId victim = a.victim;
            if (cluster_.hasServer(victim) && !draining_.contains(victim)) {
              // Compare flavors in pool-relative units (the cluster template
              // may model a faster hardware generation as its baseline).
              double currentSpeed = 1.0;
              if (auto leaseIt = serverLease_.find(victim); leaseIt != serverLease_.end()) {
                if (const auto flavorIdx = pool_.leaseFlavor(leaseIt->second)) {
                  currentSpeed = pool_.flavor(*flavorIdx).speedFactor;
                }
              }
              if (const auto flavorIdx = pool_.strongerFlavor(currentSpeed)) {
                beginReplicaStart(zone, *flavorIdx, victim);
                ++substitutions_;
              }
            }
          } else if constexpr (std::is_same_v<T, ResourceRemoval>) {
            const ServerId victim = a.victim;
            if (cluster_.hasServer(victim) && !draining_.contains(victim) &&
                cluster_.zones().replicaCount(zone) > 1) {
              draining_.insert(victim);
            }
          } else if constexpr (std::is_same_v<T, ZoneHandoff>) {
            // Zone handoffs belong to the cross-zone balance pass; a
            // strategy emitting one from decide() is a bug, not a crash.
            ROIA_LOG(LogLevel::kWarn, "rms", "ZoneHandoff ignored in per-zone decision");
          }
        },
        action);
  }
}

void RmsManager::executeBalance(SimTime now, const Decision& decision) {
  std::size_t ordered = 0;
  ZoneId auditZone{};
  for (const Action& action : decision.actions) {
    const auto* handoff = std::get_if<ZoneHandoff>(&action);
    if (handoff == nullptr) continue;  // balance() only orders cross-zone moves
    if (!auditZone.valid()) auditZone = handoff->fromZone;

    // Source: the fullest live replica of the overloaded zone; users leave
    // lowest-id first, like same-zone migration orders.
    ServerId source{};
    std::size_t most = 0;
    for (const ServerId id : cluster_.zones().replicas(handoff->fromZone)) {
      if (!cluster_.hasServer(id)) continue;
      const std::size_t users = cluster_.server(id).connectedUsers();
      if (!source.valid() || users > most) {
        source = id;
        most = users;
      }
    }
    if (!source.valid()) continue;
    const std::vector<ClientId> candidates = cluster_.server(source).clientIds(true);
    const std::size_t count = std::min(handoff->count, candidates.size());
    for (std::size_t i = 0; i < count; ++i) {
      if (cluster_.travelClient(candidates[i], handoff->toZone)) {
        ++zoneHandoffsOrdered_;
        ++ordered;
      }
    }
  }

  if (telemetry_ != nullptr && (!decision.actions.empty() || !decision.rejected.empty())) {
    obs::AuditRecord record;
    record.at = now;
    record.zone = auditZone;
    record.strategy = strategy_->name();
    record.predictedTickMs = decision.predictedTickMs;
    record.threshold = decision.threshold;
    record.action = decision.primaryActionName();
    record.migrationsOrdered = ordered;
    for (const RejectedAction& rejected : decision.rejected) {
      record.rejected.push_back(rejected.action + ": " + rejected.reason);
    }
    record.rationale = decision.rationale;
    telemetry_->audit.record(std::move(record));
  }
}

bool RmsManager::beginReplicaStart(ZoneId zone, std::size_t flavorIdx,
                                   std::optional<ServerId> drainAfterStart,
                                   std::uint64_t recoveryTraceId) {
  const auto lease = pool_.lease(flavorIdx, cluster_.simulation().now());
  if (!lease) {
    ROIA_LOG(LogLevel::kWarn, "rms", "resource pool exhausted for flavor " << flavorIdx);
    return false;
  }
  ++pendingStarts_[zone];
  const double speed = pool_.flavor(flavorIdx).speedFactor;
  cluster_.simulation().scheduleAfter(
      config_.serverStartupDelay,
      [this, zone, speed, leaseId = *lease, drainAfterStart, recoveryTraceId]() {
        auto& pending = pendingStarts_[zone];
        if (pending > 0) --pending;
        if (!runningFlag_) {
          pool_.release(leaseId, cluster_.simulation().now());
          return;
        }
        const ServerId id = cluster_.addServer(zone, speed);
        serverLease_[id] = leaseId;
        ++replicasAdded_;
        if (recoveryTraceId != 0 && telemetry_ != nullptr) {
          const SimTime now = cluster_.simulation().now();
          telemetry_->protocols.phase(obs::Protocol::kCrashRecovery, recoveryTraceId, now,
                                      "replica_start");
          const auto e2eMs = telemetry_->protocols.end(
              obs::Protocol::kCrashRecovery, recoveryTraceId, now,
              obs::ProtocolOutcome::kCompleted);
          if (e2eMs) recordRecoveryLatency(zone, id, *e2eMs, now);
        }
        if (drainAfterStart && cluster_.hasServer(*drainAfterStart)) {
          draining_.insert(*drainAfterStart);
        }
      });
  return true;
}

void RmsManager::recordRecoveryLatency(ZoneId zone, ServerId server, double e2eMs, SimTime now) {
  if (telemetry_ == nullptr) return;
  const auto handle = telemetry_->slo.findHandle(obs::kSloRecoveryLatency);
  if (!handle) return;
  const auto breach =
      telemetry_->slo.record(*handle, "server-" + std::to_string(server.value), e2eMs, now);
  if (!breach) return;
  obs::AuditRecord audit;
  audit.at = now;
  audit.zone = zone;
  audit.strategy = "slo-engine";
  audit.replicas = cluster_.zones().replicaCount(zone);
  audit.threshold = "slo:" + breach->objective;
  audit.action = obs::events::kSloBreach;
  char rationale[200];
  std::snprintf(rationale, sizeof(rationale),
                "objective '%s': value=%.3f short_burn=%.2f long_burn=%.2f",
                breach->objective.c_str(), breach->value, breach->shortBurn, breach->longBurn);
  audit.rationale = rationale;
  telemetry_->audit.record(std::move(audit));
}

void RmsManager::finishDrains() {
  for (auto it = draining_.begin(); it != draining_.end();) {
    const ServerId id = *it;
    if (!cluster_.hasServer(id)) {
      it = draining_.erase(it);
      continue;
    }
    const ZoneId zone = cluster_.server(id).zone();
    if (cluster_.server(id).connectedUsers() == 0 && cluster_.zones().replicaCount(zone) > 1) {
      cluster_.removeServer(id);
      ++replicasRemoved_;
      if (const auto trace = drainTrace_.find(id); trace != drainTrace_.end()) {
        if (telemetry_ != nullptr) {
          telemetry_->protocols.end(obs::Protocol::kGracefulDrain, trace->second,
                                    cluster_.simulation().now(),
                                    obs::ProtocolOutcome::kCompleted);
        }
        drainTrace_.erase(trace);
      }
      if (auto leaseIt = serverLease_.find(id); leaseIt != serverLease_.end()) {
        pool_.release(leaseIt->second, cluster_.simulation().now());
        serverLease_.erase(leaseIt);
      }
      it = draining_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace roia::rms
