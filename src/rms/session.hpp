// End-to-end managed session runner: a full RTFDemo-style session with a
// time-varying bot population, managed by RTF-RMS under a chosen strategy.
// Produces the timeline of paper Fig. 8 and the summary numbers of the
// policy-ablation experiment.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "game/calibrate.hpp"
#include "game/scenario.hpp"
#include "net/fault.hpp"
#include "rms/manager.hpp"
#include "rms/model_strategy.hpp"
#include "rms/strategy.hpp"

namespace roia::rms {

struct ManagedSessionConfig;

/// Builds the strategy a managed session runs under. The factory replaces
/// the old PolicyKind enum: any Strategy implementation can be plugged in,
/// and the three canonical policies are provided as factories below.
using StrategyFactory = std::function<std::unique_ptr<Strategy>(const ManagedSessionConfig&,
                                                                const model::TickModel&)>;

/// The paper's contribution: model-driven thresholds + Eq. (5) budgets.
[[nodiscard]] StrategyFactory makeModelDrivenFactory();
/// The "initial RTF-RMS": reactive thresholds, full equalization, no model.
[[nodiscard]] StrategyFactory makeStaticIntervalFactory();
/// Model thresholds + unbounded migrations (budget-ablation baseline).
[[nodiscard]] StrategyFactory makeUnthrottledFactory();

/// Network/crash fault plan for chaos sessions. The injector seed and the
/// plan fully determine the fault schedule: same config, same seed → same
/// timeline, bit for bit.
struct SessionFaultPlan {
  /// Faults applied to every link of the cluster (loss, dup, jitter, ...).
  net::FaultParams link{};
  /// Crash the most-loaded replica of the managed zone at this session time
  /// (skipped, with a warning, while the zone has fewer than two replicas).
  std::optional<SimDuration> crashAt{};
  /// Fault-injector seed; 0 derives it from the session seed.
  std::uint64_t faultSeed{0};
};

struct ManagedSessionConfig {
  game::FpsConfig fps{};
  rtf::ServerConfig server{};
  game::BotConfig bots{};
  game::WorkloadScenario scenario = game::WorkloadScenario::paperSession();
  /// Extra time to keep managing after the scenario ends (drain tail).
  SimDuration tail{SimDuration::seconds(10)};
  RmsConfig rms{};
  ModelStrategyConfig modelStrategy{};
  /// Strategy the manager runs; defaults to the model-driven policy.
  StrategyFactory strategyFactory{makeModelDrivenFactory()};
  std::size_t initialReplicas{1};
  std::uint64_t seed{42};
  /// Chaos mode: inject network faults and optionally a mid-session crash.
  std::optional<SessionFaultPlan> faults{};
  /// Telemetry context handed to the cluster; nullptr falls back to the
  /// process-global context when active (see obs::Telemetry).
  obs::Telemetry* telemetry{nullptr};
};

struct SessionSummary {
  std::string policy;
  std::vector<TimelinePoint> timeline;
  std::size_t peakUsers{0};
  std::size_t peakServers{0};
  double maxTickMs{0.0};
  std::size_t violationPeriods{0};
  double violationFraction{0.0};
  std::uint64_t migrations{0};
  std::uint64_t replicasAdded{0};
  std::uint64_t replicasRemoved{0};
  std::uint64_t substitutions{0};
  double serverSeconds{0.0};
  double resourceCost{0.0};

  // Client-side QoE: update rates observed at the receiving end (the paper
  // ties the 40 ms tick bound to users needing >= 25 updates/s).
  double clientUpdateRateAvgHz{0.0};
  double clientUpdateRateMinHz{0.0};
  double clientWorstGapMs{0.0};

  // Chaos sessions: crash-failure recovery outcomes.
  std::uint64_t crashesInjected{0};
  std::uint64_t crashesDetected{0};
  std::uint64_t clientsRehomed{0};
  std::uint64_t clientsLost{0};
  std::vector<RecoveryRecord> recoveries;
};

/// Runs the session. The tick model for model-based policies is calibrated
/// by the caller (so one calibration can serve many policy runs).
[[nodiscard]] SessionSummary runManagedSession(const ManagedSessionConfig& config,
                                               const model::TickModel& tickModel);

}  // namespace roia::rms
