
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/roia_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/roia_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/fit_test.cpp" "tests/CMakeFiles/roia_tests.dir/fit_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/fit_test.cpp.o.d"
  "/root/repo/tests/game_test.cpp" "tests/CMakeFiles/roia_tests.dir/game_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/game_test.cpp.o.d"
  "/root/repo/tests/instance_director_test.cpp" "tests/CMakeFiles/roia_tests.dir/instance_director_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/instance_director_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/roia_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/interest_test.cpp" "tests/CMakeFiles/roia_tests.dir/interest_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/interest_test.cpp.o.d"
  "/root/repo/tests/misc_test.cpp" "tests/CMakeFiles/roia_tests.dir/misc_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/misc_test.cpp.o.d"
  "/root/repo/tests/model_test.cpp" "tests/CMakeFiles/roia_tests.dir/model_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/model_test.cpp.o.d"
  "/root/repo/tests/monitoring_transport_test.cpp" "tests/CMakeFiles/roia_tests.dir/monitoring_transport_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/monitoring_transport_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/roia_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/player_state_test.cpp" "tests/CMakeFiles/roia_tests.dir/player_state_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/player_state_test.cpp.o.d"
  "/root/repo/tests/qoe_test.cpp" "tests/CMakeFiles/roia_tests.dir/qoe_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/qoe_test.cpp.o.d"
  "/root/repo/tests/rms_test.cpp" "tests/CMakeFiles/roia_tests.dir/rms_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/rms_test.cpp.o.d"
  "/root/repo/tests/robustness_test.cpp" "tests/CMakeFiles/roia_tests.dir/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/robustness_test.cpp.o.d"
  "/root/repo/tests/rtf_cluster_test.cpp" "tests/CMakeFiles/roia_tests.dir/rtf_cluster_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/rtf_cluster_test.cpp.o.d"
  "/root/repo/tests/rtf_test.cpp" "tests/CMakeFiles/roia_tests.dir/rtf_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/rtf_test.cpp.o.d"
  "/root/repo/tests/sensitivity_test.cpp" "tests/CMakeFiles/roia_tests.dir/sensitivity_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/sensitivity_test.cpp.o.d"
  "/root/repo/tests/serialize_test.cpp" "tests/CMakeFiles/roia_tests.dir/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/serialize_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/roia_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/roia_tests.dir/sim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/roia_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/roia_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/roia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/roia_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fit/CMakeFiles/roia_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/rtf/CMakeFiles/roia_rtf.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/roia_game.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/roia_model.dir/DependInfo.cmake"
  "/root/repo/build/src/rms/CMakeFiles/roia_rms.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
