# Empty compiler generated dependencies file for roia_tests.
# This may be replaced when dependencies are built.
