# Empty compiler generated dependencies file for world_of_zones.
# This may be replaced when dependencies are built.
