
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/world_of_zones.cpp" "examples/CMakeFiles/world_of_zones.dir/world_of_zones.cpp.o" "gcc" "examples/CMakeFiles/world_of_zones.dir/world_of_zones.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/game/CMakeFiles/roia_game.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/roia_model.dir/DependInfo.cmake"
  "/root/repo/build/src/rms/CMakeFiles/roia_rms.dir/DependInfo.cmake"
  "/root/repo/build/src/fit/CMakeFiles/roia_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/rtf/CMakeFiles/roia_rtf.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/roia_net.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/roia_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/roia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/roia_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
