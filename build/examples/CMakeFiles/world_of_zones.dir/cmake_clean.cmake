file(REMOVE_RECURSE
  "CMakeFiles/world_of_zones.dir/world_of_zones.cpp.o"
  "CMakeFiles/world_of_zones.dir/world_of_zones.cpp.o.d"
  "world_of_zones"
  "world_of_zones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/world_of_zones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
