# Empty dependencies file for roia_rtf.
# This may be replaced when dependencies are built.
