file(REMOVE_RECURSE
  "libroia_rtf.a"
)
