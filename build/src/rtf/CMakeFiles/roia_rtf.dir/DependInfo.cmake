
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtf/client.cpp" "src/rtf/CMakeFiles/roia_rtf.dir/client.cpp.o" "gcc" "src/rtf/CMakeFiles/roia_rtf.dir/client.cpp.o.d"
  "/root/repo/src/rtf/cluster.cpp" "src/rtf/CMakeFiles/roia_rtf.dir/cluster.cpp.o" "gcc" "src/rtf/CMakeFiles/roia_rtf.dir/cluster.cpp.o.d"
  "/root/repo/src/rtf/messages.cpp" "src/rtf/CMakeFiles/roia_rtf.dir/messages.cpp.o" "gcc" "src/rtf/CMakeFiles/roia_rtf.dir/messages.cpp.o.d"
  "/root/repo/src/rtf/monitoring.cpp" "src/rtf/CMakeFiles/roia_rtf.dir/monitoring.cpp.o" "gcc" "src/rtf/CMakeFiles/roia_rtf.dir/monitoring.cpp.o.d"
  "/root/repo/src/rtf/probes.cpp" "src/rtf/CMakeFiles/roia_rtf.dir/probes.cpp.o" "gcc" "src/rtf/CMakeFiles/roia_rtf.dir/probes.cpp.o.d"
  "/root/repo/src/rtf/server.cpp" "src/rtf/CMakeFiles/roia_rtf.dir/server.cpp.o" "gcc" "src/rtf/CMakeFiles/roia_rtf.dir/server.cpp.o.d"
  "/root/repo/src/rtf/world.cpp" "src/rtf/CMakeFiles/roia_rtf.dir/world.cpp.o" "gcc" "src/rtf/CMakeFiles/roia_rtf.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/roia_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/roia_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/roia_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/roia_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
