file(REMOVE_RECURSE
  "CMakeFiles/roia_rtf.dir/client.cpp.o"
  "CMakeFiles/roia_rtf.dir/client.cpp.o.d"
  "CMakeFiles/roia_rtf.dir/cluster.cpp.o"
  "CMakeFiles/roia_rtf.dir/cluster.cpp.o.d"
  "CMakeFiles/roia_rtf.dir/messages.cpp.o"
  "CMakeFiles/roia_rtf.dir/messages.cpp.o.d"
  "CMakeFiles/roia_rtf.dir/monitoring.cpp.o"
  "CMakeFiles/roia_rtf.dir/monitoring.cpp.o.d"
  "CMakeFiles/roia_rtf.dir/probes.cpp.o"
  "CMakeFiles/roia_rtf.dir/probes.cpp.o.d"
  "CMakeFiles/roia_rtf.dir/server.cpp.o"
  "CMakeFiles/roia_rtf.dir/server.cpp.o.d"
  "CMakeFiles/roia_rtf.dir/world.cpp.o"
  "CMakeFiles/roia_rtf.dir/world.cpp.o.d"
  "libroia_rtf.a"
  "libroia_rtf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roia_rtf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
