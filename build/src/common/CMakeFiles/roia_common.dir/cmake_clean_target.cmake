file(REMOVE_RECURSE
  "libroia_common.a"
)
