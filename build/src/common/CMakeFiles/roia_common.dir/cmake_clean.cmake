file(REMOVE_RECURSE
  "CMakeFiles/roia_common.dir/log.cpp.o"
  "CMakeFiles/roia_common.dir/log.cpp.o.d"
  "CMakeFiles/roia_common.dir/rng.cpp.o"
  "CMakeFiles/roia_common.dir/rng.cpp.o.d"
  "CMakeFiles/roia_common.dir/stats.cpp.o"
  "CMakeFiles/roia_common.dir/stats.cpp.o.d"
  "libroia_common.a"
  "libroia_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roia_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
