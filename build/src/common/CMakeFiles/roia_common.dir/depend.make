# Empty dependencies file for roia_common.
# This may be replaced when dependencies are built.
