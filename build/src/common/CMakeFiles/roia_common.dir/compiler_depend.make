# Empty compiler generated dependencies file for roia_common.
# This may be replaced when dependencies are built.
