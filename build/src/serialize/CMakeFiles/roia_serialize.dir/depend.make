# Empty dependencies file for roia_serialize.
# This may be replaced when dependencies are built.
