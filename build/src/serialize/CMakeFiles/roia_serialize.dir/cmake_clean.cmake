file(REMOVE_RECURSE
  "CMakeFiles/roia_serialize.dir/byte_buffer.cpp.o"
  "CMakeFiles/roia_serialize.dir/byte_buffer.cpp.o.d"
  "CMakeFiles/roia_serialize.dir/crc32.cpp.o"
  "CMakeFiles/roia_serialize.dir/crc32.cpp.o.d"
  "CMakeFiles/roia_serialize.dir/message.cpp.o"
  "CMakeFiles/roia_serialize.dir/message.cpp.o.d"
  "libroia_serialize.a"
  "libroia_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roia_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
