file(REMOVE_RECURSE
  "libroia_serialize.a"
)
