
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serialize/byte_buffer.cpp" "src/serialize/CMakeFiles/roia_serialize.dir/byte_buffer.cpp.o" "gcc" "src/serialize/CMakeFiles/roia_serialize.dir/byte_buffer.cpp.o.d"
  "/root/repo/src/serialize/crc32.cpp" "src/serialize/CMakeFiles/roia_serialize.dir/crc32.cpp.o" "gcc" "src/serialize/CMakeFiles/roia_serialize.dir/crc32.cpp.o.d"
  "/root/repo/src/serialize/message.cpp" "src/serialize/CMakeFiles/roia_serialize.dir/message.cpp.o" "gcc" "src/serialize/CMakeFiles/roia_serialize.dir/message.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/roia_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
