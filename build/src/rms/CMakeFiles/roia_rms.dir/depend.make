# Empty dependencies file for roia_rms.
# This may be replaced when dependencies are built.
