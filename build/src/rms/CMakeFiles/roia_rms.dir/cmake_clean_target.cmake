file(REMOVE_RECURSE
  "libroia_rms.a"
)
