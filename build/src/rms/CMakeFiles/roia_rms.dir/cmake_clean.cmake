file(REMOVE_RECURSE
  "CMakeFiles/roia_rms.dir/baseline_strategies.cpp.o"
  "CMakeFiles/roia_rms.dir/baseline_strategies.cpp.o.d"
  "CMakeFiles/roia_rms.dir/instance_director.cpp.o"
  "CMakeFiles/roia_rms.dir/instance_director.cpp.o.d"
  "CMakeFiles/roia_rms.dir/manager.cpp.o"
  "CMakeFiles/roia_rms.dir/manager.cpp.o.d"
  "CMakeFiles/roia_rms.dir/model_strategy.cpp.o"
  "CMakeFiles/roia_rms.dir/model_strategy.cpp.o.d"
  "CMakeFiles/roia_rms.dir/resource_pool.cpp.o"
  "CMakeFiles/roia_rms.dir/resource_pool.cpp.o.d"
  "CMakeFiles/roia_rms.dir/session.cpp.o"
  "CMakeFiles/roia_rms.dir/session.cpp.o.d"
  "libroia_rms.a"
  "libroia_rms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roia_rms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
