# Empty dependencies file for roia_sim.
# This may be replaced when dependencies are built.
