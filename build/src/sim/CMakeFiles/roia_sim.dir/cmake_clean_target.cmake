file(REMOVE_RECURSE
  "libroia_sim.a"
)
