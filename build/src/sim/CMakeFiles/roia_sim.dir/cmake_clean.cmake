file(REMOVE_RECURSE
  "CMakeFiles/roia_sim.dir/cpu.cpp.o"
  "CMakeFiles/roia_sim.dir/cpu.cpp.o.d"
  "CMakeFiles/roia_sim.dir/event_queue.cpp.o"
  "CMakeFiles/roia_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/roia_sim.dir/simulation.cpp.o"
  "CMakeFiles/roia_sim.dir/simulation.cpp.o.d"
  "libroia_sim.a"
  "libroia_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roia_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
