
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fit/gof.cpp" "src/fit/CMakeFiles/roia_fit.dir/gof.cpp.o" "gcc" "src/fit/CMakeFiles/roia_fit.dir/gof.cpp.o.d"
  "/root/repo/src/fit/levmar.cpp" "src/fit/CMakeFiles/roia_fit.dir/levmar.cpp.o" "gcc" "src/fit/CMakeFiles/roia_fit.dir/levmar.cpp.o.d"
  "/root/repo/src/fit/matrix.cpp" "src/fit/CMakeFiles/roia_fit.dir/matrix.cpp.o" "gcc" "src/fit/CMakeFiles/roia_fit.dir/matrix.cpp.o.d"
  "/root/repo/src/fit/polyfit.cpp" "src/fit/CMakeFiles/roia_fit.dir/polyfit.cpp.o" "gcc" "src/fit/CMakeFiles/roia_fit.dir/polyfit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/roia_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
