file(REMOVE_RECURSE
  "libroia_fit.a"
)
