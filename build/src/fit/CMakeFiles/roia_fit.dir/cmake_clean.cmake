file(REMOVE_RECURSE
  "CMakeFiles/roia_fit.dir/gof.cpp.o"
  "CMakeFiles/roia_fit.dir/gof.cpp.o.d"
  "CMakeFiles/roia_fit.dir/levmar.cpp.o"
  "CMakeFiles/roia_fit.dir/levmar.cpp.o.d"
  "CMakeFiles/roia_fit.dir/matrix.cpp.o"
  "CMakeFiles/roia_fit.dir/matrix.cpp.o.d"
  "CMakeFiles/roia_fit.dir/polyfit.cpp.o"
  "CMakeFiles/roia_fit.dir/polyfit.cpp.o.d"
  "libroia_fit.a"
  "libroia_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roia_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
