# Empty dependencies file for roia_fit.
# This may be replaced when dependencies are built.
