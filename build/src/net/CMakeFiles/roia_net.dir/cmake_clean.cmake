file(REMOVE_RECURSE
  "CMakeFiles/roia_net.dir/network.cpp.o"
  "CMakeFiles/roia_net.dir/network.cpp.o.d"
  "libroia_net.a"
  "libroia_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roia_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
