file(REMOVE_RECURSE
  "libroia_net.a"
)
