# Empty compiler generated dependencies file for roia_net.
# This may be replaced when dependencies are built.
