file(REMOVE_RECURSE
  "CMakeFiles/roia_model.dir/bandwidth.cpp.o"
  "CMakeFiles/roia_model.dir/bandwidth.cpp.o.d"
  "CMakeFiles/roia_model.dir/estimator.cpp.o"
  "CMakeFiles/roia_model.dir/estimator.cpp.o.d"
  "CMakeFiles/roia_model.dir/parameters.cpp.o"
  "CMakeFiles/roia_model.dir/parameters.cpp.o.d"
  "CMakeFiles/roia_model.dir/report.cpp.o"
  "CMakeFiles/roia_model.dir/report.cpp.o.d"
  "CMakeFiles/roia_model.dir/sensitivity.cpp.o"
  "CMakeFiles/roia_model.dir/sensitivity.cpp.o.d"
  "CMakeFiles/roia_model.dir/thresholds.cpp.o"
  "CMakeFiles/roia_model.dir/thresholds.cpp.o.d"
  "CMakeFiles/roia_model.dir/tick_model.cpp.o"
  "CMakeFiles/roia_model.dir/tick_model.cpp.o.d"
  "libroia_model.a"
  "libroia_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roia_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
