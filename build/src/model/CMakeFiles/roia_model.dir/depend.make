# Empty dependencies file for roia_model.
# This may be replaced when dependencies are built.
