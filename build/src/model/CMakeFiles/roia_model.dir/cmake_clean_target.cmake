file(REMOVE_RECURSE
  "libroia_model.a"
)
