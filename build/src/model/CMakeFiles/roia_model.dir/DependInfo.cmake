
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/bandwidth.cpp" "src/model/CMakeFiles/roia_model.dir/bandwidth.cpp.o" "gcc" "src/model/CMakeFiles/roia_model.dir/bandwidth.cpp.o.d"
  "/root/repo/src/model/estimator.cpp" "src/model/CMakeFiles/roia_model.dir/estimator.cpp.o" "gcc" "src/model/CMakeFiles/roia_model.dir/estimator.cpp.o.d"
  "/root/repo/src/model/parameters.cpp" "src/model/CMakeFiles/roia_model.dir/parameters.cpp.o" "gcc" "src/model/CMakeFiles/roia_model.dir/parameters.cpp.o.d"
  "/root/repo/src/model/report.cpp" "src/model/CMakeFiles/roia_model.dir/report.cpp.o" "gcc" "src/model/CMakeFiles/roia_model.dir/report.cpp.o.d"
  "/root/repo/src/model/sensitivity.cpp" "src/model/CMakeFiles/roia_model.dir/sensitivity.cpp.o" "gcc" "src/model/CMakeFiles/roia_model.dir/sensitivity.cpp.o.d"
  "/root/repo/src/model/thresholds.cpp" "src/model/CMakeFiles/roia_model.dir/thresholds.cpp.o" "gcc" "src/model/CMakeFiles/roia_model.dir/thresholds.cpp.o.d"
  "/root/repo/src/model/tick_model.cpp" "src/model/CMakeFiles/roia_model.dir/tick_model.cpp.o" "gcc" "src/model/CMakeFiles/roia_model.dir/tick_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/roia_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fit/CMakeFiles/roia_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/rtf/CMakeFiles/roia_rtf.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/roia_net.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/roia_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/roia_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
