file(REMOVE_RECURSE
  "libroia_game.a"
)
