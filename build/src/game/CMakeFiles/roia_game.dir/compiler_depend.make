# Empty compiler generated dependencies file for roia_game.
# This may be replaced when dependencies are built.
