# Empty dependencies file for roia_game.
# This may be replaced when dependencies are built.
