
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/game/bots.cpp" "src/game/CMakeFiles/roia_game.dir/bots.cpp.o" "gcc" "src/game/CMakeFiles/roia_game.dir/bots.cpp.o.d"
  "/root/repo/src/game/calibrate.cpp" "src/game/CMakeFiles/roia_game.dir/calibrate.cpp.o" "gcc" "src/game/CMakeFiles/roia_game.dir/calibrate.cpp.o.d"
  "/root/repo/src/game/commands.cpp" "src/game/CMakeFiles/roia_game.dir/commands.cpp.o" "gcc" "src/game/CMakeFiles/roia_game.dir/commands.cpp.o.d"
  "/root/repo/src/game/fps_app.cpp" "src/game/CMakeFiles/roia_game.dir/fps_app.cpp.o" "gcc" "src/game/CMakeFiles/roia_game.dir/fps_app.cpp.o.d"
  "/root/repo/src/game/interest.cpp" "src/game/CMakeFiles/roia_game.dir/interest.cpp.o" "gcc" "src/game/CMakeFiles/roia_game.dir/interest.cpp.o.d"
  "/root/repo/src/game/measurement.cpp" "src/game/CMakeFiles/roia_game.dir/measurement.cpp.o" "gcc" "src/game/CMakeFiles/roia_game.dir/measurement.cpp.o.d"
  "/root/repo/src/game/player_stats.cpp" "src/game/CMakeFiles/roia_game.dir/player_stats.cpp.o" "gcc" "src/game/CMakeFiles/roia_game.dir/player_stats.cpp.o.d"
  "/root/repo/src/game/scenario.cpp" "src/game/CMakeFiles/roia_game.dir/scenario.cpp.o" "gcc" "src/game/CMakeFiles/roia_game.dir/scenario.cpp.o.d"
  "/root/repo/src/game/state_update.cpp" "src/game/CMakeFiles/roia_game.dir/state_update.cpp.o" "gcc" "src/game/CMakeFiles/roia_game.dir/state_update.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtf/CMakeFiles/roia_rtf.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/roia_model.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/roia_net.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/roia_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/roia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fit/CMakeFiles/roia_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/roia_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
