file(REMOVE_RECURSE
  "CMakeFiles/roia_game.dir/bots.cpp.o"
  "CMakeFiles/roia_game.dir/bots.cpp.o.d"
  "CMakeFiles/roia_game.dir/calibrate.cpp.o"
  "CMakeFiles/roia_game.dir/calibrate.cpp.o.d"
  "CMakeFiles/roia_game.dir/commands.cpp.o"
  "CMakeFiles/roia_game.dir/commands.cpp.o.d"
  "CMakeFiles/roia_game.dir/fps_app.cpp.o"
  "CMakeFiles/roia_game.dir/fps_app.cpp.o.d"
  "CMakeFiles/roia_game.dir/interest.cpp.o"
  "CMakeFiles/roia_game.dir/interest.cpp.o.d"
  "CMakeFiles/roia_game.dir/measurement.cpp.o"
  "CMakeFiles/roia_game.dir/measurement.cpp.o.d"
  "CMakeFiles/roia_game.dir/player_stats.cpp.o"
  "CMakeFiles/roia_game.dir/player_stats.cpp.o.d"
  "CMakeFiles/roia_game.dir/scenario.cpp.o"
  "CMakeFiles/roia_game.dir/scenario.cpp.o.d"
  "CMakeFiles/roia_game.dir/state_update.cpp.o"
  "CMakeFiles/roia_game.dir/state_update.cpp.o.d"
  "libroia_game.a"
  "libroia_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roia_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
