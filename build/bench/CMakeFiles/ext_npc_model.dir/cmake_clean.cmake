file(REMOVE_RECURSE
  "CMakeFiles/ext_npc_model.dir/ext_npc_model.cpp.o"
  "CMakeFiles/ext_npc_model.dir/ext_npc_model.cpp.o.d"
  "ext_npc_model"
  "ext_npc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_npc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
