# Empty dependencies file for ext_npc_model.
# This may be replaced when dependencies are built.
