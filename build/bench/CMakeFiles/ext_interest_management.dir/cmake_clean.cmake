file(REMOVE_RECURSE
  "CMakeFiles/ext_interest_management.dir/ext_interest_management.cpp.o"
  "CMakeFiles/ext_interest_management.dir/ext_interest_management.cpp.o.d"
  "ext_interest_management"
  "ext_interest_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_interest_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
