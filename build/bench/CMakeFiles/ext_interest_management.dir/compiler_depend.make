# Empty compiler generated dependencies file for ext_interest_management.
# This may be replaced when dependencies are built.
