file(REMOVE_RECURSE
  "CMakeFiles/fig5_replication_scalability.dir/fig5_replication_scalability.cpp.o"
  "CMakeFiles/fig5_replication_scalability.dir/fig5_replication_scalability.cpp.o.d"
  "fig5_replication_scalability"
  "fig5_replication_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_replication_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
