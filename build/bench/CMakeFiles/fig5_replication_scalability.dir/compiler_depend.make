# Empty compiler generated dependencies file for fig5_replication_scalability.
# This may be replaced when dependencies are built.
