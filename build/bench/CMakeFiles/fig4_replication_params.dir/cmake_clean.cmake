file(REMOVE_RECURSE
  "CMakeFiles/fig4_replication_params.dir/fig4_replication_params.cpp.o"
  "CMakeFiles/fig4_replication_params.dir/fig4_replication_params.cpp.o.d"
  "fig4_replication_params"
  "fig4_replication_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_replication_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
