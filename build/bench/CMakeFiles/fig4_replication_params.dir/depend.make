# Empty dependencies file for fig4_replication_params.
# This may be replaced when dependencies are built.
