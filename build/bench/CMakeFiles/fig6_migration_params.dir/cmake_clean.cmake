file(REMOVE_RECURSE
  "CMakeFiles/fig6_migration_params.dir/fig6_migration_params.cpp.o"
  "CMakeFiles/fig6_migration_params.dir/fig6_migration_params.cpp.o.d"
  "fig6_migration_params"
  "fig6_migration_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_migration_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
