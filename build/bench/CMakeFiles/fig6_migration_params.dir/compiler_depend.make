# Empty compiler generated dependencies file for fig6_migration_params.
# This may be replaced when dependencies are built.
