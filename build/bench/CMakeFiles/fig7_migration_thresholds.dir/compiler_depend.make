# Empty compiler generated dependencies file for fig7_migration_thresholds.
# This may be replaced when dependencies are built.
