file(REMOVE_RECURSE
  "CMakeFiles/fig7_migration_thresholds.dir/fig7_migration_thresholds.cpp.o"
  "CMakeFiles/fig7_migration_thresholds.dir/fig7_migration_thresholds.cpp.o.d"
  "fig7_migration_thresholds"
  "fig7_migration_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_migration_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
