file(REMOVE_RECURSE
  "CMakeFiles/ext_future_scaling.dir/ext_future_scaling.cpp.o"
  "CMakeFiles/ext_future_scaling.dir/ext_future_scaling.cpp.o.d"
  "ext_future_scaling"
  "ext_future_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_future_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
