# Empty dependencies file for ext_future_scaling.
# This may be replaced when dependencies are built.
