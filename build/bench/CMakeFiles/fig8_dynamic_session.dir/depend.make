# Empty dependencies file for fig8_dynamic_session.
# This may be replaced when dependencies are built.
