file(REMOVE_RECURSE
  "CMakeFiles/fig8_dynamic_session.dir/fig8_dynamic_session.cpp.o"
  "CMakeFiles/fig8_dynamic_session.dir/fig8_dynamic_session.cpp.o.d"
  "fig8_dynamic_session"
  "fig8_dynamic_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dynamic_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
