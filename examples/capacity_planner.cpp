// Capacity planner: what an application provider runs before launch.
//
// Calibrates the scalability model once, then answers planning questions:
//  * how many replicas does a given peak population need (Eq. 2/3)?
//  * how does the QoE threshold U change capacity (fast-paced shooter at
//    40 ms vs. a role-playing game tolerating much longer ticks, section
//    III-C of the paper)?
//  * how does the provider's minimum-improvement factor c (an economic
//    choice) bound the sensible fleet size?
#include <cstdio>

#include "game/calibrate.hpp"
#include "model/report.hpp"
#include "model/thresholds.hpp"

int main() {
  using namespace roia;

  std::printf("== Capacity planning with the scalability model ==\n");
  game::CalibrationConfig calibrationConfig;
  calibrationConfig.replicationPopulations = {50, 100, 150, 200, 250, 300};
  calibrationConfig.migrationPopulations = {80, 160, 240};
  const model::TickModel tickModel = game::calibrateTickModel(calibrationConfig);

  // --- 1. replicas required for expected peaks (shooter settings) ---
  constexpr double kShooterU = 40000.0;  // 25 updates/s
  std::printf("\nReplicas needed at U = 40 ms (first-person shooter):\n");
  std::printf("  peak_users   replicas   modeled_tick_ms\n");
  for (const std::size_t peak : {150u, 300u, 450u, 600u}) {
    std::size_t l = 1;
    while (l < 64 && model::nMax(tickModel, l, 0, kShooterU) < peak) ++l;
    std::printf("  %10zu   %8zu   %14.1f\n", peak, l,
                tickModel.tickMillis(static_cast<double>(l), static_cast<double>(peak), 0));
  }

  // --- 2. the QoE threshold changes everything ---
  std::printf("\nSingle-server capacity vs. QoE threshold U (paper section III-C):\n");
  std::printf("  genre                      U_ms    n_max(1)\n");
  const struct {
    const char* genre;
    double uMs;
  } genres[] = {
      {"fast-paced shooter", 40.0},
      {"action RPG", 150.0},
      {"online role-playing", 500.0},
      {"turn-ish strategy", 1500.0},
  };
  for (const auto& g : genres) {
    std::printf("  %-25s %6.0f    %zu\n", g.genre, g.uMs,
                model::nMax(tickModel, 1, 0, g.uMs * 1000.0));
  }

  // --- 3. the economic knob c bounds the fleet ---
  std::printf("\nMaximum useful fleet size vs. minimum-improvement factor c (Eq. 3):\n");
  std::printf("  c       l_max   capacity_at_l_max\n");
  for (const double c : {0.05, 0.10, 0.15, 0.25, 0.50, 1.00}) {
    const model::LMaxResult result = model::lMax(tickModel, 0, kShooterU, c);
    std::printf("  %.2f    %5zu   %zu users\n", c, result.lMax,
                result.nMaxPerReplica.back());
  }

  std::printf("\nFull threshold report at the paper's settings (U = 40 ms, c = 0.15):\n%s",
              model::buildReport(tickModel, 40.0, 0.15).toString().c_str());
  return 0;
}
