// Live-session demo: an RTF-RMS-managed game session facing a flash crowd.
//
// A launch-day-style workload — slow growth, a sudden spike to 2.5x, then a
// long tail — is thrown at the model-driven manager twice: once with the
// paper's 80 % replication trigger (calibrated for RTFDemo's gentle 5
// users/s ramp) and once with a more conservative 65 % trigger. The flash
// crowd joins faster than the original trigger plus the server-startup
// delay can absorb, so the 80 % run shows transient QoS violations while
// the 65 % run holds — demonstrating how the trigger fraction is a knob the
// provider tunes to the expected churn rate (paper section V-A derives 80 %
// empirically *for its workload*).
#include <cstdio>

#include "game/calibrate.hpp"
#include "rms/session.hpp"

namespace {

roia::rms::SessionSummary runWithTrigger(const roia::model::TickModel& tickModel,
                                         double triggerFraction, bool printTimeline) {
  using namespace roia;
  rms::ManagedSessionConfig config;
  game::WorkloadScenario scenario;
  scenario.then(SimDuration::seconds(30), 120)   // organic growth
      .then(SimDuration::seconds(15), 300)       // flash crowd!
      .then(SimDuration::seconds(20), 300)       // spike holds
      .then(SimDuration::seconds(30), 80)        // crowd leaves
      .then(SimDuration::seconds(20), 80);       // steady tail
  config.scenario = scenario;
  config.rms.controlPeriod = SimDuration::seconds(1);
  config.rms.serverStartupDelay = SimDuration::seconds(2);
  config.modelStrategy.triggerFraction = triggerFraction;

  const rms::SessionSummary summary = rms::runManagedSession(config, tickModel);
  if (printTimeline) {
    std::printf("\n# time_s   users   servers   avg_cpu   max_tick_ms\n");
    std::size_t lastServers = 1;
    for (const rms::TimelinePoint& p : summary.timeline) {
      if (static_cast<long>(p.timeSec) % 5 == 0 || p.servers != lastServers) {
        std::printf("  %6.0f   %5zu   %7zu   %7.2f   %11.2f%s\n", p.timeSec, p.users, p.servers,
                    p.avgCpuLoad, p.maxTickMs,
                    p.servers > lastServers   ? "   <- replication enactment"
                    : p.servers < lastServers ? "   <- resource removal"
                                              : "");
      }
      lastServers = p.servers;
    }
  }
  return summary;
}

}  // namespace

int main() {
  using namespace roia;

  std::printf("== Flash-crowd session under model-driven RTF-RMS ==\n");
  game::CalibrationConfig calibrationConfig;
  calibrationConfig.replicationPopulations = {50, 100, 150, 200, 250, 300};
  calibrationConfig.migrationPopulations = {80, 160, 240};
  const model::TickModel tickModel = game::calibrateTickModel(calibrationConfig);

  std::printf("\n--- run 1: paper's 80%% replication trigger (tuned for gentle ramps) ---\n");
  const rms::SessionSummary paper = runWithTrigger(tickModel, 0.80, true);

  std::printf("\n--- run 2: conservative 65%% trigger for flash crowds ---\n");
  const rms::SessionSummary conservative = runWithTrigger(tickModel, 0.65, false);

  std::printf("\n# trigger   violations   max_tick_ms   peak_servers   server_seconds\n");
  std::printf("  80%%        %9zu   %11.2f   %12zu   %14.0f\n", paper.violationPeriods,
              paper.maxTickMs, paper.peakServers, paper.serverSeconds);
  std::printf("  65%%        %9zu   %11.2f   %12zu   %14.0f\n",
              conservative.violationPeriods, conservative.maxTickMs,
              conservative.peakServers, conservative.serverSeconds);

  std::printf(
      "\nThe 80%% trigger — empirically right for the paper's ~5 users/s ramp — reacts too\n"
      "late for a 12 users/s flash crowd given the 2 s server-startup delay; lowering the\n"
      "trigger trades a few extra server-seconds for an intact QoS. The trigger fraction is\n"
      "the provider's knob for expected churn.\n");
  return 0;
}
