// Quickstart: calibrate the scalability model for the FPS demo game and
// query its thresholds — the complete pipeline of the paper in ~40 lines:
//
//   1. run instrumented measurement sessions with random bots,
//   2. fit the per-parameter approximation functions (Levenberg-Marquardt),
//   3. build the tick model (Eq. 1/4) and derive the thresholds
//      n_max (Eq. 2), l_max (Eq. 3) and the migration budgets (Eq. 5).
#include <cstdio>

#include "game/calibrate.hpp"
#include "model/report.hpp"
#include "model/thresholds.hpp"

int main() {
  using namespace roia;

  std::printf("== Calibrating the scalability model for the FPS demo ==\n");
  game::CalibrationConfig config;
  // A lighter sweep than the full Fig. 4 campaign keeps the quickstart fast.
  config.replicationPopulations = {50, 100, 150, 200, 250, 300};
  config.migrationPopulations = {60, 120, 180, 240};
  const game::CalibrationResult calibration = game::calibrateModel(config);

  std::printf("\nFitted approximation functions:\n%s\n",
              calibration.parameters.describe().c_str());

  const model::TickModel tickModel(calibration.parameters);

  // The RTFDemo settings of the paper: U = 40 ms (25 updates/s), c = 0.15.
  const model::ThresholdReport report = model::buildReport(tickModel, 40.0, 0.15);
  std::printf("%s\n", report.toString().c_str());

  // Migration budgets for the paper's worked example (section V-A): a server
  // with 180 of 260 users at some tick duration.
  const std::size_t n = 260;
  const std::size_t ini = model::xMaxInitiate(tickModel, 2, n, 0, 180, 40000.0);
  const std::size_t rcv = model::xMaxReceive(tickModel, 2, n, 0, 80, 40000.0);
  std::printf("Migration budgets at n=%zu (180/80 split): x_max_ini=%zu, x_max_rcv=%zu\n", n,
              ini, rcv);
  std::printf("RTF-RMS would perform min{%zu, %zu} = %zu migrations per second.\n", ini, rcv,
              ini < rcv ? ini : rcv);
  return 0;
}
