// World-of-zones demo: the full distribution toolbox of the RTF substrate
// in one session — zoning (three zones with independent populations),
// cross-zone travel (users wander between zones), replication (hot zones
// scale out) and a single multi-zone RTF-RMS manager leasing all servers
// from one shared cloud pool.
//
// A "city" zone attracts most travellers, so RTF-RMS replicates it while
// the quieter zones keep one server each; when the crowd moves on, the
// extra replicas are returned to the pool.
#include <cstdio>
#include <memory>

#include "game/bots.hpp"
#include "game/calibrate.hpp"
#include "game/fps_app.hpp"
#include "rms/manager.hpp"
#include "rms/model_strategy.hpp"
#include "rtf/cluster.hpp"

int main() {
  using namespace roia;

  std::printf("== Multi-zone world under one RTF-RMS manager ==\n");
  game::CalibrationConfig calibrationConfig;
  calibrationConfig.replicationPopulations = {50, 100, 150, 200, 250};
  calibrationConfig.migrationPopulations = {80, 160, 240};
  const model::TickModel tickModel = game::calibrateTickModel(calibrationConfig);

  game::FpsApplication app;
  rtf::Cluster cluster(app, rtf::ClusterConfig{});
  const ZoneId city = cluster.createZone("city");
  const ZoneId woods = cluster.createZone("woods");
  const ZoneId coast = cluster.createZone("coast");
  const std::vector<ZoneId> zones{city, woods, coast};
  for (const ZoneId zone : zones) cluster.addServer(zone);

  // 420 wandering users join spread over the world...
  for (int i = 0; i < 420; ++i) {
    cluster.connectClient(zones[static_cast<std::size_t>(i) % zones.size()],
                          std::make_unique<game::BotProvider>());
  }

  // ...and drift: every second a handful of users travel, with a strong
  // pull toward the city for the first minute, then toward the coast.
  Rng travelRng(99);
  auto travelToken = cluster.simulation().schedulePeriodic(
      SimDuration::seconds(1), [&](SimTime now) {
        const ZoneId hotspot = now.asSeconds() < 60.0 ? city : coast;
        const std::vector<ClientId> ids = cluster.clientIds();
        for (int k = 0; k < 12 && !ids.empty(); ++k) {
          const ClientId pick =
              ids[static_cast<std::size_t>(travelRng.uniformInt(0, ids.size() - 1))];
          const ZoneId destination =
              travelRng.chance(0.75)
                  ? hotspot
                  : zones[static_cast<std::size_t>(travelRng.uniformInt(0, zones.size() - 1))];
          cluster.travelClient(pick, destination);  // no-op if already there
        }
        return now.asSeconds() < 120.0;
      });

  rms::RmsConfig rmsConfig;
  rmsConfig.controlPeriod = SimDuration::seconds(1);
  rmsConfig.serverStartupDelay = SimDuration::seconds(2);
  rms::RmsManager manager(cluster, zones,
                          std::make_unique<rms::ModelDrivenStrategy>(
                              tickModel, rms::ModelStrategyConfig{}),
                          rms::ResourcePool{}, rmsConfig);
  manager.start();

  std::printf("\n# time_s   city(users/srv)   woods(users/srv)   coast(users/srv)   pool_leases\n");
  for (int step = 0; step < 12; ++step) {
    cluster.run(SimDuration::seconds(10));
    std::printf("  %6.0f   %8zu/%zu   %10zu/%zu   %10zu/%zu   %11zu\n",
                cluster.simulation().now().asSeconds(), cluster.zoneUserCount(city),
                cluster.zones().replicaCount(city), cluster.zoneUserCount(woods),
                cluster.zones().replicaCount(woods), cluster.zoneUserCount(coast),
                cluster.zones().replicaCount(coast), manager.pool().activeLeases());
  }
  sim::Simulation::cancelPeriodic(travelToken);
  manager.stop();

  std::printf("\nreplicas added %llu / removed %llu, migrations %llu, violations %zu\n",
              static_cast<unsigned long long>(manager.replicasAdded()),
              static_cast<unsigned long long>(manager.replicasRemoved()),
              static_cast<unsigned long long>(manager.migrationsOrderedTotal()),
              manager.violationPeriods());
  std::printf("total users preserved across all travel and balancing: %zu of 420\n",
              cluster.clientCount());
  return 0;
}
