// Migration planner: the paper's Listing 1 in action.
//
// Starts from a deliberately imbalanced replica group (all users parked on
// one server), then applies the model-driven migration plan period by
// period, printing how the Eq. (5) budgets trickle users toward the average
// without ever pushing a server past the 40 ms threshold — the two-step
// behaviour of the paper's Fig. 2.
#include <cstdio>
#include <memory>

#include "game/bots.hpp"
#include "game/calibrate.hpp"
#include "game/fps_app.hpp"
#include "rms/model_strategy.hpp"
#include "rtf/cluster.hpp"

int main() {
  using namespace roia;

  std::printf("== Workload-aware user migration (paper Listing 1 / Fig. 2) ==\n");
  game::CalibrationConfig calibrationConfig;
  calibrationConfig.replicationPopulations = {50, 100, 150, 200, 250};
  calibrationConfig.migrationPopulations = {60, 120, 180};
  const model::TickModel tickModel = game::calibrateTickModel(calibrationConfig);

  // A zone on three replicas with 135 users, all initially on server 1 —
  // like Fig. 2's 45-user example scaled up.
  game::FpsApplication app;
  rtf::Cluster cluster(app, rtf::ClusterConfig{});
  const ZoneId zone = cluster.createZone("arena");
  const ServerId s1 = cluster.addServer(zone);
  const ServerId s2 = cluster.addServer(zone);
  const ServerId s3 = cluster.addServer(zone);
  for (int i = 0; i < 135; ++i) {
    cluster.connectClientTo(s1, std::make_unique<game::BotProvider>());
  }
  cluster.run(SimDuration::seconds(1));  // settle

  rms::ModelStrategyConfig strategyConfig;
  rms::ModelDrivenStrategy strategy(tickModel, strategyConfig);

  std::printf("\n# step   users(s1/s2/s3)   tick_ms(s1/s2/s3)   plan\n");
  for (int step = 0; step < 12; ++step) {
    rms::ZoneView view;
    view.zone = zone;
    view.now = cluster.simulation().now();
    view.servers = cluster.zoneMonitoring(zone);

    const rms::Decision decision = strategy.decide(view);
    const std::vector<rms::UserMigration> orders = decision.migrations();
    std::printf("  %4d   %4zu/%3zu/%3zu      %5.1f/%5.1f/%5.1f     ", step,
                cluster.server(s1).connectedUsers(), cluster.server(s2).connectedUsers(),
                cluster.server(s3).connectedUsers(), view.servers[0].tickAvgMs,
                view.servers[1].tickAvgMs, view.servers[2].tickAvgMs);
    if (orders.empty()) {
      std::printf("balanced — no migrations\n");
    } else {
      for (const auto& order : orders) {
        std::printf("s%llu->s%llu:%zu  ", static_cast<unsigned long long>(order.from.value),
                    static_cast<unsigned long long>(order.to.value), order.count);
      }
      std::printf("\n");
    }

    // Execute the plan as RTF-RMS would.
    for (const auto& order : orders) {
      const auto candidates = cluster.server(order.from).clientIds(true);
      for (std::size_t i = 0; i < std::min(order.count, candidates.size()); ++i) {
        cluster.migrateClient(candidates[i], order.to);
      }
    }
    cluster.run(SimDuration::seconds(1));
    if (orders.empty() && step > 0) break;
  }

  std::printf("\nfinal distribution: %zu / %zu / %zu (target: 45 each)\n",
              cluster.server(s1).connectedUsers(), cluster.server(s2).connectedUsers(),
              cluster.server(s3).connectedUsers());
  std::printf("total users preserved: %zu of 135\n", cluster.zoneUserCount(zone));
  return 0;
}
