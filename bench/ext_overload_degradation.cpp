// Extension: overload survival under a flash crowd and a preemption storm.
//
// The paper's RMS keeps tick time under the threshold U by adding resources
// ahead of load (Eq. 2). This harness measures what happens when that is not
// possible — the crowd arrives faster than servers can start, or the
// provider preempts the machines — and the system must survive on a fixed
// replica group:
//
//  * baseline: no defenses; the flash crowd drives the p95 tick past U and
//    keeps it there for the whole hold phase,
//  * ladder:   the per-server degradation ladder (AOI fidelity scaling, SU
//    rate halving, NPC throttling, observer shedding) trades fidelity for
//    deadline headroom,
//  * governed: ladder plus Eq. 2 admission control at the cluster edge —
//    joins that would push the predicted tick past U are vetoed and the
//    churn layer backs off,
//  * storm:    governed plus >= 3 preemption notices aimed at the busiest
//    replica mid-crowd; the RMS drains each victim within its grace window
//    and the session must end with zero entity loss.
//
// Determinism: every session is seeded from its config; sessions fan out
// over the sweep pool (ROIA_BENCH_THREADS) and all output is printed after
// collection, so stdout is byte-identical across thread counts. The storm
// config also runs twice with the same seed and the two summaries must
// match counter for counter.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/sweep.hpp"
#include "model/thresholds.hpp"
#include "rms/overload_session.hpp"

int main() {
  roia::benchharness::TelemetryScope telemetryScope;
  using namespace roia;
  using benchharness::printHeader;

  printHeader("overload degradation — flash crowd on a fixed replica group");
  std::printf("calibrating the scalability model first (paper section V-A)...\n");
  const game::CalibrationResult calibration = benchharness::runCalibration(true);
  const model::TickModel tickModel(calibration.parameters);

  constexpr double kBudgetMs = 40.0;
  constexpr std::size_t kReplicas = 2;
  constexpr std::size_t kNpcs = 40;
  const std::size_t nMax = model::nMax(tickModel, kReplicas, kNpcs, kBudgetMs * 1000.0);
  std::printf("capacity n_max(l=%zu, m=%zu) = %zu users at U = %.0f ms\n", kReplicas, kNpcs, nMax,
              kBudgetMs);

  const auto fraction = [&](double f) {
    return static_cast<std::size_t>(f * static_cast<double>(nMax));
  };
  // Flash crowd: comfortable load, a 5 s spike to 1.6x capacity, a long
  // hold at that level, then the crowd leaves.
  game::WorkloadScenario crowd;
  crowd.then(SimDuration::seconds(8), fraction(0.8))
      .then(SimDuration::seconds(5), fraction(1.6))
      .then(SimDuration::seconds(12), fraction(1.6))
      .then(SimDuration::seconds(5), fraction(0.5));

  struct SweepConfig {
    std::string name;
    bool ladder;
    bool admission;
    std::size_t replicas;
    std::size_t preemptions;
    std::uint64_t seed;
  };
  struct SweepResult {
    SweepConfig config;
    rms::OverloadSessionSummary summary;
  };

  const std::vector<SweepConfig> configs{
      {"baseline", false, false, kReplicas, 0, 11000},
      {"ladder", true, false, kReplicas, 0, 11000},
      {"governed", true, true, kReplicas, 0, 11000},
      {"storm", true, true, kReplicas + 1, 3, 11000},
      {"storm-repeat", true, true, kReplicas + 1, 3, 11000},
  };

  const std::vector<SweepResult> results =
      par::runSweep<SweepResult>(configs, [&](const SweepConfig& config) {
        rms::OverloadSessionConfig session;
        session.replicas = config.replicas;
        session.npcs = kNpcs;
        session.budgetMs = kBudgetMs;
        session.ladder = config.ladder;
        session.admission = config.admission;
        if (config.admission) session.model = tickModel;
        session.scenario = crowd;
        session.churn.maxChangePerPeriod = 10;
        session.churn.seed = config.seed ^ 0x5EEDULL;
        for (std::size_t i = 0; i < config.preemptions; ++i) {
          session.preemptions.push_back(
              {SimDuration::seconds(10 + 3 * static_cast<std::int64_t>(i)),
               SimDuration::seconds(4)});
        }
        session.seed = config.seed;
        return SweepResult{config, rms::runOverloadSession(session)};
      });

  printHeader("session summaries");
  std::printf(
      "# config         users  peak   miss/samples  maxlvl  downs  ups  shed  vetoes  drains  "
      "fallbk  conserved\n");
  for (const SweepResult& r : results) {
    std::printf("  %-13s  %5zu  %4zu   %4zu/%-7zu  %6zu  %5llu  %3llu  %4llu  %6llu  %6llu  "
                "%6llu  %9s\n",
                r.config.name.c_str(), r.summary.users, r.summary.peakUsers,
                r.summary.deadlineMissPeriods, r.summary.samples, r.summary.maxDegradationLevel,
                static_cast<unsigned long long>(r.summary.stepDowns),
                static_cast<unsigned long long>(r.summary.stepUps),
                static_cast<unsigned long long>(r.summary.shedEvents),
                static_cast<unsigned long long>(r.summary.admissionVetoes),
                static_cast<unsigned long long>(r.summary.gracefulDrains),
                static_cast<unsigned long long>(r.summary.drainFallbacks),
                r.summary.conserved() ? "yes" : "NO");
  }

  // Degradation timeline of the ladder config: how deep the ladder went and
  // what the worst replica's p95 tick did while the crowd was in.
  printHeader("degradation timeline (ladder config, every 2 s)");
  std::printf("#  t_sec   users   p95_ms   level   shed\n");
  for (const SweepResult& r : results) {
    if (r.config.name != "ladder") continue;
    for (std::size_t i = 0; i < r.summary.timeline.size(); i += 4) {
      const rms::OverloadSample& s = r.summary.timeline[i];
      std::printf("  %6.1f   %5zu   %6.2f   %5zu   %4zu\n", s.timeSec, s.users, s.worstP95TickMs,
                  s.maxLevel, s.shedObservers);
    }
  }

  const auto find = [&](const std::string& name) -> const rms::OverloadSessionSummary& {
    for (const SweepResult& r : results) {
      if (r.config.name == name) return r.summary;
    }
    std::fprintf(stderr, "missing config %s\n", name.c_str());
    std::abort();
  };
  const auto& baseline = find("baseline");
  const auto& ladder = find("ladder");
  const auto& governed = find("governed");
  const auto& storm = find("storm");
  const auto& stormRepeat = find("storm-repeat");

  printHeader("verdicts");
  std::printf("baseline misses deadlines under the flash crowd:  %s (%zu periods)\n",
              baseline.deadlineMissPeriods > 0 ? "yes" : "NO", baseline.deadlineMissPeriods);
  std::printf("ladder reduces deadline misses vs baseline:       %s (%zu vs %zu)\n",
              ladder.deadlineMissPeriods < baseline.deadlineMissPeriods ? "yes" : "NO",
              ladder.deadlineMissPeriods, baseline.deadlineMissPeriods);
  std::printf("ladder actually degraded (max level > 0):         %s (level %zu)\n",
              ladder.maxDegradationLevel > 0 ? "yes" : "NO", ladder.maxDegradationLevel);
  std::printf("governed holds every deadline:                    %s (%zu periods)\n",
              governed.deadlineMissPeriods == 0 ? "yes" : "NO", governed.deadlineMissPeriods);
  std::printf("governed vetoed joins at the edge:                %s (%llu vetoes, %llu retries)\n",
              governed.admissionVetoes > 0 ? "yes" : "NO",
              static_cast<unsigned long long>(governed.admissionVetoes),
              static_cast<unsigned long long>(governed.joinRetries));
  std::printf("storm injected >= 3 preemptions, all drained:     %s (%llu injected, %llu drains)\n",
              storm.preemptionsInjected >= 3 && storm.gracefulDrains >= 3 ? "yes" : "NO",
              static_cast<unsigned long long>(storm.preemptionsInjected),
              static_cast<unsigned long long>(storm.gracefulDrains));
  std::printf("storm lost zero entities:                         %s (%zu missing, %zu dup)\n",
              storm.conserved() ? "yes" : "NO", storm.missingAvatars, storm.duplicateAvatars);
  const bool repeatMatches =
      storm.users == stormRepeat.users && storm.peakUsers == stormRepeat.peakUsers &&
      storm.deadlineMissPeriods == stormRepeat.deadlineMissPeriods &&
      storm.stepDowns == stormRepeat.stepDowns && storm.stepUps == stormRepeat.stepUps &&
      storm.shedEvents == stormRepeat.shedEvents &&
      storm.admissionVetoes == stormRepeat.admissionVetoes &&
      storm.joinsVetoed == stormRepeat.joinsVetoed &&
      storm.gracefulDrains == stormRepeat.gracefulDrains &&
      storm.drainFallbacks == stormRepeat.drainFallbacks &&
      storm.migrationsOrdered == stormRepeat.migrationsOrdered;
  std::printf("storm repeat run is counter-identical:            %s\n", repeatMatches ? "yes" : "NO");
  return 0;
}
