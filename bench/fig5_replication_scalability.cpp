// Reproduces paper Fig. 5: "The effect of replication on scalability of the
// RTFDemo application" — the maximum user number n_max(l) for each replica
// count l up to l_max (Eq. 2/3), plus the 80 % replication-trigger line
// (the dashed line in the figure) that RTF-RMS uses for replication
// enactment.
//
// Paper anchors: a single server computes ~235 users; the trigger for the
// second replica is at 188 users (80 %); with c = 0.15 the model yields
// l_max = 8, with c = 0.05 a large l_max (48 in the paper), with c -> 1
// l_max = 1.
//
// We additionally *validate* each n_max prediction against the running
// system: a session with n_max(l) users on l replicas must stay below the
// 40 ms threshold, and one with 120 % of n_max(l) must violate it.
#include <vector>

#include "bench_common.hpp"
#include "common/sweep.hpp"
#include "game/measurement.hpp"
#include "model/report.hpp"
#include "model/thresholds.hpp"

int main() {
  roia::benchharness::TelemetryScope telemetryScope;
  using namespace roia;
  using benchharness::printHeader;

  printHeader("Fig. 5 — effect of replication on scalability (U = 40 ms, c = 0.15)");
  const game::CalibrationResult calibration = benchharness::runCalibration();
  const model::TickModel tickModel(calibration.parameters);
  const model::ThresholdReport report = model::buildReport(tickModel, 40.0, 0.15);

  std::printf("\n# replicas   n_max   trigger(80%%)   modeled_tick_at_nmax_ms\n");
  for (std::size_t l = 1; l <= report.lMax; ++l) {
    const std::size_t nMax = report.nMaxPerReplica[l - 1];
    std::printf("  %8zu   %5zu   %12zu   %10.2f\n", l, nMax, report.replicationTriggers[l - 1],
                tickModel.tickMillis(static_cast<double>(l), static_cast<double>(nMax), 0));
  }
  std::printf("\nl_max(c=0.15) = %zu   (paper: 8)\n", report.lMax);
  std::printf("l_max(c=0.05) = %zu   (paper: 48; same large-regime shape)\n",
              model::lMax(tickModel, 0, 40000.0, 0.05).lMax);
  std::printf("l_max(c=1.00) = %zu   (paper: 1)\n",
              model::lMax(tickModel, 0, 40000.0, 1.0).lMax);
  std::printf("single-server capacity n_max(1) = %zu users (paper: ~235, trigger 188)\n",
              report.nMaxPerReplica[0]);

  printHeader("validation: does the real system respect the predicted n_max?");
  game::MeasurementConfig mConfig;
  mConfig.warmup = SimDuration::seconds(2);
  mConfig.measure = SimDuration::seconds(2);

  // Each (l, frac) cell is an independent session: fan out the grid across
  // the sweep pool, then print in the legacy order.
  struct Cell {
    std::size_t l;
    double frac;
    std::size_t n;
  };
  std::vector<Cell> cells;
  for (std::size_t l = 1; l <= std::min<std::size_t>(4, report.lMax); ++l) {
    const std::size_t nMax = report.nMaxPerReplica[l - 1];
    for (const double frac : {0.8, 1.0, 1.2}) {
      cells.push_back({l, frac, static_cast<std::size_t>(static_cast<double>(nMax) * frac)});
    }
  }
  const std::vector<game::SteadyStateResult> measurements =
      par::runSweep<game::SteadyStateResult>(cells, [&](const Cell& cell) {
        return game::measureSteadyState(mConfig, cell.n, cell.l);
      });

  std::printf("\n# l   n      load     predicted_ms   measured_ms   note\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const game::SteadyStateResult& measured = measurements[i];
    const double predicted =
        tickModel.tickMillis(static_cast<double>(cell.l), static_cast<double>(cell.n), 0);
    const char* note =
        cell.frac < 0.9   ? (measured.tickAvgMs < 40.0 ? "ok (below)" : "UNEXPECTED")
        : cell.frac > 1.1 ? (measured.tickAvgMs > 40.0 ? "ok (violates as predicted)"
                                                       : "UNEXPECTED")
                          : "boundary (~40 ms expected)";
    std::printf("  %zu   %5zu   %3.0f%%   %12.2f   %11.2f   %s\n", cell.l, cell.n,
                cell.frac * 100, predicted, measured.tickAvgMs, note);
  }
  return 0;
}
