// Ablation experiment (paper section IV's motivation): the model-driven
// RTF-RMS strategy vs. the "initial implementation" baseline (static
// intervals, unthrottled equalization, reactive replication) and vs. a
// hybrid that keeps the model's replication thresholds but drops the
// Eq. (5) migration budgets.
//
// Reported per policy, on the same ramp workload: QoS violations, max tick
// duration, migrations issued, largest per-period migration burst, replicas
// used and server-seconds leased.
#include <vector>

#include "bench_common.hpp"
#include "common/sweep.hpp"
#include "rms/session.hpp"

int main() {
  roia::benchharness::TelemetryScope telemetryScope;
  using namespace roia;
  using benchharness::printHeader;

  printHeader("Ablation — load-balancing policies on the same 0->300->0 session");
  const game::CalibrationResult calibration = benchharness::runCalibration(true);
  const model::TickModel tickModel(calibration.parameters);

  const rms::StrategyFactory policies[] = {
      rms::makeModelDrivenFactory(),
      rms::makeStaticIntervalFactory(),
      rms::makeUnthrottledFactory(),
  };

  // Each policy drives its own managed session: fan out across the sweep
  // pool and print in the declaration order afterwards.
  const std::vector<rms::SessionSummary> summaries = par::runSweep<rms::SessionSummary>(
      std::size(policies), [&](std::size_t i) {
        rms::ManagedSessionConfig config;
        config.strategyFactory = policies[i];
        config.scenario = game::WorkloadScenario::paperSession(
            300, SimDuration::seconds(50), SimDuration::seconds(20), SimDuration::seconds(50));
        config.rms.controlPeriod = SimDuration::seconds(1);
        config.rms.serverStartupDelay = SimDuration::seconds(2);
        return rms::runManagedSession(config, tickModel);
      });

  std::printf(
      "\n# policy                 violations  max_tick_ms  migrations  max_burst  peak_srv  "
      "server_seconds\n");
  for (const rms::SessionSummary& summary : summaries) {
    std::size_t maxBurst = 0;
    for (const auto& p : summary.timeline) maxBurst = std::max(maxBurst, p.migrationsOrdered);

    std::printf("  %-22s   %9zu   %10.2f   %9llu   %8zu   %7zu   %13.0f\n",
                summary.policy.c_str(), summary.violationPeriods, summary.maxTickMs,
                static_cast<unsigned long long>(summary.migrations), maxBurst,
                summary.peakServers, summary.serverSeconds);
  }

  std::printf(
      "\nexpected shape: model-driven holds 0 violations; the static baseline reacts late and\n"
      "violates during the ramp; the unthrottled hybrid replicates predictively but issues\n"
      "bursty migrations (larger max_burst).\n");
  return 0;
}
