// Reproduces paper Fig. 4: "Model parameters for replication in the RTFDemo
// application" — measured per-user CPU times for t_ua, t_ua_dser, t_aoi and
// t_su against the user count, with the Levenberg-Marquardt approximation
// functions fitted over them. (The paper omits t_fa / t_fa_dser from the
// figure because they are tiny; we print them anyway for completeness.)
//
// Expected shape (paper section V-A): t_ua and t_aoi quadratic, t_ua_dser
// and t_su linear, forwarded-input parameters much smaller than the rest.
#include "bench_common.hpp"
#include "model/estimator.hpp"

int main() {
  roia::benchharness::TelemetryScope telemetryScope;
  using namespace roia;
  using benchharness::printHeader;
  using benchharness::printParamTable;

  printHeader(
      "Fig. 4 — model parameters for replication (up to 300 bots, 2 replicas)");
  std::printf("workload: randomly interacting bots, split equally on two replicas\n");
  std::printf("measured: per-user / per-shadow CPU microseconds per real-time-loop phase\n");

  const game::CalibrationResult calibration = benchharness::runCalibration();
  const model::ModelParameters& params = calibration.parameters;

  const struct {
    model::ParamKind kind;
    const char* note;
  } figureParams[] = {
      {model::ParamKind::kUa, "validate+apply user inputs (quadratic: attack scan over all users)"},
      {model::ParamKind::kUaDser, "deserialize user inputs (linear: attack share grows with n)"},
      {model::ParamKind::kAoi, "area of interest, Euclidean Distance Algorithm (quadratic)"},
      {model::ParamKind::kSu, "compute+serialize state updates (linear)"},
      {model::ParamKind::kFaDser, "deserialize forwarded/shadow inputs (small, omitted in paper)"},
      {model::ParamKind::kFa, "apply forwarded/shadow inputs (small, omitted in paper)"},
  };

  for (const auto& p : figureParams) {
    const rtf::Phase phase = model::phaseForParamKind(p.kind);
    std::printf("\n--- %s: %s\n", model::paramName(p.kind), p.note);
    printParamTable(model::paramName(p.kind), calibration.replicationSamples.series(phase),
                    params.at(p.kind));
  }

  // Shape checks mirroring the paper's analysis.
  printHeader("shape summary (paper section V-A expectations)");
  const auto& ua = params.at(model::ParamKind::kUa);
  const auto& aoi = params.at(model::ParamKind::kAoi);
  std::printf("t_ua   quadratic coefficient: %.3g (> 0 expected)   R^2 = %.3f\n", ua.coeffs[2],
              ua.gof.r2);
  std::printf("t_aoi  quadratic coefficient: %.3g (> 0 expected)   R^2 = %.3f\n", aoi.coeffs[2],
              aoi.gof.r2);
  std::printf("t_fa + t_fa_dser at n=300: %.2f us vs t_ua + t_aoi: %.2f us (small, as in paper)\n",
              params.eval(model::ParamKind::kFa, 300) +
                  params.eval(model::ParamKind::kFaDser, 300),
              params.eval(model::ParamKind::kUa, 300) +
                  params.eval(model::ParamKind::kAoi, 300));
  return 0;
}
