// Extension experiment: the NPC term of the model.
//
// Eq. (1) carries an m/l * t_npc(n) term that the paper's evaluation
// neglects ("this parameter is included in our model, but will be neglected
// in the remainder of this paper for brevity"). This harness exercises it:
// sessions run with computer-controlled NPCs in the zone, t_npc is measured
// and fitted like every other parameter, and the capacity loss n_max(l, m)
// is quantified for growing NPC counts — including how replication dilutes
// the NPC load (each replica only updates m/l NPCs).
#include <vector>

#include "bench_common.hpp"
#include "common/sweep.hpp"
#include "model/estimator.hpp"
#include "model/thresholds.hpp"

int main() {
  roia::benchharness::TelemetryScope telemetryScope;
  using namespace roia;
  using benchharness::printHeader;
  using benchharness::printParamTable;

  printHeader("Extension — the NPC term of Eq. (1): m/l * t_npc(n)");

  // Calibrate WITH NPCs so t_npc is actually measured.
  game::CalibrationConfig config;
  config.measurement.npcs = 100;
  config.replicationPopulations = {50, 100, 150, 200, 250, 300};
  config.migrationPopulations = {80, 160, 240};
  const game::CalibrationResult calibration = game::calibrateModel(config);
  const model::TickModel tickModel(calibration.parameters);

  printParamTable("t_npc", calibration.replicationSamples.series(rtf::Phase::kNpc),
                  calibration.parameters.at(model::ParamKind::kNpc));

  printHeader("capacity vs. NPC count (U = 40 ms)");
  std::printf("\n# m(NPCs)   n_max(l=1)   n_max(l=2)   n_max(l=4)\n");
  for (const std::size_t m : {0u, 100u, 250u, 500u, 1000u}) {
    std::printf("  %7zu   %10zu   %10zu   %10zu\n", m,
                model::nMax(tickModel, 1, m, 40000.0), model::nMax(tickModel, 2, m, 40000.0),
                model::nMax(tickModel, 4, m, 40000.0));
  }
  std::printf(
      "\nexpected shape: NPCs cost capacity on a single server, but the m/l term means\n"
      "replication recovers most of it — the per-replica NPC share shrinks with l.\n");

  printHeader("model vs. measurement with NPCs (validation)");
  game::MeasurementConfig mConfig;
  mConfig.npcs = 100;
  mConfig.warmup = SimDuration::seconds(2);
  mConfig.measure = SimDuration::seconds(2);
  const std::vector<std::pair<std::size_t, std::size_t>> pairs{
      {100, 1}, {150, 1}, {150, 2}, {250, 2}};
  const std::vector<game::SteadyStateResult> measurements =
      par::runSweep<game::SteadyStateResult>(pairs, [&](const auto& pair) {
        return game::measureSteadyState(mConfig, pair.first, pair.second);
      });
  std::printf("\n# n     l   predicted_ms   measured_ms\n");
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto [n, l] = pairs[i];
    const double predicted = tickModel.tickMillis(static_cast<double>(l),
                                                  static_cast<double>(n), 100);
    std::printf("  %4zu   %zu   %12.2f   %11.2f\n", n, l, predicted, measurements[i].tickAvgMs);
  }
  return 0;
}
