// Reproduces paper Fig. 7: "Scalability model output: number of user
// migrations for the RTFDemo application" — how many migrations can be
// initiated (x_max_ini) and received (x_max_rcv) per second for a given
// observed tick duration without violating the 40 ms threshold (Eq. 5).
//
// Paper worked example: a server with 180 users at a 35 ms tick may
// initiate 3 migrations/s while its 80-user peer at 15 ms may receive 34;
// RTF-RMS performs min{ini, rcv}. After some balancing (160 users, 30 ms)
// the initiator budget rises to ~5.
#include "bench_common.hpp"
#include "model/thresholds.hpp"

int main() {
  roia::benchharness::TelemetryScope telemetryScope;
  using namespace roia;
  using benchharness::printHeader;

  printHeader("Fig. 7 — migration budgets vs. tick duration (Eq. 5, U = 40 ms)");
  const game::CalibrationResult calibration = benchharness::runCalibration();
  const model::TickModel tickModel(calibration.parameters);
  constexpr double kU = 40000.0;

  // The budgets depend on the migration cost at the zone population; the
  // paper's example plays out around n = 260 (180 + 80).
  const double n = 260;
  const double tMigIni = tickModel.migInitiateMicros(n);
  const double tMigRcv = tickModel.migReceiveMicros(n);
  std::printf("\nzone population n = %.0f: t_mig_ini = %.0f us, t_mig_rcv = %.0f us\n", n,
              tMigIni, tMigRcv);

  std::printf("\n# tick_ms   x_max_ini/s   x_max_rcv/s\n");
  for (double tickMs = 0.0; tickMs <= 42.0; tickMs += 2.0) {
    std::printf("  %7.0f   %11zu   %11zu\n", tickMs,
                model::xMaxFromObservedTick(tickMs * 1000.0, tMigIni, kU),
                model::xMaxFromObservedTick(tickMs * 1000.0, tMigRcv, kU));
  }

  printHeader("paper worked example (section V-A)");
  const std::size_t iniHeavy = model::xMaxFromObservedTick(35000.0, tMigIni, kU);
  const std::size_t rcvLight = model::xMaxFromObservedTick(15000.0, tMigRcv, kU);
  std::printf("server A: 180 users, 35 ms tick -> x_max_ini = %zu   (paper: 3)\n", iniHeavy);
  std::printf("server B:  80 users, 15 ms tick -> x_max_rcv = %zu   (paper: 34)\n", rcvLight);
  std::printf("RTF-RMS performs min{%zu, %zu} = %zu migrations/s (paper: 3)\n", iniHeavy,
              rcvLight, std::min(iniHeavy, rcvLight));
  const std::size_t iniRelaxed = model::xMaxFromObservedTick(30000.0, tMigIni, kU);
  std::printf("after balancing, 160 users at 30 ms -> x_max_ini = %zu   (paper: 5)\n",
              iniRelaxed);

  printHeader("model-form budgets (Eq. 4 + Eq. 5, modeled tick instead of observed)");
  std::printf("\n# actives_a   modeled_tick_ms   x_max_ini/s   x_max_rcv/s\n");
  for (std::size_t a = 20; a <= 240; a += 20) {
    const double tick = tickModel.tickMillis(2, n, 0, static_cast<double>(a));
    std::printf("  %9zu   %15.1f   %11zu   %11zu\n", a, tick,
                model::xMaxInitiate(tickModel, 2, static_cast<std::size_t>(n), 0, a, kU),
                model::xMaxReceive(tickModel, 2, static_cast<std::size_t>(n), 0, a, kU));
  }
  return 0;
}
