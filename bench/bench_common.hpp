// Shared helpers for the figure-reproduction harnesses: a standard
// calibration run (the paper's section V-A campaign) and small table
// printers. Each harness prints the same series the corresponding paper
// figure plots, so the output can be piped straight into gnuplot.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "game/calibrate.hpp"
#include "model/tick_model.hpp"
#include "obs/telemetry.hpp"

namespace roia::benchharness {

/// Activates the process-global telemetry context from environment knobs
/// and writes the requested sidecar files when the harness exits:
///   ROIA_TRACE_OUT    Chrome/Perfetto trace-event JSON (simulated time)
///   ROIA_METRICS_OUT  metrics snapshot; format by extension: .prom
///                     (Prometheus text), .csv, anything else JSONL
///   ROIA_AUDIT_OUT    RMS decision audit log, JSONL
///   ROIA_SLO_OUT      SLO compliance/burn-rate summary, JSONL; also
///                     installs the default objectives when none are set
///   ROIA_DRIFT_OUT    Eq.2/Eq.4 model-drift residual summary, JSONL
///   ROIA_FLIGHT_OUT   flight-recorder dumps (breach/crash rings), JSONL
///   ROIA_TRACE_SAMPLE synthesize tick spans every Nth tick (default 1)
/// With none of the knobs set, telemetry stays off and the run is
/// bit-identical to one without this scope.
class TelemetryScope {
 public:
  TelemetryScope() {
    traceOut_ = envString("ROIA_TRACE_OUT");
    metricsOut_ = envString("ROIA_METRICS_OUT");
    auditOut_ = envString("ROIA_AUDIT_OUT");
    sloOut_ = envString("ROIA_SLO_OUT");
    driftOut_ = envString("ROIA_DRIFT_OUT");
    flightOut_ = envString("ROIA_FLIGHT_OUT");
    if (traceOut_.empty() && metricsOut_.empty() && auditOut_.empty() && sloOut_.empty() &&
        driftOut_.empty() && flightOut_.empty()) {
      return;
    }
    active_ = true;
    obs::Telemetry& telemetry = obs::Telemetry::global();
    telemetry.setActive(true);
    telemetry.tracer.setEnabled(!traceOut_.empty());
    telemetry.audit.setEnabled(!auditOut_.empty() || !sloOut_.empty() || !flightOut_.empty());
    if (!sloOut_.empty() && telemetry.slo.objectiveCount() == 0) {
      obs::installDefaultObjectives(telemetry.slo);
    }
    if (const char* sample = std::getenv("ROIA_TRACE_SAMPLE")) {
      const long every = std::strtol(sample, nullptr, 10);
      if (every > 0) telemetry.traceTickSampleEvery = static_cast<std::size_t>(every);
    }
  }

  ~TelemetryScope() { flush(); }

  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

  /// Writes the sidecars; idempotent, also runs at scope exit.
  void flush() {
    if (!active_ || flushed_) return;
    flushed_ = true;
    obs::Telemetry& telemetry = obs::Telemetry::global();
    if (!traceOut_.empty()) {
      std::ofstream out(traceOut_);
      telemetry.tracer.writeJson(out);
      std::fprintf(stderr, "telemetry: %zu trace events -> %s\n",
                   telemetry.tracer.eventCount(), traceOut_.c_str());
    }
    if (!metricsOut_.empty()) {
      std::ofstream out(metricsOut_);
      if (metricsOut_.ends_with(".prom")) {
        telemetry.metrics.writePrometheus(out);
      } else if (metricsOut_.ends_with(".csv")) {
        telemetry.metrics.writeCsv(out);
      } else {
        telemetry.metrics.writeJsonl(out);
      }
      std::fprintf(stderr, "telemetry: %zu metrics -> %s\n", telemetry.metrics.size(),
                   metricsOut_.c_str());
    }
    if (!auditOut_.empty()) {
      std::ofstream out(auditOut_);
      telemetry.audit.writeJsonl(out);
      std::fprintf(stderr, "telemetry: %zu audit records -> %s\n", telemetry.audit.size(),
                   auditOut_.c_str());
    }
    if (!sloOut_.empty()) {
      std::ofstream out(sloOut_);
      telemetry.slo.writeJsonl(out);
      telemetry.protocols.writeJsonl(out);
      std::fprintf(stderr, "telemetry: %zu slo objectives, %zu breaches -> %s\n",
                   telemetry.slo.objectiveCount(), telemetry.slo.breachCount(), sloOut_.c_str());
    }
    if (!driftOut_.empty()) {
      std::ofstream out(driftOut_);
      telemetry.drift.writeJsonl(out);
      std::fprintf(stderr, "telemetry: %zu drift events -> %s\n",
                   telemetry.drift.driftEventCount(), driftOut_.c_str());
    }
    if (!flightOut_.empty()) {
      std::ofstream out(flightOut_);
      telemetry.flight.writeJsonl(out);
      std::fprintf(stderr, "telemetry: %zu flight dumps -> %s\n", telemetry.flight.dumpCount(),
                   flightOut_.c_str());
    }
  }

 private:
  static std::string envString(const char* name) {
    const char* value = std::getenv(name);
    return value != nullptr ? std::string(value) : std::string();
  }

  bool active_{false};
  bool flushed_{false};
  std::string traceOut_;
  std::string metricsOut_;
  std::string auditOut_;
  std::string sloOut_;
  std::string driftOut_;
  std::string flightOut_;
};

/// Applies the ROIA_INTEREST environment override to an FpsConfig:
///   euclidean  paper-default pairwise scan (no-op on a default config)
///   grid       incremental flat-grid interest via applyGridInterestProfile
/// Unset leaves the config untouched, so default runs stay byte-identical.
inline void applyInterestOverride(game::FpsConfig& config) {
  const char* value = std::getenv("ROIA_INTEREST");
  if (value == nullptr) return;
  const std::string policy(value);
  if (policy == "grid") {
    game::applyGridInterestProfile(config);
  } else if (policy == "euclidean") {
    config.interestPolicy = game::InterestPolicyKind::kEuclidean;
  } else {
    std::fprintf(stderr, "warning: ignoring ROIA_INTEREST='%s' (want euclidean|grid)\n", value);
  }
}

/// Applies the ROIA_REPLICATION environment override to a ServerConfig:
///   full   whole-snapshot state updates (no-op on a default config)
///   delta  baseline-aware delta codec with quantized motion fields
/// Unset leaves the config untouched, so default runs stay byte-identical.
inline void applyReplicationOverride(rtf::ServerConfig& config) {
  const char* value = std::getenv("ROIA_REPLICATION");
  if (value == nullptr) return;
  const std::string policy(value);
  if (policy == "delta") {
    config.replication.codec = rtf::ReplicationCodec::kDelta;
  } else if (policy == "full") {
    config.replication.codec = rtf::ReplicationCodec::kFull;
  } else {
    std::fprintf(stderr, "warning: ignoring ROIA_REPLICATION='%s' (want full|delta)\n", value);
  }
}

/// Full-strength calibration campaign (matches the paper: up to 300 bots on
/// two replicas of one zone, plus a migration sweep). Honors ROIA_INTEREST;
/// a grid-policy run is fitted with the adaptive plan so the flattened
/// t_ua/t_aoi shapes are discovered rather than forced quadratic.
inline game::CalibrationResult runCalibration(bool quick = false) {
  game::CalibrationConfig config;
  if (quick) {
    config.replicationPopulations = {50, 100, 150, 200, 250, 300};
    config.migrationPopulations = {60, 120, 180, 240};
  }
  applyInterestOverride(config.measurement.fps);
  applyReplicationOverride(config.measurement.server);
  const bool grid = config.measurement.fps.interestPolicy == game::InterestPolicyKind::kGrid;
  return game::calibrateModel(config,
                              grid ? model::FitPlan::adaptive() : model::FitPlan::paperDefault());
}

/// Bins scattered (x, y) samples by x and returns per-bin mean — the
/// "measured" series shown next to each fitted curve.
inline std::vector<std::pair<double, double>> binnedMeans(const SampleSeries& series,
                                                          double binWidth = 25.0) {
  std::map<long, StatAccumulator> bins;
  for (std::size_t i = 0; i < series.size(); ++i) {
    bins[static_cast<long>(series.x[i] / binWidth)].add(series.y[i]);
  }
  std::vector<std::pair<double, double>> out;
  out.reserve(bins.size());
  for (const auto& [bin, acc] : bins) {
    out.emplace_back((static_cast<double>(bin) + 0.5) * binWidth, acc.mean());
  }
  return out;
}

inline void printHeader(const std::string& title) {
  std::printf("\n==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================================\n");
}

inline void printParamTable(const char* name, const SampleSeries& samples,
                            const model::ParamFunction& fitted) {
  std::printf("\n# %s : %s fit, R^2 = %.4f (%zu samples)\n", name,
              model::formName(fitted.form), fitted.gof.r2, fitted.sampleCount);
  std::printf("#   coefficients (ascending powers):");
  for (const double c : fitted.coeffs) std::printf(" %.6g", c);
  std::printf("\n#   n    measured_us   fitted_us\n");
  for (const auto& [n, mean] : binnedMeans(samples)) {
    std::printf("  %6.0f   %10.4f  %10.4f\n", n, mean, fitted.eval(n));
  }
}

}  // namespace roia::benchharness
