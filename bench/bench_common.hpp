// Shared helpers for the figure-reproduction harnesses: a standard
// calibration run (the paper's section V-A campaign) and small table
// printers. Each harness prints the same series the corresponding paper
// figure plots, so the output can be piped straight into gnuplot.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "game/calibrate.hpp"
#include "model/tick_model.hpp"

namespace roia::benchharness {

/// Full-strength calibration campaign (matches the paper: up to 300 bots on
/// two replicas of one zone, plus a migration sweep).
inline game::CalibrationResult runCalibration(bool quick = false) {
  game::CalibrationConfig config;
  if (quick) {
    config.replicationPopulations = {50, 100, 150, 200, 250, 300};
    config.migrationPopulations = {60, 120, 180, 240};
  }
  return game::calibrateModel(config);
}

/// Bins scattered (x, y) samples by x and returns per-bin mean — the
/// "measured" series shown next to each fitted curve.
inline std::vector<std::pair<double, double>> binnedMeans(const SampleSeries& series,
                                                          double binWidth = 25.0) {
  std::map<long, StatAccumulator> bins;
  for (std::size_t i = 0; i < series.size(); ++i) {
    bins[static_cast<long>(series.x[i] / binWidth)].add(series.y[i]);
  }
  std::vector<std::pair<double, double>> out;
  out.reserve(bins.size());
  for (const auto& [bin, acc] : bins) {
    out.emplace_back((static_cast<double>(bin) + 0.5) * binWidth, acc.mean());
  }
  return out;
}

inline void printHeader(const std::string& title) {
  std::printf("\n==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================================\n");
}

inline void printParamTable(const char* name, const SampleSeries& samples,
                            const model::ParamFunction& fitted) {
  std::printf("\n# %s : %s fit, R^2 = %.4f (%zu samples)\n", name,
              model::formName(fitted.form), fitted.gof.r2, fitted.sampleCount);
  std::printf("#   coefficients (ascending powers):");
  for (const double c : fitted.coeffs) std::printf(" %.6g", c);
  std::printf("\n#   n    measured_us   fitted_us\n");
  for (const auto& [n, mean] : binnedMeans(samples)) {
    std::printf("  %6.0f   %10.4f  %10.4f\n", n, mean, fitted.eval(n));
  }
}

}  // namespace roia::benchharness
