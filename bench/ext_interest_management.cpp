// Extension experiment: interest-management algorithms and the model.
//
// RTFDemo uses the Euclidean Distance Algorithm; the paper cites Boulanger
// et al.'s comparison of IM algorithms. Here the same game is calibrated
// twice — once with the paper's Euclidean scan and once with the
// incremental flat-grid policy — and the scalability model is refitted for
// each. The experiment shows that the choice of IM algorithm changes the
// *form* of t_aoi (quadratic aggregate cost vs ~linear), and with it every
// threshold of the model: n_max(1), the 80 % trigger, and l_max. The grid
// leg is fitted with automatic AICc form selection so the flattened shape
// is discovered from the samples rather than assumed.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "fit/form_select.hpp"
#include "fit/gof.hpp"
#include "fit/levmar.hpp"
#include "fit/polyfit.hpp"
#include "game/calibrate.hpp"
#include "game/fps_app.hpp"
#include "model/estimator.hpp"
#include "model/report.hpp"

namespace {

using roia::SampleSeries;
using roia::StatAccumulator;

/// Mean y per exact population value (the sweep populations are discrete,
/// so no binning is needed).
std::map<double, double> meansByPopulation(const SampleSeries& series) {
  std::map<double, StatAccumulator> acc;
  for (std::size_t i = 0; i < series.size(); ++i) acc[series.x[i]].add(series.y[i]);
  std::map<double, double> out;
  for (const auto& [n, a] : acc) out[n] = a.mean();
  return out;
}

/// Aggregate per-tick AOI series: the samples are per-user microseconds, so
/// the whole-phase cost at population n is n * mean(t_aoi_per_user(n)).
roia::fit::PowerLawFit aggregatePowerLaw(const SampleSeries& perUser) {
  std::vector<double> x;
  std::vector<double> y;
  for (const auto& [n, mean] : meansByPopulation(perUser)) {
    x.push_back(n);
    y.push_back(n * mean);
  }
  return roia::fit::fitPowerLaw(x, y);
}

/// One row of the form-selection table: AICc of both candidate forms,
/// scored on the per-population means exactly like the adaptive estimator,
/// plus the form the calibration actually chose.
void printFormRow(const char* policy, const char* param, const SampleSeries& s,
                  const roia::model::ParamFunction& chosen) {
  namespace fit = roia::fit;
  std::vector<double> mx;
  std::vector<double> my;
  for (const auto& [n, mean] : meansByPopulation(s)) {
    mx.push_back(n);
    my.push_back(mean);
  }
  const std::vector<double> lin = fit::polyFit(s.x, s.y, 1);
  const std::vector<double> quad = fit::polyFit(s.x, s.y, 2);
  const double aiccLin =
      fit::aicc(fit::evaluateFit(fit::models::polynomial(1), mx, my, lin).sse, mx.size(), 2);
  const double aiccQuad =
      fit::aicc(fit::evaluateFit(fit::models::polynomial(2), mx, my, quad).sse, mx.size(), 3);
  std::printf("  %-10s %-6s %12.1f %12.1f   %s\n", policy, param, aiccLin, aiccQuad,
              roia::model::formName(chosen.form));
}

int check(const char* what, bool pass, double got) {
  std::printf("check: %-46s %s (%.2f)\n", what, pass ? "PASS" : "FAIL", got);
  return pass ? 0 : 1;
}

}  // namespace

int main() {
  roia::benchharness::TelemetryScope telemetryScope;
  using namespace roia;
  using benchharness::printHeader;

  printHeader("Extension — interest-management algorithms vs. the model");

  // Quick campaign shared by both legs: same populations, same seeds, only
  // the interest policy (and its charge profile) differs.
  game::CalibrationConfig campaign;
  campaign.replicationPopulations = {50, 100, 150, 200, 250, 300};
  campaign.migrationPopulations = {60, 120, 180, 240};

  // Euclidean baseline: the paper's fixed-form calibration, unchanged.
  const game::CalibrationResult euclid = game::calibrateModel(campaign);
  const model::TickModel euclidModel(euclid.parameters);
  const model::ThresholdReport euclidReport = model::buildReport(euclidModel, 40.0, 0.15);

  // Grid: identical campaign under the flat-grid profile; AICc picks the
  // functional form of t_ua / t_aoi from the data.
  game::CalibrationConfig gridCampaign = campaign;
  game::applyGridInterestProfile(gridCampaign.measurement.fps);
  const game::CalibrationResult grid =
      game::calibrateModel(gridCampaign, model::FitPlan::adaptive());
  const model::TickModel gridModel(grid.parameters);
  const model::ThresholdReport gridReport = model::buildReport(gridModel, 40.0, 0.15);

  const SampleSeries& euclidAoi = euclid.replicationSamples.series(rtf::Phase::kAoi);
  const SampleSeries& gridAoi = grid.replicationSamples.series(rtf::Phase::kAoi);
  const SampleSeries& euclidUa = euclid.replicationSamples.series(rtf::Phase::kUa);
  const SampleSeries& gridUa = grid.replicationSamples.series(rtf::Phase::kUa);

  std::printf("\n# per-user t_aoi (us), measured at steady state\n");
  std::printf("# n      euclidean      grid\n");
  const std::map<double, double> euclidMeans = meansByPopulation(euclidAoi);
  const std::map<double, double> gridMeans = meansByPopulation(gridAoi);
  for (const auto& [n, mean] : euclidMeans) {
    const auto g = gridMeans.find(n);
    std::printf("  %4.0f   %9.2f   %9.2f\n", n, mean, g != gridMeans.end() ? g->second : 0.0);
  }

  // Aggregate per-tick AOI cost, fitted as amplitude * n^exponent. The
  // Euclidean pairwise scan is ~n^2; the incremental grid should be ~n^1.
  const fit::PowerLawFit euclidPower = aggregatePowerLaw(euclidAoi);
  const fit::PowerLawFit gridPower = aggregatePowerLaw(gridAoi);
  std::printf("\n# aggregate t_aoi power law (whole phase per tick, y = a * n^e)\n");
  std::printf("# algorithm    exponent   amplitude     log-log R^2\n");
  std::printf("  euclidean    %8.3f   %9.4g   %13.4f\n", euclidPower.exponent,
              euclidPower.amplitude, euclidPower.r2);
  std::printf("  grid         %8.3f   %9.4g   %13.4f\n", gridPower.exponent, gridPower.amplitude,
              gridPower.r2);

  std::printf("\n# form selection (corrected AIC, lower is better; quadratic must win\n");
  std::printf("# by > 2 units). The euclidean leg pins the paper's forms; the grid\n");
  std::printf("# leg lets AICc choose.\n");
  std::printf("  %-10s %-6s %12s %12s   chosen\n", "algorithm", "param", "AICc(lin)",
              "AICc(quad)");
  printFormRow("euclidean", "t_ua", euclidUa, euclid.parameters.at(model::ParamKind::kUa));
  printFormRow("euclidean", "t_aoi", euclidAoi, euclid.parameters.at(model::ParamKind::kAoi));
  printFormRow("grid", "t_ua", gridUa, grid.parameters.at(model::ParamKind::kUa));
  printFormRow("grid", "t_aoi", gridAoi, grid.parameters.at(model::ParamKind::kAoi));

  printHeader("thresholds per IM algorithm (U = 40 ms, c = 0.15)");
  std::printf("\n# algorithm    n_max(1)   trigger(80%%)   l_max\n");
  std::printf("  euclidean    %7zu   %12zu   %5zu\n", euclidReport.nMaxPerReplica[0],
              euclidReport.replicationTriggers[0], euclidReport.lMax);
  std::printf("  grid         %7zu   %12zu   %5zu\n", gridReport.nMaxPerReplica[0],
              gridReport.replicationTriggers[0], gridReport.lMax);
  std::printf("\n# n_max(1) gain from switching IM algorithm: %.2fx\n",
              static_cast<double>(gridReport.nMaxPerReplica[0]) /
                  static_cast<double>(euclidReport.nMaxPerReplica[0]));

  std::printf("\n");
  int failures = 0;
  failures += check("euclidean n_max(1) == 239 (paper baseline)",
                    euclidReport.nMaxPerReplica[0] == 239,
                    static_cast<double>(euclidReport.nMaxPerReplica[0]));
  failures += check("euclidean aggregate t_aoi exponent >= 1.8",
                    euclidPower.valid() && euclidPower.exponent >= 1.8, euclidPower.exponent);
  failures += check("grid aggregate t_aoi exponent <= 1.2",
                    gridPower.valid() && gridPower.exponent <= 1.2, gridPower.exponent);
  failures += check("grid n_max(1) >= 478 (2x euclidean)", gridReport.nMaxPerReplica[0] >= 478,
                    static_cast<double>(gridReport.nMaxPerReplica[0]));

  std::printf(
      "\nexpected shape: the grid replaces the O(n) scan per user with a few cell\n"
      "lookups, so aggregate t_aoi flattens from ~n^2 to ~n^1, single-server\n"
      "capacity roughly triples, and the model recalibrates every threshold\n"
      "automatically — the point of keeping parameters application-measured.\n");
  return failures;
}
