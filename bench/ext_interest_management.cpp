// Extension experiment: interest-management algorithms and the model.
//
// RTFDemo uses the Euclidean Distance Algorithm; the paper cites Boulanger
// et al.'s comparison of IM algorithms. Here the same game runs with two
// algorithms — the paper's Euclidean scan and a uniform-grid spatial hash —
// and the scalability model is recalibrated for each. The experiment shows
// that the choice of IM algorithm changes the *form* of t_aoi and with it
// every threshold of the model: n_max(1), the 80 % trigger, and l_max.
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/sweep.hpp"
#include "game/interest.hpp"
#include "game/measurement.hpp"
#include "model/estimator.hpp"
#include "model/report.hpp"

int main() {
  roia::benchharness::TelemetryScope telemetryScope;
  using namespace roia;
  using benchharness::printHeader;

  printHeader("Extension — interest-management algorithms vs. the model");

  // Euclidean baseline: the standard calibration campaign.
  const game::CalibrationResult euclid = benchharness::runCalibration(true);
  const model::TickModel euclidModel(euclid.parameters);
  const model::ThresholdReport euclidReport = model::buildReport(euclidModel, 40.0, 0.15);

  // Grid: rerun the per-population probe collection with the grid policy by
  // measuring through a custom session (same sweep, same seeds).
  game::MeasurementConfig config;
  config.warmup = SimDuration::seconds(2);
  config.measure = SimDuration::seconds(3);

  std::printf("\n# per-user t_aoi (us), measured at steady state\n");
  std::printf("# n      euclidean      grid\n");

  // Each (n, policy) cell is its own cluster and seed: fan out the grid and
  // fold results back in the legacy (n-major, euclidean-first) order.
  struct Cell {
    std::size_t n;
    bool useGrid;
  };
  std::vector<Cell> cells;
  for (const std::size_t n : {50u, 100u, 150u, 200u, 250u, 300u}) {
    for (const bool useGrid : {false, true}) cells.push_back({n, useGrid});
  }
  const std::vector<double> perUserAoi = par::runSweep<double>(cells, [&](const Cell& cell) {
    game::FpsApplication app(config.fps);
    if (cell.useGrid) {
      app.setInterestPolicy(std::make_unique<game::GridInterest>(config.fps.aoiRadius));
    }
    rtf::Cluster cluster(app, rtf::ClusterConfig{config.server, {}, 1234 + cell.n});
    const ZoneId zone = cluster.createZone("arena", config.fps.arenaOrigin,
                                           config.fps.arenaExtent);
    const ServerId s1 = cluster.addServer(zone);
    const ServerId s2 = cluster.addServer(zone);
    for (std::size_t i = 0; i < cell.n; ++i) {
      cluster.connectClientTo(i % 2 == 0 ? s1 : s2,
                              std::make_unique<game::BotProvider>(config.bots));
    }
    cluster.run(config.warmup);
    StatAccumulator perUser;
    for (const ServerId id : cluster.serverIds()) {
      cluster.server(id).setProbeListener(
          [&perUser](const rtf::Server&, const rtf::TickProbes& probes) {
            if (probes.activeUsers > 0) {
              perUser.add(probes.phase(rtf::Phase::kAoi) /
                          static_cast<double>(probes.activeUsers));
            }
          });
    }
    cluster.run(config.measure);
    return perUser.mean();
  });

  SampleSeries gridAoi;
  SampleSeries euclidAoi;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    (cells[i].useGrid ? gridAoi : euclidAoi)
        .add(static_cast<double>(cells[i].n), perUserAoi[i]);
  }
  for (std::size_t i = 0; i < gridAoi.size(); ++i) {
    std::printf("  %4.0f   %9.2f   %9.2f\n", euclidAoi.x[i], euclidAoi.y[i], gridAoi.y[i]);
  }

  // Fit t_aoi for the grid variant and rebuild the thresholds with only
  // that parameter replaced (all other tasks are untouched by the policy).
  model::ParameterEstimator estimator;
  estimator.setSamples(model::ParamKind::kAoi, gridAoi);
  const model::ModelParameters gridFitOnly = estimator.fit();
  model::ModelParameters gridParams = euclid.parameters;
  gridParams.set(model::ParamKind::kAoi, gridFitOnly.at(model::ParamKind::kAoi));
  const model::TickModel gridModel(std::move(gridParams));
  const model::ThresholdReport gridReport = model::buildReport(gridModel, 40.0, 0.15);

  printHeader("thresholds per IM algorithm (U = 40 ms, c = 0.15)");
  std::printf("\n# algorithm    n_max(1)   trigger(80%%)   l_max\n");
  std::printf("  euclidean    %7zu   %12zu   %5zu\n", euclidReport.nMaxPerReplica[0],
              euclidReport.replicationTriggers[0], euclidReport.lMax);
  std::printf("  grid         %7zu   %12zu   %5zu\n", gridReport.nMaxPerReplica[0],
              gridReport.replicationTriggers[0], gridReport.lMax);
  std::printf(
      "\nexpected shape: the grid removes the O(n) scan per user, so per-user t_aoi is much\n"
      "flatter, single-server capacity rises substantially, and the model recalibrates all\n"
      "thresholds automatically — the point of keeping parameters application-measured.\n");
  return 0;
}
