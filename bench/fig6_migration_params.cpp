// Reproduces paper Fig. 6: "Model parameters for user migration in the
// RTFDemo application" — measured CPU time for initiating (t_mig_ini) and
// receiving (t_mig_rcv) one user migration against the user count, with the
// linear approximation functions fitted over the samples.
//
// Expected shape (paper): both grow almost linearly with the user count and
// initiating a migration is more expensive than receiving one.
#include "bench_common.hpp"
#include "model/estimator.hpp"

int main() {
  roia::benchharness::TelemetryScope telemetryScope;
  using namespace roia;
  using benchharness::printHeader;
  using benchharness::printParamTable;

  printHeader("Fig. 6 — model parameters for user migration (ping-pong between 2 replicas)");
  const game::CalibrationResult calibration = benchharness::runCalibration();
  const model::ModelParameters& params = calibration.parameters;

  printParamTable("t_mig_ini",
                  calibration.migrationSamples.series(rtf::Phase::kMigIni),
                  params.at(model::ParamKind::kMigIni));
  printParamTable("t_mig_rcv",
                  calibration.migrationSamples.series(rtf::Phase::kMigRcv),
                  params.at(model::ParamKind::kMigRcv));

  printHeader("shape summary");
  bool initiatingCostlier = true;
  std::printf("\n# n    t_mig_ini_us   t_mig_rcv_us   ini/rcv\n");
  for (double n = 50; n <= 300; n += 50) {
    const double ini = params.eval(model::ParamKind::kMigIni, n);
    const double rcv = params.eval(model::ParamKind::kMigRcv, n);
    std::printf("  %4.0f   %10.1f   %10.1f   %6.2f\n", n, ini, rcv, rcv > 0 ? ini / rcv : 0.0);
    initiatingCostlier = initiatingCostlier && ini > rcv;
  }
  std::printf("\ninitiating costlier than receiving at every n: %s (paper: yes)\n",
              initiatingCostlier ? "yes" : "NO");
  return 0;
}
