// Extension experiment: bandwidth analysis for the scalability model.
//
// The paper's related-work discussion (Kim et al. [10]) highlights the
// asymmetry between incoming and outgoing game-server traffic and states
// that bandwidth analysis is future work for the model. This harness
// delivers it: per-server ingress/egress rates are measured over a
// population sweep, fitted with the same pipeline as the CPU parameters,
// and inverted into a bandwidth-limited n_max — then compared against the
// CPU-limited n_max of Eq. (2) to show which resource binds first on a
// given link.
#include "bench_common.hpp"
#include "game/measurement.hpp"
#include "model/bandwidth.hpp"
#include "model/thresholds.hpp"

int main() {
  roia::benchharness::TelemetryScope telemetryScope;
  using namespace roia;
  using benchharness::printHeader;

  printHeader("Extension — per-server bandwidth model (paper future work + [10])");
  game::MeasurementConfig config;
  config.warmup = SimDuration::seconds(2);
  config.measure = SimDuration::seconds(3);

  const std::vector<std::size_t> populations{40, 80, 120, 160, 200, 240, 280};
  constexpr std::size_t kReplicas = 2;
  const std::vector<model::BandwidthSample> samples =
      game::measureBandwidthSweep(config, populations, kReplicas);

  std::printf("\n# n     ingress_KB_s   egress_KB_s   egress/ingress\n");
  for (const model::BandwidthSample& s : samples) {
    std::printf("  %4zu   %11.1f   %11.1f   %13.2f\n", s.users, s.ingressBytesPerSec / 1e3,
                s.egressBytesPerSec / 1e3,
                s.ingressBytesPerSec > 0 ? s.egressBytesPerSec / s.ingressBytesPerSec : 0.0);
  }

  const model::BandwidthModel bwModel = model::BandwidthModel::fit(samples);
  std::printf("\n%s", bwModel.describe().c_str());
  std::printf("asymmetry at n=280: %.2fx more egress than ingress "
              "(paper [10]: server egress dominates)\n",
              bwModel.asymmetry(280));

  printHeader("bandwidth-limited vs. CPU-limited capacity");
  const game::CalibrationResult calibration = benchharness::runCalibration(true);
  const model::TickModel tickModel(calibration.parameters);
  const std::size_t cpuNMax = model::nMax(tickModel, kReplicas, 0, 40000.0);

  std::printf("\n# link           n_max_bandwidth   n_max_cpu(l=2)   binding_resource\n");
  const struct {
    const char* name;
    double bytesPerSec;
  } links[] = {
      {"10 Mbit/s", 10e6 / 8},
      {"25 Mbit/s", 25e6 / 8},
      {"100 Mbit/s", 100e6 / 8},
      {"1 Gbit/s", 1e9 / 8},
  };
  for (const auto& link : links) {
    const std::size_t bwNMax = bwModel.nMaxForLink(link.bytesPerSec);
    std::printf("  %-14s %15zu   %14zu   %s\n", link.name, bwNMax, cpuNMax,
                bwNMax < cpuNMax ? "network" : "CPU");
  }
  std::printf(
      "\nexpected shape: on thin links the network binds long before the CPU; at data-center\n"
      "bandwidth the Eq. (2) CPU bound is the true capacity — matching the paper's implicit\n"
      "assumption that tick duration, not bandwidth, is the constraint on its testbed.\n");

  // Optional second leg (ROIA_REPLICATION=delta): repeat the sweep under the
  // baseline-aware delta codec and compare egress curves, per-user cost, and
  // the bandwidth-limited capacity against the full codec measured above.
  rtf::ServerConfig deltaServer = config.server;
  benchharness::applyReplicationOverride(deltaServer);
  if (deltaServer.replication.codec == rtf::ReplicationCodec::kDelta) {
    printHeader("delta codec — egress under baseline-aware replication");
    game::MeasurementConfig deltaConfig = config;
    deltaConfig.server = deltaServer;
    const std::vector<model::BandwidthSample> deltaSamples =
        game::measureBandwidthSweep(deltaConfig, populations, kReplicas);

    std::printf("\n# n     egress_full_KB_s   egress_delta_KB_s   reduction\n");
    for (std::size_t i = 0; i < deltaSamples.size(); ++i) {
      const double full = samples[i].egressBytesPerSec;
      const double delta = deltaSamples[i].egressBytesPerSec;
      std::printf("  %4zu   %16.1f   %17.1f   %8.2fx\n", deltaSamples[i].users, full / 1e3,
                  delta / 1e3, delta > 0 ? full / delta : 0.0);
    }

    const model::BandwidthModel deltaModel = model::BandwidthModel::fit(deltaSamples, "delta");
    std::printf("\n%s", deltaModel.describe().c_str());

    const model::BandwidthSample& fullTop = samples.back();
    const model::BandwidthSample& deltaTop = deltaSamples.back();
    std::printf("egress reduction at steady state (n=%zu): %.2fx\n", fullTop.users,
                deltaTop.egressBytesPerSec > 0
                    ? fullTop.egressBytesPerSec / deltaTop.egressBytesPerSec
                    : 0.0);

    std::printf("\n# codec   n_max@25Mbit/s   egress_B_per_user@n_max\n");
    constexpr double kLink = 25e6 / 8;
    const std::size_t fullNMax = bwModel.nMaxForLink(kLink);
    const std::size_t deltaNMax = deltaModel.nMaxForLink(kLink);
    std::printf("  full    %14zu   %23.1f\n", fullNMax,
                bwModel.egressBytesPerUser(static_cast<double>(fullNMax)));
    std::printf("  delta   %14zu   %23.1f\n", deltaNMax,
                deltaModel.egressBytesPerUser(static_cast<double>(deltaNMax)));
    std::printf("delta n_max gain at 25 Mbit/s: %.2fx\n",
                fullNMax > 0 ? static_cast<double>(deltaNMax) / static_cast<double>(fullNMax)
                             : 0.0);
  }
  return 0;
}
