// Extension experiment: which fitted coefficients actually drive the
// thresholds? Every coefficient of the calibrated model is perturbed by
// +/-10 % and n_max(1) / l_max recomputed — quantifying how much
// measurement error in each of the paper's parameters a provider can
// tolerate before the derived thresholds move.
#include "bench_common.hpp"
#include "model/sensitivity.hpp"

int main() {
  roia::benchharness::TelemetryScope telemetryScope;
  using namespace roia;
  using benchharness::printHeader;

  printHeader("Extension — sensitivity of the thresholds to fitted coefficients");
  const game::CalibrationResult calibration = benchharness::runCalibration(true);

  const model::SensitivityReport report =
      model::analyzeSensitivity(calibration.parameters, 40000.0, 0.15, 0.10);
  std::printf("\n%s", report.toString().c_str());

  printHeader("reading the ranking");
  const auto ranked = report.rankedByImpact();
  if (!ranked.empty()) {
    const auto& top = ranked.front();
    std::printf(
        "\nmost capacity-critical coefficient: %s[c%zu] — a 10%% fit error moves n_max(1)\n"
        "by %.1f%%. The per-user interest-management and input-processing terms dominate;\n"
        "the forwarded-input terms barely move n_max(1) but shift l_max, matching the\n"
        "model's structure: Eq. (2) is driven by the n/l active term, Eq. (3) by the\n"
        "shadow-overhead term.\n",
        model::paramName(top.kind), top.coeffIndex, top.nMaxDeltaPct);
  }
  return 0;
}
