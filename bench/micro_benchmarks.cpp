// google-benchmark microbenchmarks of the substrate hot paths: framing and
// serialization, the FPS application's AOI / attack scans, tick-model and
// threshold evaluation, and the fitting pipeline.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "fit/levmar.hpp"
#include "fit/polyfit.hpp"
#include "game/commands.hpp"
#include "game/fps_app.hpp"
#include "game/interest.hpp"
#include "game/state_update.hpp"
#include "model/thresholds.hpp"
#include "model/tick_model.hpp"
#include "rtf/messages.hpp"
#include "serialize/byte_buffer.hpp"
#include "serialize/message.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace roia;

void BM_FrameEncodeDecode(benchmark::State& state) {
  ser::Frame frame;
  frame.type = ser::MessageType::kStateUpdate;
  frame.payload.assign(static_cast<std::size_t>(state.range(0)), 0x5A);
  for (auto _ : state) {
    const auto bytes = ser::encodeFrame(frame);
    const ser::Frame decoded = ser::decodeFrame(bytes);
    benchmark::DoNotOptimize(decoded.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_FrameEncodeDecode)->Arg(64)->Arg(1024)->Arg(16384);

void BM_CommandBatchRoundTrip(benchmark::State& state) {
  game::CommandBatch batch;
  batch.move = game::MoveCommand{{0.7, -0.7}};
  batch.attack = game::AttackCommand{EntityId{123456}, {1, 0}};
  for (auto _ : state) {
    const auto bytes = game::encodeCommands(batch);
    const auto decoded = game::decodeCommands(bytes);
    benchmark::DoNotOptimize(&decoded);
  }
}
BENCHMARK(BM_CommandBatchRoundTrip);

void BM_StateUpdateEncode(benchmark::State& state) {
  game::StateUpdatePayload payload;
  payload.self = {EntityId{1}, 0, 0, 100};
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    payload.visible.push_back(
        {EntityId{static_cast<std::uint64_t>(i + 2)}, 1.0f, 2.0f, 100.0f});
  }
  for (auto _ : state) {
    std::vector<std::uint8_t> bytes;
    game::encodeStateUpdate(payload, bytes);
    benchmark::DoNotOptimize(bytes.data());
  }
}
BENCHMARK(BM_StateUpdateEncode)->Arg(16)->Arg(64)->Arg(256);

void BM_ReplicationMessage(benchmark::State& state) {
  rtf::EntityReplicationMsg msg;
  msg.serverTick = 1;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    rtf::EntitySnapshot snap;
    snap.id = EntityId{static_cast<std::uint64_t>(i)};
    snap.owner = ServerId{1};
    msg.entities.push_back(snap);
  }
  for (auto _ : state) {
    const auto frame = rtf::encode(msg);
    const auto decoded = rtf::decodeEntityReplication(frame);
    benchmark::DoNotOptimize(decoded.entities.data());
  }
}
BENCHMARK(BM_ReplicationMessage)->Arg(32)->Arg(128)->Arg(512);

/// World populated with n avatars clustered for maximum AOI work.
rtf::World denseWorld(std::size_t n) {
  rtf::World world(ZoneId{1});
  Rng rng(1);
  for (std::uint64_t id = 1; id <= n; ++id) {
    rtf::EntityRecord e;
    e.id = EntityId{id};
    e.kind = rtf::EntityKind::kAvatar;
    e.owner = ServerId{1};
    e.client = ClientId{id};
    e.position = {rng.uniform(400, 600), rng.uniform(400, 600)};
    world.upsert(e);
  }
  return world;
}

void BM_AreaOfInterest(benchmark::State& state) {
  game::FpsApplication app;
  rtf::World world = denseWorld(static_cast<std::size_t>(state.range(0)));
  sim::CpuCostModel cpu;
  rtf::CostMeter meter(cpu);
  const auto viewer = *world.find(EntityId{1});
  std::vector<std::uint32_t> visible;
  for (auto _ : state) {
    app.computeAreaOfInterest(world, viewer, meter, visible);
    benchmark::DoNotOptimize(visible.data());
  }
}
BENCHMARK(BM_AreaOfInterest)->Arg(50)->Arg(150)->Arg(300);

void BM_AttackResolution(benchmark::State& state) {
  game::FpsApplication app;
  rtf::World world = denseWorld(static_cast<std::size_t>(state.range(0)));
  sim::CpuCostModel cpu;
  rtf::CostMeter meter(cpu);
  Rng rng(2);
  struct NullSink : rtf::ForwardSink {
    void forwardInteraction(EntityId, EntityId, std::vector<std::uint8_t>) override {}
  } sink;
  const auto attacker = *world.find(EntityId{1});
  game::CommandBatch batch;
  batch.attack = game::AttackCommand{EntityId{2}, {1, 0}};
  const auto commands = game::encodeCommands(batch);
  for (auto _ : state) {
    app.applyUserInput(world, attacker, commands, meter, sink, rng);
  }
}
BENCHMARK(BM_AttackResolution)->Arg(50)->Arg(150)->Arg(300);

model::ModelParameters benchParameters() {
  model::ModelParameters params;
  params.set(model::ParamKind::kUaDser, model::ParamFunction::linear(1.0, 0.0015));
  params.set(model::ParamKind::kUa, model::ParamFunction::quadratic(1.2, 0.009, 1.2e-4));
  params.set(model::ParamKind::kAoi, model::ParamFunction::quadratic(0.1, 0.45, 0.8e-4));
  params.set(model::ParamKind::kSu, model::ParamFunction::linear(1.5, 0.2));
  params.set(model::ParamKind::kFaDser, model::ParamFunction::linear(0.55, 0.0007));
  params.set(model::ParamKind::kFa, model::ParamFunction::linear(0.9, 0.0023));
  params.set(model::ParamKind::kMigIni, model::ParamFunction::linear(150.0, 5.0));
  params.set(model::ParamKind::kMigRcv, model::ParamFunction::linear(80.0, 2.2));
  return params;
}

void BM_TickModelEval(benchmark::State& state) {
  const model::TickModel model(benchParameters());
  double n = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.tickMicros(4, n, 100, n / 4));
    n = n < 600 ? n + 1 : 50;
  }
}
BENCHMARK(BM_TickModelEval);

void BM_NMaxSearch(benchmark::State& state) {
  const model::TickModel model(benchParameters());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::nMax(model, 4, 0, 40000.0));
  }
}
BENCHMARK(BM_NMaxSearch);

void BM_LMaxDerivation(benchmark::State& state) {
  const model::TickModel model(benchParameters());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::lMax(model, 0, 40000.0, 0.15).lMax);
  }
}
BENCHMARK(BM_LMaxDerivation);

void BM_PolyFitQuadratic(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> x, y;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    const double xi = rng.uniform(10, 300);
    x.push_back(xi);
    y.push_back(1.0 + 0.01 * xi + 4e-4 * xi * xi + rng.normal(0, 0.5));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit::polyFit(x, y, 2));
  }
}
BENCHMARK(BM_PolyFitQuadratic)->Arg(256)->Arg(4096);

void BM_LevenbergMarquardt(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> x, y;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    const double xi = rng.uniform(10, 300);
    x.push_back(xi);
    y.push_back(1.0 + 0.01 * xi + 4e-4 * xi * xi + rng.normal(0, 0.5));
  }
  const auto model = fit::models::quadratic();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit::levenbergMarquardt(model, x, y, {0.0, 0.0, 0.0}));
  }
}
BENCHMARK(BM_LevenbergMarquardt)->Arg(256)->Arg(1024);

void BM_StateUpdateEncodeReuse(benchmark::State& state) {
  game::StateUpdatePayload payload;
  payload.self = {EntityId{1}, 0, 0, 100};
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    payload.visible.push_back(
        {EntityId{static_cast<std::uint64_t>(i + 2)}, 1.0f, 2.0f, 100.0f});
  }
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    game::encodeStateUpdate(payload, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_StateUpdateEncodeReuse)->Arg(16)->Arg(64)->Arg(256);

void BM_ByteWriterBulkAppend(benchmark::State& state) {
  const std::vector<std::uint8_t> chunk(static_cast<std::size_t>(state.range(0)), 0xA5);
  std::vector<std::uint8_t> reuse;
  for (auto _ : state) {
    ser::ByteWriter writer(std::move(reuse));
    writer.reserve(chunk.size() + 16);
    writer.writeU32(static_cast<std::uint32_t>(chunk.size()));
    writer.appendRaw(chunk.data(), chunk.size());
    reuse = std::move(writer).take();
    benchmark::DoNotOptimize(reuse.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ByteWriterBulkAppend)->Arg(64)->Arg(1024)->Arg(16384);

void BM_WorldForEach(benchmark::State& state) {
  const rtf::World world = denseWorld(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    double sum = 0.0;
    world.forEach([&sum](rtf::ConstEntityRef e) { sum += e.position.x; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WorldForEach)->Arg(50)->Arg(300)->Arg(1000);

void BM_WorldCensus(benchmark::State& state) {
  const rtf::World world = denseWorld(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const rtf::World::Census census = world.census(ServerId{1});
    benchmark::DoNotOptimize(census.totalAvatars);
  }
}
BENCHMARK(BM_WorldCensus)->Arg(50)->Arg(300)->Arg(1000);

void BM_WorldUpsertRemove(benchmark::State& state) {
  // Churn at the id tail — the common case (spawn new entities, despawn
  // recent ones) hits the append/pop fast path of the slot vector.
  rtf::World world = denseWorld(static_cast<std::size_t>(state.range(0)));
  const std::uint64_t base = static_cast<std::uint64_t>(state.range(0)) + 1;
  for (auto _ : state) {
    rtf::EntityRecord e;
    e.id = EntityId{base};
    e.kind = rtf::EntityKind::kAvatar;
    e.owner = ServerId{1};
    world.upsert(e);
    world.remove(EntityId{base});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorldUpsertRemove)->Arg(50)->Arg(300)->Arg(1000);

void BM_GridInterestQuery(benchmark::State& state) {
  rtf::World world = denseWorld(static_cast<std::size_t>(state.range(0)));
  game::GridInterest grid(60.0);
  sim::CpuCostModel cpu;
  rtf::CostMeter meter(cpu);
  grid.prepare(world, meter);  // measure queries against a built index
  const auto viewer = *world.find(EntityId{1});
  std::vector<std::uint32_t> out;
  for (auto _ : state) {
    grid.query(world, viewer, 60.0, meter, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_GridInterestQuery)->Arg(50)->Arg(150)->Arg(300);

/// World spread uniformly over the whole 1000x1000 arena: the regime the
/// flat grid targets. (denseWorld's 200x200 blob collapses into a handful
/// of cells and measures nothing but the dense-cell scan.)
rtf::World spreadWorld(std::size_t n) {
  rtf::World world(ZoneId{1});
  Rng rng(6);
  for (std::uint64_t id = 1; id <= n; ++id) {
    rtf::EntityRecord e;
    e.id = EntityId{id};
    e.kind = rtf::EntityKind::kAvatar;
    e.owner = ServerId{1};
    e.client = ClientId{id};
    e.position = {rng.uniform(0, 1000), rng.uniform(0, 1000)};
    world.upsert(e);
  }
  return world;
}

// The BM_AoiQuerySpread pair is the CI speedup gate for this optimization:
// perf_report.py compares grid against euclidean at n=300 and fails the
// build if the real (wall-clock) ratio drops below its floor.
void BM_AoiQuerySpreadEuclid(benchmark::State& state) {
  rtf::World world = spreadWorld(static_cast<std::size_t>(state.range(0)));
  game::EuclideanInterest euclid;
  sim::CpuCostModel cpu;
  rtf::CostMeter meter(cpu);
  const auto viewer = *world.find(EntityId{1});
  std::vector<std::uint32_t> out;
  for (auto _ : state) {
    euclid.query(world, viewer, 110.0, meter, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AoiQuerySpreadEuclid)->Arg(50)->Arg(300);

void BM_AoiQuerySpreadGrid(benchmark::State& state) {
  rtf::World world = spreadWorld(static_cast<std::size_t>(state.range(0)));
  game::GridInterest grid(110.0);
  sim::CpuCostModel cpu;
  rtf::CostMeter meter(cpu);
  grid.prepare(world, meter);
  const auto viewer = *world.find(EntityId{1});
  std::vector<std::uint32_t> out;
  for (auto _ : state) {
    grid.query(world, viewer, 110.0, meter, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AoiQuerySpreadGrid)->Arg(50)->Arg(300);

void BM_EventQueueScheduleDrain(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue queue;
    for (int i = 0; i < 1000; ++i) {
      queue.schedule(SimTime{(i * 37) % 997}, [] {});
    }
    SimTime at;
    while (!queue.empty()) {
      queue.pop(at)();
    }
    benchmark::DoNotOptimize(at);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleDrain);

}  // namespace

BENCHMARK_MAIN();
