// Reproduces paper Fig. 8: "Dynamic load balancing of the RTFDemo
// application for a changing number of users" — a full RTF-RMS-managed
// session where the bot population ramps 0 -> 300 -> 0. The harness prints
// the same two series the figure plots (connected users and average CPU
// load of the servers currently leased), plus the replica count.
//
// Paper claims to check in the output:
//  * each replication enactment visibly reduces the average CPU load,
//  * the CPU load stays below 100 % by design (the 80 % trigger leaves
//    headroom for migration overhead and late joiners),
//  * the tick duration never exceeds 40 ms (no QoS violation).
#include "bench_common.hpp"
#include "rms/session.hpp"

int main() {
  roia::benchharness::TelemetryScope telemetryScope;
  using namespace roia;
  using benchharness::printHeader;

  printHeader("Fig. 8 — dynamic load balancing of a session with changing user count");
  std::printf("calibrating the scalability model first (paper section V-A)...\n");
  const game::CalibrationResult calibration = benchharness::runCalibration(true);
  const model::TickModel tickModel(calibration.parameters);

  rms::ManagedSessionConfig config;
  config.scenario = game::WorkloadScenario::paperSession(
      300, SimDuration::seconds(60), SimDuration::seconds(30), SimDuration::seconds(60));
  config.rms.controlPeriod = SimDuration::seconds(1);
  config.rms.serverStartupDelay = SimDuration::seconds(2);
  const rms::SessionSummary summary = rms::runManagedSession(config, tickModel);

  std::printf("\n# time_s   users   servers(+starting)   avg_cpu_load   max_tick_ms   migrations\n");
  for (std::size_t i = 0; i < summary.timeline.size(); i += 3) {
    const rms::TimelinePoint& p = summary.timeline[i];
    std::printf("  %6.0f   %5zu   %7zu(+%zu)   %12.2f   %11.2f   %10zu\n", p.timeSec, p.users,
                p.servers, p.pendingServers, p.avgCpuLoad, p.maxTickMs, p.migrationsOrdered);
  }

  printHeader("session summary (paper's Fig. 8 claims)");
  std::printf("peak users:                  %zu\n", summary.peakUsers);
  std::printf("peak servers:                %zu\n", summary.peakServers);
  std::printf("replicas added / removed:    %llu / %llu\n",
              static_cast<unsigned long long>(summary.replicasAdded),
              static_cast<unsigned long long>(summary.replicasRemoved));
  std::printf("migrations performed:        %llu\n",
              static_cast<unsigned long long>(summary.migrations));
  std::printf("max tick duration:           %.2f ms  (paper: never exceeded 40 ms -> %s)\n",
              summary.maxTickMs, summary.maxTickMs <= 40.0 ? "HOLDS" : "VIOLATED");
  std::printf("control periods in violation: %zu of %zu\n", summary.violationPeriods,
              summary.timeline.size());
  std::printf("server-seconds leased:       %.0f\n", summary.serverSeconds);
  std::printf("resource cost (flavor units): %.3f\n", summary.resourceCost);
  std::printf("client update rate:          avg %.1f Hz, min %.1f Hz (target: >= 25 Hz)\n",
              summary.clientUpdateRateAvgHz, summary.clientUpdateRateMinHz);
  std::printf("worst client update gap:     %.1f ms\n", summary.clientWorstGapMs);

  // CPU-load drop at each enactment, the visual signature of Fig. 8.
  printHeader("replication enactments and their CPU-load effect");
  const auto& timeline = summary.timeline;
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    if (timeline[i].servers > timeline[i - 1].servers) {
      const double before = timeline[i - 1].avgCpuLoad;
      const double after = (i + 3 < timeline.size()) ? timeline[i + 3].avgCpuLoad : before;
      std::printf("t = %4.0f s: %zu -> %zu servers, avg CPU %.2f -> %.2f (%s)\n",
                  timeline[i].timeSec, timeline[i - 1].servers, timeline[i].servers, before,
                  after, after < before ? "load reduced" : "no drop");
    }
  }
  return 0;
}
