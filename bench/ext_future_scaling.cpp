// Extension experiment: the paper's stated future work — "extend the
// evaluation of our scalability model using heavier user workloads, as well
// as modern server hardware and Cloud resources".
//
// Four configurations are calibrated and compared end-to-end:
//   baseline        — the paper's bot workload on reference servers,
//   heavy workload  — far more aggressive bots (higher attack rates),
//   modern hardware — 4x-speed servers (one decade of single-core gains),
//   heavy + modern  — both.
// For each: the fitted single-server capacity, l_max, and a managed session
// verifying the thresholds still hold under RTF-RMS.
#include <vector>

#include "bench_common.hpp"
#include "common/sweep.hpp"
#include "model/report.hpp"
#include "rms/session.hpp"

namespace {

struct Variant {
  const char* name;
  roia::game::BotConfig bots;
  double speedFactor;
};

}  // namespace

int main() {
  roia::benchharness::TelemetryScope telemetryScope;
  using namespace roia;
  using benchharness::printHeader;

  printHeader("Extension — heavier workloads and modern hardware (paper future work)");

  game::BotConfig heavyBots;
  heavyBots.attackBaseProbability = 0.3;
  heavyBots.attackPerVisibleProbability = 0.02;
  heavyBots.attackProbabilityCap = 0.95;

  const Variant variants[] = {
      {"baseline", game::BotConfig{}, 1.0},
      {"heavy workload", heavyBots, 1.0},
      {"modern hardware (4x)", game::BotConfig{}, 4.0},
      {"heavy + modern", heavyBots, 4.0},
  };

  // One job per variant: calibrate, derive thresholds, drive the managed
  // session. Jobs are independent end-to-end, so fan out and print in the
  // declaration order afterwards.
  struct VariantResult {
    model::ThresholdReport report;
    rms::SessionSummary summary;
  };
  const std::vector<VariantResult> results = par::runSweep<VariantResult>(
      std::size(variants), [&](std::size_t i) {
        const Variant& variant = variants[i];
        game::CalibrationConfig config;
        config.replicationPopulations = {50, 100, 150, 200, 250, 300};
        config.migrationPopulations = {80, 160, 240};
        config.measurement.bots = variant.bots;
        config.measurement.server.cpu.speedFactor = variant.speedFactor;
        const model::TickModel tickModel = game::calibrateTickModel(config);
        const model::ThresholdReport report = model::buildReport(tickModel, 40.0, 0.15);

        // Managed session at the variant's own scale: peak at ~90 % of the
        // 2-replica capacity so replication must engage.
        rms::ManagedSessionConfig sessionConfig;
        sessionConfig.bots = variant.bots;
        sessionConfig.server.cpu.speedFactor = variant.speedFactor;
        const std::size_t peak =
            std::max<std::size_t>(50, report.nMaxPerReplica.size() > 1
                                          ? report.nMaxPerReplica[1] * 9 / 10
                                          : report.nMaxPerReplica[0]);
        sessionConfig.scenario = game::WorkloadScenario::paperSession(
            peak, SimDuration::seconds(40), SimDuration::seconds(10), SimDuration::seconds(40));
        const rms::SessionSummary summary = rms::runManagedSession(sessionConfig, tickModel);
        return VariantResult{report, summary};
      });

  std::printf(
      "\n# variant                n_max(1)   trigger   l_max   session_max_tick_ms   violations\n");
  for (std::size_t i = 0; i < std::size(variants); ++i) {
    const model::ThresholdReport& report = results[i].report;
    const rms::SessionSummary& summary = results[i].summary;
    std::printf("  %-22s   %7zu   %7zu   %5zu   %19.2f   %10zu\n", variants[i].name,
                report.nMaxPerReplica[0], report.replicationTriggers[0], report.lMax,
                summary.maxTickMs, summary.violationPeriods);
  }

  std::printf(
      "\nexpected shape: heavier interactivity shrinks capacity (same user count, more\n"
      "attack processing). 4x hardware yields only ~2x users — the model predicts this\n"
      "sublinear scaling because the per-user cost itself grows with n (T ~ n * pu(n)),\n"
      "so a 4x tick budget buys far fewer than 4x users. The model recalibrates\n"
      "automatically in every configuration and the managed sessions hold 40 ms.\n");
  return 0;
}
