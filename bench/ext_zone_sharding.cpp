// Extension: zone sharding beyond the single-zone n_max.
//
// The paper's replication axis saturates at n_max(l_max): past that point a
// single zone cannot take more users at tick threshold U, no matter how many
// replicas it gets. Zoning is the way out (Fig. 1's second distribution
// axis): partition the world into Z zones, each with its own server group,
// and pay the inter-zone coordination cost (border shadows + deterministic
// handoffs) instead of the per-replica shadow cost.
//
// This sweep measures the total sustained population at U for Z = 1..4
// zones (Z x 1 grids of equal-size zones, so per-zone density is constant):
// for each Z it tries population fractions of Z * n_max(l) and reports the
// largest one whose steady-state worst-replica p95 tick stays below U. The
// expected result is a supported-user total that rises monotonically with Z
// past the single-zone n_max.
//
// Determinism: every session is seeded from its config; sessions fan out
// over the sweep pool (ROIA_BENCH_THREADS) and all output is printed after
// collection, so stdout is byte-identical across thread counts.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/sweep.hpp"
#include "model/thresholds.hpp"
#include "rms/sharded_session.hpp"

int main() {
  roia::benchharness::TelemetryScope telemetryScope;
  using namespace roia;
  using benchharness::printHeader;

  printHeader("zone sharding — total supported users vs. zone count");
  std::printf("calibrating the scalability model first (paper section V-A)...\n");
  const game::CalibrationResult calibration = benchharness::runCalibration(true);
  const model::TickModel tickModel(calibration.parameters);

  constexpr double kUpperTickMs = 40.0;
  constexpr std::size_t kReplicasPerZone = 2;
  const std::size_t nMaxPerZone =
      model::nMax(tickModel, kReplicasPerZone, 0, kUpperTickMs * 1000.0);
  std::printf("single-zone capacity n_max(l=%zu) = %zu users at U = %.0f ms\n", kReplicasPerZone,
              nMaxPerZone, kUpperTickMs);

  struct SweepConfig {
    std::size_t zones;
    double fraction;
    std::size_t users;
  };
  struct SweepResult {
    SweepConfig config;
    rms::ShardedSessionSummary summary;
  };

  const std::vector<double> fractions{0.55, 0.75, 0.95};
  std::vector<SweepConfig> configs;
  for (std::size_t zones = 1; zones <= 4; ++zones) {
    for (const double fraction : fractions) {
      const auto users = static_cast<std::size_t>(
          fraction * static_cast<double>(zones) * static_cast<double>(nMaxPerZone));
      configs.push_back(SweepConfig{zones, fraction, users});
    }
  }

  const std::vector<SweepResult> results =
      par::runSweep<SweepResult>(configs, [&](const SweepConfig& config) {
        rms::ShardedSessionConfig session;
        session.gridCols = config.zones;
        session.gridRows = 1;
        session.zoneExtent = Vec2{1000.0, 1000.0};
        session.replicasPerZone = kReplicasPerZone;
        session.borderWidth = session.fps.aoiRadius;  // full cross-border AOI
        session.users = config.users;
        session.warmup = SimDuration::seconds(3);
        session.duration = SimDuration::seconds(10);
        session.seed = 9000 + config.zones * 17 + config.users;
        return SweepResult{config, rms::runShardedSession(session)};
      });

  printHeader("steady-state tick per configuration");
  std::printf("# zones   users   p95_ms   avg_ms   handoffs   border_shadows   conserved\n");
  for (const SweepResult& r : results) {
    std::printf("  %5zu   %5zu   %6.2f   %6.2f   %8llu   %14llu   %9s\n", r.config.zones,
                r.summary.users, r.summary.steadyP95TickMs, r.summary.steadyAvgTickMs,
                static_cast<unsigned long long>(r.summary.handoffsReceived),
                static_cast<unsigned long long>(r.summary.borderShadows),
                r.summary.conserved() ? "yes" : "NO");
  }

  printHeader("total supported users vs. zone count");
  std::printf("# zones   sustained_users   vs_single_zone_n_max\n");
  std::size_t previous = 0;
  bool monotone = true;
  bool beyondSingleZone = false;
  for (std::size_t zones = 1; zones <= 4; ++zones) {
    std::size_t sustained = 0;
    for (const SweepResult& r : results) {
      if (r.config.zones != zones) continue;
      if (r.summary.steadyP95TickMs < kUpperTickMs && r.summary.conserved()) {
        sustained = std::max(sustained, r.summary.users);
      }
    }
    std::printf("  %5zu   %15zu   %s\n", zones, sustained,
                sustained > nMaxPerZone ? "beyond" : "within");
    if (sustained < previous) monotone = false;
    if (sustained > nMaxPerZone) beyondSingleZone = true;
    previous = sustained;
  }
  std::printf("\nsustained users monotone in zone count: %s\n", monotone ? "yes" : "NO");
  std::printf("scaling beyond the single-zone n_max:    %s\n", beyondSingleZone ? "yes" : "NO");

  // Per-zone prediction with the coordination term, for comparison: the
  // model extension (zoneTickMicros) prices each neighbor's border band.
  printHeader("model: per-zone tick with inter-zone coordination term");
  model::TickModel zoned = tickModel;
  model::CoordinationParams coordination;
  coordination.perNeighborMicros = 120.0;
  coordination.perBorderEntityMicros = 2.0;
  zoned.setCoordination(coordination);
  std::printf("# neighbors   borderShare   n_max_zoned(l=%zu)\n", kReplicasPerZone);
  for (const std::size_t neighbors : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
    for (const double borderShare : {0.0, 0.2, 0.4}) {
      const std::size_t n = model::nMaxZoned(zoned, kReplicasPerZone, 0, kUpperTickMs * 1000.0,
                                             neighbors, borderShare);
      std::printf("  %9zu   %11.2f   %12zu\n", neighbors, borderShare, n);
    }
  }
  return 0;
}
