// Chaos companion to Fig. 8: the same dynamic RTF-RMS-managed session (bot
// population ramping 0 -> 300 -> 0), but over a faulty network — uniform
// frame loss of 1-5% on every link plus one crash-failure of the
// most-loaded replica at the plateau peak. Reports QoS-violation periods
// against the clean run, along with the recovery record (detection latency,
// clients re-homed from replica-sync shadows, replacement enactment).
//
// Determinism: the fault injector is seeded from the session seed, so
// re-running this binary reproduces the exact same fault schedule, crash
// point and timeline, sample for sample.
#include <vector>

#include "bench_common.hpp"
#include "common/sweep.hpp"
#include "rms/session.hpp"

int main() {
  roia::benchharness::TelemetryScope telemetryScope;
  using namespace roia;
  using benchharness::printHeader;

  printHeader("chaos recovery — Fig. 8 dynamic session under loss + mid-session crash");
  std::printf("calibrating the scalability model first (paper section V-A)...\n");
  const game::CalibrationResult calibration = benchharness::runCalibration(true);
  const model::TickModel tickModel(calibration.parameters);

  auto makeConfig = [] {
    rms::ManagedSessionConfig config;
    config.scenario = game::WorkloadScenario::paperSession(
        300, SimDuration::seconds(60), SimDuration::seconds(30), SimDuration::seconds(60));
    config.rms.controlPeriod = SimDuration::seconds(1);
    config.rms.serverStartupDelay = SimDuration::seconds(2);
    // Same management plane in every run: monitoring over the (possibly
    // faulty) network and the heartbeat failure detector armed.
    config.rms.useNetworkMonitoring = true;
    config.rms.detectFailures = true;
    return config;
  };

  struct Run {
    double lossPct;
    rms::SessionSummary summary;
  };

  // One clean baseline plus three lossy runs, each with one crash at the
  // plateau peak (t = 75 s). The four sessions are independent, so fan out
  // across the sweep pool and keep the legacy (clean-first) order.
  const std::vector<double> lossLevels{0.0, 1.0, 3.0, 5.0};
  const std::vector<Run> runs = par::runSweep<Run>(lossLevels, [&](double lossPct) {
    rms::ManagedSessionConfig config = makeConfig();
    if (lossPct > 0.0) {
      rms::SessionFaultPlan plan;
      plan.link.dropProbability = lossPct / 100.0;
      plan.crashAt = SimDuration::seconds(75);
      config.faults = plan;
    }
    return Run{lossPct, rms::runManagedSession(config, tickModel)};
  });

  printHeader("QoS under faults vs. the clean run");
  std::printf("# run                violations/periods   max_tick_ms   crashes(det)   rehomed   lost   peak_srv\n");
  for (const Run& run : runs) {
    char name[32];
    if (run.lossPct == 0.0) {
      std::snprintf(name, sizeof name, "clean");
    } else {
      std::snprintf(name, sizeof name, "%.0f%% loss + crash", run.lossPct);
    }
    const rms::SessionSummary& s = run.summary;
    std::printf("  %-18s   %10zu/%-7zu   %11.2f   %6llu(%llu)   %7llu   %4llu   %8zu\n", name,
                s.violationPeriods, s.timeline.size(), s.maxTickMs,
                static_cast<unsigned long long>(s.crashesInjected),
                static_cast<unsigned long long>(s.crashesDetected),
                static_cast<unsigned long long>(s.clientsRehomed),
                static_cast<unsigned long long>(s.clientsLost), s.peakServers);
  }

  printHeader("recovery records (lossy runs)");
  for (const Run& run : runs) {
    if (run.summary.recoveries.empty()) continue;
    for (const rms::RecoveryRecord& r : run.summary.recoveries) {
      std::printf(
          "%.0f%% loss: server %llu declared dead at t = %.2f s; "
          "%zu clients re-homed (%zu from shadows, %zu lost), %zu NPCs adopted, "
          "replacement %s\n",
          run.lossPct, static_cast<unsigned long long>(r.server.value),
          r.detectedAt.asSeconds(), r.clientsRehomed, r.shadowsPromoted, r.clientsLost,
          r.npcsAdopted, r.replacementOrdered ? "enacted" : "NOT enacted (pool exhausted)");
    }
  }

  // The violation window around the crash, the interesting part of the
  // timeline: a recovery should show as a short dip, not a collapse.
  printHeader("timeline around the crash (5% loss run)");
  const rms::SessionSummary& worst = runs.back().summary;
  std::printf("# time_s   users   servers(+starting)   max_tick_ms   violation   crashes   rehomed\n");
  for (const rms::TimelinePoint& p : worst.timeline) {
    if (p.timeSec < 65.0 || p.timeSec > 95.0) continue;
    std::printf("  %6.0f   %5zu   %7zu(+%zu)   %11.2f   %9s   %7zu   %7zu\n", p.timeSec, p.users,
                p.servers, p.pendingServers, p.maxTickMs, p.violation ? "VIOLATION" : "-",
                p.crashesDetected, p.clientsRehomed);
  }
  return 0;
}
