#!/usr/bin/env python3
"""Folds the telemetry sidecars of one run into a single health report.

Consumes the files TelemetryScope writes (metrics JSONL, SLO+protocol
summary JSONL, audit JSONL, drift JSONL, flight JSONL, optionally the
Perfetto trace) and emits one Markdown document and/or one JSON object
answering "how healthy was this run":

  * per-protocol end-to-end latency percentiles and outcome counts,
  * SLO compliance and burn rates per (objective, key), breach totals,
  * audit event counts by action, with the slo_breach / model_drift
    records spelled out (objective, Eq.2 state, rationale),
  * per-server Eq.2/Eq.4 residual distributions (mean, CoV, quantiles),
  * flight-recorder dump inventory,
  * lint suppression debt (--lint-debt: the `suppression_debt` table from
    `roia_lint.py --format json`) — every in-source allow() with its rule,
    justification, age, and whether it still suppresses a live finding.

Stdlib only. Typical invocation (after a bench run with the ROIA_*_OUT
knobs set):

    python3 scripts/health_report.py --slo build/slo.jsonl \
        --audit build/audit.jsonl --drift build/drift.jsonl \
        --flight build/flight.jsonl --metrics build/metrics.jsonl \
        --out-md build/HEALTH.md --out-json build/HEALTH.json

Every input is optional; the report covers whatever was given. Exit 0 on
success (even an unhealthy run — the report is the product), 1 on unusable
input.
"""

import argparse
import json
import os
import sys
from collections import Counter


def load_jsonl(path):
    rows = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def split_slo_file(rows):
    """ROIA_SLO_OUT holds objective rows and protocol rows in one file."""
    objectives = [r for r in rows if "objective" in r]
    protocols = [r for r in rows if "protocol" in r]
    return objectives, protocols


def summarize_flight(rows):
    dumps = {}
    for row in rows:
        entry = dumps.setdefault(row["dump"], {
            "dump": row["dump"], "reason": row["reason"],
            "at_s": row["dump_t_s"], "frames": 0, "keys": set()})
        entry["frames"] += 1
        entry["keys"].add(row["key"])
    out = []
    for entry in sorted(dumps.values(), key=lambda e: e["dump"]):
        entry["keys"] = sorted(entry["keys"])
        out.append(entry)
    return out


def build_report(args):
    report = {"schema": "roia-health-report/1", "inputs": {}, "status": "OK"}

    protocols = []
    if args.slo:
        objectives, protocols = split_slo_file(load_jsonl(args.slo))
        report["inputs"]["slo"] = args.slo
        report["slo"] = objectives
        report["breach_total"] = sum(r["breaches"] for r in objectives)
    if args.metrics:
        report["inputs"]["metrics"] = args.metrics
        rows = load_jsonl(args.metrics)
        report["protocol_metrics"] = [
            r for r in rows if r.get("name", "").startswith("roia_protocol_")]
        report["metric_count"] = len(rows)
    if protocols:
        report["protocols"] = protocols
    if args.audit:
        report["inputs"]["audit"] = args.audit
        rows = load_jsonl(args.audit)
        report["audit_actions"] = dict(sorted(Counter(
            r.get("action", "?") for r in rows).items()))
        report["slo_breaches"] = [
            {"t_s": r["t_s"], "objective": r["threshold"].removeprefix("slo:"),
             "eq2_state": r.get("inputs", {}), "rationale": r.get("rationale", "")}
            for r in rows if r.get("action") == "slo_breach"]
        report["drift_audits"] = [
            {"t_s": r["t_s"], "eq2_state": r.get("inputs", {}),
             "rationale": r.get("rationale", "")}
            for r in rows if r.get("action") == "model_drift"]
    if args.drift:
        report["inputs"]["drift"] = args.drift
        report["drift"] = load_jsonl(args.drift)
    if args.flight:
        report["inputs"]["flight"] = args.flight
        report["flight_dumps"] = summarize_flight(load_jsonl(args.flight))
    if args.trace:
        report["inputs"]["trace"] = args.trace
        with open(args.trace, encoding="utf-8") as f:
            report["trace_event_count"] = len(json.load(f)["traceEvents"])
    if args.lint_debt:
        report["inputs"]["lint"] = args.lint_debt
        with open(args.lint_debt, encoding="utf-8") as f:
            lint = json.load(f)
        if lint.get("schema") != "roia-lint/1":
            raise KeyError(f"unexpected lint schema {lint.get('schema')!r}")
        report["lint_debt"] = lint.get("suppression_debt", [])
        report["lint_findings"] = len(lint.get("findings", []))

    if not report["inputs"]:
        return None
    breaches = report.get("breach_total", 0)
    drift_events = sum(r.get("drift_events", 0) for r in report.get("drift", []))
    stale_allows = sum(1 for r in report.get("lint_debt", []) if not r.get("live"))
    if (breaches or drift_events or report.get("flight_dumps")
            or report.get("lint_findings") or stale_allows):
        report["status"] = "ATTENTION"
    return report


def md_table(headers, rows):
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out) + "\n"


def render_markdown(report):
    lines = [f"# Run health report — status: {report['status']}", ""]
    lines.append("Inputs: " + ", ".join(
        f"{kind} `{os.path.basename(path)}`"
        for kind, path in report["inputs"].items()) + "\n")

    if "protocols" in report:
        lines.append("## Protocol end-to-end latency\n")
        lines.append(md_table(
            ["protocol", "count", "p50 ms", "p95 ms", "p99 ms",
             "completed", "superseded", "crashed", "deadline_expired", "open"],
            [[p["protocol"], p["count"], p["p50_ms"], p["p95_ms"], p["p99_ms"],
              p["outcomes"]["completed"], p["outcomes"]["superseded"],
              p["outcomes"]["crashed"], p["outcomes"]["deadline_expired"],
              p["open"]] for p in report["protocols"]]))

    if "slo" in report:
        lines.append(f"\n## SLO compliance — {report['breach_total']} breach(es)\n")
        lines.append(md_table(
            ["objective", "key", "bound", "threshold", "target", "samples",
             "compliance", "short burn", "long burn", "breaches"],
            [[r["objective"], r["key"], r["bound"], r["threshold"], r["target"],
              r["samples"], r["compliance"], r["short_burn"], r["long_burn"],
              r["breaches"]] for r in report["slo"]]))

    if "audit_actions" in report:
        lines.append("\n## Audit events by action\n")
        lines.append(md_table(["action", "count"],
                              sorted(report["audit_actions"].items())))
        if report.get("slo_breaches"):
            lines.append("\n### SLO breaches (objective + Eq.2 state at breach)\n")
            for b in report["slo_breaches"]:
                eq2 = b["eq2_state"]
                lines.append(
                    f"- t={b['t_s']}s **{b['objective']}** — "
                    f"n={eq2.get('n')}, m={eq2.get('m')}, l={eq2.get('l')}, "
                    f"predicted={eq2.get('tick_predicted_ms')}ms; {b['rationale']}")
        if report.get("drift_audits"):
            lines.append("\n### Model-drift events\n")
            for d in report["drift_audits"]:
                lines.append(f"- t={d['t_s']}s — {d['rationale']}")

    if "drift" in report:
        lines.append("\n## Eq.2/Eq.4 residuals per server\n")
        lines.append(md_table(
            ["key", "samples", "mean residual ms", "CoV", "|res| p50",
             "|res| p95", "|res| p99", "drift events"],
            [[r["key"], r["count"], r["mean_residual_ms"], r["cov"],
              r["abs_residual_p50_ms"], r["abs_residual_p95_ms"],
              r["abs_residual_p99_ms"], r["drift_events"]]
             for r in report["drift"]]))

    if "flight_dumps" in report:
        lines.append(f"\n## Flight-recorder dumps ({len(report['flight_dumps'])})\n")
        lines.append(md_table(
            ["dump", "reason", "at s", "frames", "keys"],
            [[d["dump"], d["reason"], d["at_s"], d["frames"],
              " ".join(d["keys"])] for d in report["flight_dumps"]]))

    if "protocol_metrics" in report:
        lines.append("\n## Protocol metric instruments\n")
        lines.append(md_table(
            ["name", "labels", "value/count"],
            [[m["name"],
              " ".join(f"{k}={v}" for k, v in sorted(m.get("labels", {}).items())),
              m.get("value", m.get("count", ""))]
             for m in report["protocol_metrics"]]))

    if "lint_debt" in report:
        debt = report["lint_debt"]
        stale = sum(1 for r in debt if not r.get("live"))
        lines.append(f"\n## Lint suppression debt — {len(debt)} allow(s), "
                     f"{stale} stale\n")
        if debt:
            lines.append(md_table(
                ["file", "line", "rules", "live", "age days", "justification"],
                [[r["file"], r["line"], " ".join(r["rules"]),
                  "yes" if r.get("live") else "**STALE**",
                  r["age_days"] if r.get("age_days") is not None else "?",
                  r.get("reason") or "-"] for r in debt]))
        else:
            lines.append("No in-source suppressions: the tree carries zero "
                         "lint debt.\n")

    if "trace_event_count" in report:
        lines.append(f"\nTrace: {report['trace_event_count']} events.\n")
    return "\n".join(lines) + "\n"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", help="metrics JSONL (ROIA_METRICS_OUT)")
    parser.add_argument("--slo", help="SLO + protocol JSONL (ROIA_SLO_OUT)")
    parser.add_argument("--audit", help="audit JSONL (ROIA_AUDIT_OUT)")
    parser.add_argument("--drift", help="drift JSONL (ROIA_DRIFT_OUT)")
    parser.add_argument("--flight", help="flight JSONL (ROIA_FLIGHT_OUT)")
    parser.add_argument("--trace", help="Perfetto trace JSON (ROIA_TRACE_OUT)")
    parser.add_argument("--lint-debt", metavar="LINT_JSON",
                        help="roia_lint.py --format json output; folds the "
                             "suppression-debt table into the report")
    parser.add_argument("--out-md", help="write the Markdown report here")
    parser.add_argument("--out-json", help="write the JSON report here")
    args = parser.parse_args()

    try:
        report = build_report(args)
    except (OSError, json.JSONDecodeError, KeyError) as err:
        print(f"ERROR: {type(err).__name__}: {err}", file=sys.stderr)
        return 1
    if report is None:
        parser.error("no inputs given (pass at least one of "
                     "--metrics/--slo/--audit/--drift/--flight/--trace)")

    markdown = render_markdown(report)
    if args.out_json:
        with open(args.out_json, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out_json}")
    if args.out_md:
        with open(args.out_md, "w", encoding="utf-8") as f:
            f.write(markdown)
        print(f"wrote {args.out_md}")
    if not args.out_md and not args.out_json:
        print(markdown, end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
