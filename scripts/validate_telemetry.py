#!/usr/bin/env python3
"""Lightweight schema checks for the telemetry sidecar files.

Validates, without any third-party dependency, the artifacts the bench
harnesses emit through bench_common.hpp's TelemetryScope:

  trace   Chrome/Perfetto trace-event JSON: a {"traceEvents": [...]} object,
          non-decreasing "ts", matched B/E span pairs per (pid, tid).
  slo     SLO + protocol summary JSONL (ROIA_SLO_OUT): objective rows carry
          objective/key/bound/compliance/breaches, protocol rows carry
          protocol/count/p50_ms/p95_ms/p99_ms/outcomes/open.
  drift   model-drift residual JSONL (ROIA_DRIFT_OUT): per-key residual
          moments, CoV and quantiles, all finite.
  flight  flight-recorder JSONL (ROIA_FLIGHT_OUT): frames grouped into
          dumps with non-decreasing tick per (dump, key).
  audit   RMS/server audit JSONL (ROIA_AUDIT_OUT): t_s/action/strategy/
          threshold/rationale on every record.

Usage:

    python3 scripts/validate_telemetry.py --trace build/trace.json \
        --slo build/slo.jsonl --drift build/drift.jsonl \
        --flight build/flight.jsonl --audit build/audit.jsonl

Missing-file and empty-file handling is strict: a named file must exist and
contain at least one record unless the flag is prefixed optional: (e.g.
`--flight optional:build/flight.jsonl` — a run with no breach legitimately
dumps nothing). Exit 0 clean, 1 on any violation.
"""

import argparse
import json
import math
import sys


class ValidationError(Exception):
    pass


def fail(path, message):
    raise ValidationError(f"{path}: {message}")


def load_jsonl(path):
    rows = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as err:
                fail(path, f"line {lineno}: invalid JSON ({err})")
            if not isinstance(row, dict):
                fail(path, f"line {lineno}: expected an object, got {type(row).__name__}")
            rows.append(row)
    return rows


def require_keys(path, row, keys, what):
    missing = [k for k in keys if k not in row]
    if missing:
        fail(path, f"{what} record missing key(s) {missing}: {row}")


def require_finite(path, row, keys, what):
    for k in keys:
        v = row.get(k)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or not math.isfinite(v):
            fail(path, f"{what} record field {k!r} is not a finite number: {v!r}")


def validate_trace(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(path, "top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(path, "traceEvents must be a non-empty array")
    ts = [e["ts"] for e in events if "ts" in e]
    if ts != sorted(ts):
        fail(path, "trace timestamps must be non-decreasing")
    opens = {}
    for e in events:
        if "ph" not in e:
            fail(path, f"event without a phase: {e}")
        lane = (e.get("pid"), e.get("tid"))
        if e["ph"] == "B":
            opens[lane] = opens.get(lane, 0) + 1
        elif e["ph"] == "E":
            opens[lane] = opens.get(lane, 0) - 1
            if opens[lane] < 0:
                fail(path, f"span end without begin on lane {lane}")
    unbalanced = {lane: n for lane, n in opens.items() if n != 0}
    if unbalanced:
        fail(path, f"unmatched B/E spans: {unbalanced}")
    return f"{len(events)} trace events"


def validate_slo(path):
    rows = load_jsonl(path)
    if not rows:
        fail(path, "no records")
    objectives = protocols = 0
    for row in rows:
        if "objective" in row:
            objectives += 1
            require_keys(path, row,
                         ("objective", "key", "threshold", "bound", "target",
                          "samples", "good", "compliance", "short_burn",
                          "long_burn", "breaches"), "SLO")
            if row["bound"] not in ("upper", "lower"):
                fail(path, f"SLO bound must be upper|lower: {row['bound']!r}")
            require_finite(path, row, ("threshold", "target", "compliance",
                                       "short_burn", "long_burn"), "SLO")
            if not 0.0 <= row["compliance"] <= 1.0:
                fail(path, f"compliance out of [0,1]: {row['compliance']}")
        elif "protocol" in row:
            protocols += 1
            require_keys(path, row, ("protocol", "count", "p50_ms", "p95_ms",
                                     "p99_ms", "outcomes", "open"), "protocol")
            require_finite(path, row, ("p50_ms", "p95_ms", "p99_ms"), "protocol")
            if not isinstance(row["outcomes"], dict):
                fail(path, f"protocol outcomes must be an object: {row}")
        else:
            fail(path, f"record is neither an SLO nor a protocol row: {row}")
    if objectives == 0:
        fail(path, "no SLO objective rows")
    return f"{objectives} SLO rows, {protocols} protocol rows"


def validate_drift(path):
    rows = load_jsonl(path)
    if not rows:
        fail(path, "no records")
    for row in rows:
        require_keys(path, row,
                     ("key", "count", "mean_residual_ms", "mean_measured_ms",
                      "cov", "abs_residual_p50_ms", "abs_residual_p95_ms",
                      "abs_residual_p99_ms", "window_mean_abs_rel_error",
                      "drift_events"), "drift")
        require_finite(path, row, ("mean_residual_ms", "mean_measured_ms",
                                   "cov", "abs_residual_p50_ms"), "drift")
        if row["count"] < 0 or row["drift_events"] < 0:
            fail(path, f"negative counters: {row}")
    return f"{len(rows)} drift rows"


def validate_flight(path):
    rows = load_jsonl(path)
    if not rows:
        fail(path, "no records")
    last_tick = {}
    for row in rows:
        require_keys(path, row, ("dump", "reason", "dump_t_s", "key", "tick",
                                 "t_s", "dur_ms", "users", "avatars", "npcs",
                                 "level", "event"), "flight")
        lane = (row["dump"], row["key"])
        if lane in last_tick and row["tick"] < last_tick[lane]:
            fail(path, f"ticks must be non-decreasing within a dump ring: {row}")
        last_tick[lane] = row["tick"]
    return f"{len(rows)} flight frames in {len({r['dump'] for r in rows})} dump(s)"


def validate_audit(path):
    rows = load_jsonl(path)
    if not rows:
        fail(path, "no records")
    for row in rows:
        require_keys(path, row, ("t_s", "action", "strategy", "threshold",
                                 "rationale"), "audit")
    return f"{len(rows)} audit records"


VALIDATORS = {
    "trace": validate_trace,
    "slo": validate_slo,
    "drift": validate_drift,
    "flight": validate_flight,
    "audit": validate_audit,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    for kind in VALIDATORS:
        parser.add_argument(f"--{kind}", action="append", default=[],
                            metavar="PATH",
                            help=f"{kind} file to validate "
                                 "(prefix optional: to allow a missing/empty file)")
    args = parser.parse_args()

    jobs = [(kind, path) for kind in VALIDATORS
            for path in getattr(args, kind)]
    if not jobs:
        parser.error("nothing to validate (pass --trace/--slo/--drift/--flight/--audit)")

    failures = 0
    for kind, path in jobs:
        optional = path.startswith("optional:")
        if optional:
            path = path[len("optional:"):]
        try:
            summary = VALIDATORS[kind](path)
        except FileNotFoundError:
            if optional:
                print(f"{path}: absent (optional {kind}) — skipped")
                continue
            print(f"FAIL {path}: file not found", file=sys.stderr)
            failures += 1
            continue
        except ValidationError as err:
            if optional and str(err).endswith("no records"):
                print(f"{path}: empty (optional {kind}) — skipped")
                continue
            print(f"FAIL {err}", file=sys.stderr)
            failures += 1
            continue
        print(f"{path}: {summary}: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
