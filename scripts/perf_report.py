#!/usr/bin/env python3
"""Perf regression report: BENCH_wallclock.json.

Collects two kinds of wall-clock evidence from a built tree:

 1. micro benchmarks — runs bench/micro_benchmarks with google-benchmark's
    JSON output and embeds the per-benchmark timings.
 2. sweep benchmarks — runs each multi-config figure/extension harness twice,
    with ROIA_BENCH_THREADS=1 (exact legacy serial behaviour) and with
    ROIA_BENCH_THREADS=N, records both wall-clock times and the speedup, and
    asserts the two runs produced byte-identical stdout (the determinism
    contract of the sweep engine).
 3. telemetry overhead (--obs-overhead BENCH...) — runs each named harness
    with all telemetry sidecars off and then on (every ROIA_*_OUT knob set),
    asserts the two runs produced byte-identical stdout (the zero-cost-
    observer contract), and records the wall-clock ratio into
    BENCH_obs_overhead.json. --max-overhead-ratio gates on it.
 4. interest-management report (--interest) — runs ext_interest_management,
    parses the per-policy t_aoi power-law exponents, model thresholds and
    check lines into BENCH_interest.json, and fails if any check failed.
    --require-aoi-speedup additionally gates on the AOI micro benchmarks:
    the grid query must beat the Euclidean scan by the given factor at
    n = 300 (BM_AoiQuerySpread*).
 5. bandwidth report (--bandwidth) — runs ext_bandwidth under
    ROIA_REPLICATION=delta at 1 and N threads, asserts byte-identical
    stdout, and parses the codec comparison (measured egress reduction,
    per-codec n_max and bytes-per-user on the 25 Mbit/s reference link)
    into BENCH_bandwidth.json. --require-bandwidth-reduction gates on the
    measured reduction and on delta beating full's bandwidth-limited n_max.

Only the Python standard library is used. Typical CI invocations:

    python3 scripts/perf_report.py --build-dir build --threads 4 \
        --out build/BENCH_wallclock.json --require-speedup 2.0
    python3 scripts/perf_report.py --build-dir build --skip-micro --sweeps \
        --obs-overhead fig8_dynamic_session ext_overload_degradation \
        --max-overhead-ratio 1.5
"""

import argparse
import json
import os
import re
import subprocess
import sys
import time

DEFAULT_SWEEPS = [
    "fig5_replication_scalability",
    "ext_npc_model",
    "chaos_recovery",
    "ext_zone_sharding",
    "ext_overload_degradation",
    "ext_interest_management",
]


class DeterminismError(RuntimeError):
    """A sweep produced different stdout at different thread counts."""


# Every environment knob bench_common.hpp's TelemetryScope reads; the "off"
# leg strips them all, the "on" leg sets every sidecar output.
OBS_ENV_KNOBS = (
    "ROIA_TRACE_OUT", "ROIA_METRICS_OUT", "ROIA_AUDIT_OUT", "ROIA_SLO_OUT",
    "ROIA_DRIFT_OUT", "ROIA_FLIGHT_OUT", "ROIA_TRACE_SAMPLE",
)


def run_obs_overhead(build_dir: str, bench: str, repetitions: int = 3) -> dict:
    """Telemetry-off vs telemetry-on wall clock for one harness.

    Both legs pin ROIA_BENCH_THREADS=1 so scheduling noise cannot masquerade
    as observer cost; best-of-N damps the remaining jitter. Byte-identical
    stdout across the two legs is the zero-cost-observer contract — a
    mismatch aborts the report the same way a sweep determinism break does.
    """
    binary = os.path.join(build_dir, "bench", bench)
    sidecar_dir = os.path.join(build_dir, f"obs_overhead_{bench}")
    os.makedirs(sidecar_dir, exist_ok=True)

    off_env = {k: v for k, v in os.environ.items() if k not in OBS_ENV_KNOBS}
    off_env["ROIA_BENCH_THREADS"] = "1"
    on_env = dict(off_env)
    on_env.update({
        "ROIA_TRACE_OUT": os.path.join(sidecar_dir, "trace.json"),
        "ROIA_METRICS_OUT": os.path.join(sidecar_dir, "metrics.jsonl"),
        "ROIA_AUDIT_OUT": os.path.join(sidecar_dir, "audit.jsonl"),
        "ROIA_SLO_OUT": os.path.join(sidecar_dir, "slo.jsonl"),
        "ROIA_DRIFT_OUT": os.path.join(sidecar_dir, "drift.jsonl"),
        "ROIA_FLIGHT_OUT": os.path.join(sidecar_dir, "flight.jsonl"),
    })

    def timed(env):
        best, out = None, None
        for _ in range(repetitions):
            start = time.monotonic()
            proc = subprocess.run([binary], check=True, env=env,
                                  stdout=subprocess.PIPE, stderr=subprocess.DEVNULL)
            elapsed = time.monotonic() - start
            if best is None or elapsed < best:
                best = elapsed
            out = proc.stdout
        return best, out

    off_s, off_out = timed(off_env)
    on_s, on_out = timed(on_env)
    if off_out != on_out:
        raise DeterminismError(
            f"{bench}: stdout differs with telemetry sidecars on vs off — "
            "the zero-cost-observer contract is broken")
    return {
        "bench": bench,
        "repetitions": repetitions,
        "telemetry_off_seconds": round(off_s, 3),
        "telemetry_on_seconds": round(on_s, 3),
        "overhead_ratio": round(on_s / off_s, 3) if off_s > 0 else None,
        "stdout_identical": True,
    }


def run_micro(build_dir: str) -> list:
    binary = os.path.join(build_dir, "bench", "micro_benchmarks")
    out_path = os.path.join(build_dir, "micro_benchmarks.json")
    subprocess.run(
        [binary, "--benchmark_format=json", f"--benchmark_out={out_path}",
         "--benchmark_out_format=json"],
        check=True, stdout=subprocess.DEVNULL)
    with open(out_path, encoding="utf-8") as f:
        report = json.load(f)
    return [
        {
            "name": b["name"],
            "real_time": b["real_time"],
            "cpu_time": b["cpu_time"],
            "time_unit": b["time_unit"],
            "iterations": b["iterations"],
        }
        for b in report.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    ]


def run_interest(build_dir: str) -> dict:
    """BENCH_interest.json: per-IM-algorithm scaling facts.

    Runs ext_interest_management once and parses its tables: the aggregate
    t_aoi power-law fit (exponent/amplitude/R^2), the per-policy model
    thresholds (n_max(1), 80 % trigger, l_max) and the harness's own
    check lines. A failing check makes the harness exit nonzero, which
    fails the report too.
    """
    binary = os.path.join(build_dir, "bench", "ext_interest_management")
    env = dict(os.environ, ROIA_BENCH_THREADS="1")
    proc = subprocess.run([binary], env=env, stdout=subprocess.PIPE,
                          stderr=subprocess.DEVNULL)
    out = proc.stdout.decode()

    policies = {}
    section = None
    checks = []
    for line in out.splitlines():
        stripped = line.strip()
        if stripped.startswith("#"):
            # Section anchors; any other comment line (e.g. the form-selection
            # table, whose rows also lead with a policy name) ends the section.
            if stripped.startswith("# algorithm") and "exponent" in stripped:
                section = "power"
            elif stripped.startswith("# algorithm") and "n_max(1)" in stripped:
                section = "thresholds"
            else:
                section = None
            continue
        if stripped.startswith("check:"):
            # "check: <description>  PASS|FAIL (<value>)"
            section = None
            body = stripped[len("check:"):].strip()
            passed = " PASS (" in body
            verdict = " PASS (" if passed else " FAIL ("
            checks.append({"check": body.split(verdict)[0].strip(), "passed": passed})
            continue
        fields = stripped.split()
        if section and len(fields) >= 4 and fields[0] in ("euclidean", "grid"):
            entry = policies.setdefault(fields[0], {})
            if section == "power":
                entry["aoi_exponent"] = float(fields[1])
                entry["aoi_amplitude"] = float(fields[2])
                entry["aoi_loglog_r2"] = float(fields[3])
            else:
                entry["n_max_1"] = int(fields[1])
                entry["trigger_80pct"] = int(fields[2])
                entry["l_max"] = int(fields[3])
    return {
        "schema": "roia-bench-interest/1",
        "exit_code": proc.returncode,
        "policies": policies,
        "checks": checks,
    }


def run_bandwidth(build_dir: str, threads: int) -> dict:
    """BENCH_bandwidth.json: delta-codec egress facts.

    Runs ext_bandwidth with ROIA_REPLICATION=delta at 1 and N worker
    threads, asserts byte-identical stdout (the delta leg rides the same
    sweep engine, so it inherits the determinism contract), and parses the
    codec-comparison section: the measured egress reduction at the top
    population and each codec's bandwidth-limited capacity on the
    25 Mbit/s reference link.
    """
    binary = os.path.join(build_dir, "bench", "ext_bandwidth")

    def run(thread_count: int) -> bytes:
        env = dict(os.environ, ROIA_BENCH_THREADS=str(thread_count),
                   ROIA_REPLICATION="delta")
        proc = subprocess.run([binary], check=True, env=env,
                              stdout=subprocess.PIPE, stderr=subprocess.DEVNULL)
        return proc.stdout

    serial_out = run(1)
    identical = None
    if threads > 1:
        if serial_out != run(threads):
            raise DeterminismError(
                "ext_bandwidth: stdout differs between ROIA_BENCH_THREADS=1 "
                f"and ={threads} under ROIA_REPLICATION=delta — the delta "
                "codec broke per-config determinism")
        identical = True

    reduction, top_n, nmax_gain = None, None, None
    codecs = {}
    for line in serial_out.decode().splitlines():
        stripped = line.strip()
        match = re.match(
            r"egress reduction at steady state \(n=(\d+)\): ([0-9.]+)x", stripped)
        if match:
            top_n, reduction = int(match.group(1)), float(match.group(2))
            continue
        match = re.match(r"(full|delta)\s+(\d+)\s+([0-9.]+)$", stripped)
        if match:
            codecs[match.group(1)] = {
                "n_max_25mbit": int(match.group(2)),
                "egress_bytes_per_user_at_n_max": float(match.group(3)),
            }
            continue
        match = re.match(r"delta n_max gain at 25 Mbit/s: ([0-9.]+)x", stripped)
        if match:
            nmax_gain = float(match.group(1))
    return {
        "schema": "roia-bench-bandwidth/1",
        "threads": threads,
        "stdout_identical": identical,
        "egress_reduction": reduction,
        "egress_reduction_at_n": top_n,
        "n_max_gain_25mbit": nmax_gain,
        "codecs": codecs,
    }


def run_sweep(build_dir: str, bench: str, threads: int) -> dict:
    binary = os.path.join(build_dir, "bench", bench)

    def timed(thread_count: int):
        env = dict(os.environ, ROIA_BENCH_THREADS=str(thread_count))
        start = time.monotonic()
        proc = subprocess.run([binary], check=True, env=env,
                              stdout=subprocess.PIPE, stderr=subprocess.DEVNULL)
        return time.monotonic() - start, proc.stdout

    serial_s, serial_out = timed(1)
    if threads <= 1:
        # Serial-only environment (single-core runner or --threads 1): the
        # 1-vs-N comparison degenerates, so record the serial timing only.
        # There is no speedup row in this mode; downstream consumers must
        # treat `speedup: null` as "not measured", not as a regression.
        return {
            "bench": bench,
            "threads": 1,
            "serial_seconds": round(serial_s, 3),
            "parallel_seconds": None,
            "speedup": None,
            "stdout_identical": None,
        }
    parallel_s, parallel_out = timed(threads)
    if serial_out != parallel_out:
        raise DeterminismError(
            f"{bench}: stdout differs between ROIA_BENCH_THREADS=1 and "
            f"={threads} — the sweep engine broke per-config determinism")
    return {
        "bench": bench,
        "threads": threads,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
        "stdout_identical": True,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--threads", type=int, default=4,
                        help="worker count for the parallel sweep runs")
    parser.add_argument("--out", default=None,
                        help="output path (default: <build-dir>/BENCH_wallclock.json)")
    parser.add_argument("--sweeps", nargs="*", default=DEFAULT_SWEEPS,
                        help="sweep bench binaries to compare at 1 vs N threads")
    parser.add_argument("--skip-micro", action="store_true")
    parser.add_argument("--require-speedup", type=float, default=None,
                        help="fail unless at least one sweep reaches this speedup")
    parser.add_argument("--obs-overhead", nargs="*", default=[],
                        help="harnesses to time with telemetry off vs on")
    parser.add_argument("--obs-overhead-out", default=None,
                        help="overhead report path "
                             "(default: <build-dir>/BENCH_obs_overhead.json)")
    parser.add_argument("--max-overhead-ratio", type=float, default=None,
                        help="fail if any telemetry-on/off ratio exceeds this")
    parser.add_argument("--interest", action="store_true",
                        help="run ext_interest_management and write the "
                             "per-IM-algorithm report")
    parser.add_argument("--interest-out", default=None,
                        help="interest report path "
                             "(default: <build-dir>/BENCH_interest.json)")
    parser.add_argument("--require-aoi-speedup", type=float, default=None,
                        help="fail unless the grid AOI micro benchmark beats the "
                             "Euclidean one by this factor at n=300")
    parser.add_argument("--bandwidth", action="store_true",
                        help="run ext_bandwidth under ROIA_REPLICATION=delta and "
                             "write the codec-comparison report")
    parser.add_argument("--bandwidth-out", default=None,
                        help="bandwidth report path "
                             "(default: <build-dir>/BENCH_bandwidth.json)")
    parser.add_argument("--require-bandwidth-reduction", type=float, default=None,
                        help="fail unless the delta codec reaches this egress "
                             "reduction and a higher n_max than full")
    args = parser.parse_args()

    # A hostile --threads value (0, negative) means "serial only", never a
    # divide-by-zero or an empty thread pool.
    if args.threads < 1:
        print(f"NOTE: --threads {args.threads} clamped to 1 (serial-only run)",
              file=sys.stderr)
        args.threads = 1
    cpu_count = os.cpu_count() or 1
    if args.threads > 1 and cpu_count < 2:
        print(f"NOTE: only {cpu_count} CPU available; forcing serial-only run",
              file=sys.stderr)
        args.threads = 1

    # Validate every binary up front: a missing benchmark must produce a
    # clean one-line error and a nonzero exit, never a traceback or a
    # partially-written report.
    needed = [] if args.skip_micro else [os.path.join(args.build_dir, "bench", "micro_benchmarks")]
    needed += [os.path.join(args.build_dir, "bench", bench)
               for bench in list(args.sweeps) + list(args.obs_overhead)]
    if args.interest:
        needed.append(os.path.join(args.build_dir, "bench", "ext_interest_management"))
    if args.bandwidth:
        needed.append(os.path.join(args.build_dir, "bench", "ext_bandwidth"))
    missing = [path for path in needed if not os.path.isfile(path)]
    if missing:
        for path in missing:
            print(f"ERROR: benchmark binary not found: {path}", file=sys.stderr)
        print("ERROR: build the bench targets first (cmake --build <build-dir>)",
              file=sys.stderr)
        return 1

    out_path = args.out or os.path.join(args.build_dir, "BENCH_wallclock.json")
    report = {
        "schema": "roia-bench-wallclock/1",
        "threads": args.threads,
        "cpu_count": os.cpu_count(),
        "micro": [] if args.skip_micro else run_micro(args.build_dir),
        "sweeps": [],
    }

    for bench in args.sweeps:
        try:
            result = run_sweep(args.build_dir, bench, args.threads)
        except DeterminismError as err:
            # No report is written: a byte-compare failure means the numbers
            # are untrustworthy, and a partial JSON would look like success
            # to downstream tooling.
            print(f"ERROR: {err}", file=sys.stderr)
            return 1
        report["sweeps"].append(result)
        if result["speedup"] is None:
            print(f"{bench}: serial {result['serial_seconds']}s (serial-only run)")
        else:
            print(f"{bench}: serial {result['serial_seconds']}s, "
                  f"{args.threads} threads {result['parallel_seconds']}s "
                  f"-> {result['speedup']}x (stdout identical)")

    # Atomic write: downstream tooling never observes a half-written report.
    # An overhead-only invocation (--skip-micro --sweeps) leaves any existing
    # wall-clock report untouched instead of overwriting it with an empty one.
    if not args.skip_micro or args.sweeps:
        tmp_path = out_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
        os.replace(tmp_path, out_path)
        print(f"wrote {out_path} ({len(report['micro'])} micro benchmarks, "
              f"{len(report['sweeps'])} sweeps)")

    if args.obs_overhead:
        overhead_report = {
            "schema": "roia-bench-obs-overhead/1",
            "cpu_count": os.cpu_count(),
            "benches": [],
        }
        for bench in args.obs_overhead:
            try:
                result = run_obs_overhead(args.build_dir, bench)
            except DeterminismError as err:
                print(f"ERROR: {err}", file=sys.stderr)
                return 1
            overhead_report["benches"].append(result)
            print(f"{bench}: telemetry off {result['telemetry_off_seconds']}s, "
                  f"on {result['telemetry_on_seconds']}s "
                  f"-> {result['overhead_ratio']}x (stdout identical)")
        overhead_path = args.obs_overhead_out or os.path.join(
            args.build_dir, "BENCH_obs_overhead.json")
        tmp_path = overhead_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as f:
            json.dump(overhead_report, f, indent=2)
            f.write("\n")
        os.replace(tmp_path, overhead_path)
        print(f"wrote {overhead_path} ({len(overhead_report['benches'])} benches)")
        if args.max_overhead_ratio is not None:
            ratios = [b["overhead_ratio"] for b in overhead_report["benches"]
                      if b["overhead_ratio"] is not None]
            worst = max(ratios, default=None)
            if worst is not None and worst > args.max_overhead_ratio:
                print(f"FAIL: worst telemetry overhead {worst}x > allowed "
                      f"{args.max_overhead_ratio}x", file=sys.stderr)
                return 1
            print(f"worst telemetry overhead {worst}x <= "
                  f"{args.max_overhead_ratio}x: OK")

    if args.interest:
        interest_report = run_interest(args.build_dir)
        interest_path = args.interest_out or os.path.join(
            args.build_dir, "BENCH_interest.json")
        tmp_path = interest_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as f:
            json.dump(interest_report, f, indent=2)
            f.write("\n")
        os.replace(tmp_path, interest_path)
        for policy, facts in sorted(interest_report["policies"].items()):
            print(f"{policy}: t_aoi ~ n^{facts.get('aoi_exponent')}, "
                  f"n_max(1) = {facts.get('n_max_1')}")
        print(f"wrote {interest_path} ({len(interest_report['policies'])} policies, "
              f"{len(interest_report['checks'])} checks)")
        failed = [c["check"] for c in interest_report["checks"] if not c["passed"]]
        if interest_report["exit_code"] != 0 or failed:
            for name in failed:
                print(f"FAIL: interest check failed: {name}", file=sys.stderr)
            print(f"FAIL: ext_interest_management exit code "
                  f"{interest_report['exit_code']}", file=sys.stderr)
            return 1

    if args.bandwidth:
        try:
            bandwidth_report = run_bandwidth(args.build_dir, args.threads)
        except DeterminismError as err:
            print(f"ERROR: {err}", file=sys.stderr)
            return 1
        bandwidth_path = args.bandwidth_out or os.path.join(
            args.build_dir, "BENCH_bandwidth.json")
        tmp_path = bandwidth_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as f:
            json.dump(bandwidth_report, f, indent=2)
            f.write("\n")
        os.replace(tmp_path, bandwidth_path)
        print(f"delta egress reduction {bandwidth_report['egress_reduction']}x "
              f"at n={bandwidth_report['egress_reduction_at_n']}, "
              f"n_max gain {bandwidth_report['n_max_gain_25mbit']}x at 25 Mbit/s")
        print(f"wrote {bandwidth_path} ({len(bandwidth_report['codecs'])} codecs)")
        if args.require_bandwidth_reduction is not None:
            reduction = bandwidth_report["egress_reduction"]
            codecs = bandwidth_report["codecs"]
            if reduction is None or "full" not in codecs or "delta" not in codecs:
                print("ERROR: ext_bandwidth output missing the codec comparison "
                      "(was it built with the delta leg?)", file=sys.stderr)
                return 1
            if reduction < args.require_bandwidth_reduction:
                print(f"FAIL: delta egress reduction {reduction}x < required "
                      f"{args.require_bandwidth_reduction}x", file=sys.stderr)
                return 1
            if codecs["delta"]["n_max_25mbit"] <= codecs["full"]["n_max_25mbit"]:
                print(f"FAIL: delta n_max {codecs['delta']['n_max_25mbit']} does not "
                      f"beat full n_max {codecs['full']['n_max_25mbit']} "
                      "on the 25 Mbit/s link", file=sys.stderr)
                return 1
            print(f"delta egress reduction {reduction}x >= "
                  f"{args.require_bandwidth_reduction}x and n_max "
                  f"{codecs['delta']['n_max_25mbit']} > "
                  f"{codecs['full']['n_max_25mbit']}: OK")

    if args.require_aoi_speedup is not None:
        if args.skip_micro:
            print("ERROR: --require-aoi-speedup needs the micro benchmarks "
                  "(drop --skip-micro)", file=sys.stderr)
            return 1
        # cpu_time, not real_time: the gate must survive noisy shared runners,
        # and scheduler preemption only pollutes wall clock.
        times = {b["name"]: b["cpu_time"] for b in report["micro"]}
        euclid = times.get("BM_AoiQuerySpreadEuclid/300")
        grid = times.get("BM_AoiQuerySpreadGrid/300")
        if euclid is None or grid is None or grid <= 0:
            print("ERROR: AOI spread benchmarks missing from micro run; "
                  "cannot gate on AOI speedup", file=sys.stderr)
            return 1
        ratio = euclid / grid
        if ratio < args.require_aoi_speedup:
            print(f"FAIL: grid AOI speedup {ratio:.2f}x < required "
                  f"{args.require_aoi_speedup}x at n=300", file=sys.stderr)
            return 1
        print(f"grid AOI speedup {ratio:.2f}x >= {args.require_aoi_speedup}x "
              "at n=300: OK")

    if args.require_speedup is not None:
        measured = [s["speedup"] for s in report["sweeps"] if s["speedup"] is not None]
        if not measured:
            # Serial-only run: there is no parallel row to gate on. Failing
            # here would turn "this runner has one core" into a fake perf
            # regression, so the gate is explicitly skipped.
            print("NOTE: serial-only run, no speedup rows; "
                  f"--require-speedup {args.require_speedup} gate skipped",
                  file=sys.stderr)
            return 0
        best = max(measured)
        if best < args.require_speedup:
            print(f"FAIL: best sweep speedup {best}x < required "
                  f"{args.require_speedup}x", file=sys.stderr)
            return 1
        print(f"best sweep speedup {best}x >= {args.require_speedup}x: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
