// Tests for per-player application state: the stats codec, kill/death
// attribution (local, forwarded, and credited back across servers), state
// replication to shadows, and score continuity across user migration.
#include <gtest/gtest.h>

#include <memory>

#include "game/bots.hpp"
#include "game/commands.hpp"
#include "game/fps_app.hpp"
#include "game/player_stats.hpp"
#include "rtf/cluster.hpp"

namespace roia::game {
namespace {

TEST(PlayerStatsTest, CodecRoundTrip) {
  const PlayerStats stats{7, 3, 712};
  EXPECT_EQ(decodeStats(encodeStats(stats)), stats);
}

TEST(PlayerStatsTest, EmptyBlobIsFreshPlayer) {
  const PlayerStats stats = decodeStats({});
  EXPECT_EQ(stats.kills, 0u);
  EXPECT_EQ(stats.deaths, 0u);
  EXPECT_EQ(stats.score, 0u);
}

TEST(PlayerStatsTest, MalformedBlobThrows) {
  const std::vector<std::uint8_t> bad(11, 0x80);  // overlong varint
  EXPECT_THROW((void)decodeStats(bad), ser::DecodeError);
}

// ---------- attribution through the application interface ----------

struct StatsFixture {
  FpsConfig config;
  FpsApplication app;
  rtf::World world{ZoneId{1}};
  sim::CpuCostModel cpu;
  rtf::CostMeter meter{cpu};
  rtf::TickProbes probes;
  Rng rng{7};

  struct CapturingSink : rtf::ForwardSink {
    std::vector<rtf::ForwardedInputMsg> forwarded;
    void forwardInteraction(EntityId target, EntityId source,
                            std::vector<std::uint8_t> payload) override {
      forwarded.push_back({target, source, std::move(payload)});
    }
  } sink;

  StatsFixture() : app(config) { meter.beginTick(probes); }

  // Returns the id, not a reference: World's contiguous storage invalidates
  // records on insert, so tests grab references via entity() after all adds.
  EntityId addAvatar(std::uint64_t id, ServerId owner, Vec2 pos, double health) {
    rtf::EntityRecord e;
    e.id = EntityId{id};
    e.kind = rtf::EntityKind::kAvatar;
    e.owner = owner;
    e.client = ClientId{id};
    e.position = pos;
    e.health = health;
    e.version = 1;
    return world.upsert(e).id;
  }

  rtf::EntityRef entity(std::uint64_t id) { return *world.find(EntityId{id}); }

  void attack(rtf::EntityRef attacker, EntityId target) {
    CommandBatch batch;
    batch.attack = AttackCommand{target, {1, 0}};
    const auto bytes = encodeCommands(batch);
    rtf::PhaseScope scope(meter, rtf::Phase::kUa);
    app.applyUserInput(world, attacker, bytes, meter, sink, rng);
  }
};

TEST(KillAttributionTest, LocalKillCreditsAttackerAndVictim) {
  StatsFixture f;
  f.addAvatar(1, ServerId{1}, {0, 0}, 100.0);
  f.addAvatar(2, ServerId{1}, {50, 0}, 4.0);
  auto attacker = f.entity(1);
  auto victim = f.entity(2);
  f.attack(attacker, victim.id);
  const PlayerStats attackerStats = decodeStats(attacker.appData);
  const PlayerStats victimStats = decodeStats(victim.appData);
  EXPECT_EQ(attackerStats.kills, 1u);
  EXPECT_EQ(attackerStats.score, FpsConfig{}.killScore);
  EXPECT_EQ(victimStats.deaths, 1u);
  EXPECT_EQ(victimStats.kills, 0u);
}

TEST(KillAttributionTest, NonLethalHitChangesNoStats) {
  StatsFixture f;
  f.addAvatar(1, ServerId{1}, {0, 0}, 100.0);
  f.addAvatar(2, ServerId{1}, {50, 0}, 100.0);
  auto attacker = f.entity(1);
  auto victim = f.entity(2);
  f.attack(attacker, victim.id);
  EXPECT_TRUE(attacker.appData.empty());
  EXPECT_TRUE(victim.appData.empty());
  EXPECT_DOUBLE_EQ(victim.health, 92.0);
}

TEST(KillAttributionTest, ForwardedKillEmitsCreditBack) {
  StatsFixture f;
  // Victim active here (server 2); attacker is a shadow owned by server 1.
  f.addAvatar(2, ServerId{2}, {50, 0}, 4.0);
  f.addAvatar(1, ServerId{1}, {0, 0}, 100.0);
  auto victim = f.entity(2);
  rtf::PhaseScope scope(f.meter, rtf::Phase::kFa);
  const auto payload = encodeInteraction({Interaction::Kind::kAttack, 8.0});
  f.app.applyForwardedInteraction(f.world, victim, EntityId{1}, payload, f.meter, f.sink);

  EXPECT_EQ(decodeStats(victim.appData).deaths, 1u);
  ASSERT_EQ(f.sink.forwarded.size(), 1u);
  EXPECT_EQ(f.sink.forwarded[0].target, EntityId{1});  // back to the attacker
  const Interaction credit = decodeInteraction(f.sink.forwarded[0].interaction);
  EXPECT_EQ(credit.kind, Interaction::Kind::kKillCredit);
}

TEST(KillAttributionTest, KillCreditAppliesToAttacker) {
  StatsFixture f;
  f.addAvatar(1, ServerId{1}, {0, 0}, 100.0);
  auto attacker = f.entity(1);
  rtf::PhaseScope scope(f.meter, rtf::Phase::kFa);
  const auto payload = encodeInteraction({Interaction::Kind::kKillCredit, 0.0});
  f.app.applyForwardedInteraction(f.world, attacker, EntityId{2}, payload, f.meter, f.sink);
  const PlayerStats stats = decodeStats(attacker.appData);
  EXPECT_EQ(stats.kills, 1u);
  EXPECT_EQ(stats.score, FpsConfig{}.killScore);
}

TEST(KillAttributionTest, ScoreboardChangeBumpsVersion) {
  StatsFixture f;
  f.addAvatar(1, ServerId{1}, {0, 0}, 100.0);
  f.addAvatar(2, ServerId{1}, {50, 0}, 4.0);
  auto attacker = f.entity(1);
  auto victim = f.entity(2);
  const std::uint64_t before = attacker.version;
  f.attack(attacker, victim.id);
  EXPECT_GT(attacker.version, before);  // shadows will learn the new score
}

// ---------- end-to-end: state across servers and migrations ----------

struct ClusterFixture {
  // Small arena: every spawn point is within attack range of every other.
  static FpsConfig smallArena() {
    FpsConfig fps;
    fps.arenaExtent = {100, 100};
    return fps;
  }

  FpsApplication app{smallArena()};
  rtf::Cluster cluster;
  ZoneId zone;

  ClusterFixture() : cluster(app, rtf::ClusterConfig{}) {
    zone = cluster.createZone("arena", smallArena().arenaOrigin, smallArena().arenaExtent);
  }
};

/// Always attacks a fixed target (once set) and stands still.
class AssassinProvider final : public rtf::InputProvider {
 public:
  std::vector<std::uint8_t> nextCommands(SimTime, Rng&) override {
    CommandBatch batch;
    if (target_.valid()) batch.attack = AttackCommand{target_, {1, 0}};
    return encodeCommands(batch);
  }
  void onStateUpdate(std::span<const std::uint8_t>) override {}
  void setTarget(EntityId target) { target_ = target; }

 private:
  EntityId target_{};
};

TEST(PlayerStateE2ETest, StatsSurviveMigration) {
  ClusterFixture f;
  const ServerId a = f.cluster.addServer(f.zone);
  const ServerId b = f.cluster.addServer(f.zone);
  auto killerProvider = std::make_unique<AssassinProvider>();
  AssassinProvider* killer = killerProvider.get();
  const ClientId killerClient = f.cluster.connectClientTo(a, std::move(killerProvider));
  const ClientId victimClient =
      f.cluster.connectClientTo(a, std::make_unique<AssassinProvider>());
  f.cluster.run(SimDuration::milliseconds(200));
  killer->setTarget(f.cluster.client(victimClient).avatar());
  f.cluster.run(SimDuration::seconds(4));  // plenty of kills at 25 Hz

  const EntityId killerAvatar = f.cluster.client(killerClient).avatar();
  const PlayerStats before =
      decodeStats(f.cluster.server(a).world().find(killerAvatar)->appData);
  ASSERT_GT(before.kills, 0u);

  ASSERT_TRUE(f.cluster.migrateClient(killerClient, b));
  f.cluster.run(SimDuration::seconds(1));
  const auto migrated = f.cluster.server(b).world().find(killerAvatar);
  ASSERT_TRUE(migrated.has_value());
  EXPECT_TRUE(migrated->activeOn(b));
  const PlayerStats after = decodeStats(migrated->appData);
  EXPECT_GE(after.kills, before.kills);  // nothing lost in the hand-over
  EXPECT_GE(after.score, before.score);
}

TEST(PlayerStateE2ETest, CrossServerKillCreditsArrive) {
  ClusterFixture f;
  const ServerId a = f.cluster.addServer(f.zone);
  const ServerId b = f.cluster.addServer(f.zone);
  auto killerProvider = std::make_unique<AssassinProvider>();
  AssassinProvider* killer = killerProvider.get();
  const ClientId killerClient = f.cluster.connectClientTo(a, std::move(killerProvider));
  const ClientId victimClient =
      f.cluster.connectClientTo(b, std::make_unique<AssassinProvider>());  // other server!
  f.cluster.run(SimDuration::milliseconds(400));  // shadows form

  killer->setTarget(f.cluster.client(victimClient).avatar());
  f.cluster.run(SimDuration::seconds(5));

  const EntityId killerAvatar = f.cluster.client(killerClient).avatar();
  const EntityId victimAvatar = f.cluster.client(victimClient).avatar();
  // Kill credits crossed twice (attack a->b, credit b->a).
  const PlayerStats killerStats =
      decodeStats(f.cluster.server(a).world().find(killerAvatar)->appData);
  const PlayerStats victimStats =
      decodeStats(f.cluster.server(b).world().find(victimAvatar)->appData);
  EXPECT_GT(killerStats.kills, 0u);
  EXPECT_EQ(killerStats.kills, victimStats.deaths);

  // The victim's server also sees the killer's score via shadow sync.
  const auto killerShadow = f.cluster.server(b).world().find(killerAvatar);
  ASSERT_TRUE(killerShadow.has_value());
  EXPECT_EQ(decodeStats(killerShadow->appData).kills, killerStats.kills);
}

TEST(PlayerStateE2ETest, AttackRangeMattersAcrossServers) {
  // Victim in the far corner: cross-server attacks must all miss.
  ClusterFixture f;
  const ServerId a = f.cluster.addServer(f.zone);
  const ServerId b = f.cluster.addServer(f.zone);
  (void)a;
  auto killerProvider = std::make_unique<AssassinProvider>();
  AssassinProvider* killer = killerProvider.get();
  f.cluster.connectClientTo(a, std::move(killerProvider));
  const ClientId victimClient =
      f.cluster.connectClientTo(b, std::make_unique<AssassinProvider>());
  f.cluster.run(SimDuration::milliseconds(400));

  // Park the victim far outside attack range by teleporting both records.
  const EntityId victimAvatar = f.cluster.client(victimClient).avatar();
  f.cluster.server(b).world().find(victimAvatar)->position = {5000, 5000};
  f.cluster.server(a).world().find(victimAvatar)->position = {5000, 5000};
  killer->setTarget(victimAvatar);
  f.cluster.run(SimDuration::seconds(2));
  EXPECT_TRUE(f.cluster.server(b).world().find(victimAvatar)->appData.empty());
}

}  // namespace
}  // namespace roia::game
