// Fuzz harness for the snapshot decode paths: BaselineReceiver::decodeView
// (delta/keyframe view payloads) and SnapshotCodec::readSnapshot (the full
// codec's entity stream). The contract under test: for ARBITRARY bytes the
// decoders either succeed, return nullopt (inapplicable frame), or throw
// ser::DecodeError — never undefined behaviour, unbounded allocation driven
// past the input size, or a crash.
//
// The first input byte selects the decode mode; the rest is the payload:
//   data[0] % 3 == 0  one view payload into a fresh BaselineReceiver
//   data[0] % 3 == 1  a stream of full-codec snapshots via ByteReader
//   data[0] % 3 == 2  the payload split in two, fed through ONE receiver
//                     (exercises the baseline-lookup state machine: a frame
//                     decoded after another frame sees retained baselines)
//
// Build shapes (tests/fuzz/CMakeLists.txt, behind -DROIA_FUZZ=ON):
//   * Clang: linked against libFuzzer (-fsanitize=fuzzer); the usual
//     `fuzz_snapshot_decode CORPUS_DIR -max_total_time=30` drives it.
//   * Other compilers (the CI image ships g++): a standalone driver with
//     the same entry point —
//       fuzz_snapshot_decode --write-corpus DIR    seed DIR with golden
//                                                  BaselineSender encodes
//       fuzz_snapshot_decode --mutate SECONDS [DIR] deterministic xorshift
//                                                  mutation loop over the
//                                                  corpus (built-in seeds
//                                                  when DIR is omitted)
//       fuzz_snapshot_decode FILE...               replay crash inputs
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "rtf/entity.hpp"
#include "rtf/snapshot_codec.hpp"
#include "serialize/byte_buffer.hpp"

namespace {

const roia::rtf::SnapshotCodec& deltaCodec() {
  static const roia::rtf::SnapshotCodec codec = [] {
    roia::rtf::ReplicationProfile profile;
    profile.codec = roia::rtf::ReplicationCodec::kDelta;
    return roia::rtf::SnapshotCodec{profile};
  }();
  return codec;
}

void decodeOneView(roia::rtf::BaselineReceiver& receiver,
                   std::span<const std::uint8_t> payload) {
  try {
    auto decoded = receiver.decodeView(payload);
    if (decoded && decoded->view != nullptr) {
      // Touch the reconstructed view so the optimizer cannot elide it and
      // sanitizers see every byte the decoder produced.
      volatile std::size_t entities = decoded->view->size();
      (void)entities;
    }
  } catch (const roia::ser::DecodeError&) {
    // Expected terminal state for malformed bytes.
  }
}

void fuzzOne(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return;
  const std::uint8_t mode = static_cast<std::uint8_t>(data[0] % 3);
  const std::span<const std::uint8_t> payload{data + 1, size - 1};
  switch (mode) {
    case 0: {
      roia::rtf::BaselineReceiver receiver{deltaCodec()};
      decodeOneView(receiver, payload);
      break;
    }
    case 1: {
      roia::ser::ByteReader reader{payload};
      try {
        while (!reader.atEnd()) {
          volatile float health = roia::rtf::SnapshotCodec::readSnapshot(reader).health;
          (void)health;
        }
      } catch (const roia::ser::DecodeError&) {
      }
      break;
    }
    default: {
      // Split point from the payload itself so the fuzzer controls where
      // the cut lands; both halves go through the same receiver.
      if (payload.empty()) return;
      const std::size_t split = 1 + payload[0] % payload.size();
      roia::rtf::BaselineReceiver receiver{deltaCodec()};
      decodeOneView(receiver, payload.subspan(0, split));
      decodeOneView(receiver, payload.subspan(split));
      break;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  fuzzOne(data, size);
  return 0;
}

#if defined(ROIA_FUZZ_STANDALONE)
// Standalone driver used where libFuzzer is unavailable (g++ builds). Seeds
// come from real BaselineSender encodes so the mutation loop starts inside
// the interesting part of the input space rather than at random noise.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

roia::rtf::EntitySnapshot makeEntity(std::uint64_t id) {
  roia::rtf::EntitySnapshot s;
  s.id = roia::EntityId{id};
  s.kind = (id % 2 == 0) ? roia::rtf::EntityKind::kAvatar : roia::rtf::EntityKind::kNpc;
  s.owner = roia::ServerId{static_cast<std::uint32_t>(1 + id % 3)};
  s.client = roia::ClientId{static_cast<std::uint32_t>(100 + id)};
  s.x = 1.5f * static_cast<float>(id);
  s.y = -0.25f * static_cast<float>(id);
  s.vx = 0.125f;
  s.vy = -2.0f;
  s.health = 100.0f - static_cast<float>(id);
  s.version = 7 + id;
  s.appData = {static_cast<std::uint8_t>(id), 0xAB, 0xCD};
  return s;
}

/// Golden seed inputs: each is a mode byte plus a payload produced by the
/// real encoders, covering keyframe, delta-against-baseline, removals, the
/// client field mask, an empty view, and a full-codec snapshot stream.
std::vector<std::vector<std::uint8_t>> goldenSeeds() {
  std::vector<std::vector<std::uint8_t>> seeds;
  auto add = [&seeds](std::uint8_t mode, std::span<const std::uint8_t> payload) {
    std::vector<std::uint8_t> input;
    input.reserve(payload.size() + 1);
    input.push_back(mode);
    input.insert(input.end(), payload.begin(), payload.end());
    seeds.push_back(std::move(input));
  };

  const auto& codec = deltaCodec();
  {
    roia::rtf::BaselineSender sender{codec, roia::rtf::kAllFields};
    roia::rtf::SnapshotView view;
    for (std::uint64_t id = 1; id <= 4; ++id) view.emplace(roia::EntityId{id}, makeEntity(id));

    roia::ser::ByteWriter keyframe;
    sender.encodeView(1, view, {}, keyframe);
    add(0, keyframe.bytes());
    add(2, keyframe.bytes());

    sender.onAck(1);
    view.at(roia::EntityId{2}).x += 5.0f;
    view.at(roia::EntityId{2}).health -= 12.5f;
    view.erase(roia::EntityId{3});
    const roia::EntityId removed[] = {roia::EntityId{3}};
    roia::ser::ByteWriter delta;
    sender.encodeView(2, view, removed, delta);
    add(0, delta.bytes());
    add(2, delta.bytes());
  }
  {
    roia::rtf::BaselineSender sender{codec, roia::rtf::kClientViewFields};
    roia::rtf::SnapshotView view;
    view.emplace(roia::EntityId{9}, makeEntity(9));
    roia::ser::ByteWriter clientFrame;
    sender.encodeView(5, view, {}, clientFrame);
    add(0, clientFrame.bytes());
  }
  {
    roia::rtf::BaselineSender sender{codec, roia::rtf::kAllFields};
    roia::ser::ByteWriter empty;
    sender.encodeView(3, {}, {}, empty);
    add(0, empty.bytes());
  }
  {
    roia::ser::ByteWriter stream;
    for (std::uint64_t id = 1; id <= 3; ++id) {
      roia::rtf::SnapshotCodec::writeSnapshot(stream, makeEntity(id));
    }
    add(1, stream.bytes());
  }
  return seeds;
}

int writeCorpus(const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "fuzz: cannot create corpus dir %s: %s\n", dir.string().c_str(),
                 ec.message().c_str());
    return 1;
  }
  const auto seeds = goldenSeeds();
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "seed_%02zu.bin", i);
    std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(seeds[i].data()),
              static_cast<std::streamsize>(seeds[i].size()));
    if (!out) {
      std::fprintf(stderr, "fuzz: failed writing %s\n", (dir / name).string().c_str());
      return 1;
    }
  }
  std::printf("fuzz: wrote %zu seed inputs to %s\n", seeds.size(), dir.string().c_str());
  return 0;
}

std::vector<std::vector<std::uint8_t>> loadCorpus(const std::filesystem::path& dir) {
  std::vector<std::vector<std::uint8_t>> corpus;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    corpus.emplace_back(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  return corpus;
}

/// Deterministic xorshift64* PRNG: the mutation sequence is reproducible
/// run-to-run, only the number of iterations depends on wall time.
struct XorShift {
  std::uint64_t state{0x9E3779B97F4A7C15ULL};
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1DULL;
  }
};

void mutate(XorShift& rng, std::vector<std::uint8_t>& input) {
  const std::uint64_t edits = 1 + rng.next() % 8;
  for (std::uint64_t i = 0; i < edits; ++i) {
    if (input.empty()) {
      input.push_back(static_cast<std::uint8_t>(rng.next()));
      continue;
    }
    switch (rng.next() % 4) {
      case 0:  // flip random bits of one byte
        input[rng.next() % input.size()] ^= static_cast<std::uint8_t>(rng.next());
        break;
      case 1:  // insert a byte
        input.insert(input.begin() + static_cast<std::ptrdiff_t>(rng.next() % (input.size() + 1)),
                     static_cast<std::uint8_t>(rng.next()));
        break;
      case 2:  // erase a byte
        input.erase(input.begin() + static_cast<std::ptrdiff_t>(rng.next() % input.size()));
        break;
      default:  // truncate the tail
        input.resize(1 + rng.next() % input.size());
        break;
    }
  }
}

int mutateLoop(double seconds, const std::filesystem::path* corpusDir) {
  std::vector<std::vector<std::uint8_t>> corpus;
  if (corpusDir != nullptr) corpus = loadCorpus(*corpusDir);
  if (corpus.empty()) corpus = goldenSeeds();

  XorShift rng;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t executed = 0;
  std::vector<std::uint8_t> input;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() <
         seconds) {
    // Batch between clock reads: the harness should spend its budget in the
    // decoders, not in steady_clock.
    for (int i = 0; i < 256; ++i) {
      input = corpus[rng.next() % corpus.size()];
      mutate(rng, input);
      fuzzOne(input.data(), input.size());
      ++executed;
    }
  }
  std::printf("fuzz: %llu mutated inputs, 0 crashes\n",
              static_cast<unsigned long long>(executed));
  return 0;
}

int replayFiles(int argc, char** argv, int first) {
  for (int i = first; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "fuzz: cannot open %s\n", argv[i]);
      return 1;
    }
    std::vector<std::uint8_t> input{std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>()};
    fuzzOne(input.data(), input.size());
    std::printf("fuzz: replayed %s (%zu bytes) ok\n", argv[i], input.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--write-corpus") == 0) {
    return writeCorpus(argv[2]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "--mutate") == 0) {
    const double seconds = std::stod(argv[2]);
    if (argc >= 4) {
      const std::filesystem::path dir = argv[3];
      return mutateLoop(seconds, &dir);
    }
    return mutateLoop(seconds, nullptr);
  }
  if (argc >= 2 && argv[1][0] != '-') {
    return replayFiles(argc, argv, 1);
  }
  std::fprintf(stderr,
               "usage: %s --write-corpus DIR | --mutate SECONDS [CORPUS_DIR] | FILE...\n",
               argv[0]);
  return 2;
}
#endif  // ROIA_FUZZ_STANDALONE
