// Unit and property tests for the common substrate: ids, time types,
// deterministic RNG, statistics accumulators and math helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace roia {
namespace {

// ---------- ids ----------

TEST(Ids, DefaultIsInvalid) {
  ServerId id;
  EXPECT_FALSE(id.valid());
  EXPECT_TRUE(ServerId{3}.valid());
}

TEST(Ids, ComparesByValue) {
  EXPECT_EQ(ClientId{7}, ClientId{7});
  EXPECT_NE(ClientId{7}, ClientId{8});
  EXPECT_LT(ClientId{7}, ClientId{8});
}

TEST(Ids, HashIsUsable) {
  std::set<EntityId> set{EntityId{1}, EntityId{2}, EntityId{1}};
  EXPECT_EQ(set.size(), 2u);
}

// ---------- time ----------

TEST(SimTimeTest, ArithmeticIsExact) {
  const SimTime t{1000};
  const SimDuration d = SimDuration::milliseconds(3);
  EXPECT_EQ((t + d).micros, 4000);
  EXPECT_EQ((t + d - d).micros, 1000);
  EXPECT_EQ(((t + d) - t).micros, 3000);
}

TEST(SimTimeTest, Conversions) {
  EXPECT_DOUBLE_EQ(SimDuration::milliseconds(40).asMillis(), 40.0);
  EXPECT_DOUBLE_EQ(SimDuration::seconds(2).asSeconds(), 2.0);
  EXPECT_DOUBLE_EQ(SimTime{1500000}.asSeconds(), 1.5);
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime{1}, SimTime{2});
  EXPECT_LT(SimDuration::milliseconds(1), SimDuration::milliseconds(2));
  EXPECT_EQ(SimTime::max(), SimTime::max());
}

TEST(SimTimeTest, DurationScaling) {
  EXPECT_EQ((SimDuration::milliseconds(3) * 4).micros, 12000);
  EXPECT_EQ((4 * SimDuration::milliseconds(3)).micros, 12000);
}

// ---------- rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.nextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.uniformInt(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    sawLo |= (v == 3);
    sawHi |= (v == 7);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(1);
  EXPECT_EQ(rng.uniformInt(5, 5), 5u);
  EXPECT_EQ(rng.uniformInt(9, 3), 9u);  // lo >= hi returns lo
}

TEST(RngTest, ChanceEdges) {
  Rng rng(11);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-0.5));
  EXPECT_TRUE(rng.chance(1.5));
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  StatAccumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  StatAccumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.exponential(4.0));
  EXPECT_NEAR(acc.mean(), 4.0, 0.1);
  EXPECT_GE(acc.min(), 0.0);
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  const Rng parent(123);
  Rng childA = parent.split(1);
  Rng childA2 = parent.split(1);
  Rng childB = parent.split(2);
  int equalAB = 0;
  for (int i = 0; i < 64; ++i) {
    const auto a = childA.next();
    EXPECT_EQ(a, childA2.next());  // same salt -> same stream
    if (a == childB.next()) ++equalAB;
  }
  EXPECT_LT(equalAB, 3);
}

TEST(SplitMixTest, KnownFirstValueIsStable) {
  SplitMix64 sm(0);
  const auto v1 = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(v1, sm2.next());
  EXPECT_NE(v1, sm.next());
}

// ---------- stats ----------

TEST(StatAccumulatorTest, EmptyIsSafe) {
  StatAccumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 0.0);
}

TEST(StatAccumulatorTest, KnownValues) {
  StatAccumulator acc;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
  EXPECT_EQ(acc.count(), 8u);
}

TEST(StatAccumulatorTest, MergeMatchesSequential) {
  StatAccumulator whole, a, b;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5, 5);
    whole.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(StatAccumulatorTest, MergeWithEmpty) {
  StatAccumulator a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(EwmaTest, FirstSampleInitializes) {
  Ewma ewma(0.5);
  EXPECT_FALSE(ewma.initialized());
  ewma.add(10.0);
  EXPECT_TRUE(ewma.initialized());
  EXPECT_DOUBLE_EQ(ewma.value(), 10.0);
  ewma.add(0.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 5.0);
}

TEST(EwmaTest, ConvergesToConstant) {
  Ewma ewma(0.2);
  for (int i = 0; i < 200; ++i) ewma.add(3.0);
  EXPECT_NEAR(ewma.value(), 3.0, 1e-9);
}

TEST(HistogramTest, BucketsAndOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
}

TEST(HistogramTest, QuantileOfUniformData) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(HistogramTest, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(WindowedAverageTest, EvictsOldSamples) {
  WindowedAverage w(SimDuration::seconds(1));
  w.add(SimTime{0}, 10.0);
  w.add(SimTime{500000}, 20.0);
  EXPECT_DOUBLE_EQ(w.average(), 15.0);
  // 2.0 s: the first two samples fall outside the 1 s window.
  w.add(SimTime{2000000}, 30.0);
  EXPECT_DOUBLE_EQ(w.average(), 30.0);
  EXPECT_EQ(w.size(), 1u);
}

TEST(SampleSeriesTest, AddAndSize) {
  SampleSeries s;
  EXPECT_TRUE(s.empty());
  s.add(1.0, 2.0);
  s.add(3.0, 4.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.x[1], 3.0);
  EXPECT_DOUBLE_EQ(s.y[1], 4.0);
}

// ---------- math ----------

TEST(Vec2Test, BasicOps) {
  const Vec2 a{3, 4};
  EXPECT_DOUBLE_EQ(a.length(), 5.0);
  EXPECT_DOUBLE_EQ(a.lengthSq(), 25.0);
  EXPECT_DOUBLE_EQ(a.distance({0, 0}), 5.0);
  EXPECT_DOUBLE_EQ((a + Vec2{1, 1}).x, 4.0);
  EXPECT_DOUBLE_EQ((a - Vec2{1, 1}).y, 3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).x, 6.0);
  EXPECT_DOUBLE_EQ(a.dot({1, 0}), 3.0);
}

TEST(Vec2Test, NormalizedHandlesZero) {
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
  const Vec2 n = Vec2{10, 0}.normalized();
  EXPECT_DOUBLE_EQ(n.x, 1.0);
  EXPECT_DOUBLE_EQ(n.y, 0.0);
}

TEST(PolynomialTest, HornerMatchesDirect) {
  const std::vector<double> coeffs{1.0, -2.0, 0.5, 3.0};
  for (double x : {-2.0, 0.0, 0.5, 10.0}) {
    const double direct = 1.0 - 2.0 * x + 0.5 * x * x + 3.0 * x * x * x;
    EXPECT_NEAR(evalPolynomial(coeffs, x), direct, 1e-9 * std::max(1.0, std::fabs(direct)));
  }
}

TEST(PolynomialTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(evalPolynomial({}, 3.0), 0.0);
}

TEST(MathTest, LerpAndApprox) {
  EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 0.25), 2.5);
  EXPECT_TRUE(approxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approxEqual(1.0, 1.1));
}

}  // namespace
}  // namespace roia
