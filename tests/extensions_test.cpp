// Tests for the extension features: the bandwidth model (the paper's stated
// future work), multi-zone management with a shared resource pool (zoning),
// and cross-zone user travel.
#include <gtest/gtest.h>

#include <memory>

#include "game/bots.hpp"
#include "game/fps_app.hpp"
#include "game/measurement.hpp"
#include "model/bandwidth.hpp"
#include "rms/manager.hpp"
#include "rms/model_strategy.hpp"
#include "rtf/cluster.hpp"

namespace roia {
namespace {

// ---------- bandwidth model ----------

model::BandwidthSample syntheticSample(std::size_t n, std::size_t l = 2) {
  model::BandwidthSample s;
  s.users = n;
  s.replicas = l;
  const double dn = static_cast<double>(n);
  s.ingressBytesPerSec = 800.0 + 550.0 * dn;
  s.egressBytesPerSec = 10000.0 + 250.0 * dn + 20.0 * dn * dn;
  return s;
}

TEST(BandwidthModelTest, FitsSyntheticRates) {
  std::vector<model::BandwidthSample> samples;
  for (std::size_t n = 40; n <= 280; n += 40) samples.push_back(syntheticSample(n));
  const model::BandwidthModel bw = model::BandwidthModel::fit(samples);
  EXPECT_EQ(bw.replicas(), 2u);
  EXPECT_NEAR(bw.predictEgressBytesPerSec(200), 10000.0 + 50000.0 + 800000.0, 2000.0);
  EXPECT_NEAR(bw.predictIngressBytesPerSec(200), 800.0 + 110000.0, 1000.0);
  EXPECT_GT(bw.egressFunction().gof.r2, 0.999);
}

TEST(BandwidthModelTest, RejectsBadInput) {
  std::vector<model::BandwidthSample> tooFew{syntheticSample(40), syntheticSample(80)};
  EXPECT_THROW(model::BandwidthModel::fit(tooFew), std::invalid_argument);
  std::vector<model::BandwidthSample> mixed{syntheticSample(40, 1), syntheticSample(80, 2),
                                            syntheticSample(120, 2)};
  EXPECT_THROW(model::BandwidthModel::fit(mixed), std::invalid_argument);
}

TEST(BandwidthModelTest, AsymmetryGrowsWithPopulation) {
  std::vector<model::BandwidthSample> samples;
  for (std::size_t n = 40; n <= 280; n += 40) samples.push_back(syntheticSample(n));
  const model::BandwidthModel bw = model::BandwidthModel::fit(samples);
  EXPECT_GT(bw.asymmetry(100), 1.0);
  EXPECT_GT(bw.asymmetry(250), bw.asymmetry(100));
}

TEST(BandwidthModelTest, NMaxForLinkBoundary) {
  std::vector<model::BandwidthSample> samples;
  for (std::size_t n = 40; n <= 280; n += 40) samples.push_back(syntheticSample(n));
  const model::BandwidthModel bw = model::BandwidthModel::fit(samples);
  const double link = 12.5e6;  // 100 Mbit/s
  const std::size_t nMax = bw.nMaxForLink(link);
  EXPECT_LT(bw.predictEgressBytesPerSec(static_cast<double>(nMax)), link);
  EXPECT_GE(bw.predictEgressBytesPerSec(static_cast<double>(nMax + 1)), link);
  // A tiny link fits nobody; a giant one is capped by the search bound.
  EXPECT_EQ(bw.nMaxForLink(1.0), 0u);
  EXPECT_EQ(bw.nMaxForLink(1e18, 5000), 5000u);
}

TEST(BandwidthMeasurementTest, RealTrafficIsEgressDominatedAndGrows) {
  game::MeasurementConfig config;
  config.warmup = SimDuration::seconds(1);
  config.measure = SimDuration::seconds(2);
  const model::BandwidthSample small = game::measureBandwidth(config, 40, 2);
  const model::BandwidthSample large = game::measureBandwidth(config, 160, 2);
  EXPECT_GT(small.egressBytesPerSec, small.ingressBytesPerSec);
  EXPECT_GT(large.egressBytesPerSec, large.ingressBytesPerSec);
  EXPECT_GT(large.egressBytesPerSec, 2.0 * small.egressBytesPerSec);  // superlinear
  EXPECT_GT(large.ingressBytesPerSec, small.ingressBytesPerSec);
}

// ---------- cross-zone travel ----------

struct TravelFixture {
  game::FpsApplication app;
  rtf::Cluster cluster;
  ZoneId zoneA;
  ZoneId zoneB;
  ServerId serverA;
  ServerId serverB;

  TravelFixture() : cluster(app, rtf::ClusterConfig{}) {
    zoneA = cluster.createZone("A");
    zoneB = cluster.createZone("B");
    serverA = cluster.addServer(zoneA);
    serverB = cluster.addServer(zoneB);
  }
};

TEST(TravelTest, MovesClientBetweenZones) {
  TravelFixture f;
  const ClientId c = f.cluster.connectClient(f.zoneA, std::make_unique<game::BotProvider>());
  f.cluster.run(SimDuration::milliseconds(500));
  const EntityId oldAvatar = f.cluster.client(c).avatar();

  ASSERT_TRUE(f.cluster.travelClient(c, f.zoneB));
  f.cluster.run(SimDuration::milliseconds(500));

  EXPECT_EQ(f.cluster.zoneUserCount(f.zoneA), 0u);
  EXPECT_EQ(f.cluster.zoneUserCount(f.zoneB), 1u);
  EXPECT_EQ(f.cluster.clientServer(c), f.serverB);
  // The handoff serialized the avatar into zone B: same entity identity,
  // removed from zone A's world once the target acknowledged.
  EXPECT_FALSE(f.cluster.server(f.serverA).world().find(oldAvatar).has_value());
  const EntityId newAvatar = f.cluster.client(c).avatar();
  EXPECT_EQ(newAvatar, oldAvatar);
  ASSERT_TRUE(f.cluster.server(f.serverB).world().find(newAvatar).has_value());
}

TEST(TravelTest, ClientKeepsReceivingUpdatesAfterTravel) {
  TravelFixture f;
  const ClientId c = f.cluster.connectClient(f.zoneA, std::make_unique<game::BotProvider>());
  f.cluster.run(SimDuration::seconds(1));
  ASSERT_TRUE(f.cluster.travelClient(c, f.zoneB));
  const std::uint64_t before = f.cluster.client(c).updatesReceived();
  f.cluster.run(SimDuration::seconds(1));
  EXPECT_GT(f.cluster.client(c).updatesReceived(), before + 10);
}

TEST(TravelTest, RejectsInvalidTravel) {
  TravelFixture f;
  const ClientId c = f.cluster.connectClient(f.zoneA, std::make_unique<game::BotProvider>());
  EXPECT_FALSE(f.cluster.travelClient(c, f.zoneA));            // same zone
  EXPECT_FALSE(f.cluster.travelClient(ClientId{999}, f.zoneB));  // unknown client
  const ZoneId empty = f.cluster.createZone("empty");
  EXPECT_FALSE(f.cluster.travelClient(c, empty));  // no servers there
}

TEST(TravelTest, PicksLeastLoadedReplicaInTargetZone) {
  TravelFixture f;
  const ServerId serverB2 = f.cluster.addServer(f.zoneB);
  for (int i = 0; i < 4; ++i) {
    f.cluster.connectClientTo(f.serverB, std::make_unique<game::BotProvider>());
  }
  const ClientId c = f.cluster.connectClient(f.zoneA, std::make_unique<game::BotProvider>());
  ASSERT_TRUE(f.cluster.travelClient(c, f.zoneB));
  f.cluster.run(SimDuration::milliseconds(500));  // handoff is asynchronous
  EXPECT_EQ(f.cluster.clientServer(c), serverB2);
}

// ---------- multi-zone RMS ----------

model::TickModel paperLikeTickModel() {
  model::ModelParameters params;
  params.set(model::ParamKind::kUaDser, model::ParamFunction::linear(1.0, 0.0015));
  params.set(model::ParamKind::kUa, model::ParamFunction::quadratic(1.2, 0.009, 1.2e-4));
  params.set(model::ParamKind::kAoi, model::ParamFunction::quadratic(0.1, 0.45, 0.8e-4));
  params.set(model::ParamKind::kSu, model::ParamFunction::linear(1.5, 0.2));
  params.set(model::ParamKind::kFaDser, model::ParamFunction::linear(0.55, 0.0007));
  params.set(model::ParamKind::kFa, model::ParamFunction::linear(0.9, 0.0023));
  params.set(model::ParamKind::kMigIni, model::ParamFunction::linear(150.0, 5.0));
  params.set(model::ParamKind::kMigRcv, model::ParamFunction::linear(80.0, 2.2));
  return model::TickModel(params);
}

TEST(MultiZoneRmsTest, ScalesZonesIndependently) {
  game::FpsApplication app;
  rtf::Cluster cluster(app, rtf::ClusterConfig{});
  const ZoneId busy = cluster.createZone("busy");
  const ZoneId quiet = cluster.createZone("quiet");
  cluster.addServer(busy);
  cluster.addServer(quiet);
  for (int i = 0; i < 210; ++i) {
    cluster.connectClient(busy, std::make_unique<game::BotProvider>());
  }
  for (int i = 0; i < 30; ++i) {
    cluster.connectClient(quiet, std::make_unique<game::BotProvider>());
  }

  rms::RmsConfig config;
  config.controlPeriod = SimDuration::milliseconds(500);
  config.serverStartupDelay = SimDuration::seconds(1);
  rms::RmsManager manager(cluster, std::vector<ZoneId>{busy, quiet},
                          std::make_unique<rms::ModelDrivenStrategy>(paperLikeTickModel(),
                                                                     rms::ModelStrategyConfig{}),
                          rms::ResourcePool{}, config);
  manager.start();
  cluster.run(SimDuration::seconds(10));
  manager.stop();

  // The busy zone (210 > trigger 191) gained a replica; the quiet one kept
  // its single server.
  EXPECT_GE(cluster.zones().replicaCount(busy), 2u);
  EXPECT_EQ(cluster.zones().replicaCount(quiet), 1u);
  EXPECT_EQ(cluster.zoneUserCount(busy), 210u);
  EXPECT_EQ(cluster.zoneUserCount(quiet), 30u);
  // One aggregate timeline covering both zones.
  ASSERT_FALSE(manager.timeline().empty());
  EXPECT_EQ(manager.timeline().back().users, 240u);
}

TEST(MultiZoneRmsTest, SharedPoolLimitsBothZones) {
  game::FpsApplication app;
  rtf::Cluster cluster(app, rtf::ClusterConfig{});
  const ZoneId a = cluster.createZone("a");
  const ZoneId b = cluster.createZone("b");
  cluster.addServer(a);
  cluster.addServer(b);
  for (int i = 0; i < 200; ++i) {
    cluster.connectClient(a, std::make_unique<game::BotProvider>());
    cluster.connectClient(b, std::make_unique<game::BotProvider>());
  }

  // Pool with exactly the two initial servers plus ONE spare: only one zone
  // can replicate even though both want to.
  rms::ResourcePool pool({{"standard", 1.0, 1.0, 3}});
  rms::RmsConfig config;
  config.controlPeriod = SimDuration::milliseconds(500);
  config.serverStartupDelay = SimDuration::milliseconds(500);
  rms::RmsManager manager(cluster, std::vector<ZoneId>{a, b},
                          std::make_unique<rms::ModelDrivenStrategy>(paperLikeTickModel(),
                                                                     rms::ModelStrategyConfig{}),
                          std::move(pool), config);
  manager.start();
  cluster.run(SimDuration::seconds(8));
  manager.stop();

  EXPECT_EQ(cluster.serverCount(), 3u);  // 2 initial + the single spare
  EXPECT_EQ(manager.replicasAdded(), 1u);
}

}  // namespace
}  // namespace roia
