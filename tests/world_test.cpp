// Tests for the contiguous-slot World storage: the id->slot index must stay
// consistent under arbitrary spawn/despawn/migration churn, forEach must
// iterate in ascending id order, and the single-pass census must agree with
// the predicate scans it replaced.
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "rtf/world.hpp"

namespace roia::rtf {
namespace {

EntityRecord makeEntity(std::uint64_t id, EntityKind kind, std::uint64_t owner) {
  EntityRecord e;
  e.id = EntityId{id};
  e.kind = kind;
  e.zone = ZoneId{1};
  e.owner = ServerId{owner};
  if (kind == EntityKind::kAvatar) e.client = ClientId{id};
  e.position = {static_cast<double>(id), static_cast<double>(id * 2)};
  return e;
}

std::vector<std::uint64_t> idsInOrder(const World& world) {
  std::vector<std::uint64_t> ids;
  world.forEach([&ids](ConstEntityRef e) { ids.push_back(e.id.value); });
  return ids;
}

TEST(WorldTest, UpsertFindRemoveBasics) {
  World world(ZoneId{1});
  EXPECT_EQ(world.size(), 0u);
  EXPECT_FALSE(world.find(EntityId{1}).has_value());
  EXPECT_FALSE(world.remove(EntityId{1}));

  world.upsert(makeEntity(1, EntityKind::kAvatar, 1));
  ASSERT_TRUE(world.find(EntityId{1}).has_value());
  EXPECT_TRUE(world.contains(EntityId{1}));
  EXPECT_EQ(world.size(), 1u);

  // Upsert of an existing id updates in place without growing.
  EntityRecord updated = makeEntity(1, EntityKind::kAvatar, 2);
  updated.health = 55.0;
  world.upsert(updated);
  EXPECT_EQ(world.size(), 1u);
  EXPECT_EQ(world.find(EntityId{1})->owner, ServerId{2});
  EXPECT_DOUBLE_EQ(world.find(EntityId{1})->health, 55.0);

  EXPECT_TRUE(world.remove(EntityId{1}));
  EXPECT_FALSE(world.contains(EntityId{1}));
  EXPECT_EQ(world.size(), 0u);
}

TEST(WorldTest, StructuralEpochBumpsOnMembershipChangesOnly) {
  World world(ZoneId{1});
  const std::uint64_t e0 = world.structuralEpoch();

  world.upsert(makeEntity(1, EntityKind::kAvatar, 1));
  const std::uint64_t e1 = world.structuralEpoch();
  EXPECT_GT(e1, e0);  // new id -> slots shifted

  // Value-only upsert keeps every slot stable: epoch must not move, so
  // interest structures keyed on slots stay valid.
  EntityRecord updated = makeEntity(1, EntityKind::kAvatar, 2);
  updated.position = {500.0, 500.0};
  world.upsert(updated);
  EXPECT_EQ(world.structuralEpoch(), e1);

  world.upsert(makeEntity(2, EntityKind::kNpc, 1));
  const std::uint64_t e2 = world.structuralEpoch();
  EXPECT_GT(e2, e1);

  EXPECT_TRUE(world.remove(EntityId{1}));
  EXPECT_GT(world.structuralEpoch(), e2);
  const std::uint64_t e3 = world.structuralEpoch();
  EXPECT_FALSE(world.remove(EntityId{1}));  // failed remove is not structural
  EXPECT_EQ(world.structuralEpoch(), e3);
}

TEST(WorldTest, SlotAccessorsAgreeWithFind) {
  World world(ZoneId{1});
  for (const std::uint64_t id : {40u, 10u, 30u, 20u}) {
    world.upsert(makeEntity(id, id % 20 == 0 ? EntityKind::kNpc : EntityKind::kAvatar, id));
  }
  ASSERT_EQ(world.size(), 4u);
  for (const std::uint64_t id : {10u, 20u, 30u, 40u}) {
    const std::size_t slot = world.slotOf(EntityId{id});
    ASSERT_NE(slot, World::npos);
    EXPECT_EQ(world.ids()[slot], id);
    EXPECT_EQ(world.owners()[slot], ServerId{id});
    const auto ref = std::as_const(world).find(EntityId{id});
    ASSERT_TRUE(ref.has_value());
    EXPECT_EQ(ref->kind, world.kinds()[slot]);
    EXPECT_DOUBLE_EQ(ref->position.x, world.positions()[slot].x);
  }
  EXPECT_EQ(world.slotOf(EntityId{99}), World::npos);
}

TEST(WorldTest, ForEachIteratesInAscendingIdOrder) {
  World world(ZoneId{1});
  // Insert out of order, including mid-range ids that force slot reindexing.
  for (const std::uint64_t id : {50u, 10u, 90u, 30u, 70u, 20u, 80u, 40u, 60u, 1u}) {
    world.upsert(makeEntity(id, EntityKind::kAvatar, 1));
  }
  EXPECT_EQ(idsInOrder(world),
            (std::vector<std::uint64_t>{1, 10, 20, 30, 40, 50, 60, 70, 80, 90}));

  world.remove(EntityId{30});
  world.remove(EntityId{90});
  world.upsert(makeEntity(35, EntityKind::kNpc, 1));
  EXPECT_EQ(idsInOrder(world), (std::vector<std::uint64_t>{1, 10, 20, 35, 40, 50, 60, 70, 80}));
}

TEST(WorldTest, RandomizedChurnMatchesReferenceModel) {
  // Drive the same operation stream into the World and a std::map reference
  // model; they must agree on membership, record contents and iteration
  // order at every step.
  World world(ZoneId{1});
  std::map<std::uint64_t, EntityRecord> reference;
  Rng rng(42);

  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t id = 1 + static_cast<std::uint64_t>(rng.uniform(0, 64));
    const double action = rng.uniform(0, 1);
    if (action < 0.55) {
      const EntityKind kind = rng.uniform(0, 1) < 0.3 ? EntityKind::kNpc : EntityKind::kAvatar;
      const std::uint64_t owner = 1 + static_cast<std::uint64_t>(rng.uniform(0, 3));
      EntityRecord e = makeEntity(id, kind, owner);
      e.version = static_cast<std::uint64_t>(step);
      world.upsert(e);
      reference[id] = e;
    } else if (action < 0.8) {
      EXPECT_EQ(world.remove(EntityId{id}), reference.erase(id) > 0) << "step " << step;
    } else if (auto found = world.find(EntityId{id})) {
      // Migration: flip ownership through the returned reference, as the
      // server's migration path does.
      found->owner = ServerId{found->owner.value % 3 + 1};
      reference[id].owner = found->owner;
    } else {
      EXPECT_FALSE(reference.contains(id)) << "step " << step;
    }

    ASSERT_EQ(world.size(), reference.size()) << "step " << step;
    std::vector<std::uint64_t> referenceIds;
    for (const auto& [refId, record] : reference) {
      referenceIds.push_back(refId);
      const auto stored = std::as_const(world).find(EntityId{refId});
      ASSERT_TRUE(stored.has_value()) << "step " << step << " id " << refId;
      ASSERT_EQ(stored->id.value, refId);
      ASSERT_EQ(stored->owner, record.owner) << "step " << step << " id " << refId;
      ASSERT_EQ(stored->version, record.version) << "step " << step << " id " << refId;
      ASSERT_EQ(stored->kind, record.kind) << "step " << step << " id " << refId;
    }
    ASSERT_EQ(idsInOrder(world), referenceIds) << "step " << step;
  }
}

TEST(WorldTest, CensusMatchesPredicateScans) {
  World world(ZoneId{1});
  Rng rng(7);
  for (std::uint64_t id = 1; id <= 200; ++id) {
    const EntityKind kind = rng.uniform(0, 1) < 0.4 ? EntityKind::kNpc : EntityKind::kAvatar;
    world.upsert(makeEntity(id, kind, 1 + static_cast<std::uint64_t>(rng.uniform(0, 3))));
  }
  for (const std::uint64_t server : {1u, 2u, 3u, 99u}) {
    const ServerId sid{server};
    const World::Census census = world.census(sid);
    EXPECT_EQ(census.totalAvatars, world.avatarCount());
    EXPECT_EQ(census.totalNpcs, world.npcCount());
    EXPECT_EQ(census.activeAvatars,
              world.countIf([sid](ConstEntityRef e) { return e.isAvatar() && e.owner == sid; }));
    EXPECT_EQ(census.activeNpcs,
              world.countIf([sid](ConstEntityRef e) { return e.isNpc() && e.owner == sid; }));
    EXPECT_EQ(census.activeAvatars + census.activeNpcs, world.activeCount(sid));
    EXPECT_EQ(census.shadowAvatars(), census.totalAvatars - census.activeAvatars);
  }
}

TEST(WorldTest, ActiveIdsAscendingAndOwnerFiltered) {
  World world(ZoneId{1});
  for (const std::uint64_t id : {9u, 3u, 6u, 1u, 8u}) {
    world.upsert(makeEntity(id, EntityKind::kAvatar, id % 2 == 0 ? 2u : 1u));
  }
  const std::vector<EntityId> active = world.activeIds(ServerId{1});
  std::vector<std::uint64_t> values;
  for (const EntityId id : active) values.push_back(id.value);
  EXPECT_EQ(values, (std::vector<std::uint64_t>{1, 3, 9}));
}

}  // namespace
}  // namespace roia::rtf
