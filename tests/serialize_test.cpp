// Tests for the serialization substrate: primitive round-trips, varint edge
// cases, CRC32 vectors, frame encode/decode and corruption detection.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>

#include "common/rng.hpp"
#include "serialize/byte_buffer.hpp"
#include "serialize/crc32.hpp"
#include "serialize/message.hpp"

namespace roia::ser {
namespace {

TEST(ByteBufferTest, PrimitiveRoundTrip) {
  ByteWriter w;
  w.writeU8(0xAB);
  w.writeU16(0xBEEF);
  w.writeU32(0xDEADBEEF);
  w.writeU64(0x0123456789ABCDEFULL);
  w.writeI32(-42);
  w.writeI64(-1234567890123LL);
  w.writeF32(3.5f);
  w.writeF64(-2.25);
  w.writeBool(true);
  w.writeBool(false);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.readU8(), 0xAB);
  EXPECT_EQ(r.readU16(), 0xBEEF);
  EXPECT_EQ(r.readU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.readU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.readI32(), -42);
  EXPECT_EQ(r.readI64(), -1234567890123LL);
  EXPECT_FLOAT_EQ(r.readF32(), 3.5f);
  EXPECT_DOUBLE_EQ(r.readF64(), -2.25);
  EXPECT_TRUE(r.readBool());
  EXPECT_FALSE(r.readBool());
  EXPECT_TRUE(r.atEnd());
}

TEST(ByteBufferTest, StringsAndBytes) {
  ByteWriter w;
  w.writeString("hello ROIA");
  w.writeString("");
  const std::vector<std::uint8_t> blob{1, 2, 3, 255};
  w.writeBytes(blob);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.readString(), "hello ROIA");
  EXPECT_EQ(r.readString(), "");
  EXPECT_EQ(r.readBytes(), blob);
  EXPECT_TRUE(r.atEnd());
}

TEST(ByteBufferTest, TruncatedReadThrows) {
  ByteWriter w;
  w.writeU32(1);
  ByteReader r(w.bytes());
  r.readU16();
  EXPECT_THROW(r.readU32(), DecodeError);
}

TEST(ByteBufferTest, TruncatedStringThrows) {
  ByteWriter w;
  w.writeVarU64(100);  // claims 100 bytes follow, none do
  ByteReader r(w.bytes());
  EXPECT_THROW(r.readString(), DecodeError);
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, Unsigned) {
  ByteWriter w;
  w.writeVarU64(GetParam());
  ByteReader r(w.bytes());
  EXPECT_EQ(r.readVarU64(), GetParam());
  EXPECT_TRUE(r.atEnd());
}

INSTANTIATE_TEST_SUITE_P(EdgeValues, VarintRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                                           (1ULL << 32) - 1, 1ULL << 32, (1ULL << 56) + 123,
                                           std::numeric_limits<std::uint64_t>::max()));

class SignedVarintRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SignedVarintRoundTrip, Signed) {
  ByteWriter w;
  w.writeVarI64(GetParam());
  ByteReader r(w.bytes());
  EXPECT_EQ(r.readVarI64(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(EdgeValues, SignedVarintRoundTrip,
                         ::testing::Values(0LL, 1LL, -1LL, 63LL, -64LL, 64LL, -65LL,
                                           std::numeric_limits<std::int64_t>::max(),
                                           std::numeric_limits<std::int64_t>::min()));

TEST(VarintTest, SmallValuesAreOneByte) {
  for (std::uint64_t v : {0ULL, 1ULL, 127ULL}) {
    ByteWriter w;
    w.writeVarU64(v);
    EXPECT_EQ(w.size(), 1u) << v;
  }
  ByteWriter w;
  w.writeVarU64(128);
  EXPECT_EQ(w.size(), 2u);
}

TEST(VarintTest, ZigzagMapping) {
  EXPECT_EQ(zigzagEncode(0), 0u);
  EXPECT_EQ(zigzagEncode(-1), 1u);
  EXPECT_EQ(zigzagEncode(1), 2u);
  EXPECT_EQ(zigzagEncode(-2), 3u);
  for (std::int64_t v : {-1000000LL, -3LL, 0LL, 5LL, 99999LL}) {
    EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
  }
}

TEST(VarintTest, RandomizedRoundTrip) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.next() >> (rng.uniformInt(0, 63));
    ByteWriter w;
    w.writeVarU64(v);
    ByteReader r(w.bytes());
    ASSERT_EQ(r.readVarU64(), v);
  }
}

TEST(VarintTest, MalformedOverlongThrows) {
  // 11 continuation bytes cannot encode a valid u64.
  std::vector<std::uint8_t> bad(11, 0x80);
  ByteReader r(bad);
  EXPECT_THROW(r.readVarU64(), DecodeError);
}

TEST(Crc32Test, KnownVectors) {
  // Standard test vector: CRC32("123456789") = 0xCBF43926.
  const std::string s = "123456789";
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  EXPECT_EQ(crc32(std::span(p, s.size())), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string s = "the quick brown fox jumps over the lazy dog";
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  const auto all = std::span(p, s.size());
  std::uint32_t state = crc32Init();
  state = crc32Update(state, all.subspan(0, 10));
  state = crc32Update(state, all.subspan(10));
  EXPECT_EQ(crc32Final(state), crc32(all));
}

TEST(FrameTest, RoundTrip) {
  Frame frame;
  frame.type = MessageType::kStateUpdate;
  frame.payload = {1, 2, 3, 4, 5};
  const auto bytes = encodeFrame(frame);
  EXPECT_EQ(bytes.size(), encodedFrameSize(frame.payload.size()));
  const Frame decoded = decodeFrame(bytes);
  EXPECT_EQ(decoded.type, MessageType::kStateUpdate);
  EXPECT_EQ(decoded.payload, frame.payload);
}

TEST(FrameTest, EmptyPayload) {
  Frame frame;
  frame.type = MessageType::kControl;
  const Frame decoded = decodeFrame(encodeFrame(frame));
  EXPECT_TRUE(decoded.payload.empty());
}

TEST(FrameTest, CorruptionDetected) {
  Frame frame;
  frame.type = MessageType::kClientInput;
  frame.payload = {9, 8, 7, 6};
  auto bytes = encodeFrame(frame);
  bytes[5] ^= 0xFF;  // flip payload bits
  EXPECT_THROW(decodeFrame(bytes), DecodeError);
}

TEST(FrameTest, BadMagicDetected) {
  Frame frame;
  frame.type = MessageType::kClientInput;
  frame.payload = {1};
  auto bytes = encodeFrame(frame);
  // Corrupt the magic AND fix up the CRC so only the magic check can fail.
  bytes[0] ^= 0x01;
  const auto body = std::span(bytes).subspan(0, bytes.size() - 4);
  const std::uint32_t crc = crc32(body);
  std::memcpy(bytes.data() + bytes.size() - 4, &crc, 4);
  EXPECT_THROW(decodeFrame(bytes), DecodeError);
}

TEST(FrameTest, TooShortThrows) {
  std::vector<std::uint8_t> tiny{1, 2, 3};
  EXPECT_THROW(decodeFrame(tiny), DecodeError);
}

TEST(FrameTest, RandomizedPayloadRoundTrip) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Frame frame;
    frame.type = MessageType::kForwardedInput;
    const std::size_t len = rng.uniformInt(0, 300);
    frame.payload.resize(len);
    for (auto& b : frame.payload) b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    const Frame decoded = decodeFrame(encodeFrame(frame));
    ASSERT_EQ(decoded.payload, frame.payload);
  }
}

TEST(FrameTest, EncodedSizePredictionMatches) {
  for (std::size_t payload : {0u, 1u, 127u, 128u, 5000u}) {
    Frame frame;
    frame.type = MessageType::kMonitoring;
    frame.payload.assign(payload, 0x5A);
    EXPECT_EQ(encodeFrame(frame).size(), encodedFrameSize(payload)) << payload;
  }
}

}  // namespace
}  // namespace roia::ser
