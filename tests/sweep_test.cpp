// Tests for the parallel sweep runner: result ordering, inline serial
// execution, exception propagation, the ROIA_BENCH_THREADS knob and the
// telemetry serial override — plus the headline determinism contract:
// measurement sweeps and managed/chaos sessions produce bit-identical
// outputs at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/sweep.hpp"
#include "game/measurement.hpp"
#include "model/tick_model.hpp"
#include "rms/session.hpp"

namespace roia {
namespace {

// Each gtest case runs in its own process (ctest invokes the binary with a
// filter per test), so mutating ROIA_BENCH_THREADS here cannot leak into
// other tests.
struct ThreadsEnvGuard {
  void set(const char* value) { ::setenv("ROIA_BENCH_THREADS", value, 1); }
  ~ThreadsEnvGuard() { ::unsetenv("ROIA_BENCH_THREADS"); }
};

TEST(SweepRunnerTest, ResultsComeBackInIndexOrder) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const std::vector<std::size_t> results = par::runSweep<std::size_t>(
        17, [](std::size_t i) { return i * i; }, threads);
    ASSERT_EQ(results.size(), 17u);
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], i * i) << "threads=" << threads;
    }
  }
}

TEST(SweepRunnerTest, SingleThreadRunsInlineInAscendingOrder) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  par::forEachIndex(
      8,
      [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
      },
      1);
  std::vector<std::size_t> ascending(8);
  std::iota(ascending.begin(), ascending.end(), 0u);
  EXPECT_EQ(order, ascending);
}

TEST(SweepRunnerTest, MultiThreadRunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  par::forEachIndex(
      hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(SweepRunnerTest, ConfigOverloadMapsEachElement) {
  const std::vector<int> configs{3, 1, 4, 1, 5};
  const std::vector<int> doubled =
      par::runSweep<int>(configs, [](int value) { return value * 2; }, 4);
  EXPECT_EQ(doubled, (std::vector<int>{6, 2, 8, 2, 10}));
}

TEST(SweepRunnerTest, ExceptionsPropagateToCaller) {
  for (const std::size_t threads : {1u, 4u}) {
    EXPECT_THROW(par::forEachIndex(
                     16,
                     [](std::size_t i) {
                       if (i == 7) throw std::runtime_error("job failed");
                     },
                     threads),
                 std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(SweepRunnerTest, EmptySweepIsANoOp) {
  const std::vector<int> results = par::runSweep<int>(
      0, [](std::size_t) { return 1; }, 4);
  EXPECT_TRUE(results.empty());
}

TEST(SweepRunnerTest, EnvKnobSelectsThreadCount) {
  ThreadsEnvGuard env;
  env.set("3");
  EXPECT_EQ(par::configuredSweepThreads(), 3u);
  EXPECT_EQ(par::sweepThreads(), 3u);
  env.set("1");
  EXPECT_EQ(par::configuredSweepThreads(), 1u);
  env.set("0");  // malformed / non-positive values fall back to serial
  EXPECT_EQ(par::configuredSweepThreads(), 1u);
  env.set("banana");
  EXPECT_EQ(par::configuredSweepThreads(), 1u);
}

TEST(SweepRunnerTest, SerialOverrideForcesOneThread) {
  ThreadsEnvGuard env;
  env.set("8");
  EXPECT_EQ(par::sweepThreads(), 8u);
  par::setSerialOverride(true);
  EXPECT_TRUE(par::serialOverride());
  EXPECT_EQ(par::sweepThreads(), 1u);
  EXPECT_EQ(par::configuredSweepThreads(), 8u);  // raw knob unaffected
  par::setSerialOverride(false);
  EXPECT_EQ(par::sweepThreads(), 8u);
}

// --- Determinism across thread counts ---

model::ModelParameters syntheticParameters() {
  model::ModelParameters params;
  params.set(model::ParamKind::kUaDser, model::ParamFunction::linear(1.0, 0.0015));
  params.set(model::ParamKind::kUa, model::ParamFunction::quadratic(1.2, 0.009, 1.2e-4));
  params.set(model::ParamKind::kAoi, model::ParamFunction::quadratic(0.1, 0.45, 0.8e-4));
  params.set(model::ParamKind::kSu, model::ParamFunction::linear(1.5, 0.2));
  params.set(model::ParamKind::kFaDser, model::ParamFunction::linear(0.55, 0.0007));
  params.set(model::ParamKind::kFa, model::ParamFunction::linear(0.9, 0.0023));
  params.set(model::ParamKind::kMigIni, model::ParamFunction::linear(150.0, 5.0));
  params.set(model::ParamKind::kMigRcv, model::ParamFunction::linear(80.0, 2.2));
  return params;
}

void expectSamplesIdentical(const game::ParameterSamples& a, const game::ParameterSamples& b) {
  for (std::size_t p = 0; p < rtf::kPhaseCount; ++p) {
    ASSERT_EQ(a.perItem[p].x, b.perItem[p].x) << "phase " << p;
    ASSERT_EQ(a.perItem[p].y, b.perItem[p].y) << "phase " << p;
  }
}

TEST(SweepDeterminismTest, MeasurementSweepsAreBitIdenticalAcrossThreadCounts) {
  ThreadsEnvGuard env;
  game::MeasurementConfig config;
  config.warmup = SimDuration::seconds(1);
  config.measure = SimDuration::seconds(1);
  const std::vector<std::size_t> populations{12, 24, 36};

  env.set("1");
  const game::ParameterSamples serialRep =
      game::measureReplicationParameters(config, populations);
  const game::ParameterSamples serialMig =
      game::measureMigrationParameters(config, populations, 2);
  env.set("4");
  const game::ParameterSamples parallelRep =
      game::measureReplicationParameters(config, populations);
  const game::ParameterSamples parallelMig =
      game::measureMigrationParameters(config, populations, 2);

  expectSamplesIdentical(serialRep, parallelRep);
  expectSamplesIdentical(serialMig, parallelMig);
}

std::vector<double> summaryFingerprint(const rms::SessionSummary& summary) {
  std::vector<double> fp;
  fp.push_back(static_cast<double>(summary.peakUsers));
  fp.push_back(static_cast<double>(summary.peakServers));
  fp.push_back(summary.maxTickMs);
  fp.push_back(static_cast<double>(summary.violationPeriods));
  fp.push_back(static_cast<double>(summary.migrations));
  fp.push_back(static_cast<double>(summary.replicasAdded));
  fp.push_back(static_cast<double>(summary.replicasRemoved));
  fp.push_back(summary.serverSeconds);
  fp.push_back(summary.clientUpdateRateAvgHz);
  fp.push_back(summary.clientWorstGapMs);
  fp.push_back(static_cast<double>(summary.crashesInjected));
  fp.push_back(static_cast<double>(summary.crashesDetected));
  fp.push_back(static_cast<double>(summary.clientsRehomed));
  fp.push_back(static_cast<double>(summary.clientsLost));
  for (const rms::TimelinePoint& p : summary.timeline) {
    fp.push_back(p.timeSec);
    fp.push_back(static_cast<double>(p.users));
    fp.push_back(static_cast<double>(p.servers));
    fp.push_back(static_cast<double>(p.pendingServers));
    fp.push_back(p.avgCpuLoad);
    fp.push_back(p.avgTickMs);
    fp.push_back(p.maxTickMs);
    fp.push_back(static_cast<double>(p.migrationsOrdered));
    fp.push_back(p.violation ? 1.0 : 0.0);
    fp.push_back(static_cast<double>(p.crashesDetected));
    fp.push_back(static_cast<double>(p.clientsRehomed));
  }
  return fp;
}

TEST(SweepDeterminismTest, ManagedAndChaosSessionsAreBitIdenticalAcrossThreadCounts) {
  // Two per-config jobs — a clean Fig. 8-style dynamic session and a chaos
  // session (loss + crash) — swept at 1 and 4 threads. Per-config outputs
  // must be bit-identical: the fan-out must not change any RNG draw or
  // event order inside a config.
  const model::TickModel tickModel(syntheticParameters());

  auto makeConfigs = [] {
    std::vector<rms::ManagedSessionConfig> configs(2);
    for (rms::ManagedSessionConfig& config : configs) {
      config.scenario = game::WorkloadScenario::paperSession(
          40, SimDuration::seconds(6), SimDuration::seconds(3), SimDuration::seconds(6));
      config.tail = SimDuration::seconds(2);
      config.rms.controlPeriod = SimDuration::seconds(1);
      config.rms.serverStartupDelay = SimDuration::seconds(2);
    }
    configs[1].rms.useNetworkMonitoring = true;
    configs[1].rms.detectFailures = true;
    // Two replicas from the start so the mid-plateau crash has a victim
    // (the synthetic model's capacity never triggers replication at n=40),
    // and no removal hysteresis so RMS cannot shrink back to one before the
    // crash fires.
    configs[1].initialReplicas = 2;
    configs[1].modelStrategy.removalFraction = 0.0;
    rms::SessionFaultPlan plan;
    plan.link.dropProbability = 0.03;
    plan.crashAt = SimDuration::seconds(8);
    configs[1].faults = plan;
    return configs;
  };

  auto runAll = [&](std::size_t threads) {
    return par::runSweep<rms::SessionSummary>(
        makeConfigs(),
        [&](const rms::ManagedSessionConfig& config) {
          return rms::runManagedSession(config, tickModel);
        },
        threads);
  };

  const std::vector<rms::SessionSummary> serial = runAll(1);
  const std::vector<rms::SessionSummary> parallel = runAll(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].policy, parallel[i].policy);
    EXPECT_EQ(summaryFingerprint(serial[i]), summaryFingerprint(parallel[i])) << "config " << i;
  }
  // The chaos config actually exercised the fault plan.
  EXPECT_GE(serial[1].crashesInjected, 1u);
}

}  // namespace
}  // namespace roia
