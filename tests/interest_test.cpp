// Tests for the interest-management module: both algorithms must return
// identical visibility sets (the grid is an exact index, not an
// approximation), while their costs scale differently with population.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "game/fps_app.hpp"
#include "game/interest.hpp"
#include "rtf/world.hpp"

namespace roia::game {
namespace {

struct Fixture {
  rtf::World world{ZoneId{1}};
  sim::CpuCostModel cpu;
  rtf::CostMeter meter{cpu};
  rtf::TickProbes probes;

  Fixture() { meter.beginTick(probes); }

  void populate(std::size_t n, std::uint64_t seed, Vec2 extent = {1000, 1000}) {
    Rng rng(seed);
    for (std::uint64_t id = 1; id <= n; ++id) {
      rtf::EntityRecord e;
      e.id = EntityId{id};
      e.kind = rtf::EntityKind::kAvatar;
      e.owner = ServerId{1};
      e.client = ClientId{id};
      e.position = {rng.uniform(0, extent.x), rng.uniform(0, extent.y)};
      world.upsert(e);
    }
  }

  double chargedCost() {
    double total = 0.0;
    for (const double v : probes.phaseMicros) total += v;
    return total;
  }
};

std::vector<EntityId> idsOfSlots(const rtf::World& world, std::span<const std::uint32_t> slots) {
  std::vector<EntityId> ids;
  ids.reserve(slots.size());
  for (const std::uint32_t slot : slots) ids.push_back(EntityId{world.ids()[slot]});
  return ids;
}

std::vector<EntityId> queryOf(InterestPolicy& policy, Fixture& f, rtf::ConstEntityRef viewer,
                              double radius) {
  std::vector<std::uint32_t> out;
  policy.query(f.world, viewer, radius, f.meter, out);
  return idsOfSlots(f.world, out);
}

class InterestEquivalence : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(InterestEquivalence, GridMatchesEuclideanExactly) {
  const auto [population, radius] = GetParam();
  Fixture f;
  f.populate(population, 40 + population);

  EuclideanInterest euclid;
  GridInterest grid(radius);  // cell size = radius
  euclid.prepare(f.world, f.meter);
  grid.prepare(f.world, f.meter);

  f.world.forEach([&](rtf::ConstEntityRef viewer) {
    const auto fromEuclid = queryOf(euclid, f, viewer, radius);
    const auto fromGrid = queryOf(grid, f, viewer, radius);
    ASSERT_EQ(fromEuclid, fromGrid) << "viewer " << viewer.id.value << " n=" << population
                                    << " r=" << radius;
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, InterestEquivalence,
                         ::testing::Combine(::testing::Values(10u, 60u, 150u),
                                            ::testing::Values(50.0, 220.0, 500.0)));

TEST(InterestTest, RandomizedWorldsGridMatchesEuclidean) {
  // Property test: on worlds with random extents, radii, clustering and a
  // mix of avatars and NPCs, both policies must return the same visible set
  // for every viewer — while reusing their output buffers across calls.
  Rng scenarioRng(20260805);
  for (int round = 0; round < 12; ++round) {
    Fixture f;
    const std::size_t n = 5 + static_cast<std::size_t>(scenarioRng.uniform(0, 120));
    const Vec2 extent{scenarioRng.uniform(100, 1500), scenarioRng.uniform(100, 1500)};
    const double radius = scenarioRng.uniform(10, 600);
    Rng rng(1000 + static_cast<std::uint64_t>(round));
    for (std::uint64_t id = 1; id <= n; ++id) {
      rtf::EntityRecord e;
      e.id = EntityId{id};
      e.kind = (id % 4 == 0) ? rtf::EntityKind::kNpc : rtf::EntityKind::kAvatar;
      e.owner = ServerId{1};
      if (e.isAvatar()) e.client = ClientId{id};
      // Half the population clusters into a corner blob to stress dense cells.
      e.position = (id % 2 == 0)
                       ? Vec2{rng.uniform(0, extent.x * 0.2), rng.uniform(0, extent.y * 0.2)}
                       : Vec2{rng.uniform(0, extent.x), rng.uniform(0, extent.y)};
      f.world.upsert(e);
    }

    EuclideanInterest euclid;
    GridInterest grid(radius);
    euclid.prepare(f.world, f.meter);
    grid.prepare(f.world, f.meter);

    std::vector<std::uint32_t> euclidOut;
    std::vector<std::uint32_t> gridOut;
    f.world.forEach([&](rtf::ConstEntityRef viewer) {
      euclid.query(f.world, viewer, radius, f.meter, euclidOut);
      grid.query(f.world, viewer, radius, f.meter, gridOut);
      ASSERT_EQ(euclidOut, gridOut)
          << "round " << round << " viewer " << viewer.id.value << " n=" << n << " r=" << radius;
    });
  }
}

TEST(InterestTest, QueryCostIndependentOfBufferReuse) {
  // The scratch-buffer API must charge the same simulated cost whether the
  // caller reuses one vector across calls or hands over a fresh one each
  // time — cost models the work, not the allocation pattern.
  Fixture reuseFixture;
  reuseFixture.populate(80, 11);
  Fixture freshFixture;
  freshFixture.populate(80, 11);

  for (const bool useGrid : {false, true}) {
    std::unique_ptr<InterestPolicy> reusePolicy;
    std::unique_ptr<InterestPolicy> freshPolicy;
    if (useGrid) {
      reusePolicy = std::make_unique<GridInterest>(220.0);
      freshPolicy = std::make_unique<GridInterest>(220.0);
    } else {
      reusePolicy = std::make_unique<EuclideanInterest>();
      freshPolicy = std::make_unique<EuclideanInterest>();
    }
    reusePolicy->prepare(reuseFixture.world, reuseFixture.meter);
    freshPolicy->prepare(freshFixture.world, freshFixture.meter);
    std::vector<std::uint32_t> scratch;
    reuseFixture.world.forEach([&](rtf::ConstEntityRef viewer) {
      reusePolicy->query(reuseFixture.world, viewer, 220.0, reuseFixture.meter, scratch);
    });
    freshFixture.world.forEach([&](rtf::ConstEntityRef viewer) {
      std::vector<std::uint32_t> fresh;
      freshPolicy->query(freshFixture.world, viewer, 220.0, freshFixture.meter, fresh);
    });
  }
  EXPECT_DOUBLE_EQ(reuseFixture.chargedCost(), freshFixture.chargedCost());
}

TEST(InterestTest, GridHandlesEdgePositions) {
  Fixture f;
  // Entities exactly on cell boundaries and arena corners.
  std::uint64_t id = 1;
  for (const Vec2 pos : {Vec2{0, 0}, Vec2{220, 220}, Vec2{440, 0}, Vec2{999.99, 999.99},
                         Vec2{220, 0}, Vec2{0, 220}}) {
    rtf::EntityRecord e;
    e.id = EntityId{id++};
    e.kind = rtf::EntityKind::kAvatar;
    e.owner = ServerId{1};
    e.position = pos;
    f.world.upsert(e);
  }
  EuclideanInterest euclid;
  GridInterest grid(220.0);
  grid.prepare(f.world, f.meter);
  f.world.forEach([&](rtf::ConstEntityRef viewer) {
    ASSERT_EQ(queryOf(euclid, f, viewer, 220.0), queryOf(grid, f, viewer, 220.0));
  });
}

TEST(InterestTest, GridQueryCheaperAtScaleWithLocalClusters) {
  // Viewer in one corner, the mass of the population in the opposite one:
  // the grid touches only nearby cells while Euclidean scans everyone.
  auto costOf = [](bool useGrid) {
    Fixture f;
    rtf::EntityRecord viewer;
    viewer.id = EntityId{1};
    viewer.kind = rtf::EntityKind::kAvatar;
    viewer.owner = ServerId{1};
    viewer.position = {10, 10};
    f.world.upsert(viewer);
    Rng rng(3);
    for (std::uint64_t id = 2; id <= 400; ++id) {
      rtf::EntityRecord e;
      e.id = EntityId{id};
      e.kind = rtf::EntityKind::kAvatar;
      e.owner = ServerId{1};
      e.position = {rng.uniform(800, 1000), rng.uniform(800, 1000)};
      f.world.upsert(e);
    }
    std::unique_ptr<InterestPolicy> policy;
    if (useGrid) {
      policy = std::make_unique<GridInterest>(220.0);
    } else {
      policy = std::make_unique<EuclideanInterest>();
    }
    policy->prepare(f.world, f.meter);
    const double costBefore = f.chargedCost();
    std::vector<std::uint32_t> out;
    policy->query(f.world, *f.world.find(EntityId{1}), 220.0, f.meter, out);
    return f.chargedCost() - costBefore;  // query cost only
  };
  EXPECT_LT(costOf(true), 0.25 * costOf(false));
}

TEST(InterestTest, GridPrepareCostScalesWithPopulation) {
  auto prepareCost = [](std::size_t n) {
    Fixture f;
    f.populate(n, 7);
    GridInterest grid(220.0);
    grid.prepare(f.world, f.meter);
    return f.chargedCost();
  };
  EXPECT_NEAR(prepareCost(200), 2.0 * prepareCost(100), prepareCost(100) * 0.1);
}

TEST(InterestTest, FpsApplicationSwapsPolicies) {
  FpsConfig config;
  FpsApplication app(config);
  EXPECT_EQ(app.interestPolicy().name(), "euclidean");
  app.setInterestPolicy(std::make_unique<GridInterest>(config.aoiRadius));
  EXPECT_EQ(app.interestPolicy().name(), "grid");
  app.setInterestPolicy(nullptr);  // ignored
  EXPECT_EQ(app.interestPolicy().name(), "grid");

  // AOI queries through the app now go through the grid and still work.
  Fixture f;
  f.populate(50, 9);
  app.onTickBegin(f.world, f.meter);
  std::vector<std::uint32_t> visible;
  app.computeAreaOfInterest(f.world, *f.world.find(EntityId{1}), f.meter, visible);
  FpsApplication euclidApp(config);
  euclidApp.onTickBegin(f.world, f.meter);
  std::vector<std::uint32_t> fromEuclid;
  euclidApp.computeAreaOfInterest(f.world, *f.world.find(EntityId{1}), f.meter, fromEuclid);
  EXPECT_EQ(visible, fromEuclid);
}

TEST(InterestTest, EmptyWorldQueriesAreSafe) {
  Fixture f;
  rtf::EntityRecord lonely;
  lonely.id = EntityId{1};
  lonely.kind = rtf::EntityKind::kAvatar;
  lonely.owner = ServerId{1};
  lonely.position = {500, 500};
  f.world.upsert(lonely);
  EuclideanInterest euclid;
  GridInterest grid(220.0);
  grid.prepare(f.world, f.meter);
  EXPECT_TRUE(queryOf(euclid, f, lonely, 220.0).empty());
  EXPECT_TRUE(queryOf(grid, f, lonely, 220.0).empty());
}

}  // namespace
}  // namespace roia::game
