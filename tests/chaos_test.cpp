// Chaos suite: deterministic network fault injection, the reliable
// control-plane transport, and crash-failure detection + recovery in
// RTF-RMS. The acceptance scenarios of the robustness work live here:
// a 20-client session completing migrations under 5% uniform loss, a
// mid-session crash detected within three heartbeat intervals with no
// client permanently lost, and bit-identical timelines for identical
// seeds and fault plans.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "game/bots.hpp"
#include "game/fps_app.hpp"
#include "net/fault.hpp"
#include "net/network.hpp"
#include "rms/manager.hpp"
#include "rms/resource_pool.hpp"
#include "rms/strategy.hpp"
#include "rtf/cluster.hpp"
#include "rtf/reliable.hpp"
#include "serialize/message.hpp"
#include "sim/simulation.hpp"

namespace roia {
namespace {

ser::Frame taggedFrame(std::size_t tag) {
  ser::Frame frame;
  frame.type = ser::MessageType::kControl;
  frame.payload.assign(tag, 0x42);  // payload size doubles as the tag
  return frame;
}

struct NetFixture {
  explicit NetFixture(std::uint64_t seed = 1) : net(sim), faults(seed) {
    net::LinkParams params;
    params.latency = SimDuration::milliseconds(1);
    params.bandwidthBytesPerSec = 1e12;
    net.setDefaultLinkParams(params);
    net.setFaultInjector(&faults);
  }

  sim::Simulation sim;
  net::Network net;
  net::FaultInjector faults;
};

// ---------- fault injector ----------

TEST(FaultInjectorTest, InertInjectorIsTransparent) {
  // With an attached but unconfigured injector, delivery must be identical
  // to a plain network: the inert path consumes no randomness.
  std::vector<std::pair<std::int64_t, std::size_t>> withInjector, without;
  for (int pass = 0; pass < 2; ++pass) {
    sim::Simulation sim;
    net::Network net(sim);
    net::LinkParams params;
    params.latency = SimDuration::milliseconds(1);
    params.bandwidthBytesPerSec = 1e12;
    net.setDefaultLinkParams(params);
    net::FaultInjector faults(99);
    if (pass == 0) net.setFaultInjector(&faults);
    auto& out = pass == 0 ? withInjector : without;
    const NodeId a = net.addNode(nullptr);
    const NodeId b = net.addNode([&](NodeId, const ser::Frame& f) {
      out.emplace_back(sim.now().micros, f.payload.size());
    });
    for (std::size_t i = 1; i <= 20; ++i) net.send(a, b, taggedFrame(i));
    sim.runAll();
  }
  EXPECT_EQ(withInjector, without);
}

TEST(FaultInjectorTest, FullDropLosesEverything) {
  NetFixture f;
  net::FaultParams params;
  params.dropProbability = 1.0;
  f.faults.setDefaultFaults(params);
  int delivered = 0;
  const NodeId a = f.net.addNode(nullptr);
  const NodeId b = f.net.addNode([&](NodeId, const ser::Frame&) { ++delivered; });
  for (int i = 0; i < 10; ++i) f.net.send(a, b, taggedFrame(4));
  f.sim.runAll();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(f.faults.stats().framesDropped, 10u);
  EXPECT_EQ(f.faults.stats().framesJudged, 10u);
}

TEST(FaultInjectorTest, DropRateIsRoughlyRespected) {
  NetFixture f(0xD201);
  net::FaultParams params;
  params.dropProbability = 0.3;
  f.faults.setDefaultFaults(params);
  int delivered = 0;
  const NodeId a = f.net.addNode(nullptr);
  const NodeId b = f.net.addNode([&](NodeId, const ser::Frame&) { ++delivered; });
  for (int i = 0; i < 1000; ++i) f.net.send(a, b, taggedFrame(4));
  f.sim.runAll();
  EXPECT_GT(delivered, 600);
  EXPECT_LT(delivered, 800);
}

TEST(FaultInjectorTest, DuplicationDeliversCopies) {
  NetFixture f;
  net::FaultParams params;
  params.duplicateProbability = 1.0;
  f.faults.setDefaultFaults(params);
  int delivered = 0;
  const NodeId a = f.net.addNode(nullptr);
  const NodeId b = f.net.addNode([&](NodeId, const ser::Frame&) { ++delivered; });
  for (int i = 0; i < 10; ++i) f.net.send(a, b, taggedFrame(4));
  f.sim.runAll();
  EXPECT_EQ(delivered, 20);
  EXPECT_EQ(f.faults.stats().framesDuplicated, 10u);
}

TEST(FaultInjectorTest, JitterStaysBoundedAndFifoHoldsWithoutReorder) {
  NetFixture f(0x71773);
  net::FaultParams params;
  params.jitterMax = SimDuration::milliseconds(5);
  f.faults.setDefaultFaults(params);
  std::vector<std::pair<std::int64_t, std::size_t>> arrivals;
  const NodeId a = f.net.addNode(nullptr);
  const NodeId b = f.net.addNode([&](NodeId, const ser::Frame& frame) {
    arrivals.emplace_back(f.sim.now().micros, frame.payload.size());
  });
  for (std::size_t i = 1; i <= 50; ++i) f.net.send(a, b, taggedFrame(i));
  f.sim.runAll();
  ASSERT_EQ(arrivals.size(), 50u);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    // Latency 1 ms + up to 5 ms jitter (transmit time is negligible).
    EXPECT_GE(arrivals[i].first, 1000);
    EXPECT_LE(arrivals[i].first, 6100);
    // Without the reorder fault the per-link FIFO clamp still holds.
    EXPECT_EQ(arrivals[i].second, i + 1);
  }
  EXPECT_GT(f.faults.stats().framesDelayed, 0u);
}

TEST(FaultInjectorTest, ReorderingOvertakesEarlierFrames) {
  NetFixture f(0x2e02de2);
  net::FaultParams params;
  params.jitterMax = SimDuration::milliseconds(10);
  params.reorderProbability = 1.0;
  f.faults.setDefaultFaults(params);
  std::vector<std::size_t> order;
  const NodeId a = f.net.addNode(nullptr);
  const NodeId b = f.net.addNode(
      [&](NodeId, const ser::Frame& frame) { order.push_back(frame.payload.size()); });
  for (std::size_t i = 1; i <= 50; ++i) f.net.send(a, b, taggedFrame(i));
  f.sim.runAll();
  ASSERT_EQ(order.size(), 50u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
  EXPECT_GT(f.faults.stats().framesReordered, 0u);
}

TEST(FaultInjectorTest, PartitionCutsTrafficUntilHealed) {
  NetFixture f;
  std::vector<std::int64_t> arrivals;
  const NodeId a = f.net.addNode(nullptr);
  const NodeId b = f.net.addNode(
      [&](NodeId, const ser::Frame&) { arrivals.push_back(f.sim.now().micros); });
  f.faults.partition("split", {b}, SimTime{10'000}, SimTime{50'000});

  f.net.send(a, b, taggedFrame(1));  // t=0: before the split
  f.sim.runUntil(SimTime{20'000});
  f.net.send(a, b, taggedFrame(2));  // t=20ms: inside the split -> dropped
  EXPECT_TRUE(f.faults.isPartitioned(a, b, SimTime{20'000}));
  EXPECT_TRUE(f.faults.isPartitioned(b, a, SimTime{20'000}));  // both directions
  f.sim.runUntil(SimTime{60'000});
  f.net.send(a, b, taggedFrame(3));  // t=60ms: healed
  f.sim.runAll();

  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 1000);
  EXPECT_EQ(arrivals[1], 61'000);
  EXPECT_EQ(f.faults.stats().framesPartitioned, 1u);
}

TEST(FaultInjectorTest, HealMovesThePartitionEnd) {
  NetFixture f;
  f.faults.partition("split", {NodeId{1}}, SimTime{0});  // open-ended
  EXPECT_TRUE(f.faults.isPartitioned(NodeId{1}, NodeId{2}, SimTime{100'000}));
  f.faults.heal("split", SimTime{50'000});
  EXPECT_TRUE(f.faults.isPartitioned(NodeId{1}, NodeId{2}, SimTime{49'999}));
  EXPECT_FALSE(f.faults.isPartitioned(NodeId{1}, NodeId{2}, SimTime{50'000}));
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  // The whole point of seeding the injector: identical seed + identical
  // traffic => identical faults, microsecond for microsecond.
  auto run = [](std::uint64_t seed) {
    NetFixture f(seed);
    net::FaultParams params;
    params.dropProbability = 0.2;
    params.duplicateProbability = 0.1;
    params.jitterMax = SimDuration::milliseconds(4);
    params.reorderProbability = 0.5;
    f.faults.setDefaultFaults(params);
    std::vector<std::pair<std::int64_t, std::size_t>> arrivals;
    const NodeId a = f.net.addNode(nullptr);
    const NodeId b = f.net.addNode([&](NodeId, const ser::Frame& frame) {
      arrivals.emplace_back(f.sim.now().micros, frame.payload.size());
    });
    for (std::size_t i = 1; i <= 200; ++i) f.net.send(a, b, taggedFrame(i % 32 + 1));
    f.sim.runAll();
    return arrivals;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

// ---------- reliable transport ----------

struct ReliablePeer {
  ReliablePeer(sim::Simulation& sim, net::Network& net, rtf::ReliableConfig config = {}) {
    node = net.addNode([this](NodeId from, const ser::Frame& frame) {
      if (transport->onFrame(from, frame)) return;
      ADD_FAILURE() << "unexpected non-reliable frame";
    });
    transport = std::make_unique<rtf::ReliableTransport>(sim, net, node, config);
    transport->setDeliver([this](NodeId, const ser::Frame& inner) {
      deliveredTags.push_back(inner.payload.size());
    });
  }

  NodeId node;
  std::unique_ptr<rtf::ReliableTransport> transport;
  std::vector<std::size_t> deliveredTags;
};

TEST(ReliableTransportTest, ExactlyOnceDeliveryUnderLossDupAndReorder) {
  NetFixture f(0xBADBEEF);
  net::FaultParams params;
  params.dropProbability = 0.3;
  params.duplicateProbability = 0.3;
  params.jitterMax = SimDuration::milliseconds(20);
  params.reorderProbability = 0.5;
  f.faults.setDefaultFaults(params);

  ReliablePeer sender(f.sim, f.net);
  ReliablePeer receiver(f.sim, f.net);
  constexpr std::size_t kMessages = 200;
  for (std::size_t i = 1; i <= kMessages; ++i) {
    sender.transport->send(receiver.node, taggedFrame(i));
  }
  f.sim.runUntil(SimTime{SimDuration::seconds(30).micros});

  // Every message delivered exactly once despite the hostile link.
  ASSERT_EQ(receiver.deliveredTags.size(), kMessages);
  std::vector<std::size_t> sorted = receiver.deliveredTags;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < kMessages; ++i) EXPECT_EQ(sorted[i], i + 1);

  EXPECT_GT(sender.transport->stats().retransmissions, 0u);
  EXPECT_GT(receiver.transport->stats().duplicatesDropped, 0u);
  EXPECT_EQ(sender.transport->stats().abandoned, 0u);
  EXPECT_EQ(sender.transport->unackedCount(), 0u);
}

TEST(ReliableTransportTest, BackoffBoundsAttemptsAndAbandonsDeadPeer) {
  NetFixture f;
  net::FaultParams params;
  params.dropProbability = 1.0;  // the peer might as well not exist
  f.faults.setDefaultFaults(params);

  rtf::ReliableConfig config;
  config.maxAttempts = 4;
  ReliablePeer sender(f.sim, f.net, config);
  ReliablePeer receiver(f.sim, f.net);
  sender.transport->send(receiver.node, taggedFrame(1));
  sender.transport->send(receiver.node, taggedFrame(2));
  f.sim.runUntil(SimTime{SimDuration::seconds(60).micros});

  EXPECT_TRUE(receiver.deliveredTags.empty());
  EXPECT_EQ(sender.transport->stats().abandoned, 2u);
  // attempts = initial + (maxAttempts - 1) retransmissions, per message.
  EXPECT_EQ(sender.transport->stats().retransmissions, 2u * (config.maxAttempts - 1));
  EXPECT_EQ(sender.transport->unackedCount(), 0u);
}

TEST(ReliableTransportTest, CleanLinkCostsNoRetransmissions) {
  NetFixture f;
  ReliablePeer sender(f.sim, f.net);
  ReliablePeer receiver(f.sim, f.net);
  for (std::size_t i = 1; i <= 50; ++i) sender.transport->send(receiver.node, taggedFrame(i));
  f.sim.runUntil(SimTime{SimDuration::seconds(5).micros});

  EXPECT_EQ(receiver.deliveredTags.size(), 50u);
  EXPECT_EQ(sender.transport->stats().retransmissions, 0u);
  EXPECT_EQ(sender.transport->stats().acksReceived, 50u);
  EXPECT_EQ(receiver.transport->stats().duplicatesDropped, 0u);
}

// ---------- cluster-level chaos ----------

/// Strategy that never acts: lets the tests isolate the recovery path from
/// ordinary load management.
struct NoopStrategy : rms::Strategy {
  [[nodiscard]] std::string name() const override { return "noop"; }
  rms::Decision decide(const rms::ZoneView&) override { return {}; }
};

TEST(ChaosTest, MigrationsAndReplicaSyncCompleteUnderFivePercentLoss) {
  game::FpsApplication app;
  rtf::ClusterConfig clusterConfig;
  clusterConfig.seed = 0xC7A05;
  rtf::Cluster cluster(app, clusterConfig);
  net::FaultParams loss;
  loss.dropProbability = 0.05;  // 5% uniform loss on every link
  cluster.enableFaultInjection().setDefaultFaults(loss);

  const ZoneId zone = cluster.createZone("arena");
  const ServerId a = cluster.addServer(zone);
  const ServerId b = cluster.addServer(zone);
  std::vector<ClientId> clients;
  for (int i = 0; i < 20; ++i) {
    clients.push_back(cluster.connectClient(zone, std::make_unique<game::BotProvider>()));
  }
  cluster.run(SimDuration::seconds(2));

  // Swap every client to the other replica; under loss the hand-over relies
  // on the reliable transport to retransmit MigrationData and the ack.
  for (const ClientId c : clients) {
    const ServerId source = cluster.clientServer(c);
    ASSERT_TRUE(cluster.migrateClient(c, source == a ? b : a));
  }
  cluster.run(SimDuration::seconds(8));

  // Zero lost clients, zero stuck migrations.
  EXPECT_EQ(cluster.clientCount(), 20u);
  EXPECT_EQ(cluster.zoneUserCount(zone), 20u);
  EXPECT_EQ(cluster.server(a).clientIds(true).size() + cluster.server(b).clientIds(true).size(),
            20u);
  for (const ClientId c : clients) {
    const ServerId home = cluster.clientServer(c);
    EXPECT_TRUE(cluster.server(home).hasClient(c)) << "client " << c.value;
  }
  // Replica sync converged too: both replicas know all 20 avatars.
  EXPECT_EQ(cluster.server(a).world().avatarCount(), 20u);
  EXPECT_EQ(cluster.server(b).world().avatarCount(), 20u);
  EXPECT_GT(cluster.faultInjector()->stats().framesDropped, 0u);
}

namespace {

struct CrashRunResult {
  std::vector<rms::TimelinePoint> timeline;
  std::vector<rms::RecoveryRecord> recoveries;
  std::size_t clientsServed{0};
  std::size_t replicasAfter{0};
  std::int64_t crashAtMicros{0};
};

/// A 20-client session on two replicas with mild loss; the most-loaded
/// replica is killed mid-session and RTF-RMS must detect and recover.
CrashRunResult runCrashScenario(std::uint64_t seed) {
  game::FpsApplication app;
  rtf::ClusterConfig clusterConfig;
  clusterConfig.seed = seed;
  clusterConfig.serverTemplate.heartbeatPeriod = SimDuration::milliseconds(250);
  rtf::Cluster cluster(app, clusterConfig);
  net::FaultParams loss;
  loss.dropProbability = 0.01;
  loss.jitterMax = SimDuration::milliseconds(2);
  cluster.enableFaultInjection().setDefaultFaults(loss);
  cluster.attachMonitoringCollector();

  const ZoneId zone = cluster.createZone("arena");
  cluster.addServer(zone);
  cluster.addServer(zone);
  for (int i = 0; i < 20; ++i) {
    cluster.connectClient(zone, std::make_unique<game::BotProvider>());
  }

  rms::RmsConfig rmsConfig;
  rmsConfig.controlPeriod = SimDuration::milliseconds(100);
  rmsConfig.serverStartupDelay = SimDuration::milliseconds(500);
  rmsConfig.useNetworkMonitoring = true;
  rmsConfig.detectFailures = true;
  rmsConfig.heartbeatPeriod = SimDuration::milliseconds(250);
  rmsConfig.missedHeartbeats = 2;
  rms::RmsManager manager(cluster, zone, std::make_unique<NoopStrategy>(), rms::ResourcePool{},
                          rmsConfig);
  manager.start();
  cluster.run(SimDuration::seconds(2));

  // Kill the replica with the most users — the worst case for recovery.
  const std::vector<ServerId> replicas = cluster.zones().replicas(zone);
  ServerId victim = replicas.front();
  std::size_t most = 0;
  for (const ServerId id : replicas) {
    const std::size_t users = cluster.server(id).connectedUsers();
    if (users > most) {
      most = users;
      victim = id;
    }
  }
  CrashRunResult result;
  result.crashAtMicros = cluster.simulation().now().micros;
  cluster.crashServer(victim);
  cluster.run(SimDuration::seconds(4));
  manager.stop();

  result.timeline = manager.timeline();
  result.recoveries = manager.recoveries();
  result.replicasAfter = cluster.zones().replicas(zone).size();
  for (const ClientId c : cluster.clientIds()) {
    const ServerId home = cluster.clientServer(c);
    if (cluster.hasServer(home) && cluster.server(home).hasClient(c)) ++result.clientsServed;
  }
  return result;
}

}  // namespace

TEST(ChaosTest, CrashIsDetectedWithinThreeHeartbeatsAndRecovered) {
  const CrashRunResult result = runCrashScenario(0x5EED01);

  ASSERT_EQ(result.recoveries.size(), 1u);
  const rms::RecoveryRecord& record = result.recoveries.front();
  // Failure detector latency: silent for missedHeartbeats periods plus at
  // most one control period => within 3 heartbeat intervals of the kill.
  EXPECT_LE(record.detectedAt.micros - result.crashAtMicros,
            3 * SimDuration::milliseconds(250).micros);
  EXPECT_TRUE(record.replacementOrdered);
  EXPECT_EQ(record.clientsLost, 0u);
  EXPECT_GT(record.clientsRehomed, 0u);
  // Survivors held replica-sync shadows, so users kept their avatars.
  EXPECT_EQ(record.shadowsPromoted, record.clientsRehomed);

  // Replica count restored and every client is served again.
  EXPECT_EQ(result.replicasAfter, 2u);
  EXPECT_EQ(result.clientsServed, 20u);

  // The timeline records the recovery (the paper-style Fig. 8 trace shows
  // the dip and the enacted replacement).
  std::size_t crashPoints = 0;
  std::size_t rehomed = 0;
  for (const rms::TimelinePoint& p : result.timeline) {
    crashPoints += p.crashesDetected;
    rehomed += p.clientsRehomed;
  }
  EXPECT_EQ(crashPoints, 1u);
  EXPECT_EQ(rehomed, record.clientsRehomed);
}

TEST(ChaosTest, SameSeedAndFaultPlanGiveIdenticalTimelines) {
  const CrashRunResult first = runCrashScenario(0xD37);
  const CrashRunResult second = runCrashScenario(0xD37);

  ASSERT_EQ(first.timeline.size(), second.timeline.size());
  for (std::size_t i = 0; i < first.timeline.size(); ++i) {
    const rms::TimelinePoint& p = first.timeline[i];
    const rms::TimelinePoint& q = second.timeline[i];
    EXPECT_EQ(p.timeSec, q.timeSec);
    EXPECT_EQ(p.users, q.users);
    EXPECT_EQ(p.servers, q.servers);
    EXPECT_EQ(p.pendingServers, q.pendingServers);
    EXPECT_EQ(p.avgCpuLoad, q.avgCpuLoad);
    EXPECT_EQ(p.avgTickMs, q.avgTickMs);
    EXPECT_EQ(p.maxTickMs, q.maxTickMs);
    EXPECT_EQ(p.migrationsOrdered, q.migrationsOrdered);
    EXPECT_EQ(p.violation, q.violation);
    EXPECT_EQ(p.crashesDetected, q.crashesDetected);
    EXPECT_EQ(p.clientsRehomed, q.clientsRehomed);
  }
  ASSERT_EQ(first.recoveries.size(), second.recoveries.size());
  for (std::size_t i = 0; i < first.recoveries.size(); ++i) {
    EXPECT_EQ(first.recoveries[i].detectedAt.micros, second.recoveries[i].detectedAt.micros);
    EXPECT_EQ(first.recoveries[i].server, second.recoveries[i].server);
    EXPECT_EQ(first.recoveries[i].clientsRehomed, second.recoveries[i].clientsRehomed);
    EXPECT_EQ(first.recoveries[i].shadowsPromoted, second.recoveries[i].shadowsPromoted);
    EXPECT_EQ(first.recoveries[i].npcsAdopted, second.recoveries[i].npcsAdopted);
  }
  EXPECT_EQ(first.crashAtMicros, second.crashAtMicros);
  EXPECT_EQ(first.clientsServed, second.clientsServed);
}

TEST(ChaosTest, CrashOfLoneReplicaLosesItsClients) {
  // Document the boundary: with no survivor there is nothing to recover
  // onto — clients are disconnected and reported lost, not leaked.
  game::FpsApplication app;
  rtf::Cluster cluster(app, rtf::ClusterConfig{});
  const ZoneId zone = cluster.createZone("arena");
  const ServerId only = cluster.addServer(zone);
  for (int i = 0; i < 5; ++i) {
    cluster.connectClient(zone, std::make_unique<game::BotProvider>());
  }
  cluster.run(SimDuration::seconds(1));
  cluster.crashServer(only);
  const rtf::Cluster::RecoveryReport report = cluster.recoverCrashedServer(only);
  EXPECT_EQ(report.clientsLost, 5u);
  EXPECT_EQ(report.clientsRehomed, 0u);
  EXPECT_EQ(cluster.clientCount(), 0u);
  EXPECT_FALSE(cluster.hasServer(only));
  cluster.run(SimDuration::seconds(1));  // nothing left ticking; must not crash
}

}  // namespace
}  // namespace roia
