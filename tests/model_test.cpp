// Tests for the scalability model: parameter functions, the tick-duration
// equations (1)/(4), thresholds (2)/(3)/(5) including the paper's worked
// examples, the estimator fitting pipeline, and model-property sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "model/estimator.hpp"
#include "model/parameters.hpp"
#include "model/report.hpp"
#include "model/thresholds.hpp"
#include "model/tick_model.hpp"

namespace roia::model {
namespace {

/// A hand-built parameter set mirroring the calibrated FPS demo: per-user
/// cost ~ 4 + 0.66 n + 2e-4 n^2, shadow cost ~ 1.5 + 0.003 n (microseconds).
ModelParameters paperLikeParameters() {
  ModelParameters params;
  params.set(ParamKind::kUaDser, ParamFunction::linear(1.0, 0.0015));
  params.set(ParamKind::kUa, ParamFunction::quadratic(1.2, 0.009, 1.2e-4));
  params.set(ParamKind::kAoi, ParamFunction::quadratic(0.1, 0.45, 0.8e-4));
  params.set(ParamKind::kSu, ParamFunction::linear(1.5, 0.2));
  params.set(ParamKind::kFaDser, ParamFunction::linear(0.55, 0.0007));
  params.set(ParamKind::kFa, ParamFunction::linear(0.9, 0.0023));
  params.set(ParamKind::kNpc, ParamFunction::linear(2.0, 0.02));
  params.set(ParamKind::kMigIni, ParamFunction::linear(150.0, 5.0));
  params.set(ParamKind::kMigRcv, ParamFunction::linear(80.0, 2.2));
  return params;
}

constexpr double kU = 40000.0;  // 40 ms in microseconds

// ---------- parameter functions ----------

TEST(ParamFunctionTest, EvalForms) {
  EXPECT_DOUBLE_EQ(ParamFunction::constant(3.0).eval(100), 3.0);
  EXPECT_DOUBLE_EQ(ParamFunction::linear(1.0, 0.5).eval(10), 6.0);
  EXPECT_DOUBLE_EQ(ParamFunction::quadratic(1.0, 0.0, 0.01).eval(10), 2.0);
}

TEST(ParamFunctionTest, ClampsNegativeToZero) {
  // A fitted parabola can dip below zero near n = 0; cost must not.
  const ParamFunction f = ParamFunction::quadratic(-5.0, 0.1, 0.0);
  EXPECT_DOUBLE_EQ(f.eval(0), 0.0);
  EXPECT_DOUBLE_EQ(f.eval(100), 5.0);
}

TEST(ParamFunctionTest, NamesAndForms) {
  EXPECT_STREQ(paramName(ParamKind::kUa), "t_ua");
  EXPECT_STREQ(paramName(ParamKind::kMigRcv), "t_mig_rcv");
  EXPECT_EQ(formDegree(FunctionForm::kQuadratic), 2u);
  EXPECT_STREQ(formName(FunctionForm::kLinear), "linear");
}

TEST(ModelParametersTest, DescribeMentionsEveryParameter) {
  const std::string text = ModelParameters().describe();
  for (std::size_t k = 0; k < kParamCount; ++k) {
    EXPECT_NE(text.find(paramName(static_cast<ParamKind>(k))), std::string::npos);
  }
}

// ---------- tick model (Eq. 1 / Eq. 4) ----------

TEST(TickModelTest, SingleServerHasNoShadowTerm) {
  const TickModel model(paperLikeParameters());
  const double n = 100;
  // Eq. (1) with l = 1: T = n * activeUserCost(n) + m/l * t_npc.
  const double expected = n * model.activeUserCost(n);
  EXPECT_NEAR(model.tickMicros(1, n, 0), expected, 1e-9);
}

TEST(TickModelTest, EqualSplitMatchesExplicitActives) {
  const TickModel model(paperLikeParameters());
  // Eq. (1) is Eq. (4) with a = n/l.
  EXPECT_DOUBLE_EQ(model.tickMicros(4, 200, 0), model.tickMicros(4, 200, 0, 50));
  EXPECT_DOUBLE_EQ(model.tickMicros(2, 301, 12), model.tickMicros(2, 301, 12, 150.5));
}

TEST(TickModelTest, ShadowTermUsesRemainder) {
  const TickModel model(paperLikeParameters());
  const double n = 120, a = 30;
  const double expected = a * model.activeUserCost(n) + (n - a) * model.shadowCost(n);
  EXPECT_NEAR(model.tickMicros(3, n, 0, a), expected, 1e-9);
}

TEST(TickModelTest, NpcTermDividesByReplicas) {
  const TickModel model(paperLikeParameters());
  const double withNpcs1 = model.tickMicros(1, 0, 100);
  const double withNpcs4 = model.tickMicros(4, 0, 100);
  EXPECT_NEAR(withNpcs1, 100 * model.parameters().eval(ParamKind::kNpc, 0), 1e-9);
  EXPECT_NEAR(withNpcs4, withNpcs1 / 4.0, 1e-9);
}

TEST(TickModelTest, ActivesClampedToPopulation) {
  const TickModel model(paperLikeParameters());
  EXPECT_DOUBLE_EQ(model.tickMicros(1, 100, 0, 500), model.tickMicros(1, 100, 0, 100));
  EXPECT_DOUBLE_EQ(model.tickMicros(1, 100, 0, -5), model.tickMicros(1, 100, 0, 0));
}

TEST(TickModelTest, RejectsInvalidReplicaCount) {
  const TickModel model(paperLikeParameters());
  EXPECT_THROW((void)model.tickMicros(0, 10, 0), std::invalid_argument);
}

TEST(TickModelTest, MillisConversion) {
  const TickModel model(paperLikeParameters());
  EXPECT_NEAR(model.tickMillis(2, 200, 0), model.tickMicros(2, 200, 0) / 1000.0, 1e-12);
}

// Property sweep: T is monotone in n and decreasing in l for the active
// part, for every parameter set of this family.
class TickMonotonicity : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TickMonotonicity, IncreasingInUsersDecreasingInReplicas) {
  const auto [l, n] = GetParam();
  const TickModel model(paperLikeParameters());
  const double t = model.tickMicros(l, n, 0);
  EXPECT_LT(model.tickMicros(l, n - 5, 0), t);
  EXPECT_GT(model.tickMicros(l, n + 5, 0), t);
  if (l > 1) {
    // Fewer replicas -> strictly more work per server at the same n.
    EXPECT_GT(model.tickMicros(l - 1, n, 0), t);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TickMonotonicity,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(50, 150, 300, 600)));

// ---------- Eq. (2): n_max ----------

TEST(NMaxTest, MatchesBisectionDefinition) {
  const TickModel model(paperLikeParameters());
  const std::size_t n = nMax(model, 1, 0, kU);
  EXPECT_LT(model.tickMicros(1, static_cast<double>(n), 0), kU);
  EXPECT_GE(model.tickMicros(1, static_cast<double>(n + 1), 0), kU);
}

TEST(NMaxTest, CalibratedSingleServerNearPaperValue) {
  // The calibrated FPS demo saturates a single reference server around the
  // paper's 235 users at U = 40 ms.
  const TickModel model(paperLikeParameters());
  const std::size_t n = nMax(model, 1, 0, kU);
  EXPECT_GE(n, 210u);
  EXPECT_LE(n, 260u);
}

TEST(NMaxTest, GrowsWithReplicas) {
  const TickModel model(paperLikeParameters());
  std::size_t previous = 0;
  for (std::size_t l = 1; l <= 8; ++l) {
    const std::size_t n = nMax(model, l, 0, kU);
    EXPECT_GT(n, previous) << "l=" << l;
    previous = n;
  }
}

TEST(NMaxTest, ShrinksWithNpcs) {
  const TickModel model(paperLikeParameters());
  EXPECT_LT(nMax(model, 1, 500, kU), nMax(model, 1, 0, kU));
}

TEST(NMaxTest, ZeroWhenThresholdTooTight) {
  const TickModel model(paperLikeParameters());
  EXPECT_EQ(nMax(model, 1, 0, 1.0), 0u);  // 1 us threshold: nothing fits
}

TEST(NMaxTest, CapRespected) {
  ModelParameters cheap;  // all-zero costs -> unbounded users
  const TickModel model(cheap);
  EXPECT_EQ(nMax(model, 1, 0, kU, 5000), 5000u);
}

TEST(NMaxTest, InvalidReplicasThrow) {
  const TickModel model(paperLikeParameters());
  EXPECT_THROW((void)nMax(model, 0, 0, kU), std::invalid_argument);
}

class NMaxThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(NMaxThresholdSweep, MonotoneInThreshold) {
  const TickModel model(paperLikeParameters());
  const double u = GetParam();
  EXPECT_LE(nMax(model, 2, 0, u), nMax(model, 2, 0, u * 1.5));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, NMaxThresholdSweep,
                         ::testing::Values(10000.0, 20000.0, 40000.0, 100000.0));

// ---------- Eq. (3): l_max ----------

TEST(LMaxTest, PaperValueForC015) {
  // The paper's RTFDemo calibration: c = 0.15 -> l_max = 8.
  const TickModel model(paperLikeParameters());
  const LMaxResult result = lMax(model, 0, kU, 0.15);
  EXPECT_GE(result.lMax, 7u);
  EXPECT_LE(result.lMax, 9u);
  EXPECT_EQ(result.nMaxPerReplica.size(), result.lMax);
}

TEST(LMaxTest, SmallCAllowsManyReplicas) {
  // Paper: c = 0.05 -> l_max = 48 (large); ours lands in the same regime.
  const TickModel model(paperLikeParameters());
  const LMaxResult result = lMax(model, 0, kU, 0.05);
  EXPECT_GE(result.lMax, 25u);
}

TEST(LMaxTest, CEqualOneStopsEarly) {
  // Paper: c ~ 1 -> l_max = 1 (no replica doubles the single-server
  // capacity given the replication overhead).
  const TickModel model(paperLikeParameters());
  const LMaxResult result = lMax(model, 0, kU, 1.0);
  EXPECT_EQ(result.lMax, 1u);
}

TEST(LMaxTest, MonotoneInC) {
  const TickModel model(paperLikeParameters());
  std::size_t previous = 1000;
  for (const double c : {0.05, 0.1, 0.15, 0.3, 0.6, 1.0}) {
    const std::size_t l = lMax(model, 0, kU, c).lMax;
    EXPECT_LE(l, previous) << "c=" << c;
    previous = l;
  }
}

TEST(LMaxTest, EveryStepMeetsImprovementContract) {
  const TickModel model(paperLikeParameters());
  const LMaxResult result = lMax(model, 0, kU, 0.15);
  // Eq. (3): replica l supports n_max(l-1) + c*n_max(1) under U.
  for (std::size_t l = 2; l <= result.lMax; ++l) {
    const double nPrime = static_cast<double>(result.nMaxPerReplica[l - 2]) +
                          result.requiredImprovement;
    EXPECT_LT(model.tickMicros(static_cast<double>(l), nPrime, 0), kU) << "l=" << l;
  }
  // And replica l_max+1 would not.
  const double nBeyond = static_cast<double>(result.nMaxPerReplica.back()) +
                         result.requiredImprovement;
  EXPECT_GE(model.tickMicros(static_cast<double>(result.lMax + 1), nBeyond, 0), kU);
}

TEST(LMaxTest, RejectsInvalidC) {
  const TickModel model(paperLikeParameters());
  EXPECT_THROW(lMax(model, 0, kU, 0.0), std::invalid_argument);
  EXPECT_THROW(lMax(model, 0, kU, 1.5), std::invalid_argument);
  EXPECT_THROW(lMax(model, 0, kU, -0.1), std::invalid_argument);
}

TEST(LMaxTest, ImpossibleThresholdGivesOne) {
  const TickModel model(paperLikeParameters());
  const LMaxResult result = lMax(model, 0, 1.0, 0.15);
  EXPECT_EQ(result.lMax, 1u);
  EXPECT_EQ(result.nMaxPerReplica[0], 0u);
}

// ---------- Eq. (5): migration budgets ----------

TEST(XMaxTest, DefinitionHolds) {
  const TickModel model(paperLikeParameters());
  const std::size_t l = 2, n = 260, a = 180;
  const std::size_t x = xMaxInitiate(model, l, n, 0, a, kU);
  const double t = model.tickMicros(l, n, 0, a);
  const double mig = model.migInitiateMicros(n);
  EXPECT_LT(t + static_cast<double>(x) * mig, kU);
  EXPECT_GE(t + static_cast<double>(x + 1) * mig, kU);
}

TEST(XMaxTest, PaperWorkedExampleShape) {
  // Paper (Fig. 7 discussion): heavily loaded initiator gets a small budget
  // (~3), lightly loaded receiver a much larger one (~34), and RTF-RMS
  // performs min{ini, rcv}.
  const TickModel model(paperLikeParameters());
  const std::size_t ini = xMaxInitiate(model, 2, 260, 0, 180, kU);
  const std::size_t rcv = xMaxReceive(model, 2, 260, 0, 80, kU);
  EXPECT_GE(ini, 1u);
  EXPECT_LE(ini, 8u);
  EXPECT_GE(rcv, 20u);
  EXPECT_GT(rcv, ini * 4);
}

TEST(XMaxTest, ZeroWhenAlreadyOverloaded) {
  const TickModel model(paperLikeParameters());
  // 300 active users on one replica of a 300-user zone is far beyond U.
  EXPECT_EQ(xMaxInitiate(model, 1, 300, 0, 300, kU), 0u);
  EXPECT_EQ(xMaxReceive(model, 1, 300, 0, 300, kU), 0u);
}

TEST(XMaxTest, ReceiveBudgetExceedsInitiateBudget) {
  // t_mig_rcv < t_mig_ini everywhere (paper Fig. 6), so at equal load the
  // receive budget dominates.
  const TickModel model(paperLikeParameters());
  for (std::size_t a : {40u, 80u, 120u}) {
    EXPECT_GE(xMaxReceive(model, 2, 240, 0, a, kU), xMaxInitiate(model, 2, 240, 0, a, kU));
  }
}

TEST(XMaxTest, FromObservedTick) {
  // Fig. 7's x-axis: budgets from the observed tick duration. 35 ms of a
  // 40 ms budget leaves 5 ms; at ~1.45 ms per initiation that is 3.
  EXPECT_EQ(xMaxFromObservedTick(35000.0, 1450.0, kU), 3u);
  EXPECT_EQ(xMaxFromObservedTick(30000.0, 1450.0, kU), 6u);
  EXPECT_EQ(xMaxFromObservedTick(40000.0, 1450.0, kU), 0u);
  EXPECT_EQ(xMaxFromObservedTick(45000.0, 1450.0, kU), 0u);
  EXPECT_EQ(xMaxFromObservedTick(10000.0, 0.0, kU), 0u);  // unmeasured cost
}

TEST(XMaxTest, ExactMultipleIsExcluded) {
  // max{x | T + x*t < U} must use strict inequality.
  EXPECT_EQ(xMaxFromObservedTick(30000.0, 5000.0, kU), 1u);  // 30+2*5 = 40 not < 40
  EXPECT_EQ(xMaxFromObservedTick(29999.0, 5000.0, kU), 2u);
}

class XMaxLoadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(XMaxLoadSweep, BudgetShrinksWithLoad) {
  const TickModel model(paperLikeParameters());
  const std::size_t a = GetParam();
  const std::size_t budget = xMaxInitiate(model, 2, 260, 0, a, kU);
  const std::size_t budgetHigher = xMaxInitiate(model, 2, 260, 0, a + 20, kU);
  EXPECT_GE(budget, budgetHigher);
}

INSTANTIATE_TEST_SUITE_P(Loads, XMaxLoadSweep, ::testing::Values(20u, 60u, 100u, 140u, 180u));

// ---------- estimator ----------

TEST(EstimatorTest, RecoversSyntheticLinearParameter) {
  ParameterEstimator estimator;
  SampleSeries series;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double n = rng.uniform(20, 300);
    series.add(n, (2.0 + 0.05 * n) * rng.normal(1.0, 0.05));
  }
  estimator.setSamples(ParamKind::kSu, series);
  const ModelParameters params = estimator.fit();
  const ParamFunction& fn = params.at(ParamKind::kSu);
  EXPECT_EQ(fn.form, FunctionForm::kLinear);
  EXPECT_NEAR(fn.coeffs[0], 2.0, 0.25);
  EXPECT_NEAR(fn.coeffs[1], 0.05, 0.005);
  EXPECT_GT(fn.gof.r2, 0.8);
  EXPECT_EQ(fn.sampleCount, 500u);
}

TEST(EstimatorTest, RecoversSyntheticQuadraticParameter) {
  ParameterEstimator estimator;
  SampleSeries series;
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const double n = rng.uniform(20, 300);
    series.add(n, (1.0 + 0.01 * n + 4e-4 * n * n) * rng.normal(1.0, 0.06));
  }
  estimator.setSamples(ParamKind::kUa, series);
  const ModelParameters params = estimator.fit();
  const ParamFunction& fn = params.at(ParamKind::kUa);
  EXPECT_EQ(fn.form, FunctionForm::kQuadratic);
  EXPECT_NEAR(fn.coeffs[2], 4e-4, 8e-5);
}

TEST(EstimatorTest, MissingSamplesStayZero) {
  ParameterEstimator estimator;
  const ModelParameters params = estimator.fit();
  for (std::size_t k = 0; k < kParamCount; ++k) {
    EXPECT_DOUBLE_EQ(params.eval(static_cast<ParamKind>(k), 200.0), 0.0);
  }
}

TEST(EstimatorTest, LevMarRefinementMatchesClosedForm) {
  ParameterEstimator estimator;
  SampleSeries series;
  Rng rng(8);
  for (int i = 0; i < 400; ++i) {
    const double n = rng.uniform(10, 250);
    series.add(n, 3.0 + 0.1 * n + rng.normal(0.0, 0.2));
  }
  estimator.setSamples(ParamKind::kMigIni, series);
  const ModelParameters withLm = estimator.fit(FitPlan::paperDefault(), true);
  const ModelParameters withoutLm = estimator.fit(FitPlan::paperDefault(), false);
  EXPECT_NEAR(withLm.at(ParamKind::kMigIni).coeffs[1], withoutLm.at(ParamKind::kMigIni).coeffs[1],
              1e-4);
}

TEST(EstimatorTest, PhaseMappingRoundTrips) {
  for (std::size_t k = 0; k < kParamCount; ++k) {
    const auto kind = static_cast<ParamKind>(k);
    const auto phase = phaseForParamKind(kind);
    const auto back = paramKindForPhase(phase);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(paramKindForPhase(rtf::Phase::kOther).has_value());
}

// ---------- report ----------

TEST(ReportTest, TriggersAreEightyPercent) {
  const TickModel model(paperLikeParameters());
  const ThresholdReport report = buildReport(model, 40.0, 0.15);
  ASSERT_FALSE(report.nMaxPerReplica.empty());
  for (std::size_t i = 0; i < report.nMaxPerReplica.size(); ++i) {
    EXPECT_EQ(report.replicationTriggers[i],
              static_cast<std::size_t>(std::floor(0.8 * static_cast<double>(
                                                            report.nMaxPerReplica[i]))));
  }
  // Paper: single server 235 users -> trigger 188. We calibrate nearby.
  EXPECT_NEAR(static_cast<double>(report.replicationTriggers[0]), 188.0, 20.0);
}

TEST(ReportTest, ToStringMentionsKeyNumbers) {
  const TickModel model(paperLikeParameters());
  const ThresholdReport report = buildReport(model, 40.0, 0.15);
  const std::string text = report.toString();
  EXPECT_NE(text.find("l_max"), std::string::npos);
  EXPECT_NE(text.find("n_max"), std::string::npos);
  EXPECT_NE(text.find(std::to_string(report.nMaxPerReplica[0])), std::string::npos);
}

// ---------- adaptive form selection ----------

/// Replicated sweep samples like a measurement campaign produces: several
/// noisy per-tick observations at each population.
template <typename Fn>
SampleSeries replicatedSeries(Fn truth, double noiseAmplitude, std::uint64_t seed,
                              std::size_t populations = 6, std::size_t replicates = 20) {
  Rng rng(seed);
  SampleSeries series;
  for (std::size_t p = 1; p <= populations; ++p) {
    const double n = 50.0 * static_cast<double>(p);
    for (std::size_t r = 0; r < replicates; ++r) {
      series.add(n, truth(n) * (1.0 + rng.uniform(-noiseAmplitude, noiseAmplitude)));
    }
  }
  return series;
}

TEST(AdaptiveFitTest, PicksLinearForLinearData) {
  ParameterEstimator estimator;
  estimator.setSamples(ParamKind::kAoi,
                       replicatedSeries([](double n) { return 2.0 + 0.5 * n; }, 0.02, 31));
  const ModelParameters params = estimator.fit(FitPlan::adaptive());
  EXPECT_EQ(params.at(ParamKind::kAoi).form, FunctionForm::kLinear);
}

TEST(AdaptiveFitTest, PicksQuadraticForQuadraticData) {
  ParameterEstimator estimator;
  estimator.setSamples(
      ParamKind::kAoi,
      replicatedSeries([](double n) { return 1.0 + 0.02 * n + 0.001 * n * n; }, 0.02, 32));
  const ModelParameters params = estimator.fit(FitPlan::adaptive());
  EXPECT_EQ(params.at(ParamKind::kAoi).form, FunctionForm::kQuadratic);
}

TEST(AdaptiveFitTest, LeavesPinnedParametersAlone) {
  // kSu is not auto-selected: even blatantly quadratic data keeps the
  // paper's pinned linear form.
  ParameterEstimator estimator;
  estimator.setSamples(ParamKind::kSu,
                       replicatedSeries([](double n) { return 0.002 * n * n; }, 0.02, 33));
  const ModelParameters params = estimator.fit(FitPlan::adaptive());
  EXPECT_EQ(params.at(ParamKind::kSu).form, FunctionForm::kLinear);
}

TEST(AdaptiveFitTest, FallsBackToPinnedFormWithFewPopulations) {
  // Four distinct populations cannot discriminate the forms (AICc needs
  // n > k + 1 with headroom), so the pinned quadratic is used.
  ParameterEstimator estimator;
  estimator.setSamples(ParamKind::kAoi, replicatedSeries([](double n) { return 2.0 + 0.5 * n; },
                                                         0.02, 34, /*populations=*/4));
  const ModelParameters params = estimator.fit(FitPlan::adaptive());
  EXPECT_EQ(params.at(ParamKind::kAoi).form, FunctionForm::kQuadratic);
}

}  // namespace
}  // namespace roia::model
