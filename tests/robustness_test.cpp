// Robustness and failure-injection tests: malformed wire input must raise
// DecodeError (never crash or smear), stressed components must match
// reference models, and the cluster must tolerate abrupt client/server
// disappearance mid-protocol.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>

#include "common/rng.hpp"
#include "game/bots.hpp"
#include "game/commands.hpp"
#include "game/fps_app.hpp"
#include "game/player_stats.hpp"
#include "game/state_update.hpp"
#include "rtf/cluster.hpp"
#include "rtf/messages.hpp"
#include "serialize/message.hpp"
#include "sim/event_queue.hpp"

namespace roia {
namespace {

std::vector<std::uint8_t> randomBytes(Rng& rng, std::size_t maxLen) {
  std::vector<std::uint8_t> bytes(rng.uniformInt(0, maxLen));
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
  return bytes;
}

// ---------- decoder fuzzing: random garbage must throw, never crash ----------

TEST(FuzzTest, FrameDecoderRejectsGarbage) {
  Rng rng(0xF00D);
  int accepted = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto bytes = randomBytes(rng, 64);
    try {
      (void)ser::decodeFrame(bytes);
      ++accepted;  // astronomically unlikely (valid magic + CRC)
    } catch (const ser::DecodeError&) {
    }
  }
  EXPECT_EQ(accepted, 0);
}

TEST(FuzzTest, BitflippedFramesNeverDecodeSilently) {
  // Start from a VALID frame and flip one bit anywhere: either the CRC
  // catches it or (for flips inside the trailing CRC field itself) the
  // mismatch is caught — decode must never succeed.
  ser::Frame frame;
  frame.type = ser::MessageType::kClientInput;
  frame.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto good = ser::encodeFrame(frame);
  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bad = good;
      bad[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_THROW((void)ser::decodeFrame(bad), ser::DecodeError)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(FuzzTest, MessageDecodersRejectGarbagePayloads) {
  Rng rng(0xBEEF);
  for (int i = 0; i < 2000; ++i) {
    ser::Frame frame;
    frame.payload = randomBytes(rng, 48);
    int threw = 0;
    frame.type = ser::MessageType::kClientInput;
    try {
      (void)rtf::decodeClientInput(frame);
    } catch (const ser::DecodeError&) {
      ++threw;
    }
    frame.type = ser::MessageType::kEntityReplication;
    try {
      (void)rtf::decodeEntityReplication(frame);
    } catch (const ser::DecodeError&) {
      ++threw;
    }
    frame.type = ser::MessageType::kMigrationData;
    try {
      (void)rtf::decodeMigrationData(frame);
    } catch (const ser::DecodeError&) {
      ++threw;
    }
    // Each either threw or produced a value without UB; both acceptable —
    // ASAN/UBSAN-clean execution is the real assertion here.
    (void)threw;
  }
  SUCCEED();
}

TEST(FuzzTest, GameCodecsRejectGarbage) {
  Rng rng(0xCAFE);
  for (int i = 0; i < 2000; ++i) {
    const auto bytes = randomBytes(rng, 32);
    try {
      (void)game::decodeCommands(bytes);
    } catch (const ser::DecodeError&) {
    }
    try {
      (void)game::decodeStateUpdate(bytes);
    } catch (const ser::DecodeError&) {
    }
    try {
      (void)game::decodeStats(bytes);
    } catch (const ser::DecodeError&) {
    }
  }
  SUCCEED();
}

// ---------- event queue vs. reference model ----------

TEST(StressTest, EventQueueMatchesReferenceModel) {
  Rng rng(0x5EED);
  sim::EventQueue queue;
  // Reference: multimap of (time, seq) -> alive flag.
  struct Ref {
    SimTime at;
    std::uint64_t tag{0};
    bool alive{true};
  };
  std::map<std::uint64_t, Ref> reference;  // seq -> record
  std::vector<sim::EventHandle> handles;
  std::vector<std::pair<std::int64_t, std::uint64_t>> fired;
  std::uint64_t nextTag = 1;

  for (int op = 0; op < 20000; ++op) {
    const double dice = rng.nextDouble();
    if (dice < 0.55 || queue.empty()) {
      const SimTime at{static_cast<std::int64_t>(rng.uniformInt(0, 1000))};
      const std::uint64_t tag = nextTag++;
      const auto handle = queue.schedule(at, [tag, &fired, at] {
        fired.emplace_back(at.micros, tag);
      });
      handles.push_back(handle);
      reference.emplace(handle.seq, Ref{at, tag, true});
    } else if (dice < 0.7 && !handles.empty()) {
      const std::size_t pick = rng.uniformInt(0, handles.size() - 1);
      queue.cancel(handles[pick]);
      auto it = reference.find(handles[pick].seq);
      if (it != reference.end()) it->second.alive = false;
    } else {
      SimTime at;
      const std::size_t before = fired.size();
      queue.pop(at)();
      ASSERT_EQ(fired.size(), before + 1);
      // The fired event must be the earliest alive (time, seq) in reference.
      // The map iterates in ascending seq order, so strict < on time picks
      // the lowest seq among equal times automatically.
      std::optional<std::uint64_t> bestSeq;
      SimTime bestAt = SimTime::max();
      for (const auto& [seq, ref] : reference) {
        if (!ref.alive) continue;
        if (!bestSeq || ref.at < bestAt) {
          bestAt = ref.at;
          bestSeq = seq;
        }
      }
      ASSERT_TRUE(bestSeq.has_value());
      ASSERT_EQ(fired.back().first, bestAt.micros);
      ASSERT_EQ(fired.back().second, reference.at(*bestSeq).tag);
      reference.erase(*bestSeq);
    }
  }
}

// ---------- failure injection in the cluster ----------

TEST(FailureInjectionTest, ClientVanishesMidSession) {
  game::FpsApplication app;
  rtf::Cluster cluster(app, rtf::ClusterConfig{});
  const ZoneId zone = cluster.createZone("arena");
  cluster.addServer(zone);
  cluster.addServer(zone);
  std::vector<ClientId> clients;
  for (int i = 0; i < 20; ++i) {
    clients.push_back(cluster.connectClient(zone, std::make_unique<game::BotProvider>()));
  }
  cluster.run(SimDuration::seconds(1));
  // Drop half the clients abruptly; servers keep ticking and the survivors
  // keep getting updates.
  for (int i = 0; i < 10; ++i) cluster.disconnectClient(clients[static_cast<std::size_t>(i)]);
  cluster.run(SimDuration::seconds(1));
  EXPECT_EQ(cluster.zoneUserCount(zone), 10u);
  const std::uint64_t before = cluster.client(clients[15]).updatesReceived();
  cluster.run(SimDuration::seconds(1));
  EXPECT_GT(cluster.client(clients[15]).updatesReceived(), before);
}

TEST(FailureInjectionTest, MigrationTargetVanishesBeforeHandover) {
  game::FpsApplication app;
  rtf::Cluster cluster(app, rtf::ClusterConfig{});
  const ZoneId zone = cluster.createZone("arena");
  const ServerId a = cluster.addServer(zone);
  const ServerId b = cluster.addServer(zone);
  const ServerId c = cluster.addServer(zone);
  const ClientId client = cluster.connectClientTo(a, std::make_unique<game::BotProvider>());
  cluster.run(SimDuration::milliseconds(500));

  // Request migration to b, then remove b before its next tick can adopt.
  ASSERT_TRUE(cluster.migrateClient(client, b));
  cluster.removeServer(b);
  cluster.run(SimDuration::seconds(2));

  // The user is not lost: either still on a (hand-over never completed) or
  // it reached b before shutdown — but b is gone, so it must be on a.
  // The session must keep functioning either way.
  EXPECT_EQ(cluster.zoneUserCount(zone), 1u);
  EXPECT_TRUE(cluster.hasClient(client));
  (void)c;
}

TEST(FailureInjectionTest, DisconnectDuringMigrationIsClean) {
  game::FpsApplication app;
  rtf::Cluster cluster(app, rtf::ClusterConfig{});
  const ZoneId zone = cluster.createZone("arena");
  const ServerId a = cluster.addServer(zone);
  const ServerId b = cluster.addServer(zone);
  const ClientId client = cluster.connectClientTo(a, std::make_unique<game::BotProvider>());
  cluster.run(SimDuration::milliseconds(500));
  ASSERT_TRUE(cluster.migrateClient(client, b));
  cluster.disconnectClient(client);  // user quits mid-handover
  cluster.run(SimDuration::seconds(2));
  EXPECT_EQ(cluster.clientCount(), 0u);
  // No zombie avatars on either server once syncs settle.
  std::size_t avatars = cluster.server(a).world().avatarCount() +
                        cluster.server(b).world().avatarCount();
  EXPECT_LE(avatars, 2u);  // transient shadow may linger one sync round
}

TEST(FailureInjectionTest, RapidChurnKeepsInvariants) {
  game::FpsApplication app;
  rtf::Cluster cluster(app, rtf::ClusterConfig{});
  const ZoneId zone = cluster.createZone("arena");
  cluster.addServer(zone);
  cluster.addServer(zone);
  Rng rng(77);
  std::vector<ClientId> clients;
  for (int round = 0; round < 40; ++round) {
    // Join a few...
    for (int j = 0; j < 3; ++j) {
      clients.push_back(cluster.connectClient(zone, std::make_unique<game::BotProvider>()));
    }
    // ...kick a random one...
    if (!clients.empty() && rng.chance(0.6)) {
      const std::size_t pick = rng.uniformInt(0, clients.size() - 1);
      cluster.disconnectClient(clients[pick]);
      clients.erase(clients.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    // ...and bounce one between the replicas.
    if (!clients.empty()) {
      const std::size_t pick = rng.uniformInt(0, clients.size() - 1);
      const std::vector<ServerId> servers = cluster.serverIds();
      cluster.migrateClient(clients[pick], servers[round % servers.size()]);
    }
    cluster.run(SimDuration::milliseconds(120));
  }
  cluster.run(SimDuration::seconds(1));
  EXPECT_EQ(cluster.zoneUserCount(zone), clients.size());
  for (const ClientId c : clients) {
    EXPECT_TRUE(cluster.hasClient(c));
  }
}

}  // namespace
}  // namespace roia
