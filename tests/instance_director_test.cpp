// Tests for instancing-based load distribution: routing, on-demand instance
// creation, capacity caps and retirement of drained instances.
#include <gtest/gtest.h>

#include <memory>

#include "game/bots.hpp"
#include "game/fps_app.hpp"
#include "rms/instance_director.hpp"
#include "rtf/cluster.hpp"

namespace roia::rms {
namespace {

struct Fixture {
  game::FpsApplication app;
  rtf::Cluster cluster{app, rtf::ClusterConfig{}};
  ZoneId zone = cluster.createZone("dungeon");

  Fixture() { cluster.addServer(zone); }

  ClientId join(InstanceDirector& director) {
    return cluster.connectClient(director.routeJoin(),
                                 std::make_unique<game::BotProvider>());
  }
};

TEST(InstanceDirectorTest, RequiresProvisionedTemplate) {
  game::FpsApplication app;
  rtf::Cluster cluster(app, rtf::ClusterConfig{});
  const ZoneId empty = cluster.createZone("empty");
  EXPECT_THROW(InstanceDirector(cluster, empty, InstanceDirector::Config{}),
               std::invalid_argument);
  const ZoneId ok = cluster.createZone("ok");
  cluster.addServer(ok);
  EXPECT_THROW(InstanceDirector(cluster, ok, InstanceDirector::Config{0, 1}),
               std::invalid_argument);
}

TEST(InstanceDirectorTest, FillsTemplateBeforeOpeningInstances) {
  Fixture f;
  InstanceDirector director(f.cluster, f.zone, InstanceDirector::Config{10, 1});
  for (int i = 0; i < 10; ++i) f.join(director);
  EXPECT_EQ(director.instanceCount(), 1u);
  EXPECT_EQ(f.cluster.zoneUserCount(f.zone), 10u);
}

TEST(InstanceDirectorTest, OpensInstancesAtCriticalDensity) {
  Fixture f;
  InstanceDirector director(f.cluster, f.zone, InstanceDirector::Config{10, 1});
  for (int i = 0; i < 35; ++i) f.join(director);
  // 35 users at cap 10 -> 4 instances (10 + 10 + 10 + 5).
  EXPECT_EQ(director.instanceCount(), 4u);
  EXPECT_EQ(director.totalUsers(), 35u);
  for (const ZoneId instance : director.instances()) {
    EXPECT_LE(f.cluster.zoneUserCount(instance), 10u);
    EXPECT_GE(f.cluster.zones().replicaCount(instance), 1u);
  }
}

TEST(InstanceDirectorTest, RoutesToFullestWithHeadroom) {
  Fixture f;
  InstanceDirector director(f.cluster, f.zone, InstanceDirector::Config{10, 1});
  std::vector<ClientId> clients;
  for (int i = 0; i < 20; ++i) clients.push_back(f.join(director));
  ASSERT_EQ(director.instanceCount(), 2u);
  // Free a slot in the first (full) instance; the next join must land
  // there, not open a third instance.
  const ZoneId first = director.instances()[0];
  for (const ClientId c : clients) {
    if (f.cluster.server(f.cluster.clientServer(c)).zone() == first) {
      f.cluster.disconnectClient(c);
      break;
    }
  }
  const ZoneId routed = director.routeJoin();
  EXPECT_EQ(routed, first);
  EXPECT_EQ(director.instanceCount(), 2u);
}

TEST(InstanceDirectorTest, RetiresDrainedInstances) {
  Fixture f;
  InstanceDirector director(f.cluster, f.zone, InstanceDirector::Config{10, 1});
  std::vector<ClientId> clients;
  for (int i = 0; i < 25; ++i) clients.push_back(f.join(director));
  ASSERT_EQ(director.instanceCount(), 3u);
  const std::size_t serversBefore = f.cluster.serverCount();

  // Everyone leaves except users of the template zone.
  for (const ClientId c : clients) {
    if (f.cluster.server(f.cluster.clientServer(c)).zone() != f.zone) {
      f.cluster.disconnectClient(c);
    }
  }
  const std::size_t retired = director.retireEmptyInstances();
  EXPECT_EQ(retired, 2u);
  EXPECT_EQ(director.instanceCount(), 1u);
  EXPECT_LT(f.cluster.serverCount(), serversBefore);
  // The template zone never retires, even when empty.
  for (const ClientId c : f.cluster.clientIds()) f.cluster.disconnectClient(c);
  EXPECT_EQ(director.retireEmptyInstances(), 0u);
  EXPECT_EQ(director.instanceCount(), 1u);
}

TEST(InstanceDirectorTest, InstancesAreIsolatedWorlds) {
  Fixture f;
  InstanceDirector director(f.cluster, f.zone, InstanceDirector::Config{5, 1});
  for (int i = 0; i < 10; ++i) f.join(director);
  ASSERT_EQ(director.instanceCount(), 2u);
  f.cluster.run(SimDuration::seconds(1));
  // Each instance's servers know only their own 5 avatars.
  for (const ZoneId instance : director.instances()) {
    for (const ServerId server : f.cluster.zones().replicas(instance)) {
      EXPECT_EQ(f.cluster.server(server).world().avatarCount(), 5u);
    }
  }
}

TEST(InstanceDirectorTest, MultiReplicaInstances) {
  Fixture f;
  f.cluster.addServer(f.zone);  // template has 2 replicas
  InstanceDirector director(f.cluster, f.zone, InstanceDirector::Config{8, 2});
  for (int i = 0; i < 12; ++i) f.join(director);
  ASSERT_EQ(director.instanceCount(), 2u);
  EXPECT_EQ(f.cluster.zones().replicaCount(director.instances()[1]), 2u);
}

}  // namespace
}  // namespace roia::rms
