// Tests for client-side QoE measurement: the update-rate probes on the
// client endpoints and their link to server tick duration — the paper's
// premise that a tick above 40 ms means users drop below 25 updates/s.
#include <gtest/gtest.h>

#include <memory>

#include "game/bots.hpp"
#include "game/fps_app.hpp"
#include "rtf/cluster.hpp"

namespace roia::rtf {
namespace {

struct Fixture {
  game::FpsApplication app;
  Cluster cluster{app, ClusterConfig{}};
  ZoneId zone = cluster.createZone("arena");
};

TEST(QoeTest, HealthyServerDelivers25Hz) {
  Fixture f;
  f.cluster.addServer(f.zone);
  const ClientId c = f.cluster.connectClient(f.zone, std::make_unique<game::BotProvider>());
  for (int i = 0; i < 30; ++i) {
    f.cluster.connectClient(f.zone, std::make_unique<game::BotProvider>());
  }
  f.cluster.run(SimDuration::seconds(4));
  const ClientEndpoint& endpoint = f.cluster.client(c);
  EXPECT_NEAR(endpoint.avgUpdateGapMs(), 40.0, 2.0);      // one update per tick
  EXPECT_NEAR(endpoint.updateRateHz(), 25.0, 1.5);
  EXPECT_LT(endpoint.worstUpdateGapMs(), 60.0);
}

TEST(QoeTest, OverloadedServerDropsBelow25Hz) {
  // Far beyond n_max(1): ticks stretch past 40 ms, so clients receive
  // fewer than 25 updates/s — the paper's QoE violation.
  Fixture f;
  const ServerId s = f.cluster.addServer(f.zone);
  ClientId probe{};
  for (int i = 0; i < 400; ++i) {
    probe = f.cluster.connectClientTo(s, std::make_unique<game::BotProvider>());
  }
  f.cluster.run(SimDuration::seconds(5));
  const ClientEndpoint& endpoint = f.cluster.client(probe);
  EXPECT_GT(endpoint.avgUpdateGapMs(), 45.0);
  EXPECT_LT(endpoint.updateRateHz(), 23.0);
  // And the server-side cause is visible: tick duration above the interval.
  EXPECT_GT(f.cluster.server(s).monitoring().tickAvgMs, 40.0);
}

TEST(QoeTest, RateRecoversAfterLoadIsSplit) {
  Fixture f;
  const ServerId a = f.cluster.addServer(f.zone);
  ClientId probe{};
  for (int i = 0; i < 320; ++i) {
    probe = f.cluster.connectClientTo(a, std::make_unique<game::BotProvider>());
  }
  f.cluster.run(SimDuration::seconds(3));
  EXPECT_LT(f.cluster.client(probe).updateRateHz(), 24.0);

  // Split onto a second replica, as RTF-RMS would.
  const ServerId b = f.cluster.addServer(f.zone);
  const std::vector<ClientId> clients = f.cluster.server(a).clientIds(true);
  for (std::size_t i = 0; i < clients.size() / 2; ++i) {
    f.cluster.migrateClient(clients[i], b);
  }
  f.cluster.run(SimDuration::seconds(4));

  // Ticks are healthy again; fresh clients see full rate.
  EXPECT_LT(f.cluster.server(a).monitoring().tickAvgMs, 40.0);
  EXPECT_LT(f.cluster.server(b).monitoring().tickAvgMs, 40.0);
  const ClientId fresh = f.cluster.connectClient(f.zone, std::make_unique<game::BotProvider>());
  f.cluster.run(SimDuration::seconds(2));
  EXPECT_NEAR(f.cluster.client(fresh).updateRateHz(), 25.0, 1.5);
}

TEST(QoeTest, NoUpdatesMeansZeroRate) {
  Fixture f;
  f.cluster.addServer(f.zone);
  const ClientId c = f.cluster.connectClient(f.zone, std::make_unique<game::BotProvider>());
  const ClientEndpoint& endpoint = f.cluster.client(c);
  EXPECT_DOUBLE_EQ(endpoint.updateRateHz(), 0.0);
  EXPECT_DOUBLE_EQ(endpoint.avgUpdateGapMs(), 0.0);
}

}  // namespace
}  // namespace roia::rtf
