// Tests for RTF-RMS: the resource pool, the model-driven strategy
// (Listing 1 migration planning, replication/substitution/removal
// triggers), the baseline strategies, and the manager executing decisions
// against a live cluster.
#include <gtest/gtest.h>

#include <memory>

#include "game/bots.hpp"
#include "game/fps_app.hpp"
#include "rms/baseline_strategies.hpp"
#include "rms/manager.hpp"
#include "rms/model_strategy.hpp"
#include "rms/resource_pool.hpp"
#include "rtf/cluster.hpp"

namespace roia::rms {
namespace {

constexpr double kU = 40000.0;

model::ModelParameters paperLikeParameters() {
  model::ModelParameters params;
  params.set(model::ParamKind::kUaDser, model::ParamFunction::linear(1.0, 0.0015));
  params.set(model::ParamKind::kUa, model::ParamFunction::quadratic(1.2, 0.009, 1.2e-4));
  params.set(model::ParamKind::kAoi, model::ParamFunction::quadratic(0.1, 0.45, 0.8e-4));
  params.set(model::ParamKind::kSu, model::ParamFunction::linear(1.5, 0.2));
  params.set(model::ParamKind::kFaDser, model::ParamFunction::linear(0.55, 0.0007));
  params.set(model::ParamKind::kFa, model::ParamFunction::linear(0.9, 0.0023));
  params.set(model::ParamKind::kMigIni, model::ParamFunction::linear(150.0, 5.0));
  params.set(model::ParamKind::kMigRcv, model::ParamFunction::linear(80.0, 2.2));
  return params;
}

rtf::MonitoringSnapshot snapshotOf(std::uint64_t server, std::size_t active, std::size_t total,
                                   double tickAvgMs = 10.0) {
  rtf::MonitoringSnapshot s;
  s.server = ServerId{server};
  s.zone = ZoneId{1};
  s.activeUsers = active;
  s.totalAvatars = total;
  s.tickAvgMs = tickAvgMs;
  s.tickMaxMs = tickAvgMs * 1.2;
  return s;
}

ZoneView makeView(std::vector<rtf::MonitoringSnapshot> servers) {
  ZoneView view;
  view.zone = ZoneId{1};
  view.servers = std::move(servers);
  return view;
}

// ---------- resource pool ----------

TEST(ResourcePoolTest, LeaseAndRelease) {
  ResourcePool pool({{"standard", 1.0, 1.0, 2}});
  EXPECT_EQ(pool.availableOf(0), 2u);
  const auto l1 = pool.lease(0, SimTime{0});
  const auto l2 = pool.lease(0, SimTime{0});
  ASSERT_TRUE(l1 && l2);
  EXPECT_EQ(pool.availableOf(0), 0u);
  EXPECT_FALSE(pool.lease(0, SimTime{0}).has_value());  // exhausted
  pool.release(*l1, SimTime{10000000});
  EXPECT_EQ(pool.availableOf(0), 1u);
  EXPECT_EQ(pool.activeLeases(), 1u);
}

TEST(ResourcePoolTest, UnknownFlavorOrLeaseSafe) {
  ResourcePool pool({{"standard", 1.0, 1.0, 1}});
  EXPECT_FALSE(pool.lease(5, SimTime{0}).has_value());
  pool.release(LeaseId{999}, SimTime{0});  // no-op
  EXPECT_EQ(pool.activeLeases(), 0u);
}

TEST(ResourcePoolTest, ServerSecondsAccounting) {
  ResourcePool pool({{"standard", 1.0, 3600.0, 4}});
  const auto l1 = pool.lease(0, SimTime{0});
  const auto l2 = pool.lease(0, SimTime{0});
  pool.release(*l1, SimTime{SimDuration::seconds(10).micros});
  (void)l2;
  // 10 s completed + 20 s in progress at t = 20 s.
  EXPECT_NEAR(pool.serverSeconds(SimTime{SimDuration::seconds(20).micros}), 30.0, 1e-9);
  // Cost: 3600 per hour == 1 per second.
  EXPECT_NEAR(pool.totalCost(SimTime{SimDuration::seconds(20).micros}), 30.0, 1e-9);
}

TEST(ResourcePoolTest, StrongerFlavorSelection) {
  ResourcePool pool({{"standard", 1.0, 1.0, 10},
                     {"large", 2.0, 2.5, 1},
                     {"xlarge", 4.0, 9.0, 1}});
  const auto stronger = pool.strongerFlavor(1.0);
  ASSERT_TRUE(stronger.has_value());
  EXPECT_EQ(*stronger, 1u);  // cheapest faster flavor
  const auto evenStronger = pool.strongerFlavor(2.0);
  ASSERT_TRUE(evenStronger.has_value());
  EXPECT_EQ(*evenStronger, 2u);
  EXPECT_FALSE(pool.strongerFlavor(4.0).has_value());
  // Exhaust the large flavor: selection falls through to xlarge.
  (void)pool.lease(1, SimTime{0});
  const auto fallback = pool.strongerFlavor(1.0);
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(*fallback, 2u);
}

TEST(ResourcePoolTest, DefaultPoolHasStandardAndLarge) {
  ResourcePool pool;
  EXPECT_GE(pool.flavorCount(), 2u);
  EXPECT_TRUE(pool.lease(0, SimTime{0}).has_value());
  EXPECT_TRUE(pool.strongerFlavor(1.0).has_value());
}

// ---------- model-driven strategy ----------

ModelStrategyConfig defaultConfig() {
  ModelStrategyConfig config;
  config.upperTickMs = 40.0;
  config.improvementFactorC = 0.15;
  return config;
}

TEST(ModelStrategyTest, BalancedZoneNeedsNothing) {
  ModelDrivenStrategy strategy(model::TickModel(paperLikeParameters()), defaultConfig());
  // 200 users on two replicas: above the removal hysteresis, below the
  // replication trigger of l = 2 -> steady state.
  const Decision d =
      strategy.decide(makeView({snapshotOf(1, 100, 200), snapshotOf(2, 100, 200)}));
  EXPECT_TRUE(d.migrations().empty());
  EXPECT_FALSE(d.structural());
}

TEST(ModelStrategyTest, ImbalanceProducesListing1Plan) {
  ModelDrivenStrategy strategy(model::TickModel(paperLikeParameters()), defaultConfig());
  // 150 vs 50 users: s_max = server 1, deviation of server 2 = 50.
  const Decision d = strategy.decide(makeView({snapshotOf(1, 150, 200), snapshotOf(2, 50, 200)}));
  const std::vector<UserMigration> orders = d.migrations();
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].from, ServerId{1});
  EXPECT_EQ(orders[0].to, ServerId{2});
  // Bounded by the initiator budget of Eq. (5), far below the deviation 50.
  const std::size_t iniBudget = model::xMaxInitiate(model::TickModel(paperLikeParameters()), 2,
                                                    200, 0, 150, kU);
  EXPECT_EQ(orders[0].count, std::min<std::size_t>(50, iniBudget));
  EXPECT_LT(orders[0].count, 50u);
}

TEST(ModelStrategyTest, MigrationsRespectReceiverBudget) {
  ModelDrivenStrategy strategy(model::TickModel(paperLikeParameters()), defaultConfig());
  // Receiver is itself loaded (total population high): its x_max^rcv caps
  // what it may take.
  const auto view = makeView({snapshotOf(1, 200, 300), snapshotOf(2, 100, 300)});
  const Decision d = strategy.decide(view);
  const std::size_t rcvBudget = model::xMaxReceive(model::TickModel(paperLikeParameters()), 2,
                                                   300, 0, 100, kU);
  for (const auto& order : d.migrations()) {
    EXPECT_LE(order.count, rcvBudget);
  }
}

TEST(ModelStrategyTest, SmallImbalanceIgnored) {
  ModelDrivenStrategy strategy(model::TickModel(paperLikeParameters()), defaultConfig());
  const Decision d = strategy.decide(makeView({snapshotOf(1, 52, 100), snapshotOf(2, 48, 100)}));
  EXPECT_TRUE(d.migrations().empty());
}

TEST(ModelStrategyTest, ReplicationAtEightyPercent) {
  ModelDrivenStrategy strategy(model::TickModel(paperLikeParameters()), defaultConfig());
  const std::size_t nMax1 = strategy.nMaxFor(1);
  const std::size_t trigger = static_cast<std::size_t>(0.8 * static_cast<double>(nMax1));
  // Just below the trigger: nothing.
  EXPECT_FALSE(
      strategy.decide(makeView({snapshotOf(1, trigger - 2, trigger - 2)})).has<ReplicationEnactment>());
  // Just above: replication enactment.
  const Decision d = strategy.decide(makeView({snapshotOf(1, trigger + 2, trigger + 2)}));
  EXPECT_TRUE(d.has<ReplicationEnactment>());
  EXPECT_FALSE(d.has<ResourceRemoval>());
}

TEST(ModelStrategyTest, PendingStartSuppressesSecondAdd) {
  ModelDrivenStrategy strategy(model::TickModel(paperLikeParameters()), defaultConfig());
  auto view = makeView({snapshotOf(1, 230, 230)});
  view.pendingStarts = 1;
  // With the pending server counted, 230 < 0.8 * n_max(2): no second add.
  EXPECT_FALSE(strategy.decide(view).has<ReplicationEnactment>());
}

TEST(ModelStrategyTest, SubstitutionWhenLMaxReached) {
  ModelStrategyConfig config = defaultConfig();
  ModelDrivenStrategy strategy(model::TickModel(paperLikeParameters()), config);
  const std::size_t lMax = strategy.report().lMax;
  std::vector<rtf::MonitoringSnapshot> servers;
  const std::size_t perServer = strategy.nMaxFor(lMax) / lMax;  // near capacity
  for (std::size_t i = 1; i <= lMax; ++i) {
    servers.push_back(snapshotOf(i, perServer, perServer * lMax));
  }
  const Decision d = strategy.decide(makeView(std::move(servers)));
  EXPECT_FALSE(d.has<ReplicationEnactment>());
  ASSERT_TRUE(d.has<ResourceSubstitution>());
}

TEST(ModelStrategyTest, RemovalWithHysteresis) {
  ModelDrivenStrategy strategy(model::TickModel(paperLikeParameters()), defaultConfig());
  // Two replicas, population far below the 1-replica trigger.
  const Decision d = strategy.decide(makeView({snapshotOf(1, 30, 60), snapshotOf(2, 30, 60)}));
  ASSERT_TRUE(d.has<ResourceRemoval>());
  // Population just below the 2-replica trigger but above the shrunken
  // 1-replica one: keep both (hysteresis).
  const std::size_t nMax1 = strategy.nMaxFor(1);
  const std::size_t keep = static_cast<std::size_t>(0.8 * 0.9 * static_cast<double>(nMax1));
  const Decision d2 =
      strategy.decide(makeView({snapshotOf(1, keep / 2, keep), snapshotOf(2, keep - keep / 2, keep)}));
  EXPECT_FALSE(d2.has<ResourceRemoval>());
}

TEST(ModelStrategyTest, NeverRemoveLastReplica) {
  ModelDrivenStrategy strategy(model::TickModel(paperLikeParameters()), defaultConfig());
  const Decision d = strategy.decide(makeView({snapshotOf(1, 5, 5)}));
  EXPECT_FALSE(d.has<ResourceRemoval>());
}

TEST(ModelStrategyTest, DrainingServerIsEmptiedFirst) {
  ModelDrivenStrategy strategy(model::TickModel(paperLikeParameters()), defaultConfig());
  auto view = makeView({snapshotOf(1, 40, 100), snapshotOf(2, 60, 100)});
  view.draining = {ServerId{1}};
  const Decision d = strategy.decide(view);
  const std::vector<UserMigration> orders = d.migrations();
  ASSERT_FALSE(orders.empty());
  for (const auto& order : orders) {
    EXPECT_EQ(order.from, ServerId{1});
    EXPECT_EQ(order.to, ServerId{2});
  }
}

TEST(ModelStrategyTest, NoMigrationTargetsDrainingServers) {
  ModelDrivenStrategy strategy(model::TickModel(paperLikeParameters()), defaultConfig());
  auto view = makeView(
      {snapshotOf(1, 100, 160), snapshotOf(2, 30, 160), snapshotOf(3, 30, 160)});
  view.draining = {ServerId{2}};
  const Decision d = strategy.decide(view);
  for (const auto& order : d.migrations()) {
    EXPECT_NE(order.to, ServerId{2});
  }
}

TEST(ModelStrategyTest, EmptyViewIsNoop) {
  ModelDrivenStrategy strategy(model::TickModel(paperLikeParameters()), defaultConfig());
  const Decision d = strategy.decide(makeView({}));
  EXPECT_TRUE(d.migrations().empty());
  EXPECT_FALSE(d.structural());
}

// ---------- baseline strategies ----------

TEST(StaticStrategyTest, EqualizesFullyWithoutBudgets) {
  StaticIntervalStrategy strategy(StaticStrategyConfig{});
  const Decision d = strategy.decide(makeView({snapshotOf(1, 150, 200), snapshotOf(2, 50, 200)}));
  const std::vector<UserMigration> orders = d.migrations();
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].count, 50u);  // full deviation, no throttle
}

TEST(StaticStrategyTest, ReactiveReplicationOnlyAfterViolation) {
  StaticIntervalStrategy strategy(StaticStrategyConfig{});
  EXPECT_FALSE(strategy.decide(makeView({snapshotOf(1, 200, 200, 30.0)})).has<ReplicationEnactment>());
  EXPECT_TRUE(strategy.decide(makeView({snapshotOf(1, 220, 220, 45.0)})).has<ReplicationEnactment>());
}

TEST(StaticStrategyTest, RemovesOnLowTick) {
  StaticIntervalStrategy strategy(StaticStrategyConfig{});
  const Decision d =
      strategy.decide(makeView({snapshotOf(1, 20, 40, 5.0), snapshotOf(2, 20, 40, 5.0)}));
  EXPECT_TRUE(d.has<ResourceRemoval>());
}

TEST(UnthrottledStrategyTest, PredictiveAddButUnboundedMigrations) {
  UnthrottledMigrationStrategy strategy(model::TickModel(paperLikeParameters()), 40.0, 0.15);
  const Decision d = strategy.decide(makeView({snapshotOf(1, 150, 200), snapshotOf(2, 50, 200)}));
  const std::vector<UserMigration> orders = d.migrations();
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].count, 50u);
}

TEST(UnthrottledPlannerTest, MultiWayFlowConservation) {
  Decision d;
  const auto view = makeView({snapshotOf(1, 90, 150), snapshotOf(2, 40, 150),
                              snapshotOf(3, 20, 150)});
  planUnthrottledMigrations(view, 0, d);
  std::size_t out1 = 0, into2 = 0, into3 = 0;
  for (const auto& order : d.migrations()) {
    EXPECT_EQ(order.from, ServerId{1});
    out1 += order.count;
    if (order.to == ServerId{2}) into2 += order.count;
    if (order.to == ServerId{3}) into3 += order.count;
  }
  // avg = 50: server 1 sheds 40, server 2 takes 10, server 3 takes 30.
  EXPECT_EQ(out1, 40u);
  EXPECT_EQ(into2, 10u);
  EXPECT_EQ(into3, 30u);
}

// ---------- manager against a live cluster ----------

struct ManagerFixture {
  game::FpsApplication app;
  rtf::Cluster cluster;
  ZoneId zone;

  ManagerFixture() : app(), cluster(app, rtf::ClusterConfig{}), zone(cluster.createZone("z")) {
    cluster.addServer(zone);
  }
};

TEST(ManagerTest, ExecutesMigrationOrders) {
  ManagerFixture f;
  const ServerId b = f.cluster.addServer(f.zone);
  const ServerId a = f.cluster.zones().replicas(f.zone).front();
  // Enough users that the strategy keeps both replicas (above the removal
  // hysteresis) but all parked on one server: a pure imbalance.
  for (int i = 0; i < 160; ++i) {
    f.cluster.connectClientTo(a, std::make_unique<game::BotProvider>());
  }
  RmsConfig config;
  config.controlPeriod = SimDuration::milliseconds(500);
  RmsManager manager(f.cluster, f.zone,
                     std::make_unique<ModelDrivenStrategy>(
                         model::TickModel(paperLikeParameters()), defaultConfig()),
                     ResourcePool{}, config);
  manager.start();
  f.cluster.run(SimDuration::seconds(20));
  manager.stop();
  // The imbalance (160/0) converged toward equal despite throttled budgets.
  const std::size_t onA = f.cluster.server(a).connectedUsers();
  const std::size_t onB = f.cluster.server(b).connectedUsers();
  EXPECT_EQ(onA + onB, 160u);
  EXPECT_NEAR(static_cast<double>(onA), 80.0, 10.0);
  EXPECT_GT(manager.migrationsOrderedTotal(), 30u);
}

TEST(ManagerTest, AddsReplicaAfterStartupDelay) {
  ManagerFixture f;
  for (int i = 0; i < 210; ++i) {
    f.cluster.connectClient(f.zone, std::make_unique<game::BotProvider>());
  }
  RmsConfig config;
  config.controlPeriod = SimDuration::milliseconds(500);
  config.serverStartupDelay = SimDuration::seconds(2);
  RmsManager manager(f.cluster, f.zone,
                     std::make_unique<ModelDrivenStrategy>(
                         model::TickModel(paperLikeParameters()), defaultConfig()),
                     ResourcePool{}, config);
  manager.start();
  f.cluster.run(SimDuration::milliseconds(1500));
  // Decision made, but the server is still booting.
  EXPECT_EQ(f.cluster.serverCount(), 1u);
  f.cluster.run(SimDuration::seconds(3));
  EXPECT_EQ(f.cluster.serverCount(), 2u);
  EXPECT_EQ(manager.replicasAdded(), 1u);
  manager.stop();
}

TEST(ManagerTest, DrainsAndRemovesUnderutilizedReplica) {
  ManagerFixture f;
  const ServerId b = f.cluster.addServer(f.zone);
  for (int i = 0; i < 20; ++i) {
    f.cluster.connectClient(f.zone, std::make_unique<game::BotProvider>());
  }
  RmsConfig config;
  config.controlPeriod = SimDuration::milliseconds(500);
  RmsManager manager(f.cluster, f.zone,
                     std::make_unique<ModelDrivenStrategy>(
                         model::TickModel(paperLikeParameters()), defaultConfig()),
                     ResourcePool{}, config);
  manager.start();
  f.cluster.run(SimDuration::seconds(30));
  manager.stop();
  EXPECT_EQ(f.cluster.serverCount(), 1u);
  EXPECT_EQ(manager.replicasRemoved(), 1u);
  EXPECT_EQ(f.cluster.zoneUserCount(f.zone), 20u);  // nobody lost
  (void)b;
}

TEST(ManagerTest, TimelineRecordsSessions) {
  ManagerFixture f;
  for (int i = 0; i < 30; ++i) {
    f.cluster.connectClient(f.zone, std::make_unique<game::BotProvider>());
  }
  RmsConfig config;
  config.controlPeriod = SimDuration::seconds(1);
  RmsManager manager(f.cluster, f.zone,
                     std::make_unique<ModelDrivenStrategy>(
                         model::TickModel(paperLikeParameters()), defaultConfig()),
                     ResourcePool{}, config);
  manager.start();
  f.cluster.run(SimDuration::seconds(5));
  manager.stop();
  ASSERT_GE(manager.timeline().size(), 4u);
  const TimelinePoint& p = manager.timeline().back();
  EXPECT_EQ(p.users, 30u);
  EXPECT_EQ(p.servers, 1u);
  EXPECT_GT(p.avgTickMs, 0.0);
  EXPECT_GT(p.avgCpuLoad, 0.0);
  EXPECT_FALSE(p.violation);
  EXPECT_EQ(manager.violationPeriods(), 0u);
}

TEST(ManagerTest, AccountsInitialServersInPool) {
  ManagerFixture f;
  RmsConfig config;
  RmsManager manager(f.cluster, f.zone,
                     std::make_unique<ModelDrivenStrategy>(
                         model::TickModel(paperLikeParameters()), defaultConfig()),
                     ResourcePool{}, config);
  f.cluster.run(SimDuration::seconds(10));
  EXPECT_NEAR(manager.pool().serverSeconds(f.cluster.simulation().now()), 10.0, 0.5);
}

}  // namespace
}  // namespace roia::rms
