// Tests for the fitting pipeline: dense linear algebra, closed-form
// polynomial least squares and Levenberg-Marquardt, including recovery of
// known coefficients from noisy data (the paper's gnuplot workflow).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "fit/form_select.hpp"
#include "fit/gof.hpp"
#include "fit/levmar.hpp"
#include "fit/matrix.hpp"
#include "fit/polyfit.hpp"

namespace roia::fit {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m({{1, 2}, {3, 4}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  m(1, 0) = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 9.0);
}

TEST(MatrixTest, RaggedInitializerThrows) {
  EXPECT_THROW(Matrix({{1, 2}, {3}}), std::invalid_argument);
}

TEST(MatrixTest, IdentityAndMultiply) {
  const Matrix i = Matrix::identity(3);
  Matrix m({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  EXPECT_EQ(i * m, m);
  EXPECT_EQ(m * i, m);
}

TEST(MatrixTest, MultiplyKnown) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{5, 6}, {7, 8}});
  EXPECT_EQ(a * b, Matrix({{19, 22}, {43, 50}}));
  EXPECT_THROW(a * Matrix(3, 3), std::invalid_argument);
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{4, 3}, {2, 1}});
  EXPECT_EQ(a + b, Matrix({{5, 5}, {5, 5}}));
  EXPECT_EQ(a - a, Matrix(2, 2));
  Matrix c = a;
  c *= 2.0;
  EXPECT_EQ(c, Matrix({{2, 4}, {6, 8}}));
}

TEST(MatrixTest, TransposedAndMatvec) {
  Matrix a({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(a.transposed(), Matrix({{1, 4}, {2, 5}, {3, 6}}));
  const std::vector<double> v{1, 1, 1};
  const std::vector<double> out = a.multiply(v);
  EXPECT_DOUBLE_EQ(out[0], 6.0);
  EXPECT_DOUBLE_EQ(out[1], 15.0);
}

TEST(CholeskyTest, FactorizesSpd) {
  Matrix a({{4, 2}, {2, 3}});
  const Matrix l = cholesky(a);
  // Reconstruct L * L^T.
  const Matrix reconstructed = l * l.transposed();
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(reconstructed(r, c), a(r, c), 1e-12);
    }
  }
}

TEST(CholeskyTest, RejectsNonSpd) {
  EXPECT_THROW(cholesky(Matrix({{0, 0}, {0, 0}})), SingularMatrixError);
  EXPECT_THROW(cholesky(Matrix({{1, 5}, {5, 1}})), SingularMatrixError);
  EXPECT_THROW(cholesky(Matrix(2, 3)), std::invalid_argument);
}

TEST(CholeskyTest, SolveRecoversSolution) {
  Matrix a({{25, 15, -5}, {15, 18, 0}, {-5, 0, 11}});
  const std::vector<double> xTrue{1.0, -2.0, 3.0};
  const std::vector<double> b = a.multiply(xTrue);
  const std::vector<double> x = choleskySolve(a, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], xTrue[i], 1e-10);
}

TEST(PolyFitTest, ExactLinear) {
  const std::vector<double> x{0, 1, 2, 3, 4};
  std::vector<double> y;
  for (double xi : x) y.push_back(2.5 + 1.5 * xi);
  const auto c = polyFit(x, y, 1);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_NEAR(c[0], 2.5, 1e-9);
  EXPECT_NEAR(c[1], 1.5, 1e-9);
}

TEST(PolyFitTest, ExactQuadraticAtGameScale) {
  // Magnitudes match the model's use: n up to ~600, costs in microseconds.
  std::vector<double> x, y;
  for (double n = 10; n <= 600; n += 10) {
    x.push_back(n);
    y.push_back(1.4 + 0.03 * n + 5e-4 * n * n);
  }
  const auto c = polyFit(x, y, 2);
  EXPECT_NEAR(c[0], 1.4, 1e-6);
  EXPECT_NEAR(c[1], 0.03, 1e-8);
  EXPECT_NEAR(c[2], 5e-4, 1e-10);
}

TEST(PolyFitTest, NoisyRecovery) {
  Rng rng(21);
  std::vector<double> x, y;
  for (int i = 0; i < 2000; ++i) {
    const double xi = rng.uniform(1, 300);
    x.push_back(xi);
    y.push_back((3.0 + 0.2 * xi) * rng.normal(1.0, 0.05));
  }
  const auto c = polyFit(x, y, 1);
  EXPECT_NEAR(c[0], 3.0, 0.15);
  EXPECT_NEAR(c[1], 0.2, 0.01);
}

TEST(PolyFitTest, WeightsBiasTowardHeavySamples) {
  // Two clusters with different y at the same x-structure; heavy weights on
  // the first cluster must pull the constant toward it.
  const std::vector<double> x{1, 2, 3, 1, 2, 3};
  const std::vector<double> y{10, 10, 10, 0, 0, 0};
  const std::vector<double> wHeavyFirst{100, 100, 100, 1, 1, 1};
  const auto c = polyFitWeighted(x, y, wHeavyFirst, 0);
  EXPECT_GT(c[0], 9.0);
}

TEST(PolyFitTest, ErrorsOnBadInput) {
  const std::vector<double> x{1, 2};
  const std::vector<double> y{1};
  EXPECT_THROW(polyFit(x, y, 1), std::invalid_argument);
  const std::vector<double> x2{1, 2};
  const std::vector<double> y2{1, 2};
  EXPECT_THROW(polyFit(x2, y2, 2), std::invalid_argument);  // too few samples
}

TEST(LevMarTest, RecoversLinear) {
  std::vector<double> x, y;
  for (double xi = 0; xi <= 50; ++xi) {
    x.push_back(xi);
    y.push_back(4.0 - 0.5 * xi);
  }
  const auto result = levenbergMarquardt(models::linear(), x, y, {0.0, 0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.coeffs[0], 4.0, 1e-6);
  EXPECT_NEAR(result.coeffs[1], -0.5, 1e-7);
  EXPECT_LT(result.sse, 1e-10);
}

TEST(LevMarTest, RecoversQuadraticFromPoorStart) {
  std::vector<double> x, y;
  for (double xi = 1; xi <= 300; xi += 3) {
    x.push_back(xi);
    y.push_back(1.5 + 0.03 * xi + 5e-4 * xi * xi);
  }
  const auto result =
      levenbergMarquardt(models::quadratic(), x, y, {100.0, -1.0, 0.1});
  EXPECT_NEAR(result.coeffs[0], 1.5, 1e-3);
  EXPECT_NEAR(result.coeffs[1], 0.03, 1e-5);
  EXPECT_NEAR(result.coeffs[2], 5e-4, 1e-7);
}

TEST(LevMarTest, RecoversPowerLaw) {
  std::vector<double> x, y;
  for (double xi = 1; xi <= 100; xi += 1) {
    x.push_back(xi);
    y.push_back(2.0 * std::pow(xi, 1.3));
  }
  const auto result = levenbergMarquardt(models::powerLaw(), x, y, {1.0, 1.0});
  EXPECT_NEAR(result.coeffs[0], 2.0, 1e-3);
  EXPECT_NEAR(result.coeffs[1], 1.3, 1e-4);
}

TEST(LevMarTest, NoisyQuadraticCloseToTruth) {
  Rng rng(31);
  std::vector<double> x, y;
  for (int i = 0; i < 3000; ++i) {
    const double xi = rng.uniform(10, 300);
    x.push_back(xi);
    y.push_back((2.0 + 0.05 * xi + 3e-4 * xi * xi) * rng.normal(1.0, 0.08));
  }
  const auto result = levenbergMarquardt(models::quadratic(), x, y, {0.0, 0.0, 0.0});
  EXPECT_NEAR(result.coeffs[1], 0.05, 0.01);
  EXPECT_NEAR(result.coeffs[2], 3e-4, 5e-5);
}

TEST(LevMarTest, InputValidation) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> yShort{1, 2};
  EXPECT_THROW(levenbergMarquardt(models::linear(), x, yShort, {0, 0}), std::invalid_argument);
  const std::vector<double> xTiny{1};
  const std::vector<double> yTiny{1};
  EXPECT_THROW(levenbergMarquardt(models::linear(), xTiny, yTiny, {0, 0}),
               std::invalid_argument);
}

TEST(LevMarTest, MatchesClosedFormOnPolynomials) {
  Rng rng(41);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    const double xi = rng.uniform(0, 200);
    x.push_back(xi);
    y.push_back(1.0 + 0.1 * xi + rng.normal(0.0, 0.5));
  }
  const auto closed = polyFit(x, y, 1);
  const auto lm = levenbergMarquardt(models::linear(), x, y, {0.0, 0.0});
  EXPECT_NEAR(lm.coeffs[0], closed[0], 1e-4);
  EXPECT_NEAR(lm.coeffs[1], closed[1], 1e-6);
}

class PolynomialDegreeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PolynomialDegreeSweep, PolyFitRecoversArbitraryDegree) {
  const std::size_t degree = GetParam();
  Rng rng(50 + degree);
  std::vector<double> truth(degree + 1);
  for (auto& c : truth) c = rng.uniform(-1.0, 1.0);
  std::vector<double> x, y;
  for (int i = 0; i <= 60; ++i) {
    const double xi = static_cast<double>(i) / 10.0;
    x.push_back(xi);
    double acc = 0.0;
    for (std::size_t d = truth.size(); d-- > 0;) acc = acc * xi + truth[d];
    y.push_back(acc);
  }
  const auto c = polyFit(x, y, degree);
  for (std::size_t d = 0; d <= degree; ++d) {
    EXPECT_NEAR(c[d], truth[d], 1e-6) << "degree " << degree << " coeff " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, PolynomialDegreeSweep, ::testing::Values(0u, 1u, 2u, 3u, 4u));

TEST(GofTest, PerfectFitHasR2One) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  const std::vector<double> coeffs{0.0, 2.0};
  const auto gof = evaluateFit(models::linear(), x, y, coeffs);
  EXPECT_NEAR(gof.r2, 1.0, 1e-12);
  EXPECT_NEAR(gof.rmse, 0.0, 1e-12);
}

TEST(GofTest, MeanPredictorHasR2Zero) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{1, 3, 5, 7};  // mean 4
  const std::vector<double> coeffs{4.0, 0.0};
  const auto gof = evaluateFit(models::linear(), x, y, coeffs);
  EXPECT_NEAR(gof.r2, 0.0, 1e-12);
}

// ---------- power-law form reporting ----------

TEST(FormSelectTest, PowerLawRecoversExactExponent) {
  std::vector<double> x;
  std::vector<double> y;
  for (double v = 10.0; v <= 300.0; v += 10.0) {
    x.push_back(v);
    y.push_back(0.37 * std::pow(v, 2.03));
  }
  const PowerLawFit fitted = fitPowerLaw(x, y);
  ASSERT_TRUE(fitted.valid());
  EXPECT_EQ(fitted.samples, x.size());
  EXPECT_NEAR(fitted.exponent, 2.03, 1e-9);
  EXPECT_NEAR(fitted.amplitude, 0.37, 1e-9);
  EXPECT_NEAR(fitted.r2, 1.0, 1e-12);
}

TEST(FormSelectTest, PowerLawRecoversExponentFromNoisyData) {
  Rng rng(77);
  std::vector<double> x;
  std::vector<double> y;
  for (double v = 25.0; v <= 400.0; v += 5.0) {
    x.push_back(v);
    y.push_back(1.4 * std::pow(v, 1.12) * (1.0 + rng.uniform(-0.05, 0.05)));
  }
  const PowerLawFit fitted = fitPowerLaw(x, y);
  ASSERT_TRUE(fitted.valid());
  EXPECT_NEAR(fitted.exponent, 1.12, 0.05);
  EXPECT_GT(fitted.r2, 0.99);
}

TEST(FormSelectTest, PowerLawSkipsNonPositivePairs) {
  const std::vector<double> x{-1.0, 0.0, 1.0, 2.0, 4.0};
  const std::vector<double> y{5.0, 5.0, 3.0, 6.0, 12.0};
  const PowerLawFit fitted = fitPowerLaw(x, y);
  ASSERT_TRUE(fitted.valid());
  EXPECT_EQ(fitted.samples, 3u);  // only the strictly positive pairs count
  EXPECT_NEAR(fitted.exponent, 1.0, 1e-9);
}

TEST(FormSelectTest, PowerLawTooFewSamplesIsInvalid) {
  const std::vector<double> x{10.0};
  const std::vector<double> y{4.0};
  EXPECT_FALSE(fitPowerLaw(x, y).valid());
}

TEST(FormSelectTest, AiccPenalizesTheExtraCoefficient) {
  // Same SSE: the 2-coefficient model must score strictly lower (better).
  EXPECT_LT(aicc(10.0, 20, 2), aicc(10.0, 20, 3));
  // A large-enough SSE reduction lets the bigger model win anyway.
  EXPECT_GT(aicc(10.0, 20, 2), aicc(1.0, 20, 3));
}

TEST(FormSelectTest, AiccDegenerateCases) {
  EXPECT_EQ(aicc(5.0, 3, 3), std::numeric_limits<double>::infinity());  // n <= k+1
  EXPECT_EQ(aicc(0.0, 20, 2), -std::numeric_limits<double>::infinity());  // exact fit
}

}  // namespace
}  // namespace roia::fit
