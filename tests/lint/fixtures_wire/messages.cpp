// Fixture: full encode/decode coverage for every struct in messages.hpp,
// so the serialization-coverage rule stays quiet and only the manifest
// drift findings fire. Never compiled.
#include "messages.hpp"

void encode(const PingMsg& msg, Sink& out) {
  out.writeU64(msg.id);
  out.writeU64(msg.sentAt);
}

PingMsg decodePing(const Buffer& in) {
  PingMsg msg;
  msg.id = in.readU64();
  msg.sentAt = in.readU64();
  return msg;
}

void encode(const PongMsg& msg, Sink& out) {
  out.writeU64(msg.id);
  out.writeU32(msg.status);
}

PongMsg decodePong(const Buffer& in) {
  PongMsg msg;
  msg.id = in.readU64();
  msg.status = in.readU32();
  return msg;
}

void encode(const NewMsg& msg, Sink& out) {
  out.writeU32(msg.token);
}

NewMsg decodeNew(const Buffer& in) {
  NewMsg msg;
  msg.token = in.readU32();
  return msg;
}
