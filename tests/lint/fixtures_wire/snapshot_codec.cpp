// Fixture: a complete schema table (coverage-clean) whose row order
// drifted from the manifest, which still lists [id, y, x]. Never
// compiled.
#include "entity.hpp"

enum class SnapshotField { kId, kX, kY };

struct SnapshotSchemaRow {
  SnapshotField field;
  const char* name;
};

constexpr SnapshotSchemaRow kSnapshotSchema[] = {
    {SnapshotField::kId, "id"},
    {SnapshotField::kX, "x"},
    {SnapshotField::kY, "y"},
};
