// Fixture: snapshot struct for the kSnapshotSchema manifest check.
// Never compiled.
#pragma once

struct EntitySnapshot {
  unsigned long id{0};
  float x{0.0f};
  float y{0.0f};
};
