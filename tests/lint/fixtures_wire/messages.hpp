// Fixture: wire structs pinned by the drifted manifest beside this tree.
// The self-test asserts exact wire-schema-drift findings against
// wire_manifest_drifted.json, then regenerates a fresh manifest and
// asserts the same tree passes clean. Never compiled.
#pragma once
#include <cstdint>

struct Sink {
  void writeU64(std::uint64_t) {}
  void writeU32(std::uint32_t) {}
};

struct Buffer {
  std::uint64_t readU64() const { return 0; }
  std::uint32_t readU32() const { return 0; }
};

// Drift vs the manifest: the manifest still lists a `nonce` field.
struct PingMsg {
  std::uint64_t id{0};
  std::uint64_t sentAt{0};
};

// Drift vs the manifest: `status` is declared std::uint64_t there.
struct PongMsg {
  std::uint64_t id{0};
  std::uint32_t status{0};
};

// Drift vs the manifest: this struct is not in the manifest at all.
struct NewMsg {
  std::uint32_t token{0};
};
