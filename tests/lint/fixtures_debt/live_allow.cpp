// Fixture: a justified suppression that still suppresses a live finding —
// it must appear in the debt table as live and must NOT be flagged as
// stale. Never compiled.
#include <cstdlib>

int fixtureNoise() {
  return rand();  // roia-lint: allow(determinism) -- fixture: justified and still live
}
