// Fixture: the allow() below once silenced a rand() call; the call was
// fixed but the suppression stayed behind. suppression-debt must flag
// the stale allow at its own line. Never compiled.

int cleanNow() {
  return 7;  // roia-lint: allow(determinism) -- stale: the rand() here is long gone
}
