// Fixture: unbounded retry loops the bounded-retry rule must flag, plus
// bounded / signal-free / queue-drain loops it must leave alone. The
// signal words live in code identifiers because comments are masked
// before scanning. Never compiled.
bool sendFrame(int attempt);
bool resendFrame();
bool acked();

void retransmitForever() {
  while (true) {
    int retries = 0;
    sendFrame(retries);
  }
}

void pollForReconnect() {
  for (;;) {
    bool reconnect = resendFrame();
    (void)reconnect;
  }
}

void spinUntilAcked() {
  while (!acked()) {
    resendFrame();
  }
}

void boundedRetryOk() {
  const int maxAttempts = 8;
  int attempt = 0;
  while (!acked()) {
    resendFrame();
    if (++attempt >= maxAttempts) { break; }
  }
}

void signalFreeSpinOk() {
  while (true) {
    if (acked()) { break; }
  }
}

struct RetransmitQueue {
  bool empty() const;
  void pop();
};

void drainRetransmitsOk(RetransmitQueue& retransmitQueue) {
  while (!retransmitQueue.empty()) {
    retransmitQueue.pop();
  }
}
