// Fixture: range-for over an unordered container in an output-feeding
// file. The iteration order leaks into the returned sum's float rounding.
#include <unordered_map>

double weightedTotal() {
  std::unordered_map<int, double> weights;
  weights[1] = 0.1;
  weights[2] = 0.2;
  double total = 0.0;
  for (const auto& [key, weight] : weights) total += weight / key;
  return total;
}
