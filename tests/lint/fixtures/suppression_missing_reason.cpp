// Fixture: an allow() without a justification is itself a finding, and
// the original violation stays live.
#include <cstdlib>

int fixtureNoiseUnjustified() {
  return rand();  // roia-lint: allow(determinism)
}
