// Fixture: kSnapshotSchema misses EntitySnapshot.vx and .health — the
// schema-coverage rule must flag both at their entity.hpp lines.
#include "entity.hpp"

namespace roia::rtf {

enum class SnapshotField { kId, kX, kY, kVx, kHealth };

struct SnapshotSchemaRow {
  SnapshotField field;
  const char* name;
};

constexpr SnapshotSchemaRow kSnapshotSchema[] = {
    {SnapshotField::kId, "id"},
    {SnapshotField::kX, "x"},
    {SnapshotField::kY, "y"},
};

}  // namespace roia::rtf
