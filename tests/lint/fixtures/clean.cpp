// Fixture: idiomatic ROIA code — seeded RNG, ordered iteration, an
// allocation-free hot function. Must produce zero findings.
#include <cstdint>
#include <map>

// The sanctioned pattern: all randomness flows through a seeded stream.
struct SeededStream {
  std::uint64_t state;
  std::uint64_t next() { return state = state * 6364136223846793005ULL + 1442695040888963407ULL; }
};

// roia-hot
std::uint64_t hotMix(std::uint64_t a, std::uint64_t b) {
  return (a ^ b) * 0x9e3779b97f4a7c15ULL;
}

double orderedTotal(const std::map<int, double>& weights) {
  double total = 0.0;
  for (const auto& [key, weight] : weights) total += weight / key;
  return total;
}
