// Fixture: a justified suppression silences the finding.
#include <cstdlib>

int fixtureNoise() {
  return rand();  // roia-lint: allow(determinism) -- fixture: demonstrates a justified suppression
}
